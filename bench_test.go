package cryptodrop_test

// Benchmarks regenerating each table and figure of the paper's evaluation
// (§V). Each benchmark runs the corresponding experiment on a reduced
// configuration and reports the headline result as a custom metric, so
// `go test -bench` doubles as a quick reproduction check; `cmd/cdbench`
// runs the same experiments at full paper scale.

import (
	"io"
	"testing"

	"cryptodrop"
	"cryptodrop/internal/benign"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/experiments"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/ransomware"
	"cryptodrop/internal/vfs"
)

// benchSpec is the reduced corpus used by the table/figure benchmarks.
var benchSpec = corpus.Spec{Seed: 2016, Files: 600, Dirs: 60, SizeScale: 0.3}

// benchRoster returns one specimen per family/class combination.
func benchRoster() []ransomware.Sample {
	seen := make(map[string]bool)
	var out []ransomware.Sample
	for _, s := range ransomware.Roster(2016) {
		key := s.Profile.Family + s.Profile.Class.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, s)
		}
	}
	return out
}

// runBenchRoster executes the reduced roster once.
func runBenchRoster(b *testing.B) []experiments.SampleOutcome {
	b.Helper()
	r, err := experiments.NewRunner(benchSpec)
	if err != nil {
		b.Fatal(err)
	}
	outcomes, err := r.RunRoster(benchRoster(), nil)
	if err != nil {
		b.Fatal(err)
	}
	return outcomes
}

// BenchmarkTable1FamilyDetection regenerates Table I: the per-family
// detection run. Reported metric: overall median files lost.
func BenchmarkTable1FamilyDetection(b *testing.B) {
	var medianFL float64
	for i := 0; i < b.N; i++ {
		outcomes := runBenchRoster(b)
		tbl := experiments.BuildTable1(outcomes)
		if tbl.DetectionRate != 1.0 {
			b.Fatalf("detection rate %.2f", tbl.DetectionRate)
		}
		medianFL = tbl.OverallMedianFilesLost
	}
	b.ReportMetric(medianFL, "median-files-lost")
}

// BenchmarkFig3DataLossCDF regenerates the Figure 3 cumulative
// distribution. Reported metric: maximum files lost.
func BenchmarkFig3DataLossCDF(b *testing.B) {
	var maxFL float64
	for i := 0; i < b.N; i++ {
		f := experiments.BuildFig3(runBenchRoster(b))
		if err := f.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		maxFL = float64(f.Max)
	}
	b.ReportMetric(maxFL, "max-files-lost")
}

// BenchmarkFig4TraversalTrees regenerates the Figure 4 directory-access
// trees for the three traversal exemplars.
func BenchmarkFig4TraversalTrees(b *testing.B) {
	r, err := experiments.NewRunner(benchSpec)
	if err != nil {
		b.Fatal(err)
	}
	var picks []ransomware.Sample
	for _, s := range ransomware.Roster(2016) {
		switch {
		case s.Profile.Family == "TeslaCrypt" && s.Profile.Class == ransomware.ClassA,
			s.Profile.Family == "CTB-Locker" && s.Profile.Class == ransomware.ClassB,
			s.Profile.Family == "GPcode" && s.Profile.Class == ransomware.ClassC:
			if len(picks) < 3 {
				picks = append(picks, s)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range picks {
			out, err := r.RunSample(s)
			if err != nil {
				b.Fatal(err)
			}
			tree, err := experiments.BuildFig4Tree(r.CloneFS(), r.Manifest().Root, out)
			if err != nil {
				b.Fatal(err)
			}
			if err := tree.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig5ExtensionFrequency regenerates the Figure 5 extension
// attack-frequency chart.
func BenchmarkFig5ExtensionFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.BuildFig5(runBenchRoster(b))
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		if err := experiments.RenderFig5(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6FalsePositives regenerates the Figure 6 benign threshold
// sweep. Reported metric: false positives at the 200-point threshold.
func BenchmarkFig6FalsePositives(b *testing.B) {
	r, err := experiments.NewRunner(benchSpec)
	if err != nil {
		b.Fatal(err)
	}
	var fpAt200 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var apps []experiments.BenignOutcome
		for _, w := range benign.Detailed() {
			out, err := r.RunBenign(w)
			if err != nil {
				b.Fatal(err)
			}
			apps = append(apps, out)
		}
		f := experiments.BuildFig6(apps, []float64{0, 50, 100, 150, 200, 250})
		fpAt200 = float64(f.FalsePositives[4])
	}
	b.ReportMetric(fpAt200, "fp-at-200")
}

// BenchmarkUnionIndicatorAnalysis regenerates the §V-B2 union-effectiveness
// analysis. Reported metric: fraction of samples achieving union.
func BenchmarkUnionIndicatorAnalysis(b *testing.B) {
	var unionRate float64
	for i := 0; i < b.N; i++ {
		s := experiments.BuildUnionStats(runBenchRoster(b))
		unionRate = float64(s.WithUnion) / float64(s.Total)
	}
	b.ReportMetric(unionRate, "union-rate")
}

// BenchmarkSmallFileRerun regenerates the §V-C CTB-Locker small-file
// comparison. Reported metric: files lost saved by removing small files.
func BenchmarkSmallFileRerun(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSmallFileExperiment(benchSpec, 2016)
		if err != nil {
			b.Fatal(err)
		}
		saved = float64(res.LostWithSmall - res.LostWithoutSmall)
	}
	b.ReportMetric(saved, "files-saved")
}

// --- §V-H per-operation latency overhead -------------------------------
//
// The paper reports the added latency of CryptoDrop per filesystem
// operation: <1ms for open/read, 1.58ms close, 9ms write, 16ms rename.
// The pairs below measure the same overheads in this implementation:
// compare the Monitored and Unmonitored variants of each op.

// opBench sets up a corpus-loaded FS; monitored selects whether CryptoDrop
// is attached.
func opBench(b *testing.B, monitored bool) (*vfs.FS, int, string) {
	b.Helper()
	fs := vfs.New()
	m, err := corpus.Build(fs, corpus.Spec{Seed: 50, Files: 200, Dirs: 20, SizeScale: 0.3})
	if err != nil {
		b.Fatal(err)
	}
	pid := 1
	if monitored {
		procs := proc.NewTable()
		if _, err := cryptodrop.NewMonitor(fs, procs, cryptodrop.WithRoot(m.Root), cryptodrop.WithoutEnforcement()); err != nil {
			b.Fatal(err)
		}
		pid = procs.Spawn("bench")
	}
	return fs, pid, m.Entries[len(m.Entries)/2].Path
}

func benchOpen(b *testing.B, monitored bool) {
	fs, pid, target := opBench(b, monitored)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := fs.Open(pid, target, vfs.ReadOnly)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpLatencyOpenUnmonitored(b *testing.B) { benchOpen(b, false) }
func BenchmarkOpLatencyOpenMonitored(b *testing.B)   { benchOpen(b, true) }

func benchRead(b *testing.B, monitored bool) {
	fs, pid, target := opBench(b, monitored)
	buf := make([]byte, 64<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := fs.Open(pid, target, vfs.ReadOnly)
		if err != nil {
			b.Fatal(err)
		}
		for {
			n, err := h.Read(buf)
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				break
			}
		}
		if err := h.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpLatencyReadUnmonitored(b *testing.B) { benchRead(b, false) }
func BenchmarkOpLatencyReadMonitored(b *testing.B)   { benchRead(b, true) }

func benchWrite(b *testing.B, monitored bool) {
	fs, pid, target := opBench(b, monitored)
	payload := corpus.Generate("docx", 9, 32<<10)
	_ = target
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := fs.Open(pid, "/Users/victim/Documents/bench_scratch.docx", vfs.WriteOnly|vfs.Create|vfs.Truncate)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Write(payload); err != nil {
			b.Fatal(err)
		}
		if err := h.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpLatencyWriteUnmonitored(b *testing.B) { benchWrite(b, false) }
func BenchmarkOpLatencyWriteMonitored(b *testing.B)   { benchWrite(b, true) }

func benchRename(b *testing.B, monitored bool) {
	fs, pid, target := opBench(b, monitored)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.Rename(pid, target, target+".tmp"); err != nil {
			b.Fatal(err)
		}
		if err := fs.Rename(pid, target+".tmp", target); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpLatencyRenameUnmonitored(b *testing.B) { benchRename(b, false) }
func BenchmarkOpLatencyRenameMonitored(b *testing.B)   { benchRename(b, true) }

// BenchmarkAblationUnionOnOff compares detection speed with and without
// union indication (ablation 1 of DESIGN.md). Reported metric: extra median
// files lost without union.
func BenchmarkAblationUnionOnOff(b *testing.B) {
	roster := benchRoster()[:8]
	var extra float64
	for i := 0; i < b.N; i++ {
		run := func(opts ...cryptodrop.Option) float64 {
			r, err := experiments.NewRunner(benchSpec, opts...)
			if err != nil {
				b.Fatal(err)
			}
			outcomes, err := r.RunRoster(roster, nil)
			if err != nil {
				b.Fatal(err)
			}
			return experiments.BuildTable1(outcomes).OverallMedianFilesLost
		}
		with := run()
		without := run(cryptodrop.WithUnionDisabled())
		extra = without - with
	}
	b.ReportMetric(extra, "extra-files-lost-without-union")
}

// BenchmarkEndToEndDetection measures the wall-clock cost of one complete
// detect-and-suspend cycle (corpus clone, monitor attach, sample run).
func BenchmarkEndToEndDetection(b *testing.B) {
	r, err := experiments.NewRunner(benchSpec)
	if err != nil {
		b.Fatal(err)
	}
	sample := benchRoster()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := r.RunSample(sample)
		if err != nil {
			b.Fatal(err)
		}
		if !out.Detected {
			b.Fatal("not detected")
		}
	}
}
