package cryptodrop_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/ransomware"
	"cryptodrop/internal/vfs"
)

// newVictim builds a monitored machine: corpus + process table + monitor.
func newVictim(t testing.TB, opts ...cryptodrop.Option) (*vfs.FS, *corpus.Manifest, *proc.Table, *cryptodrop.Monitor) {
	t.Helper()
	fs := vfs.New()
	m, err := corpus.Build(fs, corpus.Spec{Seed: 40, Files: 300, Dirs: 40, SizeScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	procs := proc.NewTable()
	mon, err := cryptodrop.NewMonitor(fs, procs, append([]cryptodrop.Option{cryptodrop.WithRoot(m.Root)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return fs, m, procs, mon
}

// testSample returns a generic Class A specimen.
func testSample(seed int64) ransomware.Sample {
	return ransomware.Sample{
		ID:   "integration-A",
		Seed: seed,
		Profile: ransomware.Profile{
			Family: "TestFam", Class: ransomware.ClassA,
			Traversal: ransomware.TraverseShuffled, Cipher: ransomware.CipherAES,
			RenameExt: ".enc", DropNote: true, ChunkKB: 16,
		},
	}
}

func TestMonitorStopsRansomware(t *testing.T) {
	var detected []cryptodrop.Detection
	fs, m, procs, mon := newVictim(t, cryptodrop.WithDetectionHandler(func(d cryptodrop.Detection) {
		detected = append(detected, d)
	}))
	s := testSample(1)
	pid := procs.Spawn(s.ID)
	res, err := s.Run(fs, pid, m.Root, func() bool { return procs.Suspended(pid) })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Suspended {
		t.Fatalf("sample not suspended: %+v", res)
	}
	if len(detected) != 1 {
		t.Fatalf("detections = %d, want 1", len(detected))
	}
	if len(mon.Detections()) != 1 {
		t.Fatal("monitor did not record the detection")
	}
	if !procs.Suspended(pid) {
		t.Fatal("process not suspended in table")
	}
	// The vast majority of the corpus must have survived.
	if res.FilesAttacked > len(m.Entries)/5 {
		t.Fatalf("%d of %d files attacked before suspension", res.FilesAttacked, len(m.Entries))
	}
	// Suspended process can no longer touch the disk.
	if _, err := fs.ReadFile(pid, m.Entries[len(m.Entries)-1].Path); !errors.Is(err, cryptodrop.ErrSuspended) {
		t.Fatalf("suspended process read = %v, want ErrSuspended", err)
	}
}

func TestMonitorSuspendsWholeFamily(t *testing.T) {
	fs, m, procs, _ := newVictim(t)
	parent := procs.Spawn("dropper.exe")
	child := procs.SpawnChild("payload.exe", parent)
	s := testSample(2)
	if _, err := s.Run(fs, child, m.Root, func() bool { return procs.Suspended(child) }); err != nil {
		t.Fatal(err)
	}
	if !procs.Suspended(parent) {
		t.Fatal("parent process escaped family suspension")
	}
}

func TestAllowResumesProcess(t *testing.T) {
	fs, m, procs, mon := newVictim(t)
	s := testSample(3)
	pid := procs.Spawn(s.ID)
	if _, err := s.Run(fs, pid, m.Root, func() bool { return procs.Suspended(pid) }); err != nil {
		t.Fatal(err)
	}
	if !procs.Suspended(pid) {
		t.Fatal("not suspended")
	}
	// The user reviews the alert and (unwisely) allows the process.
	if err := mon.Allow(pid); err != nil {
		t.Fatal(err)
	}
	// Read a file that survived the partial attack.
	var surviving string
	for _, e := range m.Entries {
		if _, err := fs.Stat(e.Path); err == nil {
			surviving = e.Path
			break
		}
	}
	if surviving == "" {
		t.Fatal("no surviving corpus file")
	}
	if _, err := fs.ReadFile(pid, surviving); err != nil {
		t.Fatalf("allowed process still blocked: %v", err)
	}
}

// Regression: detection suspends the whole process family (SuspendFamily),
// so Allow must resume and exempt the whole family too. It used to resume
// only the reviewed PID, leaving children spawned before the detection
// suspended forever.
func TestAllowResumesWholeFamily(t *testing.T) {
	fs, m, procs, mon := newVictim(t)
	parent := procs.Spawn("dropper.exe")
	child := procs.SpawnChild("payload.exe", parent)
	s := testSample(5)
	if _, err := s.Run(fs, child, m.Root, func() bool { return procs.Suspended(child) }); err != nil {
		t.Fatal(err)
	}
	if !procs.Suspended(parent) || !procs.Suspended(child) {
		t.Fatal("family not suspended by detection")
	}

	// The user reviews the alert on the parent and allows it.
	if err := mon.Allow(parent); err != nil {
		t.Fatal(err)
	}
	var surviving string
	for _, e := range m.Entries {
		if _, err := fs.Stat(e.Path); err == nil {
			surviving = e.Path
			break
		}
	}
	if surviving == "" {
		t.Fatal("no surviving corpus file")
	}
	for _, pid := range []int{parent, child} {
		if procs.Suspended(pid) {
			t.Fatalf("pid %d still suspended after Allow(parent)", pid)
		}
		if _, err := fs.ReadFile(pid, surviving); err != nil {
			t.Fatalf("pid %d still blocked after Allow(parent): %v", pid, err)
		}
	}

	// The exemption covers the family: even if a later detection suspends
	// it again, enforcement must not veto the allowed processes.
	procs.SuspendFamily(child)
	for _, pid := range []int{parent, child} {
		if _, err := fs.ReadFile(pid, surviving); err != nil {
			t.Fatalf("exempt pid %d vetoed after re-suspension: %v", pid, err)
		}
	}
}

func TestWithoutEnforcementRecordsOnly(t *testing.T) {
	fs, m, procs, mon := newVictim(t, cryptodrop.WithoutEnforcement())
	s := testSample(4)
	pid := procs.Spawn(s.ID)
	res, err := s.Run(fs, pid, m.Root, func() bool { return procs.Suspended(pid) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Suspended {
		t.Fatal("sample suspended despite WithoutEnforcement")
	}
	if !res.Completed {
		t.Fatal("sample did not complete")
	}
	if len(mon.Detections()) != 1 {
		t.Fatalf("detections = %d, want 1 (recorded, not enforced)", len(mon.Detections()))
	}
}

func TestThresholdOption(t *testing.T) {
	// An absurdly high threshold with union disabled means no detection.
	fs, m, procs, mon := newVictim(t,
		cryptodrop.WithNonUnionThreshold(1e9),
		cryptodrop.WithUnionDisabled(),
	)
	s := testSample(5)
	pid := procs.Spawn(s.ID)
	res, err := s.Run(fs, pid, m.Root, func() bool { return procs.Suspended(pid) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Suspended || len(mon.Detections()) != 0 {
		t.Fatal("detection occurred despite huge threshold")
	}
}

func TestDisabledIndicatorsOption(t *testing.T) {
	fs, m, procs, mon := newVictim(t, cryptodrop.WithIndicators(
		cryptodrop.DefaultIndicators().Without(
			cryptodrop.IndicatorTypeChange, cryptodrop.IndicatorSimilarity,
		),
	))
	s := testSample(6)
	pid := procs.Spawn(s.ID)
	if _, err := s.Run(fs, pid, m.Root, func() bool { return procs.Suspended(pid) }); err != nil {
		t.Fatal(err)
	}
	rep, ok := mon.Report(pid)
	if !ok {
		t.Fatal("no report")
	}
	if rep.Union {
		t.Fatal("union fired with two primaries disabled")
	}
	if rep.IndicatorPoints[cryptodrop.IndicatorTypeChange] != 0 ||
		rep.IndicatorPoints[cryptodrop.IndicatorSimilarity] != 0 {
		t.Fatal("disabled indicators earned points")
	}
}

func TestAntivirusFilterCoexists(t *testing.T) {
	// Another filter in the chain (anti-virus in Fig. 2) must not affect
	// detection.
	fs, m, procs, mon := newVictim(t)
	av := &countingFilter{name: "antivirus"}
	if err := mon.Chain().Attach(320000, av); err != nil {
		t.Fatal(err)
	}
	s := testSample(7)
	pid := procs.Spawn(s.ID)
	res, err := s.Run(fs, pid, m.Root, func() bool { return procs.Suspended(pid) })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Suspended {
		t.Fatal("not detected with anti-virus attached")
	}
	if av.post == 0 {
		t.Fatal("anti-virus filter saw no operations")
	}
}

// countingFilter counts operations.
type countingFilter struct {
	name string
	pre  int
	post int
}

func (f *countingFilter) Name() string           { return f.name }
func (f *countingFilter) PreOp(op *vfs.Op) error { f.pre++; return nil }
func (f *countingFilter) PostOp(op *vfs.Op)      { f.post++ }

func TestReportsListProcesses(t *testing.T) {
	fs, m, procs, mon := newVictim(t)
	p1 := procs.Spawn("a")
	p2 := procs.Spawn("b")
	if _, err := fs.ReadFile(p1, m.Entries[0].Path); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(p2, m.Entries[1].Path); err != nil {
		t.Fatal(err)
	}
	reports := mon.Reports()
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	if reports[0].PID != p1 || reports[1].PID != p2 {
		t.Fatalf("reports not ordered by PID: %+v", reports)
	}
	if mon.OpCount() == 0 {
		t.Fatal("OpCount = 0")
	}
}

func TestFamilyScoringAggregates(t *testing.T) {
	// The same encryption split over two sibling processes: per-process
	// scoring sees two half-scores; family scoring sees one full score on
	// the root.
	run := func(family bool) (rootScore float64, detections int) {
		opts := []cryptodrop.Option{cryptodrop.WithoutEnforcement()}
		if family {
			opts = append(opts, cryptodrop.WithFamilyScoring())
		}
		fs, m, procs, mon := newVictim(t, opts...)
		root := procs.Spawn("dropper.exe")
		w1 := procs.SpawnChild("w1.exe", root)
		w2 := procs.SpawnChild("w2.exe", root)
		s := testSample(8)
		if _, err := s.RunAsFamily(fs, []int{w1, w2}, m.Root, nil); err != nil {
			t.Fatal(err)
		}
		rep, _ := mon.Report(root)
		return rep.Score, len(mon.Detections())
	}
	perProcScore, _ := run(false)
	famScore, famDetections := run(true)
	if perProcScore != 0 {
		t.Fatalf("per-process scoring put %f points on the idle root", perProcScore)
	}
	if famScore == 0 || famDetections == 0 {
		t.Fatalf("family scoring did not aggregate: score %.1f, detections %d", famScore, famDetections)
	}
}

// xorEncryptInPlace rewrites p with a deterministic keystream XOR of its
// content — the minimal in-place encryption the engine scores on.
func xorEncryptInPlace(t *testing.T, fs *vfs.FS, pid int, p string) {
	t.Helper()
	h, err := fs.Open(pid, p, vfs.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	content, err := h.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	state := uint64(len(content))*2654435761 + 0x9e3779b97f4a7c15
	enc := make([]byte, len(content))
	for i := range content {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		enc[i] = content[i] ^ byte(state)
	}
	h.SeekTo(0)
	if _, err := h.Write(enc); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMonitorCheckpointRestore pins the facade durability contract: a
// monitor checkpointed mid-attack and abandoned (the crash) restores into a
// fresh monitor that finishes the attack with scoreboards, detections and
// op counts bit-identical to an uninterrupted run on an identical machine.
func TestMonitorCheckpointRestore(t *testing.T) {
	const files = 60
	ctx := context.Background()
	dir := t.TempDir()

	// Uninterrupted reference.
	fsRef, mRef, procsRef, monRef := newVictim(t, cryptodrop.WithoutEnforcement())
	pidRef := procsRef.Spawn("attacker")
	for _, e := range mRef.Entries[:files] {
		xorEncryptInPlace(t, fsRef, pidRef, e.Path)
	}
	wantReports := monRef.Reports()
	wantDets := monRef.Detections()
	if len(wantDets) == 0 {
		t.Fatal("reference attack fired no detections")
	}

	// Durable run: encrypt half, checkpoint, crash (the monitor is simply
	// abandoned — no Close).
	fs, m, procs, mon := newVictim(t, cryptodrop.WithoutEnforcement(),
		cryptodrop.WithCheckpoint(dir, 0))
	pid := procs.Spawn("attacker")
	for _, e := range m.Entries[:files/2] {
		xorEncryptInPlace(t, fs, pid, e.Path)
	}
	if err := mon.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	opsAtCrash := mon.OpCount()

	// Recover on the same machine and finish the attack.
	mon2, err := cryptodrop.NewMonitor(fs, procs, cryptodrop.WithRoot(m.Root),
		cryptodrop.WithoutEnforcement(), cryptodrop.WithCheckpoint(dir, 0), cryptodrop.WithRestore())
	if err != nil {
		t.Fatal(err)
	}
	if got := mon2.OpCount(); got != opsAtCrash {
		t.Fatalf("restored monitor at op %d, want %d", got, opsAtCrash)
	}
	for _, e := range m.Entries[files/2 : files] {
		xorEncryptInPlace(t, fs, pid, e.Path)
	}
	if !reflect.DeepEqual(mon2.Reports(), wantReports) {
		t.Fatalf("restored reports diverge:\ngot  %+v\nwant %+v", mon2.Reports(), wantReports)
	}
	if !reflect.DeepEqual(mon2.Detections(), wantDets) {
		t.Fatalf("restored detections diverge:\ngot  %+v\nwant %+v", mon2.Detections(), wantDets)
	}

	// A drifted configuration must refuse the restore with the typed error.
	if _, err := cryptodrop.NewMonitor(vfs.New(), proc.NewTable(), cryptodrop.WithRoot(m.Root),
		cryptodrop.WithNonUnionThreshold(150),
		cryptodrop.WithCheckpoint(dir, 0), cryptodrop.WithRestore()); !errors.Is(err, cryptodrop.ErrSnapshotMismatch) {
		t.Fatalf("drifted restore: got %v, want ErrSnapshotMismatch", err)
	}
}
