package magic

import (
	"archive/zip"
	"bytes"
	"strings"
	"testing"
)

func TestIdentifyTable(t *testing.T) {
	tests := []struct {
		name   string
		data   []byte
		wantID string
		cat    Category
	}{
		{"pdf", []byte("%PDF-1.5\n%âãÏÓ\n1 0 obj"), "pdf", CategoryDocument},
		{"ole doc", append([]byte{0xD0, 0xCF, 0x11, 0xE0, 0xA1, 0xB1, 0x1A, 0xE1}, make([]byte, 64)...), "ole", CategoryDocument},
		{"rtf", []byte(`{\rtf1\ansi Hello}`), "rtf", CategoryDocument},
		{"jpeg", []byte{0xFF, 0xD8, 0xFF, 0xE0, 0x00, 0x10, 'J', 'F', 'I', 'F'}, "jpg", CategoryImage},
		{"png", []byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1A, '\n', 0, 0, 0, 13}, "png", CategoryImage},
		{"gif89", []byte("GIF89a\x01\x00\x01\x00"), "gif", CategoryImage},
		{"gif87", []byte("GIF87a\x01\x00\x01\x00"), "gif", CategoryImage},
		{"bmp", []byte("BM\x36\x00\x00\x00"), "bmp", CategoryImage},
		{"mp3 id3", []byte("ID3\x03\x00\x00\x00\x00\x00\x00"), "mp3", CategoryAudio},
		{"mp3 frame", []byte{0xFF, 0xFB, 0x90, 0x00}, "mp3", CategoryAudio},
		{"wav", []byte("RIFF\x24\x00\x00\x00WAVEfmt "), "wav", CategoryAudio},
		{"webp", []byte("RIFF\x24\x00\x00\x00WEBPVP8 "), "webp", CategoryImage},
		{"7z", []byte{'7', 'z', 0xBC, 0xAF, 0x27, 0x1C, 0, 4}, "7z", CategoryArchive},
		{"gzip", []byte{0x1F, 0x8B, 0x08, 0x00}, "gz", CategoryArchive},
		{"exe", []byte("MZ\x90\x00\x03\x00"), "exe", CategoryExecutable},
		{"elf", []byte{0x7F, 'E', 'L', 'F', 2, 1, 1}, "elf", CategoryExecutable},
		{"sqlite", []byte("SQLite format 3\x00"), "sqlite", CategoryData},
		{"xml", []byte(`<?xml version="1.0"?><root/>`), "xml", CategoryText},
		{"html doctype", []byte("<!DOCTYPE html><html></html>"), "html", CategoryText},
		{"html bare", []byte("<html><body>x</body></html>"), "html", CategoryText},
		{"json", []byte(`{"key": "value"}`), "json", CategoryText},
		{"ascii", []byte("plain old notes about the meeting\n"), "txt", CategoryText},
		{"utf8", []byte("héllo wörld — ünïcode\n"), "utf8", CategoryText},
		{"utf8 bom", append([]byte{0xEF, 0xBB, 0xBF}, []byte("hi")...), "utf8", CategoryText},
		{"script", []byte("#!/bin/sh\necho hi\n"), "script", CategoryText},
		{"empty", nil, "empty", CategoryText},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Identify(tt.data)
			if got.ID != tt.wantID {
				t.Fatalf("Identify(%s).ID = %q, want %q", tt.name, got.ID, tt.wantID)
			}
			if got.Category != tt.cat {
				t.Fatalf("Identify(%s).Category = %v, want %v", tt.name, got.Category, tt.cat)
			}
		})
	}
}

func makeZip(t *testing.T, firstEntry string) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	w, err := zw.Create(firstEntry)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte(strings.Repeat("content ", 32))); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestIdentifyOOXMLRefinement(t *testing.T) {
	tests := []struct {
		entry, wantID string
	}{
		{"word/document.xml", "docx"},
		{"xl/workbook.xml", "xlsx"},
		{"ppt/presentation.xml", "pptx"},
		{"[Content_Types].xml", "ooxml"},
		{"random/file.bin", "zip"},
	}
	for _, tt := range tests {
		got := Identify(makeZip(t, tt.entry))
		if got.ID != tt.wantID {
			t.Errorf("zip with %q → %q, want %q", tt.entry, got.ID, tt.wantID)
		}
	}
}

func TestIdentifyODT(t *testing.T) {
	// ODT files store an uncompressed "mimetype" entry first.
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	w, err := zw.CreateHeader(&zip.FileHeader{Name: "mimetype", Method: zip.Store})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("application/vnd.oasis.opendocument.text")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := Identify(buf.Bytes()); got.ID != "odt" {
		t.Fatalf("odt container identified as %q", got.ID)
	}
}

func TestIdentifyEncryptedLooksLikeData(t *testing.T) {
	// Keystream-looking bytes must be classified as opaque data: this is
	// the core of the paper's file-type-change indicator.
	data := make([]byte, 8192)
	s := uint64(0x9E3779B97F4A7C15)
	for i := range data {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		data[i] = byte(s)
	}
	got := Identify(data)
	if !got.IsData() {
		t.Fatalf("pseudo-ciphertext identified as %q, want data", got.ID)
	}
}

func TestIdentifyTypeChangeOnEncryption(t *testing.T) {
	// Encrypting each corpus-like file must change its identified type.
	samples := [][]byte{
		[]byte("%PDF-1.4\nsome pdf body with text"),
		makeZip(t, "word/document.xml"),
		[]byte("just a text file with notes\n"),
		{0xFF, 0xD8, 0xFF, 0xE0, 1, 2, 3, 4, 5, 6, 7, 8},
	}
	for i, sample := range samples {
		before := Identify(sample)
		enc := make([]byte, len(sample))
		s := uint64(12345 + i)
		for j, b := range sample {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			enc[j] = b ^ byte(s)
		}
		after := Identify(enc)
		if before.ID == after.ID {
			t.Errorf("sample %d: type %q unchanged after encryption", i, before.ID)
		}
	}
}

func TestIdentifyBinaryControlBytesNotText(t *testing.T) {
	data := []byte("looks like text\x00but has a NUL")
	if got := Identify(data); got.Category == CategoryText {
		t.Fatalf("content with NUL identified as text (%q)", got.ID)
	}
}

func TestCategoryString(t *testing.T) {
	cats := map[Category]string{
		CategoryUnknown:    "unknown",
		CategoryDocument:   "document",
		CategoryImage:      "image",
		CategoryAudio:      "audio",
		CategoryArchive:    "archive",
		CategoryText:       "text",
		CategoryExecutable: "executable",
		CategoryData:       "data",
	}
	for c, want := range cats {
		if c.String() != want {
			t.Errorf("Category(%d).String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestIdentifyShortInputsSafe(t *testing.T) {
	// No signature read may panic on short inputs.
	for n := 0; n < 16; n++ {
		data := bytes.Repeat([]byte{0xFF}, n)
		_ = Identify(data) // must not panic
	}
}

func BenchmarkIdentifyPDF(b *testing.B) {
	data := append([]byte("%PDF-1.5\n"), bytes.Repeat([]byte("x"), 4096)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Identify(data)
	}
}

func BenchmarkIdentifyData(b *testing.B) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i*131 + 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Identify(data)
	}
}
