package magic_test

import (
	"fmt"

	"cryptodrop/internal/magic"
)

// ExampleIdentify shows the file-type-change indicator's foundation: a
// document identifies by its magic numbers, and its encrypted form decays
// to opaque data.
func ExampleIdentify() {
	pdf := []byte("%PDF-1.5\n1 0 obj << /Type /Catalog >> endobj")
	fmt.Println(magic.Identify(pdf).Name)

	encrypted := make([]byte, 4096)
	state := uint64(7)
	for i := range encrypted {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		encrypted[i] = byte(state)
	}
	fmt.Println(magic.Identify(encrypted).Name)
	// Output:
	// PDF document
	// data
}
