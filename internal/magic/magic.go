// Package magic identifies file types from content, substituting for the
// libmagic/"file" utility the paper uses for its file-type-change indicator
// (§III-A). Types are inferred from magic numbers — byte signatures at known
// offsets — falling back to text heuristics and finally to an opaque "data"
// classification, mirroring file(1)'s behaviour.
package magic

import (
	"bytes"
	"unicode/utf8"
)

// Category is a coarse grouping of file types, used by the corpus generator
// and the experiment reports.
type Category int

// Categories of identified content.
const (
	CategoryUnknown Category = iota
	CategoryDocument
	CategoryImage
	CategoryAudio
	CategoryArchive
	CategoryText
	CategoryExecutable
	CategoryData
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case CategoryDocument:
		return "document"
	case CategoryImage:
		return "image"
	case CategoryAudio:
		return "audio"
	case CategoryArchive:
		return "archive"
	case CategoryText:
		return "text"
	case CategoryExecutable:
		return "executable"
	case CategoryData:
		return "data"
	default:
		return "unknown"
	}
}

// Type describes an identified file type.
type Type struct {
	// Name is the human-readable type description, e.g. "PDF document".
	Name string
	// ID is a short stable identifier, e.g. "pdf". Two files have the same
	// type iff their IDs are equal.
	ID string
	// Category is the coarse grouping.
	Category Category
}

// IsData reports whether the type is the opaque fallback ("data"), which is
// what encrypted content identifies as.
func (t Type) IsData() bool { return t.ID == "data" }

// Well-known types returned by Identify.
var (
	TypeData = Type{Name: "data", ID: "data", Category: CategoryData}
	TypeText = Type{Name: "ASCII text", ID: "txt", Category: CategoryText}
	TypeUTF8 = Type{Name: "UTF-8 Unicode text", ID: "utf8", Category: CategoryText}
)

// signature is one magic-number rule.
type signature struct {
	offset int
	magic  []byte
	typ    Type
	// refine, if non-nil, may inspect more content to refine the type
	// (e.g. ZIP → OOXML document).
	refine func(data []byte) (Type, bool)
}

func sig(offset int, magic string, name, id string, cat Category) signature {
	return signature{offset: offset, magic: []byte(magic), typ: Type{Name: name, ID: id, Category: cat}}
}

// The signature table. Order matters: first match wins, so more specific
// signatures precede generic ones.
var signatures = []signature{
	sig(0, "%PDF-", "PDF document", "pdf", CategoryDocument),
	{offset: 0, magic: []byte("PK\x03\x04"), typ: Type{Name: "Zip archive data", ID: "zip", Category: CategoryArchive}, refine: refineZip},
	sig(0, "\xD0\xCF\x11\xE0\xA1\xB1\x1A\xE1", "Composite Document File V2 (Microsoft Office)", "ole", CategoryDocument),
	sig(0, "{\\rtf", "Rich Text Format data", "rtf", CategoryDocument),
	sig(0, "\xFF\xD8\xFF", "JPEG image data", "jpg", CategoryImage),
	sig(0, "\x89PNG\r\n\x1a\n", "PNG image data", "png", CategoryImage),
	sig(0, "GIF87a", "GIF image data", "gif", CategoryImage),
	sig(0, "GIF89a", "GIF image data", "gif", CategoryImage),
	sig(0, "BM", "PC bitmap", "bmp", CategoryImage),
	sig(0, "II*\x00", "TIFF image data, little-endian", "tiff", CategoryImage),
	sig(0, "MM\x00*", "TIFF image data, big-endian", "tiff", CategoryImage),
	sig(0, "ID3", "Audio file with ID3", "mp3", CategoryAudio),
	sig(0, "\xFF\xFB", "MPEG ADTS, layer III", "mp3", CategoryAudio),
	sig(0, "\xFF\xF3", "MPEG ADTS, layer III", "mp3", CategoryAudio),
	sig(0, "fLaC", "FLAC audio", "flac", CategoryAudio),
	sig(0, "OggS", "Ogg data", "ogg", CategoryAudio),
	{offset: 0, magic: []byte("RIFF"), typ: Type{Name: "RIFF data", ID: "riff", Category: CategoryData}, refine: refineRIFF},
	sig(4, "ftyp", "ISO Media (MP4/M4A)", "mp4", CategoryAudio),
	sig(0, "7z\xBC\xAF\x27\x1C", "7-zip archive data", "7z", CategoryArchive),
	sig(0, "\x1F\x8B", "gzip compressed data", "gz", CategoryArchive),
	sig(0, "BZh", "bzip2 compressed data", "bz2", CategoryArchive),
	sig(0, "Rar!\x1A\x07", "RAR archive data", "rar", CategoryArchive),
	sig(0, "\xFD7zXZ\x00", "XZ compressed data", "xz", CategoryArchive),
	sig(0, "MZ", "PE32 executable (Windows)", "exe", CategoryExecutable),
	sig(0, "\x7FELF", "ELF executable", "elf", CategoryExecutable),
	sig(0, "#!/", "script text executable", "script", CategoryText),
	sig(0, "SQLite format 3\x00", "SQLite 3.x database", "sqlite", CategoryData),
	sig(0, "%!PS", "PostScript document", "ps", CategoryDocument),
	sig(0, "\xEF\xBB\xBF", "UTF-8 Unicode (with BOM) text", "utf8", CategoryText),
	sig(0, "\xFF\xFE", "Little-endian UTF-16 Unicode text", "utf16", CategoryText),
	sig(0, "\xFE\xFF", "Big-endian UTF-16 Unicode text", "utf16", CategoryText),
}

// textSignatures classify text-like content by leading markers after the
// magic table misses; matched case-insensitively against trimmed content.
var textSignatures = []struct {
	prefix string
	typ    Type
}{
	{"<?xml", Type{Name: "XML document text", ID: "xml", Category: CategoryText}},
	{"<!doctype html", Type{Name: "HTML document text", ID: "html", Category: CategoryText}},
	{"<html", Type{Name: "HTML document text", ID: "html", Category: CategoryText}},
	{"{", Type{Name: "JSON data", ID: "json", Category: CategoryText}},
}

func refineZip(data []byte) (Type, bool) {
	// OOXML and OpenDocument containers are ZIP archives whose first local
	// file header names the content type. file(1) performs the same
	// refinement.
	head := data
	if len(head) > 4096 {
		head = head[:4096]
	}
	switch {
	case bytes.Contains(head, []byte("word/")):
		return Type{Name: "Microsoft Word 2007+", ID: "docx", Category: CategoryDocument}, true
	case bytes.Contains(head, []byte("xl/")):
		return Type{Name: "Microsoft Excel 2007+", ID: "xlsx", Category: CategoryDocument}, true
	case bytes.Contains(head, []byte("ppt/")):
		return Type{Name: "Microsoft PowerPoint 2007+", ID: "pptx", Category: CategoryDocument}, true
	case bytes.Contains(head, []byte("mimetypeapplication/vnd.oasis.opendocument.text")):
		return Type{Name: "OpenDocument Text", ID: "odt", Category: CategoryDocument}, true
	case bytes.Contains(head, []byte("mimetypeapplication/vnd.oasis.opendocument.spreadsheet")):
		return Type{Name: "OpenDocument Spreadsheet", ID: "ods", Category: CategoryDocument}, true
	case bytes.Contains(head, []byte("[Content_Types].xml")):
		return Type{Name: "Microsoft OOXML", ID: "ooxml", Category: CategoryDocument}, true
	}
	return Type{}, false
}

func refineRIFF(data []byte) (Type, bool) {
	if len(data) >= 12 {
		switch string(data[8:12]) {
		case "WAVE":
			return Type{Name: "RIFF (little-endian) data, WAVE audio", ID: "wav", Category: CategoryAudio}, true
		case "AVI ":
			return Type{Name: "RIFF (little-endian) data, AVI", ID: "avi", Category: CategoryImage}, true
		case "WEBP":
			return Type{Name: "RIFF (little-endian) data, Web/P image", ID: "webp", Category: CategoryImage}, true
		}
	}
	return Type{}, false
}

// SniffLen is the number of leading bytes Identify needs to classify a file.
// Callers holding large files may pass only the first SniffLen bytes.
const SniffLen = 4096

// Identify classifies content by magic number, falling back to text
// heuristics and finally TypeData. Empty content identifies as "empty" text.
func Identify(data []byte) Type {
	if len(data) == 0 {
		return Type{Name: "empty", ID: "empty", Category: CategoryText}
	}
	for _, s := range signatures {
		end := s.offset + len(s.magic)
		if len(data) < end {
			continue
		}
		if !bytes.Equal(data[s.offset:end], s.magic) {
			continue
		}
		if s.refine != nil {
			if t, ok := s.refine(data); ok {
				return t
			}
		}
		return s.typ
	}
	if t, ok := identifyText(data); ok {
		return t
	}
	return TypeData
}

// identifyText applies file(1)-style text heuristics: content is text when
// it is valid UTF-8 (or plain ASCII) and free of unprintable control bytes.
func identifyText(data []byte) (Type, bool) {
	head := data
	if len(head) > SniffLen {
		head = head[:SniffLen]
	}
	ascii := true
	printable := 0
	for _, b := range head {
		if b >= 0x80 {
			ascii = false
		}
		switch {
		case b == '\n' || b == '\r' || b == '\t' || b == '\f':
			printable++
		case b < 0x20 || b == 0x7F:
			// Unprintable control byte: not text.
			return Type{}, false
		default:
			printable++
		}
	}
	trimmed := bytes.TrimLeft(head, " \t\r\n")
	lower := bytes.ToLower(trimmed)
	for _, ts := range textSignatures {
		if bytes.HasPrefix(lower, []byte(ts.prefix)) {
			return ts.typ, true
		}
	}
	if ascii {
		return TypeText, true
	}
	if utf8.Valid(head) {
		return TypeUTF8, true
	}
	return Type{}, false
}
