package magic

import "testing"

func FuzzIdentify(f *testing.F) {
	f.Add([]byte("%PDF-1.5"))
	f.Add([]byte("PK\x03\x04word/"))
	f.Add([]byte{0xFF, 0xD8, 0xFF})
	f.Add([]byte("plain text"))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFE})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ := Identify(data) // must never panic
		if typ.ID == "" {
			t.Fatalf("empty type ID for %q", data)
		}
	})
}
