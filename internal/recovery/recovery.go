// Package recovery implements the rollback half of detect-then-recover: a
// Coordinator that, given a convicted scoring group, replays the group's
// retained pre-images (internal/vfs/versioned) back into the filesystem
// through its privileged restore path.
//
// The paper's detection engine bounds loss to the handful of files a family
// transforms before its score crosses the threshold (Table I's median of a
// few files); recovery closes that residual gap. By the time Recover runs,
// enforcement has already suspended the family — the host invokes the
// Recoverer after the caller's OnDetection callback — so rollback never
// races the attacker's writes: the restored bytes are the final state.
//
// Restores bypass the interceptor the way a kernel-side restore would:
// rollback is the analysis engine repairing the volume, not process I/O to
// be scored, and must proceed even where the attacker left read-only
// attributes behind.
package recovery

import (
	"errors"

	"cryptodrop/internal/host"
	"cryptodrop/internal/vfs"
	"cryptodrop/internal/vfs/versioned"
)

// Coordinator rolls a convicted group's files back from the versioned
// store's pre-images. It implements host.Recoverer; wire it through
// host.SessionConfig.Recoverer (the cryptodrop.WithRecovery option does
// this for the facade monitor). Safe for concurrent use.
type Coordinator struct {
	fs    *vfs.FS
	store *versioned.Store
}

// NewCoordinator returns a coordinator restoring into fsys from store.
func NewCoordinator(fsys *vfs.FS, store *versioned.Store) *Coordinator {
	return &Coordinator{fs: fsys, store: store}
}

var _ host.Recoverer = (*Coordinator)(nil)

// Recover implements host.Recoverer: it takes the group's retained
// pre-images out of the store and writes each back, in capture order.
// Surviving file IDs are restored in place — wherever the file lives now,
// so a file the attacker renamed still rolls back (the same stable-ID
// tracking the detection side relies on). Pre-images whose ID is gone
// (the file was deleted, or replaced by a rename) are recreated at their
// captured path. Taking the images empties the group's retention set, so a
// second Recover for the same group is a no-op reporting zero work.
func (c *Coordinator) Recover(group int) host.RecoveryOutcome {
	out := host.RecoveryOutcome{Group: group}
	for _, img := range c.store.Take(group) {
		err := c.fs.RestoreFileRawByID(img.ID, img.Data)
		switch {
		case err == nil:
			out.FilesRestored++
		case errors.Is(err, vfs.ErrNotExist):
			if err := c.fs.RestoreFileRaw(img.Path, img.Data); err != nil {
				out.Failures++
				continue
			}
			out.FilesRecreated++
		default:
			out.Failures++
			continue
		}
		out.BytesRestored += int64(len(img.Data))
	}
	return out
}
