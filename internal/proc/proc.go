// Package proc models the process table CryptoDrop scores against: process
// identities, parent/child relationships (so a detection can suspend a whole
// process family, §IV), and suspend/resume state.
package proc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrNoProcess is returned when a PID is not in the table.
var ErrNoProcess = errors.New("proc: no such process")

// Process describes one running process.
type Process struct {
	// PID is the process identifier.
	PID int
	// Name is the executable name, e.g. "teslacrypt.exe".
	Name string
	// Parent is the PID of the parent process, or 0 for a root process.
	Parent int
	// Suspended reports whether the process's disk access is suspended.
	Suspended bool
}

// Table is a process table. The zero value is not usable; create one with
// NewTable. All methods are safe for concurrent use.
type Table struct {
	mu      sync.Mutex
	nextPID int
	procs   map[int]*Process
}

// NewTable returns an empty process table. PIDs are assigned from 1000
// upward, echoing Windows userland PIDs.
func NewTable() *Table {
	return &Table{nextPID: 1000, procs: make(map[int]*Process)}
}

// Spawn registers a new root process and returns its PID.
func (t *Table) Spawn(name string) int {
	return t.SpawnChild(name, 0)
}

// SpawnChild registers a new process with the given parent PID (0 for none)
// and returns its PID. A child of a suspended process starts suspended —
// suspension applies to the whole family.
func (t *Table) SpawnChild(name string, parent int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	pid := t.nextPID
	t.nextPID++
	p := &Process{PID: pid, Name: name, Parent: parent}
	if pp, ok := t.procs[parent]; ok && pp.Suspended {
		p.Suspended = true
	}
	t.procs[pid] = p
	return pid
}

// Lookup returns a copy of the process record for pid.
func (t *Table) Lookup(pid int) (Process, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok {
		return Process{}, fmt.Errorf("pid %d: %w", pid, ErrNoProcess)
	}
	return *p, nil
}

// Suspended reports whether pid is suspended. Unknown PIDs are not
// suspended.
func (t *Table) Suspended(pid int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	return ok && p.Suspended
}

// SuspendFamily suspends pid, every ancestor up to its root, and every
// process in the same family tree — the paper suspends "the suspicious
// process (or family of processes)". It returns the PIDs suspended.
func (t *Table) SuspendFamily(pid int) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok {
		return nil
	}
	root := p
	for root.Parent != 0 {
		pp, ok := t.procs[root.Parent]
		if !ok {
			break
		}
		root = pp
	}
	var suspended []int
	t.suspendTree(root.PID, &suspended)
	sort.Ints(suspended)
	return suspended
}

// suspendTree suspends pid and all descendants; t.mu must be held.
func (t *Table) suspendTree(pid int, out *[]int) {
	p, ok := t.procs[pid]
	if !ok {
		return
	}
	if !p.Suspended {
		p.Suspended = true
		*out = append(*out, pid)
	}
	for cpid, c := range t.procs {
		if c.Parent == pid {
			t.suspendTree(cpid, out)
		}
	}
}

// RootOf returns the PID of the root ancestor of pid (pid itself when it
// has no known parent). Unknown PIDs map to themselves.
func (t *Table) RootOf(pid int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok {
		return pid
	}
	for p.Parent != 0 {
		pp, ok := t.procs[p.Parent]
		if !ok {
			break
		}
		p = pp
	}
	return p.PID
}

// Resume clears the suspended flag on pid (the user allowing a flagged
// process to continue).
func (t *Table) Resume(pid int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok {
		return fmt.Errorf("pid %d: %w", pid, ErrNoProcess)
	}
	p.Suspended = false
	return nil
}

// ResumeFamily clears the suspended flag on pid's entire process family —
// the inverse of SuspendFamily, since that is what enforcement suspends. It
// returns every PID in the family (resumed or already running), sorted, so
// the caller can exempt the whole tree from further enforcement.
func (t *Table) ResumeFamily(pid int) ([]int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok {
		return nil, fmt.Errorf("pid %d: %w", pid, ErrNoProcess)
	}
	root := p
	for root.Parent != 0 {
		pp, ok := t.procs[root.Parent]
		if !ok {
			break
		}
		root = pp
	}
	var family []int
	t.resumeTree(root.PID, &family)
	sort.Ints(family)
	return family, nil
}

// resumeTree clears suspension on pid and all descendants, collecting every
// family member visited; t.mu must be held.
func (t *Table) resumeTree(pid int, out *[]int) {
	p, ok := t.procs[pid]
	if !ok {
		return
	}
	p.Suspended = false
	*out = append(*out, pid)
	for cpid, c := range t.procs {
		if c.Parent == pid {
			t.resumeTree(cpid, out)
		}
	}
}

// Processes returns a snapshot of all processes, ordered by PID.
func (t *Table) Processes() []Process {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Process, 0, len(t.procs))
	for _, p := range t.procs {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}
