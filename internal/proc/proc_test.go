package proc

import (
	"errors"
	"testing"
)

func TestSpawnAssignsDistinctPIDs(t *testing.T) {
	tbl := NewTable()
	a := tbl.Spawn("a.exe")
	b := tbl.Spawn("b.exe")
	if a == b {
		t.Fatalf("duplicate PIDs: %d", a)
	}
	p, err := tbl.Lookup(a)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "a.exe" || p.Parent != 0 || p.Suspended {
		t.Fatalf("unexpected process record: %+v", p)
	}
}

func TestLookupMissing(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.Lookup(1); !errors.Is(err, ErrNoProcess) {
		t.Fatalf("err = %v, want ErrNoProcess", err)
	}
}

func TestSuspendFamilySuspendsDescendantsAndAncestors(t *testing.T) {
	tbl := NewTable()
	root := tbl.Spawn("dropper.exe")
	child := tbl.SpawnChild("payload.exe", root)
	grandchild := tbl.SpawnChild("worker.exe", child)
	sibling := tbl.SpawnChild("helper.exe", root)
	other := tbl.Spawn("unrelated.exe")

	// Detection on the grandchild must reach the whole family.
	suspended := tbl.SuspendFamily(grandchild)
	if len(suspended) != 4 {
		t.Fatalf("suspended %v, want 4 PIDs", suspended)
	}
	for _, pid := range []int{root, child, grandchild, sibling} {
		if !tbl.Suspended(pid) {
			t.Errorf("pid %d not suspended", pid)
		}
	}
	if tbl.Suspended(other) {
		t.Error("unrelated process suspended")
	}
}

func TestSuspendUnknownPID(t *testing.T) {
	tbl := NewTable()
	if got := tbl.SuspendFamily(12345); got != nil {
		t.Fatalf("SuspendFamily(unknown) = %v, want nil", got)
	}
}

func TestChildOfSuspendedStartsSuspended(t *testing.T) {
	tbl := NewTable()
	root := tbl.Spawn("mal.exe")
	tbl.SuspendFamily(root)
	child := tbl.SpawnChild("evade.exe", root)
	if !tbl.Suspended(child) {
		t.Fatal("child spawned after suspension is not suspended")
	}
}

func TestResume(t *testing.T) {
	tbl := NewTable()
	pid := tbl.Spawn("sevenzip.exe")
	tbl.SuspendFamily(pid)
	if !tbl.Suspended(pid) {
		t.Fatal("not suspended")
	}
	if err := tbl.Resume(pid); err != nil {
		t.Fatal(err)
	}
	if tbl.Suspended(pid) {
		t.Fatal("still suspended after resume")
	}
	if err := tbl.Resume(99999); !errors.Is(err, ErrNoProcess) {
		t.Fatalf("Resume(unknown) = %v, want ErrNoProcess", err)
	}
}

func TestProcessesSnapshot(t *testing.T) {
	tbl := NewTable()
	tbl.Spawn("a")
	tbl.Spawn("b")
	procs := tbl.Processes()
	if len(procs) != 2 {
		t.Fatalf("len = %d, want 2", len(procs))
	}
	if procs[0].PID >= procs[1].PID {
		t.Fatal("not sorted by PID")
	}
	// Snapshot is a copy: mutating it must not affect the table.
	procs[0].Suspended = true
	if tbl.Suspended(procs[0].PID) {
		t.Fatal("snapshot mutation leaked into table")
	}
}

func TestSuspendIdempotent(t *testing.T) {
	tbl := NewTable()
	pid := tbl.Spawn("x")
	first := tbl.SuspendFamily(pid)
	second := tbl.SuspendFamily(pid)
	if len(first) != 1 || len(second) != 0 {
		t.Fatalf("first=%v second=%v, want one then none", first, second)
	}
}
