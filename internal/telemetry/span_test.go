package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanTracerRecordOrder(t *testing.T) {
	tr := NewSpanTracer(64, 1)
	base := time.Now()
	for i := 0; i < 10; i++ {
		tr.Record(Span{Name: "measure", Cat: "measure"}, base.Add(time.Duration(i)*time.Millisecond), time.Millisecond)
	}
	if got := tr.Recorded(); got != 10 {
		t.Fatalf("Recorded() = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped() = %d, want 0", got)
	}
	spans := tr.Spans()
	if len(spans) != 10 {
		t.Fatalf("Spans() = %d, want 10", len(spans))
	}
	for i, sp := range spans {
		if sp.Seq != uint64(i+1) {
			t.Fatalf("span %d: seq %d, want %d", i, sp.Seq, i+1)
		}
		if sp.Dur != time.Millisecond.Nanoseconds() {
			t.Fatalf("span %d: dur %d, want 1ms", i, sp.Dur)
		}
		if i > 0 && sp.Start <= spans[i-1].Start {
			t.Fatalf("span %d: start %d not after %d", i, sp.Start, spans[i-1].Start)
		}
	}
}

func TestSpanTracerWraparoundCountsDropped(t *testing.T) {
	const capacity = 16
	tr := NewSpanTracer(capacity, 1)
	const total = 50
	now := time.Now()
	for i := 0; i < total; i++ {
		tr.Record(Span{Name: "op write", Cat: "dispatch"}, now, 0)
	}
	if got := tr.Recorded(); got != total {
		t.Fatalf("Recorded() = %d, want %d", got, total)
	}
	if got := tr.Dropped(); got != total-capacity {
		t.Fatalf("Dropped() = %d, want %d — overwritten spans must be counted", got, total-capacity)
	}
	spans := tr.Spans()
	if len(spans) != capacity {
		t.Fatalf("Spans() = %d, want ring capacity %d", len(spans), capacity)
	}
	// Survivors are exactly the newest `capacity` spans, in order.
	for i, sp := range spans {
		if want := uint64(total - capacity + i + 1); sp.Seq != want {
			t.Fatalf("span %d: seq %d, want %d", i, sp.Seq, want)
		}
	}
}

func TestSpanTracerSamplingRate(t *testing.T) {
	tr := NewSpanTracer(16, 4)
	hits := 0
	for i := 0; i < 1000; i++ {
		if tr.Sample() {
			hits++
		}
	}
	if hits != 250 {
		t.Fatalf("1000 Sample() calls at 1/4 hit %d times, want exactly 250", hits)
	}
}

func TestSpanTracerNilSafe(t *testing.T) {
	var tr *SpanTracer
	if tr.Sample() {
		t.Fatal("nil tracer sampled")
	}
	tr.Record(Span{Name: "x"}, time.Now(), 0) // must not panic
	if tr.Recorded() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer not inert")
	}
}

func TestSpanTracerConcurrentRecord(t *testing.T) {
	tr := NewSpanTracer(1024, 1)
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			now := time.Now()
			for i := 0; i < perWorker; i++ {
				tr.Record(Span{Name: "measure", Cat: "measure", Group: w}, now, 0)
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Recorded(); got != workers*perWorker {
		t.Fatalf("Recorded() = %d, want %d", got, workers*perWorker)
	}
	spans := tr.Spans()
	if len(spans) != 1024 {
		t.Fatalf("Spans() = %d, want 1024 (full ring)", len(spans))
	}
	seen := make(map[uint64]bool, len(spans))
	for _, sp := range spans {
		if seen[sp.Seq] {
			t.Fatalf("duplicate seq %d", sp.Seq)
		}
		seen[sp.Seq] = true
	}
}

func TestWriteChromeTraceFormat(t *testing.T) {
	tr := NewSpanTracer(16, 1)
	base := time.Now()
	tr.Record(Span{Name: "queue-wait", Cat: "ingest", Lane: "docs", Detail: "ops=3"}, base, 2*time.Millisecond)
	tr.Record(Span{Name: "op write", Cat: "dispatch", Group: 7, OpIndex: 12, Path: "/docs/a.txt"}, base.Add(2*time.Millisecond), time.Millisecond)
	tr.Record(Span{Name: "policy", Cat: "policy", Group: 7, OpIndex: 12}, base.Add(3*time.Millisecond), 0)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}

	// Two lanes ("docs" and the default "engine") → two metadata events with
	// deterministic 1-based pids in sorted lane order.
	pidFor := make(map[string]int)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			if ev.Name != "process_name" {
				t.Fatalf("metadata event named %q", ev.Name)
			}
			pidFor[ev.Args["name"].(string)] = ev.Pid
		}
	}
	if pidFor["docs"] != 1 || pidFor["engine"] != 2 {
		t.Fatalf("lane pids = %v, want docs=1 engine=2 (sorted)", pidFor)
	}

	var complete []int
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			complete = append(complete, i)
		}
	}
	if len(complete) != 3 {
		t.Fatalf("complete events = %d, want 3", len(complete))
	}
	qw := doc.TraceEvents[complete[0]]
	if qw.Pid != pidFor["docs"] || qw.Dur != 2000 || qw.Args["detail"] != "ops=3" {
		t.Fatalf("queue-wait event wrong: %+v", qw)
	}
	op := doc.TraceEvents[complete[1]]
	if op.Pid != pidFor["engine"] || op.Tid != 7 || op.Args["path"] != "/docs/a.txt" {
		t.Fatalf("dispatch event wrong: %+v", op)
	}
	if op.Ts <= qw.Ts {
		t.Fatalf("timestamps not monotonic: %g then %g", qw.Ts, op.Ts)
	}
}

func TestFlightRecorderDroppedCount(t *testing.T) {
	const capacity = 8
	fr := NewFlightRecorder(capacity)
	for i := 0; i < capacity; i++ {
		fr.Record(FireEvent{Group: 1, Points: 1})
	}
	if got := fr.Dropped(); got != 0 {
		t.Fatalf("Dropped() = %d before wrap, want 0", got)
	}
	if tr := fr.Trace(1); tr.Dropped != 0 {
		t.Fatalf("Trace.Dropped = %d before wrap, want 0", tr.Dropped)
	}
	for i := 0; i < 5; i++ {
		fr.Record(FireEvent{Group: 1, Points: 1})
	}
	if got := fr.Dropped(); got != 5 {
		t.Fatalf("Dropped() = %d after wrapping 5, want 5", got)
	}
	if tr := fr.Trace(1); tr.Dropped != 5 || !tr.Truncated {
		t.Fatalf("Trace = {Dropped: %d, Truncated: %v}, want {5, true}", tr.Dropped, tr.Truncated)
	}
}

func TestFlightRecorderTimestampsOptIn(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record(FireEvent{Group: 1, Points: 1})
	if ev := fr.Events()[0]; ev.At != 0 {
		t.Fatalf("At = %d without EnableTimestamps, want 0 (conformance traces compare bit-exactly)", ev.At)
	}
	fr2 := NewFlightRecorder(8)
	fr2.EnableTimestamps()
	before := time.Now().UnixNano()
	fr2.Record(FireEvent{Group: 1, Points: 1})
	if ev := fr2.Events()[0]; ev.At < before {
		t.Fatalf("At = %d, want >= %d with timestamps enabled", ev.At, before)
	}
}
