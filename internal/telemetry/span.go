package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Span is one timed step of the detection pipeline, captured by a
// SpanTracer: an ingest-queue wait, a measurement kernel run, a hook
// dispatch, an indicator award or a policy decision. Start and Dur are
// nanoseconds; Start is relative to the tracer's construction, so spans
// from every lane share one timeline.
type Span struct {
	// Seq is the global 1-based capture sequence number, assigned by the
	// tracer.
	Seq uint64 `json:"seq"`
	// Name labels the step ("queue-wait", "measure", "op close",
	// "award type-change", "policy", ...).
	Name string `json:"name"`
	// Cat is the pipeline stage: "ingest", "measure", "dispatch", "award"
	// or "policy".
	Cat string `json:"cat"`
	// Lane groups spans by their emitting pipeline instance — a host
	// session ID, or "engine" for a standalone engine. Lanes become
	// separate process rows in the Chrome trace viewer.
	Lane string `json:"lane,omitempty"`
	// Group is the scoring-group PID the step worked for (0 when the step
	// is not tied to one, e.g. a queue-wait covering a whole batch).
	Group int `json:"group,omitempty"`
	// OpIndex is the engine's protected-operation counter, when known.
	OpIndex int64 `json:"opIndex,omitempty"`
	// Path is the protected file the step concerned, when known.
	Path string `json:"path,omitempty"`
	// Detail carries preformatted step attributes ("tier=sampled memo=hit").
	Detail string `json:"detail,omitempty"`
	// Start is nanoseconds since the tracer epoch.
	Start int64 `json:"startNs"`
	// Dur is the span length in nanoseconds (0 for instant events).
	Dur int64 `json:"durNs"`
}

// SpanTracer is a lock-free, sampling ring buffer of Spans — the causal
// companion to the FlightRecorder. Recording a span costs one atomic
// increment plus one atomic pointer store; the sampling decision (Sample)
// is a single atomic increment. When the ring wraps, the oldest spans are
// overwritten and counted as dropped, never silently lost. A nil
// SpanTracer records nothing and never samples, so the engine's event path
// pays exactly one nil-check branch when tracing is disabled.
type SpanTracer struct {
	slots []atomic.Pointer[Span]
	pos   atomic.Uint64
	tick  atomic.Uint64
	every uint64
	epoch time.Time
}

// DefaultSpanCapacity is the default ring size.
const DefaultSpanCapacity = 16384

// NewSpanTracer returns a tracer holding the last capacity spans
// (DefaultSpanCapacity if capacity <= 0) and sampling one in sampleEvery
// units of work (1 — trace everything — if sampleEvery <= 0).
func NewSpanTracer(capacity, sampleEvery int) *SpanTracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	return &SpanTracer{
		slots: make([]atomic.Pointer[Span], capacity),
		every: uint64(sampleEvery),
		epoch: time.Now(),
	}
}

// Sample reports whether the next unit of traced work (one engine
// operation, one measurement, one queued batch) should record spans: true
// once every sampleEvery calls. Each caller makes one Sample decision per
// unit and propagates it to the unit's sub-steps, so a sampled operation is
// always captured whole. Nil-safe: a nil tracer never samples.
func (t *SpanTracer) Sample() bool {
	if t == nil {
		return false
	}
	return t.tick.Add(1)%t.every == 0
}

// Record captures one span. start is the step's wall-clock start and dur
// its length; the tracer converts them onto its own epoch-relative
// timeline and assigns the sequence number.
func (t *SpanTracer) Record(sp Span, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	sp.Start = start.Sub(t.epoch).Nanoseconds()
	sp.Dur = dur.Nanoseconds()
	seq := t.pos.Add(1)
	sp.Seq = seq
	t.slots[(seq-1)%uint64(len(t.slots))].Store(&sp)
}

// Recorded returns how many spans have ever been recorded (including any
// already overwritten).
func (t *SpanTracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.pos.Load()
}

// Dropped returns how many spans the ring has overwritten — the truncation
// a consumer must check before treating Spans() as complete.
func (t *SpanTracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	n := t.pos.Load()
	if c := uint64(len(t.slots)); n > c {
		return n - c
	}
	return 0
}

// Spans returns every buffered span in capture order. Safe to call while
// recording continues; spans captured concurrently may or may not appear.
func (t *SpanTracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.slots))
	for i := range t.slots {
		if sp := t.slots[i].Load(); sp != nil {
			out = append(out, *sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (chrome://tracing, Perfetto): a complete event ("X") with microsecond
// timestamps, or a metadata event ("M") naming a process row.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace-event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes spans as Chrome trace-event JSON: each lane
// becomes a named process row (pid), each scoring group a thread (tid),
// and each span a complete "X" event with its detail in args. The output
// loads directly into chrome://tracing or Perfetto.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	// Assign deterministic pids: lanes sorted, 1-based.
	laneSet := make(map[string]bool)
	for _, sp := range spans {
		laneSet[laneOf(sp)] = true
	}
	lanes := make([]string, 0, len(laneSet))
	for l := range laneSet {
		lanes = append(lanes, l)
	}
	sort.Strings(lanes)
	lanePid := make(map[string]int, len(lanes))
	tr := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(spans)+len(lanes))}
	for i, l := range lanes {
		lanePid[l] = i + 1
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: i + 1,
			Args: map[string]any{"name": l},
		})
	}
	for _, sp := range spans {
		args := map[string]any{"seq": sp.Seq}
		if sp.Detail != "" {
			args["detail"] = sp.Detail
		}
		if sp.Path != "" {
			args["path"] = sp.Path
		}
		if sp.OpIndex != 0 {
			args["opIndex"] = sp.OpIndex
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			Ts:   float64(sp.Start) / 1e3,
			Dur:  float64(sp.Dur) / 1e3,
			Pid:  lanePid[laneOf(sp)],
			Tid:  sp.Group,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// WriteChromeTrace writes the tracer's buffered spans as Chrome
// trace-event JSON.
func (t *SpanTracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Spans())
}

// laneOf resolves a span's process-row label.
func laneOf(sp Span) string {
	if sp.Lane == "" {
		return "engine"
	}
	return sp.Lane
}
