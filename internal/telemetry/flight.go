package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// FireEvent is one indicator firing captured by the flight recorder: the
// full context needed to explain how a scoring group's reputation score
// reached its detection threshold.
type FireEvent struct {
	// Seq is the global 1-based capture sequence number.
	Seq uint64 `json:"seq"`
	// Group is the scoring-group PID the points were awarded to.
	Group int `json:"group"`
	// OpIndex is the engine's protected-operation counter at the firing.
	OpIndex int64 `json:"opIndex"`
	// Path is the file that triggered the firing ("" when the firing is not
	// tied to a single path, e.g. the union bonus).
	Path string `json:"path,omitempty"`
	// Indicator names the indicator that fired.
	Indicator string `json:"indicator"`
	// IndicatorID is the registry ID of the indicator that fired; 0 for
	// policy-level entries (e.g. the union bonus), which have no registry
	// identity.
	IndicatorID int `json:"indicatorId,omitempty"`
	// Points is the score contribution of this firing.
	Points float64 `json:"points"`
	// ScoreAfter is the group's reputation score after the award.
	ScoreAfter float64 `json:"scoreAfter"`
	// Union reports the group's union-indication state after the award.
	Union bool `json:"union"`
	// At is the wall-clock capture time in Unix nanoseconds, stamped only
	// when the recorder's EnableTimestamps was called. Zero (and omitted)
	// by default, so recorded traces stay deterministic and byte-comparable
	// across live and replay runs.
	At int64 `json:"at,omitempty"`
}

// FlightRecorder is a lock-free ring buffer of FireEvents. Writers claim a
// slot with one atomic increment and publish the event with one atomic
// pointer store, so recording costs no locks on the engine's event path;
// when the buffer wraps, the oldest events are overwritten. A nil
// FlightRecorder drops everything.
type FlightRecorder struct {
	slots      []atomic.Pointer[FireEvent]
	pos        atomic.Uint64
	timestamps atomic.Bool
}

// DefaultFlightCapacity is the default ring size — comfortably larger than
// the firing count of any single Table I detection (a detection at the
// 200-point threshold takes at most a few hundred awards).
const DefaultFlightCapacity = 8192

// NewFlightRecorder returns a recorder holding the last capacity events
// (DefaultFlightCapacity if capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[FireEvent], capacity)}
}

// EnableTimestamps makes the recorder stamp every subsequent event's At
// field with the wall-clock capture time. Off by default: timestamps make
// traces non-deterministic, so the conformance suites (which compare
// traces structurally) and the golden tests leave them disabled, while
// audit consumers that want time-to-detection turn them on.
func (r *FlightRecorder) EnableTimestamps() {
	if r == nil {
		return
	}
	r.timestamps.Store(true)
}

// Record captures one event. The event's Seq is assigned by the recorder.
func (r *FlightRecorder) Record(ev FireEvent) {
	if r == nil {
		return
	}
	if r.timestamps.Load() {
		ev.At = time.Now().UnixNano()
	}
	seq := r.pos.Add(1)
	ev.Seq = seq
	r.slots[(seq-1)%uint64(len(r.slots))].Store(&ev)
}

// Recorded returns how many events have ever been recorded (including any
// already overwritten).
func (r *FlightRecorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.pos.Load()
}

// Truncated reports whether the ring has wrapped, i.e. whether any event
// has been overwritten.
func (r *FlightRecorder) Truncated() bool {
	if r == nil {
		return false
	}
	return r.pos.Load() > uint64(len(r.slots))
}

// Dropped returns how many events the ring has overwritten. Consumers that
// treat Events() or a Trace as a complete history must check it: a
// non-zero count means the oldest firings were silently clipped by the
// wraparound and any prefix-sum over the remaining events undercounts.
func (r *FlightRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	n := r.pos.Load()
	if c := uint64(len(r.slots)); n > c {
		return n - c
	}
	return 0
}

// Events returns every buffered event in capture order. Safe to call while
// recording continues; events captured concurrently may or may not appear.
func (r *FlightRecorder) Events() []FireEvent {
	if r == nil {
		return nil
	}
	out := make([]FireEvent, 0, len(r.slots))
	for i := range r.slots {
		if ev := r.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Trace is the ordered indicator-firing history of one scoring group — the
// explanation of a detection. Summing Points over Events reproduces the
// group's score trajectory; the final ScoreAfter is the score the detection
// reported (provided the ring has not wrapped past the group's history).
type Trace struct {
	// Group is the scoring-group PID.
	Group int `json:"group"`
	// TotalPoints is the sum of Points over Events.
	TotalPoints float64 `json:"totalPoints"`
	// Truncated reports that the ring wrapped at some point, so the oldest
	// firings (of any group) may be missing.
	Truncated bool `json:"truncated,omitempty"`
	// Dropped is the recorder's overwritten-event count at extraction time
	// (all groups combined): how much history the wraparound clipped.
	Dropped uint64 `json:"dropped,omitempty"`
	// Events are the group's firings in capture order.
	Events []FireEvent `json:"events"`
}

// Trace extracts the ordered event history of one scoring group.
func (r *FlightRecorder) Trace(group int) Trace {
	t := Trace{Group: group, Truncated: r.Truncated(), Dropped: r.Dropped()}
	for _, ev := range r.Events() {
		if ev.Group != group {
			continue
		}
		t.Events = append(t.Events, ev)
		t.TotalPoints += ev.Points
	}
	return t
}

// Traces extracts one Trace per scoring group present in the buffer,
// ordered by group.
func (r *FlightRecorder) Traces() []Trace {
	byGroup := make(map[int]*Trace)
	var groups []int
	truncated, dropped := r.Truncated(), r.Dropped()
	for _, ev := range r.Events() {
		t, ok := byGroup[ev.Group]
		if !ok {
			t = &Trace{Group: ev.Group, Truncated: truncated, Dropped: dropped}
			byGroup[ev.Group] = t
			groups = append(groups, ev.Group)
		}
		t.Events = append(t.Events, ev)
		t.TotalPoints += ev.Points
	}
	sort.Ints(groups)
	out := make([]Trace, 0, len(groups))
	for _, g := range groups {
		out = append(out, *byGroup[g])
	}
	return out
}

// WriteTraces writes traces as a pretty-printed JSON array.
func WriteTraces(w io.Writer, traces []Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traces)
}

// ReadTraces parses a JSON array written by WriteTraces.
func ReadTraces(rd io.Reader) ([]Trace, error) {
	var out []Trace
	if err := json.NewDecoder(rd).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Snapshot captures the recorder's buffered events (capture order) and its
// all-time recorded count for the snapshot/restore contract. The count must
// travel separately from the events: after a wraparound it exceeds the
// buffer length, and restoring it is what keeps post-restore sequence
// numbers — and therefore whole flight traces — bit-identical to an
// uninterrupted run. Callers must be quiesced (no concurrent Record).
func (r *FlightRecorder) Snapshot() (events []FireEvent, recorded uint64) {
	if r == nil {
		return nil, 0
	}
	return r.Events(), r.pos.Load()
}

// Restore overwrites the recorder's state from a captured snapshot: the
// ring is cleared, each event is placed back in the slot its sequence
// number maps to, and the recorded count resumes where the snapshot left
// off. Events whose slots were since overwritten in the snapshot simply do
// not reappear — exactly the state an uninterrupted recorder would have.
// Callers must be quiesced (no concurrent Record).
func (r *FlightRecorder) Restore(events []FireEvent, recorded uint64) {
	if r == nil {
		return
	}
	for i := range r.slots {
		r.slots[i].Store(nil)
	}
	for i := range events {
		ev := events[i]
		if ev.Seq == 0 || ev.Seq > recorded {
			continue
		}
		r.slots[(ev.Seq-1)%uint64(len(r.slots))].Store(&ev)
	}
	r.pos.Store(recorded)
}
