package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var reg *Registry
	c := reg.Counter("c_total")
	g := reg.Gauge("g")
	h := reg.Histogram("h_seconds", nil)
	reg.GaugeFunc("gf", func() float64 { return 1 })
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles accumulated state")
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var fr *FlightRecorder
	fr.Record(FireEvent{Group: 1})
	if fr.Recorded() != 0 || len(fr.Events()) != 0 || fr.Truncated() {
		t.Fatal("nil flight recorder accumulated state")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total")
	b := reg.Counter("x_total")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	h1 := reg.Histogram("lat_seconds", nil)
	h2 := reg.Histogram("lat_seconds", []float64{1, 2, 3})
	if h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
}

func TestConcurrentCountersAndHistograms(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the goroutines race get-or-create with use.
			c := reg.Counter("races_total")
			h := reg.Histogram("race_seconds", nil)
			g := reg.Gauge("race_gauge")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%10) * 1e-4)
				g.Set(int64(i))
				if i%128 == 0 {
					reg.Snapshot() // concurrent snapshots must be safe
				}
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("races_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	h := reg.Histogram("race_seconds", nil)
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	snap := h.Snapshot()
	var cum uint64
	for _, c := range snap.Counts {
		cum += c
	}
	if cum != snap.Count {
		t.Fatalf("bucket counts sum to %d, total says %d", cum, snap.Count)
	}
	wantSum := float64(workers) * float64(perWorker/10) * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9) * 1e-4
	if math.Abs(snap.Sum-wantSum) > 1e-9 {
		t.Fatalf("histogram sum = %g, want %g", snap.Sum, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in first bucket
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q <= 0 || q > 1 {
		t.Fatalf("p50 = %g, want within (0, 1]", q)
	}
	h2 := newHistogram([]float64{1, 2, 4})
	h2.Observe(100) // +Inf bucket clamps to highest finite bound
	if q := h2.Snapshot().Quantile(0.99); q != 4 {
		t.Fatalf("+Inf quantile = %g, want clamp to 4", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
}

func TestFlightRecorderOrderAndTraces(t *testing.T) {
	fr := NewFlightRecorder(64)
	for i := 0; i < 10; i++ {
		fr.Record(FireEvent{Group: 1 + i%2, OpIndex: int64(i), Indicator: "similarity", Points: 8})
	}
	evs := fr.Events()
	if len(evs) != 10 {
		t.Fatalf("events = %d, want 10", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: seq %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	tr := fr.Trace(1)
	if len(tr.Events) != 5 || tr.TotalPoints != 40 {
		t.Fatalf("trace(1): %d events, %g points; want 5, 40", len(tr.Events), tr.TotalPoints)
	}
	all := fr.Traces()
	if len(all) != 2 || all[0].Group != 1 || all[1].Group != 2 {
		t.Fatalf("traces = %+v, want groups [1 2]", all)
	}
	if fr.Truncated() {
		t.Fatal("recorder reports truncation below capacity")
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	const capacity = 32
	fr := NewFlightRecorder(capacity)
	const total = 100
	for i := 0; i < total; i++ {
		fr.Record(FireEvent{Group: 7, OpIndex: int64(i), Points: 1})
	}
	if !fr.Truncated() {
		t.Fatal("ring wrapped but Truncated() = false")
	}
	if got := fr.Recorded(); got != total {
		t.Fatalf("Recorded() = %d, want %d", got, total)
	}
	evs := fr.Events()
	if len(evs) != capacity {
		t.Fatalf("events = %d, want ring capacity %d", len(evs), capacity)
	}
	// Survivors must be exactly the newest `capacity` events, in order.
	for i, ev := range evs {
		want := uint64(total - capacity + i + 1)
		if ev.Seq != want {
			t.Fatalf("event %d: seq %d, want %d", i, ev.Seq, want)
		}
	}
	if tr := fr.Trace(7); !tr.Truncated {
		t.Fatal("trace of wrapped recorder not marked truncated")
	}
}

func TestFlightRecorderConcurrentRecord(t *testing.T) {
	fr := NewFlightRecorder(1024)
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				fr.Record(FireEvent{Group: w, OpIndex: int64(i), Points: 1})
			}
		}(w)
	}
	wg.Wait()
	if got := fr.Recorded(); got != workers*perWorker {
		t.Fatalf("Recorded() = %d, want %d", got, workers*perWorker)
	}
	evs := fr.Events()
	if len(evs) != 1024 {
		t.Fatalf("events = %d, want 1024 (full ring)", len(evs))
	}
	seen := make(map[uint64]bool, len(evs))
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`engine_indicator_fires_total{indicator="similarity"}`).Add(3)
	reg.Counter(`engine_indicator_fires_total{indicator="type-change"}`).Add(2)
	reg.Counter("engine_content_read_failures_total").Add(1)
	reg.Counter("engine_audit_bundles_total").Add(2)
	reg.Gauge("engine_measure_pool_capacity").Set(4)
	// The span tracer's accounting series, exactly as the engine registers
	// them (core.registerObsSeries).
	tr := NewSpanTracer(4, 1)
	for i := 0; i < 6; i++ {
		tr.Record(Span{Name: "measure"}, time.Now(), 0)
	}
	reg.GaugeFunc("engine_spans_recorded_total", func() float64 { return float64(tr.Recorded()) })
	reg.GaugeFunc("engine_spans_dropped_total", func() float64 { return float64(tr.Dropped()) })
	h := reg.Histogram("demo_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE demo_seconds histogram
demo_seconds_bucket{le="0.1"} 1
demo_seconds_bucket{le="1"} 2
demo_seconds_bucket{le="+Inf"} 3
demo_seconds_sum 5.55
demo_seconds_count 3
# TYPE engine_audit_bundles_total counter
engine_audit_bundles_total 2
# TYPE engine_content_read_failures_total counter
engine_content_read_failures_total 1
# TYPE engine_indicator_fires_total counter
engine_indicator_fires_total{indicator="similarity"} 3
engine_indicator_fires_total{indicator="type-change"} 2
# TYPE engine_measure_pool_capacity gauge
engine_measure_pool_capacity 4
# TYPE engine_spans_dropped_total gauge
engine_spans_dropped_total 2
# TYPE engine_spans_recorded_total gauge
engine_spans_recorded_total 6
`
	if got := buf.String(); got != want {
		t.Fatalf("Prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Output must be deterministic across calls.
	var buf2 bytes.Buffer
	if err := reg.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("WritePrometheus output not deterministic")
	}
}

func TestWriteVars(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_total").Add(9)
	reg.Histogram("lat_seconds", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := reg.WriteVars(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count uint64  `json:"count"`
			P50   float64 `json:"p50"`
		} `json:"histograms"`
		MemStats map[string]uint64 `json:"memstats"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("vars output not JSON: %v", err)
	}
	if doc.Counters["ops_total"] != 9 {
		t.Fatalf("ops_total = %d, want 9", doc.Counters["ops_total"])
	}
	if doc.Histograms["lat_seconds"].Count != 1 {
		t.Fatal("histogram missing from vars")
	}
	if _, ok := doc.MemStats["HeapAlloc"]; !ok {
		t.Fatal("memstats missing from vars")
	}
}

func TestTracesRoundTrip(t *testing.T) {
	fr := NewFlightRecorder(16)
	fr.Record(FireEvent{Group: 3, OpIndex: 10, Path: "/docs/a.txt", Indicator: "type-change", Points: 8, ScoreAfter: 8})
	fr.Record(FireEvent{Group: 3, OpIndex: 11, Indicator: "union-bonus", Points: 30, ScoreAfter: 38, Union: true})
	var buf bytes.Buffer
	if err := WriteTraces(&buf, fr.Traces()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Group != 3 || len(back[0].Events) != 2 {
		t.Fatalf("round-trip = %+v", back)
	}
	if back[0].TotalPoints != 38 || back[0].Events[1].Union != true {
		t.Fatalf("round-trip lost fields: %+v", back[0])
	}
}

func TestHTTPEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total").Inc()
	fr := NewFlightRecorder(8)
	fr.Record(FireEvent{Group: 1, Indicator: "deletion", Points: 6})
	tr := NewSpanTracer(8, 1)
	tr.Record(Span{Name: "op write", Cat: "dispatch", Group: 1}, time.Now(), time.Millisecond)
	srv, addr, err := Serve("127.0.0.1:0", reg, fr, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "hits_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	body, _ = get("/debug/vars")
	if !strings.Contains(body, `"hits_total": 1`) {
		t.Fatalf("/debug/vars missing counter:\n%s", body)
	}
	body, _ = get("/debug/flight")
	var traces []Trace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/debug/flight not JSON: %v", err)
	}
	if len(traces) != 1 || traces[0].TotalPoints != 6 {
		t.Fatalf("/debug/flight = %+v", traces)
	}
	body, ct = get("/debug/trace")
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &chrome); err != nil {
		t.Fatalf("/debug/trace not Chrome trace JSON: %v", err)
	}
	// One metadata event for the lane plus the recorded span.
	if len(chrome.TraceEvents) != 2 {
		t.Fatalf("/debug/trace has %d events, want 2", len(chrome.TraceEvents))
	}
	if !strings.Contains(ct, "application/json") {
		t.Fatalf("/debug/trace content-type = %q", ct)
	}
	body, _ = get("/debug/pprof/cmdline")
	if body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
