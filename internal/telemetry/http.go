package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the live observability endpoints for a registry:
//
//	/metrics       Prometheus text exposition
//	/debug/vars    expvar-style JSON (metrics + memstats)
//	/debug/flight  flight-recorder traces as JSON (when fr is non-nil)
//	/debug/trace   span-tracer buffer as Chrome trace-event JSON (when tr
//	               is non-nil) — load it into chrome://tracing or Perfetto
//	/debug/pprof/  the standard Go profiling endpoints
//
// fr and tr may be nil (the corresponding endpoint is not mounted). The
// pprof handlers are mounted on the returned mux explicitly, so importing
// this package does not pollute http.DefaultServeMux.
func Handler(reg *Registry, fr *FlightRecorder, tr *SpanTracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteVars(w)
	})
	if fr != nil {
		mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = WriteTraces(w, fr.Traces())
		})
	}
	if tr != nil {
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = tr.WriteChromeTrace(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr and serves Handler(reg, fr, tr) in a background
// goroutine. It returns the server (Close to stop) and the bound address —
// useful with ":0" — or an error if the listener cannot be opened.
func Serve(addr string, reg *Registry, fr *FlightRecorder, tr *SpanTracer) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(reg, fr, tr)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
