// Package telemetry is the dependency-free observability core for the
// CryptoDrop engine: atomic counters, gauges and fixed-bucket latency
// histograms collected in a Registry with Prometheus-text and expvar-style
// exposition, plus a lock-free ring-buffer flight recorder that captures the
// ordered sequence of indicator firings behind every detection.
//
// Every metric handle is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram or *FlightRecorder are no-ops, so instrumented code paths cost
// a single nil-check branch when telemetry is disabled. A nil *Registry
// hands out nil handles, letting callers instrument unconditionally:
//
//	var reg *telemetry.Registry // nil: telemetry off
//	fires := reg.Counter(`engine_indicator_fires_total{indicator="similarity"}`)
//	fires.Inc() // no-op
package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative for Prometheus semantics; this is not
// enforced).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use; a
// nil Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with atomic counts, in the
// Prometheus cumulative-bucket model: bounds are upper bucket edges in
// ascending order with an implicit +Inf bucket appended. Observations and
// snapshots are safe for concurrent use; a nil Histogram is a no-op.
type Histogram struct {
	bounds []float64       // upper edges, ascending, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// newHistogram builds a histogram over the given upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (the Prometheus convention
// for latency histograms).
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations (0 for a nil Histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot returns a point-in-time copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the upper bucket edges (the final +Inf edge is implicit).
	Bounds []float64 `json:"bounds"`
	// Counts are per-bucket observation counts, len(Bounds)+1.
	Counts []uint64 `json:"counts"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket, the same estimate Prometheus's
// histogram_quantile computes. It returns 0 for an empty histogram; values
// in the +Inf bucket clamp to the highest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// DefaultLatencyBuckets are upper bounds in seconds spanning 1µs–10s, tuned
// for the engine's measurement and filter-dispatch latencies.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// ScoreBuckets are upper bounds for reputation-score distributions (the
// paper's thresholds sit at 140/200).
func ScoreBuckets() []float64 {
	return []float64{10, 25, 50, 75, 100, 125, 140, 160, 180, 200, 225, 250, 300, 400, 600}
}

// CountBuckets are upper bounds for small-count distributions (files
// transformed before detection and the like).
func CountBuckets() []float64 {
	return []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
}
