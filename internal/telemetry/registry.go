package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry collects named metrics. Metric names follow the Prometheus
// convention and may carry a label set inline:
//
//	engine_detections_total
//	engine_indicator_fires_total{indicator="similarity"}
//
// Registration is get-or-create: asking twice for the same name returns the
// same handle, so independent components can share one registry without
// coordinating. All methods are safe for concurrent use, and every method is
// nil-safe — a nil *Registry hands out nil (no-op) handles.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time (e.g. a queue depth read from a channel). Re-registering a name
// replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the histogram registered under name, creating it with
// the given upper bounds if needed. Bounds of an existing histogram are
// kept; passing nil bounds on first registration uses
// DefaultLatencyBuckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultLatencyBuckets()
		}
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Unregister removes the metric registered under name, whatever its kind.
// It reports whether a metric was removed. Existing handles keep working but
// the metric no longer appears in snapshots or expositions — used by hosts
// to drop per-session gauges when a session closes.
func (r *Registry) Unregister(name string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	removed := false
	if _, ok := r.counters[name]; ok {
		delete(r.counters, name)
		removed = true
	}
	if _, ok := r.gauges[name]; ok {
		delete(r.gauges, name)
		removed = true
	}
	if _, ok := r.gaugeFuncs[name]; ok {
		delete(r.gaugeFuncs, name)
		removed = true
	}
	if _, ok := r.histograms[name]; ok {
		delete(r.histograms, name)
		removed = true
	}
	return removed
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	// Counters maps full metric name to count.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges maps full metric name to value (function gauges included).
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms maps full metric name to histogram state.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. A nil registry yields a zero
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Counters = make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	s.Gauges = make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs))
	for name, g := range r.gauges {
		s.Gauges[name] = float64(g.Value())
	}
	for name, fn := range r.gaugeFuncs {
		s.Gauges[name] = fn()
	}
	s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// splitName separates an inline label set from the metric base name:
// `a_total{x="y"}` → ("a_total", `x="y"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// joinLabels combines an existing label set with an extra label.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format, sorted by name for deterministic output. Histograms expose
// cumulative _bucket series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	type line struct {
		base, text string
		kind       string
	}
	var lines []line
	for name, v := range snap.Counters {
		base, _ := splitName(name)
		lines = append(lines, line{base: base, kind: "counter",
			text: fmt.Sprintf("%s %d\n", name, v)})
	}
	for name, v := range snap.Gauges {
		base, _ := splitName(name)
		lines = append(lines, line{base: base, kind: "gauge",
			text: fmt.Sprintf("%s %s\n", name, formatFloat(v))})
	}
	for name, h := range snap.Histograms {
		base, labels := splitName(name)
		var b strings.Builder
		cum := uint64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{%s} %d\n", base, joinLabels(labels, `le="`+le+`"`), cum)
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", base, suffix, formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", base, suffix, h.Count)
		lines = append(lines, line{base: base, kind: "histogram", text: b.String()})
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].base != lines[j].base {
			return lines[i].base < lines[j].base
		}
		return lines[i].text < lines[j].text
	})
	lastBase := ""
	for _, l := range lines {
		if l.base != lastBase {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", l.base, l.kind); err != nil {
				return err
			}
			lastBase = l.base
		}
		if _, err := io.WriteString(w, l.text); err != nil {
			return err
		}
	}
	return nil
}

// varsPayload is the /debug/vars document: the expvar-style JSON map of
// every metric plus runtime memory statistics.
type varsPayload struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]varsHistogram `json:"histograms"`
	MemStats   map[string]uint64        `json:"memstats"`
}

type varsHistogram struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// WriteVars writes the expvar-style JSON document for /debug/vars:
// counters and gauges as numbers, histograms summarised with quantiles,
// plus a subset of runtime.MemStats.
func (r *Registry) WriteVars(w io.Writer) error {
	snap := r.Snapshot()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p := varsPayload{
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: make(map[string]varsHistogram, len(snap.Histograms)),
		MemStats: map[string]uint64{
			"Alloc":      ms.Alloc,
			"TotalAlloc": ms.TotalAlloc,
			"HeapAlloc":  ms.HeapAlloc,
			"HeapInuse":  ms.HeapInuse,
			"NumGC":      uint64(ms.NumGC),
		},
	}
	for name, h := range snap.Histograms {
		p.Histograms[name] = varsHistogram{
			Count: h.Count,
			Sum:   h.Sum,
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}
