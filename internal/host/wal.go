package host

import (
	"encoding/binary"
	"io"
	"os"
	"sort"

	"cryptodrop/internal/core"
	"cryptodrop/internal/snapshot"
)

// The write-ahead log records every ingested Op batch before it is applied
// to the engine, so a crash between checkpoints loses nothing: recovery
// restores the last checkpoint and replays the WAL tail, reproducing the
// scoreboard bit for bit.
//
// On-disk format — a sequence of framed records:
//
//	uvarint(len(payload)) | payload | u64 FNV-64a(payload), little-endian
//
// where payload is
//
//	varint(start) | uvarint(nops) | op…
//
// and start is the session's ingested-op count when the batch was appended.
// The start counter is what lets replay skip records a later checkpoint
// already covers, including the partial-overlap case where a checkpoint
// landed mid-batch (only the uncovered op suffix replays).
//
// Crash consistency: a torn tail — a record cut short by the crash, or with
// a failed checksum — terminates the read silently. Everything before it is
// intact (records are framed and individually checksummed), and the torn
// record's batch was by definition never durably applied anywhere else, so
// dropping it is the correct recovery, not data loss: the op stream resumes
// from the producer.

// walRecord is one decoded WAL entry.
type walRecord struct {
	// start is the session's ingested-op count when this batch was appended.
	start int64
	// ops is the batch, in submission order.
	ops []Op
}

// EncodeOps appends a count-prefixed op sequence in the canonical op codec —
// the exact encoding the write-ahead log frames, shared with the network
// wire format so a wire frame and a WAL record describe ops identically.
func EncodeOps(enc *snapshot.Encoder, ops []Op) {
	enc.Uvarint(uint64(len(ops)))
	for i := range ops {
		encodeOp(enc, &ops[i])
	}
}

// DecodeOps reads a count-prefixed op sequence written by EncodeOps. Errors
// stick to the decoder; check d.Err after the surrounding structure.
func DecodeOps(d *snapshot.Decoder) []Op {
	n := d.Count()
	if n == 0 {
		return nil
	}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, decodeOp(d))
	}
	return ops
}

// encodeOp writes one Op.
func encodeOp(enc *snapshot.Encoder, op *Op) {
	encodeEvent(enc, &op.Event)
	enc.Bool(op.PreEvent != nil)
	if op.PreEvent != nil {
		encodeEvent(enc, op.PreEvent)
	}
	encodeContentMap(enc, op.Pre)
	encodeContentMap(enc, op.Post)
	enc.Uvarint(uint64(len(op.Evict)))
	for _, id := range op.Evict {
		enc.Uvarint(id)
	}
}

func decodeOp(d *snapshot.Decoder) Op {
	var op Op
	decodeEvent(d, &op.Event)
	if d.Bool() {
		var pre core.Event
		decodeEvent(d, &pre)
		op.PreEvent = &pre
	}
	op.Pre = decodeContentMap(d)
	op.Post = decodeContentMap(d)
	n := d.Count()
	for i := 0; i < n; i++ {
		op.Evict = append(op.Evict, d.Uvarint())
	}
	return op
}

// encodeEvent writes one engine event.
func encodeEvent(enc *snapshot.Encoder, ev *core.Event) {
	enc.Uvarint(uint64(ev.Kind))
	enc.Varint(int64(ev.PID))
	enc.String(ev.Path)
	enc.String(ev.NewPath)
	enc.Uvarint(ev.FileID)
	enc.Uvarint(ev.ReplacedID)
	enc.Bytes(ev.Data)
	enc.Varint(ev.Offset)
	enc.Varint(ev.Size)
	enc.Uvarint(uint64(ev.Flags))
	enc.Bool(ev.Wrote)
}

func decodeEvent(d *snapshot.Decoder, ev *core.Event) {
	ev.Kind = core.EventKind(d.Uvarint())
	ev.PID = int(d.Varint())
	ev.Path = d.String()
	ev.NewPath = d.String()
	ev.FileID = d.Uvarint()
	ev.ReplacedID = d.Uvarint()
	if b := d.Bytes(); len(b) > 0 {
		ev.Data = b
	}
	ev.Offset = d.Varint()
	ev.Size = d.Varint()
	ev.Flags = core.EventFlag(d.Uvarint())
	ev.Wrote = d.Bool()
}

// encodeContentMap writes a file-ID → content map in sorted ID order.
func encodeContentMap(enc *snapshot.Encoder, m map[uint64][]byte) {
	ids := make([]uint64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	enc.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		enc.Uvarint(id)
		enc.Bytes(m[id])
	}
}

func decodeContentMap(d *snapshot.Decoder) map[uint64][]byte {
	n := d.Count()
	if n == 0 {
		return nil
	}
	m := make(map[uint64][]byte, n)
	for i := 0; i < n; i++ {
		id := d.Uvarint()
		m[id] = d.Bytes()
	}
	return m
}

// walFNV is FNV-1a over data, the per-record checksum.
func walFNV(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}

// appendWALRecord frames and appends one batch to the log. The write happens
// before the batch is applied to the engine (write-ahead).
func appendWALRecord(w io.Writer, start int64, ops []Op) error {
	enc := snapshot.NewEncoder()
	enc.Varint(start)
	EncodeOps(enc, ops)
	payload := enc.Data()
	frame := binary.AppendUvarint(nil, uint64(len(payload)))
	frame = append(frame, payload...)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], walFNV(payload))
	frame = append(frame, sum[:]...)
	_, err := w.Write(frame)
	return err
}

// readWAL parses every intact record from a WAL file. A torn or corrupt
// tail terminates the read silently (see the crash-consistency note above);
// a missing file is an empty log.
func readWAL(path string) []walRecord {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var out []walRecord
	for len(data) > 0 {
		n, sz := binary.Uvarint(data)
		if sz <= 0 || n > uint64(len(data)-sz) {
			break // torn length or payload
		}
		payload := data[sz : sz+int(n)]
		rest := data[sz+int(n):]
		if len(rest) < 8 || walFNV(payload) != binary.LittleEndian.Uint64(rest) {
			break // torn or corrupt record
		}
		data = rest[8:]
		d := snapshot.NewDecoder(payload)
		rec := walRecord{start: d.Varint()}
		rec.ops = DecodeOps(d)
		if d.Err() != nil {
			break // checksum passed but structure is bad: treat as torn
		}
		out = append(out, rec)
	}
	return out
}
