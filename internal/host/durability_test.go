package host

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"cryptodrop/internal/core"
	"cryptodrop/internal/snapshot"
	"cryptodrop/internal/telemetry"
)

// plainContent is a deterministic low-entropy "document" for file id.
func plainContent(id uint64, n int) []byte {
	line := fmt.Sprintf("file %d: the quick brown fox jumps over the lazy dog.\n", id)
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString(line)
	}
	return b.Bytes()[:n]
}

// cipherContent is a deterministic high-entropy rewrite of file id, produced
// by a seeded xorshift keystream so every run generates identical bytes.
func cipherContent(id uint64, n int) []byte {
	state := id*2654435761 + 0x9e3779b97f4a7c15
	out := make([]byte, n)
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		out[i] = byte(state)
	}
	return out
}

// encryptOp is one in-place encryption of file id as a single host op: the
// pre-version staged for the destructive-open snapshot, the ciphertext staged
// for the close-time measurement.
func encryptOp(pid int, id uint64) Op {
	path := fmt.Sprintf("/docs/f%d.txt", id)
	plain := plainContent(id, 2048)
	return Op{
		PreEvent: &core.Event{
			Kind: core.EvOpen, PID: pid, Path: path, FileID: id,
			Flags: core.EvWriteIntent, Size: int64(len(plain)),
		},
		Pre:   map[uint64][]byte{id: plain},
		Event: core.Event{Kind: core.EvClose, PID: pid, Path: path, FileID: id, Wrote: true},
		Post:  map[uint64][]byte{id: cipherContent(id, 2048)},
	}
}

// encryptionWorkload is a deterministic n-file Class A attack as host ops.
func encryptionWorkload(pid int, n int) []Op {
	ops := make([]Op, 0, n)
	for id := uint64(1); id <= uint64(n); id++ {
		ops = append(ops, encryptOp(pid, id))
	}
	return ops
}

// submitBatched feeds ops to a session in fixed-size batches.
func submitBatched(t *testing.T, sess *Session, ops []Op, batch int) {
	t.Helper()
	ctx := context.Background()
	for len(ops) > 0 {
		n := batch
		if n > len(ops) {
			n = len(ops)
		}
		if err := sess.Submit(ctx, ops[:n]...); err != nil {
			t.Fatal(err)
		}
		ops = ops[n:]
	}
}

// runReference applies the full workload to an uninterrupted non-durable
// session and returns its final report — the bit-identical expectation.
func runReference(t *testing.T, sc SessionConfig, ops []Op, batch int) SessionReport {
	t.Helper()
	h := New(Config{})
	sess, err := h.Open("ref", sc)
	if err != nil {
		t.Fatal(err)
	}
	submitBatched(t, sess, ops, batch)
	rep, err := h.CloseSession(context.Background(), "ref")
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// requireIdentical asserts the recovered report matches the reference bit
// for bit on everything scoring-visible.
func requireIdentical(t *testing.T, got, want SessionReport) {
	t.Helper()
	if !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Fatalf("scoreboards diverge:\ngot  %+v\nwant %+v", got.Reports, want.Reports)
	}
	if !reflect.DeepEqual(got.Detections, want.Detections) {
		t.Fatalf("detections diverge:\ngot  %+v\nwant %+v", got.Detections, want.Detections)
	}
	if got.Ingested != want.Ingested {
		t.Fatalf("ingested %d, want %d", got.Ingested, want.Ingested)
	}
}

// TestWALRoundTrip pins the WAL encoding: every Op field shape survives the
// append/read cycle exactly.
func TestWALRoundTrip(t *testing.T) {
	pre := core.Event{Kind: core.EvOpen, PID: 7, Path: "/docs/a.txt", FileID: 3,
		Flags: core.EvWriteIntent | core.EvReadIntent, Size: 512}
	records := []walRecord{
		{start: 0, ops: []Op{
			{Event: core.Event{Kind: core.EvWrite, PID: 7, Path: "/docs/a.txt",
				FileID: 3, Data: []byte{0, 1, 2, 0xff}, Offset: 64, Size: 4, Wrote: true}},
		}},
		{start: 1, ops: []Op{
			{
				Event:    core.Event{Kind: core.EvClose, PID: 7, Path: "/docs/a.txt", FileID: 3, Wrote: true},
				PreEvent: &pre,
				Pre:      map[uint64][]byte{3: []byte("before")},
				Post:     map[uint64][]byte{3: []byte("after"), 9: {}},
				Evict:    []uint64{3, 9},
			},
			{Event: core.Event{Kind: core.EvRename, PID: -1, Path: "/docs/a.txt",
				NewPath: "/tmp/a.txt", FileID: 3, ReplacedID: 4, Offset: -8}},
			{}, // baseline-only op with a zero event
		}},
	}

	path := filepath.Join(t.TempDir(), "s.wal")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range records {
		if err := appendWALRecord(f, rec.start, rec.ops); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	got := readWAL(path)
	if !reflect.DeepEqual(got, records) {
		t.Fatalf("WAL round trip diverged:\ngot  %+v\nwant %+v", got, records)
	}
}

// TestWALTornTail pins crash consistency: truncating the log at every
// possible byte boundary, or flipping any byte of the final record, must
// never panic and must still yield every record before the damage.
func TestWALTornTail(t *testing.T) {
	var buf bytes.Buffer
	var lens []int
	const n = 3
	for i := 0; i < n; i++ {
		op := Op{
			Event: core.Event{Kind: core.EvClose, PID: 9,
				Path: fmt.Sprintf("/docs/f%d.txt", i+1), FileID: uint64(i + 1), Wrote: true},
			Post: map[uint64][]byte{uint64(i + 1): cipherContent(uint64(i+1), 24)},
		}
		if err := appendWALRecord(&buf, int64(i), []Op{op}); err != nil {
			t.Fatal(err)
		}
		lens = append(lens, buf.Len())
	}
	full := buf.Bytes()
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	intactBefore := func(cut int) int {
		k := 0
		for k < n && lens[k] <= cut {
			k++
		}
		return k
	}
	for cut := 0; cut < len(full); cut++ {
		got := readWAL(write("trunc.wal", full[:cut]))
		if want := intactBefore(cut); len(got) != want {
			t.Fatalf("truncated at %d: read %d records, want %d", cut, len(got), want)
		}
	}
	// Corruption inside the final record loses only the final record.
	for i := lens[1]; i < len(full); i++ {
		mut := append([]byte{}, full...)
		mut[i] ^= 0x01
		if got := readWAL(write("flip.wal", mut)); len(got) != 2 {
			t.Fatalf("bitflip at %d: read %d records, want 2", i, len(got))
		}
	}
	if got := readWAL(filepath.Join(dir, "missing.wal")); got != nil {
		t.Fatalf("missing WAL read %d records, want none", len(got))
	}
}

// TestCheckpointRoundTripAndMismatch pins the checkpoint envelope: lossless
// round trip, identity refusal, and typed corruption errors.
func TestCheckpointRoundTripAndMismatch(t *testing.T) {
	id := snapshot.Header{Version: hostSnapshotVersion, Registry: "reg-a", Config: "cfg-a"}
	want := &sessionCheckpoint{
		degraded:    true,
		ingested:    41,
		shedBytes:   1 << 33,
		saturations: 5,
		detCount:    2,
		overlay:     map[uint64][]byte{1: []byte("one"), 7: {}},
		engine:      []byte("sealed-engine-snapshot"),
	}
	blob := encodeCheckpoint(id, want)
	got, err := decodeCheckpoint(blob, id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpoint round trip diverged:\ngot  %+v\nwant %+v", got, want)
	}

	var me *snapshot.MismatchError
	if _, err := decodeCheckpoint(blob, snapshot.Header{Version: hostSnapshotVersion,
		Registry: "reg-b", Config: "cfg-a"}); !errors.As(err, &me) || me.Field != "registry" {
		t.Fatalf("registry drift: got %v, want registry-field mismatch", err)
	}
	if _, err := decodeCheckpoint(blob, snapshot.Header{Version: hostSnapshotVersion,
		Registry: "reg-a", Config: "cfg-b"}); !errors.As(err, &me) || me.Field != "config" {
		t.Fatalf("config drift: got %v, want config-field mismatch", err)
	}
	mut := append([]byte{}, blob...)
	mut[len(mut)/2] ^= 0x01
	if _, err := decodeCheckpoint(mut, id); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("corruption: got %v, want ErrCorrupt", err)
	}
}

// TestCheckpointPaths pins the filename mangling for unsafe session IDs.
func TestCheckpointPaths(t *testing.T) {
	ckpt, wal := checkpointPaths("/d", "tenant-1.prod")
	if ckpt != "/d/tenant-1.prod.ckpt" || wal != "/d/tenant-1.prod.wal" {
		t.Fatalf("safe ID mangled: %q, %q", ckpt, wal)
	}
	ckpt, _ = checkpointPaths("/d", "a/../b c")
	if strings.ContainsAny(filepath.Base(ckpt), "/ ") || !strings.HasPrefix(filepath.Base(ckpt), "x") {
		t.Fatalf("unsafe ID not mangled: %q", ckpt)
	}
	if c2, _ := checkpointPaths("/d", "a/../b c"); c2 != ckpt {
		t.Fatal("mangling not deterministic")
	}
	if ckpt, _ := checkpointPaths("/d", ""); filepath.Base(ckpt) != "x.ckpt" {
		t.Fatalf("empty ID: %q", ckpt)
	}
}

// killAndRestore drives the end-to-end crash-recovery contract for one
// session mode: ingest part of a deterministic attack durably, abandon the
// host without any shutdown (the crash), reopen with Restore, finish the
// attack, and require the final report bit-identical to an uninterrupted
// non-durable run.
func killAndRestore(t *testing.T, direct bool, every int) {
	const pid, files, batch = 42, 24, 4
	dir := t.TempDir()
	ops := encryptionWorkload(pid, files)
	engCfg := func() core.Config { return core.DefaultConfig("/docs") }
	want := runReference(t, SessionConfig{Engine: engCfg(), Direct: direct}, ops, batch)
	if len(want.Detections) == 0 {
		t.Fatal("workload fired no detections; the recovery test would prove nothing")
	}

	// Phase 1: durable ingest of the first 2/3, then crash (no Close, no
	// Shutdown — the host is simply abandoned mid-flight).
	cut := (files * 2 / 3 / batch) * batch
	h1 := New(Config{CheckpointDir: dir, CheckpointEvery: every})
	s1, err := h1.Open("victim", SessionConfig{Engine: engCfg(), Direct: direct})
	if err != nil {
		t.Fatal(err)
	}
	submitBatched(t, s1, ops[:cut], batch)
	if err := s1.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s1.DurabilityErr(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: recover into a fresh host and finish the attack.
	h2 := New(Config{CheckpointDir: dir, CheckpointEvery: every, Restore: true})
	s2, err := h2.Open("victim", SessionConfig{Engine: engCfg(), Direct: direct})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Engine().OpIndex(); got != int64(cut) {
		t.Fatalf("restored engine at op %d, want %d", got, cut)
	}
	submitBatched(t, s2, ops[cut:], batch)
	rep, err := h2.CloseSession(context.Background(), "victim")
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.DurabilityErr(); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, rep, want)

	// Phase 3: a clean close leaves a final checkpoint and an empty WAL, so
	// a third restore reproduces the finished state without replaying a thing.
	_, walPath := checkpointPaths(dir, "victim")
	if recs := readWAL(walPath); len(recs) != 0 {
		t.Fatalf("WAL holds %d records after clean close, want 0", len(recs))
	}
	h3 := New(Config{CheckpointDir: dir, Restore: true})
	s3, err := h3.Open("victim", SessionConfig{Engine: engCfg(), Direct: direct})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s3.Reports(), want.Reports) {
		t.Fatal("restore after clean close diverged from final state")
	}
	if !reflect.DeepEqual(s3.Detections(), want.Detections) {
		t.Fatal("restore after clean close lost detections")
	}
}

// TestSessionKillAndRestore covers both ingest modes crossed with both
// recovery regimes: interval checkpoints with a short WAL tail, and pure
// WAL replay from an op-zero baseline (no checkpoint ever written before
// the crash).
func TestSessionKillAndRestore(t *testing.T) {
	for _, tc := range []struct {
		name   string
		direct bool
		every  int
	}{
		{"queued-checkpointed", false, 5},
		{"queued-wal-only", false, 0},
		{"direct-checkpointed", true, 5},
		{"direct-wal-only", true, 0},
	} {
		t.Run(tc.name, func(t *testing.T) { killAndRestore(t, tc.direct, tc.every) })
	}
}

// TestRestorePartialWALOverlap pins the mid-batch replay slice: a WAL record
// that straddles the checkpoint's ingested count must replay only its
// uncovered op suffix. The straddling record is planted by hand — the
// running session always checkpoints on batch boundaries, but a crash
// between the checkpoint rename and the WAL truncate legitimately leaves
// overlapping records behind.
func TestRestorePartialWALOverlap(t *testing.T) {
	const pid = 43
	dir := t.TempDir()
	ops := encryptionWorkload(pid, 6)
	engCfg := func() core.Config { return core.DefaultConfig("/docs") }
	want := runReference(t, SessionConfig{Engine: engCfg(), Direct: true}, ops, 6)

	// Durable session ingests ops 0..3 and checkpoints (WAL truncates).
	h1 := New(Config{CheckpointDir: dir})
	s1, err := h1.Open("v", SessionConfig{Engine: engCfg(), Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Submit(context.Background(), ops[:4]...); err != nil {
		t.Fatal(err)
	}
	if err := s1.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Plant a record covering ops 2..5: starts before the checkpoint's
	// ingested count of 4, ends after it.
	_, walPath := checkpointPaths(dir, "v")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := appendWALRecord(f, 2, ops[2:6]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	h2 := New(Config{CheckpointDir: dir, Restore: true})
	s2, err := h2.Open("v", SessionConfig{Engine: engCfg(), Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Engine().OpIndex(); got != 6 {
		t.Fatalf("restored engine at op %d, want 6 (replayed suffix only)", got)
	}
	rep, err := h2.CloseSession(context.Background(), "v")
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, rep, want)
}

// TestRestoreIdentityMismatch: reopening a checkpoint under a drifted engine
// configuration must refuse the session with the typed mismatch error.
func TestRestoreIdentityMismatch(t *testing.T) {
	dir := t.TempDir()
	h1 := New(Config{CheckpointDir: dir})
	s1, err := h1.Open("v", SessionConfig{Engine: core.DefaultConfig("/docs"), Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Submit(context.Background(), encryptionWorkload(1, 3)...); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.CloseSession(context.Background(), "v"); err != nil {
		t.Fatal(err)
	}

	drifted := core.DefaultConfig("/docs")
	drifted.NonUnionThreshold = 150
	h2 := New(Config{CheckpointDir: dir, Restore: true})
	if _, err := h2.Open("v", SessionConfig{Engine: drifted, Direct: true}); !errors.Is(err, core.ErrSnapshotMismatch) {
		t.Fatalf("drifted restore: got %v, want ErrSnapshotMismatch", err)
	}
}

// TestFreshOpenTruncatesStale: without Restore, opening over leftover state
// starts from zero and replaces the stale files.
func TestFreshOpenTruncatesStale(t *testing.T) {
	const pid = 44
	dir := t.TempDir()
	engCfg := func() core.Config { return core.DefaultConfig("/docs") }

	h1 := New(Config{CheckpointDir: dir})
	s1, err := h1.Open("v", SessionConfig{Engine: engCfg(), Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Submit(context.Background(), encryptionWorkload(pid, 8)...); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.CloseSession(context.Background(), "v"); err != nil {
		t.Fatal(err)
	}

	// Fresh (non-restore) open: prior state must be invisible...
	second := encryptionWorkload(pid, 2)
	want := runReference(t, SessionConfig{Engine: engCfg(), Direct: true}, second, 2)
	h2 := New(Config{CheckpointDir: dir})
	s2, err := h2.Open("v", SessionConfig{Engine: engCfg(), Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Engine().OpIndex(); got != 0 {
		t.Fatalf("fresh open inherited %d ops of stale state", got)
	}
	if err := s2.Submit(context.Background(), second...); err != nil {
		t.Fatal(err)
	}
	rep, err := h2.CloseSession(context.Background(), "v")
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, rep, want)

	// ...and the files on disk now describe only the second run.
	h3 := New(Config{CheckpointDir: dir, Restore: true})
	s3, err := h3.Open("v", SessionConfig{Engine: engCfg(), Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s3.Reports(), want.Reports) {
		t.Fatal("restore after fresh rewrite resurrected stale state")
	}
}

// TestDegradedSessionRestores: the one-way degrade latch, its shed-byte
// ledger and the engine's payload-blind flag all survive a crash, so a
// recovered overloaded session keeps shedding exactly where it stopped.
func TestDegradedSessionRestores(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	h1 := New(Config{CheckpointDir: dir, Telemetry: reg})
	gate := make(chan struct{})
	s1, err := h1.Open("v", SessionConfig{
		Engine:       core.DefaultConfig("/docs"),
		Source:       gateSource{gate: gate},
		QueueDepth:   2,
		DegradeAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Stall the worker on gated content, saturate past the degrade threshold.
	for i := uint64(1); i <= 3; i++ {
		if err := s1.Submit(ctx, closeOp(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := s1.TrySubmit(closeOp(1, 99)); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("TrySubmit on full queue = %v, want ErrOverloaded", err)
		}
	}
	if !s1.Degraded() {
		t.Fatal("session not degraded")
	}
	close(gate)
	payload := []byte("0123456789abcdef")
	if err := s1.Submit(ctx, writeOp(1, 200, payload)); err != nil {
		t.Fatal(err)
	}
	if err := s1.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon h1.

	h2 := New(Config{CheckpointDir: dir, Telemetry: telemetry.NewRegistry(), Restore: true})
	s2, err := h2.Open("v", SessionConfig{Engine: core.DefaultConfig("/docs"), Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Degraded() {
		t.Fatal("degrade latch did not survive the crash")
	}
	if !s2.Engine().PayloadBlind() {
		t.Fatal("engine not payload-blind after degraded restore")
	}
	// Shedding resumes: new payload bytes accumulate on the restored ledger.
	if err := s2.Submit(ctx, writeOp(1, 201, payload)); err != nil {
		t.Fatal(err)
	}
	rep, err := h2.CloseSession(context.Background(), "v")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("final report lost the degraded flag")
	}
	if want := int64(2 * len(payload)); rep.ShedBytes != want {
		t.Fatalf("shed bytes after restore = %d, want %d (restored + new)", rep.ShedBytes, want)
	}
}

// TestCheckpointOnShutdownAndErrors covers the remaining durability edges:
// an unwritable checkpoint dir refuses Open, explicit Checkpoint on a
// non-durable session is a no-op, and closed sessions refuse Checkpoint.
func TestCheckpointOnShutdownAndErrors(t *testing.T) {
	// A file where the checkpoint dir should be → Open fails cleanly.
	base := t.TempDir()
	notDir := filepath.Join(base, "occupied")
	if err := os.WriteFile(notDir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	h := New(Config{CheckpointDir: filepath.Join(notDir, "ckpts")})
	if _, err := h.Open("v", SessionConfig{Engine: core.DefaultConfig("/docs")}); err == nil {
		t.Fatal("Open with unusable checkpoint dir succeeded")
	}
	if ids := h.Sessions(); len(ids) != 0 {
		t.Fatalf("failed Open left sessions registered: %v", ids)
	}

	// Non-durable Checkpoint: explicit no-op.
	h2 := New(Config{})
	s, err := h2.Open("v", SessionConfig{Engine: core.DefaultConfig("/docs")})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(context.Background()); err != nil {
		t.Fatalf("non-durable Checkpoint = %v, want nil", err)
	}
	if err := s.DurabilityErr(); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.CloseSession(context.Background(), "v"); err != nil {
		t.Fatal(err)
	}

	// Checkpoint after close → ErrSessionClosed (both modes).
	dir := t.TempDir()
	for _, direct := range []bool{false, true} {
		h3 := New(Config{CheckpointDir: dir})
		id := fmt.Sprintf("m%v", direct)
		s3, err := h3.Open(id, SessionConfig{Engine: core.DefaultConfig("/docs"), Direct: direct})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h3.Close(id); err != nil {
			t.Fatal(err)
		}
		if err := s3.Checkpoint(context.Background()); !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("Checkpoint after close (direct=%v) = %v, want ErrSessionClosed", direct, err)
		}
	}

	// A queued Checkpoint blocked behind a stalled worker respects its ctx.
	gate := make(chan struct{})
	defer close(gate)
	h4 := New(Config{CheckpointDir: t.TempDir()})
	s4, err := h4.Open("stuck", SessionConfig{
		Engine: core.DefaultConfig("/docs"),
		Source: gateSource{gate: gate},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s4.Submit(context.Background(), closeOp(1, 1)); err != nil {
		t.Fatal(err)
	}
	shortCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s4.Checkpoint(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled Checkpoint = %v, want DeadlineExceeded", err)
	}
}
