package host

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"cryptodrop/internal/core"
	"cryptodrop/internal/telemetry"
)

// gateSource blocks every Content lookup until the gate closes, stalling
// the session worker inside a measurement so the queue backs up on demand.
type gateSource struct{ gate chan struct{} }

func (g gateSource) Content(uint64) ([]byte, error) {
	<-g.gate
	return nil, errors.New("gate: no content")
}

// closeOp is an op whose Handle needs file content (a completed rewrite),
// forcing the engine through the session's ContentSource.
func closeOp(pid int, id uint64) Op {
	return Op{Event: core.Event{
		Kind: core.EvClose, PID: pid, Path: fmt.Sprintf("/docs/f%d.txt", id),
		FileID: id, Wrote: true,
	}}
}

// writeOp carries payload bytes, the material degraded sessions shed.
func writeOp(pid int, id uint64, data []byte) Op {
	return Op{Event: core.Event{
		Kind: core.EvWrite, PID: pid, Path: fmt.Sprintf("/docs/f%d.txt", id),
		FileID: id, Data: data,
	}}
}

// TestOverloadBackpressureAndDegradeOnce drives the full overload policy:
// a stalled worker saturates the queue, non-blocking submissions overload,
// the degrade transition fires exactly once, blocked submissions see
// backpressure bounded by their context, and — once degraded — payload
// bytes are shed and counted. Telemetry counters must match each decision.
func TestOverloadBackpressureAndDegradeOnce(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := New(Config{Telemetry: reg})
	gate := make(chan struct{})
	sess, err := h.Open("tenant", SessionConfig{
		Engine:       core.DefaultConfig("/docs"),
		Source:       gateSource{gate: gate},
		QueueDepth:   2,
		DegradeAfter: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Three batches: the worker takes the first and stalls in the gated
	// content read; the other two fill the depth-2 queue.
	for i := uint64(1); i <= 3; i++ {
		if err := sess.Submit(ctx, closeOp(1, i)); err != nil {
			t.Fatal(err)
		}
	}

	// Saturated: TrySubmit overloads, and the third consecutive saturation
	// degrades the session — exactly once, however long the streak runs.
	for i := 0; i < 6; i++ {
		err := sess.TrySubmit(closeOp(1, 99))
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("TrySubmit on full queue = %v, want ErrOverloaded", err)
		}
	}
	if !sess.Degraded() {
		t.Fatal("session not degraded after sustained saturation")
	}
	if !sess.Engine().PayloadBlind() {
		t.Fatal("degraded session's engine not payload-blind")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["host_degrades_total"]; got != 1 {
		t.Fatalf("host_degrades_total = %d, want exactly 1", got)
	}
	if got := snap.Gauges[`host_session_degraded{session="tenant"}`]; got != 1 {
		t.Fatalf("degraded gauge = %v, want 1", got)
	}

	// Blocking Submit feels backpressure: it must not return until its
	// context expires (the worker is still stalled).
	shortCtx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := sess.Submit(shortCtx, closeOp(1, 100)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit under saturation = %v, want DeadlineExceeded", err)
	}
	if got := reg.Snapshot().Counters["host_backpressure_waits_total"]; got < 1 {
		t.Fatalf("host_backpressure_waits_total = %d, want >= 1", got)
	}

	// Release the worker; the degraded session keeps scoring but sheds
	// payload bytes.
	close(gate)
	payload := []byte("0123456789abcdef")
	if err := sess.Submit(ctx, writeOp(1, 200, payload)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters[`host_session_shed_bytes_total{session="tenant"}`]; got != int64(len(payload)) {
		t.Fatalf("shed bytes counter = %d, want %d", got, len(payload))
	}

	rep, err := h.CloseSession(context.Background(), "tenant")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("final report lost the degraded flag")
	}
	if rep.ShedBytes != int64(len(payload)) {
		t.Fatalf("final report shed %d bytes, want %d", rep.ShedBytes, len(payload))
	}
	if rep.Ingested != 4 { // 3 stalls + 1 write; overloaded/expired submissions never enqueued
		t.Fatalf("final report ingested %d ops, want 4", rep.Ingested)
	}
	if got := reg.Snapshot().Counters["host_degrades_total"]; got != 1 {
		t.Fatalf("host_degrades_total after close = %d, want still 1", got)
	}
}

// trackingGate is gateSource plus an unbuffered entry signal, so the test
// knows exactly when the worker is stalled inside a content read.
type trackingGate struct {
	entered chan struct{}
	gate    chan struct{}
}

func (g trackingGate) Content(uint64) ([]byte, error) {
	g.entered <- struct{}{}
	<-g.gate
	return nil, errors.New("gate: no content")
}

// TestSubmitResetsSaturationStreak pins that a successful (unsaturated)
// submission resets the degrade streak: intermittent pressure short of the
// threshold never degrades, no matter how long it goes on.
func TestSubmitResetsSaturationStreak(t *testing.T) {
	h := New(Config{})
	g := trackingGate{entered: make(chan struct{}), gate: make(chan struct{})}
	sess, err := h.Open("s", SessionConfig{
		Engine:       core.DefaultConfig("/docs"),
		Source:       g,
		QueueDepth:   1,
		DegradeAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	stalled := func(op Op) {
		t.Helper()
		if err := sess.Submit(ctx, op); err != nil {
			t.Fatal(err)
		}
		select {
		case <-g.entered: // worker is now stalled inside the content read
		case <-time.After(5 * time.Second):
			t.Fatal("worker never reached the gate")
		}
	}
	for round := 0; round < 3; round++ {
		// Stall the worker and fill the depth-1 queue: both submissions take
		// the fast path (the worker demonstrably holds the first op), each
		// resetting the streak left by the previous round's saturation.
		stalled(closeOp(1, 1))
		if err := sess.Submit(ctx, closeOp(1, 2)); err != nil {
			t.Fatal(err)
		}
		// One saturation: streak 1, below the threshold of 2.
		if err := sess.TrySubmit(closeOp(1, 3)); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("round %d: want ErrOverloaded, got %v", round, err)
		}
		if sess.Degraded() {
			t.Fatalf("round %d: degraded despite streak below threshold", round)
		}
		// Drain both ops so the next round starts from an empty queue.
		g.gate <- struct{}{}
		select {
		case <-g.entered: // worker moved on to the second op
		case <-time.After(5 * time.Second):
			t.Fatal("worker never picked up the second op")
		}
		g.gate <- struct{}{}
		if err := sess.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if sess.Degraded() {
		t.Fatal("session degraded; successful submissions must reset the streak")
	}
	if _, err := h.CloseSession(context.Background(), "s"); err != nil {
		t.Fatal(err)
	}
}

// TestSessionLifecycle covers Open/Get/Close/EvictIdle/Shutdown and the
// typed sentinel errors on every misuse.
func TestSessionLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := New(Config{Telemetry: reg})
	ctx := context.Background()
	mk := func(id string) *Session {
		t.Helper()
		s, err := h.Open(id, SessionConfig{Engine: core.DefaultConfig("/docs")})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk("a"), mk("b")
	mk("c")

	if _, err := h.Open("a", SessionConfig{}); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("duplicate Open = %v, want ErrSessionExists", err)
	}
	if got, ok := h.Get("a"); !ok || got != a {
		t.Fatal("Get(a) did not return the open session")
	}
	if ids := h.Sessions(); len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Fatalf("Sessions() = %v", ids)
	}
	if got := reg.Snapshot().Gauges["host_sessions_open"]; got != 3 {
		t.Fatalf("host_sessions_open = %v, want 3", got)
	}

	// Close drains and reports; the ID becomes available again.
	if err := a.Submit(ctx, writeOp(1, 1, []byte("hello"))); err != nil {
		t.Fatal(err)
	}
	rep, err := h.CloseSession(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "a" || rep.Ingested != 1 {
		t.Fatalf("close report = %+v, want ID a with 1 ingested op", rep)
	}
	if err := a.Submit(ctx, writeOp(1, 1, nil)); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Submit after close = %v, want ErrSessionClosed", err)
	}
	if err := a.Flush(ctx); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Flush after close = %v, want ErrSessionClosed", err)
	}
	if _, err := h.CloseSession(context.Background(), "a"); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("double Close = %v, want ErrSessionClosed", err)
	}
	if _, ok := h.Get("a"); ok {
		t.Fatal("closed session still listed")
	}
	mk("a") // ID reusable after close

	// EvictIdleSessions(0) evicts everything, final snapshots included.
	if err := b.Submit(ctx, writeOp(2, 2, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	evicted, err := h.EvictIdleSessions(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 3 {
		t.Fatalf("EvictIdle(0) evicted %d sessions, want 3", len(evicted))
	}
	for _, r := range evicted {
		if r.ID == "b" && r.Ingested != 1 {
			t.Fatalf("evicted report for b = %+v, want 1 ingested op", r)
		}
	}
	if len(h.Sessions()) != 0 {
		t.Fatal("sessions remain after EvictIdle(0)")
	}

	// Per-session telemetry series are unregistered on close.
	for name := range reg.Snapshot().Counters {
		if name == `host_session_events_total{session="b"}` {
			t.Fatal("per-session series survived eviction")
		}
	}

	// Shutdown: drains, reports, and the host refuses new sessions.
	mk("z")
	reports, err := h.Shutdown(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].ID != "z" {
		t.Fatalf("shutdown reports = %+v, want one for z", reports)
	}
	if _, err := h.Open("w", SessionConfig{}); !errors.Is(err, ErrHostClosed) {
		t.Fatalf("Open after Shutdown = %v, want ErrHostClosed", err)
	}
	if reports, err := h.Shutdown(ctx); err != nil || reports != nil {
		t.Fatalf("second Shutdown = (%v, %v), want (nil, nil)", reports, err)
	}
}

// TestShutdownContextExpiry: a stalled session makes Shutdown return the
// context error along with whatever drained in time.
func TestShutdownContextExpiry(t *testing.T) {
	h := New(Config{})
	gate := make(chan struct{})
	defer close(gate)
	sess, err := h.Open("stuck", SessionConfig{
		Engine: core.DefaultConfig("/docs"),
		Source: gateSource{gate: gate},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(context.Background(), closeOp(1, 1)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := h.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with stalled worker = %v, want DeadlineExceeded", err)
	}
}

// TestDirectSessionSynchronous: a direct session applies on the caller's
// goroutine with no queue, and still reports and closes cleanly.
func TestDirectSessionSynchronous(t *testing.T) {
	h := New(Config{})
	sess, err := h.Open("direct", SessionConfig{Engine: core.DefaultConfig("/docs"), Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := sess.Submit(ctx, writeOp(1, 1, []byte("abc"))); err != nil {
		t.Fatal(err)
	}
	// Synchronous: the op is visible without any Flush.
	if got := sess.Engine().OpIndex(); got != 1 {
		t.Fatalf("direct session OpIndex = %d immediately after Submit, want 1", got)
	}
	rep, err := h.CloseSession(context.Background(), "direct")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ingested != 1 {
		t.Fatalf("direct session ingested %d, want 1", rep.Ingested)
	}
	if err := sess.Submit(ctx, writeOp(1, 1, nil)); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Submit after close = %v, want ErrSessionClosed", err)
	}
}
