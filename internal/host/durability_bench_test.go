package host

// Benchmarks for the durability layer. BenchmarkSessionIngestDurable runs
// the standard ingest workload under four regimes: "off" is the control
// (identical to BenchmarkSessionIngest/direct — the configuration whose
// overhead vs the pre-PR baseline must stay ≤3%), "wal" write-ahead-logs
// every batch, "ckpt" adds interval checkpoints on top, and "every-op"
// checkpoints after every single op — the pathological worst case, priced
// so nobody ships it by accident. BenchmarkSessionRestore measures recovery
// latency: open-with-Restore from a checkpoint alone and from a checkpoint
// plus a WAL tail that must replay through the engine.

import (
	"context"
	"fmt"
	"os"
	"testing"

	"cryptodrop/internal/core"
)

func BenchmarkSessionIngestDurable(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchSessionIngestHost(b, true, Config{}, 16)
	})
	b.Run("wal", func(b *testing.B) {
		benchSessionIngestHost(b, true, Config{CheckpointDir: b.TempDir()}, 16)
	})
	b.Run("ckpt-every-4096", func(b *testing.B) {
		benchSessionIngestHost(b, true, Config{CheckpointDir: b.TempDir(), CheckpointEvery: 4096}, 16)
	})
	b.Run("every-op", func(b *testing.B) {
		benchSessionIngestHost(b, true, Config{CheckpointDir: b.TempDir(), CheckpointEvery: 1}, 1)
	})
}

// stageCrashState runs a durable session through ckptOps encryption ops, a
// forced checkpoint, then tailOps more ops that land only in the WAL, and
// abandons the host — leaving dir exactly as a crash would.
func stageCrashState(b *testing.B, dir string, ckptOps, tailOps int) {
	b.Helper()
	ctx := context.Background()
	h := New(Config{CheckpointDir: dir})
	sess, err := h.Open("bench", sessionBenchConfig())
	if err != nil {
		b.Fatal(err)
	}
	ops := encryptionWorkload(9, ckptOps+tailOps)
	if err := sess.Submit(ctx, ops[:ckptOps]...); err != nil {
		b.Fatal(err)
	}
	if err := sess.Checkpoint(ctx); err != nil {
		b.Fatal(err)
	}
	if err := sess.Submit(ctx, ops[ckptOps:]...); err != nil {
		b.Fatal(err)
	}
	if err := sess.Flush(ctx); err != nil {
		b.Fatal(err)
	}
	if err := sess.DurabilityErr(); err != nil {
		b.Fatal(err)
	}
}

func sessionBenchConfig() SessionConfig {
	return SessionConfig{Engine: core.DefaultConfig("/docs"), DegradeAfter: -1}
}

func BenchmarkSessionRestore(b *testing.B) {
	for _, tail := range []int{0, 256} {
		b.Run(fmt.Sprintf("walTail=%d", tail), func(b *testing.B) {
			// Pristine post-crash state, staged once. A restore with a WAL
			// tail rewrites the checkpoint and truncates the log, so each
			// iteration restores from a fresh copy.
			pristine := b.TempDir()
			stageCrashState(b, pristine, 256, tail)
			ckptSrc, walSrc := checkpointPaths(pristine, "bench")
			ckptBytes, err := os.ReadFile(ckptSrc)
			if err != nil {
				b.Fatal(err)
			}
			walBytes, err := os.ReadFile(walSrc)
			if err != nil {
				b.Fatal(err)
			}
			work := b.TempDir()
			ckptDst, walDst := checkpointPaths(work, "bench")

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := os.WriteFile(ckptDst, ckptBytes, 0o644); err != nil {
					b.Fatal(err)
				}
				if err := os.WriteFile(walDst, walBytes, 0o644); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()

				h := New(Config{CheckpointDir: work, Restore: true})
				sess, err := h.Open("bench", sessionBenchConfig())
				if err != nil {
					b.Fatal(err)
				}

				b.StopTimer()
				if got := sess.Ingested(); got != int64(256+tail) {
					b.Fatalf("restored at op %d, want %d", got, 256+tail)
				}
				if _, err := h.CloseSession(context.Background(), "bench"); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
