package host

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cryptodrop/internal/core"
	"cryptodrop/internal/snapshot"
	"cryptodrop/internal/telemetry"
)

// SessionConfig configures one detector session.
type SessionConfig struct {
	// Engine is the detection-engine configuration; the session builds its
	// own core.Engine from it. Workers, telemetry, flight recorder and the
	// detection callback all pass through untouched.
	Engine core.Config
	// Source resolves file content the producer did not stage in Op.Pre /
	// Op.Post. Producers that carry every needed snapshot in their Ops
	// (e.g. trace replay) leave it nil.
	Source core.ContentSource
	// QueueDepth overrides the host's per-session queue capacity, in
	// batches. Zero inherits the host default.
	QueueDepth int
	// DegradeAfter overrides how many consecutive saturated submissions
	// degrade the session to payload-blind scoring. Zero inherits the host
	// default; negative disables degradation for this session.
	DegradeAfter int
	// Direct disables the ingest queue: Submit applies ops synchronously on
	// the caller's goroutine and backpressure/degradation never engage.
	// This is the mode the single-session cryptodrop.Monitor runs in, where
	// the producer is the filesystem interposition layer itself and scoring
	// must be ordered exactly with the operation stream.
	Direct bool
	// Recoverer, if set, arms detect-then-recover: each detection triggers
	// one rollback of the convicted group (after the Engine.OnDetection
	// callback, so enforcement runs first), the outcome is appended to the
	// session report and stamped into the detection's audit bundle, and
	// groups that finish the session without a verdict are exonerated via
	// Engine.OnExonerate when the session drains.
	Recoverer Recoverer
}

// Op is one unit of ingest work: a backend-neutral engine event plus the
// content snapshots the engine needs to score it. Because application is
// deferred, the producer's world may have moved on by the time the worker
// runs — so every byte the engine should see travels inside the Op, and the
// worker installs it into the session's content overlay at the right moment:
//
//	install Pre → Engine.PreEvent → install Post → Engine.Handle → drop Evict
//
// Pre therefore carries pre-operation content (what PreEvent snapshots:
// the version about to be destroyed) and Post carries post-operation
// content (what Handle measures: the completed transformation). IDs absent
// from the overlay fall through to SessionConfig.Source.
type Op struct {
	// Event is the operation handed to Engine.Handle. An Op with a zero
	// Event.Kind runs only its PreEvent side — a baseline-only op, used to
	// snapshot a file's previous version without scoring anything (the
	// queued equivalent of livewatch's Prime).
	Event core.Event
	// PreEvent, when non-nil, is handed to Engine.PreEvent instead of
	// Event. Producers use it when the two sides of the pair differ — e.g.
	// a truncating open whose PreEvent must carry the pre-truncation size.
	PreEvent *core.Event
	// Pre maps file ID → content installed before PreEvent runs.
	Pre map[uint64][]byte
	// Post maps file ID → content installed after PreEvent and before
	// Handle runs.
	Post map[uint64][]byte
	// Evict lists file IDs dropped from the overlay after Handle returns
	// (e.g. deleted files, so the overlay does not grow without bound).
	Evict []uint64
}

// SessionReport is the final snapshot returned when a session closes.
type SessionReport struct {
	// ID is the session's host-assigned identifier.
	ID string
	// Reports are the per-process scoreboard snapshots, ordered by PID.
	Reports []core.ProcessReport
	// Detections are all detections the session fired, in occurrence order.
	Detections []core.Detection
	// Degraded reports whether the session ended in payload-blind mode.
	Degraded bool
	// Ingested counts ops applied to the engine.
	Ingested int64
	// ShedBytes counts payload bytes stripped after degradation.
	ShedBytes int64
	// Recoveries are the rollback outcomes of every detection-triggered
	// recovery, in detection order (empty without a Recoverer).
	Recoveries []RecoveryOutcome
}

// batch is one queue element: a slice of ops, or a flush/checkpoint marker.
type batch struct {
	ops []Op
	// flushed, when non-nil, marks a barrier: the worker closes it once
	// every earlier batch has been applied.
	flushed chan struct{}
	// ckpt, when non-nil, asks the worker to checkpoint between batches
	// (where the engine is quiescent) and report the result.
	ckpt chan error
	// enq is the submission time, stamped only when the session has a span
	// tracer — it feeds the queue-wait span, and staying zero otherwise keeps
	// the clock read off the untraced ingest path.
	enq time.Time
}

// Session is one detector instance inside a Host: a core.Engine, its
// content overlay, and (unless Direct) a bounded ingest queue drained by a
// single worker goroutine. All methods are safe for concurrent use, but the
// engine's ordering contract still binds producers: events for one scoring
// group must be submitted in operation order from one goroutine (distinct
// groups may use distinct goroutines against the same session).
type Session struct {
	id      string
	host    *Host
	eng     *core.Engine
	overlay *overlaySource

	direct       bool
	directMu     sync.Mutex
	degradeAfter int

	// qmu guards closed against the queue closing: Submit holds the read
	// side across its (possibly blocking) send, so seal's write lock cannot
	// proceed while any sender is in flight — close(queue) never races a
	// send. Workers drain the queue independently, so blocked senders
	// always finish.
	qmu    sync.RWMutex
	closed bool
	queue  chan batch
	done   chan struct{}

	satStreak  atomic.Int32
	degraded   atomic.Bool
	ingested   atomic.Int64
	shedBytes  atomic.Int64
	lastActive atomic.Int64

	// saturations counts submissions (blocking or not) that found the queue
	// full; detCount and lastDet track the session's detections for the
	// introspection snapshot.
	saturations atomic.Int64
	detCount    atomic.Int64
	lastDet     atomic.Pointer[LastDetection]

	// spans, when non-nil, is the engine's span tracer; the session adds the
	// ingest-side queue-wait span to the causal picture the engine records.
	spans *telemetry.SpanTracer

	// recoveries accumulates rollback outcomes in detection order; recLatest
	// keeps the most recent outcome per group for the audit-bundle stamp.
	// Both are guarded by recMu (detections may fire from any submitting
	// goroutine).
	recMu      sync.Mutex
	recoveries []RecoveryOutcome
	recLatest  map[int]RecoveryOutcome

	// Durability (Config.CheckpointDir). ckptPath empty means the session is
	// not durable. wal and sinceCkpt are touched only on the applying
	// goroutine — the worker for queued sessions, under directMu for direct
	// ones — so they need no further locking; durErr records the first
	// durability I/O failure for any goroutine to read.
	ckptPath        string
	walPath         string
	checkpointEvery int
	wal             *os.File
	sinceCkpt       int
	durMu           sync.Mutex
	durErr          error

	// Per-session telemetry handles (nil-safe).
	events   *telemetry.Counter
	shed     *telemetry.Counter
	degGauge *telemetry.Gauge
	// telNames lists the registered per-session series for cleanup.
	telNames []string
}

func newSession(h *Host, id string, sc SessionConfig) (*Session, error) {
	depth := sc.QueueDepth
	if depth <= 0 {
		depth = h.cfg.QueueDepth
	}
	degradeAfter := sc.DegradeAfter
	if degradeAfter == 0 {
		degradeAfter = h.cfg.DegradeAfter
	}
	s := &Session{
		id:           id,
		host:         h,
		direct:       sc.Direct,
		degradeAfter: degradeAfter,
		done:         make(chan struct{}),
	}
	if sc.Engine.MeasureCache == nil {
		// Sessions inherit the host-wide memo cache unless they bring their
		// own (or the host has none either, leaving memoization off).
		sc.Engine.MeasureCache = h.cfg.MeasureCache
	}
	if sc.Engine.SessionID == "" {
		// Audit bundles from this engine carry the host's session ID unless
		// the caller claimed a different one.
		sc.Engine.SessionID = id
	}
	s.spans = sc.Engine.SpanTracer
	// The introspection snapshot reports each session's last detection; the
	// wrapper observes and forwards, never filters, so the caller's callback
	// semantics are untouched.
	inner := sc.Engine.OnDetection
	rec := sc.Recoverer
	sc.Engine.OnDetection = func(d core.Detection) {
		s.detCount.Add(1)
		s.lastDet.Store(&LastDetection{
			PID: d.PID, Score: d.Score, Union: d.Union,
			OpIndex: d.OpIndex, AtNs: time.Now().UnixNano(),
		})
		if inner != nil {
			inner(d)
		}
		if rec != nil {
			// Rollback runs after the caller's callback so enforcement
			// (suspending the convicted family) precedes recovery — the
			// detect-then-recover order of the paper's containment story.
			out := rec.Recover(d.PID)
			s.recMu.Lock()
			s.recoveries = append(s.recoveries, out)
			s.recLatest[d.PID] = out
			s.recMu.Unlock()
		}
	}
	if rec != nil {
		s.recLatest = make(map[int]RecoveryOutcome)
		if sink := sc.Engine.AuditSink; sink != nil {
			// The engine emits each bundle right after OnDetection returns,
			// so the group's rollback outcome is already recorded when the
			// stamping sink sees it.
			sc.Engine.AuditSink = &recoveryStampSink{s: s, inner: sink}
		}
	}
	s.overlay = newOverlaySource(sc.Source)
	s.eng = core.New(sc.Engine, s.overlay)
	s.lastActive.Store(time.Now().UnixNano())

	if reg := h.cfg.Telemetry; reg != nil {
		label := `{session="` + id + `"}`
		s.telNames = []string{
			"host_session_events_total" + label,
			"host_session_shed_bytes_total" + label,
			"host_session_degraded" + label,
		}
		s.events = reg.Counter(s.telNames[0])
		s.shed = reg.Counter(s.telNames[1])
		s.degGauge = reg.Gauge(s.telNames[2])
		if !s.direct {
			qname := "host_session_queue_depth" + label
			s.telNames = append(s.telNames, qname)
			q := make(chan batch, depth)
			s.queue = q
			reg.GaugeFunc(qname, func() float64 { return float64(len(q)) })
		}
	}
	if !s.direct && s.queue == nil {
		s.queue = make(chan batch, depth)
	}
	if dir := h.cfg.CheckpointDir; dir != "" {
		if err := s.openDurable(dir, h.cfg.CheckpointEvery, h.cfg.Restore); err != nil {
			s.unregisterTelemetry()
			return nil, err
		}
	}
	if s.direct {
		close(s.done)
	} else {
		go s.worker()
	}
	return s, nil
}

// openDurable arms the session's checkpoint/WAL machinery and, when restore
// is set, recovers state from disk: restore the last checkpoint (verifying
// the pipeline identity first), replay the WAL tail through the engine, and
// immediately write a merged checkpoint so the WAL starts empty. Detections
// in the replayed tail re-fire OnDetection — at-least-once across a crash —
// while checkpointed detections never re-fire (their processes carry the
// detected latch). Runs before the worker starts, so the engine is private
// to this goroutine.
func (s *Session) openDurable(dir string, every int, restore bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("host: session %q: checkpoint dir: %w", s.id, err)
	}
	s.ckptPath, s.walPath = checkpointPaths(dir, s.id)
	s.checkpointEvery = every

	var records []walRecord
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if restore {
		records = readWAL(s.walPath)
	} else {
		// Fresh start: drop any stale state under this session ID.
		os.Remove(s.ckptPath)
		flags |= os.O_TRUNC
	}
	wal, err := os.OpenFile(s.walPath, flags, 0o644)
	if err != nil {
		return fmt.Errorf("host: session %q: open wal: %w", s.id, err)
	}
	s.wal = wal
	if !restore {
		return nil
	}

	base := int64(0)
	if data, err := os.ReadFile(s.ckptPath); err == nil {
		c, cerr := decodeCheckpoint(data, s.checkpointIdentity())
		if cerr != nil {
			wal.Close()
			return fmt.Errorf("host: restore session %q: %w", s.id, cerr)
		}
		if rerr := s.eng.Restore(c.engine); rerr != nil {
			wal.Close()
			return fmt.Errorf("host: restore session %q: %w", s.id, rerr)
		}
		s.ingested.Store(c.ingested)
		s.shedBytes.Store(c.shedBytes)
		s.saturations.Store(c.saturations)
		s.detCount.Store(c.detCount)
		if c.degraded {
			// The degrade latch is one-way; restore it before any replayed
			// op so payload shedding resumes exactly where it stopped.
			s.degraded.Store(true)
			s.eng.SetPayloadBlind(true)
			s.degGauge.Set(1)
		}
		s.overlay.install(c.overlay)
		base = c.ingested
	} else if !os.IsNotExist(err) {
		wal.Close()
		return fmt.Errorf("host: restore session %q: %w", s.id, err)
	}

	// Replay the WAL tail: records fully covered by the checkpoint are
	// skipped; a record the checkpoint split mid-batch replays only its
	// uncovered suffix.
	for _, rec := range records {
		if rec.start+int64(len(rec.ops)) <= base {
			continue
		}
		ops := rec.ops
		if rec.start < base {
			ops = ops[base-rec.start:]
		}
		s.run(ops)
	}
	// Merge the recovered state into a fresh checkpoint so the WAL resets;
	// a failure here is a refusal to open (recovery must leave disk clean).
	if err := s.checkpointNow(); err != nil {
		wal.Close()
		return fmt.Errorf("host: restore session %q: %w", s.id, err)
	}
	return nil
}

// checkpointIdentity is the sealed identity of this session's checkpoints:
// the checkpoint format version plus the engine's registry and config
// fingerprints.
func (s *Session) checkpointIdentity() snapshot.Header {
	reg, cfg := s.eng.SnapshotIdentity()
	return snapshot.Header{Version: hostSnapshotVersion, Registry: reg, Config: cfg}
}

// checkpointNow captures and commits a checkpoint, then truncates the WAL.
// Must run with the engine quiescent: on the worker between batches, under
// directMu, or before the worker starts.
func (s *Session) checkpointNow() error {
	if s.ckptPath == "" {
		return nil
	}
	blob, err := s.eng.Snapshot()
	if err != nil {
		return err
	}
	sealed := encodeCheckpoint(s.checkpointIdentity(), &sessionCheckpoint{
		degraded:    s.degraded.Load(),
		ingested:    s.ingested.Load(),
		shedBytes:   s.shedBytes.Load(),
		saturations: s.saturations.Load(),
		detCount:    s.detCount.Load(),
		overlay:     s.overlay.snapshot(),
		engine:      blob,
	})
	if err := writeCheckpointFile(s.ckptPath, sealed); err != nil {
		return err
	}
	if s.wal != nil {
		// The checkpoint covers everything the WAL holds; truncating is pure
		// garbage collection (O_APPEND writes restart at offset 0).
		if err := s.wal.Truncate(0); err != nil {
			return err
		}
	}
	s.sinceCkpt = 0
	return nil
}

// noteDurErr records the first durability failure.
func (s *Session) noteDurErr(err error) {
	if err == nil {
		return
	}
	s.durMu.Lock()
	if s.durErr == nil {
		s.durErr = err
	}
	s.durMu.Unlock()
}

// DurabilityErr returns the first checkpoint/WAL I/O failure the session
// has hit, or nil. Scoring is never interrupted by a durability failure;
// callers that need the crash-recovery guarantee poll this (or use the
// error returned by an explicit Checkpoint call).
func (s *Session) DurabilityErr() error {
	s.durMu.Lock()
	defer s.durMu.Unlock()
	return s.durErr
}

// Checkpoint captures and commits a checkpoint of the session's complete
// state and truncates its WAL, blocking until the checkpoint is durably on
// disk or ctx expires. For queued sessions the checkpoint runs on the
// worker between batches — after every op queued before the call. A no-op
// returning nil when the host has no CheckpointDir.
func (s *Session) Checkpoint(ctx context.Context) error {
	if s.ckptPath == "" {
		return nil
	}
	if s.direct {
		s.directMu.Lock()
		defer s.directMu.Unlock()
		if s.isClosed() {
			return fmt.Errorf("host: session %q: checkpoint: %w", s.id, ErrSessionClosed)
		}
		return s.checkpointNow()
	}
	s.qmu.RLock()
	if s.closed {
		s.qmu.RUnlock()
		return fmt.Errorf("host: session %q: checkpoint: %w", s.id, ErrSessionClosed)
	}
	marker := batch{ckpt: make(chan error, 1)}
	select {
	case s.queue <- marker:
		s.qmu.RUnlock()
	case <-ctx.Done():
		s.qmu.RUnlock()
		return fmt.Errorf("host: session %q: checkpoint: %w", s.id, ctx.Err())
	}
	select {
	case err := <-marker.ckpt:
		return err
	case <-ctx.Done():
		return fmt.Errorf("host: session %q: checkpoint: %w", s.id, ctx.Err())
	}
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Engine exposes the session's detection engine for reports and direct
// (unqueued) feeding — the cryptodrop.Monitor fast path.
func (s *Session) Engine() *core.Engine { return s.eng }

// Degraded reports whether the session has degraded to payload-blind
// scoring. Degradation is one-way.
func (s *Session) Degraded() bool { return s.degraded.Load() }

// Ingested returns the number of ops applied to the engine so far. A
// session opened with Restore resumes the count where its previous life
// left off, so this is also the durable op position a recovery landed at.
func (s *Session) Ingested() int64 { return s.ingested.Load() }

// Submit queues ops for application, blocking when the session's queue is
// full — that block is the backpressure the overload policy promises, and
// ctx bounds it. A sustained streak of saturated submissions degrades the
// session to payload-blind scoring (see the package doc). In Direct mode
// the ops are applied synchronously before Submit returns.
func (s *Session) Submit(ctx context.Context, ops ...Op) error {
	if len(ops) == 0 {
		return nil
	}
	if s.direct {
		return s.submitDirect(ops)
	}
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed {
		return fmt.Errorf("host: session %q: %w", s.id, ErrSessionClosed)
	}
	b := batch{ops: ops}
	if s.spans != nil {
		b.enq = time.Now()
	}
	select {
	case s.queue <- b:
		s.satStreak.Store(0)
		return nil
	default:
	}
	// Saturated: count the wait, grow the streak, maybe degrade, then
	// block until the worker makes room.
	s.host.backpressures.Inc()
	s.host.bpCount.Add(1)
	s.noteSaturation()
	select {
	case s.queue <- b:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("host: session %q: submit: %w", s.id, ctx.Err())
	}
}

// TrySubmit queues ops without blocking, failing with ErrOverloaded when
// the queue is full. Overloads count toward the degradation streak just
// like blocking waits. In Direct mode it behaves exactly like Submit.
func (s *Session) TrySubmit(ops ...Op) error {
	if len(ops) == 0 {
		return nil
	}
	if s.direct {
		return s.submitDirect(ops)
	}
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed {
		return fmt.Errorf("host: session %q: %w", s.id, ErrSessionClosed)
	}
	b := batch{ops: ops}
	if s.spans != nil {
		b.enq = time.Now()
	}
	select {
	case s.queue <- b:
		s.satStreak.Store(0)
		return nil
	default:
		s.noteSaturation()
		return fmt.Errorf("host: session %q: %w", s.id, ErrOverloaded)
	}
}

// submitDirect applies ops inline. The mutex serialises concurrent direct
// submitters so the overlay install/evict windows of two ops cannot
// interleave.
func (s *Session) submitDirect(ops []Op) error {
	s.directMu.Lock()
	defer s.directMu.Unlock()
	if s.isClosed() {
		return fmt.Errorf("host: session %q: %w", s.id, ErrSessionClosed)
	}
	s.apply(ops)
	return nil
}

// noteSaturation records one saturated submission and fires the one-shot
// degrade transition when the streak crosses the threshold.
func (s *Session) noteSaturation() {
	s.saturations.Add(1)
	if s.degradeAfter < 0 {
		return
	}
	if int(s.satStreak.Add(1)) < s.degradeAfter {
		return
	}
	if !s.degraded.CompareAndSwap(false, true) {
		return
	}
	// Exactly-once: flip the engine to payload-blind scoring and record
	// the decision.
	s.eng.SetPayloadBlind(true)
	s.host.degrades.Inc()
	s.host.degCount.Add(1)
	s.degGauge.Set(1)
}

// Flush blocks until every op queued before the call has been applied and
// all pool measurements folded into the scoreboard, or ctx expires.
func (s *Session) Flush(ctx context.Context) error {
	if !s.direct {
		s.qmu.RLock()
		if s.closed {
			s.qmu.RUnlock()
			return fmt.Errorf("host: session %q: flush: %w", s.id, ErrSessionClosed)
		}
		marker := batch{flushed: make(chan struct{})}
		select {
		case s.queue <- marker:
			s.qmu.RUnlock()
		case <-ctx.Done():
			s.qmu.RUnlock()
			return fmt.Errorf("host: session %q: flush: %w", s.id, ctx.Err())
		}
		select {
		case <-marker.flushed:
		case <-ctx.Done():
			return fmt.Errorf("host: session %q: flush: %w", s.id, ctx.Err())
		}
	}
	s.eng.Flush()
	return nil
}

// Report returns the scoreboard snapshot for pid. It reflects only ops the
// worker has already applied; call Flush first for an up-to-date view.
func (s *Session) Report(pid int) (core.ProcessReport, bool) { return s.eng.Report(pid) }

// Reports returns snapshots for every scored process, ordered by PID.
func (s *Session) Reports() []core.ProcessReport { return s.eng.Reports() }

// Detections returns the session's detections in occurrence order.
func (s *Session) Detections() []core.Detection { return s.eng.Detections() }

// isClosed reports whether seal ran.
func (s *Session) isClosed() bool {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	return s.closed
}

// seal marks the session closed and, for queued sessions, closes the queue
// so the worker exits after draining. The write lock cannot be acquired
// while any submitter holds the read side, so no send can race the close.
func (s *Session) seal() {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if !s.direct {
		close(s.queue)
	}
}

// drained returns a channel closed once the worker has applied every queued
// batch and exited (immediately for direct sessions).
func (s *Session) drained() <-chan struct{} { return s.done }

// finalReport snapshots the session after its queue has drained, committing
// a final checkpoint (and releasing the WAL handle) for durable sessions so
// a clean close restores without any replay. Scoring groups that reach this
// point without a detection are exonerated (Engine.OnExonerate) — the
// session is over, their run was clean, so retained pre-images are released
// whether the session closed deliberately or was idle-evicted.
func (s *Session) finalReport() SessionReport {
	s.eng.Flush()
	s.eng.ExonerateUndetected()
	if s.ckptPath != "" {
		s.noteDurErr(s.checkpointNow())
		if s.wal != nil {
			s.wal.Close()
			s.wal = nil
		}
	}
	return SessionReport{
		ID:         s.id,
		Reports:    s.eng.Reports(),
		Detections: s.eng.Detections(),
		Degraded:   s.degraded.Load(),
		Ingested:   s.ingested.Load(),
		ShedBytes:  s.shedBytes.Load(),
		Recoveries: s.Recoveries(),
	}
}

// Recoveries returns the rollback outcomes recorded so far, in detection
// order (empty without a SessionConfig.Recoverer).
func (s *Session) Recoveries() []RecoveryOutcome {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	out := make([]RecoveryOutcome, len(s.recoveries))
	copy(out, s.recoveries)
	return out
}

// unregisterTelemetry drops the per-session series from the host registry.
func (s *Session) unregisterTelemetry() {
	for _, name := range s.telNames {
		s.host.cfg.Telemetry.Unregister(name)
	}
}

// worker drains the queue, applying batches in submission order. When the
// session is traced, the time a sampled batch spent enqueued becomes an
// ingest-lane queue-wait span — the leading edge of the causal picture the
// engine's dispatch/measure/award spans complete.
func (s *Session) worker() {
	defer close(s.done)
	for b := range s.queue {
		if b.flushed != nil {
			close(b.flushed)
			continue
		}
		if b.ckpt != nil {
			b.ckpt <- s.checkpointNow()
			continue
		}
		if !b.enq.IsZero() && s.spans.Sample() {
			s.spans.Record(telemetry.Span{
				Name: "queue-wait", Cat: "ingest", Lane: s.id,
				Detail: fmt.Sprintf("ops=%d depth=%d", len(b.ops), len(s.queue)),
			}, b.enq, time.Since(b.enq))
		}
		s.apply(b.ops)
	}
}

// apply ingests one batch: for durable sessions the batch is first appended
// to the write-ahead log (write-ahead: a crash after the append but before
// application replays the batch on recovery), then run through the engine,
// then counted toward the checkpoint interval. Durability I/O failures are
// recorded (DurabilityErr) but never interrupt scoring.
func (s *Session) apply(ops []Op) {
	if s.wal != nil {
		s.noteDurErr(appendWALRecord(s.wal, s.ingested.Load(), ops))
	}
	s.run(ops)
	if s.ckptPath != "" {
		s.sinceCkpt += len(ops)
		if s.checkpointEvery > 0 && s.sinceCkpt >= s.checkpointEvery {
			s.noteDurErr(s.checkpointNow())
		}
	}
}

// run applies one batch through the engine, enforcing the Op timing
// contract: Pre content before PreEvent, Post content before Handle, Evict
// after. After degradation it strips read/write payloads, counting every
// shed byte, before the event reaches the scoreboard.
func (s *Session) run(ops []Op) {
	sl := s.host.slow
	for i := range ops {
		op := &ops[i]
		if sl == nil {
			s.applyOne(op)
			continue
		}
		t0 := time.Now()
		s.applyOne(op)
		if d := time.Since(t0); d >= sl.threshold {
			sl.note(s.id, op, d, t0)
		}
	}
	s.ingested.Add(int64(len(ops)))
	s.events.Add(int64(len(ops)))
	s.lastActive.Store(time.Now().UnixNano())
}

// applyOne runs a single op through the engine.
func (s *Session) applyOne(op *Op) {
	s.overlay.install(op.Pre)
	if op.PreEvent != nil {
		s.eng.PreEvent(*op.PreEvent)
	} else {
		s.eng.PreEvent(op.Event)
	}
	s.overlay.install(op.Post)
	if ev := op.Event; ev.Kind != 0 {
		if s.degraded.Load() && len(ev.Data) > 0 && (ev.Kind == core.EvRead || ev.Kind == core.EvWrite) {
			n := int64(len(ev.Data))
			s.shedBytes.Add(n)
			s.shed.Add(n)
			ev.Data = nil
		}
		s.eng.Handle(ev)
	}
	s.overlay.evict(op.Evict)
}

// overlaySource is the session's ContentSource: an ID-keyed overlay of
// producer-staged snapshots over an optional fallback source. Only the
// session worker mutates it, but reads may come from engine measurement
// workers, so access is locked.
type overlaySource struct {
	mu       sync.RWMutex
	m        map[uint64][]byte
	fallback core.ContentSource
}

func newOverlaySource(fallback core.ContentSource) *overlaySource {
	return &overlaySource{m: make(map[uint64][]byte), fallback: fallback}
}

// Content implements core.ContentSource.
func (o *overlaySource) Content(id uint64) ([]byte, error) {
	o.mu.RLock()
	b, ok := o.m[id]
	o.mu.RUnlock()
	if ok {
		return b, nil
	}
	if o.fallback != nil {
		return o.fallback.Content(id)
	}
	return nil, fmt.Errorf("host: no staged content for file %d", id)
}

// ContentRange implements core.RangeReader: a staged snapshot serves the
// requested slice directly; misses forward to the fallback's own range
// capability when it has one, or fall back to a full read sliced down.
func (o *overlaySource) ContentRange(id uint64, off, n int64) ([]byte, int64, error) {
	o.mu.RLock()
	b, ok := o.m[id]
	o.mu.RUnlock()
	if !ok {
		if rr, isRange := o.fallback.(core.RangeReader); isRange {
			return rr.ContentRange(id, off, n)
		}
		var err error
		b, err = o.Content(id)
		if err != nil {
			return nil, 0, err
		}
	}
	size := int64(len(b))
	if off < 0 || off >= size || n <= 0 {
		return nil, size, nil
	}
	end := off + n
	if end > size {
		end = size
	}
	return b[off:end], size, nil
}

func (o *overlaySource) install(m map[uint64][]byte) {
	if len(m) == 0 {
		return
	}
	o.mu.Lock()
	for id, b := range m {
		o.m[id] = b
	}
	o.mu.Unlock()
}

// snapshot copies the overlay's current entries for a checkpoint. Staged
// content is immutable once installed, so sharing the byte slices is safe.
func (o *overlaySource) snapshot() map[uint64][]byte {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if len(o.m) == 0 {
		return nil
	}
	m := make(map[uint64][]byte, len(o.m))
	for id, b := range o.m {
		m[id] = b
	}
	return m
}

func (o *overlaySource) evict(ids []uint64) {
	if len(ids) == 0 {
		return
	}
	o.mu.Lock()
	for _, id := range ids {
		delete(o.m, id)
	}
	o.mu.Unlock()
}
