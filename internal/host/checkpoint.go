package host

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cryptodrop/internal/snapshot"
)

// A session checkpoint is one sealed file: the host-level session state
// (degrade latch, ingest counters, content overlay) wrapping the engine's
// own sealed snapshot. The outer envelope carries the same identity
// fingerprints as the engine snapshot — registry fingerprint and scoring-
// config hash — so a checkpoint from a differently-configured pipeline is
// refused at Open time, before a byte of engine state is decoded.
//
// Write protocol: serialize to a temporary file in the same directory,
// fsync, rename over the final path, then truncate the WAL. The rename is
// the commit point — a crash at any moment leaves either the old
// checkpoint + full WAL (recoverable) or the new checkpoint + full WAL
// (recoverable; replay skips the now-covered records via their start
// counters). The WAL truncate is pure garbage collection.

// hostSnapshotVersion is the session checkpoint format version.
const hostSnapshotVersion = 1

// sessionCheckpoint is the decoded host-level state of a checkpoint file.
type sessionCheckpoint struct {
	degraded    bool
	ingested    int64
	shedBytes   int64
	saturations int64
	detCount    int64
	overlay     map[uint64][]byte
	engine      []byte // the engine's own sealed snapshot
}

// checkpointPaths returns the checkpoint and WAL file paths for a session.
// Session IDs that are not filesystem-safe are hex-mangled, losslessly and
// deterministically.
func checkpointPaths(dir, id string) (ckpt, wal string) {
	safe := true
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.') {
			safe = false
			break
		}
	}
	base := id
	if !safe || id == "" {
		base = fmt.Sprintf("x%x", id)
	}
	return filepath.Join(dir, base+".ckpt"), filepath.Join(dir, base+".wal")
}

// encodeCheckpoint seals a session checkpoint under the engine's identity.
func encodeCheckpoint(identity snapshot.Header, c *sessionCheckpoint) []byte {
	enc := snapshot.NewEncoder()
	enc.Bool(c.degraded)
	enc.Varint(c.ingested)
	enc.Varint(c.shedBytes)
	enc.Varint(c.saturations)
	enc.Varint(c.detCount)
	ids := make([]uint64, 0, len(c.overlay))
	for id := range c.overlay {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	enc.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		enc.Uvarint(id)
		enc.Bytes(c.overlay[id])
	}
	enc.Bytes(c.engine)
	return snapshot.Seal(identity, enc.Data())
}

// decodeCheckpoint opens a checkpoint file's bytes and verifies its identity
// against want (the restoring session's engine identity).
func decodeCheckpoint(data []byte, want snapshot.Header) (*sessionCheckpoint, error) {
	h, payload, err := snapshot.Open(data)
	if err != nil {
		return nil, err
	}
	if err := h.Check(want); err != nil {
		return nil, err
	}
	d := snapshot.NewDecoder(payload)
	c := &sessionCheckpoint{
		degraded:    d.Bool(),
		ingested:    d.Varint(),
		shedBytes:   d.Varint(),
		saturations: d.Varint(),
		detCount:    d.Varint(),
	}
	n := d.Count()
	if n > 0 {
		c.overlay = make(map[uint64][]byte, n)
		for i := 0; i < n; i++ {
			id := d.Uvarint()
			c.overlay[id] = d.Bytes()
		}
	}
	c.engine = d.Bytes()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in checkpoint", snapshot.ErrCorrupt, d.Len())
	}
	return c, nil
}

// writeCheckpointFile commits blob to path atomically: temp file in the same
// directory, fsync, rename.
func writeCheckpointFile(path string, blob []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
