package host

// BenchmarkSessionIngest measures per-op ingest cost through a hosted
// session in both modes: "direct" is the synchronous path the single-session
// cryptodrop.Monitor runs (Submit applies inline), "queued" is the
// multi-session path (a bounded queue drained by the session worker). The
// op mix mirrors the core engine bench: payload reads/writes with a full
// close-time transformation evaluation every tenth op. The queued producer
// outruns the worker, so the steady state measures worker throughput under
// backpressure — the number the ≤3%-overhead budget in BENCH_PR4.json is
// about. Degradation is disabled so sustained saturation cannot switch
// scoring mode mid-benchmark.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"cryptodrop/internal/core"
	"cryptodrop/internal/corpus"
)

// benchSource serves every file ID the same content, like a corpus of
// identical documents.
type benchSource struct{ content []byte }

func (s benchSource) Content(uint64) ([]byte, error) { return s.content, nil }

func BenchmarkSessionIngest(b *testing.B) {
	b.Run("direct", func(b *testing.B) { benchSessionIngest(b, true) })
	b.Run("queued", func(b *testing.B) { benchSessionIngest(b, false) })
}

func benchSessionIngest(b *testing.B, direct bool) {
	benchSessionIngestHost(b, direct, Config{}, 16)
}

// benchSessionIngestHost is the shared ingest-bench body, parameterised on
// the host configuration (the durability benches pass checkpoint settings)
// and the batch size (1 turns every Submit into a single-op batch — the
// checkpoint-every-op worst case).
func benchSessionIngestHost(b *testing.B, direct bool, hcfg Config, batchSize int) {
	const root = "/Users/victim/Documents"
	const nfiles = 64
	doc := corpus.Generate("docx", 7, 16<<10)
	cipher := make([]byte, 16<<10)
	rand.New(rand.NewSource(42)).Read(cipher)

	// A ring of pre-built op batches cycling the bench op mix over the
	// file set; the loop submits slices of it so op construction stays out
	// of the measurement.
	var ring []Op
	for i := 0; len(ring) < 10*batchSize; i++ {
		id := uint64(i%nfiles + 1)
		p := fmt.Sprintf("%s/bench%03d.docx", root, id)
		switch {
		case i%10 == 9:
			pre := core.Event{Kind: core.EvOpen, PID: 1, Path: p, FileID: id,
				Flags: core.EvWriteIntent, Size: int64(len(doc))}
			ring = append(ring,
				Op{PreEvent: &pre},
				Op{Event: core.Event{Kind: core.EvClose, PID: 1, Path: p, FileID: id, Wrote: true}})
		case i%2 == 0:
			ring = append(ring, Op{Event: core.Event{Kind: core.EvRead, PID: 1, Path: p,
				FileID: id, Data: doc}})
		default:
			ring = append(ring, Op{Event: core.Event{Kind: core.EvWrite, PID: 1, Path: p,
				FileID: id, Data: cipher, Size: int64(len(cipher))}})
		}
	}
	ring = ring[:10*batchSize]

	h := New(hcfg)
	sess, err := h.Open("bench", SessionConfig{
		Engine:       core.DefaultConfig(root),
		Source:       benchSource{content: doc},
		Direct:       direct,
		DegradeAfter: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for n, k := 0, 0; n < b.N; n += batchSize {
		if err := sess.Submit(ctx, ring[k:k+batchSize]...); err != nil {
			b.Fatal(err)
		}
		if k += batchSize; k == len(ring) {
			k = 0
		}
	}
	if err := sess.Flush(ctx); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if _, err := h.CloseSession(context.Background(), "bench"); err != nil {
		b.Fatal(err)
	}
}
