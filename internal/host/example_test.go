package host_test

import (
	"context"
	"fmt"

	"cryptodrop/internal/core"
	"cryptodrop/internal/host"
)

// ExampleHost_Open scores a simulated bulk encryption through a hosted
// session: each file's previous version travels in Op.Pre, the encrypted
// rewrite in Op.Post, so the engine needs no filesystem at all.
func ExampleHost_Open() {
	var detected bool
	ecfg := core.DefaultConfig("/docs")
	ecfg.NonUnionThreshold = 100
	ecfg.NewCipherWithoutDelta = true // payloads are not observed, only content
	ecfg.OnDetection = func(core.Detection) { detected = true }

	h := host.New(host.Config{})
	sess, err := h.Open("tenant-a", host.SessionConfig{Engine: ecfg})
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	ctx := context.Background()

	// "Ransomware" rewrites twelve documents as keystream bytes. Each file
	// contributes two ops: a baseline-only op snapshotting the original
	// (zero Event.Kind — nothing is scored) and the completed rewrite.
	state := uint64(1)
	for i := 0; i < 12; i++ {
		id := uint64(i + 1)
		path := fmt.Sprintf("/docs/doc%02d.txt", i)
		var content []byte
		for line := 0; len(content) < 2048; line++ {
			content = append(content, []byte(fmt.Sprintf(
				"day %d line %d: meeting summary, expense total %d, follow-up %x.\n",
				i, line, line*73+i, line*line))...)
		}
		enc := make([]byte, 2048)
		for j := range enc {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			enc[j] = byte(state)
		}
		err := sess.Submit(ctx,
			host.Op{
				PreEvent: &core.Event{
					Kind: core.EvOpen, PID: 7, Path: path, FileID: id,
					Flags: core.EvWriteIntent, Size: int64(len(content)),
				},
				Pre: map[uint64][]byte{id: content},
			},
			host.Op{
				Event: core.Event{
					Kind: core.EvClose, PID: 7, Path: path, FileID: id, Wrote: true,
				},
				Post:  map[uint64][]byte{id: enc},
				Evict: []uint64{id},
			})
		if err != nil {
			fmt.Println("submit:", err)
			return
		}
	}

	reports, err := h.Shutdown(ctx)
	if err != nil {
		fmt.Println("shutdown:", err)
		return
	}
	fmt.Println("detected:", detected)
	fmt.Println("ops ingested:", reports[0].Ingested)
	// Output:
	// detected: true
	// ops ingested: 24
}
