package host

import "cryptodrop/internal/audit"

// RecoveryOutcome summarises one rollback pass over a convicted scoring
// group's retained pre-images — the detect-then-recover result surfaced in
// the session report and stamped into the detection's audit bundle.
type RecoveryOutcome struct {
	// Group is the convicted scoring group (the detection's PID under
	// family scoring).
	Group int
	// FilesRestored counts pre-images written back over a still-existing
	// file ID.
	FilesRestored int
	// FilesRecreated counts pre-images whose file ID no longer existed
	// (the attacker deleted or replaced the file) and were recreated at
	// their captured path.
	FilesRecreated int
	// Failures counts pre-images that could not be written back.
	Failures int
	// BytesRestored is the total content written back.
	BytesRestored int64
}

// Recoverer rolls back the damage of a convicted scoring group. The session
// invokes it once per detection, after the caller's OnDetection callback
// has run — so enforcement (suspending the family) is already in place
// before rollback begins — and outside all engine locks.
//
// internal/recovery.Coordinator is the canonical implementation, replaying
// the versioned store's pre-images through the filesystem's privileged
// restore path; the host depends only on this interface so it stays
// storage-agnostic.
type Recoverer interface {
	Recover(group int) RecoveryOutcome
}

// recoveryStampSink interposes on the session's audit sink, stamping each
// bundle with the flagged group's rollback outcome before forwarding. The
// engine emits bundles after OnDetection returns — by which point the
// session's detection wrapper has recorded the outcome — so the stamp is
// always current.
type recoveryStampSink struct {
	s     *Session
	inner audit.Sink
}

func (rs *recoveryStampSink) Emit(b *audit.Bundle) {
	rs.s.recMu.Lock()
	out, ok := rs.s.recLatest[b.PID]
	rs.s.recMu.Unlock()
	if ok {
		b.Recovery = &audit.RecoveryRecord{
			Group:          out.Group,
			FilesRestored:  out.FilesRestored,
			FilesRecreated: out.FilesRecreated,
			Failures:       out.Failures,
			BytesRestored:  out.BytesRestored,
		}
	}
	rs.inner.Emit(b)
}
