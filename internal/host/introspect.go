package host

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// This file is the host's fleet-introspection surface: a point-in-time
// Snapshot of every open session (queue depth, backpressure and degrade
// state, ingest accounting, last detection), the host-wide measurement-cache
// hit rate, and the slow-op log, plus the HTTP handler cdhost mounts at
// /debug/sessions. Snapshots read only atomics and the session map — they
// never touch engine locks — so polling the endpoint cannot stall scoring.

// slowLogCapacity bounds the slow-op ring. Overwritten entries are counted
// in Snapshot.SlowOpsDropped, never silently discarded.
const slowLogCapacity = 256

// LastDetection summarises a session's most recent detection.
type LastDetection struct {
	// PID is the detected process.
	PID int `json:"pid"`
	// Score and Union are the detection's score and union-indication state.
	Score float64 `json:"score"`
	Union bool    `json:"union"`
	// OpIndex is the engine's operation counter at detection.
	OpIndex int64 `json:"opIndex"`
	// AtNs is the wall-clock detection time, Unix nanoseconds.
	AtNs int64 `json:"atNs"`
}

// SessionSnapshot is one session's row in the host snapshot.
type SessionSnapshot struct {
	// ID is the session's host-assigned identifier.
	ID string `json:"id"`
	// Direct reports an unqueued session (no queue columns apply).
	Direct bool `json:"direct,omitempty"`
	// QueueLen and QueueCap are the ingest queue's current depth and
	// capacity, in batches; both zero for direct sessions.
	QueueLen int `json:"queueLen"`
	QueueCap int `json:"queueCap"`
	// Degraded reports payload-blind scoring; Saturations counts
	// submissions that found the queue full (blocking or not).
	Degraded    bool  `json:"degraded"`
	Saturations int64 `json:"saturations"`
	// Ingested counts ops applied; ShedBytes counts payload bytes stripped
	// after degradation.
	Ingested  int64 `json:"ingested"`
	ShedBytes int64 `json:"shedBytes"`
	// IdleNs is how long ago the session last applied an op.
	IdleNs int64 `json:"idleNs"`
	// Detections counts the session's detections; LastDetection describes
	// the most recent one (nil when none fired).
	Detections    int64          `json:"detections"`
	LastDetection *LastDetection `json:"lastDetection,omitempty"`
}

// CacheSnapshot is the shared measurement cache's state, with the derived
// hit rate.
type CacheSnapshot struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int64  `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Capacity  int64  `json:"capacity"`
	// HitRate is hits / (hits + misses), zero before any lookup.
	HitRate float64 `json:"hitRate"`
}

// SlowOp is one entry of the slow-op log.
type SlowOp struct {
	// Session is the session that applied the op.
	Session string `json:"session"`
	// Kind is the event kind ("write", "delete", …; "baseline" for
	// PreEvent-only ops) and Path the protected path, when the op had one.
	Kind string `json:"kind"`
	Path string `json:"path,omitempty"`
	// PID is the op's scoring group.
	PID int `json:"pid"`
	// DurNs is the end-to-end apply latency; AtNs the start time.
	DurNs int64 `json:"durNs"`
	AtNs  int64 `json:"atNs"`
}

// Snapshot is a point-in-time view of the host fleet.
type Snapshot struct {
	// SessionsOpen is the number of open sessions; Sessions their rows,
	// sorted by ID.
	SessionsOpen int               `json:"sessionsOpen"`
	Sessions     []SessionSnapshot `json:"sessions"`
	// BackpressureWaits counts blocking submissions host-wide; Degrades
	// counts sessions that fell to payload-blind scoring.
	BackpressureWaits int64 `json:"backpressureWaits"`
	Degrades          int64 `json:"degrades"`
	// Cache is the shared measurement cache's state, nil when the host has
	// none.
	Cache *CacheSnapshot `json:"cache,omitempty"`
	// SlowOpThresholdNs is the armed slow-op threshold (zero: log off);
	// SlowOps the logged entries, oldest first; SlowOpsDropped how many
	// entries the bounded ring overwrote.
	SlowOpThresholdNs int64    `json:"slowOpThresholdNs,omitempty"`
	SlowOps           []SlowOp `json:"slowOps,omitempty"`
	SlowOpsDropped    int64    `json:"slowOpsDropped,omitempty"`
}

// Snapshot captures the host's current state. It is safe to call
// concurrently with ingest and costs no engine locks.
func (h *Host) Snapshot() Snapshot {
	h.mu.Lock()
	sessions := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		sessions = append(sessions, s)
	}
	h.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })

	now := time.Now().UnixNano()
	snap := Snapshot{
		SessionsOpen:      len(sessions),
		Sessions:          make([]SessionSnapshot, 0, len(sessions)),
		BackpressureWaits: h.bpCount.Load(),
		Degrades:          h.degCount.Load(),
	}
	for _, s := range sessions {
		ss := SessionSnapshot{
			ID:            s.id,
			Direct:        s.direct,
			Degraded:      s.degraded.Load(),
			Saturations:   s.saturations.Load(),
			Ingested:      s.ingested.Load(),
			ShedBytes:     s.shedBytes.Load(),
			IdleNs:        now - s.lastActive.Load(),
			Detections:    s.detCount.Load(),
			LastDetection: s.lastDet.Load(),
		}
		if !s.direct {
			ss.QueueLen = len(s.queue)
			ss.QueueCap = cap(s.queue)
		}
		snap.Sessions = append(snap.Sessions, ss)
	}
	if c := h.cfg.MeasureCache; c != nil {
		st := c.Stats()
		cs := &CacheSnapshot{
			Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions,
			Entries: int64(st.Entries), Bytes: st.Bytes, Capacity: st.Capacity,
		}
		if total := st.Hits + st.Misses; total > 0 {
			cs.HitRate = float64(st.Hits) / float64(total)
		}
		snap.Cache = cs
	}
	if h.slow != nil {
		snap.SlowOpThresholdNs = int64(h.slow.threshold)
		snap.SlowOps, snap.SlowOpsDropped = h.slow.snapshot()
	}
	return snap
}

// IntrospectionHandler serves the host snapshot as indented JSON — the
// /debug/sessions endpoint.
func (h *Host) IntrospectionHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.Snapshot())
	})
}

// slowLog is a bounded, mutex-guarded ring of SlowOp entries. note runs only
// for ops that already crossed the latency threshold, so the lock is far off
// the common path.
type slowLog struct {
	threshold time.Duration

	mu      sync.Mutex
	buf     []SlowOp
	start   int // index of the oldest entry
	n       int // live entries
	dropped int64
}

func newSlowLog(threshold time.Duration, capacity int) *slowLog {
	return &slowLog{threshold: threshold, buf: make([]SlowOp, capacity)}
}

// note records one slow op, overwriting the oldest entry (and counting the
// loss) when the ring is full.
func (l *slowLog) note(session string, op *Op, d time.Duration, at time.Time) {
	kind := "baseline"
	ev := op.Event
	if ev.Kind == 0 && op.PreEvent != nil {
		ev = *op.PreEvent
	} else if ev.Kind != 0 {
		kind = ev.Kind.String()
	}
	entry := SlowOp{
		Session: session, Kind: kind, Path: ev.Path, PID: ev.PID,
		DurNs: int64(d), AtNs: at.UnixNano(),
	}
	l.mu.Lock()
	if l.n < len(l.buf) {
		l.buf[(l.start+l.n)%len(l.buf)] = entry
		l.n++
	} else {
		l.buf[l.start] = entry
		l.start = (l.start + 1) % len(l.buf)
		l.dropped++
	}
	l.mu.Unlock()
}

// snapshot returns the logged entries oldest-first and the overwrite count.
func (l *slowLog) snapshot() ([]SlowOp, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowOp, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.buf[(l.start+i)%len(l.buf)]
	}
	return out, l.dropped
}
