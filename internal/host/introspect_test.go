package host

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"cryptodrop/internal/core"
	"cryptodrop/internal/measurecache"
)

// attackSession bulk-encrypts `files` documents as pid 7 through sess — the
// same two-op-per-file stream as the package example.
func attackSession(t *testing.T, sess *Session, files int) {
	t.Helper()
	ctx := context.Background()
	state := uint64(1)
	for i := 0; i < files; i++ {
		id := uint64(i + 1)
		path := fmt.Sprintf("/docs/doc%02d.txt", i)
		var content []byte
		for line := 0; len(content) < 2048; line++ {
			content = append(content, []byte(fmt.Sprintf(
				"day %d line %d: meeting summary, expense total %d, follow-up %x.\n",
				i, line, line*73+i, line*line))...)
		}
		enc := make([]byte, 2048)
		for j := range enc {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			enc[j] = byte(state)
		}
		err := sess.Submit(ctx,
			Op{
				PreEvent: &core.Event{
					Kind: core.EvOpen, PID: 7, Path: path, FileID: id,
					Flags: core.EvWriteIntent, Size: int64(len(content)),
				},
				Pre: map[uint64][]byte{id: content},
			},
			Op{
				Event: core.Event{
					Kind: core.EvClose, PID: 7, Path: path, FileID: id, Wrote: true,
				},
				Post:  map[uint64][]byte{id: enc},
				Evict: []uint64{id},
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotFleetState drives one detecting session and one quiet one,
// then checks the snapshot rows: sorted order, ingest accounting, detection
// summary, cache state, and the armed slow-op log.
func TestSnapshotFleetState(t *testing.T) {
	h := New(Config{
		SlowOpThreshold: time.Nanosecond, // everything is "slow"
		MeasureCache:    measurecache.New(16 << 20),
	})
	ecfg := core.DefaultConfig("/docs")
	ecfg.NonUnionThreshold = 100
	ecfg.NewCipherWithoutDelta = true

	// Opened out of ID order on purpose: Snapshot must sort.
	beta, err := h.Open("beta", SessionConfig{Engine: ecfg, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := h.Open("alpha", SessionConfig{Engine: ecfg, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	attackSession(t, beta, 12)
	if err := alpha.Submit(context.Background(), Op{
		Event: core.Event{Kind: core.EvWrite, PID: 2, Path: "/docs/memo.txt", FileID: 1, Data: []byte("note")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := alpha.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	snap := h.Snapshot()
	if snap.SessionsOpen != 2 || len(snap.Sessions) != 2 {
		t.Fatalf("SessionsOpen = %d (%d rows), want 2", snap.SessionsOpen, len(snap.Sessions))
	}
	if snap.Sessions[0].ID != "alpha" || snap.Sessions[1].ID != "beta" {
		t.Fatalf("rows not sorted by ID: %q, %q", snap.Sessions[0].ID, snap.Sessions[1].ID)
	}
	a, b := snap.Sessions[0], snap.Sessions[1]
	if a.Ingested != 1 || b.Ingested != 24 {
		t.Fatalf("ingest accounting: alpha %d (want 1), beta %d (want 24)", a.Ingested, b.Ingested)
	}
	if a.QueueCap != 8 || b.QueueCap != 8 || a.QueueLen != 0 || b.QueueLen != 0 {
		t.Fatalf("queue columns wrong after flush: %+v / %+v", a, b)
	}
	if a.Detections != 0 || a.LastDetection != nil {
		t.Fatalf("quiet session reports a detection: %+v", a)
	}
	if b.Detections != 1 || b.LastDetection == nil {
		t.Fatalf("attacked session: Detections = %d, LastDetection = %v, want 1 and non-nil",
			b.Detections, b.LastDetection)
	}
	if ld := b.LastDetection; ld.PID != 7 || ld.Score < 100 || ld.OpIndex == 0 || ld.AtNs == 0 {
		t.Fatalf("detection summary incomplete: %+v", ld)
	}
	if snap.Cache == nil {
		t.Fatal("no cache snapshot with a host-wide measure cache")
	}
	if total := snap.Cache.Hits + snap.Cache.Misses; total == 0 {
		t.Error("cache snapshot saw no lookups after a 12-file attack")
	} else if want := float64(snap.Cache.Hits) / float64(total); snap.Cache.HitRate != want {
		t.Errorf("HitRate = %g, want %g", snap.Cache.HitRate, want)
	}
	if snap.SlowOpThresholdNs != 1 {
		t.Fatalf("SlowOpThresholdNs = %d, want 1", snap.SlowOpThresholdNs)
	}
	if len(snap.SlowOps) == 0 {
		t.Fatal("1ns threshold logged no slow ops")
	}
	for _, op := range snap.SlowOps {
		if op.Session == "" || op.Kind == "" || op.DurNs < 1 || op.AtNs == 0 {
			t.Fatalf("slow-op entry incomplete: %+v", op)
		}
	}

	// The HTTP endpoint serves the same shape.
	rr := httptest.NewRecorder()
	h.IntrospectionHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/sessions", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var served Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &served); err != nil {
		t.Fatalf("endpoint body not valid JSON: %v", err)
	}
	if served.SessionsOpen != 2 || len(served.Sessions) != 2 ||
		served.Sessions[1].LastDetection == nil {
		t.Fatalf("served snapshot lost fields: %+v", served)
	}

	if _, err := h.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if after := h.Snapshot(); after.SessionsOpen != 0 {
		t.Fatalf("SessionsOpen = %d after shutdown, want 0", after.SessionsOpen)
	}
}

// TestSnapshotOverloadCounters pins the backpressure columns: saturated
// submissions count per session, blocking waits and degrade transitions
// count host-wide.
func TestSnapshotOverloadCounters(t *testing.T) {
	h := New(Config{})
	gate := make(chan struct{})
	sess, err := h.Open("tenant", SessionConfig{
		Engine:       core.DefaultConfig("/docs"),
		Source:       gateSource{gate: gate},
		QueueDepth:   2,
		DegradeAfter: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := uint64(1); i <= 3; i++ {
		if err := sess.Submit(ctx, closeOp(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := sess.TrySubmit(closeOp(1, 99)); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("TrySubmit = %v, want ErrOverloaded", err)
		}
	}
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := sess.Submit(short, closeOp(1, 100)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Submit = %v, want deadline exceeded", err)
	}

	snap := h.Snapshot()
	row := snap.Sessions[0]
	if !row.Degraded || row.Saturations < 4 {
		t.Fatalf("session row = %+v, want degraded with >= 4 saturations", row)
	}
	if row.QueueLen != row.QueueCap || row.QueueCap != 2 {
		t.Fatalf("queue columns = %d/%d, want full 2/2", row.QueueLen, row.QueueCap)
	}
	if snap.BackpressureWaits < 1 {
		t.Fatalf("BackpressureWaits = %d, want >= 1", snap.BackpressureWaits)
	}
	if snap.Degrades != 1 {
		t.Fatalf("Degrades = %d, want 1", snap.Degrades)
	}
	if snap.SlowOpThresholdNs != 0 || snap.SlowOps != nil {
		t.Fatalf("slow-op log armed without a threshold: %+v", snap)
	}

	close(gate)
	if _, err := h.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSlowLogRingDropsOldest exercises the bounded ring directly: a full
// log overwrites oldest-first and counts every loss.
func TestSlowLogRingDropsOldest(t *testing.T) {
	l := newSlowLog(time.Millisecond, 4)
	at := time.Now()
	for i := 0; i < 6; i++ {
		op := writeOp(1, uint64(i), nil)
		l.note("s", &op, time.Duration(i+1)*time.Millisecond, at)
	}
	ops, dropped := l.snapshot()
	if len(ops) != 4 || dropped != 2 {
		t.Fatalf("snapshot = %d entries, %d dropped; want 4 and 2", len(ops), dropped)
	}
	for i, op := range ops {
		if want := int64(i+3) * int64(time.Millisecond); op.DurNs != want {
			t.Fatalf("entry %d: DurNs %d, want %d (oldest-first, oldest two dropped)", i, op.DurNs, want)
		}
		if op.Kind != "write" {
			t.Fatalf("entry %d: kind %q, want write", i, op.Kind)
		}
	}

	// Baseline-only ops (zero Event.Kind, PreEvent set) are labelled as such.
	pre := core.Event{Kind: core.EvOpen, PID: 3, Path: "/docs/x", FileID: 9}
	op := Op{PreEvent: &pre}
	l.note("s", &op, 2*time.Millisecond, at)
	ops, _ = l.snapshot()
	last := ops[len(ops)-1]
	if last.Kind != "baseline" || last.Path != "/docs/x" || last.PID != 3 {
		t.Fatalf("baseline op logged as %+v", last)
	}
}
