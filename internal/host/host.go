// Package host multiplexes many independent detector instances through one
// process. A Host owns N Sessions — one per protected volume or tenant,
// keyed by string ID — each wrapping its own core.Engine behind a bounded
// ingest queue. Producers hand the session batches of Ops (events plus the
// content snapshots the engine will need); a per-session worker applies them
// as PreEvent/Handle pairs, so producers never block on measurement work and
// one overloaded session cannot stall its siblings.
//
// # Overload policy
//
// Events are never dropped. When a session's queue is full, Submit blocks —
// backpressure reaches the producer — and the saturation is counted. A
// sustained run of saturated submissions (SessionConfig.DegradeAfter in a
// row) degrades the session, exactly once, to payload-blind scoring: the
// worker strips read/write payload bytes (counted in shed-bytes telemetry)
// and the engine switches to the NewCipherWithoutDelta rule, the same
// scoring mode livewatch uses when payloads are unobservable. Detection
// keeps working on file-content measurement alone; only the payload-level
// entropy-delta and funneling signals go quiet. TrySubmit is the
// non-blocking variant for producers that would rather see ErrOverloaded
// than wait.
//
// # Lifecycle
//
// Open creates and starts a session; Close seals its queue, drains it, and
// returns a final SessionReport (scoreboard snapshots, detections, ingest
// and degrade accounting). EvictIdle closes every session that has been
// quiet longer than a deadline, and Shutdown seals all sessions at once and
// drains them under a context. A sealed session rejects further submissions
// with ErrSessionClosed but never loses what was already queued.
//
// # Errors
//
// All failures wrap one of the package sentinels, so callers dispatch with
// errors.Is:
//
//	ErrSessionClosed   submit/flush on a session that Close/EvictIdle/Shutdown sealed
//	ErrOverloaded      TrySubmit found the session's ingest queue full
//	ErrSessionExists   Open with a session ID already in use
//	ErrHostClosed      Open on a host after Shutdown
//
// (The root cryptodrop package adds ErrSuspended for operations vetoed by
// enforcement.)
package host

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cryptodrop/internal/measurecache"
	"cryptodrop/internal/telemetry"
)

// The package sentinels. See the package doc for the errors table.
var (
	// ErrSessionClosed reports an operation on a sealed session.
	ErrSessionClosed = errors.New("session closed")
	// ErrOverloaded reports a non-blocking submission against a full queue.
	ErrOverloaded = errors.New("session overloaded")
	// ErrSessionExists reports an Open with an ID already in use.
	ErrSessionExists = errors.New("session already exists")
	// ErrHostClosed reports an Open after Shutdown.
	ErrHostClosed = errors.New("host closed")
)

// Default overload-policy knobs, used when the corresponding
// Config/SessionConfig fields are zero.
const (
	// DefaultQueueDepth is the per-session ingest queue capacity, in
	// batches.
	DefaultQueueDepth = 64
	// DefaultDegradeAfter is how many consecutive saturated submissions
	// degrade a session to payload-blind scoring.
	DefaultDegradeAfter = 8
)

// Config configures a Host. The zero value is usable: default queue depth,
// default degrade threshold, no telemetry.
type Config struct {
	// QueueDepth is the default per-session ingest queue capacity in
	// batches; sessions may override it. Zero means DefaultQueueDepth.
	QueueDepth int
	// DegradeAfter is the default number of consecutive saturated
	// submissions after which a session degrades to payload-blind scoring;
	// sessions may override it. Zero means DefaultDegradeAfter; negative
	// disables degradation host-wide.
	DegradeAfter int
	// MeasureCache, when set, is the host-wide measurement memo cache:
	// every session whose SessionConfig.Engine does not name its own cache
	// inherits this one, so identical content ingested by different tenants
	// (a fleet over deduplicated corpora) is measured once host-wide. Sharing
	// never changes verdicts — cached states are immutable and keyed by
	// content hash plus measurement flavour.
	MeasureCache *measurecache.Cache
	// Telemetry, when set, receives the host gauges and counters:
	//
	//	host_sessions_open                               gauge
	//	host_opens_total / host_closes_total             counters
	//	host_backpressure_waits_total                    counter
	//	host_degrades_total                              counter
	//	host_session_queue_depth{session="id"}           gauge (queued sessions)
	//	host_session_degraded{session="id"}              gauge (0/1)
	//	host_session_events_total{session="id"}          counter
	//	host_session_shed_bytes_total{session="id"}      counter
	//
	// With MeasureCache also set, the cache's counters are exported once at
	// host level (not per session, since the cache is shared):
	//
	//	host_measure_cache_hits_total / _misses_total / _evictions_total
	//	host_measure_cache_entries / _bytes / _capacity_bytes    gauges
	//
	// Per-session series are unregistered when their session closes.
	Telemetry *telemetry.Registry
	// SlowOpThreshold, when positive, arms the host's slow-op log: every
	// ingested op taking at least this long end-to-end (overlay install,
	// PreEvent, Handle, evict) is recorded in a bounded ring surfaced by
	// Snapshot / the introspection endpoint. Zero disables the log — and
	// with it the per-op clock reads — entirely.
	SlowOpThreshold time.Duration
	// CheckpointDir, when set, makes every session durable: the session
	// writes a sealed checkpoint file (<id>.ckpt) plus a write-ahead log of
	// ingested op batches (<id>.wal) under this directory. A crashed host
	// reopened with Restore recovers each session bit-identically —
	// scoreboards, detections and flight traces — by restoring the last
	// checkpoint and replaying the WAL tail. Empty (the default) disables
	// durability entirely; the ingest path then pays nothing.
	CheckpointDir string
	// CheckpointEvery, when positive, checkpoints a durable session after at
	// least this many ingested ops (at batch boundaries, where the engine is
	// quiescent) and truncates its WAL. Zero checkpoints only on session
	// close, Shutdown, and explicit Session.Checkpoint calls — the WAL alone
	// then carries recovery.
	CheckpointEvery int
	// Restore makes Open recover a session's state from an existing
	// checkpoint and WAL tail under CheckpointDir before accepting new work.
	// Open fails with an error wrapping core.ErrSnapshotMismatch when the
	// on-disk state was produced by a differently-configured pipeline, and
	// with core.ErrSnapshotCorrupt when the checkpoint is damaged (a torn
	// WAL tail, by contrast, is expected crash debris and is dropped
	// silently). Without Restore, Open starts fresh and truncates any stale
	// files for that session ID.
	Restore bool
}

// Host owns a set of detector sessions. All methods are safe for concurrent
// use. Create one with New.
type Host struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool

	// Host-wide telemetry handles (nil-safe when Config.Telemetry is nil).
	open          *telemetry.Gauge
	opens         *telemetry.Counter
	closes        *telemetry.Counter
	backpressures *telemetry.Counter
	degrades      *telemetry.Counter

	// bpCount / degCount mirror the backpressure and degrade counters in
	// plain atomics, so the introspection snapshot works without a registry.
	bpCount  atomic.Int64
	degCount atomic.Int64
	// slow is the slow-op log, nil unless Config.SlowOpThreshold is set.
	slow *slowLog
}

// New returns an empty host.
func New(cfg Config) *Host {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.DegradeAfter == 0 {
		cfg.DegradeAfter = DefaultDegradeAfter
	}
	h := &Host{
		cfg:           cfg,
		sessions:      make(map[string]*Session),
		open:          cfg.Telemetry.Gauge("host_sessions_open"),
		opens:         cfg.Telemetry.Counter("host_opens_total"),
		closes:        cfg.Telemetry.Counter("host_closes_total"),
		backpressures: cfg.Telemetry.Counter("host_backpressure_waits_total"),
		degrades:      cfg.Telemetry.Counter("host_degrades_total"),
	}
	if cfg.SlowOpThreshold > 0 {
		h.slow = newSlowLog(cfg.SlowOpThreshold, slowLogCapacity)
	}
	registerCacheGauges(cfg.Telemetry, cfg.MeasureCache)
	return h
}

// registerCacheGauges exports the shared measurement cache's counters as
// host-level series; registered once here, never per session, because the
// cache is shared across every session in the host.
func registerCacheGauges(reg *telemetry.Registry, c *measurecache.Cache) {
	if reg == nil || c == nil {
		return
	}
	reg.GaugeFunc("host_measure_cache_hits_total", func() float64 { return float64(c.Stats().Hits) })
	reg.GaugeFunc("host_measure_cache_misses_total", func() float64 { return float64(c.Stats().Misses) })
	reg.GaugeFunc("host_measure_cache_evictions_total", func() float64 { return float64(c.Stats().Evictions) })
	reg.GaugeFunc("host_measure_cache_entries", func() float64 { return float64(c.Stats().Entries) })
	reg.GaugeFunc("host_measure_cache_bytes", func() float64 { return float64(c.Stats().Bytes) })
	reg.GaugeFunc("host_measure_cache_capacity_bytes", func() float64 { return float64(c.Stats().Capacity) })
}

// Open creates, registers and starts the session with the given ID. It
// fails with ErrSessionExists if the ID is in use and ErrHostClosed after
// Shutdown.
func (h *Host) Open(id string, sc SessionConfig) (*Session, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("host: open %q: %w", id, ErrHostClosed)
	}
	if _, ok := h.sessions[id]; ok {
		return nil, fmt.Errorf("host: open %q: %w", id, ErrSessionExists)
	}
	s, err := newSession(h, id, sc)
	if err != nil {
		return nil, err
	}
	h.sessions[id] = s
	h.open.Set(int64(len(h.sessions)))
	h.opens.Inc()
	return s, nil
}

// Get returns the open session with the given ID.
func (h *Host) Get(id string) (*Session, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.sessions[id]
	return s, ok
}

// Sessions returns the IDs of all open sessions, sorted.
func (h *Host) Sessions() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	ids := make([]string, 0, len(h.sessions))
	for id := range h.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CloseSession seals the session's queue, drains every queued batch, removes
// the session from the host and returns its final report. The drain wait is
// bounded by ctx: on expiry the session stays sealed and keeps draining in
// the background, but no report is returned. It fails with ErrSessionClosed
// if no session has that ID.
func (h *Host) CloseSession(ctx context.Context, id string) (SessionReport, error) {
	s, err := h.detach(id)
	if err != nil {
		return SessionReport{}, err
	}
	s.seal()
	select {
	case <-s.drained():
	case <-ctx.Done():
		return SessionReport{}, fmt.Errorf("host: close %q: %w", id, ctx.Err())
	}
	return s.finalReport(), nil
}

// Close is CloseSession without a deadline.
//
// Deprecated: use CloseSession — the public ingest surface is context-first,
// so drains can be bounded like every other blocking call.
func (h *Host) Close(id string) (SessionReport, error) {
	return h.CloseSession(context.Background(), id)
}

// detach removes the session from the registry (so its ID is immediately
// reusable) and drops its per-session telemetry series.
func (h *Host) detach(id string) (*Session, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.sessions[id]
	if !ok {
		return nil, fmt.Errorf("host: close %q: %w", id, ErrSessionClosed)
	}
	delete(h.sessions, id)
	h.open.Set(int64(len(h.sessions)))
	h.closes.Inc()
	s.unregisterTelemetry()
	return s, nil
}

// EvictIdleSessions closes every session that has not ingested an event for
// at least idle, returning the final reports of the sessions that drained
// (sorted by session ID). Pass zero idle to evict everything. The drain
// waits are bounded by ctx: on expiry the already-drained reports return
// alongside ctx.Err(), and the remaining victims — sealed either way — keep
// draining in the background.
func (h *Host) EvictIdleSessions(ctx context.Context, idle time.Duration) ([]SessionReport, error) {
	cutoff := time.Now().Add(-idle).UnixNano()
	h.mu.Lock()
	var victims []*Session
	for id, s := range h.sessions {
		if s.lastActive.Load() <= cutoff {
			victims = append(victims, s)
			delete(h.sessions, id)
			s.unregisterTelemetry()
		}
	}
	h.open.Set(int64(len(h.sessions)))
	h.mu.Unlock()

	for _, s := range victims {
		s.seal()
	}
	var err error
	reports := make([]SessionReport, 0, len(victims))
	for _, s := range victims {
		h.closes.Inc()
		select {
		case <-s.drained():
			reports = append(reports, s.finalReport())
		case <-ctx.Done():
			err = fmt.Errorf("host: evict idle: %w", ctx.Err())
		}
		if err != nil {
			break
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].ID < reports[j].ID })
	return reports, err
}

// EvictIdle is EvictIdleSessions without a deadline.
//
// Deprecated: use EvictIdleSessions — the public ingest surface is
// context-first, so drains can be bounded like every other blocking call.
func (h *Host) EvictIdle(idle time.Duration) []SessionReport {
	reports, _ := h.EvictIdleSessions(context.Background(), idle)
	return reports
}

// Shutdown seals every session at once (so their workers drain in
// parallel), waits for the queues to empty, and returns the final reports
// sorted by session ID. If ctx expires first it returns the reports of the
// sessions that finished draining alongside ctx.Err(); undrained workers
// keep running in the background, but the host accepts no new work either
// way. Shutdown is idempotent; later calls return (nil, nil).
func (h *Host) Shutdown(ctx context.Context) ([]SessionReport, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, nil
	}
	h.closed = true
	victims := make([]*Session, 0, len(h.sessions))
	for id, s := range h.sessions {
		victims = append(victims, s)
		delete(h.sessions, id)
		s.unregisterTelemetry()
	}
	h.open.Set(0)
	h.mu.Unlock()

	for _, s := range victims {
		s.seal()
	}
	var reports []SessionReport
	for _, s := range victims {
		select {
		case <-s.drained():
			h.closes.Inc()
			reports = append(reports, s.finalReport())
		case <-ctx.Done():
			sort.Slice(reports, func(i, j int) bool { return reports[i].ID < reports[j].ID })
			return reports, fmt.Errorf("host: shutdown: %w", ctx.Err())
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].ID < reports[j].ID })
	return reports, nil
}
