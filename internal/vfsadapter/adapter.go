// Package vfsadapter connects the backend-neutral detection engine to the
// in-memory VFS: it sits in the filter chain (the minifilter vantage point
// of the paper's Fig. 2), translates each *vfs.Op into a core.Event, and
// exposes the filesystem's raw content reads as the engine's ContentSource.
//
// The translation is mechanical and allocation-free — Events are built on
// the stack and passed by value — so attaching the engine through this
// adapter costs the same as the engine implementing filter.Filter itself
// did before the event model was extracted.
package vfsadapter

import (
	"cryptodrop/internal/core"
	"cryptodrop/internal/vfs"
)

// Filter adapts a core.Engine to the vfs filter chain. PreOp feeds the
// engine's snapshot pass; PostOp feeds scoring. It never vetoes.
type Filter struct {
	eng *core.Engine
}

// New returns a chain filter driving eng from vfs operations.
func New(eng *core.Engine) *Filter { return &Filter{eng: eng} }

// Engine returns the wrapped engine.
func (f *Filter) Engine() *core.Engine { return f.eng }

// Name identifies the detector in a filter chain.
func (f *Filter) Name() string { return "cryptodrop" }

// PreOp hands the engine its pre-operation look at state about to be
// destroyed. It never vetoes.
func (f *Filter) PreOp(op *vfs.Op) error {
	f.eng.PreEvent(EventFromOp(op))
	return nil
}

// PostOp hands the completed operation to the engine for scoring.
func (f *Filter) PostOp(op *vfs.Op) {
	f.eng.Handle(EventFromOp(op))
}

// evKinds maps vfs operation kinds to event kinds. Indexed by vfs.OpKind;
// the zero entry is unused (op kinds start at 1).
var evKinds = [...]core.EventKind{
	vfs.OpCreate: core.EvCreate,
	vfs.OpOpen:   core.EvOpen,
	vfs.OpRead:   core.EvRead,
	vfs.OpWrite:  core.EvWrite,
	vfs.OpClose:  core.EvClose,
	vfs.OpDelete: core.EvDelete,
	vfs.OpRename: core.EvRename,
}

// EventFromOp translates one vfs operation into the engine's event model.
// The payload slice is shared, not copied: the engine treats Data as
// read-only and does not retain it past the call.
func EventFromOp(op *vfs.Op) core.Event {
	return core.Event{
		Kind:       evKinds[op.Kind],
		PID:        op.PID,
		Path:       op.Path,
		NewPath:    op.NewPath,
		FileID:     op.FileID,
		ReplacedID: op.ReplacedID,
		Data:       op.Data,
		Offset:     op.Offset,
		Size:       op.Size,
		Flags:      flagsFromOpen(op.Flags),
		Wrote:      op.Wrote,
	}
}

// flagsFromOpen translates vfs open flags into event intent bits.
func flagsFromOpen(fl vfs.OpenFlag) core.EventFlag {
	var out core.EventFlag
	if fl&vfs.ReadOnly != 0 {
		out |= core.EvReadIntent
	}
	if fl&vfs.WriteOnly != 0 {
		out |= core.EvWriteIntent
	}
	if fl&vfs.Create != 0 {
		out |= core.EvCreateIntent
	}
	if fl&vfs.Truncate != 0 {
		out |= core.EvTruncate
	}
	if fl&vfs.Append != 0 {
		out |= core.EvAppend
	}
	return out
}

// source exposes a vfs as the engine's ContentSource through the privileged
// raw read (no handle, no op events, no interceptor recursion).
type source struct {
	fs *vfs.FS
}

// Source returns a core.ContentSource reading file content from fsys by ID.
func Source(fsys *vfs.FS) core.ContentSource { return source{fs: fsys} }

func (s source) Content(id uint64) ([]byte, error) {
	return s.fs.ReadFileRawByID(id)
}

// ContentRange implements core.RangeReader: the engine's sampled tier and
// incremental-entropy capture read only the bytes they need instead of
// copying out whole files.
func (s source) ContentRange(id uint64, off, n int64) ([]byte, int64, error) {
	return s.fs.ReadFileRawRangeByID(id, off, n)
}
