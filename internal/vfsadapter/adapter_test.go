package vfsadapter

import (
	"testing"

	"cryptodrop/internal/core"
	"cryptodrop/internal/vfs"
)

// TestEventFromOpMapsEveryKind pins the op→event kind table: every vfs
// operation kind must translate, and to the event kind of the same name.
func TestEventFromOpMapsEveryKind(t *testing.T) {
	kinds := []vfs.OpKind{
		vfs.OpCreate, vfs.OpOpen, vfs.OpRead, vfs.OpWrite,
		vfs.OpClose, vfs.OpDelete, vfs.OpRename,
	}
	for _, k := range kinds {
		ev := EventFromOp(&vfs.Op{Kind: k})
		if ev.Kind == 0 {
			t.Fatalf("op kind %v maps to no event kind", k)
		}
		if got, want := ev.Kind.String(), k.String(); got != want {
			t.Fatalf("op kind %v maps to event kind %v", want, got)
		}
	}
}

// TestEventFromOpFields pins the field-for-field translation, including the
// open-flag bits the engine's snapshot pass depends on.
func TestEventFromOpFields(t *testing.T) {
	data := []byte{1, 2, 3}
	op := &vfs.Op{
		Kind:       vfs.OpRename,
		PID:        42,
		Path:       "/docs/a.txt",
		NewPath:    "/docs/a.txt.locked",
		FileID:     7,
		ReplacedID: 9,
		Data:       data,
		Offset:     128,
		Size:       4096,
		Flags:      vfs.WriteOnly | vfs.Create | vfs.Truncate,
		Wrote:      true,
	}
	ev := EventFromOp(op)
	if ev.Kind != core.EvRename || ev.PID != 42 ||
		ev.Path != "/docs/a.txt" || ev.NewPath != "/docs/a.txt.locked" ||
		ev.FileID != 7 || ev.ReplacedID != 9 ||
		ev.Offset != 128 || ev.Size != 4096 || !ev.Wrote {
		t.Fatalf("translated event %+v loses op fields", ev)
	}
	if &ev.Data[0] != &data[0] {
		t.Fatal("payload must be shared, not copied")
	}
	want := core.EvWriteIntent | core.EvCreateIntent | core.EvTruncate
	if ev.Flags != want {
		t.Fatalf("flags = %b, want %b", ev.Flags, want)
	}
	if ro := EventFromOp(&vfs.Op{Kind: vfs.OpOpen, Flags: vfs.ReadOnly}); ro.Flags != core.EvReadIntent {
		t.Fatalf("ReadOnly maps to %b", ro.Flags)
	}
	if ap := EventFromOp(&vfs.Op{Kind: vfs.OpOpen, Flags: vfs.Append | vfs.WriteOnly}); ap.Flags != core.EvAppend|core.EvWriteIntent {
		t.Fatalf("Append|WriteOnly maps to %b", ap.Flags)
	}
}

// TestFilterDrivesEngine wires a real filesystem through the adapter and
// checks operations reach the engine's scoreboard.
func TestFilterDrivesEngine(t *testing.T) {
	const root = "/Users/victim/Documents"
	fsys := vfs.New()
	if err := fsys.MkdirAll(root); err != nil {
		t.Fatal(err)
	}
	if err := fsys.WriteFile(0, root+"/a.txt", []byte("plain text content, plain text content")); err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.DefaultConfig(root), Source(fsys))
	f := New(eng)
	if f.Name() != "cryptodrop" {
		t.Fatalf("filter name %q", f.Name())
	}
	if f.Engine() != eng {
		t.Fatal("Engine() does not return the wrapped engine")
	}
	fsys.SetInterceptor(f)
	if err := fsys.Delete(5, root+"/a.txt"); err != nil {
		t.Fatal(err)
	}
	rep, ok := eng.Report(5)
	if !ok || rep.Deletes != 1 {
		t.Fatalf("deletion did not reach the engine: ok=%v rep=%+v", ok, rep)
	}
	if rep.Score != core.DefaultPoints().Deletion {
		t.Fatalf("score %.1f, want %.1f", rep.Score, core.DefaultPoints().Deletion)
	}
}

// TestSourceReadsByID pins the ContentSource wrapper.
func TestSourceReadsByID(t *testing.T) {
	fsys := vfs.New()
	if err := fsys.WriteFile(0, "/f.bin", []byte{9, 8, 7}); err != nil {
		t.Fatal(err)
	}
	info, err := fsys.Stat("/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Source(fsys).Content(info.FileID)
	if err != nil || string(got) != string([]byte{9, 8, 7}) {
		t.Fatalf("Content(%d) = %v, %v", info.FileID, got, err)
	}
	if _, err := Source(fsys).Content(12345); err == nil {
		t.Fatal("unknown id must error")
	}
}
