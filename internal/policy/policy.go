// Package policy is the detection-policy layer of the pipeline: it decides
// how per-indicator awards fuse into a detection verdict. The engine owns
// measurement and the indicator registry owns scoring; a Policy only reads
// the scoreboard through Context and controls two things — when a scoring
// group's detection is accelerated (the paper's union indication, a voting
// quorum, …) and which threshold its score is judged against.
//
// Union is the paper's default (§III-E): once all three primary indicators
// have been seen, a one-time bonus is added and the lower union threshold
// applies. Majority (Davies et al.) generalises the acceleration to "any
// quorum of distinct indicators", independent of class. Policies must be
// stateless per scoring group — all group state (score, seen set,
// acceleration latch) lives in the engine and is reached through Context —
// so one Policy value can serve any number of engines.
package policy

import "cryptodrop/internal/indicator"

// Context is a policy's window onto one scoring group's state. It is only
// valid for the duration of the call it is passed to; implementations are
// supplied by the engine with the group's shard lock held.
type Context interface {
	// Score is the group's current reputation score.
	Score() float64
	// Seen reports whether the indicator has fired at least once for the
	// group.
	Seen(indicator.ID) bool
	// SeenCount is the number of distinct indicators that have fired.
	SeenCount() int
	// RegistrySize is the number of indicator units registered with the
	// engine.
	RegistrySize() int
	// Accelerated reports whether this group's detection has already been
	// accelerated (the latch is one-time per group).
	Accelerated() bool
	// Accelerate latches acceleration for the group, adds bonus to its
	// score and records the step (telemetry counter, flight-recorder entry
	// under label, score-history point). Idempotent: once a group is
	// accelerated, further calls do nothing.
	Accelerate(label string, bonus float64)
	// NonUnionThreshold and UnionThreshold are the engine's configured
	// base and accelerated detection thresholds.
	NonUnionThreshold() float64
	UnionThreshold() float64
}

// Policy decides detection for a scoring group. AfterAward runs after every
// indicator award (the point where acceleration conditions can change);
// Decide runs whenever the engine re-evaluates the group against its
// threshold. Both run with the group's shard lock held and must not retain
// ctx.
type Policy interface {
	AfterAward(ctx Context)
	Decide(ctx Context) (threshold float64, detect bool)
}

// Union is the paper's detection policy: when every required primary
// indicator has been seen, the group's score gets a one-time bonus and the
// lower union threshold applies (§III-E). The zero value is not usable;
// construct with NewUnion.
type Union struct {
	required []indicator.ID
	bonus    float64
	disabled bool
}

// NewUnion returns the paper's union+threshold policy. bonus is the
// one-time score bonus added when union fires; disabled turns union
// indication off entirely (ablation studies), leaving the plain non-union
// threshold.
//
// The required set is the paper's three primary indicators — a constant,
// not whatever primaries happen to be registered. Ablating a primary out of
// the registry therefore leaves union unattainable rather than quietly
// shrinking the requirement to the survivors.
func NewUnion(bonus float64, disabled bool) *Union {
	return &Union{required: indicator.Primaries(), bonus: bonus, disabled: disabled}
}

// AfterAward fires union indication once all required indicators are seen.
func (u *Union) AfterAward(ctx Context) {
	if u.disabled || ctx.Accelerated() {
		return
	}
	for _, id := range u.required {
		if !ctx.Seen(id) {
			return
		}
	}
	ctx.Accelerate("union-bonus", u.bonus)
}

// Decide flags the group when its score reaches the effective threshold:
// the union threshold once union fired (when lower), the non-union
// threshold otherwise.
func (u *Union) Decide(ctx Context) (float64, bool) {
	threshold := ctx.NonUnionThreshold()
	if ctx.Accelerated() && ctx.UnionThreshold() < threshold {
		threshold = ctx.UnionThreshold()
	}
	return threshold, ctx.Score() >= threshold
}

// Majority is the voting-style policy (after Davies et al.): acceleration
// requires a quorum of distinct indicators — any indicators, primary or
// secondary — rather than the paper's specific primary union. With a
// larger registry this tolerates any single indicator being evaded while
// still demanding broad agreement before the lower threshold applies.
type Majority struct {
	// Quorum is the number of distinct fired indicators required. Zero
	// means a strict majority of the registered units (size/2 + 1).
	Quorum int
	// Bonus is added to the score when the quorum is reached. Zero adds
	// nothing — the quorum then only switches the threshold.
	Bonus float64
	// Threshold is the effective detection threshold once the quorum has
	// been reached. Zero means the engine's configured union threshold.
	Threshold float64
}

// AfterAward latches acceleration once the quorum of distinct indicators
// has fired.
func (m *Majority) AfterAward(ctx Context) {
	if ctx.Accelerated() {
		return
	}
	q := m.Quorum
	if q <= 0 {
		q = ctx.RegistrySize()/2 + 1
	}
	if ctx.SeenCount() >= q {
		ctx.Accelerate("majority-quorum", m.Bonus)
	}
}

// Decide applies the quorum threshold once accelerated, the non-union
// threshold otherwise.
func (m *Majority) Decide(ctx Context) (float64, bool) {
	threshold := ctx.NonUnionThreshold()
	if ctx.Accelerated() {
		t := m.Threshold
		if t == 0 {
			t = ctx.UnionThreshold()
		}
		if t < threshold {
			threshold = t
		}
	}
	return threshold, ctx.Score() >= threshold
}
