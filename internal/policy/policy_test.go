package policy

import (
	"testing"

	"cryptodrop/internal/indicator"
)

// fakeContext is a canned policy Context.
type fakeContext struct {
	score       float64
	seen        map[indicator.ID]bool
	regSize     int
	accelerated bool
	accelLabel  string
	accelBonus  float64
	nonUnion    float64
	union       float64
}

func (f *fakeContext) Score() float64              { return f.score }
func (f *fakeContext) Seen(id indicator.ID) bool   { return f.seen[id] }
func (f *fakeContext) SeenCount() int              { return len(f.seen) }
func (f *fakeContext) RegistrySize() int           { return f.regSize }
func (f *fakeContext) Accelerated() bool           { return f.accelerated }
func (f *fakeContext) NonUnionThreshold() float64  { return f.nonUnion }
func (f *fakeContext) UnionThreshold() float64     { return f.union }
func (f *fakeContext) Accelerate(label string, bonus float64) {
	if f.accelerated {
		return
	}
	f.accelerated = true
	f.accelLabel = label
	f.accelBonus = bonus
	f.score += bonus
}

func defaultCtx() *fakeContext {
	return &fakeContext{seen: make(map[indicator.ID]bool), regSize: 5, nonUnion: 200, union: 140}
}

// TestUnionRequiresAllPrimaries pins the paper's union rule: the bonus
// fires exactly when all three primary indicators have been seen, once.
func TestUnionRequiresAllPrimaries(t *testing.T) {
	p := NewUnion(30, false)
	ctx := defaultCtx()
	for _, id := range indicator.Primaries()[:2] {
		ctx.seen[id] = true
		p.AfterAward(ctx)
		if ctx.accelerated {
			t.Fatalf("union fired with only %d primaries seen", len(ctx.seen))
		}
	}
	ctx.seen[indicator.EntropyDelta] = true
	p.AfterAward(ctx)
	if !ctx.accelerated || ctx.accelLabel != "union-bonus" || ctx.accelBonus != 30 {
		t.Fatalf("union did not fire correctly: %+v", ctx)
	}
	score := ctx.score
	p.AfterAward(ctx)
	if ctx.score != score {
		t.Fatal("union bonus applied twice")
	}
}

// TestUnionSecondariesDoNotCount pins that secondary indicators (however
// many) never satisfy the union requirement.
func TestUnionSecondariesDoNotCount(t *testing.T) {
	p := NewUnion(30, false)
	ctx := defaultCtx()
	ctx.seen[indicator.Deletion] = true
	ctx.seen[indicator.Funneling] = true
	ctx.seen[indicator.Honeyfile] = true
	p.AfterAward(ctx)
	if ctx.accelerated {
		t.Fatal("union fired on secondary indicators alone")
	}
}

// TestUnionDecide pins threshold selection: the non-union threshold
// normally, the lower union threshold once accelerated, never a higher one.
func TestUnionDecide(t *testing.T) {
	p := NewUnion(30, false)
	ctx := defaultCtx()
	ctx.score = 150
	if th, detect := p.Decide(ctx); th != 200 || detect {
		t.Fatalf("unaccelerated Decide = (%v, %v), want (200, false)", th, detect)
	}
	ctx.accelerated = true
	if th, detect := p.Decide(ctx); th != 140 || !detect {
		t.Fatalf("accelerated Decide = (%v, %v), want (140, true)", th, detect)
	}
	// A union threshold above the base one must not raise the bar.
	ctx.union = 400
	if th, _ := p.Decide(ctx); th != 200 {
		t.Fatalf("Decide picked the higher union threshold %v", th)
	}
}

// TestUnionDisabled pins the ablation switch: no acceleration ever.
func TestUnionDisabled(t *testing.T) {
	p := NewUnion(30, true)
	ctx := defaultCtx()
	for _, id := range indicator.Primaries() {
		ctx.seen[id] = true
	}
	p.AfterAward(ctx)
	if ctx.accelerated {
		t.Fatal("disabled union still fired")
	}
}

// TestMajorityQuorum pins the majority-voting policy: acceleration at
// ceil(N/2)+... — a strict majority of the registry's distinct indicators.
func TestMajorityQuorum(t *testing.T) {
	p := &Majority{Bonus: 10}
	ctx := defaultCtx() // registry size 5 -> default quorum 3
	ctx.seen[indicator.Deletion] = true
	ctx.seen[indicator.Funneling] = true
	p.AfterAward(ctx)
	if ctx.accelerated {
		t.Fatal("majority fired below quorum")
	}
	ctx.seen[indicator.TypeChange] = true
	p.AfterAward(ctx)
	if !ctx.accelerated || ctx.accelLabel != "majority-quorum" || ctx.accelBonus != 10 {
		t.Fatalf("majority did not fire at quorum: %+v", ctx)
	}
}

// TestMajorityDecide pins threshold selection for the majority policy: its
// own threshold when set, the union threshold otherwise, once accelerated.
func TestMajorityDecide(t *testing.T) {
	p := &Majority{}
	ctx := defaultCtx()
	ctx.score = 150
	if th, detect := p.Decide(ctx); th != 200 || detect {
		t.Fatalf("unaccelerated Decide = (%v, %v), want (200, false)", th, detect)
	}
	ctx.accelerated = true
	if th, detect := p.Decide(ctx); th != 140 || !detect {
		t.Fatalf("accelerated Decide = (%v, %v), want (140, true)", th, detect)
	}
	p.Threshold = 100
	if th, detect := p.Decide(ctx); th != 100 || !detect {
		t.Fatalf("explicit-threshold Decide = (%v, %v), want (100, true)", th, detect)
	}
}

// TestMajorityExplicitQuorum pins that an explicit quorum overrides the
// registry-derived default.
func TestMajorityExplicitQuorum(t *testing.T) {
	p := &Majority{Quorum: 2}
	ctx := defaultCtx()
	ctx.seen[indicator.Deletion] = true
	ctx.seen[indicator.Funneling] = true
	p.AfterAward(ctx)
	if !ctx.accelerated {
		t.Fatal("explicit quorum of 2 did not fire with 2 seen")
	}
}
