package experiments

import (
	"fmt"
	"io"

	"cryptodrop"
	"cryptodrop/internal/ransomware"
)

// UnionStats reproduces the union-indicator effectiveness analysis of
// §V-B2.
type UnionStats struct {
	// Total is the number of samples run.
	Total int
	// Detected counts flagged samples (the paper reports 492/492).
	Detected int
	// WithUnion counts samples with at least one union indication (the
	// paper reports 457, 93%).
	WithUnion int
	// ClassCMoveOver / ClassCDelete split the Class C samples by disposal
	// strategy (41 vs 22 in the paper); delete-based Class C evades union
	// linking.
	ClassCMoveOver, ClassCDelete int
	// ClassCDeleteUnion counts delete-based Class C samples that still
	// achieved union.
	ClassCDeleteUnion int
	// MedianLostUnion / MedianLostNonUnion split median files lost by
	// whether union fired (the paper's non-union Class C evaders had a
	// median of 6).
	MedianLostUnion, MedianLostNonUnion float64
	// NoSimilarity counts detected samples that never triggered the
	// similarity indicator (13 Class A samples in the paper).
	NoSimilarity int
}

// BuildUnionStats aggregates union behaviour across outcomes.
func BuildUnionStats(outcomes []SampleOutcome) UnionStats {
	var s UnionStats
	var lostUnion, lostNonUnion []int
	for _, o := range outcomes {
		s.Total++
		if o.Detected {
			s.Detected++
		}
		if o.Union {
			s.WithUnion++
			lostUnion = append(lostUnion, o.FilesLost)
		} else {
			lostNonUnion = append(lostNonUnion, o.FilesLost)
		}
		if o.Sample.Profile.Class == ransomware.ClassC {
			if o.Sample.Profile.MoveOverOriginal {
				s.ClassCMoveOver++
			} else {
				s.ClassCDelete++
				if o.Union {
					s.ClassCDeleteUnion++
				}
			}
		}
		if o.Detected && o.Report.IndicatorPoints[cryptodrop.IndicatorSimilarity] == 0 {
			s.NoSimilarity++
		}
	}
	s.MedianLostUnion = median(lostUnion)
	s.MedianLostNonUnion = median(lostNonUnion)
	return s
}

// Render writes the analysis.
func (s UnionStats) Render(w io.Writer) error {
	pctU := pct(s.WithUnion, s.Total)
	_, err := fmt.Fprintf(w,
		"Samples: %d  Detected: %d (%.0f%%)\n"+
			"Union indication fired: %d (%.0f%%)\n"+
			"Median files lost — union: %.1f, non-union: %.1f\n"+
			"Class C disposal: %d move-over-original (links state), %d delete (evades linking)\n"+
			"Delete-based Class C that still achieved union: %d\n"+
			"Detected samples with no similarity-indicator points: %d\n",
		s.Total, s.Detected, pct(s.Detected, s.Total),
		s.WithUnion, pctU,
		s.MedianLostUnion, s.MedianLostNonUnion,
		s.ClassCMoveOver, s.ClassCDelete,
		s.ClassCDeleteUnion, s.NoSimilarity)
	return err
}
