package experiments

import (
	"bytes"
	"strings"
	"testing"

	"cryptodrop/internal/ransomware"
)

// TestRecoveryExperiment pins the headline claim of the detect-then-recover
// tentpole: with the versioned backend armed, the paper's "median files lost
// before detection" collapses to at most one file lost AFTER recovery, in
// every behavioural class, with no rollback failures and no change to the
// detection rate.
func TestRecoveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the reduced roster twice")
	}
	roster := reducedRoster(t)
	tbl, err := RunRecoveryExperiment(testSpec, roster)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Total != len(roster) {
		t.Fatalf("table covers %d samples, want %d", tbl.Total, len(roster))
	}
	if tbl.DetectionRate != 1.0 {
		t.Errorf("detection rate = %.2f, want 1.0 (recovery must not change verdicts)", tbl.DetectionRate)
	}
	if tbl.Failures != 0 {
		t.Errorf("%d rollback failures", tbl.Failures)
	}
	if len(tbl.Classes) != 3 {
		t.Fatalf("class rows = %d, want A, B and C", len(tbl.Classes))
	}
	for _, c := range tbl.Classes {
		if c.MedianLostAfter > 1 {
			t.Errorf("class %s: median files lost after recovery = %.1f, want <= 1 (before: %.1f)",
				c.Class, c.MedianLostAfter, c.MedianLostBefore)
		}
		if c.MedianLostAfter > c.MedianLostBefore {
			t.Errorf("class %s: recovery made things worse: %.1f -> %.1f",
				c.Class, c.MedianLostBefore, c.MedianLostAfter)
		}
	}
	if tbl.OverallMedianLostAfter > 1 {
		t.Errorf("overall median after recovery = %.1f, want <= 1", tbl.OverallMedianLostAfter)
	}
	if tbl.OverallMedianLostBefore < 1 {
		t.Errorf("overall median before recovery = %.1f: baseline lost nothing, experiment proves nothing",
			tbl.OverallMedianLostBefore)
	}
	if tbl.FilesRestored+tbl.FilesRecreated == 0 {
		t.Error("no files were rolled back across the whole roster")
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"after recovery", "Class A", "Class B", "Class C", "Overall", "Rollback:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestBuildRecoveryTableRejectsMismatchedRosters pins the pairing contract.
func TestBuildRecoveryTableRejectsMismatchedRosters(t *testing.T) {
	a := []SampleOutcome{{Sample: ransomware.Sample{ID: "x"}}}
	if _, err := BuildRecoveryTable(a, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	b := []SampleOutcome{{Sample: ransomware.Sample{ID: "y"}}}
	if _, err := BuildRecoveryTable(a, b); err == nil {
		t.Error("sample mismatch accepted")
	}
}
