package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/ransomware"
)

// MultiProcRow is one worker-count configuration's outcome under both
// scoring modes.
type MultiProcRow struct {
	// Workers is the number of child processes the attack rotated over.
	Workers int
	// PerProcessLost is files lost with per-process scoring.
	PerProcessLost int
	// PerProcessDetected reports any detection under per-process scoring.
	PerProcessDetected bool
	// FamilyLost is files lost with family-aggregated scoring.
	FamilyLost int
	// FamilyDetected reports detection under family scoring.
	FamilyDetected bool
}

// MultiProcResult is the score-dilution experiment: a dropper spawns N
// workers and spreads the attack across them. Per-process scoring dilutes
// each worker's reputation N-fold; family scoring (the paper's "process or
// family of processes", §IV-A) is immune.
type MultiProcResult struct {
	// Rows are per-worker-count outcomes.
	Rows []MultiProcRow
	// CorpusSize is the number of victim files available.
	CorpusSize int
}

// RunMultiProcessExperiment runs a Class A specimen spread over each worker
// count, under per-process and family scoring.
func RunMultiProcessExperiment(spec corpus.Spec, rosterSeed int64, workerCounts []int) (MultiProcResult, error) {
	var sample ransomware.Sample
	for _, s := range ransomware.Roster(rosterSeed) {
		if s.Profile.Family == "Filecoder" && s.Profile.Class == ransomware.ClassA {
			sample = s
			break
		}
	}
	if sample.ID == "" {
		return MultiProcResult{}, fmt.Errorf("experiments: no Filecoder Class A sample")
	}
	base, err := NewRunner(spec)
	if err != nil {
		return MultiProcResult{}, err
	}
	res := MultiProcResult{CorpusSize: len(base.Manifest().Entries)}

	run := func(workers int, family bool) (lost int, detected bool, err error) {
		fs := base.CloneFS()
		procs := proc.NewTable()
		opts := []cryptodrop.Option{cryptodrop.WithRoot(base.Manifest().Root)}
		if family {
			opts = append(opts, cryptodrop.WithFamilyScoring())
		}
		mon, err := cryptodrop.NewMonitor(fs, procs, opts...)
		if err != nil {
			return 0, false, err
		}
		dropper := procs.Spawn(sample.ID + "-dropper")
		pids := make([]int, workers)
		for i := range pids {
			pids[i] = procs.SpawnChild(fmt.Sprintf("worker%d.exe", i), dropper)
		}
		if _, err := sample.RunAsFamily(fs, pids, base.Manifest().Root, procs.Suspended); err != nil {
			return 0, false, err
		}
		return base.countFilesLost(fs), len(mon.Detections()) > 0, nil
	}

	for _, workers := range workerCounts {
		row := MultiProcRow{Workers: workers}
		if row.PerProcessLost, row.PerProcessDetected, err = run(workers, false); err != nil {
			return res, err
		}
		if row.FamilyLost, row.FamilyDetected, err = run(workers, true); err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the comparison table.
func (r MultiProcResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Workers\tPer-process scoring\tFamily scoring\t(corpus: %d files)\n", r.CorpusSize)
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t\n", row.Workers,
			describeOutcome(row.PerProcessLost, row.PerProcessDetected),
			describeOutcome(row.FamilyLost, row.FamilyDetected))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "\nSpreading the attack over N workers dilutes each per-process score\nN-fold; aggregating the scoreboard by process family restores detection.")
	return err
}

func describeOutcome(lost int, detected bool) string {
	if detected {
		return fmt.Sprintf("detected, %d lost", lost)
	}
	return fmt.Sprintf("EVADED, %d lost", lost)
}
