package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestScoreCurves(t *testing.T) {
	res, err := RunScoreCurves(testSpec, 1,
		[]string{"TeslaCrypt", "Xorist"},
		[]string{"Microsoft Word", "Microsoft Excel"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 4 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	byLabel := map[string]ScoreCurve{}
	for _, c := range res.Curves {
		byLabel[c.Label] = c
	}
	if !byLabel["TeslaCrypt"].Detected || !byLabel["Xorist"].Detected {
		t.Fatal("ransomware curves not detected")
	}
	if byLabel["Microsoft Word"].Detected || byLabel["Microsoft Excel"].Detected {
		t.Fatal("benign curve detected")
	}
	// Ransomware trajectories must rise much faster per operation.
	tesla := byLabel["TeslaCrypt"].Points
	if len(tesla) == 0 {
		t.Fatal("empty TeslaCrypt trajectory")
	}
	// Monotone non-decreasing score.
	for i := 1; i < len(tesla); i++ {
		if tesla[i].Score < tesla[i-1].Score {
			t.Fatal("score decreased")
		}
		if tesla[i].OpIndex < tesla[i-1].OpIndex {
			t.Fatal("op index decreased")
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TeslaCrypt") || !strings.Contains(buf.String(), "final") {
		t.Fatalf("render:\n%s", buf.String())
	}
}

func TestScoreCurvesUnknownInputs(t *testing.T) {
	if _, err := RunScoreCurves(testSpec, 1, []string{"NopeWare"}, nil); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := RunScoreCurves(testSpec, 1, nil, []string{"NopeApp"}); err == nil {
		t.Fatal("unknown app accepted")
	}
}
