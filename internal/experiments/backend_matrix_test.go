package experiments

import (
	"crypto/sha256"
	"reflect"
	"testing"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/ransomware"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/vfs"
)

// matrixResult is everything one full-stack run can observe: the final
// scoreboard, the detection stream, the flight-recorder trace and the
// paper's files-lost count.
type matrixResult struct {
	report cryptodrop.ProcessReport
	dets   []cryptodrop.Detection
	trace  telemetry.Trace
	lost   int
}

// matrixLost counts manifest entries whose content survives nowhere on disk.
func matrixLost(fs *vfs.FS, m *corpus.Manifest) int {
	surviving := make(map[[32]byte]bool, len(m.Entries))
	_ = fs.Walk("/", func(info vfs.FileInfo) error {
		if info.IsDir {
			return nil
		}
		if content, err := fs.ReadFileRaw(info.Path); err == nil {
			surviving[sha256.Sum256(content)] = true
		}
		return nil
	})
	lost := 0
	for _, e := range m.Entries {
		if !surviving[e.SHA256] {
			lost++
		}
	}
	return lost
}

// TestBackendMatrixConformance pins storage-layer neutrality end to end: the
// same class A, B and C attacks run against (a) the default in-memory
// backend, (b) a local OS-directory backend, and (c) a mounted mix (memory
// root with the whole victim tree on a local mount) must produce bit-identical
// scoreboards, detections, flight-recorder traces and files-lost counts. The
// backend is below every seam the engine observes, so nothing may differ.
func TestBackendMatrixConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("nine full corpus builds and attack runs")
	}
	spec := corpus.Spec{Seed: 2016, Files: 200, Dirs: 20, SizeScale: 0.25}
	classes := map[ransomware.Class]ransomware.Sample{}
	for _, s := range ransomware.Roster(spec.Seed) {
		if _, ok := classes[s.Profile.Class]; !ok {
			classes[s.Profile.Class] = s
		}
	}
	configs := []struct {
		name string
		fs   func(t *testing.T) *vfs.FS
	}{
		{"memory", func(t *testing.T) *vfs.FS { return vfs.New() }},
		{"local", func(t *testing.T) *vfs.FS { return vfs.NewWith(vfs.NewLocal(t.TempDir())) }},
		{"mounted", func(t *testing.T) *vfs.FS {
			fs := vfs.New()
			if err := fs.Mount("/Users/victim", vfs.NewLocal(t.TempDir())); err != nil {
				t.Fatal(err)
			}
			return fs
		}},
	}
	runOn := func(t *testing.T, fs *vfs.FS, sample ransomware.Sample) matrixResult {
		m, err := corpus.Build(fs, spec)
		if err != nil {
			t.Fatal(err)
		}
		procs := proc.NewTable()
		fr := telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
		mon, err := cryptodrop.NewMonitor(fs, procs,
			cryptodrop.WithRoot(m.Root), cryptodrop.WithFlightRecorder(fr))
		if err != nil {
			t.Fatal(err)
		}
		pid := procs.Spawn(sample.ID)
		if _, err := sample.Run(fs, pid, m.Root, func() bool { return procs.Suspended(pid) }); err != nil {
			t.Fatal(err)
		}
		rep, ok := mon.Report(pid)
		if !ok {
			t.Fatalf("no report for pid %d", pid)
		}
		return matrixResult{
			report: rep,
			dets:   mon.Detections(),
			trace:  fr.Trace(pid),
			lost:   matrixLost(fs, m),
		}
	}
	for class, sample := range classes {
		sample := sample
		// Park Class B moves on the victim's own volume so every config keeps
		// the rename inside one mount — the mounted config would otherwise
		// reject a Documents -> /Windows/Temp rename with ErrCrossMount and
		// the op streams would diverge.
		sample.Profile.TempDir = "/Users/victim/tmp"
		t.Run(class.String(), func(t *testing.T) {
			var ref matrixResult
			for i, cfg := range configs {
				got := runOn(t, cfg.fs(t), sample)
				if len(got.dets) != 1 {
					t.Fatalf("%s: detections = %d, want 1", cfg.name, len(got.dets))
				}
				if len(got.trace.Events) == 0 {
					t.Fatalf("%s: empty flight trace", cfg.name)
				}
				if i == 0 {
					ref = got
					continue
				}
				if !reflect.DeepEqual(ref.report, got.report) {
					t.Errorf("scoreboard diverges on %s:\n memory: %+v\n %s: %+v",
						cfg.name, ref.report, cfg.name, got.report)
				}
				if !reflect.DeepEqual(ref.dets, got.dets) {
					t.Errorf("detections diverge on %s:\n memory: %+v\n %s: %+v",
						cfg.name, ref.dets, cfg.name, got.dets)
				}
				if !reflect.DeepEqual(ref.trace, got.trace) {
					t.Errorf("flight trace diverges on %s (memory %d events, %s %d events)",
						cfg.name, len(ref.trace.Events), cfg.name, len(got.trace.Events))
				}
				if ref.lost != got.lost {
					t.Errorf("files lost diverge on %s: memory %d, %s %d",
						cfg.name, ref.lost, cfg.name, got.lost)
				}
			}
		})
	}
}
