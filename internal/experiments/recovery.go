package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/ransomware"
)

// RecoveryRow is one family row of the detect-then-recover experiment: the
// family's median files lost with detection only (Table I's number) next to
// its median after pre-image rollback.
type RecoveryRow struct {
	// Family is the family name.
	Family string
	// Total is the family sample count.
	Total int
	// MedianLostBefore is the median files lost with detection only.
	MedianLostBefore float64
	// MedianLostAfter is the median files lost after rollback.
	MedianLostAfter float64
	// MedianRestored is the median files rolled back per sample.
	MedianRestored float64
	// Failures counts rollback failures across the family's samples.
	Failures int
	// DetectedAll reports whether every family sample was detected (in
	// both the baseline and the recovery-armed run).
	DetectedAll bool
}

// RecoveryClassRow aggregates the same comparison per behavioural class, the
// acceptance view: Class A rewrites in place, Class B moves out, Class C
// copies and deletes — recovery has to hold across all three shapes.
type RecoveryClassRow struct {
	// Class is the behavioural class.
	Class ransomware.Class
	// Total is the class sample count.
	Total int
	// MedianLostBefore/MedianLostAfter mirror the family rows.
	MedianLostBefore, MedianLostAfter float64
}

// RecoveryTable summarises a paired baseline / recovery-armed roster run.
type RecoveryTable struct {
	// Rows are per-family results in name order.
	Rows []RecoveryRow
	// Classes are per-class aggregates in class order.
	Classes []RecoveryClassRow
	// Total is the sample count.
	Total int
	// OverallMedianLostBefore is Table I's headline median.
	OverallMedianLostBefore float64
	// OverallMedianLostAfter is the headline after rollback.
	OverallMedianLostAfter float64
	// DetectionRate is the fraction detected in both runs.
	DetectionRate float64
	// FilesRestored/FilesRecreated/Failures total the rollback accounting.
	FilesRestored, FilesRecreated, Failures int
}

// BuildRecoveryTable pairs a detection-only roster run with a
// recovery-armed run of the same roster (same order) and aggregates the
// before/after comparison. The two slices must be position-aligned.
func BuildRecoveryTable(baseline, recovered []SampleOutcome) (RecoveryTable, error) {
	if len(baseline) != len(recovered) {
		return RecoveryTable{}, fmt.Errorf("experiments: paired rosters differ: %d baseline vs %d recovered", len(baseline), len(recovered))
	}
	type agg struct {
		row           RecoveryRow
		before, after []int
		restored      []int
		detected      int
	}
	byFamily := make(map[string]*agg)
	byClass := make(map[ransomware.Class]*RecoveryClassRow)
	classLost := make(map[ransomware.Class][2][]int)
	var order []string
	var t RecoveryTable
	var allBefore, allAfter []int
	for i, base := range baseline {
		rec := recovered[i]
		if base.Sample.ID != rec.Sample.ID {
			return RecoveryTable{}, fmt.Errorf("experiments: paired rosters diverge at %d: %s vs %s", i, base.Sample.ID, rec.Sample.ID)
		}
		fam := base.Sample.Profile.Family
		a, ok := byFamily[fam]
		if !ok {
			a = &agg{row: RecoveryRow{Family: fam}}
			byFamily[fam] = a
			order = append(order, fam)
		}
		restored := 0
		for _, r := range rec.Recoveries {
			restored += r.FilesRestored + r.FilesRecreated
			t.FilesRestored += r.FilesRestored
			t.FilesRecreated += r.FilesRecreated
			t.Failures += r.Failures
			a.row.Failures += r.Failures
		}
		a.row.Total++
		a.before = append(a.before, base.FilesLost)
		a.after = append(a.after, rec.FilesLost)
		a.restored = append(a.restored, restored)
		allBefore = append(allBefore, base.FilesLost)
		allAfter = append(allAfter, rec.FilesLost)
		if base.Detected && rec.Detected {
			a.detected++
			t.DetectionRate++
		}
		class := base.Sample.Profile.Class
		c, ok := byClass[class]
		if !ok {
			c = &RecoveryClassRow{Class: class}
			byClass[class] = c
		}
		c.Total++
		lost := classLost[class]
		lost[0] = append(lost[0], base.FilesLost)
		lost[1] = append(lost[1], rec.FilesLost)
		classLost[class] = lost
		t.Total++
	}
	sort.Strings(order)
	for _, fam := range order {
		a := byFamily[fam]
		a.row.MedianLostBefore = median(a.before)
		a.row.MedianLostAfter = median(a.after)
		a.row.MedianRestored = median(a.restored)
		a.row.DetectedAll = a.detected == a.row.Total
		t.Rows = append(t.Rows, a.row)
	}
	for _, class := range []ransomware.Class{ransomware.ClassA, ransomware.ClassB, ransomware.ClassC} {
		c, ok := byClass[class]
		if !ok {
			continue
		}
		lost := classLost[class]
		c.MedianLostBefore = median(lost[0])
		c.MedianLostAfter = median(lost[1])
		t.Classes = append(t.Classes, *c)
	}
	t.OverallMedianLostBefore = median(allBefore)
	t.OverallMedianLostAfter = median(allAfter)
	if t.Total > 0 {
		t.DetectionRate /= float64(t.Total)
	}
	return t, nil
}

// RunRecoveryExperiment runs the roster twice against corpora built from the
// same spec — once detection-only (Table I's condition) and once with the
// versioned backend and the recovery coordinator armed — and pairs the
// outcomes. opts apply to both runs, so the comparison isolates recovery.
func RunRecoveryExperiment(spec corpus.Spec, roster []ransomware.Sample, opts ...cryptodrop.Option) (RecoveryTable, error) {
	base, err := NewRunner(spec, opts...)
	if err != nil {
		return RecoveryTable{}, err
	}
	baseline, err := base.RunRoster(roster, nil)
	if err != nil {
		return RecoveryTable{}, err
	}
	armed, err := NewRunner(spec, opts...)
	if err != nil {
		return RecoveryTable{}, err
	}
	armed.EnableRecovery()
	recovered, err := armed.RunRoster(roster, nil)
	if err != nil {
		return RecoveryTable{}, err
	}
	return BuildRecoveryTable(baseline, recovered)
}

// Render writes the before/after table.
func (t RecoveryTable) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Family\tTotal\tMedian FL (detect-only)\tMedian FL (after recovery)\tMedian restored\tDetected")
	for _, r := range t.Rows {
		det := "all"
		if !r.DetectedAll {
			det = "PARTIAL"
		}
		if r.Failures > 0 {
			det += fmt.Sprintf(" (%d rollback failures)", r.Failures)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.1f\t%s\n",
			r.Family, r.Total, r.MedianLostBefore, r.MedianLostAfter, r.MedianRestored, det)
	}
	for _, c := range t.Classes {
		fmt.Fprintf(tw, "Class %s\t%d\t%.1f\t%.1f\t\t\n", c.Class, c.Total, c.MedianLostBefore, c.MedianLostAfter)
	}
	fmt.Fprintf(tw, "Overall\t%d\t%.1f\t%.1f\t\t%.0f%%\n",
		t.Total, t.OverallMedianLostBefore, t.OverallMedianLostAfter, 100*t.DetectionRate)
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Rollback: %d files restored in place, %d recreated, %d failures\n",
		t.FilesRestored, t.FilesRecreated, t.Failures)
	return err
}
