package experiments

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"cryptodrop/internal/benign"
	"cryptodrop/internal/core"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/host"
	"cryptodrop/internal/ransomware"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/trace"
	"cryptodrop/internal/vfs"
)

// TestRecoveryConformance64Sessions is the fleet-scale crash-recovery proof:
// 64 concurrent durable sessions ingest the first ~60% of their recorded op
// streams, the host is abandoned mid-flight with no shutdown of any kind
// (the crash), a second host restores every session from its checkpoint and
// WAL tail, and the remaining 40% is ingested there. Every recovered
// session's scoreboard, detection list and flight-recorder trace must be
// bit-identical to a standalone engine that replayed the same stream with
// no crash — including sessions whose detection latched before the crash.
// Run under -race in CI.
func TestRecoveryConformance64Sessions(t *testing.T) {
	if testing.Short() {
		t.Skip("64 durable sessions over captured traces")
	}
	spec := corpus.Spec{Seed: 2016, Files: 120, Dirs: 15, SizeScale: 0.2}
	runner, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Same trace pool as the host conformance suite: one ransomware sample
	// per behavioural class plus two benign applications, cycled over the
	// sessions. The standalone expectations are computed crash-free.
	var pool []*hostWorkload
	classes := map[ransomware.Class]ransomware.Sample{}
	for _, s := range ransomware.Roster(spec.Seed) {
		if _, ok := classes[s.Profile.Class]; !ok {
			classes[s.Profile.Class] = s
		}
	}
	for _, sample := range classes {
		sample := sample
		records := captureTrace(t, runner, sample.ID, func(fs *vfs.FS, pid int, root string) error {
			_, err := sample.Run(fs, pid, root, func() bool { return false })
			return err
		})
		pool = append(pool, &hostWorkload{name: "ransomware/" + sample.ID, records: records})
	}
	for _, name := range []string{"Microsoft Word", "ImageMagick"} {
		w, ok := benign.ByName(name)
		if !ok {
			t.Fatalf("no benign workload %q", name)
		}
		records := captureTrace(t, runner, w.Name, w.Run)
		pool = append(pool, &hostWorkload{name: "benign/" + w.Name, records: records})
	}
	for _, w := range pool {
		expectStandalone(t, spec, w)
	}

	const sessions = 64
	const batchSize = 16
	ckptDir := t.TempDir()
	ctx := context.Background()

	// Build each session's self-contained op stream once; both phases slice
	// it. Ops carry every needed content snapshot, so no live ContentSource
	// has to survive the crash.
	assigned := make([]*hostWorkload, sessions)
	allOps := make([][]host.Op, sessions)
	cuts := make([]int, sessions)
	engineCfg := make([]func(fr *telemetry.FlightRecorder) core.Config, sessions)
	for i := 0; i < sessions; i++ {
		w := pool[i%len(pool)]
		assigned[i] = w

		seedFS := vfs.New()
		m, err := corpus.Build(seedFS, spec)
		if err != nil {
			t.Fatal(err)
		}
		replayer := trace.NewEventReplayer()
		if err := replayer.SeedFromFS(seedFS); err != nil {
			t.Fatal(err)
		}
		ops, res := replayer.BuildHostOps(w.records)
		if res.Applied != w.applied {
			t.Fatalf("session %d: BuildHostOps applied %d records, standalone replay applied %d",
				i, res.Applied, w.applied)
		}
		allOps[i] = ops
		cuts[i] = len(ops) * 3 / 5
		root := m.Root
		engineCfg[i] = func(fr *telemetry.FlightRecorder) core.Config {
			cfg := core.DefaultConfig(root)
			cfg.FlightRecorder = fr
			return cfg
		}
	}

	submit := func(sess *host.Session, ops []host.Op, wg *sync.WaitGroup) {
		defer wg.Done()
		for len(ops) > 0 {
			n := batchSize
			if n > len(ops) {
				n = len(ops)
			}
			if err := sess.Submit(ctx, ops[:n]...); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			ops = ops[n:]
		}
		if err := sess.Flush(ctx); err != nil {
			t.Errorf("flush: %v", err)
		}
		if err := sess.DurabilityErr(); err != nil {
			t.Errorf("durability: %v", err)
		}
	}

	// Phase 1: durable ingest of each session's prefix, then crash — the
	// host is simply abandoned (its workers leak harmlessly; a real crash
	// would not run them either).
	h1 := host.New(host.Config{
		QueueDepth: 4, Telemetry: telemetry.NewRegistry(),
		CheckpointDir: ckptDir, CheckpointEvery: 50,
	})
	var wg1 sync.WaitGroup
	for i := 0; i < sessions; i++ {
		fr := telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
		sess, err := h1.Open(fmt.Sprintf("s%02d", i), host.SessionConfig{
			Engine:       engineCfg[i](fr),
			QueueDepth:   4,
			DegradeAfter: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg1.Add(1)
		go submit(sess, allOps[i][:cuts[i]], &wg1)
	}
	wg1.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Phase 2: restore every session into a fresh host — fresh engines,
	// fresh flight recorders (the snapshot carries the flight state) — and
	// finish the streams.
	h2 := host.New(host.Config{
		QueueDepth: 4, Telemetry: telemetry.NewRegistry(),
		CheckpointDir: ckptDir, CheckpointEvery: 50, Restore: true,
	})
	flights := make([]*telemetry.FlightRecorder, sessions)
	var wg2 sync.WaitGroup
	for i := 0; i < sessions; i++ {
		flights[i] = telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
		sess, err := h2.Open(fmt.Sprintf("s%02d", i), host.SessionConfig{
			Engine:       engineCfg[i](flights[i]),
			QueueDepth:   4,
			DegradeAfter: -1,
		})
		if err != nil {
			t.Fatalf("restore session %d: %v", i, err)
		}
		if got := sess.Ingested(); got != int64(cuts[i]) {
			t.Fatalf("session %d restored at op %d, want %d", i, got, cuts[i])
		}
		wg2.Add(1)
		go submit(sess, allOps[i][cuts[i]:], &wg2)
	}
	wg2.Wait()
	finals, err := h2.Shutdown(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(finals) != sessions {
		t.Fatalf("shutdown returned %d reports, want %d", len(finals), sessions)
	}

	byID := make(map[string]host.SessionReport, len(finals))
	for _, r := range finals {
		byID[r.ID] = r
	}
	for i := 0; i < sessions; i++ {
		w := assigned[i]
		got, ok := byID[fmt.Sprintf("s%02d", i)]
		if !ok {
			t.Fatalf("no final report for session %d", i)
		}
		if got.Ingested != int64(len(allOps[i])) {
			t.Fatalf("session %d (%s): ingested %d ops across both lives, want %d",
				i, w.name, got.Ingested, len(allOps[i]))
		}
		if !reflect.DeepEqual(w.reports, got.Reports) {
			t.Fatalf("session %d (%s): recovered scoreboards diverge:\n standalone: %+v\n recovered:  %+v",
				i, w.name, w.reports, got.Reports)
		}
		if !reflect.DeepEqual(w.dets, got.Detections) {
			t.Fatalf("session %d (%s): recovered detections diverge:\n standalone: %+v\n recovered:  %+v",
				i, w.name, w.dets, got.Detections)
		}
		for pid, want := range w.flights {
			if gotTrace := flights[i].Trace(pid); !reflect.DeepEqual(want, gotTrace) {
				t.Fatalf("session %d (%s) pid %d: recovered flight traces diverge:\n standalone: %+v\n recovered:  %+v",
					i, w.name, pid, want, gotTrace)
			}
		}
	}
}
