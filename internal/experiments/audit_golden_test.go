package experiments

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cryptodrop"
	"cryptodrop/internal/audit"
	"cryptodrop/internal/ransomware"
	"cryptodrop/internal/telemetry"
)

// TestAuditBundleGoldens runs one scripted sample per ransomware class with
// an audit sink and a flight recorder attached and pins the emitted bundle,
// byte for byte, against a checked-in JSONL golden. The bundles are fully
// deterministic — flight-recorder timestamps stay off, so no wall-clock
// field is populated — which makes the golden a schema lock: any change to
// bundle content or encoding shows up as a diff here first.
//
// Regenerate with: UPDATE_AUDIT_GOLDEN=1 go test ./internal/experiments -run TestAuditBundleGoldens
func TestAuditBundleGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full per-class sample runs")
	}
	for _, class := range []ransomware.Class{ransomware.ClassA, ransomware.ClassB, ransomware.ClassC} {
		class := class
		t.Run("Class"+class.String(), func(t *testing.T) {
			var sample ransomware.Sample
			found := false
			for _, s := range ransomware.Roster(1) {
				if s.Profile.Class == class {
					sample, found = s, true
					break
				}
			}
			if !found {
				t.Fatalf("no class %s sample in roster", class)
			}

			sink := &audit.MemorySink{}
			r, err := NewRunner(testSpec, cryptodrop.WithAuditSink(sink))
			if err != nil {
				t.Fatal(err)
			}
			// A flight recorder (timestamps off) enriches the bundle with the
			// causal firing history while keeping it deterministic.
			r.SetTelemetry(nil, telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity))
			out, err := r.RunSample(sample)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Detected {
				t.Fatalf("%s not detected, no bundle to pin", sample.ID)
			}

			bundles := sink.Bundles()
			if len(bundles) != 1 {
				t.Fatalf("emitted %d bundles for one detection, want 1", len(bundles))
			}
			b := bundles[0]

			// The invariant every bundle carries: per-indicator contributions
			// sum to the detection score exactly.
			sum := 0.0
			for _, c := range b.Contributions {
				sum += c.Points
			}
			if math.Abs(sum-b.Score) > 1e-9 {
				t.Fatalf("contributions sum to %g, detection score is %g", sum, b.Score)
			}
			if math.Abs(b.Score-out.Score) > 1e-9 {
				t.Fatalf("bundle score %g disagrees with outcome score %g", b.Score, out.Score)
			}
			if len(b.Trace.Events) == 0 {
				t.Fatal("bundle has no causal firing history despite an attached recorder")
			}
			if b.TimeToDetectionNs != 0 {
				t.Fatalf("TimeToDetectionNs = %d with timestamps off — golden would be nondeterministic", b.TimeToDetectionNs)
			}

			var buf bytes.Buffer
			jl := audit.NewJSONLSink(&buf)
			jl.Emit(b)
			if jl.Err() != nil {
				t.Fatal(jl.Err())
			}

			goldenPath := filepath.Join("testdata", "audit_class"+class.String()+".golden.jsonl")
			if os.Getenv("UPDATE_AUDIT_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", goldenPath, buf.Len())
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v — run with UPDATE_AUDIT_GOLDEN=1 to generate", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("audit bundle for class %s drifted from golden %s.\ngot:  %s\nwant: %s\nIf the change is intentional, regenerate with UPDATE_AUDIT_GOLDEN=1.",
					class, goldenPath, strings.TrimSpace(buf.String()), strings.TrimSpace(string(want)))
			}
		})
	}
}
