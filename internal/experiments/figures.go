package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"cryptodrop/internal/vfs"
)

// Fig3Point is one point of the Fig. 3 cumulative distribution.
type Fig3Point struct {
	// FilesLost is the x value.
	FilesLost int
	// CumulativePct is the percentage of samples detected with at most
	// FilesLost files lost.
	CumulativePct float64
}

// Fig3 is the cumulative data-loss distribution of §V-B1.
type Fig3 struct {
	// Points are the CDF steps.
	Points []Fig3Point
	// Median is the 50th-percentile files lost.
	Median float64
	// Max is the worst case.
	Max int
}

// BuildFig3 computes the cumulative percentage of samples detected at each
// files-lost value.
func BuildFig3(outcomes []SampleOutcome) Fig3 {
	var lost []int
	for _, o := range outcomes {
		lost = append(lost, o.FilesLost)
	}
	sort.Ints(lost)
	var f Fig3
	f.Median = median(lost)
	if len(lost) == 0 {
		return f
	}
	f.Max = lost[len(lost)-1]
	total := float64(len(lost))
	for i := 0; i < len(lost); i++ {
		// Step at each distinct value: take the last index of the value.
		if i+1 < len(lost) && lost[i+1] == lost[i] {
			continue
		}
		f.Points = append(f.Points, Fig3Point{
			FilesLost:     lost[i],
			CumulativePct: 100 * float64(i+1) / total,
		})
	}
	return f
}

// Render writes the CDF as a table plus an ASCII plot.
func (f Fig3) Render(w io.Writer) error {
	fmt.Fprintf(w, "Cumulative %% of samples detected vs files lost (median %.1f, max %d)\n", f.Median, f.Max)
	for _, p := range f.Points {
		bar := strings.Repeat("#", int(p.CumulativePct/2))
		if _, err := fmt.Fprintf(w, "%4d files | %-50s %5.1f%%\n", p.FilesLost, bar, p.CumulativePct); err != nil {
			return err
		}
	}
	return nil
}

// Fig4Tree is a directory tree annotated with the directories one sample
// touched before detection (§V-C, Fig. 4).
type Fig4Tree struct {
	// Family names the sample.
	Family string
	// Class is the sample's class.
	Class string
	// Root is the documents root.
	Root string
	// Touched marks directories where at least one file was read or
	// written before detection.
	Touched map[string]bool
	// AllDirs lists every directory under Root, sorted.
	AllDirs []string
	// FilesLost is the loss count for the run.
	FilesLost int
}

// BuildFig4Tree annotates the corpus tree with an outcome's touched
// directories.
func BuildFig4Tree(fs *vfs.FS, root string, out SampleOutcome) (Fig4Tree, error) {
	t := Fig4Tree{
		Family:    out.Sample.Profile.Family,
		Class:     out.Sample.Profile.Class.String(),
		Root:      root,
		Touched:   make(map[string]bool, len(out.Report.DirsTouched)),
		FilesLost: out.FilesLost,
	}
	for _, d := range out.Report.DirsTouched {
		t.Touched[d] = true
	}
	t.AllDirs = append(t.AllDirs, root)
	err := fs.Walk(root, func(info vfs.FileInfo) error {
		if info.IsDir {
			t.AllDirs = append(t.AllDirs, info.Path)
		}
		return nil
	})
	sort.Strings(t.AllDirs)
	return t, err
}

// Render draws the tree; touched directories are marked with "●" (the
// filled/red nodes of Fig. 4) and untouched with "○".
func (t Fig4Tree) Render(w io.Writer) error {
	touchedCount := 0
	for _, d := range t.AllDirs {
		if t.Touched[d] {
			touchedCount++
		}
	}
	fmt.Fprintf(w, "%s (Class %s): %d/%d directories touched before detection, %d files lost\n",
		t.Family, t.Class, touchedCount, len(t.AllDirs), t.FilesLost)
	for _, d := range t.AllDirs {
		rel := strings.TrimPrefix(d, t.Root)
		depth := strings.Count(rel, "/")
		mark := "○"
		if t.Touched[d] {
			mark = "●"
		}
		name := rel[strings.LastIndex(rel, "/")+1:]
		if rel == "" {
			name, depth = ".", 0
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", strings.Repeat("  ", depth), mark, name); err != nil {
			return err
		}
	}
	return nil
}

// RenderDOT emits a Graphviz radial tree matching the paper's figure style.
func (t Fig4Tree) RenderDOT(w io.Writer) error {
	fmt.Fprintf(w, "// %s (Class %s)\ngraph fig4 {\n  layout=twopi; ranksep=1.2; node [shape=circle, label=\"\", width=0.12];\n", t.Family, t.Class)
	id := func(p string) string {
		return fmt.Sprintf("%q", strings.TrimPrefix(p, t.Root+"/"))
	}
	for _, d := range t.AllDirs {
		fill := "white"
		if t.Touched[d] {
			fill = "red"
		}
		if d == t.Root {
			fmt.Fprintf(w, "  root [style=filled, fillcolor=%s];\n", fill)
			continue
		}
		fmt.Fprintf(w, "  %s [style=filled, fillcolor=%s];\n", id(d), fill)
		parent := d[:strings.LastIndex(d, "/")]
		pid := id(parent)
		if parent == t.Root {
			pid = "root"
		}
		fmt.Fprintf(w, "  %s -- %s;\n", pid, id(d))
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// Fig5Row is one extension's attack frequency (Fig. 5).
type Fig5Row struct {
	// Ext is the file extension.
	Ext string
	// Pct is the percentage of samples that accessed at least one file
	// of that extension before detection.
	Pct float64
}

// BuildFig5 aggregates first-files-attacked extension frequencies across
// all samples.
func BuildFig5(outcomes []SampleOutcome) []Fig5Row {
	counts := make(map[string]int)
	for _, o := range outcomes {
		seen := make(map[string]bool)
		for _, ext := range o.Report.ExtensionsTouched {
			if !seen[ext] {
				seen[ext] = true
				counts[ext]++
			}
		}
	}
	rows := make([]Fig5Row, 0, len(counts))
	for ext, n := range counts {
		rows = append(rows, Fig5Row{Ext: ext, Pct: 100 * float64(n) / float64(len(outcomes))})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Pct != rows[j].Pct {
			return rows[i].Pct > rows[j].Pct
		}
		return rows[i].Ext < rows[j].Ext
	})
	return rows
}

// RenderFig5 writes the frequency chart.
func RenderFig5(w io.Writer, rows []Fig5Row) error {
	fmt.Fprintln(w, "Aggregate file extensions accessed by samples before detection")
	for _, r := range rows {
		bar := strings.Repeat("#", int(r.Pct/2))
		if _, err := fmt.Fprintf(w, "%-8s | %-50s %5.1f%%\n", "."+r.Ext, bar, r.Pct); err != nil {
			return err
		}
	}
	return nil
}

// Fig6 is the false-positive threshold sweep of §V-F.
type Fig6 struct {
	// Apps are the applications with their final scores, ordered as run.
	Apps []BenignOutcome
	// Thresholds are the swept non-union thresholds.
	Thresholds []float64
	// FalsePositives[i] counts apps whose score reaches Thresholds[i].
	FalsePositives []int
}

// BuildFig6 sweeps detection thresholds over final benign scores. Workloads
// the paper expects to be flagged (7-zip) are shown in the score table but
// excluded from the false-positive sweep, as in the paper's figure.
func BuildFig6(apps []BenignOutcome, thresholds []float64) Fig6 {
	f := Fig6{Apps: apps, Thresholds: thresholds}
	for _, t := range thresholds {
		fp := 0
		for _, a := range apps {
			if !a.Workload.ExpectDetection && a.Score >= t {
				fp++
			}
		}
		f.FalsePositives = append(f.FalsePositives, fp)
	}
	return f
}

// Render writes the per-app scores and the sweep.
func (f Fig6) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Application\tFinal score\tUnion?\tFlagged at 200?")
	for _, a := range f.Apps {
		fmt.Fprintf(tw, "%s\t%.1f\t%v\t%v\n", a.Workload.Name, a.Score, a.Union, a.Score >= 200)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nFalse positives vs non-union detection threshold:")
	for i, t := range f.Thresholds {
		bar := strings.Repeat("#", f.FalsePositives[i]*8)
		if _, err := fmt.Fprintf(w, "threshold %5.0f | %-40s %d\n", t, bar, f.FalsePositives[i]); err != nil {
			return err
		}
	}
	return nil
}
