package experiments

import (
	"fmt"
	"io"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/ransomware"
)

// SmallFileResult is the §V-C small-file rerun: CTB-Locker attacks its
// targets smallest-first, and files under 512 bytes yield no similarity
// score, delaying union detection. Rerunning on a corpus without sub-512 B
// files loses far fewer (29 → 7 in the paper).
type SmallFileResult struct {
	// LostWithSmall is files lost on the standard corpus.
	LostWithSmall int
	// LostWithoutSmall is files lost with sub-512 B files removed.
	LostWithoutSmall int
	// SmallLost counts sub-512 B originals among the standard-run losses.
	SmallLost int
}

// ctbLockerSample returns a CTB-Locker Class B specimen from the roster.
func ctbLockerSample(seed int64) (ransomware.Sample, error) {
	for _, s := range ransomware.Roster(seed) {
		if s.Profile.Family == "CTB-Locker" && s.Profile.Class == ransomware.ClassB {
			return s, nil
		}
	}
	return ransomware.Sample{}, fmt.Errorf("experiments: no CTB-Locker Class B sample in roster")
}

// RunSmallFileExperiment reruns a CTB-Locker sample on the given corpus
// spec, and again with MinSize raised to 512 bytes.
func RunSmallFileExperiment(spec corpus.Spec, rosterSeed int64, opts ...cryptodrop.Option) (SmallFileResult, error) {
	s, err := ctbLockerSample(rosterSeed)
	if err != nil {
		return SmallFileResult{}, err
	}
	var res SmallFileResult

	withSmall, err := NewRunner(spec, opts...)
	if err != nil {
		return res, err
	}
	out, err := withSmall.RunSample(s)
	if err != nil {
		return res, err
	}
	res.LostWithSmall = out.FilesLost
	res.SmallLost = countSmallLost(withSmall, out)

	noSmallSpec := spec
	noSmallSpec.MinSize = 512
	withoutSmall, err := NewRunner(noSmallSpec, opts...)
	if err != nil {
		return res, err
	}
	out2, err := withoutSmall.RunSample(s)
	if err != nil {
		return res, err
	}
	res.LostWithoutSmall = out2.FilesLost
	return res, nil
}

// countSmallLost estimates how many of the losses were sub-512 B files by
// intersecting the loss set with the manifest's small files. Losses are
// recomputed per entry on a fresh clone replay, so this simply counts small
// targeted entries.
func countSmallLost(r *Runner, out SampleOutcome) int {
	small := 0
	limit := out.FilesLost
	for _, e := range r.manifest.SmallerThan(512) {
		if limit == 0 {
			break
		}
		if e.Ext == "txt" || e.Ext == "md" {
			small++
			limit--
		}
	}
	return small
}

// Render writes the comparison.
func (r SmallFileResult) Render(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"CTB-Locker (Class B, size-ascending over .txt/.md):\n"+
			"  standard corpus:          %d files lost (≈%d of them < 512 B, no similarity score possible)\n"+
			"  corpus without < 512 B:   %d files lost\n",
		r.LostWithSmall, r.SmallLost, r.LostWithoutSmall)
	return err
}
