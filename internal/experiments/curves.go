package experiments

import (
	"fmt"
	"io"
	"strings"

	"cryptodrop"
	"cryptodrop/internal/benign"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/ransomware"
)

// ScoreCurve is one process's reputation-score trajectory.
type ScoreCurve struct {
	// Label names the actor.
	Label string
	// Points is the trajectory (operation index → score).
	Points []cryptodrop.ScorePoint
	// Detected reports whether the actor crossed its threshold.
	Detected bool
	// Threshold is the non-union threshold in force.
	Threshold float64
}

// CurvesResult compares ransomware and benign score trajectories over the
// same corpus — the time-dimension view the paper's §V-F discussion
// motivates ("monitoring any time window presents an evasion opportunity…
// research into time window parameterization may lead to another primary
// indicator").
type CurvesResult struct {
	// Curves are the collected trajectories.
	Curves []ScoreCurve
}

// RunScoreCurves collects trajectories for one specimen per given family
// and each named benign workload.
func RunScoreCurves(spec corpus.Spec, rosterSeed int64, families []string, apps []string) (CurvesResult, error) {
	r, err := NewRunner(spec)
	if err != nil {
		return CurvesResult{}, err
	}
	var res CurvesResult
	roster := ransomware.Roster(rosterSeed)
	for _, fam := range families {
		var sample *ransomware.Sample
		for i := range roster {
			if roster[i].Profile.Family == fam {
				sample = &roster[i]
				break
			}
		}
		if sample == nil {
			return res, fmt.Errorf("experiments: no sample of family %q", fam)
		}
		out, err := r.RunSample(*sample)
		if err != nil {
			return res, err
		}
		res.Curves = append(res.Curves, ScoreCurve{
			Label:     fam,
			Points:    out.Report.History,
			Detected:  out.Detected,
			Threshold: 200,
		})
	}
	for _, name := range apps {
		w, ok := benign.ByName(name)
		if !ok {
			return res, fmt.Errorf("experiments: no workload %q", name)
		}
		out, err := r.RunBenign(w)
		if err != nil {
			return res, err
		}
		res.Curves = append(res.Curves, ScoreCurve{
			Label:     name,
			Points:    out.Report.History,
			Detected:  out.Detected,
			Threshold: 200,
		})
	}
	return res, nil
}

// Render draws each trajectory as an ASCII sparkline over operation index.
func (r CurvesResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Reputation-score trajectories (score vs protected-operation index):")
	const cols = 60
	for _, c := range r.Curves {
		if len(c.Points) == 0 {
			fmt.Fprintf(w, "%-18s (no scored operations)\n", c.Label)
			continue
		}
		last := c.Points[len(c.Points)-1]
		maxOp := last.OpIndex
		if maxOp == 0 {
			maxOp = 1
		}
		// Sample the curve into fixed columns.
		line := make([]float64, cols)
		idx := 0
		for col := 0; col < cols; col++ {
			opAt := maxOp * int64(col+1) / cols
			for idx < len(c.Points)-1 && c.Points[idx+1].OpIndex <= opAt {
				idx++
			}
			if c.Points[idx].OpIndex <= opAt {
				line[col] = c.Points[idx].Score
			} else if col > 0 {
				line[col] = line[col-1]
			}
		}
		var sb strings.Builder
		levels := []rune(" .:-=+*#%@")
		for _, v := range line {
			frac := v / (c.Threshold * 1.2)
			if frac > 1 {
				frac = 1
			}
			sb.WriteRune(levels[int(frac*float64(len(levels)-1))])
		}
		marker := " "
		if c.Detected {
			marker = "!"
		}
		fmt.Fprintf(w, "%-18s |%s| final %.1f %s (over %d ops)\n",
			c.Label, sb.String(), last.Score, marker, maxOp)
	}
	fmt.Fprintln(w, "\nRansomware climbs steeply within a few files; benign applications plateau\nfar below the threshold — the separation a time-window indicator would mine.")
	return nil
}
