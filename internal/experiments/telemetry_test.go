package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/telemetry"
)

// TestRosterTelemetrySummaries runs a reduced roster with per-run telemetry
// and checks every detected outcome carries an explainable summary: the
// indicator mix is populated, measurement latency was observed, and the
// flight-recorder trace reproduces the detection score as a prefix sum.
func TestRosterTelemetrySummaries(t *testing.T) {
	r, err := NewRunner(testSpec, cryptodrop.WithMeasureWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	r.EnableTelemetrySummaries()
	roster := reducedRoster(t)[:6]
	outcomes, err := r.RunRoster(roster, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range outcomes {
		if out.Telemetry == nil {
			t.Fatalf("%s: no telemetry summary", out.Sample.ID)
		}
		ts := out.Telemetry
		if len(ts.IndicatorFires) == 0 {
			t.Errorf("%s: empty indicator mix", out.Sample.ID)
		}
		if ts.MeasureCount == 0 {
			t.Errorf("%s: no measurements recorded", out.Sample.ID)
		}
		if ts.MeasureP99 < ts.MeasureP50 {
			t.Errorf("%s: p99 %g < p50 %g", out.Sample.ID, ts.MeasureP99, ts.MeasureP50)
		}
		if !out.Detected {
			continue
		}
		if ts.Detections != 1 {
			t.Errorf("%s: detections counter = %d, want 1", out.Sample.ID, ts.Detections)
		}
		if ts.Trace == nil || len(ts.Trace.Events) == 0 {
			t.Errorf("%s: detected but no flight-recorder trace", out.Sample.ID)
			continue
		}
		// The detection score appears as a prefix sum of the trace.
		cum, explained := 0.0, false
		for _, ev := range ts.Trace.Events {
			cum += ev.Points
			if math.Abs(cum-out.Score) < 1e-9 && math.Abs(ev.ScoreAfter-out.Score) < 1e-9 {
				explained = true
				break
			}
		}
		if !explained && math.Abs(ts.Trace.TotalPoints-out.Score) > 1e-9 {
			t.Errorf("%s: no trace prefix sums to detection score %g (trace total %g)",
				out.Sample.ID, out.Score, ts.Trace.TotalPoints)
		}
	}

	// Per-family aggregation covers every family that produced summaries.
	rows := IndicatorMixByFamily(outcomes)
	if len(rows) == 0 {
		t.Fatal("no indicator-mix rows")
	}
	for _, row := range rows {
		if row.Samples == 0 || len(row.Fires) == 0 {
			t.Errorf("family %s: empty aggregation row: %+v", row.Family, row)
		}
	}

	// The summaries survive the JSON export round trip.
	var buf bytes.Buffer
	if err := WriteOutcomesJSON(&buf, outcomes); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOutcomesJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range back {
		if o.Telemetry == nil {
			t.Fatalf("outcome %d lost telemetry in export", i)
		}
		if o.Telemetry.MeasureCount != outcomes[i].Telemetry.MeasureCount {
			t.Fatalf("outcome %d: measure count changed in round trip", i)
		}
	}
}

// TestSharedRegistryAcrossRoster attaches one shared registry to the runner
// and checks the live exposition a /metrics scrape would see after a roster:
// per-indicator fire counters, measurement histograms and pool gauges.
func TestSharedRegistryAcrossRoster(t *testing.T) {
	reg := telemetry.NewRegistry()
	spec := corpus.Spec{Seed: 30, Files: 300, Dirs: 40, SizeScale: 0.25}
	r, err := NewRunner(spec, cryptodrop.WithMeasureWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	r.SetTelemetry(reg, nil)
	roster := reducedRoster(t)[:4]
	outcomes, err := r.RunRoster(roster, nil)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for _, o := range outcomes {
		if o.Detected {
			detected++
		}
	}
	if got := reg.Counter("engine_detections_total").Value(); got != int64(detected) {
		t.Errorf("shared detections counter = %d, roster detected %d", got, detected)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`engine_indicator_fires_total{indicator="similarity"}`,
		`engine_indicator_fires_total{indicator="file-type-change"}`,
		"engine_measure_seconds_bucket",
		"engine_measure_seconds_count",
		"engine_measure_pool_capacity 2",
		"engine_measure_pool_inflight",
		`vfs_ops_total{kind=`,
		`filter_pre_seconds_bucket{filter="cryptodrop"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics exposition missing %q", want)
		}
	}

	// The expvar-style view is valid JSON carrying the same counters.
	buf.Reset()
	if err := reg.WriteVars(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("vars not JSON: %v", err)
	}
}
