package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"cryptodrop/internal/ransomware"
)

// median returns the median of xs (mean of middle pair for even counts).
func median(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]int, len(xs))
	copy(s, xs)
	sort.Ints(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return float64(s[mid])
	}
	return float64(s[mid-1]+s[mid]) / 2
}

// Table1Row is one family row of Table I.
type Table1Row struct {
	// Family is the family name.
	Family string
	// ClassA/B/C are per-class sample counts.
	ClassA, ClassB, ClassC int
	// Total is the family sample count.
	Total int
	// PctOfSamples is the family share of all samples.
	PctOfSamples float64
	// MedianFilesLost is the family's median files lost before detection.
	MedianFilesLost float64
	// DetectedAll reports whether every family sample was detected.
	DetectedAll bool
}

// Table1 summarises a roster run the way Table I does.
type Table1 struct {
	// Rows are per-family results in Table I order.
	Rows []Table1Row
	// TotalA/B/C/Total are the class totals.
	TotalA, TotalB, TotalC, Total int
	// OverallMedianFilesLost is the median across all samples.
	OverallMedianFilesLost float64
	// DetectionRate is the fraction of samples detected.
	DetectionRate float64
	// MaxFilesLost is the worst case across detected samples.
	MaxFilesLost int
}

// BuildTable1 aggregates sample outcomes into Table I.
func BuildTable1(outcomes []SampleOutcome) Table1 {
	type agg struct {
		row  Table1Row
		lost []int
		det  int
	}
	byFamily := make(map[string]*agg)
	var order []string
	var t Table1
	var allLost []int
	for _, out := range outcomes {
		fam := out.Sample.Profile.Family
		a, ok := byFamily[fam]
		if !ok {
			a = &agg{row: Table1Row{Family: fam}}
			byFamily[fam] = a
			order = append(order, fam)
		}
		switch out.Sample.Profile.Class {
		case ransomware.ClassA:
			a.row.ClassA++
			t.TotalA++
		case ransomware.ClassB:
			a.row.ClassB++
			t.TotalB++
		case ransomware.ClassC:
			a.row.ClassC++
			t.TotalC++
		}
		a.row.Total++
		a.lost = append(a.lost, out.FilesLost)
		allLost = append(allLost, out.FilesLost)
		if out.Detected {
			a.det++
			t.DetectionRate++
		}
		if out.FilesLost > t.MaxFilesLost {
			t.MaxFilesLost = out.FilesLost
		}
		t.Total++
	}
	sort.Strings(order)
	for _, fam := range order {
		a := byFamily[fam]
		a.row.MedianFilesLost = median(a.lost)
		a.row.PctOfSamples = 100 * float64(a.row.Total) / float64(t.Total)
		a.row.DetectedAll = a.det == a.row.Total
		t.Rows = append(t.Rows, a.row)
	}
	t.OverallMedianFilesLost = median(allLost)
	if t.Total > 0 {
		t.DetectionRate /= float64(t.Total)
	}
	return t
}

// Render writes the table in the paper's layout.
func (t Table1) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Family\t#Class A\t#Class B\t#Class C\tTotal\tMedian FL\tDetected")
	for _, r := range t.Rows {
		det := "all"
		if !r.DetectedAll {
			det = "PARTIAL"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d (%.2f%%)\t%.1f\t%s\n",
			r.Family, zeroBlank(r.ClassA), zeroBlank(r.ClassB), zeroBlank(r.ClassC),
			r.Total, r.PctOfSamples, r.MedianFilesLost, det)
	}
	fmt.Fprintf(tw, "# Samples\t%d (%.2f%%)\t%d (%.2f%%)\t%d (%.2f%%)\t%d (100%%)\t%.1f\t%.0f%%\n",
		t.TotalA, pct(t.TotalA, t.Total), t.TotalB, pct(t.TotalB, t.Total),
		t.TotalC, pct(t.TotalC, t.Total), t.Total, t.OverallMedianFilesLost, 100*t.DetectionRate)
	return tw.Flush()
}

func zeroBlank(n int) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf("%d", n)
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
