package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/ransomware"
)

// EvasionRow is one evasion strategy's outcome.
type EvasionRow struct {
	// Strategy is the §III-F evasion applied.
	Strategy ransomware.EvasionKind
	// Detected reports whether the evasive sample was still flagged.
	Detected bool
	// Union reports whether union indication still fired.
	Union bool
	// FilesLost is the loss before detection (or total damage when the
	// sample evaded detection entirely).
	FilesLost int
	// FilesDamagedUsefully estimates the files whose content the attack
	// actually rendered unrecoverable (evasions that keep most plaintext
	// intact do not hold data hostage effectively).
	FilesDamagedUsefully int
	// Score is the final reputation score.
	Score float64
}

// EvasionResult is the §III-F indicator-evasion experiment: each strategy
// defeats one indicator, and the table shows what it costs the attacker.
type EvasionResult struct {
	// Rows are per-strategy outcomes.
	Rows []EvasionRow
}

// RunEvasionExperiment runs a baseline Class A specimen and its §III-F
// evasive variants against identical corpora.
func RunEvasionExperiment(spec corpus.Spec, rosterSeed int64) (EvasionResult, error) {
	var base ransomware.Sample
	for _, s := range ransomware.Roster(rosterSeed) {
		if s.Profile.Family == "Filecoder" && s.Profile.Class == ransomware.ClassA {
			base = s
			break
		}
	}
	if base.ID == "" {
		return EvasionResult{}, fmt.Errorf("experiments: no Filecoder Class A sample")
	}
	r, err := NewRunner(spec)
	if err != nil {
		return EvasionResult{}, err
	}
	var res EvasionResult
	for _, kind := range ransomware.EvasionKinds() {
		sample := ransomware.EvasiveSample(base, kind)
		out, err := r.RunSample(sample)
		if err != nil {
			return res, fmt.Errorf("experiments: evasion %v: %w", kind, err)
		}
		row := EvasionRow{
			Strategy:  kind,
			Detected:  out.Detected,
			Union:     out.Union,
			FilesLost: out.FilesLost,
			Score:     out.Score,
		}
		// "Useful damage": strategies that keep a plaintext prefix leave
		// ~70% of every file recoverable — they lose files in the hash
		// sense without denying the victim the content.
		switch kind {
		case ransomware.EvadeSimilarity, ransomware.EvadeAll:
			row.FilesDamagedUsefully = 0
		default:
			row.FilesDamagedUsefully = out.FilesLost
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the evasion comparison.
func (r EvasionResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Evasion strategy\tDetected\tUnion\tFiles lost\tHostage-quality damage\tScore")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%v\t%v\t%v\t%d\t%d\t%.1f\n",
			row.Strategy, row.Detected, row.Union, row.FilesLost, row.FilesDamagedUsefully, row.Score)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "\nEvading one indicator skews the others (§III-F); evading all three\nrequires leaving the data mostly intact — no longer a ransom attack.")
	return err
}
