package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// OutcomeJSON is the machine-readable export of one sample outcome, for
// downstream plotting and analysis.
type OutcomeJSON struct {
	// ID is the specimen identifier.
	ID string `json:"id"`
	// Family and Class identify the Table I row.
	Family string `json:"family"`
	Class  string `json:"class"`
	// Traversal is the attack order.
	Traversal string `json:"traversal"`
	// Detected and Union report the engine verdicts.
	Detected bool `json:"detected"`
	Union    bool `json:"union"`
	// FilesLost is the hash-verified loss count.
	FilesLost int `json:"filesLost"`
	// Score is the final reputation score.
	Score float64 `json:"score"`
	// Indicators are per-indicator point totals by name.
	Indicators map[string]float64 `json:"indicators"`
	// FilesAttacked and NotesDropped come from the sample's own
	// accounting.
	FilesAttacked int `json:"filesAttacked"`
	NotesDropped  int `json:"notesDropped"`
	// Telemetry is the run's metrics summary (present only when the runner
	// collected per-run telemetry).
	Telemetry *TelemetrySummary `json:"telemetry,omitempty"`
}

// toJSON converts one outcome.
func toJSON(o SampleOutcome) OutcomeJSON {
	out := OutcomeJSON{
		ID:            o.Sample.ID,
		Family:        o.Sample.Profile.Family,
		Class:         o.Sample.Profile.Class.String(),
		Traversal:     o.Sample.Profile.Traversal.String(),
		Detected:      o.Detected,
		Union:         o.Union,
		FilesLost:     o.FilesLost,
		Score:         o.Score,
		Indicators:    make(map[string]float64, len(o.Report.IndicatorPoints)),
		FilesAttacked: o.Run.FilesAttacked,
		NotesDropped:  o.Run.NotesDropped,
	}
	for ind, pts := range o.Report.IndicatorPoints {
		out.Indicators[ind.String()] = pts
	}
	out.Telemetry = o.Telemetry
	return out
}

// WriteOutcomesJSON writes the outcomes as a pretty-printed JSON array.
func WriteOutcomesJSON(w io.Writer, outcomes []SampleOutcome) error {
	export := make([]OutcomeJSON, len(outcomes))
	for i, o := range outcomes {
		export[i] = toJSON(o)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(export); err != nil {
		return fmt.Errorf("experiments: encode outcomes: %w", err)
	}
	return nil
}

// ReadOutcomesJSON parses an export produced by WriteOutcomesJSON.
func ReadOutcomesJSON(r io.Reader) ([]OutcomeJSON, error) {
	var out []OutcomeJSON
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("experiments: decode outcomes: %w", err)
	}
	return out, nil
}
