package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"cryptodrop/internal/core"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/ransomware"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/trace"
	"cryptodrop/internal/vfs"
)

// TestCrossBackendConformance pins the backend-neutrality of the detection
// core: the same attack scored (a) live through the VFS adapter in the
// filter chain and (b) offline by feeding the recorded Event stream straight
// into a fresh engine must produce identical scoreboards and identical
// flight-recorder traces — every indicator firing at the same operation
// index with the same points, down to the union bonus and detection moment.
// One sample per behavioural class runs, so in-place rewrites (A), move-out
// transformations (B) and encrypted copies with deletion (C) all cross the
// adapter boundary.
func TestCrossBackendConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full capture+replay per class")
	}
	spec := corpus.Spec{Seed: 2016, Files: 200, Dirs: 20, SizeScale: 0.25}
	classes := map[ransomware.Class]ransomware.Sample{}
	for _, s := range ransomware.Roster(spec.Seed) {
		if _, ok := classes[s.Profile.Class]; !ok {
			classes[s.Profile.Class] = s
		}
	}
	for class, sample := range classes {
		sample := sample
		t.Run(class.String(), func(t *testing.T) {
			// (a) Live: VFS adapter in the filter chain, with a trace
			// recorder above it and a flight recorder inside the engine.
			runner, err := NewRunner(spec)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			rec := trace.NewRecorder(&buf)
			runner.SetTraceRecorder(rec)
			frLive := telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
			runner.SetTelemetry(nil, frLive)
			out, err := runner.RunSample(sample)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Detected {
				t.Fatalf("sample %s not detected live", sample.ID)
			}
			if err := rec.Flush(); err != nil {
				t.Fatal(err)
			}
			records, err := trace.Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(records) == 0 {
				t.Fatal("empty trace")
			}

			// (b) Replay: the recorded Event stream into a fresh engine,
			// content served from an identically rebuilt corpus store.
			seedFS := vfs.New()
			m, err := corpus.Build(seedFS, spec)
			if err != nil {
				t.Fatal(err)
			}
			replayer := trace.NewEventReplayer()
			if err := replayer.SeedFromFS(seedFS); err != nil {
				t.Fatal(err)
			}
			frReplay := telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
			cfg := core.DefaultConfig(m.Root)
			cfg.FlightRecorder = frReplay
			eng := core.New(cfg, replayer)
			res, err := replayer.Replay(eng, records)
			if err != nil {
				t.Fatal(err)
			}
			if res.Skipped != 0 {
				t.Fatalf("complete trace over a seeded corpus skipped %d records", res.Skipped)
			}

			// Scoreboards must match field for field: score, union,
			// indicator totals, entropy means, deletes, transform counts,
			// the full score trajectory, extensions and directories.
			pid := out.Report.PID
			replayRep, ok := eng.Report(pid)
			if !ok {
				t.Fatalf("replay has no report for pid %d", pid)
			}
			if !reflect.DeepEqual(out.Report, replayRep) {
				t.Fatalf("scoreboards diverge:\n live:   %+v\n replay: %+v", out.Report, replayRep)
			}
			if reps := eng.Reports(); len(reps) != 1 {
				t.Fatalf("replay scored %d processes, live scored 1", len(reps))
			}

			// The replay must detect, exactly once, the same process.
			dets := eng.Detections()
			if len(dets) != 1 || dets[0].PID != pid {
				t.Fatalf("replay detections = %+v, want one for pid %d", dets, pid)
			}

			// Flight-recorder traces are the strictest check: the ordered
			// sequence of indicator firings with running scores and
			// operation indices must be identical event for event.
			liveTrace, replayTrace := frLive.Trace(pid), frReplay.Trace(pid)
			if len(liveTrace.Events) == 0 {
				t.Fatal("live flight trace is empty")
			}
			if !reflect.DeepEqual(liveTrace, replayTrace) {
				t.Fatalf("flight traces diverge:\n live:   %+v\n replay: %+v", liveTrace, replayTrace)
			}
		})
	}
}
