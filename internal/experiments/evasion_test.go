package experiments

import (
	"bytes"
	"strings"
	"testing"

	"cryptodrop/internal/ransomware"
)

func TestEvasionExperiment(t *testing.T) {
	res, err := RunEvasionExperiment(testSpec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(ransomware.EvasionKinds()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byKind := map[ransomware.EvasionKind]EvasionRow{}
	for _, row := range res.Rows {
		byKind[row.Strategy] = row
		t.Logf("%-22v detected=%v union=%v lost=%d score=%.1f", row.Strategy, row.Detected, row.Union, row.FilesLost, row.Score)
	}
	if !byKind[ransomware.EvadeNone].Detected {
		t.Fatal("baseline not detected")
	}
	// Single-indicator evasions must still be caught (the union covers
	// complementary aspects, §III-F).
	for _, k := range []ransomware.EvasionKind{ransomware.EvadeEntropy, ransomware.EvadeTypeChange, ransomware.EvadeSimilarity} {
		if !byKind[k].Detected {
			t.Errorf("%v evaded detection entirely", k)
		}
	}
	// The entropy evasion defeats union (one primary missing) but not
	// detection.
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Evasion strategy") {
		t.Fatal("render malformed")
	}
}
