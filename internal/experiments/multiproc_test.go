package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestMultiProcessScoreDilution(t *testing.T) {
	res, err := RunMultiProcessExperiment(testSpec, 1, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	single, spread := res.Rows[0], res.Rows[1]
	if !single.PerProcessDetected || !single.FamilyDetected {
		t.Fatalf("single-process attack not detected: %+v", single)
	}
	// Spreading over 8 workers must hurt per-process scoring (more files
	// lost, possibly total evasion)...
	if spread.PerProcessLost <= single.PerProcessLost {
		t.Fatalf("dilution had no effect: %d vs %d lost", spread.PerProcessLost, single.PerProcessLost)
	}
	// ...while family scoring holds the line.
	if !spread.FamilyDetected {
		t.Fatalf("family scoring failed against 8 workers: %+v", spread)
	}
	if spread.FamilyLost > single.FamilyLost*3+10 {
		t.Fatalf("family scoring lost too much ground: %d vs %d", spread.FamilyLost, single.FamilyLost)
	}
	t.Logf("workers=1: per-proc %d lost, family %d lost", single.PerProcessLost, single.FamilyLost)
	t.Logf("workers=8: per-proc %d lost (detected=%v), family %d lost (detected=%v)",
		spread.PerProcessLost, spread.PerProcessDetected, spread.FamilyLost, spread.FamilyDetected)

	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Workers") {
		t.Fatal("render malformed")
	}
}
