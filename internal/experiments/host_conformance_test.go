package experiments

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"cryptodrop"
	"cryptodrop/internal/benign"
	"cryptodrop/internal/core"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/host"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/ransomware"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/trace"
	"cryptodrop/internal/vfs"
)

// hostWorkload is one recorded op stream plus its standalone-engine
// expectation: scoreboards, detections and per-PID flight traces computed
// by EventReplayer.Replay on a fresh engine.
type hostWorkload struct {
	name    string
	records []trace.Record
	reports []core.ProcessReport
	dets    []core.Detection
	flights map[int]telemetry.Trace
	applied int
}

// captureTrace runs fn against a monitored corpus clone with a trace
// recorder attached and returns the recorded op stream.
func captureTrace(t *testing.T, runner *Runner, name string, fn func(fs *vfs.FS, pid int, root string) error) []trace.Record {
	t.Helper()
	fs := runner.CloneFS()
	procs := proc.NewTable()
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	mon, err := cryptodrop.NewMonitor(fs, procs,
		cryptodrop.WithRoot(runner.Manifest().Root), cryptodrop.WithoutEnforcement())
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Chain().Attach(500000, rec); err != nil {
		t.Fatal(err)
	}
	pid := procs.Spawn(name)
	if err := fn(fs, pid, runner.Manifest().Root); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	records, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatalf("%s: empty trace", name)
	}
	return records
}

// expectStandalone replays the records into a fresh standalone engine and
// captures the bit-exact expectation.
func expectStandalone(t *testing.T, spec corpus.Spec, w *hostWorkload) {
	t.Helper()
	seedFS := vfs.New()
	m, err := corpus.Build(seedFS, spec)
	if err != nil {
		t.Fatal(err)
	}
	replayer := trace.NewEventReplayer()
	if err := replayer.SeedFromFS(seedFS); err != nil {
		t.Fatal(err)
	}
	fr := telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
	cfg := core.DefaultConfig(m.Root)
	cfg.FlightRecorder = fr
	eng := core.New(cfg, replayer)
	res, err := replayer.Replay(eng, w.records)
	if err != nil {
		t.Fatal(err)
	}
	w.applied = res.Applied
	w.reports = eng.Reports()
	w.dets = eng.Detections()
	w.flights = make(map[int]telemetry.Trace, len(w.reports))
	for _, rep := range w.reports {
		w.flights[rep.PID] = fr.Trace(rep.PID)
	}
}

// TestHostConformance64Sessions drives 64 concurrent host sessions with a
// mixed benign/ransomware roster of recorded op streams and proves every
// session's scoreboard, detection list and flight trace is bit-identical to
// a standalone engine replaying the same stream — queued batched ingest
// with backpressure changes nothing about the verdicts. Degradation is
// disabled: it is a deliberate scoring-mode switch, covered by the overload
// tests in internal/host. Run under -race in CI.
func TestHostConformance64Sessions(t *testing.T) {
	hostConformance64(t, nil)
}

// TestHostConformance64SessionsMemoized repeats the 64-session conformance
// run with a single host-wide measurement memo cache shared by every
// session. The standalone expectations are computed WITHOUT a cache, so
// DeepEqual across scoreboards, detections and flight traces proves
// memoized and unmemoized measurement produce bit-identical verdicts even
// when 64 concurrent engines resolve each other's measurements. Run under
// -race in CI.
func TestHostConformance64SessionsMemoized(t *testing.T) {
	cache := cryptodrop.NewMeasureCache(256 << 20)
	hostConformance64(t, cache)
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("64 sessions over cycled identical traces hit the shared cache 0 times: %+v", st)
	}
	t.Logf("shared cache: %d hits, %d misses, %d evictions, %d entries, %d bytes",
		st.Hits, st.Misses, st.Evictions, st.Entries, st.Bytes)
}

func hostConformance64(t *testing.T, cache *cryptodrop.MeasureCache) {
	if testing.Short() {
		t.Skip("64 sessions over captured traces")
	}
	spec := corpus.Spec{Seed: 2016, Files: 120, Dirs: 15, SizeScale: 0.2}
	runner, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}

	// The trace pool: one ransomware sample per behavioural class plus two
	// benign applications, cycled across the 64 sessions.
	var pool []*hostWorkload
	classes := map[ransomware.Class]ransomware.Sample{}
	for _, s := range ransomware.Roster(spec.Seed) {
		if _, ok := classes[s.Profile.Class]; !ok {
			classes[s.Profile.Class] = s
		}
	}
	for _, sample := range classes {
		sample := sample
		records := captureTrace(t, runner, sample.ID, func(fs *vfs.FS, pid int, root string) error {
			_, err := sample.Run(fs, pid, root, func() bool { return false })
			return err
		})
		pool = append(pool, &hostWorkload{name: "ransomware/" + sample.ID, records: records})
	}
	for _, name := range []string{"Microsoft Word", "ImageMagick"} {
		w, ok := benign.ByName(name)
		if !ok {
			t.Fatalf("no benign workload %q", name)
		}
		records := captureTrace(t, runner, w.Name, w.Run)
		pool = append(pool, &hostWorkload{name: "benign/" + w.Name, records: records})
	}
	for _, w := range pool {
		expectStandalone(t, spec, w)
	}

	// 64 sessions, shallow queues (so Submit really blocks on backpressure),
	// degradation off, every engine with its own flight recorder.
	const sessions = 64
	const batchSize = 16
	h := host.New(host.Config{QueueDepth: 4, Telemetry: telemetry.NewRegistry(), MeasureCache: cache})
	ctx := context.Background()
	flights := make([]*telemetry.FlightRecorder, sessions)
	assigned := make([]*hostWorkload, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		w := pool[i%len(pool)]
		assigned[i] = w

		seedFS := vfs.New()
		m, err := corpus.Build(seedFS, spec)
		if err != nil {
			t.Fatal(err)
		}
		replayer := trace.NewEventReplayer()
		if err := replayer.SeedFromFS(seedFS); err != nil {
			t.Fatal(err)
		}
		ops, res := replayer.BuildHostOps(w.records)
		if res.Applied != w.applied {
			t.Fatalf("session %d: BuildHostOps applied %d records, standalone replay applied %d",
				i, res.Applied, w.applied)
		}

		flights[i] = telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
		cfg := core.DefaultConfig(m.Root)
		cfg.FlightRecorder = flights[i]
		sess, err := h.Open(fmt.Sprintf("s%02d", i), host.SessionConfig{
			Engine:       cfg,
			QueueDepth:   4,
			DegradeAfter: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(sess *host.Session, ops []host.Op) {
			defer wg.Done()
			for len(ops) > 0 {
				n := batchSize
				if n > len(ops) {
					n = len(ops)
				}
				if err := sess.Submit(ctx, ops[:n]...); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ops = ops[n:]
			}
		}(sess, ops)
	}
	wg.Wait()
	finals, err := h.Shutdown(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(finals) != sessions {
		t.Fatalf("shutdown returned %d reports, want %d", len(finals), sessions)
	}

	byID := make(map[string]host.SessionReport, len(finals))
	for _, r := range finals {
		byID[r.ID] = r
	}
	for i := 0; i < sessions; i++ {
		w := assigned[i]
		got, ok := byID[fmt.Sprintf("s%02d", i)]
		if !ok {
			t.Fatalf("no final report for session %d", i)
		}
		if got.Degraded || got.ShedBytes != 0 {
			t.Fatalf("session %d (%s) degraded under disabled degradation", i, w.name)
		}
		if !reflect.DeepEqual(w.reports, got.Reports) {
			t.Fatalf("session %d (%s): scoreboards diverge:\n standalone: %+v\n host:       %+v",
				i, w.name, w.reports, got.Reports)
		}
		if !reflect.DeepEqual(w.dets, got.Detections) {
			t.Fatalf("session %d (%s): detections diverge:\n standalone: %+v\n host:       %+v",
				i, w.name, w.dets, got.Detections)
		}
		for pid, want := range w.flights {
			if gotTrace := flights[i].Trace(pid); !reflect.DeepEqual(want, gotTrace) {
				t.Fatalf("session %d (%s) pid %d: flight traces diverge:\n standalone: %+v\n host:       %+v",
					i, w.name, pid, want, gotTrace)
			}
		}
	}
}
