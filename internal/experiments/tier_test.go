package experiments

import (
	"testing"

	"cryptodrop"
)

// TestReducedRosterLadderEnabled reruns the reduced Table I roster with the
// two-tier measurement ladder and a shared memo cache enabled — the bulk
// fleet configuration — and quantifies the drift against the full-tier
// baseline. Every sample must still be detected: the cheap tier defers full
// measurement, it does not remove any indicator permanently, and the
// payload-level entropy-delta award escalates a process on its first
// firing. Files lost may drift upward (escalation costs a few files of
// latency on header-preserving writers); the drift is bounded here and the
// measured medians are recorded in EXPERIMENTS.md.
func TestReducedRosterLadderEnabled(t *testing.T) {
	if testing.Short() {
		t.Skip("two full reduced-roster runs")
	}
	roster := reducedRoster(t)

	base, err := NewRunner(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	baseOut, err := base.RunRoster(roster, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseTbl := BuildTable1(baseOut)

	cache := cryptodrop.NewMeasureCache(128 << 20)
	ladder, err := NewRunner(testSpec,
		cryptodrop.WithSampledTier(0),
		cryptodrop.WithMeasureCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	ladderOut, err := ladder.RunRoster(roster, nil)
	if err != nil {
		t.Fatal(err)
	}
	ladderTbl := BuildTable1(ladderOut)

	if ladderTbl.DetectionRate != 1.0 {
		t.Errorf("ladder-enabled detection rate = %.2f, want 1.0", ladderTbl.DetectionRate)
		for _, o := range ladderOut {
			if !o.Detected {
				t.Logf("  missed: %s score=%.1f lost=%d points=%v",
					o.Sample.ID, o.Score, o.FilesLost, o.Report.IndicatorPoints)
			}
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("roster over one corpus never hit the shared cache: %+v", st)
	}
	// The ladder may cost detection latency, never detections. Bound the
	// drift so a regression that silently blinds the cheap tier fails here.
	if ladderTbl.OverallMedianFilesLost > baseTbl.OverallMedianFilesLost+8 {
		t.Errorf("ladder-enabled median files lost %.1f, full-tier %.1f: drift above budget",
			ladderTbl.OverallMedianFilesLost, baseTbl.OverallMedianFilesLost)
	}
	worse := 0
	for i := range baseOut {
		if ladderOut[i].FilesLost > baseOut[i].FilesLost {
			worse++
		}
	}
	t.Logf("full tier:   rate=%.2f medianFL=%.1f maxFL=%d", baseTbl.DetectionRate, baseTbl.OverallMedianFilesLost, baseTbl.MaxFilesLost)
	t.Logf("ladder:      rate=%.2f medianFL=%.1f maxFL=%d (%d/%d samples lost more files)",
		ladderTbl.DetectionRate, ladderTbl.OverallMedianFilesLost, ladderTbl.MaxFilesLost, worse, len(baseOut))
	t.Logf("cache:       %+v", cache.Stats())
}
