package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/vfs"
)

// PerfRow is the measured latency of one operation type with and without
// the monitor attached (§V-H).
type PerfRow struct {
	// Op names the operation.
	Op string
	// Unmonitored is the mean latency without CryptoDrop.
	Unmonitored time.Duration
	// Monitored is the mean latency with CryptoDrop attached.
	Monitored time.Duration
}

// Overhead is the added latency.
func (r PerfRow) Overhead() time.Duration { return r.Monitored - r.Unmonitored }

// PerfResult is the §V-H overhead table.
type PerfResult struct {
	// Rows are per-operation measurements.
	Rows []PerfRow
	// Iterations is the per-operation sample count.
	Iterations int
}

// RunPerf measures per-operation latency against a corpus-loaded filesystem
// with and without the monitor, mirroring the paper's open/read/write/
// close/rename overhead analysis.
func RunPerf(spec corpus.Spec, iterations int) (PerfResult, error) {
	res := PerfResult{Iterations: iterations}
	base := vfs.New()
	m, err := corpus.Build(base, spec)
	if err != nil {
		return res, fmt.Errorf("experiments: perf corpus: %w", err)
	}
	target := m.Entries[len(m.Entries)/2].Path
	payload := corpus.Generate("docx", 99, 32<<10)

	type timings struct{ open, read, write, klose, rename time.Duration }
	measure := func(monitored bool) (timings, error) {
		var tm timings
		fs := base.Clone()
		pid := 1
		if monitored {
			procs := proc.NewTable()
			if _, err := cryptodrop.NewMonitor(fs, procs, cryptodrop.WithRoot(m.Root), cryptodrop.WithoutEnforcement()); err != nil {
				return tm, err
			}
			pid = procs.Spawn("perfapp")
		}
		buf := make([]byte, 64<<10)
		scratch := m.Root + "/perf_scratch.docx"
		if err := fs.WriteFile(pid, scratch, payload); err != nil {
			return tm, err
		}
		for i := 0; i < iterations; i++ {
			t0 := time.Now()
			h, err := fs.Open(pid, target, vfs.ReadOnly)
			if err != nil {
				return tm, err
			}
			tm.open += time.Since(t0)

			t0 = time.Now()
			for {
				n, err := h.Read(buf)
				if err != nil {
					return tm, err
				}
				if n == 0 {
					break
				}
			}
			tm.read += time.Since(t0)

			t0 = time.Now()
			if err := h.Close(); err != nil {
				return tm, err
			}
			tm.klose += time.Since(t0)

			wh, err := fs.Open(pid, scratch, vfs.WriteOnly|vfs.Truncate)
			if err != nil {
				return tm, err
			}
			t0 = time.Now()
			if _, err := wh.Write(payload); err != nil {
				return tm, err
			}
			tm.write += time.Since(t0)
			if err := wh.Close(); err != nil {
				return tm, err
			}

			t0 = time.Now()
			if err := fs.Rename(pid, scratch, scratch+".tmp"); err != nil {
				return tm, err
			}
			tm.rename += time.Since(t0)
			if err := fs.Rename(pid, scratch+".tmp", scratch); err != nil {
				return tm, err
			}
		}
		return tm, nil
	}

	plain, err := measure(false)
	if err != nil {
		return res, fmt.Errorf("experiments: perf unmonitored: %w", err)
	}
	mon, err := measure(true)
	if err != nil {
		return res, fmt.Errorf("experiments: perf monitored: %w", err)
	}
	n := time.Duration(iterations)
	res.Rows = []PerfRow{
		{Op: "open", Unmonitored: plain.open / n, Monitored: mon.open / n},
		{Op: "read", Unmonitored: plain.read / n, Monitored: mon.read / n},
		{Op: "write", Unmonitored: plain.write / n, Monitored: mon.write / n},
		{Op: "close", Unmonitored: plain.klose / n, Monitored: mon.klose / n},
		{Op: "rename", Unmonitored: plain.rename / n, Monitored: mon.rename / n},
	}
	return res, nil
}

// Render writes the overhead table.
func (r PerfResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Operation\tUnmonitored\tMonitored\tOverhead\t(%d iterations)\n", r.Iterations)
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t\n", row.Op, row.Unmonitored, row.Monitored, row.Overhead())
	}
	return tw.Flush()
}
