package experiments

import (
	"sort"
	"strings"

	"cryptodrop/internal/telemetry"
)

// TelemetrySummary condenses one run's telemetry registry into the numbers
// the evaluation cares about: how often each indicator fired, how the
// measurement pipeline behaved, and the detection's flight-recorder trace.
type TelemetrySummary struct {
	// IndicatorFires counts firings per indicator name (union bonus under
	// "union-bonus").
	IndicatorFires map[string]int64 `json:"indicatorFires,omitempty"`
	// Detections counts engine detections in the run.
	Detections int64 `json:"detections,omitempty"`
	// MeasureCount is the number of file measurements performed.
	MeasureCount uint64 `json:"measureCount,omitempty"`
	// MeasureP50/MeasureP99 are measurement-latency quantiles in seconds.
	MeasureP50 float64 `json:"measureP50,omitempty"`
	MeasureP99 float64 `json:"measureP99,omitempty"`
	// PoolSaturated counts submissions that found the measurement pool full
	// (a direct read on pool backpressure).
	PoolSaturated int64 `json:"poolSaturated,omitempty"`
	// Trace is the flight-recorder explanation of the run's detection, when
	// a recorder was attached.
	Trace *telemetry.Trace `json:"trace,omitempty"`
}

// indicator fire metrics carry the indicator as an inline label.
const fireMetricPrefix = `engine_indicator_fires_total{indicator="`

// summarizeTelemetry folds a registry snapshot (and optional flight
// recorder) into a TelemetrySummary. Returns nil when the snapshot holds
// nothing of interest (telemetry was off).
func summarizeTelemetry(snap telemetry.Snapshot, fr *telemetry.FlightRecorder, pid int) *TelemetrySummary {
	if len(snap.Counters) == 0 && len(snap.Histograms) == 0 && fr == nil {
		return nil
	}
	s := &TelemetrySummary{IndicatorFires: make(map[string]int64)}
	for name, v := range snap.Counters {
		switch {
		case strings.HasPrefix(name, fireMetricPrefix):
			ind := strings.TrimSuffix(strings.TrimPrefix(name, fireMetricPrefix), `"}`)
			s.IndicatorFires[ind] = v
		case name == "engine_union_fires_total":
			if v > 0 {
				s.IndicatorFires["union-bonus"] = v
			}
		case name == "engine_detections_total":
			s.Detections = v
		case name == "engine_measure_pool_saturated_total":
			s.PoolSaturated = v
		}
	}
	if h, ok := snap.Histograms["engine_measure_seconds"]; ok && h.Count > 0 {
		s.MeasureCount = h.Count
		s.MeasureP50 = h.Quantile(0.50)
		s.MeasureP99 = h.Quantile(0.99)
	}
	if fr != nil {
		if t := fr.Trace(pid); len(t.Events) > 0 {
			s.Trace = &t
		}
	}
	if len(s.IndicatorFires) == 0 {
		s.IndicatorFires = nil
	}
	return s
}

// IndicatorMixRow is one family's aggregate indicator firing profile.
type IndicatorMixRow struct {
	// Family is the ransomware family (Table I grouping).
	Family string `json:"family"`
	// Samples is how many runs carried telemetry summaries.
	Samples int `json:"samples"`
	// Fires sums indicator firings across the family's runs.
	Fires map[string]int64 `json:"fires"`
}

// IndicatorMixByFamily aggregates per-run indicator firing counts by sample
// family, for the telemetry section of the experiment export. Outcomes
// without telemetry summaries are skipped.
func IndicatorMixByFamily(outcomes []SampleOutcome) []IndicatorMixRow {
	byFamily := make(map[string]*IndicatorMixRow)
	var families []string
	for _, o := range outcomes {
		if o.Telemetry == nil || len(o.Telemetry.IndicatorFires) == 0 {
			continue
		}
		fam := o.Sample.Profile.Family
		row, ok := byFamily[fam]
		if !ok {
			row = &IndicatorMixRow{Family: fam, Fires: make(map[string]int64)}
			byFamily[fam] = row
			families = append(families, fam)
		}
		row.Samples++
		for ind, n := range o.Telemetry.IndicatorFires {
			row.Fires[ind] += n
		}
	}
	sort.Strings(families)
	rows := make([]IndicatorMixRow, 0, len(families))
	for _, fam := range families {
		rows = append(rows, *byFamily[fam])
	}
	return rows
}
