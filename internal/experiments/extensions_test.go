package experiments

import (
	"testing"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/ransomware"
)

// extSpec is a reduced corpus for the config-extension end-to-end tests.
var extSpec = corpus.Spec{Seed: 77, Files: 150, Dirs: 15, SizeScale: 0.25}

// onePerClass returns the first representative roster sample of each
// behavioural class. The two deliberately defective specimens
// (BrokenDelete: "created new files but did not successfully remove the
// original files") are skipped — they never modify, rename or delete an
// in-tree file, so they are not representative of their class's disposal
// behaviour.
func onePerClass(t *testing.T) map[ransomware.Class]ransomware.Sample {
	t.Helper()
	out := make(map[ransomware.Class]ransomware.Sample, 3)
	for _, s := range ransomware.Roster(extSpec.Seed) {
		if s.Profile.BrokenDelete {
			continue
		}
		if _, ok := out[s.Profile.Class]; !ok {
			out[s.Profile.Class] = s
		}
		if len(out) == 3 {
			break
		}
	}
	return out
}

// TestHoneyfileIndicatorPerClass proves the indicator seam end to end: an
// engine whose registry holds ONLY the honeyfile unit — no content, payload,
// sniff or creator measurement at all — still detects one sample of every
// behavioural class purely from decoy touches. Class A hits a decoy by
// rewriting it, Class B by renaming it out of the tree, Class C by
// disposing of the original (delete or move-over).
func TestHoneyfileIndicatorPerClass(t *testing.T) {
	r, err := NewRunner(extSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Plant decoys bracketing the lexicographic walk into the pristine
	// corpus, so every clone ships them.
	decoys := []string{
		r.Manifest().Root + "/!accounts_backup.txt",
		r.Manifest().Root + "/zz_tax_archive.txt",
	}
	for _, p := range decoys {
		if err := r.base.WriteFile(0, p, []byte("ledger archive: savings AB-2231 1180.22\n")); err != nil {
			t.Fatal(err)
		}
	}
	honeyOnly := cryptodrop.DefaultIndicators().
		Without(cryptodrop.IndicatorTypeChange, cryptodrop.IndicatorSimilarity,
			cryptodrop.IndicatorEntropyDelta, cryptodrop.IndicatorDeletion, cryptodrop.IndicatorFunneling).
		With(cryptodrop.NewHoneyfileIndicator(decoys...))
	r.opts = []cryptodrop.Option{cryptodrop.WithIndicators(honeyOnly)}

	for class, s := range onePerClass(t) {
		out, err := r.RunSample(s)
		if err != nil {
			t.Fatalf("%v (%s): %v", class, s.ID, err)
		}
		if !out.Detected {
			t.Errorf("%v (%s): honeyfile-only engine did not detect", class, s.ID)
			continue
		}
		if out.Report.IndicatorPoints[cryptodrop.IndicatorHoneyfile] <= 0 {
			t.Errorf("%v (%s): detection not attributed to the honeyfile indicator: %v",
				class, s.ID, out.Report.IndicatorPoints)
		}
	}
}

// TestMajorityPolicyPerClass proves the policy seam end to end: swapping
// the paper's union policy for majority voting still detects one sample of
// every class, with the quorum acceleration latched.
func TestMajorityPolicyPerClass(t *testing.T) {
	r, err := NewRunner(extSpec, cryptodrop.WithPolicy(&cryptodrop.MajorityPolicy{}))
	if err != nil {
		t.Fatal(err)
	}
	for class, s := range onePerClass(t) {
		out, err := r.RunSample(s)
		if err != nil {
			t.Fatalf("%v (%s): %v", class, s.ID, err)
		}
		if !out.Detected {
			t.Errorf("%v (%s): majority-voting policy did not detect", class, s.ID)
			continue
		}
		if !out.Union {
			t.Errorf("%v (%s): majority quorum never latched acceleration", class, s.ID)
		}
	}
}

// TestExtensionsLeaveDefaultPathUntouched pins the acceptance criterion for
// the opt-in extensions: constructing them changes nothing for an engine
// that does not opt in — the default run of a sample is bit-identical with
// and without the extension code in the binary.
func TestExtensionsLeaveDefaultPathUntouched(t *testing.T) {
	sample := onePerClass(t)[ransomware.ClassA]

	rDefault, err := NewRunner(extSpec)
	if err != nil {
		t.Fatal(err)
	}
	outDefault, err := rDefault.RunSample(sample)
	if err != nil {
		t.Fatal(err)
	}

	// Explicitly passing the default registry must be a no-op too.
	rExplicit, err := NewRunner(extSpec, cryptodrop.WithIndicators(cryptodrop.DefaultIndicators()))
	if err != nil {
		t.Fatal(err)
	}
	outExplicit, err := rExplicit.RunSample(sample)
	if err != nil {
		t.Fatal(err)
	}
	if outDefault.Score != outExplicit.Score || outDefault.Detected != outExplicit.Detected ||
		outDefault.FilesLost != outExplicit.FilesLost {
		t.Fatalf("explicit default registry diverged: %+v vs %+v", outDefault, outExplicit)
	}
}
