package experiments

import (
	"bytes"
	"strings"
	"testing"

	"cryptodrop/internal/benign"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/ransomware"
)

// testSpec is a reduced corpus for tests.
var testSpec = corpus.Spec{Seed: 30, Files: 500, Dirs: 60, SizeScale: 0.25}

// reducedRoster returns one sample per family/class combination.
func reducedRoster(t *testing.T) []ransomware.Sample {
	t.Helper()
	seen := make(map[string]bool)
	var out []ransomware.Sample
	for _, s := range ransomware.Roster(1) {
		key := s.Profile.Family + s.Profile.Class.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, s)
	}
	return out
}

func TestRunnerDetectsReducedRoster(t *testing.T) {
	r, err := NewRunner(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	roster := reducedRoster(t)
	outcomes, err := r.RunRoster(roster, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != len(roster) {
		t.Fatalf("outcomes = %d, want %d", len(outcomes), len(roster))
	}
	corpusSize := len(r.Manifest().Entries)
	for _, o := range outcomes {
		if !o.Detected {
			t.Errorf("%s NOT detected: score %.1f lost %d points %v",
				o.Sample.ID, o.Score, o.FilesLost, o.Report.IndicatorPoints)
			continue
		}
		if o.FilesLost > corpusSize/4 {
			t.Errorf("%s lost %d of %d files before detection", o.Sample.ID, o.FilesLost, corpusSize)
		}
	}
	tbl := BuildTable1(outcomes)
	if tbl.DetectionRate != 1.0 {
		t.Errorf("detection rate = %.2f, want 1.0", tbl.DetectionRate)
	}
	if tbl.OverallMedianFilesLost > 40 {
		t.Errorf("overall median files lost = %.1f, want early detection", tbl.OverallMedianFilesLost)
	}
	t.Logf("reduced roster: median FL=%.1f max=%d", tbl.OverallMedianFilesLost, tbl.MaxFilesLost)
	for _, row := range tbl.Rows {
		t.Logf("  %-24s A=%d B=%d C=%d medianFL=%.1f", row.Family, row.ClassA, row.ClassB, row.ClassC, row.MedianFilesLost)
	}
}

func TestFilesLostCountsRealLoss(t *testing.T) {
	r, err := NewRunner(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	// An undetectable no-op "sample": nothing lost.
	s := ransomware.Sample{ID: "inert", Seed: 1, Profile: ransomware.Profile{
		Family: "Inert", Class: ransomware.ClassA, Traversal: ransomware.TraverseTopDown,
		Extensions: []string{"nomatch"}, Cipher: ransomware.CipherAES, ChunkKB: 8,
	}}
	out, err := r.RunSample(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.FilesLost != 0 {
		t.Fatalf("inert sample lost %d files", out.FilesLost)
	}
	if out.Detected {
		t.Fatal("inert sample detected")
	}
}

func TestRunSampleIsolation(t *testing.T) {
	// Two runs of the same sample must see identical fresh corpora.
	r, err := NewRunner(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	s := reducedRoster(t)[0]
	a, err := r.RunSample(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunSample(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.FilesLost != b.FilesLost || a.Score != b.Score || a.Union != b.Union {
		t.Fatalf("replay differs: %+v vs %+v", a, b)
	}
}

func TestTable1Render(t *testing.T) {
	outcomes := []SampleOutcome{
		{Sample: ransomware.Sample{Profile: ransomware.Profile{Family: "X", Class: ransomware.ClassA}}, Detected: true, FilesLost: 4},
		{Sample: ransomware.Sample{Profile: ransomware.Profile{Family: "X", Class: ransomware.ClassA}}, Detected: true, FilesLost: 8},
		{Sample: ransomware.Sample{Profile: ransomware.Profile{Family: "Y", Class: ransomware.ClassC}}, Detected: true, FilesLost: 12},
	}
	tbl := BuildTable1(outcomes)
	if tbl.Total != 3 || tbl.TotalA != 2 || tbl.TotalC != 1 {
		t.Fatalf("totals wrong: %+v", tbl)
	}
	if tbl.Rows[0].Family != "X" || tbl.Rows[0].MedianFilesLost != 6 {
		t.Fatalf("row X wrong: %+v", tbl.Rows[0])
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Median FL") || !strings.Contains(buf.String(), "# Samples") {
		t.Fatalf("render missing headers:\n%s", buf.String())
	}
}

func TestFig3CDF(t *testing.T) {
	outcomes := []SampleOutcome{
		{FilesLost: 0}, {FilesLost: 5}, {FilesLost: 5}, {FilesLost: 10},
	}
	f := BuildFig3(outcomes)
	if f.Median != 5 {
		t.Fatalf("median = %v, want 5", f.Median)
	}
	if f.Max != 10 {
		t.Fatalf("max = %v, want 10", f.Max)
	}
	if len(f.Points) != 3 {
		t.Fatalf("points = %v", f.Points)
	}
	if f.Points[0].CumulativePct != 25 || f.Points[1].CumulativePct != 75 || f.Points[2].CumulativePct != 100 {
		t.Fatalf("CDF wrong: %+v", f.Points)
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "100.0%") {
		t.Fatalf("render:\n%s", buf.String())
	}
}

func TestFig4TraversalShapes(t *testing.T) {
	// TeslaCrypt (DFS), CTB-Locker (size-ascending) and GPcode (top-down)
	// must leave visibly different touch patterns (Fig. 4).
	r, err := NewRunner(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	pick := func(family string, class ransomware.Class) ransomware.Sample {
		for _, s := range ransomware.Roster(1) {
			if s.Profile.Family == family && s.Profile.Class == class {
				return s
			}
		}
		t.Fatalf("no %s class %v sample", family, class)
		return ransomware.Sample{}
	}
	families := []ransomware.Sample{
		pick("TeslaCrypt", ransomware.ClassA),
		pick("CTB-Locker", ransomware.ClassB),
		pick("GPcode", ransomware.ClassC),
	}
	trees := make([]Fig4Tree, 0, 3)
	for _, s := range families {
		out, err := r.RunSample(s)
		if err != nil {
			t.Fatal(err)
		}
		fs := r.base.Clone()
		tree, err := BuildFig4Tree(fs, r.Manifest().Root, out)
		if err != nil {
			t.Fatal(err)
		}
		if len(tree.Touched) == 0 {
			t.Fatalf("%s touched no directories", s.ID)
		}
		trees = append(trees, tree)
		var buf bytes.Buffer
		if err := tree.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "●") {
			t.Fatalf("render has no touched marks:\n%s", buf.String())
		}
		var dot bytes.Buffer
		if err := tree.RenderDOT(&dot); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(dot.String(), "graph fig4") {
			t.Fatal("DOT render malformed")
		}
	}
	// The patterns must not be identical across all three samples.
	same := func(a, b map[string]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	if same(trees[0].Touched, trees[1].Touched) && same(trees[1].Touched, trees[2].Touched) {
		t.Fatal("all three traversal patterns identical")
	}
}

func TestFig5ProductivityFormatsLead(t *testing.T) {
	r, err := NewRunner(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := r.RunRoster(reducedRoster(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := BuildFig5(outcomes)
	if len(rows) == 0 {
		t.Fatal("no extension rows")
	}
	// Among the top accessed extensions there must be productivity
	// formats (the paper's top four are pdf/odt/docx/pptx).
	top := make(map[string]bool)
	for i, row := range rows {
		if i >= 8 {
			break
		}
		top[row.Ext] = true
	}
	productivity := 0
	for _, ext := range []string{"pdf", "docx", "xlsx", "pptx", "odt", "txt", "doc"} {
		if top[ext] {
			productivity++
		}
	}
	if productivity < 3 {
		t.Fatalf("top extensions lack productivity formats: %+v", rows[:min(8, len(rows))])
	}
	var buf bytes.Buffer
	if err := RenderFig5(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ".pdf") {
		t.Fatalf("render:\n%s", buf.String())
	}
}

func TestFig6Sweep(t *testing.T) {
	apps := []BenignOutcome{
		{Workload: benign.Workload{Name: "A"}, Score: 0},
		{Workload: benign.Workload{Name: "B"}, Score: 110},
		{Workload: benign.Workload{Name: "C"}, Score: 160},
	}
	f := BuildFig6(apps, []float64{0, 50, 100, 150, 200})
	want := []int{3, 2, 2, 1, 0}
	for i, fp := range f.FalsePositives {
		if fp != want[i] {
			t.Fatalf("FP sweep = %v, want %v", f.FalsePositives, want)
		}
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "threshold") {
		t.Fatalf("render:\n%s", buf.String())
	}
}

func TestUnionStats(t *testing.T) {
	r, err := NewRunner(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := r.RunRoster(reducedRoster(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := BuildUnionStats(outcomes)
	if s.Total != len(outcomes) || s.Detected != len(outcomes) {
		t.Fatalf("stats totals: %+v", s)
	}
	if s.WithUnion == 0 {
		t.Fatal("no sample achieved union indication")
	}
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Union indication") {
		t.Fatalf("render:\n%s", buf.String())
	}
}

func TestSmallFileExperiment(t *testing.T) {
	res, err := RunSmallFileExperiment(corpus.Spec{Seed: 31, Files: 800, Dirs: 60, SizeScale: 0.3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("small-file rerun: with=%d without=%d", res.LostWithSmall, res.LostWithoutSmall)
	if res.LostWithoutSmall >= res.LostWithSmall {
		t.Fatalf("removing small files did not reduce loss: %d -> %d", res.LostWithSmall, res.LostWithoutSmall)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CTB-Locker") {
		t.Fatalf("render:\n%s", buf.String())
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		in   []int
		want float64
	}{
		{nil, 0},
		{[]int{5}, 5},
		{[]int{1, 3}, 2},
		{[]int{9, 1, 5}, 5},
		{[]int{4, 1, 3, 2}, 2.5},
	}
	for _, tt := range tests {
		if got := median(tt.in); got != tt.want {
			t.Errorf("median(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRunRosterParallelMatchesSequential(t *testing.T) {
	r, err := NewRunner(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	roster := reducedRoster(t)[:10]
	seq, err := r.RunRoster(roster, nil)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	par, err := r.RunRosterParallel(roster, 4, func(i int, out SampleOutcome) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(roster) {
		t.Fatalf("progress calls = %d, want %d", calls, len(roster))
	}
	for i := range seq {
		if seq[i].FilesLost != par[i].FilesLost || seq[i].Score != par[i].Score ||
			seq[i].Union != par[i].Union || seq[i].Sample.ID != par[i].Sample.ID {
			t.Fatalf("sample %d differs: seq=%+v par=%+v", i, seq[i], par[i])
		}
	}
}

func TestAblationsCompareVariants(t *testing.T) {
	roster := reducedRoster(t)[:6]
	res, err := RunAblations(corpus.Spec{Seed: 33, Files: 300, Dirs: 40, SizeScale: 0.25}, roster, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("variants = %d, want 7", len(res.Rows))
	}
	byName := map[string]AblationRow{}
	for _, row := range res.Rows {
		byName[row.Variant] = row
		t.Logf("%-28s detected=%.0f%% medianFL=%.1f union=%.0f%%",
			row.Variant, 100*row.DetectionRate, row.MedianFilesLost, 100*row.UnionRate)
	}
	full := byName["full engine"]
	if full.DetectionRate != 1.0 {
		t.Fatalf("full engine detection rate %.2f", full.DetectionRate)
	}
	noUnion := byName["no union indication"]
	if noUnion.UnionRate != 0 {
		t.Fatal("union fired with union disabled")
	}
	if noUnion.MedianFilesLost < full.MedianFilesLost {
		t.Fatalf("no-union median %.1f below full %.1f", noUnion.MedianFilesLost, full.MedianFilesLost)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Variant") {
		t.Fatal("render malformed")
	}
}

func TestOutcomesJSONRoundTrip(t *testing.T) {
	r, err := NewRunner(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := r.RunRoster(reducedRoster(t)[:4], nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteOutcomesJSON(&buf, outcomes); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadOutcomesJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(outcomes) {
		t.Fatalf("decoded %d, want %d", len(decoded), len(outcomes))
	}
	for i, d := range decoded {
		o := outcomes[i]
		if d.ID != o.Sample.ID || d.FilesLost != o.FilesLost || d.Detected != o.Detected {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, d, o)
		}
		if d.Class == "" || d.Family == "" || d.Traversal == "" {
			t.Fatalf("entry %d missing metadata: %+v", i, d)
		}
	}
	if _, err := ReadOutcomesJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
