// Package experiments is the evaluation harness: it reruns every experiment
// of the paper's §V — Table I, Figures 3–6, the union-indicator analysis,
// the small-file rerun and the benign false-positive sweep — against the
// synthetic corpus, the simulated sample roster and the CryptoDrop monitor,
// and renders the same tables and series the paper reports.
package experiments

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"cryptodrop"
	"cryptodrop/internal/benign"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/filter"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/ransomware"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/vfs"
)

// Runner executes samples and workloads against clones of one corpus, so
// every run starts from an identical victim machine — the paper's
// revert-to-snapshot methodology (§V-A).
type Runner struct {
	base     *vfs.FS
	manifest *corpus.Manifest
	opts     []cryptodrop.Option
	// recorder, when set, is attached to the filter chain of every run
	// (forensic trace capture). Not safe to combine with parallel runs.
	recorder filter.Filter
	// tel/flight, when set, are shared across every run: all monitors
	// record into the one registry, so a live /metrics endpoint sees the
	// whole roster accumulate. Flight-recorder groups are per-run PIDs, so
	// traces from a shared recorder interleave across runs — use
	// EnableTelemetrySummaries for per-run attribution.
	tel    *telemetry.Registry
	flight *telemetry.FlightRecorder
	// perRunTelemetry gives every run a private registry and flight
	// recorder and folds a TelemetrySummary into its outcome.
	perRunTelemetry bool
	// recovery arms every subsequent run with a fresh unbounded version
	// store and the detect-then-recover coordinator, and folds the
	// rollback outcomes into SampleOutcome.Recoveries.
	recovery bool
}

// SetTraceRecorder attaches a filter (typically a trace.Recorder) to every
// subsequent run's chain at a high altitude.
func (r *Runner) SetTraceRecorder(f filter.Filter) { r.recorder = f }

// SetTelemetry shares one registry (and optional flight recorder) across
// every subsequent run, so a live endpoint (telemetry.Serve) can watch the
// roster's aggregate counters and histograms as it executes. Either argument
// may be nil.
func (r *Runner) SetTelemetry(reg *telemetry.Registry, fr *telemetry.FlightRecorder) {
	r.tel = reg
	r.flight = fr
}

// EnableTelemetrySummaries attaches a fresh registry and flight recorder to
// every subsequent run and records a per-run TelemetrySummary (indicator
// mix, measurement latency quantiles, detection trace) on its outcome.
// Takes precedence over SetTelemetry: per-run instruments are private by
// design, so PID-keyed flight-recorder traces cannot collide across runs.
func (r *Runner) EnableTelemetrySummaries() { r.perRunTelemetry = true }

// EnableRecovery arms every subsequent run with detect-then-recover: each
// sample gets a private, unbounded version store, so when the monitor
// convicts the sample its pre-images roll back before the run returns.
// FilesLost on the outcome then measures loss AFTER recovery; the per-group
// rollback accounting lands in SampleOutcome.Recoveries.
func (r *Runner) EnableRecovery() { r.recovery = true }

// NewRunner builds the corpus once per spec. opts are applied to every
// monitor the runner creates.
func NewRunner(spec corpus.Spec, opts ...cryptodrop.Option) (*Runner, error) {
	fs := vfs.New()
	m, err := corpus.Build(fs, spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: build corpus: %w", err)
	}
	return &Runner{base: fs, manifest: m, opts: opts}, nil
}

// Manifest returns the corpus manifest.
func (r *Runner) Manifest() *corpus.Manifest { return r.manifest }

// CloneFS returns a fresh copy-on-write clone of the pristine corpus
// filesystem (for tree rendering and custom runs).
func (r *Runner) CloneFS() *vfs.FS { return r.base.Clone() }

// SampleOutcome is the result of one sample run.
type SampleOutcome struct {
	// Sample is the specimen that ran.
	Sample ransomware.Sample
	// Detected reports whether CryptoDrop flagged the sample.
	Detected bool
	// FilesLost counts corpus files whose original content no longer
	// exists anywhere on disk — the paper's SHA-256 verification (§V-A).
	FilesLost int
	// Union reports whether union indication fired for the sample.
	Union bool
	// Score is the reputation score at the end of the run.
	Score float64
	// Report is the full scoreboard snapshot.
	Report cryptodrop.ProcessReport
	// Run is the sample's own accounting.
	Run ransomware.RunResult
	// Telemetry is the run's metrics summary; set only when the runner has
	// EnableTelemetrySummaries on.
	Telemetry *TelemetrySummary
	// Recoveries are the rollback outcomes for the run; set only when the
	// runner has EnableRecovery on. With recovery armed, FilesLost counts
	// loss after rollback.
	Recoveries []cryptodrop.RecoveryOutcome
}

// RunSample executes one sample on a fresh clone of the corpus under a
// fresh monitor.
func (r *Runner) RunSample(s ransomware.Sample) (SampleOutcome, error) {
	fs := r.base.Clone()
	procs := proc.NewTable()
	runOpts := []cryptodrop.Option{cryptodrop.WithRoot(r.manifest.Root)}
	reg, fr := r.tel, r.flight
	if r.perRunTelemetry {
		reg = telemetry.NewRegistry()
		fr = telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
	}
	if reg != nil {
		runOpts = append(runOpts, cryptodrop.WithTelemetry(reg))
	}
	if fr != nil {
		runOpts = append(runOpts, cryptodrop.WithFlightRecorder(fr))
	}
	if r.recovery {
		runOpts = append(runOpts, cryptodrop.WithRecovery(cryptodrop.NewVersionStore(0)))
	}
	mon, err := cryptodrop.NewMonitor(fs, procs, append(runOpts, r.opts...)...)
	if err != nil {
		return SampleOutcome{}, fmt.Errorf("experiments: monitor: %w", err)
	}
	if r.recorder != nil {
		if err := mon.Chain().Attach(500000, r.recorder); err != nil {
			return SampleOutcome{}, fmt.Errorf("experiments: attach recorder: %w", err)
		}
	}
	pid := procs.Spawn(s.ID)
	res, err := s.Run(fs, pid, r.manifest.Root, func() bool { return procs.Suspended(pid) })
	if err != nil {
		return SampleOutcome{}, fmt.Errorf("experiments: run %s: %w", s.ID, err)
	}
	out := SampleOutcome{
		Sample:    s,
		FilesLost: r.countFilesLost(fs),
		Run:       res,
	}
	if r.recovery {
		out.Recoveries = mon.Recoveries()
	}
	if rep, ok := mon.Report(pid); ok {
		out.Report = rep
		out.Detected = rep.Detected
		out.Union = rep.Union
		out.Score = rep.Score
	}
	if r.perRunTelemetry {
		out.Telemetry = summarizeTelemetry(reg.Snapshot(), fr, pid)
	}
	return out, nil
}

// countFilesLost verifies the manifest hashes: an original file survives if
// content with its hash still exists anywhere on disk (so an unencrypted
// file merely parked elsewhere by a suspended Class B sample is not lost).
func (r *Runner) countFilesLost(fs *vfs.FS) int {
	surviving := make(map[[32]byte]bool, len(r.manifest.Entries))
	_ = fs.Walk("/", func(info vfs.FileInfo) error {
		if info.IsDir {
			return nil
		}
		content, err := fs.ReadFileRaw(info.Path)
		if err != nil {
			return nil
		}
		surviving[sha256.Sum256(content)] = true
		return nil
	})
	lost := 0
	for _, e := range r.manifest.Entries {
		if !surviving[e.SHA256] {
			lost++
		}
	}
	return lost
}

// BenignOutcome is the result of one benign workload run.
type BenignOutcome struct {
	// Workload is the application that ran.
	Workload benign.Workload
	// Score is the final reputation score.
	Score float64
	// Detected reports whether the workload was flagged.
	Detected bool
	// Union reports whether union indication fired.
	Union bool
	// Report is the full scoreboard snapshot.
	Report cryptodrop.ProcessReport
}

// RunBenign executes a workload on a fresh corpus clone. Enforcement is
// disabled so the full final score is measured even past the threshold
// (the Fig. 6 sweep needs scores, not stops).
func (r *Runner) RunBenign(w benign.Workload) (BenignOutcome, error) {
	fs := r.base.Clone()
	procs := proc.NewTable()
	mon, err := cryptodrop.NewMonitor(fs, procs, append([]cryptodrop.Option{
		cryptodrop.WithRoot(r.manifest.Root),
		cryptodrop.WithoutEnforcement(),
	}, r.opts...)...)
	if err != nil {
		return BenignOutcome{}, fmt.Errorf("experiments: monitor: %w", err)
	}
	pid := procs.Spawn(w.Name)
	if err := w.Run(fs, pid, r.manifest.Root); err != nil && !errors.Is(err, cryptodrop.ErrSuspended) {
		return BenignOutcome{}, fmt.Errorf("experiments: run %s: %w", w.Name, err)
	}
	out := BenignOutcome{Workload: w}
	if rep, ok := mon.Report(pid); ok {
		out.Report = rep
		out.Score = rep.Score
		out.Detected = rep.Detected
		out.Union = rep.Union
	}
	return out, nil
}

// RunRoster executes every sample in the roster. Samples are independent —
// each runs against its own pristine corpus clone and monitor — so when no
// trace recorder is attached and no progress callback needs in-order
// delivery, the roster fans out across GOMAXPROCS workers. Outcomes are
// returned in roster order and are identical to the sequential path. With a
// progress callback or recorder attached, execution stays sequential and
// progress is invoked after each sample in order.
func (r *Runner) RunRoster(roster []ransomware.Sample, progress func(i int, out SampleOutcome)) ([]SampleOutcome, error) {
	if r.recorder == nil && progress == nil && len(roster) > 1 {
		if w := runtime.GOMAXPROCS(0); w > 1 {
			return r.RunRosterParallel(roster, w, nil)
		}
	}
	return r.runRosterSeq(roster, progress)
}

func (r *Runner) runRosterSeq(roster []ransomware.Sample, progress func(i int, out SampleOutcome)) ([]SampleOutcome, error) {
	outcomes := make([]SampleOutcome, 0, len(roster))
	for i, s := range roster {
		out, err := r.RunSample(s)
		if err != nil {
			return nil, err
		}
		outcomes = append(outcomes, out)
		if progress != nil {
			progress(i, out)
		}
	}
	return outcomes, nil
}

// RunRosterParallel executes the roster across workers goroutines. Each
// sample still runs against its own pristine corpus clone, so results are
// identical to RunRoster (order preserved); the progress callback is
// serialised. workers ≤ 1 falls back to the sequential path.
func (r *Runner) RunRosterParallel(roster []ransomware.Sample, workers int, progress func(i int, out SampleOutcome)) ([]SampleOutcome, error) {
	if workers <= 1 {
		return r.runRosterSeq(roster, progress)
	}
	outcomes := make([]SampleOutcome, len(roster))
	errs := make([]error, len(roster))
	next := make(chan int)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out, err := r.RunSample(roster[i])
				if err != nil {
					errs[i] = err
					continue
				}
				outcomes[i] = out
				if progress != nil {
					progressMu.Lock()
					progress(i, out)
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range roster {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outcomes, nil
}
