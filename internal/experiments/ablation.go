package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/ransomware"
)

// AblationRow is one engine variant's detection performance.
type AblationRow struct {
	// Variant names the configuration.
	Variant string
	// DetectionRate is the fraction of samples flagged.
	DetectionRate float64
	// MedianFilesLost is the median loss before detection.
	MedianFilesLost float64
	// MaxFilesLost is the worst case.
	MaxFilesLost int
	// UnionRate is the fraction of samples reaching union indication.
	UnionRate float64
}

// AblationResult compares engine variants over the same roster and corpus.
type AblationResult struct {
	// Rows are per-variant results.
	Rows []AblationRow
	// Samples is the roster size used.
	Samples int
}

// ablationVariants returns the design-choice ablations from DESIGN.md:
// union indication, each primary indicator, and the entropy weighting.
// Indicator ablations are registry subtraction — the engine variant simply
// runs with a smaller registry, and the measurement layer stops extracting
// whatever features the removed units were the only consumers of.
func ablationVariants() []struct {
	name string
	opts []cryptodrop.Option
} {
	without := func(inds ...cryptodrop.Indicator) cryptodrop.Option {
		return cryptodrop.WithIndicators(cryptodrop.DefaultIndicators().Without(inds...))
	}
	return []struct {
		name string
		opts []cryptodrop.Option
	}{
		{"full engine", nil},
		{"no union indication", []cryptodrop.Option{cryptodrop.WithUnionDisabled()}},
		{"no type-change indicator", []cryptodrop.Option{without(cryptodrop.IndicatorTypeChange)}},
		{"no similarity indicator", []cryptodrop.Option{without(cryptodrop.IndicatorSimilarity)}},
		{"no entropy-delta indicator", []cryptodrop.Option{without(cryptodrop.IndicatorEntropyDelta)}},
		{"no secondary indicators", []cryptodrop.Option{without(cryptodrop.IndicatorDeletion, cryptodrop.IndicatorFunneling)}},
		{"unweighted entropy mean", []cryptodrop.Option{cryptodrop.WithUnweightedEntropy()}},
	}
}

// RunAblations reruns the roster under each engine variant.
func RunAblations(spec corpus.Spec, roster []ransomware.Sample, progress func(variant string)) (AblationResult, error) {
	res := AblationResult{Samples: len(roster)}
	for _, v := range ablationVariants() {
		if progress != nil {
			progress(v.name)
		}
		r, err := NewRunner(spec, v.opts...)
		if err != nil {
			return res, err
		}
		outcomes, err := r.RunRoster(roster, nil)
		if err != nil {
			return res, fmt.Errorf("experiments: ablation %q: %w", v.name, err)
		}
		var lost []int
		row := AblationRow{Variant: v.name}
		for _, o := range outcomes {
			lost = append(lost, o.FilesLost)
			if o.Detected {
				row.DetectionRate++
			}
			if o.Union {
				row.UnionRate++
			}
			if o.FilesLost > row.MaxFilesLost {
				row.MaxFilesLost = o.FilesLost
			}
		}
		if len(outcomes) > 0 {
			row.DetectionRate /= float64(len(outcomes))
			row.UnionRate /= float64(len(outcomes))
		}
		row.MedianFilesLost = median(lost)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the comparison table.
func (r AblationResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Variant\tDetected\tMedian FL\tMax FL\tUnion rate\t(%d samples)\n", r.Samples)
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.0f%%\t%.1f\t%d\t%.0f%%\t\n",
			row.Variant, 100*row.DetectionRate, row.MedianFilesLost, row.MaxFilesLost, 100*row.UnionRate)
	}
	return tw.Flush()
}
