package vfs

import "errors"

// ErrCrossMount reports a rename whose source and destination resolve to
// different mounts. Real filesystems refuse cross-volume MoveFileEx the same
// way; callers that want the move must copy and delete explicitly, which the
// detection engine then sees as the read/write/delete stream it really is.
var ErrCrossMount = errors.New("vfs: rename crosses mount boundary")

// Backend is the pluggable content store behind a mount point. The router
// (FS) owns everything namespace- and policy-shaped — the directory tree,
// stable file-ID allocation, read-only attributes, rename tracking, the
// interceptor chain and telemetry — so a backend only stores bytes keyed by
// the router-assigned stable file ID. Every method is called with the
// router's lock held, so implementations need no internal locking against
// router traffic (they may still lock against out-of-band callers such as
// CloneBackend sources).
//
// Paths handed to a backend are mount-relative, rooted, slash-separated
// ("/docs/a.txt"); backends that need none (the in-memory store) may ignore
// them. Open with create=false may receive an empty path — the file is known
// to the backend already and must be resolved by ID.
type Backend interface {
	// Open registers (create=true) or revisits a file. With truncate=true
	// the content is discarded; with create=true the file must not already
	// be known under id.
	Open(id uint64, path string, create, truncate bool) error
	// Read returns the file bytes in [off, off+n) — shorter at end of file,
	// empty when off is at or past it — together with the file's total
	// size. n < 0 reads to the end. The returned slice may alias backend
	// storage; callers that retain it must copy.
	Read(id uint64, off, n int64) ([]byte, int64, error)
	// Write stores data at off, growing the file as needed (the gap, if
	// any, reads as zero bytes), and returns the new total size.
	Write(id uint64, off int64, data []byte) (int64, error)
	// Close is the handle-close hint; backends holding per-file resources
	// may release them here.
	Close(id uint64) error
	// Delete removes the file's content and forgets the ID.
	Delete(id uint64) error
	// Rename records the file's new mount-relative path. Content and ID are
	// unchanged — the router guarantees both paths resolve to this mount.
	Rename(id uint64, oldPath, newPath string) error
	// Stat returns the file's total size.
	Stat(id uint64) (int64, error)
}

// Cloner is the optional backend capability behind FS.Clone: backends that
// can snapshot themselves cheaply (copy-on-write) return an independent
// copy. Backends without it — or whose CloneBackend returns nil, as a
// wrapping backend over a non-clonable inner does — are materialised into a
// fresh in-memory store when their filesystem is cloned.
type Cloner interface {
	CloneBackend() Backend
}

// PreImager is the optional backend capability the router invokes before a
// destructive mutation — a truncating open, a write, a delete, a
// rename-replace — with the acting process and the file's full router path.
// The versioned extension implements it to retain copy-on-write pre-images;
// plain backends ignore it and pay nothing. The call happens after the
// interceptor's PreOp passes (vetoed operations mutate nothing, so nothing
// is captured) and before the backend mutation, with the router lock held.
type PreImager interface {
	PreImage(id uint64, path string, pid int, kind OpKind)
}
