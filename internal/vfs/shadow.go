package vfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Shadow copies model the Windows Volume Shadow Copy Service: whole-volume
// snapshots that backup software creates and that ransomware (TeslaCrypt
// among others, §III) deletes to frustrate recovery. Shadow-copy operations
// are volume-level administration, not user-data access, so they do not
// pass through the filter chain — the paper explicitly ignores them because
// "they do not directly alter user data".

// ErrNoShadowCopy is returned when a named shadow copy does not exist.
var ErrNoShadowCopy = errors.New("vfs: no such shadow copy")

// shadowStore holds a filesystem's shadow copies.
type shadowStore struct {
	mu     sync.Mutex
	copies map[string]*FS
}

// shadows lazily initialises the store.
func (fs *FS) shadows() *shadowStore {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.shadowCopies == nil {
		fs.shadowCopies = &shadowStore{copies: make(map[string]*FS)}
	}
	return fs.shadowCopies
}

// CreateShadowCopy snapshots the entire volume under the given name,
// overwriting any previous snapshot with that name.
func (fs *FS) CreateShadowCopy(name string) {
	snap := fs.Clone()
	st := fs.shadows()
	st.mu.Lock()
	st.copies[name] = snap
	st.mu.Unlock()
}

// ShadowCopies lists snapshot names, sorted.
func (fs *FS) ShadowCopies() []string {
	st := fs.shadows()
	st.mu.Lock()
	defer st.mu.Unlock()
	names := make([]string, 0, len(st.copies))
	for name := range st.copies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DeleteShadowCopy removes a snapshot (vssadmin delete shadows), the
// recovery-frustration step ransomware performs before encrypting.
func (fs *FS) DeleteShadowCopy(name string) error {
	st := fs.shadows()
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.copies[name]; !ok {
		return fmt.Errorf("%s: %w", name, ErrNoShadowCopy)
	}
	delete(st.copies, name)
	return nil
}

// RestoreShadowCopy returns the snapshot filesystem for recovery.
func (fs *FS) RestoreShadowCopy(name string) (*FS, error) {
	st := fs.shadows()
	st.mu.Lock()
	defer st.mu.Unlock()
	snap, ok := st.copies[name]
	if !ok {
		return nil, fmt.Errorf("%s: %w", name, ErrNoShadowCopy)
	}
	return snap.Clone(), nil
}
