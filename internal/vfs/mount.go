package vfs

import (
	"fmt"
	"sort"
	"strings"
)

// mount binds a namespace prefix to a backend. pi caches the backend's
// optional PreImager capability so the hot path pays one nil check, not a
// type assertion per operation. mem is set when the backend is the plain
// in-package Memory store: entries then carry a direct *memFile reference
// and the router skips the interface round-trip entirely — wrapping (the
// versioned extension) or any foreign backend clears it, restoring the
// full Backend path with its PreImage hook.
type mount struct {
	prefix string
	b      Backend
	pi     PreImager
	mem    *Memory
}

func newMount(prefix string, b Backend) *mount {
	m := &mount{prefix: prefix, b: b}
	m.pi, _ = b.(PreImager)
	m.mem, _ = b.(*Memory)
	return m
}

// rel maps a full router path onto the mount's namespace.
func (m *mount) rel(p string) string {
	if m.prefix == "/" {
		return p
	}
	return strings.TrimPrefix(p, m.prefix)
}

// covers reports whether p resolves under this mount's prefix.
func (m *mount) covers(p string) bool {
	if m.prefix == "/" {
		return true
	}
	return p == m.prefix || strings.HasPrefix(p, m.prefix+"/")
}

// Mount attaches a backend at prefix: every file subsequently created under
// prefix stores its content in b, resolved by longest prefix — so one
// session can span heterogeneous storage (an in-memory system volume beside
// an OS-dir-backed documents volume). The prefix directory is created if
// missing. Mounting fails if a mount already claims the exact prefix or if
// files already exist under it (files do not migrate between backends).
func (fs *FS) Mount(prefix string, b Backend) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	prefix = clean(prefix)
	for _, m := range fs.mounts {
		if m.prefix == prefix {
			return fmt.Errorf("vfs: mount %s: %w", prefix, ErrExist)
		}
	}
	if d, err := fs.lookupDir(prefix); err == nil {
		if hasFiles(d) {
			return fmt.Errorf("vfs: mount %s: subtree already has files: %w", prefix, ErrExist)
		}
	}
	if err := fs.mkdirAllLocked(prefix); err != nil {
		return err
	}
	fs.mounts = append(fs.mounts, newMount(prefix, b))
	sortMounts(fs.mounts)
	return nil
}

// Mounts returns the mounted prefixes, longest first — the resolution order.
func (fs *FS) Mounts() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, len(fs.mounts))
	for i, m := range fs.mounts {
		out[i] = m.prefix
	}
	return out
}

// WrapMounts replaces every mount's backend with wrap(prefix, backend) —
// the seam extensions use to interpose on content storage (the versioned
// pre-image extension wraps every mount on monitor attach and unwraps on
// shutdown). Existing files keep their mounts; only the backend pointer and
// its cached capabilities change. Every entry's direct-memory reference is
// re-resolved: a wrapped mount must see all traffic through its Backend
// interface, and unwrapping restores the fast path.
func (fs *FS) WrapMounts(wrap func(prefix string, b Backend) Backend) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, m := range fs.mounts {
		m.b = wrap(m.prefix, m.b)
		m.pi, _ = m.b.(PreImager)
		m.mem, _ = m.b.(*Memory)
	}
	for _, e := range fs.ids {
		if e.m.mem != nil {
			e.mf = e.m.mem.files[e.id]
		} else {
			e.mf = nil
		}
	}
}

// resolveMount returns the longest-prefix mount covering p; fs.mu held.
// There is always a root mount, so resolution cannot fail.
func (fs *FS) resolveMount(p string) *mount {
	for _, m := range fs.mounts {
		if m.covers(p) {
			return m
		}
	}
	return fs.mounts[len(fs.mounts)-1]
}

// sortMounts orders mounts longest-prefix-first so resolveMount's linear
// scan finds the most specific mount.
func sortMounts(ms []*mount) {
	sort.SliceStable(ms, func(i, j int) bool { return len(ms[i].prefix) > len(ms[j].prefix) })
}

// hasFiles reports whether any file exists under d.
func hasFiles(d *dir) bool {
	for _, n := range d.children {
		switch t := n.(type) {
		case *entry:
			return true
		case *dir:
			if hasFiles(t) {
				return true
			}
		}
	}
	return false
}
