package vfs

import "fmt"

// Memory is the in-memory content store — the backend behind vfs.New, and
// the re-implementation of the original monolithic filesystem's byte
// storage. Content is shared copy-on-write across CloneBackend, so cloning
// a corpus for a fresh experiment run stays cheap even for large trees.
type Memory struct {
	files map[uint64]*memFile
}

type memFile struct {
	data []byte
	// shared marks the data slice as aliased by a clone: copy before
	// mutating.
	shared bool
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{files: make(map[uint64]*memFile)}
}

var _ Backend = (*Memory)(nil)
var _ Cloner = (*Memory)(nil)

// Open implements Backend.
func (m *Memory) Open(id uint64, path string, create, truncate bool) error {
	f, ok := m.files[id]
	if create {
		if ok {
			return fmt.Errorf("memory: file id %d: %w", id, ErrExist)
		}
		m.files[id] = &memFile{}
		return nil
	}
	if !ok {
		return fmt.Errorf("memory: file id %d: %w", id, ErrNotExist)
	}
	if truncate {
		f.data = nil
		f.shared = false
	}
	return nil
}

// Read implements Backend. The returned slice aliases the stored content.
func (m *Memory) Read(id uint64, off, n int64) ([]byte, int64, error) {
	f, ok := m.files[id]
	if !ok {
		return nil, 0, fmt.Errorf("memory: file id %d: %w", id, ErrNotExist)
	}
	size := int64(len(f.data))
	if off < 0 || off >= size {
		return nil, size, nil
	}
	end := size
	if n >= 0 && off+n < size {
		end = off + n
	}
	return f.data[off:end], size, nil
}

// Write implements Backend, honouring copy-on-write sharing.
func (m *Memory) Write(id uint64, off int64, data []byte) (int64, error) {
	f, ok := m.files[id]
	if !ok {
		return 0, fmt.Errorf("memory: file id %d: %w", id, ErrNotExist)
	}
	f.write(off, data)
	return int64(len(f.data)), nil
}

// write stores data at off, honouring copy-on-write sharing.
func (f *memFile) write(off int64, data []byte) {
	need := off + int64(len(data))
	if f.shared || need > int64(cap(f.data)) {
		nd := make([]byte, max64(need, int64(len(f.data))))
		copy(nd, f.data)
		f.data = nd
		f.shared = false
	} else if need > int64(len(f.data)) {
		f.data = f.data[:need]
	}
	copy(f.data[off:], data)
}

// Close implements Backend (no per-file resources to release).
func (m *Memory) Close(id uint64) error { return nil }

// Delete implements Backend.
func (m *Memory) Delete(id uint64) error {
	if _, ok := m.files[id]; !ok {
		return fmt.Errorf("memory: file id %d: %w", id, ErrNotExist)
	}
	delete(m.files, id)
	return nil
}

// Rename implements Backend (content is path-independent).
func (m *Memory) Rename(id uint64, oldPath, newPath string) error { return nil }

// Stat implements Backend.
func (m *Memory) Stat(id uint64) (int64, error) {
	f, ok := m.files[id]
	if !ok {
		return 0, fmt.Errorf("memory: file id %d: %w", id, ErrNotExist)
	}
	return int64(len(f.data)), nil
}

// CloneBackend implements Cloner: both sides share content slices until
// either writes.
func (m *Memory) CloneBackend() Backend {
	nm := &Memory{files: make(map[uint64]*memFile, len(m.files))}
	for id, f := range m.files {
		f.shared = true
		nm.files[id] = &memFile{data: f.data, shared: true}
	}
	return nm
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
