package vfs

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestMkdirAndStat(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/docs/work/reports"); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/docs/work/reports")
	if err != nil {
		t.Fatal(err)
	}
	if !info.IsDir {
		t.Fatal("expected directory")
	}
	if _, err := fs.Stat("/docs/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Stat missing = %v, want ErrNotExist", err)
	}
}

func TestMkdirExisting(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/a"); !errors.Is(err, ErrExist) {
		t.Fatalf("second Mkdir = %v, want ErrExist", err)
	}
	if err := fs.MkdirAll("/a"); err != nil {
		t.Fatalf("MkdirAll existing = %v, want nil", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	content := []byte("hello cryptodrop")
	if err := fs.WriteFile(1, "/docs/note.txt", content); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(1, "/docs/note.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("read %q, want %q", got, content)
	}
}

func TestOpenMissingFile(t *testing.T) {
	fs := New()
	if _, err := fs.Open(1, "/nope.txt", ReadOnly); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestOpenFlagsValidation(t *testing.T) {
	fs := New()
	if _, err := fs.Open(1, "/x", 0); !errors.Is(err, ErrBadFlag) {
		t.Fatalf("open with no flags = %v, want ErrBadFlag", err)
	}
}

func TestReadOnHandleNotOpenForRead(t *testing.T) {
	fs := New()
	h, err := fs.Create(1, "/f")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Read(make([]byte, 4)); !errors.Is(err, ErrBadFlag) {
		t.Fatalf("read on write-only handle = %v, want ErrBadFlag", err)
	}
}

func TestWriteOnReadOnlyHandle(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(1, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	h, err := fs.Open(1, "/f", ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Write([]byte("y")); !errors.Is(err, ErrBadFlag) {
		t.Fatalf("write on read-only handle = %v, want ErrBadFlag", err)
	}
}

func TestTruncateOnOpen(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(1, "/f", []byte("long original content")); err != nil {
		t.Fatal(err)
	}
	h, err := fs.Open(1, "/f", WriteOnly|Truncate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(1, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("content = %q, want %q", got, "new")
	}
}

func TestAppend(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(1, "/f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	h, err := fs.Open(1, "/f", WriteOnly|Append)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("def")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile(1, "/f")
	if string(got) != "abcdef" {
		t.Fatalf("content = %q, want abcdef", got)
	}
}

func TestWriteAtOffsetGrowsFile(t *testing.T) {
	fs := New()
	h, err := fs.Create(1, "/f")
	if err != nil {
		t.Fatal(err)
	}
	h.SeekTo(4)
	if _, err := h.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile(1, "/f")
	want := append([]byte{0, 0, 0, 0}, []byte("tail")...)
	if !bytes.Equal(got, want) {
		t.Fatalf("content = %v, want %v", got, want)
	}
}

func TestInPlaceOverwrite(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(1, "/f", []byte("AAAABBBB")); err != nil {
		t.Fatal(err)
	}
	h, err := fs.Open(1, "/f", ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("XX")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile(1, "/f")
	if string(got) != "XXAABBBB" {
		t.Fatalf("content = %q", got)
	}
}

func TestDoubleClose(t *testing.T) {
	fs := New()
	h, err := fs.Create(1, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close = %v, want ErrClosed", err)
	}
	if _, err := h.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close = %v, want ErrClosed", err)
	}
}

func TestDelete(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(1, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(1, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/f"); !errors.Is(err, ErrNotExist) {
		t.Fatal("file still exists after delete")
	}
	if err := fs.Delete(1, "/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("delete missing = %v, want ErrNotExist", err)
	}
}

func TestDeleteReadOnlyFails(t *testing.T) {
	// Windows semantics the GPcode 2008 sample trips over (§V-C).
	fs := New()
	if err := fs.WriteFile(1, "/f", []byte("precious")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetReadOnly("/f", true); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(1, "/f"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("delete read-only = %v, want ErrReadOnly", err)
	}
	if _, err := fs.Open(1, "/f", WriteOnly); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("open read-only for write = %v, want ErrReadOnly", err)
	}
	if err := fs.SetReadOnly("/f", false); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(1, "/f"); err != nil {
		t.Fatalf("delete after clearing attribute = %v", err)
	}
}

func TestDeleteNonEmptyDir(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/d/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(1, "/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("delete non-empty dir = %v, want ErrNotEmpty", err)
	}
	if err := fs.Delete(1, "/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(1, "/d"); err != nil {
		t.Fatalf("delete empty dir = %v", err)
	}
}

func TestRenamePreservesFileID(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/tmp"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/docs/f.txt", []byte("content")); err != nil {
		t.Fatal(err)
	}
	before, err := fs.Stat("/docs/f.txt")
	if err != nil {
		t.Fatal(err)
	}
	// Class B pattern: move out, then move back under a different name.
	if err := fs.Rename(1, "/docs/f.txt", "/tmp/work.bin"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(1, "/tmp/work.bin", "/docs/f.txt.locked"); err != nil {
		t.Fatal(err)
	}
	after, err := fs.Stat("/docs/f.txt.locked")
	if err != nil {
		t.Fatal(err)
	}
	if before.FileID != after.FileID {
		t.Fatalf("file ID changed across moves: %d -> %d", before.FileID, after.FileID)
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(1, "/orig", []byte("original")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/new", []byte("encrypted")); err != nil {
		t.Fatal(err)
	}
	origInfo, _ := fs.Stat("/orig")

	var replaced uint64
	rec := &recorder{onPost: func(op *Op) {
		if op.Kind == OpRename {
			replaced = op.ReplacedID
		}
	}}
	fs.SetInterceptor(rec)
	if err := fs.Rename(1, "/new", "/orig"); err != nil {
		t.Fatal(err)
	}
	if replaced != origInfo.FileID {
		t.Fatalf("ReplacedID = %d, want %d", replaced, origInfo.FileID)
	}
	got, _ := fs.ReadFile(1, "/orig")
	if string(got) != "encrypted" {
		t.Fatalf("content after replace = %q", got)
	}
	if _, err := fs.Stat("/new"); !errors.Is(err, ErrNotExist) {
		t.Fatal("source still exists after rename")
	}
}

func TestRenameOntoReadOnlyFails(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(1, "/orig", []byte("original")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/new", []byte("encrypted")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetReadOnly("/orig", true); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(1, "/new", "/orig"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("rename over read-only = %v, want ErrReadOnly", err)
	}
}

// recorder is a test interceptor.
type recorder struct {
	pre    []Op
	post   []Op
	onPre  func(op *Op) error
	onPost func(op *Op)
}

func (r *recorder) PreOp(op *Op) error {
	r.pre = append(r.pre, *op)
	if r.onPre != nil {
		return r.onPre(op)
	}
	return nil
}

func (r *recorder) PostOp(op *Op) {
	r.post = append(r.post, *op)
	if r.onPost != nil {
		r.onPost(op)
	}
}

func TestInterceptorSeesOpStream(t *testing.T) {
	fs := New()
	rec := &recorder{}
	fs.SetInterceptor(rec)
	if err := fs.WriteFile(42, "/f", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(42, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "payload" {
		t.Fatalf("read %q", data)
	}
	var kinds []OpKind
	for _, op := range rec.post {
		kinds = append(kinds, op.Kind)
		if op.PID != 42 {
			t.Fatalf("op %v pid = %d, want 42", op.Kind, op.PID)
		}
	}
	want := []OpKind{OpCreate, OpWrite, OpClose, OpOpen, OpRead, OpClose}
	if len(kinds) != len(want) {
		t.Fatalf("ops = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("ops = %v, want %v", kinds, want)
		}
	}
	// Write payload must be visible.
	if string(rec.post[1].Data) != "payload" {
		t.Fatalf("write op data = %q", rec.post[1].Data)
	}
	// Read payload must be visible post-op.
	if string(rec.post[4].Data) != "payload" {
		t.Fatalf("read op data = %q", rec.post[4].Data)
	}
	// Close op of the write handle must record Wrote.
	if !rec.post[2].Wrote {
		t.Fatal("close op Wrote = false for write handle")
	}
	if rec.post[5].Wrote {
		t.Fatal("close op Wrote = true for read handle")
	}
}

func TestInterceptorVeto(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(1, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	denied := errors.New("process suspended")
	fs.SetInterceptor(&recorder{onPre: func(op *Op) error {
		if op.Kind == OpDelete {
			return denied
		}
		return nil
	}})
	if err := fs.Delete(1, "/f"); !errors.Is(err, denied) {
		t.Fatalf("delete = %v, want veto error", err)
	}
	if _, err := fs.Stat("/f"); err != nil {
		t.Fatal("vetoed delete removed the file")
	}
}

func TestOpCounts(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(1, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(1, "/f"); err != nil {
		t.Fatal(err)
	}
	if got := fs.OpCount(OpWrite); got != 1 {
		t.Fatalf("write count = %d, want 1", got)
	}
	if got := fs.OpCount(OpRead); got != 1 {
		t.Fatalf("read count = %d, want 1", got)
	}
	if got := fs.OpCount(OpClose); got != 2 {
		t.Fatalf("close count = %d, want 2", got)
	}
}

func TestListSorted(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/d/sub"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"/d/z.txt", "/d/a.txt", "/d/m.txt"} {
		if err := fs.WriteFile(1, name, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := fs.List("/d")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, info := range infos {
		names = append(names, info.Path)
	}
	want := []string{"/d/a.txt", "/d/m.txt", "/d/sub", "/d/z.txt"}
	if len(names) != len(want) {
		t.Fatalf("List = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("List = %v, want %v", names, want)
		}
	}
}

func TestWalkAndTreeStats(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/docs/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/docs/f1", bytes.Repeat([]byte("x"), 10)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/docs/a/f2", bytes.Repeat([]byte("y"), 20)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/docs/a/b/f3", bytes.Repeat([]byte("z"), 30)); err != nil {
		t.Fatal(err)
	}
	s, err := fs.TreeStats("/docs")
	if err != nil {
		t.Fatal(err)
	}
	if s.Files != 3 || s.Dirs != 2 || s.Bytes != 60 {
		t.Fatalf("stats = %+v, want 3 files, 2 dirs, 60 bytes", s)
	}
}

func TestCloneIsolation(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/docs/f", []byte("original")); err != nil {
		t.Fatal(err)
	}
	clone := fs.Clone()

	// Mutating the clone must not affect the original (copy-on-write).
	h, err := clone.Open(1, "/docs/f", ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("ENCRYPTD")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := clone.WriteFile(1, "/docs/new", []byte("note")); err != nil {
		t.Fatal(err)
	}
	orig, _ := fs.ReadFile(1, "/docs/f")
	if string(orig) != "original" {
		t.Fatalf("original mutated through clone: %q", orig)
	}
	if _, err := fs.Stat("/docs/new"); !errors.Is(err, ErrNotExist) {
		t.Fatal("file created in clone appeared in original")
	}

	// And vice versa: mutating the original must not affect the clone.
	h2, err := fs.Open(1, "/docs/f", ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Write([]byte("CHANGED!")); err != nil {
		t.Fatal(err)
	}
	if err := h2.Close(); err != nil {
		t.Fatal(err)
	}
	cloned, _ := clone.ReadFile(1, "/docs/f")
	if string(cloned) != "ENCRYPTD" {
		t.Fatalf("clone mutated through original: %q", cloned)
	}
}

func TestClonePreservesReadOnly(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(1, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetReadOnly("/f", true); err != nil {
		t.Fatal(err)
	}
	clone := fs.Clone()
	if err := clone.Delete(1, "/f"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("clone lost read-only attribute: %v", err)
	}
}

func TestReadFileRawBypassesInterceptor(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(1, "/f", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	fs.SetInterceptor(rec)
	data, err := fs.ReadFileRaw("/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "secret" {
		t.Fatalf("raw read = %q", data)
	}
	if len(rec.pre)+len(rec.post) != 0 {
		t.Fatal("raw read passed through the interceptor")
	}
}

func TestReadFileRawByID(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/a/f", []byte("tracked")); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/a/f")
	if err := fs.Rename(1, "/a/f", "/a/g"); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFileRawByID(info.FileID)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "tracked" {
		t.Fatalf("by-ID read = %q", data)
	}
	if _, err := fs.ReadFileRawByID(99999); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing ID = %v, want ErrNotExist", err)
	}
}

func TestPathCleaning(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("docs/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "docs/sub/../sub/./f.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/docs/sub/f.txt"); err != nil {
		t.Fatalf("cleaned path not found: %v", err)
	}
}

func TestWriteReadPropertyRoundTrip(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/p"); err != nil {
		t.Fatal(err)
	}
	i := 0
	f := func(data []byte) bool {
		i++
		p := "/p/file" + string(rune('a'+i%26))
		if err := fs.WriteFile(1, p, data); err != nil {
			return false
		}
		got, err := fs.ReadFile(1, p)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteFileUnfiltered(b *testing.B) {
	fs := New()
	if err := fs.MkdirAll("/d"); err != nil {
		b.Fatal(err)
	}
	data := bytes.Repeat([]byte("x"), 16*1024)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.WriteFile(1, "/d/f", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCloneTree(b *testing.B) {
	fs := New()
	for i := 0; i < 50; i++ {
		dir := "/d" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if err := fs.MkdirAll(dir); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 20; j++ {
			p := dir + "/f" + string(rune('a'+j))
			if err := fs.WriteFile(1, p, bytes.Repeat([]byte("z"), 4096)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Clone()
	}
}

func TestConcurrentAccessSafe(t *testing.T) {
	// Multiple goroutines reading, writing and cloning concurrently must
	// not race (run under -race in CI).
	fs := New()
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := fs.WriteFile(0, "/d/f"+string(rune('a'+i)), bytes.Repeat([]byte{byte(i)}, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch (w + i) % 4 {
				case 0:
					if _, err := fs.ReadFile(w, "/d/f"+string(rune('a'+i%20))); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if err := fs.WriteFile(w, "/d/w"+string(rune('a'+w)), []byte("data")); err != nil {
						t.Error(err)
						return
					}
				case 2:
					clone := fs.Clone()
					if _, err := clone.ReadFile(w, "/d/f"+string(rune('a'+i%20))); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, err := fs.Stat("/d"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestHandleOnCloneIndependent(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(1, "/f", bytes.Repeat([]byte("x"), 1024)); err != nil {
		t.Fatal(err)
	}
	clone := fs.Clone()
	h, err := clone.Open(1, "/f", vfsReadWrite())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("MUTATED")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	orig, _ := fs.ReadFile(1, "/f")
	if string(orig[:7]) == "MUTATED" {
		t.Fatal("write through clone handle mutated the original")
	}
}

// vfsReadWrite avoids the exported-constant collision in older tests.
func vfsReadWrite() OpenFlag { return ReadWrite }
