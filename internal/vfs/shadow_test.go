package vfs

import (
	"errors"
	"testing"
)

func TestShadowCopyLifecycle(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(1, "/docs/report.txt", []byte("original")); err == nil {
		t.Fatal("write without parent dir should fail")
	}
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/docs/report.txt", []byte("original")); err != nil {
		t.Fatal(err)
	}
	fs.CreateShadowCopy("daily")
	if got := fs.ShadowCopies(); len(got) != 1 || got[0] != "daily" {
		t.Fatalf("ShadowCopies = %v", got)
	}

	// Ransom the live volume.
	if err := fs.WriteFile(1, "/docs/report.txt", []byte("ENCRYPTED!!!")); err != nil {
		t.Fatal(err)
	}

	// Recovery from the snapshot sees the original.
	snap, err := fs.RestoreShadowCopy("daily")
	if err != nil {
		t.Fatal(err)
	}
	content, err := snap.ReadFile(1, "/docs/report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(content) != "original" {
		t.Fatalf("snapshot content = %q", content)
	}

	// Deleting the snapshot removes the recovery path.
	if err := fs.DeleteShadowCopy("daily"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.RestoreShadowCopy("daily"); !errors.Is(err, ErrNoShadowCopy) {
		t.Fatalf("restore after delete = %v", err)
	}
	if err := fs.DeleteShadowCopy("daily"); !errors.Is(err, ErrNoShadowCopy) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestShadowCopyIsolatedFromLiveWrites(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/d/a", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	fs.CreateShadowCopy("s")
	// Restore twice: each restore is itself an isolated clone.
	r1, err := fs.RestoreShadowCopy("s")
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.WriteFile(1, "/d/a", []byte("mutated-restore")); err != nil {
		t.Fatal(err)
	}
	r2, err := fs.RestoreShadowCopy("s")
	if err != nil {
		t.Fatal(err)
	}
	content, _ := r2.ReadFile(1, "/d/a")
	if string(content) != "v1" {
		t.Fatalf("second restore polluted by first: %q", content)
	}
}

func TestShadowOpsBypassInterceptor(t *testing.T) {
	// Shadow-copy administration is volume-level, not user-data access:
	// it must not traverse the filter chain (the paper ignores these ops).
	fs := New()
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/d/a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	fs.SetInterceptor(rec)
	fs.CreateShadowCopy("s")
	if err := fs.DeleteShadowCopy("s"); err != nil {
		t.Fatal(err)
	}
	if len(rec.pre)+len(rec.post) != 0 {
		t.Fatalf("shadow ops passed through the filter: %d events", len(rec.post))
	}
}
