package versioned_test

import (
	"fmt"
	"testing"

	"cryptodrop/internal/vfs"
	"cryptodrop/internal/vfs/versioned"
)

// wrapAll arms a filesystem's mounts with capture into a fresh store.
func wrapAll(fs *vfs.FS, store *versioned.Store) {
	fs.WrapMounts(func(_ string, b vfs.Backend) vfs.Backend {
		return versioned.Wrap(b, store)
	})
}

// TestCaptureFirstTouchWins pins the retention rule: the pre-image kept for
// a (group, file) pair is the content before the group's FIRST destructive
// touch, no matter how many rewrites follow.
func TestCaptureFirstTouchWins(t *testing.T) {
	fs := vfs.New()
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/docs/a.txt", []byte("original")); err != nil {
		t.Fatal(err)
	}
	store := versioned.NewStore(0)
	wrapAll(fs, store)

	for i := 0; i < 3; i++ {
		if err := fs.WriteFile(2, "/docs/a.txt", []byte(fmt.Sprintf("encrypted-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	imgs := store.Take(2)
	if len(imgs) != 1 {
		t.Fatalf("retained %d pre-images, want 1", len(imgs))
	}
	if string(imgs[0].Data) != "original" || imgs[0].Path != "/docs/a.txt" {
		t.Fatalf("pre-image = %q at %s, want original", imgs[0].Data, imgs[0].Path)
	}
	if got := store.Take(2); got != nil {
		t.Fatalf("second Take returned %d images, want none", len(got))
	}
}

// TestCaptureSitesCoverDestructiveOps pins that every destructive shape —
// truncating open, in-place write, delete, rename-replace — retains the
// victim's pre-image, and that pure reads and plain renames retain nothing.
func TestCaptureSitesCoverDestructiveOps(t *testing.T) {
	fs := vfs.New()
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/docs/trunc.txt", "/docs/write.txt", "/docs/del.txt", "/docs/victim.txt", "/docs/moved.txt"} {
		if err := fs.WriteFile(1, p, []byte("keep:"+p)); err != nil {
			t.Fatal(err)
		}
	}
	store := versioned.NewStore(0)
	wrapAll(fs, store)

	// Truncating open.
	h, err := fs.Open(2, "/docs/trunc.txt", vfs.WriteOnly|vfs.Truncate)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// In-place write without truncate.
	h, err = fs.Open(2, "/docs/write.txt", vfs.WriteOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("XX")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// Delete.
	if err := fs.Delete(2, "/docs/del.txt"); err != nil {
		t.Fatal(err)
	}
	// Rename-replace retains the replaced target, not the moved file.
	if err := fs.Rename(2, "/docs/moved.txt", "/docs/victim.txt"); err != nil {
		t.Fatal(err)
	}
	// Non-destructive traffic: read and plain rename.
	if _, err := fs.ReadFile(2, "/docs/trunc.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(2, "/docs/victim.txt", "/docs/elsewhere.txt"); err != nil {
		t.Fatal(err)
	}

	imgs := store.Take(2)
	got := map[string]string{}
	for _, img := range imgs {
		got[img.Path] = string(img.Data)
	}
	want := map[string]string{
		"/docs/trunc.txt":  "keep:/docs/trunc.txt",
		"/docs/write.txt":  "keep:/docs/write.txt",
		"/docs/del.txt":    "keep:/docs/del.txt",
		"/docs/victim.txt": "keep:/docs/victim.txt",
	}
	if len(got) != len(want) {
		t.Fatalf("retained %v, want %v", got, want)
	}
	for p, data := range want {
		if got[p] != data {
			t.Fatalf("pre-image for %s = %q, want %q", p, got[p], data)
		}
	}
}

// TestGroupIsolationAndGroupOf pins that retention keys on the scoring
// group: two PIDs mapped to one group share a retention set, and Take for
// one group leaves another group's images alone.
func TestGroupIsolationAndGroupOf(t *testing.T) {
	fs := vfs.New()
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/docs/a.txt", "/docs/b.txt", "/docs/c.txt"} {
		if err := fs.WriteFile(1, p, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	store := versioned.NewStore(0)
	store.SetGroupOf(func(pid int) int {
		if pid == 20 || pid == 21 {
			return 20 // family root
		}
		return pid
	})
	wrapAll(fs, store)

	if err := fs.WriteFile(20, "/docs/a.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(21, "/docs/b.txt", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(30, "/docs/c.txt", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Groups != 2 || st.Files != 3 {
		t.Fatalf("stats = %+v, want 2 groups / 3 files", st)
	}
	if imgs := store.Take(20); len(imgs) != 2 {
		t.Fatalf("family group retained %d, want 2", len(imgs))
	}
	if imgs := store.Take(30); len(imgs) != 1 {
		t.Fatalf("solo group retained %d, want 1", len(imgs))
	}
}

// TestExemptAndRelease pins the two clearing paths: Exempt drops retained
// images and stops future capture; Release drops images but capture resumes
// on the group's next destructive touch.
func TestExemptAndRelease(t *testing.T) {
	fs := vfs.New()
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/docs/a.txt", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	store := versioned.NewStore(0)
	wrapAll(fs, store)

	if err := fs.WriteFile(5, "/docs/a.txt", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	store.Release(5)
	if st := store.Stats(); st.Files != 0 || st.Released != 1 {
		t.Fatalf("after release: %+v", st)
	}
	// Capture resumes after Release...
	if err := fs.WriteFile(5, "/docs/a.txt", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Files != 1 {
		t.Fatalf("capture did not resume after release: %+v", st)
	}
	// ...but never after Exempt.
	store.Exempt(5)
	if err := fs.WriteFile(5, "/docs/a.txt", []byte("v4")); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Files != 0 {
		t.Fatalf("exempt group still captured: %+v", st)
	}
}

// TestBudgetEvictsOldestGroup pins byte-budget retention: exceeding the
// budget evicts whole groups FIFO by first capture, sparing the group that
// is actively capturing.
func TestBudgetEvictsOldestGroup(t *testing.T) {
	fs := vfs.New()
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 1000)
	for i := 0; i < 4; i++ {
		if err := fs.WriteFile(1, fmt.Sprintf("/docs/f%d.txt", i), content); err != nil {
			t.Fatal(err)
		}
	}
	store := versioned.NewStore(2500) // room for two 1000-byte images
	wrapAll(fs, store)

	for i := 0; i < 4; i++ {
		pid := 100 + i
		if err := fs.WriteFile(pid, fmt.Sprintf("/docs/f%d.txt", i), []byte("enc")); err != nil {
			t.Fatal(err)
		}
	}
	st := store.Stats()
	if st.Bytes > 2500 {
		t.Fatalf("budget exceeded: %+v", st)
	}
	if st.Evicted != 2 {
		t.Fatalf("evicted %d, want 2 (oldest groups)", st.Evicted)
	}
	// The newest groups survive; the oldest were evicted.
	if imgs := store.Take(100); imgs != nil {
		t.Fatalf("oldest group survived eviction: %d images", len(imgs))
	}
	if imgs := store.Take(103); len(imgs) != 1 {
		t.Fatalf("newest group evicted: %d images", len(imgs))
	}
}

// TestCaptureCopiesNotAliases pins that retained bytes are private copies:
// rewriting the file after capture must not mutate the retained pre-image
// (the in-memory backend's reads alias live storage).
func TestCaptureCopiesNotAliases(t *testing.T) {
	fs := vfs.New()
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/docs/a.txt", []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	store := versioned.NewStore(0)
	wrapAll(fs, store)
	// Same-size in-place overwrite reuses the backend's slice capacity —
	// the aliasing hazard.
	h, err := fs.Open(9, "/docs/a.txt", vfs.WriteOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("BBBB")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	imgs := store.Take(9)
	if len(imgs) != 1 || string(imgs[0].Data) != "AAAA" {
		t.Fatalf("pre-image = %q, want AAAA", imgs[0].Data)
	}
}

// TestWrapUnwrapRoundTrip pins the monitor's attach/detach seam: wrapping
// installs capture on every mount, unwrapping restores the original
// backends, and content is untouched either way.
func TestWrapUnwrapRoundTrip(t *testing.T) {
	fs := vfs.New()
	if err := fs.Mount("/vol", vfs.NewMemory()); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/docs/a.txt", []byte("root-vol")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/vol/b.txt", []byte("mounted-vol")); err != nil {
		t.Fatal(err)
	}
	store := versioned.NewStore(0)
	wrapAll(fs, store)
	if err := fs.WriteFile(2, "/docs/a.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(2, "/vol/b.txt", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Files != 2 {
		t.Fatalf("both mounts should capture: %+v", st)
	}
	// Unwrap: capture stops, content still reads back.
	fs.WrapMounts(func(_ string, b vfs.Backend) vfs.Backend {
		if vb, ok := b.(*versioned.Backend); ok {
			return vb.Inner()
		}
		return b
	})
	store.Release(2)
	if err := fs.WriteFile(2, "/docs/a.txt", []byte("xx")); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Files != 0 {
		t.Fatalf("capture survived unwrap: %+v", st)
	}
	if got, _ := fs.ReadFile(1, "/vol/b.txt"); string(got) != "y" {
		t.Fatalf("content after unwrap = %q", got)
	}
}
