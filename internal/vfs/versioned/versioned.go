// Package versioned implements the pre-image retention layer of the
// detect-then-recover pipeline: a wrapping vfs.Backend that, via the
// router's PreImager capability, retains a copy-on-write pre-image of every
// file a not-yet-cleared scoring group modifies or deletes. The paper's
// thesis is that early detection bounds loss to a handful of files; pre-
// image retention closes the remaining gap by making even those files
// recoverable once the verdict lands.
//
// Pre-images live out-of-band in the Store — not in the filesystem
// namespace — so a ransomware family that wipes shadow copies before
// encrypting (TeslaCrypt, CryptoWall; §V-B) cannot reach them: shadow
// copies are files the attacker's process can enumerate and delete through
// the filesystem API, while the Store is reachable only from the analysis
// engine's side of the filter boundary.
//
// Retention is first-capture-wins per (group, file): the bytes saved are
// the file's content before the group's first destructive touch, which is
// exactly the state rollback must restore regardless of how many times the
// file is rewritten afterwards. A byte budget bounds memory; when exceeded,
// whole-group evictions proceed FIFO by capture order. Groups exonerated by
// the engine (process closed clean, session idle-evicted) release their
// pre-images immediately, and groups the operator explicitly allows are
// exempted from capture entirely — so steady-state benign traffic costs
// transient retention only, and Monitor-exempt processes cost nothing.
package versioned

import (
	"sync"

	"cryptodrop/internal/vfs"
)

// PreImage is one retained file state: the content a file held before the
// suspect group's first destructive touch.
type PreImage struct {
	// ID is the stable router file ID the content belonged to.
	ID uint64
	// Path is the full router path at capture time — the recovery target
	// when the ID no longer exists (the attacker deleted or replaced it).
	Path string
	// Data is the retained content (a private copy).
	Data []byte
}

// Stats summarises a Store's retention state.
type Stats struct {
	// Groups is the number of scoring groups with live pre-images.
	Groups int
	// Files is the number of retained pre-images across all groups.
	Files int
	// Bytes is the retained content size.
	Bytes int64
	// Captured counts every pre-image ever taken.
	Captured int64
	// Released counts pre-images dropped by exoneration or exemption.
	Released int64
	// Evicted counts pre-images dropped by budget pressure.
	Evicted int64
}

// groupImages is one group's retention set, insertion-ordered for
// deterministic recovery.
type groupImages struct {
	byID  map[uint64]int // file ID -> index into list
	list  []PreImage
	bytes int64
}

// Store retains pre-images grouped by scoring group, within a byte budget.
// One Store serves every mount of a filesystem; all methods are safe for
// concurrent use.
type Store struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	groupOf func(pid int) int
	exempt  map[int]bool
	groups  map[int]*groupImages
	// order lists groups FIFO by first capture, the budget eviction order.
	order    []int
	captured int64
	released int64
	evicted  int64
}

// NewStore returns a Store retaining at most budget bytes of pre-image
// content (<= 0 means unbounded). Until SetGroupOf is called, the capturing
// process's PID is its own group.
func NewStore(budget int64) *Store {
	return &Store{
		budget: budget,
		exempt: make(map[int]bool),
		groups: make(map[int]*groupImages),
	}
}

// SetGroupOf installs the PID-to-scoring-group mapping, which must match
// the engine's FamilyOf so exoneration and recovery resolve the same groups
// capture does. Pass nil to revert to identity.
func (s *Store) SetGroupOf(fn func(pid int) int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.groupOf = fn
}

// Exempt permanently excludes a group from capture and drops anything
// already retained for it — the operator cleared this program (Monitor
// allow-listing), so rollback must never target it again.
func (s *Store) Exempt(group int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.exempt[group] = true
	s.dropLocked(group, &s.released)
}

// Release drops a group's retained pre-images without exempting it from
// future capture — the engine exonerated the group (closed clean or
// idle-evicted), but a future process in the same group starts suspect
// again.
func (s *Store) Release(group int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropLocked(group, &s.released)
}

// Take removes and returns a group's retained pre-images in capture order —
// the recovery coordinator's rollback set. The caller owns the result;
// taking twice returns nil.
func (s *Store) Take(group int) []PreImage {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[group]
	if !ok {
		return nil
	}
	s.removeGroupLocked(group, g)
	return g.list
}

// Stats returns a snapshot of retention counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Groups:   len(s.groups),
		Bytes:    s.used,
		Captured: s.captured,
		Released: s.released,
		Evicted:  s.evicted,
	}
	for _, g := range s.groups {
		st.Files += len(g.list)
	}
	return st
}

// capture retains content for (group-of-pid, id) if not already retained
// and the group is not exempt. It copies data, which may alias backend
// storage.
func (s *Store) capture(pid int, id uint64, path string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	group := pid
	if s.groupOf != nil {
		group = s.groupOf(pid)
	}
	if s.exempt[group] {
		return
	}
	g, ok := s.groups[group]
	if !ok {
		g = &groupImages{byID: make(map[uint64]int)}
		s.groups[group] = g
		s.order = append(s.order, group)
	}
	if _, ok := g.byID[id]; ok {
		return
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	g.byID[id] = len(g.list)
	g.list = append(g.list, PreImage{ID: id, Path: path, Data: buf})
	g.bytes += int64(len(buf))
	s.used += int64(len(buf))
	s.captured++
	s.enforceBudgetLocked(group)
}

// enforceBudgetLocked evicts whole groups FIFO by first capture until the
// budget is met, sparing the group that just captured (evicting the active
// attacker's own pre-images would defeat recovery).
func (s *Store) enforceBudgetLocked(spare int) {
	if s.budget <= 0 {
		return
	}
	for s.used > s.budget {
		victim, ok := s.oldestGroupLocked(spare)
		if !ok {
			return
		}
		s.dropLocked(victim, &s.evicted)
	}
}

// oldestGroupLocked returns the FIFO-oldest live group other than spare.
func (s *Store) oldestGroupLocked(spare int) (int, bool) {
	for _, group := range s.order {
		if group == spare {
			continue
		}
		if _, ok := s.groups[group]; ok {
			return group, true
		}
	}
	return 0, false
}

// dropLocked removes a group's retention set, attributing the count to the
// given counter.
func (s *Store) dropLocked(group int, counter *int64) {
	g, ok := s.groups[group]
	if !ok {
		return
	}
	*counter += int64(len(g.list))
	s.removeGroupLocked(group, g)
}

// removeGroupLocked unlinks a group from the store's indexes.
func (s *Store) removeGroupLocked(group int, g *groupImages) {
	s.used -= g.bytes
	delete(s.groups, group)
	for i, o := range s.order {
		if o == group {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Backend wraps an inner content backend with pre-image capture. It
// delegates every content operation unchanged and implements the router's
// PreImager capability: before a destructive mutation it reads the file's
// current content from the inner backend and offers it to the Store.
type Backend struct {
	inner vfs.Backend
	store *Store
}

// Wrap layers pre-image capture over inner, retaining into store. Install
// with FS.WrapMounts so every mount of a filesystem feeds one store.
func Wrap(inner vfs.Backend, store *Store) *Backend {
	return &Backend{inner: inner, store: store}
}

var (
	_ vfs.Backend   = (*Backend)(nil)
	_ vfs.PreImager = (*Backend)(nil)
	_ vfs.Cloner    = (*Backend)(nil)
)

// Inner returns the wrapped backend — the unwrap seam for monitor shutdown.
func (b *Backend) Inner() vfs.Backend { return b.inner }

// Store returns the retention store this backend captures into.
func (b *Backend) Store() *Store { return b.store }

// PreImage implements vfs.PreImager: called by the router, under its lock,
// after the interceptor has passed a destructive operation and before the
// inner backend mutates content.
func (b *Backend) PreImage(id uint64, path string, pid int, kind vfs.OpKind) {
	data, _, err := b.inner.Read(id, 0, -1)
	if err != nil {
		return
	}
	b.store.capture(pid, id, path, data)
}

// Open implements vfs.Backend.
func (b *Backend) Open(id uint64, path string, create, truncate bool) error {
	return b.inner.Open(id, path, create, truncate)
}

// Read implements vfs.Backend.
func (b *Backend) Read(id uint64, off, n int64) ([]byte, int64, error) {
	return b.inner.Read(id, off, n)
}

// Write implements vfs.Backend.
func (b *Backend) Write(id uint64, off int64, data []byte) (int64, error) {
	return b.inner.Write(id, off, data)
}

// Close implements vfs.Backend.
func (b *Backend) Close(id uint64) error { return b.inner.Close(id) }

// Delete implements vfs.Backend.
func (b *Backend) Delete(id uint64) error { return b.inner.Delete(id) }

// Rename implements vfs.Backend.
func (b *Backend) Rename(id uint64, oldPath, newPath string) error {
	return b.inner.Rename(id, oldPath, newPath)
}

// Stat implements vfs.Backend.
func (b *Backend) Stat(id uint64) (int64, error) { return b.inner.Stat(id) }

// CloneBackend implements vfs.Cloner when the inner backend does: the clone
// is the plain inner clone, without capture — cloned filesystems are
// experiment copies, not monitored volumes.
func (b *Backend) CloneBackend() vfs.Backend {
	if c, ok := b.inner.(vfs.Cloner); ok {
		return c.CloneBackend()
	}
	return nil
}
