package versioned_test

import (
	"bytes"
	"fmt"
	"testing"

	"cryptodrop/internal/vfs"
	"cryptodrop/internal/vfs/versioned"
)

// benchFS builds a filesystem with n pre-populated 16 KiB files and arms it
// with a fresh versioned store.
func benchFS(b *testing.B, n int) (*vfs.FS, *versioned.Store, []string) {
	b.Helper()
	fs := vfs.New()
	if err := fs.MkdirAll("/d"); err != nil {
		b.Fatal(err)
	}
	data := bytes.Repeat([]byte("x"), 16*1024)
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/d/f%04d", i)
		if err := fs.WriteFile(1, paths[i], data); err != nil {
			b.Fatal(err)
		}
	}
	store := versioned.NewStore(0)
	fs.WrapMounts(func(_ string, bk vfs.Backend) vfs.Backend {
		return versioned.Wrap(bk, store)
	})
	return fs, store, paths
}

// BenchmarkVersionedWriteExempt measures the wrapper's pure delegation cost:
// the writing group is exempt, so every write skips capture. Compare against
// internal/vfs BenchmarkWriteFileUnfiltered for the wrap overhead.
func BenchmarkVersionedWriteExempt(b *testing.B) {
	fs, store, paths := benchFS(b, 1)
	store.Exempt(2)
	data := bytes.Repeat([]byte("y"), 16*1024)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.WriteFile(2, paths[0], data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVersionedWriteRetained measures the steady-state cost for an
// unclear (retained) group whose pre-image for the file is already held:
// every write after the first hits the first-capture-wins map and skips the
// copy.
func BenchmarkVersionedWriteRetained(b *testing.B) {
	fs, _, paths := benchFS(b, 1)
	data := bytes.Repeat([]byte("y"), 16*1024)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.WriteFile(2, paths[0], data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVersionedWriteFirstCapture measures the full CoW capture cost per
// write: the group is released every iteration so each write re-captures the
// 16 KiB pre-image (read + copy + store insert + drop).
func BenchmarkVersionedWriteFirstCapture(b *testing.B) {
	fs, store, paths := benchFS(b, 1)
	data := bytes.Repeat([]byte("y"), 16*1024)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.WriteFile(2, paths[0], data); err != nil {
			b.Fatal(err)
		}
		store.Release(2)
	}
}

// BenchmarkRecoveryRollback measures end-to-end rollback throughput: restore
// 256 retained 16 KiB pre-images into the filesystem by stable ID.
func BenchmarkRecoveryRollback(b *testing.B) {
	const files = 256
	enc := bytes.Repeat([]byte("e"), 16*1024)
	b.SetBytes(files * 16 * 1024)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fs, store, paths := benchFS(b, files)
		for _, p := range paths {
			if err := fs.WriteFile(2, p, enc); err != nil {
				b.Fatal(err)
			}
		}
		imgs := store.Take(2)
		if len(imgs) != files {
			b.Fatalf("retained %d, want %d", len(imgs), files)
		}
		b.StartTimer()
		for _, img := range imgs {
			if err := fs.RestoreFileRawByID(img.ID, img.Data); err != nil {
				b.Fatal(err)
			}
		}
	}
}
