package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Local is an OS-directory-backed content store: every router file lives as
// a real file under dir, at its mount-relative path. It gives cdlive/cdhost
// deployments a mount whose bytes survive the process — and the conformance
// suite a second, structurally different backend to pin the router's
// backend-neutrality against. The router still owns the namespace: Local
// only mirrors content, so out-of-band edits to dir are not part of the
// model.
type Local struct {
	dir string
	// paths maps router file IDs to mount-relative paths; maintained by
	// Open/Rename/Delete, all called under the router lock.
	paths map[uint64]string
}

// NewLocal returns a backend storing content under dir, which must exist
// (create it with os.MkdirAll). The directory should start empty: files
// enter a mount through the router, never out-of-band.
func NewLocal(dir string) *Local {
	return &Local{dir: dir, paths: make(map[uint64]string)}
}

var _ Backend = (*Local)(nil)

// osPath maps a mount-relative path onto the backing directory.
func (l *Local) osPath(rel string) string {
	return filepath.Join(l.dir, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
}

// resolve returns the OS path for id.
func (l *Local) resolve(id uint64) (string, error) {
	rel, ok := l.paths[id]
	if !ok {
		return "", fmt.Errorf("local: file id %d: %w", id, ErrNotExist)
	}
	return l.osPath(rel), nil
}

// Open implements Backend.
func (l *Local) Open(id uint64, path string, create, truncate bool) error {
	if create {
		if _, ok := l.paths[id]; ok {
			return fmt.Errorf("local: file id %d: %w", id, ErrExist)
		}
		p := l.osPath(path)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			return fmt.Errorf("local: %s: %v", path, err)
		}
		f, err := os.OpenFile(p, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("local: %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("local: %s: %v", path, err)
		}
		l.paths[id] = path
		return nil
	}
	p, err := l.resolve(id)
	if err != nil {
		return err
	}
	if truncate {
		if err := os.Truncate(p, 0); err != nil {
			return fmt.Errorf("local: truncate id %d: %v", id, err)
		}
	}
	return nil
}

// Read implements Backend.
func (l *Local) Read(id uint64, off, n int64) ([]byte, int64, error) {
	p, err := l.resolve(id)
	if err != nil {
		return nil, 0, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		return nil, 0, l.wrapFS(id, err)
	}
	size := fi.Size()
	if off < 0 || off >= size {
		return nil, size, nil
	}
	end := size
	if n >= 0 && off+n < size {
		end = off + n
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, 0, l.wrapFS(id, err)
	}
	defer f.Close()
	buf := make([]byte, end-off)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, 0, fmt.Errorf("local: read id %d: %v", id, err)
	}
	return buf, size, nil
}

// Write implements Backend. WriteAt past the end leaves a zero-filled gap,
// matching the in-memory backend.
func (l *Local) Write(id uint64, off int64, data []byte) (int64, error) {
	p, err := l.resolve(id)
	if err != nil {
		return 0, err
	}
	f, err := os.OpenFile(p, os.O_WRONLY, 0o644)
	if err != nil {
		return 0, l.wrapFS(id, err)
	}
	if _, err := f.WriteAt(data, off); err != nil {
		_ = f.Close()
		return 0, fmt.Errorf("local: write id %d: %v", id, err)
	}
	fi, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return 0, fmt.Errorf("local: stat id %d: %v", id, err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("local: close id %d: %v", id, err)
	}
	return fi.Size(), nil
}

// Close implements Backend (no per-handle OS descriptors are kept).
func (l *Local) Close(id uint64) error { return nil }

// Delete implements Backend.
func (l *Local) Delete(id uint64) error {
	p, err := l.resolve(id)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil {
		return l.wrapFS(id, err)
	}
	delete(l.paths, id)
	return nil
}

// Rename implements Backend.
func (l *Local) Rename(id uint64, oldPath, newPath string) error {
	p, err := l.resolve(id)
	if err != nil {
		return err
	}
	np := l.osPath(newPath)
	if err := os.MkdirAll(filepath.Dir(np), 0o755); err != nil {
		return fmt.Errorf("local: rename id %d: %v", id, err)
	}
	if err := os.Rename(p, np); err != nil {
		return fmt.Errorf("local: rename id %d: %v", id, err)
	}
	l.paths[id] = newPath
	return nil
}

// Stat implements Backend.
func (l *Local) Stat(id uint64) (int64, error) {
	p, err := l.resolve(id)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		return 0, l.wrapFS(id, err)
	}
	return fi.Size(), nil
}

// wrapFS translates an OS not-exist into the package sentinel so callers
// dispatch identically across backends.
func (l *Local) wrapFS(id uint64, err error) error {
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("local: file id %d: %w", id, ErrNotExist)
	}
	return fmt.Errorf("local: file id %d: %v", id, err)
}
