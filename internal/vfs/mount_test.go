package vfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// backends enumerates the configurations the router must behave identically
// on: the default in-memory backend, an OS-dir Local at "/", and a mixed
// tree with a Local mounted over part of the namespace.
func backends(t *testing.T) map[string]func() *FS {
	t.Helper()
	return map[string]func() *FS{
		"memory": func() *FS { return New() },
		"local": func() *FS {
			return NewWith(NewLocal(t.TempDir()))
		},
		"mounted": func() *FS {
			fs := New()
			if err := fs.Mount("/docs", NewLocal(t.TempDir())); err != nil {
				t.Fatal(err)
			}
			return fs
		},
	}
}

// TestBackendRoundTrip pins basic content behaviour across every backend
// configuration: write/read round trip, overwrite, truncate, offset growth,
// delete, rename keeping content and file ID.
func TestBackendRoundTrip(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			if err := fs.MkdirAll("/docs/sub"); err != nil {
				t.Fatal(err)
			}
			if err := fs.WriteFile(1, "/docs/sub/a.txt", []byte("hello world")); err != nil {
				t.Fatal(err)
			}
			got, err := fs.ReadFile(1, "/docs/sub/a.txt")
			if err != nil || string(got) != "hello world" {
				t.Fatalf("ReadFile = %q, %v", got, err)
			}
			info, err := fs.Stat("/docs/sub/a.txt")
			if err != nil || info.Size != 11 {
				t.Fatalf("Stat = %+v, %v", info, err)
			}
			id := info.FileID

			// Partial overwrite at an offset, then growth past the end.
			h, err := fs.Open(1, "/docs/sub/a.txt", WriteOnly)
			if err != nil {
				t.Fatal(err)
			}
			h.SeekTo(6)
			if _, err := h.Write([]byte("backend!")); err != nil {
				t.Fatal(err)
			}
			if err := h.Close(); err != nil {
				t.Fatal(err)
			}
			got, _ = fs.ReadFile(1, "/docs/sub/a.txt")
			if string(got) != "hello backend!" {
				t.Fatalf("after offset write: %q", got)
			}

			// Rename keeps content and stable ID.
			if err := fs.Rename(1, "/docs/sub/a.txt", "/docs/sub/b.txt"); err != nil {
				t.Fatal(err)
			}
			info2, err := fs.Stat("/docs/sub/b.txt")
			if err != nil || info2.FileID != id {
				t.Fatalf("rename changed identity: %+v, %v (want id %d)", info2, err, id)
			}
			raw, err := fs.ReadFileRawByID(id)
			if err != nil || string(raw) != "hello backend!" {
				t.Fatalf("ReadFileRawByID = %q, %v", raw, err)
			}

			// Truncating reopen empties the file.
			h, err = fs.Open(1, "/docs/sub/b.txt", WriteOnly|Truncate)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Close(); err != nil {
				t.Fatal(err)
			}
			if info, _ := fs.Stat("/docs/sub/b.txt"); info.Size != 0 {
				t.Fatalf("size after truncate = %d", info.Size)
			}

			if err := fs.Delete(1, "/docs/sub/b.txt"); err != nil {
				t.Fatal(err)
			}
			if _, err := fs.Stat("/docs/sub/b.txt"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("stat after delete = %v", err)
			}
			if _, err := fs.ReadFileRawByID(id); !errors.Is(err, ErrNotExist) {
				t.Fatalf("raw read after delete = %v", err)
			}
		})
	}
}

// TestBackendOpStreamIdentical pins that the interceptor sees a bit-identical
// op stream regardless of backend configuration — the property the
// cross-backend conformance suite scales up to full attack traces.
func TestBackendOpStreamIdentical(t *testing.T) {
	workload := func(fs *FS) error {
		if err := fs.MkdirAll("/docs"); err != nil {
			return err
		}
		if err := fs.WriteFile(7, "/docs/x.txt", []byte("abcdefgh")); err != nil {
			return err
		}
		if _, err := fs.ReadFile(7, "/docs/x.txt"); err != nil {
			return err
		}
		if err := fs.Rename(7, "/docs/x.txt", "/docs/y.txt"); err != nil {
			return err
		}
		return fs.Delete(7, "/docs/y.txt")
	}
	var want []string
	for _, name := range []string{"memory", "local", "mounted"} {
		mk := backends(t)[name]
		fs := mk()
		rec := &opRecorder{}
		// Attach after building dirs so every config records the same ops.
		fs.SetInterceptor(rec)
		if err := workload(fs); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fs.SetInterceptor(nil)
		if want == nil {
			want = rec.log
			continue
		}
		if !reflect.DeepEqual(rec.log, want) {
			t.Fatalf("%s op stream diverged:\n got %v\nwant %v", name, rec.log, want)
		}
	}
}

type opRecorder struct{ log []string }

func (r *opRecorder) PreOp(op *Op) error { return nil }
func (r *opRecorder) PostOp(op *Op) {
	r.log = append(r.log, fmt.Sprintf("%s %s->%s id=%d rep=%d off=%d size=%d data=%q wrote=%v",
		op.Kind, op.Path, op.NewPath, op.FileID, op.ReplacedID, op.Offset, op.Size, op.Data, op.Wrote))
}

// TestLocalBackendPersistsToDisk pins Local's defining property: content
// lives as real files under the backing directory, mirrored through
// creates, writes and renames.
func TestLocalBackendPersistsToDisk(t *testing.T) {
	dir := t.TempDir()
	fs := NewWith(NewLocal(dir))
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/docs/a.txt", []byte("on disk")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "docs", "a.txt"))
	if err != nil || string(data) != "on disk" {
		t.Fatalf("backing file = %q, %v", data, err)
	}
	if err := fs.Rename(1, "/docs/a.txt", "/docs/b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "docs", "a.txt")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("old backing path survived rename: %v", err)
	}
	data, err = os.ReadFile(filepath.Join(dir, "docs", "b.txt"))
	if err != nil || string(data) != "on disk" {
		t.Fatalf("renamed backing file = %q, %v", data, err)
	}
	if err := fs.Delete(1, "/docs/b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "docs", "b.txt")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("backing file survived delete: %v", err)
	}
}

// TestMountResolution pins longest-prefix routing: files land in the backend
// whose mount prefix is the most specific match.
func TestMountResolution(t *testing.T) {
	fs := New()
	users := NewMemory()
	docs := NewMemory()
	if err := fs.Mount("/Users", users); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mount("/Users/victim/Documents", docs); err != nil {
		t.Fatal(err)
	}
	if got := fs.Mounts(); !reflect.DeepEqual(got, []string{"/Users/victim/Documents", "/Users", "/"}) {
		t.Fatalf("Mounts() = %v", got)
	}
	if err := fs.WriteFile(1, "/Users/victim/Documents/a.txt", []byte("doc")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/Users/victim/b.txt", []byte("user")); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/tmp"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/tmp/c.txt", []byte("root")); err != nil {
		t.Fatal(err)
	}
	count := func(b *Memory) int { return len(b.files) }
	if count(docs) != 1 || count(users) != 1 {
		t.Fatalf("backend file counts: docs=%d users=%d", count(docs), count(users))
	}
	// Content reads back identically wherever it landed.
	for p, want := range map[string]string{
		"/Users/victim/Documents/a.txt": "doc",
		"/Users/victim/b.txt":           "user",
		"/tmp/c.txt":                    "root",
	} {
		got, err := fs.ReadFile(1, p)
		if err != nil || string(got) != want {
			t.Fatalf("ReadFile(%s) = %q, %v", p, got, err)
		}
	}
}

// TestMountRejections pins Mount's precondition errors: duplicate prefix,
// and mounting over a subtree that already holds files.
func TestMountRejections(t *testing.T) {
	fs := New()
	if err := fs.Mount("/data", NewMemory()); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mount("/data", NewMemory()); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate mount = %v", err)
	}
	if err := fs.WriteFile(1, "/stuff/a.txt", nil); err == nil {
		t.Fatal("write without parent dir should fail")
	}
	if err := fs.MkdirAll("/stuff"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/stuff/a.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mount("/stuff", NewMemory()); !errors.Is(err, ErrExist) {
		t.Fatalf("mount over populated subtree = %v", err)
	}
}

// TestRenameAcrossMountsFails pins the typed cross-mount rename refusal:
// a rename whose destination resolves to a different mount returns
// ErrCrossMount, mutates nothing, and emits no interceptor events (the
// refusal happens at the namespace layer, like renaming onto a directory).
func TestRenameAcrossMountsFails(t *testing.T) {
	fs := New()
	if err := fs.Mount("/vol", NewMemory()); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/plain"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/plain/a.txt", []byte("stay")); err != nil {
		t.Fatal(err)
	}
	rec := &opRecorder{}
	fs.SetInterceptor(rec)
	err := fs.Rename(1, "/plain/a.txt", "/vol/a.txt")
	if !errors.Is(err, ErrCrossMount) {
		t.Fatalf("cross-mount rename = %v, want ErrCrossMount", err)
	}
	fs.SetInterceptor(nil)
	if len(rec.log) != 0 {
		t.Fatalf("cross-mount rename emitted ops: %v", rec.log)
	}
	// Source untouched, destination never created.
	if got, err := fs.ReadFile(1, "/plain/a.txt"); err != nil || string(got) != "stay" {
		t.Fatalf("source after failed rename = %q, %v", got, err)
	}
	if _, err := fs.Stat("/vol/a.txt"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("destination exists after failed rename: %v", err)
	}
	// Same-mount renames still work on both sides of the boundary.
	if err := fs.WriteFile(1, "/vol/x.txt", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(1, "/vol/x.txt", "/vol/y.txt"); err != nil {
		t.Fatalf("same-mount rename inside mount: %v", err)
	}
	if err := fs.Rename(1, "/plain/a.txt", "/plain/b.txt"); err != nil {
		t.Fatalf("same-mount rename at root: %v", err)
	}
}

// TestCloneMaterialisesLocalMounts pins Clone's backend handling: in-memory
// mounts clone copy-on-write, Local mounts are materialised into memory, and
// the clone is fully isolated from the original (and from the OS directory).
func TestCloneMaterialisesLocalMounts(t *testing.T) {
	dir := t.TempDir()
	fs := New()
	if err := fs.Mount("/docs", NewLocal(dir)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/docs/a.txt", []byte("original")); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/mem"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/mem/m.txt", []byte("memory")); err != nil {
		t.Fatal(err)
	}
	clone := fs.Clone()
	// Writes to the clone must not reach the original or the OS directory.
	if err := clone.WriteFile(1, "/docs/a.txt", []byte("clone-edit")); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile(1, "/docs/a.txt"); string(got) != "original" {
		t.Fatalf("original changed by clone write: %q", got)
	}
	if data, err := os.ReadFile(filepath.Join(dir, "a.txt")); err != nil || string(data) != "original" {
		t.Fatalf("backing file changed by clone write: %q, %v", data, err)
	}
	// And vice versa.
	if err := fs.WriteFile(1, "/mem/m.txt", []byte("live-edit")); err != nil {
		t.Fatal(err)
	}
	if got, _ := clone.ReadFile(1, "/mem/m.txt"); string(got) != "memory" {
		t.Fatalf("clone changed by original write: %q", got)
	}
	if got, _ := clone.ReadFile(1, "/docs/a.txt"); string(got) != "clone-edit" {
		t.Fatalf("clone content = %q", got)
	}
}

// TestRestoreFileRaw pins the privileged recovery writes: by-ID restore
// follows the file wherever it moved, path restore recreates deleted files,
// and neither emits interceptor events or honours read-only attributes.
func TestRestoreFileRaw(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(1, "/docs/a.txt", []byte("v1-original")); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/docs/a.txt")
	if err := fs.Rename(1, "/docs/a.txt", "/docs/a.txt.locked"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetReadOnly("/docs/a.txt.locked", true); err != nil {
		t.Fatal(err)
	}
	rec := &opRecorder{}
	fs.SetInterceptor(rec)
	if err := fs.RestoreFileRawByID(info.FileID, []byte("v1")); err != nil {
		t.Fatalf("RestoreFileRawByID: %v", err)
	}
	if err := fs.RestoreFileRaw("/docs/gone/b.txt", []byte("recreated")); err != nil {
		t.Fatalf("RestoreFileRaw: %v", err)
	}
	fs.SetInterceptor(nil)
	if len(rec.log) != 0 {
		t.Fatalf("restores emitted ops: %v", rec.log)
	}
	if got, err := fs.ReadFileRawByID(info.FileID); err != nil || string(got) != "v1" {
		t.Fatalf("restored by ID = %q, %v", got, err)
	}
	if info2, _ := fs.Stat("/docs/a.txt.locked"); info2.Size != 2 {
		t.Fatalf("restored size = %d, want 2", info2.Size)
	}
	if got, err := fs.ReadFileRaw("/docs/gone/b.txt"); err != nil || string(got) != "recreated" {
		t.Fatalf("recreated = %q, %v", got, err)
	}
	if err := fs.RestoreFileRawByID(999999, []byte("x")); !errors.Is(err, ErrNotExist) {
		t.Fatalf("restore of unknown ID = %v", err)
	}
}
