// Package vfs implements the virtual filesystem layer that substitutes for
// the Windows filesystem and the kernel minifilter attachment the paper
// instruments (§IV-C, Fig. 2). It is structured as a mount router over
// pluggable content backends:
//
//   - FS, the router, owns everything namespace- and policy-shaped: the
//     directory tree, stable file-ID allocation, read-only attributes,
//     rename tracking, the interceptor chain, telemetry and shadow copies.
//     Every backend inherits those semantics unchanged.
//   - A Backend stores content keyed by router-assigned stable file IDs.
//     Memory (the default, behind New) keeps bytes in process with
//     copy-on-write cloning; Local mirrors content into a real OS
//     directory; the versioned extension (internal/vfs/versioned) wraps any
//     backend with copy-on-write pre-image retention for detect-then-
//     recover rollback.
//   - Mount(prefix, backend) attaches additional backends with
//     longest-prefix resolution, so one monitored session spans
//     heterogeneous storage. Renames never cross a mount boundary
//     (ErrCrossMount), matching cross-volume MoveFileEx.
//
// Every create/open/read/write/close/delete/rename is routed through an
// optional Interceptor before and after execution, carrying the process ID,
// the payload bytes and file identity — the same "notifications, file data,
// context" stream the CryptoDrop kernel driver forwards to its analysis
// engine. The interceptor may veto an operation, which is how a detection
// verdict suspends a process's disk access. The analysis engine itself
// never consumes vfs.Op directly: internal/vfsadapter translates each op
// into the backend-neutral core.Event the engine scores.
//
// Files carry stable IDs so state can be tracked across renames and moves —
// the careful move tracking §III requires for Class B ransomware — and the
// filesystem supports read-only attributes, copy-on-write cloning for
// repeated experiments, and Windows-like failure semantics (deleting or
// overwriting a read-only file fails).
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"

	"cryptodrop/internal/telemetry"
)

// Filesystem errors.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrReadOnly = errors.New("vfs: file is read-only")
	ErrClosed   = errors.New("vfs: handle is closed")
	ErrNotEmpty = errors.New("vfs: directory not empty")
	ErrBadFlag  = errors.New("vfs: invalid open flags")
)

// OpKind identifies a filesystem operation.
type OpKind int

// Operation kinds delivered to interceptors.
const (
	OpCreate OpKind = iota + 1
	OpOpen
	OpRead
	OpWrite
	OpClose
	OpDelete
	OpRename
)

// String returns the operation name.
func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpOpen:
		return "open"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpClose:
		return "close"
	case OpDelete:
		return "delete"
	case OpRename:
		return "rename"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// OpenFlag controls how a file is opened.
type OpenFlag int

// Open flags; combine with bitwise OR.
const (
	ReadOnly  OpenFlag = 1 << iota // open for reading
	WriteOnly                      // open for writing
	Create                         // create if missing
	Truncate                       // truncate on open
	Append                         // writes go to the end
)

// ReadWrite opens for both reading and writing.
const ReadWrite = ReadOnly | WriteOnly

// Op describes one filesystem operation as seen by an interceptor.
type Op struct {
	// Kind is the operation type.
	Kind OpKind
	// PID is the process performing the operation.
	PID int
	// Path is the canonical file path. For OpRename it is the source.
	Path string
	// NewPath is the rename destination (OpRename only).
	NewPath string
	// FileID is the stable identity of the file operated on.
	FileID uint64
	// ReplacedID is the identity of a file replaced by a rename, or 0.
	ReplacedID uint64
	// Data is the operation payload: bytes written for OpWrite, bytes read
	// for OpRead (populated post-operation). Interceptors must treat it as
	// read-only.
	Data []byte
	// Offset is the file offset of a read or write.
	Offset int64
	// Size is the file size after the operation completes.
	Size int64
	// Flags are the open flags (OpOpen/OpCreate).
	Flags OpenFlag
	// Wrote reports, for OpClose, whether the handle performed any write.
	Wrote bool
}

// Interceptor observes and mediates filesystem operations, playing the role
// of the filter-manager attachment in Fig. 2 of the paper.
type Interceptor interface {
	// PreOp is invoked before the operation executes. Returning a non-nil
	// error vetoes the operation; the error is returned to the caller.
	// For OpRead, Data is not yet populated.
	PreOp(op *Op) error
	// PostOp is invoked after a successful operation with the completed Op.
	PostOp(op *Op)
}

type node interface{ isNode() }

// entry is one file in the router namespace: identity, attributes and the
// mount whose backend stores its content. The router tracks size itself —
// every content mutation flows through it — so the hot path never round-
// trips a backend Stat.
type entry struct {
	id       uint64
	size     int64
	readOnly bool
	m        *mount
	// mf short-circuits the Backend interface when the mount's backend is
	// the plain in-package Memory store (the default); nil whenever the
	// mount is wrapped or foreign, which forces the full interface path.
	mf *memFile
}

func (*entry) isNode() {}

type dir struct {
	children map[string]node
}

func (*dir) isNode() {}

func newDir() *dir { return &dir{children: make(map[string]node)} }

// FS is the mount router: a filesystem namespace over one or more content
// backends. The zero value is not usable; create one with New (in-memory
// backend at "/") or NewWith. All methods are safe for concurrent use.
type FS struct {
	mu          sync.Mutex
	root        *dir
	nextID      uint64
	mounts      []*mount
	ids         map[uint64]*entry
	interceptor Interceptor
	opCounts    map[OpKind]int64
	// shadowCopies holds volume snapshots (see shadow.go); lazily created.
	shadowCopies *shadowStore
	// telOps / telBytes expose per-kind operation throughput when a
	// telemetry registry is attached (see SetTelemetry); nil otherwise.
	telOps   [OpRename + 1]*telemetry.Counter
	telBytes [OpRename + 1]*telemetry.Counter
	telOn    bool
}

// New returns an empty filesystem backed by a single in-memory backend
// mounted at "/".
func New() *FS { return NewWith(NewMemory()) }

// NewWith returns an empty filesystem with b mounted at "/". Additional
// backends attach with Mount.
func NewWith(b Backend) *FS {
	return &FS{
		root:     newDir(),
		nextID:   1,
		mounts:   []*mount{newMount("/", b)},
		ids:      make(map[uint64]*entry),
		opCounts: make(map[OpKind]int64),
	}
}

// SetInterceptor installs the interceptor through which every subsequent
// operation is routed. Passing nil detaches it.
func (fs *FS) SetInterceptor(ic Interceptor) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.interceptor = ic
}

// SetTelemetry attaches a registry counting completed operations and moved
// payload bytes by kind (vfs_ops_total / vfs_op_bytes_total). Passing nil
// detaches it.
func (fs *FS) SetTelemetry(reg *telemetry.Registry) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.telOn = reg != nil
	for k := OpCreate; k <= OpRename; k++ {
		if reg == nil {
			fs.telOps[k], fs.telBytes[k] = nil, nil
			continue
		}
		fs.telOps[k] = reg.Counter(`vfs_ops_total{kind="` + k.String() + `"}`)
		fs.telBytes[k] = reg.Counter(`vfs_op_bytes_total{kind="` + k.String() + `"}`)
	}
}

// OpCount returns how many operations of the given kind have completed.
func (fs *FS) OpCount(kind OpKind) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.opCounts[kind]
}

// clean canonicalises a path to a rooted, slash-separated form.
func clean(p string) string {
	p = path.Clean("/" + p)
	return p
}

// splitPath returns the parent directory path and base name.
func splitPath(p string) (parent, base string) {
	p = clean(p)
	return path.Dir(p), path.Base(p)
}

// lookupDir resolves a directory node; fs.mu must be held.
func (fs *FS) lookupDir(p string) (*dir, error) {
	p = clean(p)
	cur := fs.root
	if p == "/" {
		return cur, nil
	}
	for _, part := range strings.Split(p[1:], "/") {
		n, ok := cur.children[part]
		if !ok {
			return nil, fmt.Errorf("%s: %w", p, ErrNotExist)
		}
		d, ok := n.(*dir)
		if !ok {
			return nil, fmt.Errorf("%s: %w", p, ErrNotDir)
		}
		cur = d
	}
	return cur, nil
}

// lookupEntry resolves a file entry; fs.mu must be held.
func (fs *FS) lookupEntry(p string) (*entry, error) {
	parent, base := splitPath(p)
	d, err := fs.lookupDir(parent)
	if err != nil {
		return nil, err
	}
	n, ok := d.children[base]
	if !ok {
		return nil, fmt.Errorf("%s: %w", p, ErrNotExist)
	}
	e, ok := n.(*entry)
	if !ok {
		return nil, fmt.Errorf("%s: %w", p, ErrIsDir)
	}
	return e, nil
}

// pre runs the interceptor's PreOp; fs.mu must be held (it is released
// around the callback so interceptors may query the filesystem). A veto is
// wrapped with the vetoed operation's kind and path, preserving the
// interceptor's error chain for errors.Is (e.g. cryptodrop.ErrSuspended).
func (fs *FS) pre(op *Op) error {
	ic := fs.interceptor
	if ic == nil {
		return nil
	}
	fs.mu.Unlock()
	err := ic.PreOp(op)
	fs.mu.Lock()
	if err != nil {
		return fmt.Errorf("vfs: %s %s: %w", op.Kind, op.Path, err)
	}
	return err
}

// post runs the interceptor's PostOp and bumps counters; fs.mu must be held.
func (fs *FS) post(op *Op) {
	fs.opCounts[op.Kind]++
	if fs.telOn {
		fs.telOps[op.Kind].Inc()
		if n := int64(len(op.Data)); n > 0 {
			fs.telBytes[op.Kind].Add(n)
		}
	}
	ic := fs.interceptor
	if ic == nil {
		return
	}
	fs.mu.Unlock()
	ic.PostOp(op)
	fs.mu.Lock()
}

// preImage offers the entry's current content to the mount's pre-image
// capability (the versioned extension) before a destructive mutation;
// fs.mu must be held. Plain backends pay one nil check.
func (fs *FS) preImage(e *entry, p string, pid int, kind OpKind) {
	if e.m.pi != nil {
		e.m.pi.PreImage(e.id, p, pid, kind)
	}
}

// Mkdir creates a single directory.
func (fs *FS) Mkdir(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base := splitPath(p)
	d, err := fs.lookupDir(parent)
	if err != nil {
		return err
	}
	if _, ok := d.children[base]; ok {
		return fmt.Errorf("%s: %w", p, ErrExist)
	}
	d.children[base] = newDir()
	return nil
}

// MkdirAll creates a directory and any missing parents.
func (fs *FS) MkdirAll(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mkdirAllLocked(p)
}

// mkdirAllLocked is MkdirAll with fs.mu held.
func (fs *FS) mkdirAllLocked(p string) error {
	p = clean(p)
	if p == "/" {
		return nil
	}
	cur := fs.root
	for _, part := range strings.Split(p[1:], "/") {
		n, ok := cur.children[part]
		if !ok {
			nd := newDir()
			cur.children[part] = nd
			cur = nd
			continue
		}
		d, ok := n.(*dir)
		if !ok {
			return fmt.Errorf("%s: %w", p, ErrNotDir)
		}
		cur = d
	}
	return nil
}

// Handle is an open file descriptor bound to a process.
type Handle struct {
	fs     *FS
	e      *entry
	path   string
	pid    int
	flags  OpenFlag
	offset int64
	wrote  bool
	closed bool
}

// Open opens a file on behalf of pid. Create requires WriteOnly. A created
// file stores its content in the backend whose mount prefix is the longest
// match for p.
func (fs *FS) Open(pid int, p string, flags OpenFlag) (*Handle, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if flags&(ReadOnly|WriteOnly) == 0 {
		return nil, ErrBadFlag
	}
	p = clean(p)
	parent, base := splitPath(p)
	d, err := fs.lookupDir(parent)
	if err != nil {
		return nil, err
	}
	var e *entry
	created := false
	switch n := d.children[base].(type) {
	case nil:
		if flags&Create == 0 {
			return nil, fmt.Errorf("%s: %w", p, ErrNotExist)
		}
		e = &entry{id: fs.nextID, m: fs.resolveMount(p)}
		created = true
	case *entry:
		e = n
	case *dir:
		return nil, fmt.Errorf("%s: %w", p, ErrIsDir)
	}
	if flags&WriteOnly != 0 && e.readOnly {
		return nil, fmt.Errorf("%s: %w", p, ErrReadOnly)
	}
	kind := OpOpen
	if created {
		kind = OpCreate
	}
	op := &Op{Kind: kind, PID: pid, Path: p, FileID: e.id, Flags: flags, Size: e.size}
	if err := fs.pre(op); err != nil {
		return nil, err
	}
	if created {
		if err := e.m.b.Open(e.id, e.m.rel(p), true, false); err != nil {
			return nil, err
		}
		if e.m.mem != nil {
			e.mf = e.m.mem.files[e.id]
		}
		fs.nextID++
		d.children[base] = e
		fs.ids[e.id] = e
	}
	if flags&Truncate != 0 && flags&WriteOnly != 0 && e.size > 0 {
		if e.mf != nil {
			e.mf.data, e.mf.shared = nil, false
		} else {
			fs.preImage(e, p, pid, OpOpen)
			if err := e.m.b.Open(e.id, e.m.rel(p), false, true); err != nil {
				return nil, err
			}
		}
		e.size = 0
		op.Size = 0
	}
	h := &Handle{fs: fs, e: e, path: p, pid: pid, flags: flags}
	fs.post(op)
	return h, nil
}

// Create creates (or truncates) a file open for writing, like os.Create.
func (fs *FS) Create(pid int, p string) (*Handle, error) {
	return fs.Open(pid, p, WriteOnly|Create|Truncate)
}

// Path returns the path the handle was opened with.
func (h *Handle) Path() string { return h.path }

// FileID returns the stable identity of the open file.
func (h *Handle) FileID() uint64 { return h.e.id }

// Read reads up to len(buf) bytes from the current offset.
func (h *Handle) Read(buf []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, ErrClosed
	}
	if h.flags&ReadOnly == 0 {
		return 0, fmt.Errorf("%s: handle not open for reading: %w", h.path, ErrBadFlag)
	}
	if h.offset >= h.e.size {
		return 0, nil
	}
	op := &Op{Kind: OpRead, PID: h.pid, Path: h.path, FileID: h.e.id, Offset: h.offset, Size: h.e.size}
	if err := h.fs.pre(op); err != nil {
		return 0, err
	}
	var data []byte
	if f := h.e.mf; f != nil {
		end := h.offset + int64(len(buf))
		if end > int64(len(f.data)) {
			end = int64(len(f.data))
		}
		data = f.data[h.offset:end]
	} else {
		var err error
		data, _, err = h.e.m.b.Read(h.e.id, h.offset, int64(len(buf)))
		if err != nil {
			return 0, err
		}
	}
	n := copy(buf, data)
	op.Data = data[:n]
	h.offset += int64(n)
	h.fs.post(op)
	return n, nil
}

// ReadAll reads the entire file content from offset zero.
func (h *Handle) ReadAll() ([]byte, error) {
	h.fs.mu.Lock()
	size := h.e.size
	h.fs.mu.Unlock()
	buf := make([]byte, size)
	h.fs.mu.Lock()
	h.offset = 0
	h.fs.mu.Unlock()
	n, err := h.Read(buf)
	return buf[:n], err
}

// Write writes data at the current offset (or the end, with Append),
// growing the file as needed.
func (h *Handle) Write(data []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, ErrClosed
	}
	if h.flags&WriteOnly == 0 {
		return 0, fmt.Errorf("%s: handle not open for writing: %w", h.path, ErrBadFlag)
	}
	off := h.offset
	if h.flags&Append != 0 {
		off = h.e.size
	}
	op := &Op{Kind: OpWrite, PID: h.pid, Path: h.path, FileID: h.e.id, Data: data, Offset: off}
	op.Size = off + int64(len(data))
	if h.e.size > op.Size {
		op.Size = h.e.size
	}
	if err := h.fs.pre(op); err != nil {
		return 0, err
	}
	if f := h.e.mf; f != nil {
		f.write(off, data)
		h.e.size = int64(len(f.data))
	} else {
		h.fs.preImage(h.e, h.path, h.pid, OpWrite)
		newSize, err := h.e.m.b.Write(h.e.id, off, data)
		if err != nil {
			return 0, err
		}
		h.e.size = newSize
	}
	h.offset = off + int64(len(data))
	h.wrote = true
	h.fs.post(op)
	return len(data), nil
}

// SeekTo sets the handle offset for the next read or write.
func (h *Handle) SeekTo(offset int64) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.offset = offset
}

// Close closes the handle. Closing twice returns ErrClosed.
func (h *Handle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return ErrClosed
	}
	op := &Op{Kind: OpClose, PID: h.pid, Path: h.path, FileID: h.e.id, Size: h.e.size, Wrote: h.wrote}
	if err := h.fs.pre(op); err != nil {
		return err
	}
	if h.e.mf == nil {
		if err := h.e.m.b.Close(h.e.id); err != nil {
			return err
		}
	}
	h.closed = true
	h.fs.post(op)
	return nil
}

// Delete removes a file. Deleting a read-only file fails (Windows
// semantics), and deleting a non-empty directory fails with ErrNotEmpty.
func (fs *FS) Delete(pid int, p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p = clean(p)
	parent, base := splitPath(p)
	d, err := fs.lookupDir(parent)
	if err != nil {
		return err
	}
	n, ok := d.children[base]
	if !ok {
		return fmt.Errorf("%s: %w", p, ErrNotExist)
	}
	switch t := n.(type) {
	case *dir:
		if len(t.children) > 0 {
			return fmt.Errorf("%s: %w", p, ErrNotEmpty)
		}
		delete(d.children, base)
		return nil
	case *entry:
		if t.readOnly {
			return fmt.Errorf("%s: %w", p, ErrReadOnly)
		}
		op := &Op{Kind: OpDelete, PID: pid, Path: p, FileID: t.id, Size: t.size}
		if err := fs.pre(op); err != nil {
			return err
		}
		fs.preImage(t, p, pid, OpDelete)
		if err := t.m.b.Delete(t.id); err != nil {
			return err
		}
		delete(d.children, base)
		delete(fs.ids, t.id)
		fs.post(op)
		return nil
	}
	return nil
}

// Rename moves a file, replacing an existing destination file (Windows
// MoveFileEx semantics). Replacing a read-only destination fails, and a
// rename whose destination resolves to a different mount fails with
// ErrCrossMount — content does not migrate between backends.
func (fs *FS) Rename(pid int, oldp, newp string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oldp, newp = clean(oldp), clean(newp)
	if oldp == newp {
		return nil
	}
	oparent, obase := splitPath(oldp)
	od, err := fs.lookupDir(oparent)
	if err != nil {
		return err
	}
	n, ok := od.children[obase]
	if !ok {
		return fmt.Errorf("%s: %w", oldp, ErrNotExist)
	}
	e, ok := n.(*entry)
	if !ok {
		return fmt.Errorf("%s: rename of directories not supported: %w", oldp, ErrIsDir)
	}
	nparent, nbase := splitPath(newp)
	nd, err := fs.lookupDir(nparent)
	if err != nil {
		return err
	}
	if nm := fs.resolveMount(newp); nm != e.m {
		return fmt.Errorf("vfs: rename %s -> %s: %w", oldp, newp, ErrCrossMount)
	}
	var replaced *entry
	if existing, ok := nd.children[nbase]; ok {
		ef, ok := existing.(*entry)
		if !ok {
			return fmt.Errorf("%s: %w", newp, ErrIsDir)
		}
		if ef.readOnly {
			return fmt.Errorf("%s: %w", newp, ErrReadOnly)
		}
		replaced = ef
	}
	op := &Op{Kind: OpRename, PID: pid, Path: oldp, NewPath: newp, FileID: e.id, Size: e.size}
	if replaced != nil {
		op.ReplacedID = replaced.id
	}
	if err := fs.pre(op); err != nil {
		return err
	}
	if replaced != nil {
		fs.preImage(replaced, newp, pid, OpRename)
		if err := replaced.m.b.Delete(replaced.id); err != nil {
			return err
		}
		delete(fs.ids, replaced.id)
	}
	if err := e.m.b.Rename(e.id, e.m.rel(oldp), e.m.rel(newp)); err != nil {
		return err
	}
	delete(od.children, obase)
	nd.children[nbase] = e
	fs.post(op)
	return nil
}

// WriteFile creates p with the given content in a single
// create/write/close sequence (all filtered).
func (fs *FS) WriteFile(pid int, p string, data []byte) error {
	h, err := fs.Create(pid, p)
	if err != nil {
		return err
	}
	if _, err := h.Write(data); err != nil {
		_ = h.Close()
		return err
	}
	return h.Close()
}

// ReadFile reads the whole file through the filter as pid.
func (fs *FS) ReadFile(pid int, p string) ([]byte, error) {
	h, err := fs.Open(pid, p, ReadOnly)
	if err != nil {
		return nil, err
	}
	data, err := h.ReadAll()
	if cerr := h.Close(); err == nil {
		err = cerr
	}
	return data, err
}

// FileInfo describes a file or directory.
type FileInfo struct {
	// Path is the canonical path.
	Path string
	// Size is the content length in bytes (0 for directories).
	Size int64
	// IsDir reports whether the entry is a directory.
	IsDir bool
	// ReadOnly reports the read-only attribute.
	ReadOnly bool
	// FileID is the stable file identity (0 for directories).
	FileID uint64
}

// Stat describes the entry at p without passing through the interceptor
// (directory metadata operations are not scored by the paper's engine).
func (fs *FS) Stat(p string) (FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p = clean(p)
	if p == "/" {
		return FileInfo{Path: "/", IsDir: true}, nil
	}
	parent, base := splitPath(p)
	d, err := fs.lookupDir(parent)
	if err != nil {
		return FileInfo{}, err
	}
	switch n := d.children[base].(type) {
	case nil:
		return FileInfo{}, fmt.Errorf("%s: %w", p, ErrNotExist)
	case *dir:
		return FileInfo{Path: p, IsDir: true}, nil
	case *entry:
		return FileInfo{Path: p, Size: n.size, ReadOnly: n.readOnly, FileID: n.id}, nil
	}
	return FileInfo{}, fmt.Errorf("%s: %w", p, ErrNotExist)
}

// List returns the entries of directory p, sorted by name.
func (fs *FS) List(p string) ([]FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.lookupDir(p)
	if err != nil {
		return nil, err
	}
	p = clean(p)
	names := make([]string, 0, len(d.children))
	for name := range d.children {
		names = append(names, name)
	}
	sort.Strings(names)
	infos := make([]FileInfo, 0, len(names))
	for _, name := range names {
		full := path.Join(p, name)
		switch n := d.children[name].(type) {
		case *dir:
			infos = append(infos, FileInfo{Path: full, IsDir: true})
		case *entry:
			infos = append(infos, FileInfo{Path: full, Size: n.size, ReadOnly: n.readOnly, FileID: n.id})
		}
	}
	return infos, nil
}

// Walk visits every entry under root in depth-first lexical order.
func (fs *FS) Walk(root string, fn func(info FileInfo) error) error {
	infos, err := fs.List(root)
	if err != nil {
		return err
	}
	for _, info := range infos {
		if err := fn(info); err != nil {
			return err
		}
		if info.IsDir {
			if err := fs.Walk(info.Path, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// SetReadOnly sets or clears the read-only attribute of a file.
func (fs *FS) SetReadOnly(p string, ro bool) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e, err := fs.lookupEntry(p)
	if err != nil {
		return err
	}
	e.readOnly = ro
	return nil
}

// ReadFileRaw returns the file's content without passing through the
// interceptor — the analysis engine's privileged kernel-side access for
// snapshotting a file's state before it changes.
func (fs *FS) ReadFileRaw(p string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e, err := fs.lookupEntry(p)
	if err != nil {
		return nil, err
	}
	data, _, err := e.m.b.Read(e.id, 0, -1)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// ReadFileRawByID returns content by file ID, regardless of the file's
// current path. It returns ErrNotExist if no file has that ID.
func (fs *FS) ReadFileRawByID(id uint64) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e, ok := fs.ids[id]
	if !ok {
		return nil, fmt.Errorf("file id %d: %w", id, ErrNotExist)
	}
	data, _, err := e.m.b.Read(e.id, 0, -1)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// ReadFileRawRangeByID returns the file bytes in [off, off+n) — shorter at
// end of file, empty when off is at or past it — together with the file's
// total size, by file ID. Like ReadFileRawByID it bypasses the interceptor,
// but it materialises only the requested range: the analysis engine's
// sampled measurements and write-range captures read kilobytes from
// megabyte files through it.
func (fs *FS) ReadFileRawRangeByID(id uint64, off, n int64) ([]byte, int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e, ok := fs.ids[id]
	if !ok {
		return nil, 0, fmt.Errorf("file id %d: %w", id, ErrNotExist)
	}
	data, size, err := e.m.b.Read(e.id, off, n)
	if err != nil {
		return nil, 0, err
	}
	if len(data) == 0 {
		return nil, size, nil
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, size, nil
}

// RestoreFileRawByID overwrites the file's content without passing through
// the interceptor — the recovery coordinator's privileged rollback write.
// The read-only attribute is ignored, as a kernel-side restore would.
func (fs *FS) RestoreFileRawByID(id uint64, content []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e, ok := fs.ids[id]
	if !ok {
		return fmt.Errorf("file id %d: %w", id, ErrNotExist)
	}
	return fs.restoreEntry(e, content)
}

// RestoreFileRaw writes content at p without passing through the
// interceptor, overwriting an existing file or recreating a deleted one
// (with a fresh file ID) — the recovery path for files whose ID no longer
// exists because the attacker deleted or replaced them.
func (fs *FS) RestoreFileRaw(p string, content []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p = clean(p)
	if e, err := fs.lookupEntry(p); err == nil {
		return fs.restoreEntry(e, content)
	} else if !errors.Is(err, ErrNotExist) {
		return err
	}
	parent, base := splitPath(p)
	if err := fs.mkdirAllLocked(parent); err != nil {
		return err
	}
	d, err := fs.lookupDir(parent)
	if err != nil {
		return err
	}
	e := &entry{id: fs.nextID, m: fs.resolveMount(p)}
	if err := e.m.b.Open(e.id, e.m.rel(p), true, false); err != nil {
		return err
	}
	if e.m.mem != nil {
		e.mf = e.m.mem.files[e.id]
	}
	fs.nextID++
	d.children[base] = e
	fs.ids[e.id] = e
	return fs.restoreEntry(e, content)
}

// restoreEntry truncates and rewrites an entry's content; fs.mu held.
func (fs *FS) restoreEntry(e *entry, content []byte) error {
	if err := e.m.b.Open(e.id, "", false, true); err != nil {
		return err
	}
	e.size = 0
	if len(content) > 0 {
		size, err := e.m.b.Write(e.id, 0, content)
		if err != nil {
			return err
		}
		e.size = size
	}
	return nil
}

// Clone returns a copy-on-write copy of the filesystem. The clone has no
// interceptor attached and independent operation counters. Backends that
// can snapshot themselves (Cloner — the in-memory backend) share content
// until either side writes, so cloning is cheap even for large trees;
// other backends (Local) are materialised into fresh in-memory backends,
// so a clone is always self-contained and side-effect-free.
func (fs *FS) Clone() *FS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nfs := &FS{
		root:     newDir(),
		nextID:   fs.nextID,
		ids:      make(map[uint64]*entry, len(fs.ids)),
		opCounts: make(map[OpKind]int64),
	}
	mm := make(map[*mount]*mount, len(fs.mounts))
	materialise := make(map[*mount]bool)
	for _, m := range fs.mounts {
		var nb Backend
		if c, ok := m.b.(Cloner); ok {
			nb = c.CloneBackend()
		}
		if nb == nil {
			nb = NewMemory()
			materialise[m] = true
		}
		nm := newMount(m.prefix, nb)
		mm[m] = nm
		nfs.mounts = append(nfs.mounts, nm)
	}
	nfs.root = cloneDirInto(fs.root, mm, materialise, nfs)
	return nfs
}

// cloneDirInto deep-copies the namespace, remapping entries onto the
// clone's mounts and copying content into materialised backends.
func cloneDirInto(d *dir, mm map[*mount]*mount, materialise map[*mount]bool, nfs *FS) *dir {
	nd := newDir()
	for name, n := range d.children {
		switch t := n.(type) {
		case *dir:
			nd.children[name] = cloneDirInto(t, mm, materialise, nfs)
		case *entry:
			ne := &entry{id: t.id, size: t.size, readOnly: t.readOnly, m: mm[t.m]}
			if materialise[t.m] {
				data, _, err := t.m.b.Read(t.id, 0, -1)
				if err == nil {
					if err := ne.m.b.Open(ne.id, "", true, false); err == nil && len(data) > 0 {
						if size, werr := ne.m.b.Write(ne.id, 0, data); werr == nil {
							ne.size = size
						}
					}
				}
			}
			if ne.m.mem != nil {
				ne.mf = ne.m.mem.files[ne.id]
			}
			nd.children[name] = ne
			nfs.ids[ne.id] = ne
		}
	}
	return nd
}

// Stats summarises the tree under root.
type Stats struct {
	Files int
	Dirs  int
	Bytes int64
}

// TreeStats counts files, directories and bytes under root.
func (fs *FS) TreeStats(root string) (Stats, error) {
	var s Stats
	err := fs.Walk(root, func(info FileInfo) error {
		if info.IsDir {
			s.Dirs++
		} else {
			s.Files++
			s.Bytes += info.Size
		}
		return nil
	})
	return s, err
}
