package core

// Microbenchmarks for the detection hot path: the per-file measurement
// kernel and the engine's PostOp under multi-process contention. Run with
// -cpu 1,4,8 to see how PostOp throughput scales across cores; before the
// scoreboard was sharded every operation serialised on one engine-wide
// mutex, so the -cpu 8 line barely moved.

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/vfs"
)

// benchSizes are the payload sizes exercised by the measurement benches.
var benchSizes = []int{4 << 10, 64 << 10, 1 << 20}

func BenchmarkMeasureFile(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("size=%dKiB", size>>10), func(b *testing.B) {
			content := corpus.Generate("docx", 3, size)
			b.SetBytes(int64(len(content)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if st := measureFile(content); st == nil {
					b.Fatal("nil state")
				}
			}
		})
	}
}

// BenchmarkEngineParallelPostOp drives PostOp from GOMAXPROCS goroutines,
// each acting as a distinct process with its own working file: the paper's
// heavy multi-process workload (§V-H). The op mix is the detection hot
// path — reads and writes folding payload entropy into the scoreboard,
// with a full close-time transformation evaluation every tenth op.
func BenchmarkEngineParallelPostOp(b *testing.B) {
	benchEngineParallelPostOp(b, false)
}

// BenchmarkEngineParallelPostOpTelemetry is the same workload with a live
// metrics registry and flight recorder attached, measuring the enabled-
// telemetry overhead on the hot path (budget: <3% vs the bench above).
func BenchmarkEngineParallelPostOpTelemetry(b *testing.B) {
	benchEngineParallelPostOp(b, true)
}

// BenchmarkEngineParallelPostOpSpans layers causal span tracing on top of
// the telemetry workload at two sampling rates. sample=0 is the control: a
// nil tracer, i.e. tracing compiled in but disabled — the configuration
// whose overhead vs BenchmarkEngineParallelPostOpTelemetry must stay ≤3%
// (BENCH_PR7.json). sample=64 is the recommended production rate; sample=1
// traces every op, the worst case.
func BenchmarkEngineParallelPostOpSpans(b *testing.B) {
	for _, rate := range []int{0, 64, 1} {
		b.Run(fmt.Sprintf("sample=%d", rate), func(b *testing.B) {
			benchEngineParallelPostOpSpans(b, rate)
		})
	}
}

func benchEngineParallelPostOpSpans(b *testing.B, sampleEvery int) {
	var tr *telemetry.SpanTracer
	if sampleEvery > 0 {
		tr = telemetry.NewSpanTracer(telemetry.DefaultSpanCapacity, sampleEvery)
	}
	benchEngineParallelPostOpCfg(b, true, tr)
}

func benchEngineParallelPostOp(b *testing.B, withTelemetry bool) {
	benchEngineParallelPostOpCfg(b, withTelemetry, nil)
}

func benchEngineParallelPostOpCfg(b *testing.B, withTelemetry bool, tr *telemetry.SpanTracer) {
	const root = "/Users/victim/Documents"
	const nfiles = 64
	fs := vfs.New()
	if err := fs.MkdirAll(root); err != nil {
		b.Fatal(err)
	}
	doc := corpus.Generate("docx", 7, 16<<10)
	cipher := make([]byte, 16<<10)
	rand.New(rand.NewSource(42)).Read(cipher)

	paths := make([]string, nfiles)
	ids := make([]uint64, nfiles)
	for i := range paths {
		paths[i] = fmt.Sprintf("%s/bench%03d.docx", root, i)
		if err := fs.WriteFile(0, paths[i], doc); err != nil {
			b.Fatal(err)
		}
		h, err := fs.Open(0, paths[i], vfs.ReadOnly)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = h.FileID()
		h.Close()
	}

	cfg := DefaultConfig(root)
	if withTelemetry {
		cfg.Telemetry = telemetry.NewRegistry()
		cfg.FlightRecorder = telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
	}
	cfg.SpanTracer = tr
	e := New(cfg, testSource{fs})
	var pidCtr atomic.Int64
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		pid := int(pidCtr.Add(1))
		slot := (pid - 1) % nfiles
		p, id := paths[slot], ids[slot]
		i := 0
		for pb.Next() {
			switch {
			case i%10 == 9:
				e.PreEvent(Event{Kind: EvOpen, PID: pid, Path: p, FileID: id,
					Flags: EvWriteIntent, Size: int64(len(doc))})
				e.Handle(Event{Kind: EvClose, PID: pid, Path: p, FileID: id, Wrote: true})
			case i%2 == 0:
				e.Handle(Event{Kind: EvRead, PID: pid, Path: p, FileID: id, Data: doc})
			default:
				e.Handle(Event{Kind: EvWrite, PID: pid, Path: p, FileID: id,
					Data: cipher, Size: int64(len(cipher))})
			}
			i++
		}
	})
}
