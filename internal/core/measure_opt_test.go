package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/measurecache"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/vfs"
)

// These tests pin the hot-path measurement optimisations: content-hash
// memoization, incremental entropy, and the two-tier scoring ladder. The
// first two promise bit-identical verdicts — proven by DeepEqual against a
// plain engine over the same deterministic workload — while the ladder
// promises only that escalation converges on anything suspicious.

// encryptionWorkload runs the Class A attack plus a benign edit over a
// fresh deterministic filesystem under cfg, returning the final scoreboard
// and detections.
func encryptionWorkload(t *testing.T, cfg Config) ([]ProcessReport, []Detection) {
	t.Helper()
	fs, eng := setup(t, cfg)
	infos, err := fs.List(testRoot)
	if err != nil {
		t.Fatal(err)
	}
	// A benign process edits one document in place first, exercising the
	// transform path with a same-type rewrite.
	benign := 300
	edited := corpus.Generate("docx", 9, 8192)
	h, err := fs.Open(benign, testRoot+"/file02.docx", vfs.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.ReadAll(); err != nil {
		t.Fatal(err)
	}
	h.SeekTo(0)
	if _, err := h.Write(edited); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// Then the attacker encrypts everything.
	attacker := 500
	for _, info := range infos {
		encryptInPlace(t, fs, attacker, info.Path)
	}
	return eng.Reports(), eng.Detections()
}

// TestMeasureMemoizedBitIdentical proves the memo cache changes no verdict:
// the same deterministic workload, run without a cache, with a cold cache,
// and with a warm cache (second engine sharing the first one's), produces
// bit-identical scoreboards and detection lists — while the warm run
// resolves measurements by lookup.
func TestMeasureMemoizedBitIdentical(t *testing.T) {
	base := DefaultConfig(testRoot)
	wantReports, wantDets := encryptionWorkload(t, base)
	if len(wantDets) == 0 {
		t.Fatal("baseline workload fired no detection")
	}

	cache := measurecache.New(64 << 20)
	cfg := base
	cfg.MeasureCache = cache
	coldReports, coldDets := encryptionWorkload(t, cfg)
	if !reflect.DeepEqual(wantReports, coldReports) {
		t.Fatalf("cold-cache scoreboards diverge:\n plain: %+v\n memo:  %+v", wantReports, coldReports)
	}
	if !reflect.DeepEqual(wantDets, coldDets) {
		t.Fatalf("cold-cache detections diverge:\n plain: %+v\n memo:  %+v", wantDets, coldDets)
	}

	warmReports, warmDets := encryptionWorkload(t, cfg)
	if !reflect.DeepEqual(wantReports, warmReports) {
		t.Fatalf("warm-cache scoreboards diverge:\n plain: %+v\n memo:  %+v", wantReports, warmReports)
	}
	if !reflect.DeepEqual(wantDets, warmDets) {
		t.Fatalf("warm-cache detections diverge:\n plain: %+v\n memo:  %+v", wantDets, warmDets)
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("warm run over an identical corpus hit the cache 0 times: %+v", st)
	}
}

// TestMeasureMemoizedBitIdenticalPooled repeats the memoization identity
// check with a measurement pool, where cache lookups race pool workers for
// the same content.
func TestMeasureMemoizedBitIdenticalPooled(t *testing.T) {
	base := DefaultConfig(testRoot)
	base.Workers = 4
	wantReports, wantDets := encryptionWorkload(t, base)

	cfg := base
	cfg.MeasureCache = measurecache.New(64 << 20)
	gotReports, gotDets := encryptionWorkload(t, cfg)
	if !reflect.DeepEqual(wantReports, gotReports) {
		t.Fatalf("pooled memoized scoreboards diverge:\n plain: %+v\n memo:  %+v", wantReports, gotReports)
	}
	if !reflect.DeepEqual(wantDets, gotDets) {
		t.Fatalf("pooled memoized detections diverge:\n plain: %+v\n memo:  %+v", wantDets, gotDets)
	}
}

// patchWorkload mutates files with partial overwrites, appends and repeated
// same-handle writes — the access shapes the incremental entropy tracker
// folds — then encrypts a few, returning the final scoreboard and
// detections.
func patchWorkload(t *testing.T, cfg Config) ([]ProcessReport, []Detection) {
	t.Helper()
	fs, eng := setup(t, cfg)
	infos, err := fs.List(testRoot)
	if err != nil {
		t.Fatal(err)
	}
	editor := 310
	for round := 0; round < 3; round++ {
		for i, info := range infos {
			h, err := fs.Open(editor, info.Path, vfs.ReadWrite)
			if err != nil {
				t.Fatal(err)
			}
			// Overwrite an interior range, then extend the file, with two
			// writes on one handle so the second write folds through a
			// histogram the first one already updated.
			h.SeekTo(int64(128 * (i + 1)))
			if _, err := h.Write(corpus.Generate("txt", int64(round*100+i), 512)); err != nil {
				t.Fatal(err)
			}
			h.SeekTo(8192 + int64(round)*256)
			if _, err := h.Write(corpus.Generate("csv", int64(round), 256)); err != nil {
				t.Fatal(err)
			}
			if err := h.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	attacker := 510
	for _, info := range infos[:10] {
		encryptInPlace(t, fs, attacker, info.Path)
	}
	return eng.Reports(), eng.Detections()
}

// TestIncrementalEntropyBitIdentical proves the incrementally maintained
// histograms change no verdict: overwrites, appends and rewrites score
// bit-identically with the tracker on and off, in both synchronous and
// pooled engines.
func TestIncrementalEntropyBitIdentical(t *testing.T) {
	for _, workers := range []int{0, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base := DefaultConfig(testRoot)
			base.Workers = workers
			wantReports, wantDets := patchWorkload(t, base)

			cfg := base
			cfg.IncrementalEntropy = true
			gotReports, gotDets := patchWorkload(t, cfg)
			if !reflect.DeepEqual(wantReports, gotReports) {
				t.Fatalf("incremental scoreboards diverge:\n plain:       %+v\n incremental: %+v",
					wantReports, gotReports)
			}
			if !reflect.DeepEqual(wantDets, gotDets) {
				t.Fatalf("incremental detections diverge:\n plain:       %+v\n incremental: %+v",
					wantDets, gotDets)
			}
		})
	}
}

// failSource errors on every read — a backend that lost the file.
type failSource struct{}

func (failSource) Content(uint64) ([]byte, error) { return nil, errors.New("backend gone") }

// emptySource serves empty content without error.
type emptySource struct{}

func (emptySource) Content(uint64) ([]byte, error) { return []byte{}, nil }

// TestContentReadFailureCounted pins the fix for the silent-drop bug: a
// ContentSource read failure on the measurement path is counted in
// telemetry, so it is distinguishable from genuinely empty content (which
// is measured, not dropped, on the evaluation path).
func TestContentReadFailureCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig(testRoot)
	cfg.Telemetry = reg
	eng := New(cfg, failSource{})

	p := testRoot + "/doc.txt"
	// Snapshot path: open-for-write over a file the source cannot serve.
	eng.PreEvent(Event{Kind: EvOpen, PID: 1, Path: p, FileID: 7, Size: 100, Flags: EvWriteIntent})
	// Evaluation path: a completed rewrite whose result cannot be read.
	eng.Handle(Event{Kind: EvClose, PID: 1, Path: p, FileID: 7, Wrote: true})

	const series = "engine_content_read_failures_total"
	if got := reg.Counter(series).Value(); got != 2 {
		t.Fatalf("%s = %d after two failing reads, want 2", series, got)
	}
	if rep, ok := eng.Report(1); ok && rep.FilesTransformed != 0 {
		t.Fatalf("transform scored despite unreadable content: %+v", rep)
	}

	// Genuinely empty content is not a failure: the evaluation path measures
	// it (the "empty" type) and the counter stays put.
	reg2 := telemetry.NewRegistry()
	cfg2 := DefaultConfig(testRoot)
	cfg2.Telemetry = reg2
	eng2 := New(cfg2, emptySource{})
	eng2.Handle(Event{Kind: EvClose, PID: 1, Path: p, FileID: 7, Wrote: true})
	if got := reg2.Counter(series).Value(); got != 0 {
		t.Fatalf("%s = %d for empty (readable) content, want 0", series, got)
	}
	if rep, ok := eng2.Report(1); !ok || rep.FilesTransformed != 0 {
		// No previous version exists, so the empty rewrite is a new-file
		// evaluation, not a transform — but it must have been measured.
		if !ok {
			t.Fatal("no report for process scoring empty content")
		}
	}
}

// evasiveEncrypt rewrites the file as ransomware evading header checks
// would: the first keep bytes stay untouched (magic type and header-area
// entropy unchanged), everything after is replaced with ciphertext.
func evasiveEncrypt(t *testing.T, fs *vfs.FS, pid int, p string, keep int64) {
	t.Helper()
	h, err := fs.Open(pid, p, vfs.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	content, err := h.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(content)) <= keep {
		t.Fatalf("file %s (%d bytes) too small to evade a %d-byte sample", p, len(content), keep)
	}
	h.SeekTo(keep)
	if _, err := h.Write(keystream(int64(len(content)), len(content)-int(keep))); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSampledTierEscalationCatchesEvasiveHeaders drives the two-tier
// ladder's worst case: an attacker that preserves every file's leading
// sample area, so sampled measurements alone see an unchanged type, an
// unchanged header digest and a flat prefix-entropy delta. The
// tier-independent payload stream still gives it away — reading plaintext
// while writing ciphertext — and the first such award escalates the process
// to full measurement, where the file-level entropy jump scores. Detection
// requires those full-measurement awards: the stream trickle alone could
// never reach the threshold.
func TestSampledTierEscalationCatchesEvasiveHeaders(t *testing.T) {
	const keep = 4096 // == magic.SniffLen, the smallest legal sample
	root := testRoot
	fs := vfs.New()
	if err := fs.MkdirAll(root); err != nil {
		t.Fatal(err)
	}
	exts := []string{"txt", "pdf", "docx", "csv", "md", "html", "xml", "xlsx"}
	const files = 80
	for i := 0; i < files; i++ {
		p := fmt.Sprintf("%s/doc%03d.%s", root, i, exts[i%len(exts)])
		if err := fs.WriteFile(0, p, corpus.Generate(exts[i%len(exts)], int64(i), 12288)); err != nil {
			t.Fatal(err)
		}
	}

	reg := telemetry.NewRegistry()
	cfg := DefaultConfig(root)
	cfg.Tier = TierSampled
	cfg.SampleBytes = keep
	cfg.Telemetry = reg
	var detections []Detection
	cfg.OnDetection = func(d Detection) { detections = append(detections, d) }
	eng := New(cfg, testSource{fs})
	fs.SetInterceptor(interceptorFunc{eng})

	pid := 900
	infos, err := fs.List(root)
	if err != nil {
		t.Fatal(err)
	}
	encrypted := 0
	for _, info := range infos {
		if len(detections) > 0 {
			break
		}
		evasiveEncrypt(t, fs, pid, info.Path, keep)
		encrypted++
	}
	if len(detections) == 0 {
		t.Fatalf("evasive header-preserving attack not detected after %d files under the sampled tier", encrypted)
	}
	rep, ok := eng.Report(pid)
	if !ok || !rep.Detected {
		t.Fatal("report does not show the detection")
	}
	if !rep.Escalated {
		t.Fatal("detected process was never escalated to full measurement")
	}
	if got := reg.Counter("engine_tier_escalations_total").Value(); got != 1 {
		t.Fatalf("engine_tier_escalations_total = %d, want 1", got)
	}
	// The type never changes (headers preserved), so the detection must be
	// carried by entropy evidence gathered at the full tier.
	if rep.IndicatorPoints[IndicatorTypeChange] != 0 {
		t.Fatalf("type-change fired for header-preserving rewrites: %+v", rep.IndicatorPoints)
	}
	if rep.IndicatorPoints[IndicatorEntropyDelta] < DefaultPoints().EntropyDeltaFile {
		t.Fatalf("no file-level entropy award — full measurement never engaged: %+v", rep.IndicatorPoints)
	}

	// A benign process on the same session stays unescalated: escalation is
	// per process, not per engine.
	if benignRep, ok := eng.Report(0); ok && benignRep.Escalated {
		t.Fatal("corpus-seeding process escalated without any indicator firing")
	}
}

// TestSampledTierFullEquivalenceWhenDisabled pins that leaving the ladder
// off (the default TierFull) with the new knobs at their zero values is the
// exact seed engine: the config plumbing itself must not perturb verdicts.
func TestSampledTierFullEquivalenceWhenDisabled(t *testing.T) {
	base := DefaultConfig(testRoot)
	wantReports, wantDets := encryptionWorkload(t, base)

	cfg := base
	cfg.Tier = TierFull
	cfg.SampleBytes = 4096 // ignored under TierFull
	gotReports, gotDets := encryptionWorkload(t, cfg)
	if !reflect.DeepEqual(wantReports, gotReports) {
		t.Fatalf("TierFull with SampleBytes set diverges from default:\n want: %+v\n got:  %+v",
			wantReports, gotReports)
	}
	if !reflect.DeepEqual(wantDets, gotDets) {
		t.Fatalf("TierFull detections diverge:\n want: %+v\n got:  %+v", wantDets, gotDets)
	}
}
