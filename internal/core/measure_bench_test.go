package core

// Benchmarks for the PR 6 measurement optimisations: content-hash
// memoization and the sampled cheap tier. BenchmarkMeasureMemoized isolates
// the per-measurement cost (full kernels vs a warm memo hit);
// BenchmarkEngineIngestDedupe drives a dedupe-heavy ingest — many protected
// files sharing identical content, every close re-measuring — through the
// whole engine in each configuration. Results are recorded in
// BENCH_PR6.json via an interleaved A/B run (see EXPERIMENTS.md).

import (
	"fmt"
	"testing"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/measurecache"
	"cryptodrop/internal/vfs"
)

// BenchmarkMeasureMemoized measures one full-tier measurement through
// prepareMeasure: mode=plain runs the kernels (magic + entropy + sdhash)
// every time; mode=memoized hashes the content and resolves the state from
// a warm memo cache.
func BenchmarkMeasureMemoized(b *testing.B) {
	const root = "/Users/victim/Documents"
	for _, size := range benchSizes {
		for _, mode := range []string{"plain", "memoized"} {
			b.Run(fmt.Sprintf("size=%dKiB/mode=%s", size>>10, mode), func(b *testing.B) {
				fs := vfs.New()
				if err := fs.MkdirAll(root); err != nil {
					b.Fatal(err)
				}
				p := root + "/bench.docx"
				content := corpus.Generate("docx", 3, size)
				if err := fs.WriteFile(0, p, content); err != nil {
					b.Fatal(err)
				}
				h, err := fs.Open(0, p, vfs.ReadOnly)
				if err != nil {
					b.Fatal(err)
				}
				id := h.FileID()
				h.Close()

				cfg := DefaultConfig(root)
				if mode == "memoized" {
					cfg.MeasureCache = measurecache.New(64 << 20)
				}
				e := New(cfg, testSource{fs})
				// Warm: the first measurement fills the cache (memoized mode)
				// and faults nothing thereafter.
				if st := e.prepareMeasure(id, false).state(); st == nil {
					b.Fatal("nil state")
				}
				b.SetBytes(int64(len(content)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if st := e.prepareMeasure(id, false).state(); st == nil {
						b.Fatal("nil state")
					}
				}
			})
		}
	}
}

// BenchmarkEngineIngestDedupe is the dedupe-heavy ingest workload: 64
// protected files all sharing one 64 KiB content, a single benign process
// cycling open(write-intent)/close(wrote) over them so every close
// re-measures the file. mode=plain runs the full kernels per close;
// mode=memo resolves every measurement after the first from the shared
// cache (full content still read and hashed); mode=memo_sampled adds the
// cheap tier, so only the 8 KiB header sample is read and hashed.
func BenchmarkEngineIngestDedupe(b *testing.B) {
	for _, mode := range []string{"plain", "memo", "memo_sampled"} {
		b.Run("mode="+mode, func(b *testing.B) {
			const root = "/Users/victim/Documents"
			const nfiles = 64
			const size = 64 << 10
			fs := vfs.New()
			if err := fs.MkdirAll(root); err != nil {
				b.Fatal(err)
			}
			doc := corpus.Generate("docx", 11, size)
			paths := make([]string, nfiles)
			ids := make([]uint64, nfiles)
			for i := range paths {
				paths[i] = fmt.Sprintf("%s/dedupe%03d.docx", root, i)
				if err := fs.WriteFile(0, paths[i], doc); err != nil {
					b.Fatal(err)
				}
				h, err := fs.Open(0, paths[i], vfs.ReadOnly)
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = h.FileID()
				h.Close()
			}

			cfg := DefaultConfig(root)
			switch mode {
			case "memo":
				cfg.MeasureCache = measurecache.New(64 << 20)
			case "memo_sampled":
				cfg.MeasureCache = measurecache.New(64 << 20)
				cfg.Tier = TierSampled
			}
			e := New(cfg, testSource{fs})
			const pid = 1
			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				slot := i % nfiles
				e.PreEvent(Event{Kind: EvOpen, PID: pid, Path: paths[slot], FileID: ids[slot],
					Flags: EvWriteIntent, Size: size})
				e.Handle(Event{Kind: EvClose, PID: pid, Path: paths[slot], FileID: ids[slot], Wrote: true})
			}
		})
	}
}
