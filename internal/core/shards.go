package core

import (
	"sync"
	"sync/atomic"

	"cryptodrop/internal/entropy"
	"cryptodrop/internal/magic"
)

// The engine's mutable state is split into independently locked shards so
// the detection hot path never funnels through one engine-wide mutex:
//
//   - procTable shards the per-process scoreboard by scoring-group PID, so
//     PostOp for distinct processes proceeds concurrently;
//   - fileTable shards the previous-version file-state cache (and the
//     file-creator map) by stable file ID.
//
// Lock ordering: a proc-shard lock may be held while taking a file-shard
// lock, never the reverse, and no two file-shard locks are held at once.

// procShardCount is the number of scoreboard shards (power of two).
const procShardCount = 32

type procShard struct {
	mu sync.Mutex
	m  map[int]*procState
	// lockSamples paces telemetry's lock-wait sampling; touched atomically
	// (never under mu) and only when telemetry is enabled.
	lockSamples atomic.Uint64
}

// procTable is the sharded per-process scoreboard.
type procTable struct {
	shards [procShardCount]procShard
}

func (t *procTable) init() {
	for i := range t.shards {
		t.shards[i].m = make(map[int]*procState)
	}
}

// shard returns the shard owning pid (already resolved to its scoring
// group).
func (t *procTable) shard(pid int) *procShard {
	return &t.shards[uint(pid)&(procShardCount-1)]
}

// all appends every scoreboard entry to out, visiting shards in order. Each
// shard is locked only while it is copied.
func (t *procTable) all() []*procState {
	var out []*procState
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, ps := range sh.m {
			out = append(out, ps)
		}
		sh.mu.Unlock()
	}
	return out
}

// fileShardCount is the number of file-state shards (power of two).
const fileShardCount = 64

type fileShard struct {
	mu sync.Mutex
	// states caches the measured previous-version state of protected
	// files; values may still be resolving on the measurement pool.
	states map[uint64]*measureTask
	// creators records which process created each file.
	creators map[uint64]int
	// incr tracks incrementally maintained content histograms
	// (Config.IncrementalEntropy); nil entries never exist — a file either
	// has a tracker or is absent.
	incr map[uint64]*incrState
}

// incrState tracks one file's incrementally maintained byte histogram. hist,
// when non-nil, reflects the file's byte counts as of the last full
// measurement plus every write folded through since; gen counts content
// mutations so an asynchronously computed histogram whose snapshot predates
// the current generation is rejected at install time. The pend* fields
// describe the single in-flight write whose replaced range has been folded
// out (PreEvent) but whose new bytes have not yet been folded in (Handle).
// Guarded by the owning fileShard's mutex.
type incrState struct {
	gen  uint64
	hist *entropy.Histogram
	// size is the content length hist reflects.
	size    int64
	pendSet bool
	pendPID int
	pendOff int64
	pendLen int
}

// fileTable is the sharded previous-version file-state cache.
type fileTable struct {
	shards [fileShardCount]fileShard
}

func (t *fileTable) init() {
	for i := range t.shards {
		t.shards[i].states = make(map[uint64]*measureTask)
		t.shards[i].creators = make(map[uint64]int)
		t.shards[i].incr = make(map[uint64]*incrState)
	}
}

func (t *fileTable) shard(id uint64) *fileShard {
	return &t.shards[id&(fileShardCount-1)]
}

// has reports whether a (possibly still resolving) state is cached for id.
func (t *fileTable) has(id uint64) bool {
	sh := t.shard(id)
	sh.mu.Lock()
	_, ok := sh.states[id]
	sh.mu.Unlock()
	return ok
}

// entry returns the cached state task for id, or nil. The task may still be
// resolving; callers wait via (*measureTask).state outside any file-shard
// lock.
func (t *fileTable) entry(id uint64) *measureTask {
	sh := t.shard(id)
	sh.mu.Lock()
	en := sh.states[id]
	sh.mu.Unlock()
	return en
}

// store replaces the cached state for id with a resolved measurement.
func (t *fileTable) store(id uint64, st *fileState) {
	sh := t.shard(id)
	sh.mu.Lock()
	sh.states[id] = resolvedTask(st)
	sh.mu.Unlock()
}

// storeIfMissing caches a state task for id unless one is already present
// (snapshot semantics: first version wins until evaluated).
func (t *fileTable) storeIfMissing(id uint64, en *measureTask) {
	sh := t.shard(id)
	sh.mu.Lock()
	if _, ok := sh.states[id]; !ok {
		sh.states[id] = en
	}
	sh.mu.Unlock()
}

// drop removes the cached state for id.
func (t *fileTable) drop(id uint64) {
	sh := t.shard(id)
	sh.mu.Lock()
	delete(sh.states, id)
	sh.mu.Unlock()
}

// setCreator records pid as the creator of file id.
func (t *fileTable) setCreator(id uint64, pid int) {
	sh := t.shard(id)
	sh.mu.Lock()
	sh.creators[id] = pid
	sh.mu.Unlock()
}

// creator returns the recorded creator of file id (0 if unknown).
func (t *fileTable) creator(id uint64) int {
	sh := t.shard(id)
	sh.mu.Lock()
	pid := sh.creators[id]
	sh.mu.Unlock()
	return pid
}

// dropCreator forgets the creator of file id.
func (t *fileTable) dropCreator(id uint64) {
	sh := t.shard(id)
	sh.mu.Lock()
	delete(sh.creators, id)
	sh.mu.Unlock()
}

// measureTask is one unit of measurement work: the (possibly asynchronous)
// computation of a fileState from captured content. st is written exactly
// once before done is closed, so readers that wait on done observe it
// without further synchronisation.
type measureTask struct {
	st   *fileState
	done chan struct{}
}

// closedCh is the shared already-closed channel backing resolved tasks.
var closedCh = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// resolvedTask wraps an already computed state as a completed task.
func resolvedTask(st *fileState) *measureTask {
	return &measureTask{st: st, done: closedCh}
}

// state blocks until the measurement completes and returns it. A nil task
// yields a nil state.
func (t *measureTask) state() *fileState {
	if t == nil {
		return nil
	}
	<-t.done
	return t.st
}

// measurePool bounds concurrent measurement work. Submission acquires a
// slot (blocking when all Workers slots are busy — bounded backpressure,
// never unbounded goroutine growth) and computes the measurement on a
// fresh goroutine, so the filesystem event path returns immediately while
// the sliding-window digest and entropy kernels run elsewhere.
type measurePool struct {
	sem chan struct{}
	// tel times each measurement and counts saturated submissions; nil
	// when telemetry is off (the facade's methods are nil-safe).
	tel *engineTelemetry
}

func newMeasurePool(workers int, tel *engineTelemetry) *measurePool {
	return &measurePool{sem: make(chan struct{}, workers), tel: tel}
}

// submit schedules fn — the engine's prepared measurement closure — on a
// worker and returns its task handle.
func (p *measurePool) submit(fn func() *fileState) *measureTask {
	t := &measureTask{done: make(chan struct{})}
	if tl := p.tel; tl != nil && len(p.sem) == cap(p.sem) {
		tl.poolSaturated.Inc()
	}
	p.sem <- struct{}{}
	go func() {
		t.st = fn()
		close(t.done)
		<-p.sem
	}()
	return t
}

// sniffKey identifies a sniffed read payload: the file it came from, the
// payload length and a hash of the leading bytes. Keying on the file ID
// keeps the cache exact across distinct files that share a prefix (two
// OOXML containers can agree on far more than 16 leading bytes).
type sniffKey struct {
	id uint64
	n  int
	h  uint64
}

// sniffCacheCap bounds the per-process sniff cache.
const sniffCacheCap = 64

// sniffCache is a small per-process LRU mapping a read payload's prefix to
// its identified type, so a process re-reading the same file does not pay
// for magic.Identify on every offset-0 read. It is only ever touched under
// the owning proc-shard lock.
type sniffCache struct {
	m     map[sniffKey]magic.Type
	order []sniffKey // least recently used first
}

// prefixHash is FNV-1a over the first 16 bytes of data.
func prefixHash(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	n := len(data)
	if n > 16 {
		n = 16
	}
	h := uint64(offset64)
	for _, b := range data[:n] {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}

func (c *sniffCache) key(id uint64, data []byte) sniffKey {
	return sniffKey{id: id, n: len(data), h: prefixHash(data)}
}

// get returns the cached type for the payload, refreshing its recency.
func (c *sniffCache) get(k sniffKey) (magic.Type, bool) {
	t, ok := c.m[k]
	if !ok {
		return magic.Type{}, false
	}
	for i, ek := range c.order {
		if ek == k {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = k
			break
		}
	}
	return t, true
}

// put caches the identified type, evicting the least recently used entry
// when full.
func (c *sniffCache) put(k sniffKey, t magic.Type) {
	if c.m == nil {
		c.m = make(map[sniffKey]magic.Type, sniffCacheCap)
	}
	if _, ok := c.m[k]; !ok && len(c.order) >= sniffCacheCap {
		delete(c.m, c.order[0])
		copy(c.order, c.order[1:])
		c.order = c.order[:len(c.order)-1]
	}
	if _, ok := c.m[k]; !ok {
		c.order = append(c.order, k)
	}
	c.m[k] = t
}
