package core

import (
	"fmt"
	"sort"

	"cryptodrop/internal/entropy"
	"cryptodrop/internal/magic"
	"cryptodrop/internal/sdhash"
	"cryptodrop/internal/snapshot"
	"cryptodrop/internal/telemetry"
)

// This file implements the engine side of the durable-session contract: a
// versioned, deterministic capture of every piece of state that decides a
// verdict — the scoreboard shards, the previous-version file cache, the
// creator map, the incremental-entropy histograms, the detection log, the
// operation counter, the payload-blind flag, and the flight recorder — plus
// the restore path that rebuilds an identically-configured engine from it.
//
// The contract has two halves:
//
//   - Identity. Every snapshot embeds the engine's indicator-registry
//     fingerprint and a hash of the scoring-relevant configuration. Restore
//     verifies both before touching any state, so a checkpoint can never be
//     silently replayed into a pipeline that would score it differently
//     (ErrSnapshotMismatch names the diverging field).
//   - Determinism. Encoding the same quiesced engine twice yields the same
//     bytes, and a restored engine continues bit-identically: maps travel in
//     sorted key order, floats as exact IEEE-754 bit patterns, and the
//     flight recorder's sequence counter resumes where it stopped.
//
// Callers must quiesce the engine around Snapshot and Restore: no
// concurrent PreEvent/Handle/Flush. The host guarantees this by
// checkpointing only between batches (queued sessions) or under the direct
// mutex (direct sessions).

// engineSnapshotVersion is the engine snapshot format version. Bump it when
// the payload layout changes; restore refuses other versions with a typed
// error wrapping snapshot.ErrVersion.
const engineSnapshotVersion = 1

// The durable-session sentinels, re-exported from internal/snapshot under
// the names the facade exposes.
var (
	// ErrSnapshotMismatch reports a structurally valid snapshot produced by a
	// differently-configured pipeline (different indicator registry or
	// different scoring configuration). Restoring it is refused before any
	// state is installed.
	ErrSnapshotMismatch = snapshot.ErrMismatch
	// ErrSnapshotCorrupt reports a snapshot that is structurally damaged:
	// truncated, checksum-failed, or impossible field values.
	ErrSnapshotCorrupt = snapshot.ErrCorrupt
)

// configHash returns a stable fingerprint ("cfg1-…") of the scoring-relevant
// engine configuration: the fields that change what verdict an event stream
// produces. Performance and observability knobs (Workers, MeasureCache,
// IncrementalEntropy, Telemetry, tracers, sinks) are deliberately excluded —
// they are verdict-preserving by construction (pinned by the bit-identity
// conformance suites), so a checkpoint taken with memoization on restores
// fine into an engine with it off. FamilyOf cannot be hashed (it is code);
// snapshots store already-resolved scoring-group PIDs, so restoring under a
// different family mapping only affects operations after the restore point.
func (e *Engine) configHash() string {
	c := &e.cfg
	canon := fmt.Sprintf(
		"root=%s nonunion=%x union=%x edelta=%x simmax=%d funnel=%d points=%+v disableunion=%t unweighted=%t nocipherdelta=%t tier=%d sample=%d policy=%T",
		c.ProtectedRoot,
		f64bits(c.NonUnionThreshold), f64bits(c.UnionThreshold), f64bits(c.EntropyDeltaThreshold),
		c.SimilarityMatchMax, c.FunnelingThreshold, c.Points,
		c.DisableUnion, c.UnweightedEntropy, c.NewCipherWithoutDelta,
		c.Tier, e.sampleN, e.pol,
	)
	return fmt.Sprintf("cfg1-%016x", fnvString(canon))
}

// f64bits is shorthand for the exact bit pattern of a threshold.
func f64bits(v float64) uint64 {
	e := snapshot.NewEncoder()
	e.F64(v)
	d := e.Data()
	var out uint64
	for i := 7; i >= 0; i-- {
		out = out<<8 | uint64(d[i])
	}
	return out
}

// fnvString is FNV-1a over s.
func fnvString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	return h
}

// SnapshotIdentity returns the identity fingerprints every snapshot of this
// engine embeds: the indicator-registry fingerprint ("reg1-…", the same
// canonical identity the audit bundles carry) and the scoring-config hash
// ("cfg1-…"). Hosts embed the pair in their own checkpoint envelopes so a
// session file is refused at open time, before engine state is decoded.
func (e *Engine) SnapshotIdentity() (registry, config string) {
	return e.reg.Fingerprint(), e.configHash()
}

// snapshotHeader is the envelope identity this engine seals and expects.
func (e *Engine) snapshotHeader() snapshot.Header {
	reg, cfg := e.SnapshotIdentity()
	return snapshot.Header{Version: engineSnapshotVersion, Registry: reg, Config: cfg}
}

// Snapshot captures the engine's complete scoring state as a sealed,
// versioned byte blob. It first applies every queued measurement result
// (Flush), so the snapshot reflects all operations observed so far; queued
// evaluations apply under their original operation indices, so draining now
// is state-identical to draining later. The caller must quiesce the engine:
// no concurrent PreEvent, Handle or Flush.
func (e *Engine) Snapshot() ([]byte, error) {
	e.Flush()
	enc := snapshot.NewEncoder()
	enc.Varint(e.opIndex.Load())
	enc.Bool(e.payloadBlind.Load())
	e.encodeDetections(enc)
	e.encodeProcs(enc)
	if err := e.encodeFiles(enc); err != nil {
		return nil, err
	}
	e.encodeFlight(enc)
	return snapshot.Seal(e.snapshotHeader(), enc.Data()), nil
}

// Restore rebuilds the engine's scoring state from a snapshot captured by an
// identically-configured engine. The envelope's version, registry
// fingerprint and config hash are verified first (ErrSnapshotCorrupt /
// snapshot.ErrVersion / ErrSnapshotMismatch), then the entire payload is
// decoded into staging structures, and only a fully valid decode is
// installed — a damaged snapshot can never leave the engine half-restored.
// Existing scoring state is replaced wholesale. The caller must quiesce the
// engine, exactly as for Snapshot.
func (e *Engine) Restore(data []byte) error {
	h, payload, err := snapshot.Open(data)
	if err != nil {
		return err
	}
	if err := h.Check(e.snapshotHeader()); err != nil {
		return err
	}
	d := snapshot.NewDecoder(payload)
	opIdx := d.Varint()
	blind := d.Bool()
	dets := decodeDetections(d)
	procs := e.decodeProcs(d)
	states, creators, incrs := decodeFiles(d)
	flight, recorded, hasFlight := decodeFlight(d)
	if d.Err() != nil {
		return d.Err()
	}
	if d.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in engine payload", ErrSnapshotCorrupt, d.Len())
	}

	// The decode is fully valid: install.
	e.opIndex.Store(opIdx)
	e.payloadBlind.Store(blind)
	e.detMu.Lock()
	e.detections = dets
	e.detMu.Unlock()
	e.procs.init()
	for _, ps := range procs {
		sh := e.procs.shard(ps.pid)
		sh.mu.Lock()
		sh.m[ps.pid] = ps
		sh.mu.Unlock()
	}
	e.files.init()
	for id, st := range states {
		e.files.store(id, st)
	}
	for id, pid := range creators {
		e.files.setCreator(id, pid)
	}
	for id, inc := range incrs {
		sh := e.files.shard(id)
		sh.mu.Lock()
		sh.incr[id] = inc
		sh.mu.Unlock()
	}
	if t := e.tel; t != nil && t.recorder != nil {
		if hasFlight {
			t.recorder.Restore(flight, recorded)
		} else {
			t.recorder.Restore(nil, 0)
		}
	}
	return nil
}

// encodeDetections writes the detection log in occurrence order.
func (e *Engine) encodeDetections(enc *snapshot.Encoder) {
	e.detMu.Lock()
	defer e.detMu.Unlock()
	enc.Uvarint(uint64(len(e.detections)))
	for _, det := range e.detections {
		enc.Varint(int64(det.PID))
		enc.F64(det.Score)
		enc.F64(det.Threshold)
		enc.Bool(det.Union)
		enc.Varint(det.OpIndex)
		encodeIndicatorPoints(enc, det.Indicators)
	}
}

func decodeDetections(d *snapshot.Decoder) []Detection {
	n := d.Count()
	var out []Detection
	for i := 0; i < n; i++ {
		det := Detection{
			PID:       int(d.Varint()),
			Score:     d.F64(),
			Threshold: d.F64(),
			Union:     d.Bool(),
			OpIndex:   d.Varint(),
		}
		det.Indicators = decodeIndicatorPoints(d)
		if d.Err() != nil {
			return nil
		}
		out = append(out, det)
	}
	return out
}

// encodeIndicatorPoints writes an indicator→points map in sorted ID order.
func encodeIndicatorPoints(enc *snapshot.Encoder, m map[Indicator]float64) {
	ids := make([]Indicator, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	enc.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		enc.Uvarint(uint64(id))
		enc.F64(m[id])
	}
}

func decodeIndicatorPoints(d *snapshot.Decoder) map[Indicator]float64 {
	n := d.Count()
	m := make(map[Indicator]float64, n)
	for i := 0; i < n; i++ {
		id := Indicator(d.Uvarint())
		m[id] = d.F64()
	}
	return m
}

// encodeStringSet writes a set in sorted order.
func encodeStringSet(enc *snapshot.Encoder, set map[string]bool) {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		enc.String(k)
	}
}

func decodeStringSet(d *snapshot.Decoder) map[string]bool {
	n := d.Count()
	set := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		set[d.String()] = true
	}
	return set
}

// encodeMean writes one WeightedMean's internal state.
func encodeMean(enc *snapshot.Encoder, s entropy.MeanState) {
	enc.F64(s.SumWeighted)
	enc.F64(s.SumWeights)
	enc.Varint(int64(s.Ops))
	enc.Varint(s.Bytes)
	enc.Bool(s.Unweighted)
}

func decodeMean(d *snapshot.Decoder) entropy.MeanState {
	return entropy.MeanState{
		SumWeighted: d.F64(),
		SumWeights:  d.F64(),
		Ops:         int(d.Varint()),
		Bytes:       d.Varint(),
		Unweighted:  d.Bool(),
	}
}

// encodeProcs writes every scoreboard entry, globally sorted by scoring-group
// PID so the encoding is independent of shard layout and map order.
func (e *Engine) encodeProcs(enc *snapshot.Encoder) {
	procs := e.procs.all()
	sort.Slice(procs, func(i, j int) bool { return procs[i].pid < procs[j].pid })
	enc.Uvarint(uint64(len(procs)))
	for _, ps := range procs {
		enc.Varint(int64(ps.pid))
		enc.F64(ps.score)
		read, write := ps.delta.State()
		encodeMean(enc, read)
		encodeMean(enc, write)
		// indicatorSeen values are always true; only the keys travel.
		seen := make([]Indicator, 0, len(ps.indicatorSeen))
		for id := range ps.indicatorSeen {
			seen = append(seen, id)
		}
		sort.Slice(seen, func(i, j int) bool { return seen[i] < seen[j] })
		enc.Uvarint(uint64(len(seen)))
		for _, id := range seen {
			enc.Uvarint(uint64(id))
		}
		encodeIndicatorPoints(enc, ps.indicatorPoints)
		encodeStringSet(enc, ps.typesRead)
		encodeStringSet(enc, ps.typesWritten)
		enc.Bool(ps.unionFired)
		enc.Bool(ps.detected)
		enc.Bool(ps.escalated)
		enc.Varint(int64(ps.deletes))
		enc.Varint(int64(ps.filesTransformed))
		// extsTouched preserves first-touch order; extSeen is derived on
		// restore.
		enc.Uvarint(uint64(len(ps.extsTouched)))
		for _, ext := range ps.extsTouched {
			enc.String(ext)
		}
		encodeStringSet(enc, ps.dirsTouched)
		enc.Uvarint(uint64(len(ps.history)))
		for _, hp := range ps.history {
			enc.Varint(hp.OpIndex)
			enc.F64(hp.Score)
		}
	}
}

func (e *Engine) decodeProcs(d *snapshot.Decoder) []*procState {
	n := d.Count()
	var out []*procState
	for i := 0; i < n; i++ {
		ps := newProcState(int(d.Varint()))
		ps.score = d.F64()
		read := decodeMean(d)
		write := decodeMean(d)
		ps.delta.SetState(read, write)
		for j, m := 0, d.Count(); j < m; j++ {
			ps.indicatorSeen[Indicator(d.Uvarint())] = true
		}
		ps.indicatorPoints = decodeIndicatorPoints(d)
		ps.typesRead = decodeStringSet(d)
		ps.typesWritten = decodeStringSet(d)
		ps.unionFired = d.Bool()
		ps.detected = d.Bool()
		ps.escalated = d.Bool()
		ps.deletes = int(d.Varint())
		ps.filesTransformed = int(d.Varint())
		for j, m := 0, d.Count(); j < m; j++ {
			ps.touchExt(d.String())
		}
		ps.dirsTouched = decodeStringSet(d)
		for j, m := 0, d.Count(); j < m; j++ {
			ps.history = append(ps.history, ScorePoint{OpIndex: d.Varint(), Score: d.F64()})
		}
		if d.Err() != nil {
			return nil
		}
		out = append(out, ps)
	}
	return out
}

// encodeFiles writes the previous-version file cache (resolving any
// measurement still in flight on the pool), the creator map and the
// incremental-entropy trackers, each globally sorted by file ID.
func (e *Engine) encodeFiles(enc *snapshot.Encoder) error {
	type fileEntry struct {
		id   uint64
		task *measureTask
	}
	var entries []fileEntry
	var creatorIDs []uint64
	creators := make(map[uint64]int)
	var incrIDs []uint64
	incrs := make(map[uint64]*incrState)
	for i := range e.files.shards {
		sh := &e.files.shards[i]
		sh.mu.Lock()
		for id, task := range sh.states {
			entries = append(entries, fileEntry{id: id, task: task})
		}
		for id, pid := range sh.creators {
			creatorIDs = append(creatorIDs, id)
			creators[id] = pid
		}
		for id, inc := range sh.incr {
			incrIDs = append(incrIDs, id)
			incrs[id] = inc
		}
		sh.mu.Unlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	sort.Slice(creatorIDs, func(i, j int) bool { return creatorIDs[i] < creatorIDs[j] })
	sort.Slice(incrIDs, func(i, j int) bool { return incrIDs[i] < incrIDs[j] })

	enc.Uvarint(uint64(len(entries)))
	for _, en := range entries {
		// state() blocks until a pool measurement resolves; no shard lock is
		// held here, so waiting is safe.
		st := en.task.state()
		enc.Uvarint(en.id)
		enc.Bool(st != nil)
		if st == nil {
			continue
		}
		enc.String(st.typ.Name)
		enc.String(st.typ.ID)
		enc.Varint(int64(st.typ.Category))
		if st.digest != nil {
			text, err := st.digest.MarshalText()
			if err != nil {
				return fmt.Errorf("snapshot file %d: %w", en.id, err)
			}
			enc.Bool(true)
			enc.Bytes(text)
		} else {
			enc.Bool(false)
		}
		enc.Varint(st.size)
		enc.F64(st.entropy)
		enc.Bool(st.sampled)
		enc.F64(st.sampleEntropy)
	}

	enc.Uvarint(uint64(len(creatorIDs)))
	for _, id := range creatorIDs {
		enc.Uvarint(id)
		enc.Varint(int64(creators[id]))
	}

	enc.Uvarint(uint64(len(incrIDs)))
	for _, id := range incrIDs {
		inc := incrs[id]
		enc.Uvarint(id)
		enc.Uvarint(inc.gen)
		enc.Bool(inc.hist != nil)
		if inc.hist != nil {
			freq, total := inc.hist.Counts()
			for _, f := range freq {
				enc.Varint(int64(f))
			}
			enc.Varint(int64(total))
		}
		enc.Varint(inc.size)
		enc.Bool(inc.pendSet)
		enc.Varint(int64(inc.pendPID))
		enc.Varint(inc.pendOff)
		enc.Varint(int64(inc.pendLen))
	}
	return nil
}

func decodeFiles(d *snapshot.Decoder) (states map[uint64]*fileState, creators map[uint64]int, incrs map[uint64]*incrState) {
	states = make(map[uint64]*fileState)
	for i, n := 0, d.Count(); i < n; i++ {
		id := d.Uvarint()
		if !d.Bool() {
			states[id] = nil
			continue
		}
		st := &fileState{}
		st.typ.Name = d.String()
		st.typ.ID = d.String()
		st.typ.Category = magic.Category(d.Varint())
		if d.Bool() {
			text := d.Bytes()
			if d.Err() == nil {
				dg := new(sdhash.Digest)
				if err := dg.UnmarshalText(text); err != nil {
					d.Fail("file %d digest: %v", id, err)
					return nil, nil, nil
				}
				st.digest = dg
			}
		}
		st.size = d.Varint()
		st.entropy = d.F64()
		st.sampled = d.Bool()
		st.sampleEntropy = d.F64()
		if d.Err() != nil {
			return nil, nil, nil
		}
		states[id] = st
	}
	creators = make(map[uint64]int)
	for i, n := 0, d.Count(); i < n; i++ {
		id := d.Uvarint()
		creators[id] = int(d.Varint())
	}
	incrs = make(map[uint64]*incrState)
	for i, n := 0, d.Count(); i < n; i++ {
		id := d.Uvarint()
		inc := &incrState{gen: d.Uvarint()}
		if d.Bool() {
			var freq [256]int
			for j := range freq {
				freq[j] = int(d.Varint())
			}
			total := int(d.Varint())
			h := new(entropy.Histogram)
			h.SetCounts(freq, total)
			inc.hist = h
		}
		inc.size = d.Varint()
		inc.pendSet = d.Bool()
		inc.pendPID = int(d.Varint())
		inc.pendOff = d.Varint()
		inc.pendLen = int(d.Varint())
		if d.Err() != nil {
			return nil, nil, nil
		}
		incrs[id] = inc
	}
	return states, creators, incrs
}

// encodeFlight writes the flight recorder's buffered events and its all-time
// recorded count, so restored traces resume with identical sequence numbers.
// A presence flag keeps recorder-less engines' snapshots restorable into
// recorder-equipped ones (the events are simply absent) and vice versa.
func (e *Engine) encodeFlight(enc *snapshot.Encoder) {
	var fr *telemetry.FlightRecorder
	if t := e.tel; t != nil {
		fr = t.recorder
	}
	if fr == nil {
		enc.Bool(false)
		return
	}
	enc.Bool(true)
	events, recorded := fr.Snapshot()
	enc.Uvarint(recorded)
	enc.Uvarint(uint64(len(events)))
	for _, ev := range events {
		enc.Uvarint(ev.Seq)
		enc.Varint(int64(ev.Group))
		enc.Varint(ev.OpIndex)
		enc.String(ev.Path)
		enc.String(ev.Indicator)
		enc.Varint(int64(ev.IndicatorID))
		enc.F64(ev.Points)
		enc.F64(ev.ScoreAfter)
		enc.Bool(ev.Union)
		enc.Varint(ev.At)
	}
}

func decodeFlight(d *snapshot.Decoder) (events []telemetry.FireEvent, recorded uint64, present bool) {
	if !d.Bool() {
		return nil, 0, false
	}
	recorded = d.Uvarint()
	n := d.Count()
	for i := 0; i < n; i++ {
		ev := telemetry.FireEvent{
			Seq:         d.Uvarint(),
			Group:       int(d.Varint()),
			OpIndex:     d.Varint(),
			Path:        d.String(),
			Indicator:   d.String(),
			IndicatorID: int(d.Varint()),
			Points:      d.F64(),
			ScoreAfter:  d.F64(),
			Union:       d.Bool(),
			At:          d.Varint(),
		}
		if d.Err() != nil {
			return nil, 0, false
		}
		events = append(events, ev)
	}
	return events, recorded, true
}
