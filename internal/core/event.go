package core

// The engine is backend-neutral: it consumes a stream of Events — the
// paper's "file system operations" abstraction (§III, Fig. 2) — and asks a
// ContentSource for file bytes when an indicator needs them. Nothing in the
// hot path knows which monitoring vantage point produced the stream: the
// in-memory VFS filter chain, a live directory watcher, or a recorded trace
// are all thin adapters that translate their native representation into
// Events (see DESIGN.md, "Event model and backends").

// EventKind identifies the file operation an Event describes.
type EventKind int

// The event kinds. They mirror the operations of the paper's minifilter
// vantage point; every backend maps its native notifications onto these.
const (
	EvCreate EventKind = iota + 1 // a new file came into existence
	EvOpen                        // an existing file was opened
	EvRead                        // payload bytes were read
	EvWrite                       // payload bytes were written
	EvClose                       // a handle was closed (Wrote marks write handles)
	EvDelete                      // a file was removed
	EvRename                      // a file moved (possibly replacing another)
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case EvCreate:
		return "create"
	case EvOpen:
		return "open"
	case EvRead:
		return "read"
	case EvWrite:
		return "write"
	case EvClose:
		return "close"
	case EvDelete:
		return "delete"
	case EvRename:
		return "rename"
	default:
		return "unknown"
	}
}

// EventFlag carries open-intent bits on EvCreate/EvOpen events. The engine
// itself only consults EvWriteIntent (to decide whether an open destroys a
// previous version worth snapshotting); the remaining bits let adapters
// preserve full open semantics through the event stream.
type EventFlag uint32

const (
	// EvReadIntent marks a handle opened for reading.
	EvReadIntent EventFlag = 1 << iota
	// EvWriteIntent marks a handle opened for writing: the previous
	// version of the file is about to be destroyed.
	EvWriteIntent
	// EvCreateIntent marks an open that may create the file.
	EvCreateIntent
	// EvTruncate marks an open that truncates existing content.
	EvTruncate
	// EvAppend marks a handle whose writes go to the end of the file.
	EvAppend
)

// Event is one backend-neutral file operation. Backends construct Events by
// value (no allocation) and hand them to Engine.PreEvent/Engine.Handle.
//
// Ordering contract: events for one scoring group (PID, or family under
// Config.FamilyOf) must be delivered in operation order; the engine
// serialises scoring per group, so cross-group interleaving is free.
// PreEvent for an operation must precede its Handle.
type Event struct {
	// Kind is the operation.
	Kind EventKind
	// PID is the acting process (resolved to a scoring group by
	// Config.FamilyOf when set).
	PID int
	// Path is the canonical file path; for EvRename it is the source.
	Path string
	// NewPath is the rename destination (EvRename only).
	NewPath string
	// FileID is the stable identity of the file operated on. It is the key
	// the engine hands to the ContentSource and the key under which
	// previous-version state is cached, so it must survive renames.
	FileID uint64
	// ReplacedID is, for EvRename, the identity of a file the rename
	// replaced at NewPath (0 if none).
	ReplacedID uint64
	// Data is the operation payload: bytes written for EvWrite, bytes read
	// for EvRead. The engine treats it as read-only and does not retain it.
	Data []byte
	// Offset is the payload position for EvRead/EvWrite.
	Offset int64
	// Size is the file size when the event fired. For EvOpen with
	// EvWriteIntent it must be the size before any truncation — a positive
	// Size is what tells the engine a previous version exists to snapshot.
	Size int64
	// Flags carries open-intent bits (EvCreate/EvOpen).
	Flags EventFlag
	// Wrote reports, for EvClose, whether the handle performed any write —
	// the trigger for transformation evaluation.
	Wrote bool
}

// ContentSource supplies current file content by stable file ID. The engine
// calls it from PreEvent (to snapshot a version about to be destroyed) and
// from Handle (to measure the result of a completed transformation); calls
// happen without any engine lock held and may run concurrently.
//
// A backend without byte access (e.g. a notification-only watcher that has
// already lost the pre-image) returns an error for unavailable content; the
// affected indicators simply do not fire. The returned slice must not be
// mutated afterwards — return a copy if the backing store changes in place.
type ContentSource interface {
	Content(id uint64) ([]byte, error)
}

// RangeReader is an optional ContentSource capability: a source that can
// serve a byte range without materialising the whole file implements it,
// and the engine's sampled measurement tier and incremental-entropy write
// capture use it to read only the bytes they need. ContentRange returns the
// file bytes in [off, off+n) — shorter at end of file, empty when off is at
// or past it — together with the file's total size.
type RangeReader interface {
	ContentRange(id uint64, off, n int64) (data []byte, size int64, err error)
}

// readRange reads [off, off+n) of the file through src's RangeReader
// capability when present, falling back to a full Content read sliced down
// for sources that cannot seek.
func readRange(src ContentSource, id uint64, off, n int64) ([]byte, int64, error) {
	if rr, ok := src.(RangeReader); ok {
		return rr.ContentRange(id, off, n)
	}
	content, err := src.Content(id)
	if err != nil {
		return nil, 0, err
	}
	size := int64(len(content))
	if off < 0 || off >= size || n <= 0 {
		return nil, size, nil
	}
	end := off + n
	if end > size {
		end = size
	}
	return content[off:end], size, nil
}

// noContent is the ContentSource used when New is handed nil: every lookup
// misses, so content-dependent indicators never fire but the payload-level
// indicators (entropy delta over reads/writes, deletion, funneling) still
// work.
type noContent struct{}

func (noContent) Content(uint64) ([]byte, error) { return nil, errNoContent }

type contentError string

func (e contentError) Error() string { return string(e) }

// errNoContent reports a ContentSource miss.
const errNoContent = contentError("core: no content source")
