package core

// Microbenchmarks for the engine durability primitives: sealing the engine's
// complete scoring state (sharded scoreboards, file baselines, open-handle
// groups, detection latch, flight recorder) into a snapshot blob, and
// rehydrating a fresh engine from one. The engine under measurement is
// mid-attack: 64 tracked files, several hundred hot-path ops applied, a
// detection latched — representative of what a per-interval host checkpoint
// actually serialises.

import (
	"fmt"
	"math/rand"
	"testing"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/vfs"
)

// benchSnapshotEngine builds an engine with representative mid-attack state
// and returns it with its construction inputs (for building restore twins).
func benchSnapshotEngine(b *testing.B) (*Engine, Config, ContentSource) {
	b.Helper()
	const root = "/Users/victim/Documents"
	const nfiles = 64
	fs := vfs.New()
	if err := fs.MkdirAll(root); err != nil {
		b.Fatal(err)
	}
	doc := corpus.Generate("docx", 7, 16<<10)
	cipher := make([]byte, 16<<10)
	rand.New(rand.NewSource(42)).Read(cipher)

	cfg := DefaultConfig(root)
	cfg.FlightRecorder = telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
	src := testSource{fs}
	e := New(cfg, src)
	for i := 0; i < 10*nfiles; i++ {
		id := uint64(i%nfiles + 1)
		p := fmt.Sprintf("%s/bench%03d.docx", root, id)
		if i%nfiles == 0 {
			if err := fs.WriteFile(0, p, doc); err != nil {
				b.Fatal(err)
			}
		}
		pid := i%4 + 1
		switch {
		case i%10 == 9:
			e.PreEvent(Event{Kind: EvOpen, PID: pid, Path: p, FileID: id,
				Flags: EvWriteIntent, Size: int64(len(doc))})
			e.Handle(Event{Kind: EvClose, PID: pid, Path: p, FileID: id, Wrote: true})
		case i%2 == 0:
			e.Handle(Event{Kind: EvRead, PID: pid, Path: p, FileID: id, Data: doc})
		default:
			e.Handle(Event{Kind: EvWrite, PID: pid, Path: p, FileID: id,
				Data: cipher, Size: int64(len(cipher))})
		}
	}
	e.Flush()
	return e, cfg, src
}

func BenchmarkEngineSnapshot(b *testing.B) {
	e, _, _ := benchSnapshotEngine(b)
	blob, err := e.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineRestore(b *testing.B) {
	e, cfg, src := benchSnapshotEngine(b)
	blob, err := e.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	twinCfg := cfg
	twinCfg.FlightRecorder = telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
	twin := New(twinCfg, src)
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := twin.Restore(blob); err != nil {
			b.Fatal(err)
		}
	}
}
