package core

import (
	"time"

	"cryptodrop/internal/entropy"
	"cryptodrop/internal/indicator"
	"cryptodrop/internal/magic"
	"cryptodrop/internal/measurecache"
	"cryptodrop/internal/sdhash"
	"cryptodrop/internal/telemetry"
)

// This file is the content side of the measurement layer: reading a file's
// bytes through the ContentSource and turning them into a fileState (magic
// type, similarity digest, size, Shannon entropy). All of it is gated on
// the registry's declared feature needs — when no registered unit consumes
// FeatContent, the engine never calls the ContentSource at all.
//
// Three optimisation paths can shortcut the kernels, none of which changes
// any verdict:
//
//   - the measurement memo cache (Config.MeasureCache) resolves content
//     already measured anywhere in the fleet by hash lookup;
//   - the incremental entropy tracker (Config.IncrementalEntropy) keeps a
//     per-file byte histogram folded forward by each write, replacing the
//     full-content entropy rescan with an O(256) readout;
//   - the sampled tier (Config.Tier = TierSampled) reads and measures only
//     the file's header area until the process earns escalation.

// measureFile computes the cached state for content.
func measureFile(content []byte) *fileState {
	st := &fileState{
		typ:     magic.Identify(content),
		size:    int64(len(content)),
		entropy: entropy.Shannon(content),
	}
	if d, err := sdhash.Compute(content); err == nil {
		st.digest = d
	}
	return st
}

// measureSampled computes the cheap-tier state from the file's leading
// sample: exact magic identification (the sample always covers
// magic.SniffLen), prefix entropy and a prefix similarity digest. size is
// the file's full size.
func measureSampled(sample []byte, fullSize int64) *fileState {
	st := &fileState{
		typ:     magic.Identify(sample),
		size:    fullSize,
		entropy: entropy.Shannon(sample),
		sampled: true,
	}
	st.sampleEntropy = st.entropy
	if d, err := sdhash.Compute(sample); err == nil {
		st.digest = d
	}
	return st
}

// Memo-key mode flags: the measurement flavour is part of the cache key, so
// a sampled-tier state can never be served to a full-tier measurement (or
// across different sample sizes). The sample size occupies the high bits.
const (
	memoFull       uint32 = 0 // plain full-content measurement
	memoFullPrefix uint32 = 1 // full content + recorded prefix entropy
	memoSampled    uint32 = 2 // prefix-only cheap-tier measurement
)

// memoMode returns the memo key mode for a measurement at the given tier
// under this engine's configuration.
func (e *Engine) memoMode(sampled bool) uint32 {
	if sampled {
		return memoSampled | uint32(e.sampleN)<<2
	}
	if e.cfg.Tier == TierSampled {
		return memoFullPrefix | uint32(e.sampleN)<<2
	}
	return memoFull
}

// stateCost estimates the resident bytes of a memoized state for the
// cache's byte accounting: the struct itself plus the digest's filters.
func stateCost(st *fileState) int64 {
	cost := int64(96)
	if st.digest != nil {
		cost += int64(st.digest.MemSize())
	}
	return cost
}

// measureSpec is one prepared measurement: the captured content (or header
// sample) plus everything the kernels need that was resolved on the event
// path — the tier flavour, a histogram-supplied entropy value, the memo key
// to fill on completion, and the incremental-tracker install ticket.
type measureSpec struct {
	content  []byte
	fullSize int64 // sampled mode: the file's total size
	sampled  bool
	// knownEntropy, when haveEntropy is set, replaces the content scan
	// (incremental histogram hit; bit-identical to the rescan).
	knownEntropy float64
	haveEntropy  bool
	// memoKey is filled into the memo cache after the kernels run.
	memoKey measurecache.Key
	useMemo bool
	// install schedules the computed histogram as file installID's
	// incremental tracker, valid only if its generation is still installGen.
	install    bool
	installID  uint64
	installGen uint64
}

// spanDetail names the measurement flavour for a causal span: the ladder
// tier, the entropy source and whether the result feeds the memo cache.
func (sp *measureSpec) spanDetail() string {
	d := "tier=full"
	if sp.sampled {
		d = "tier=sampled"
	}
	if sp.haveEntropy {
		d += " entropy=incremental"
	} else {
		d += " entropy=scan"
	}
	if sp.useMemo {
		d += " memo=store"
	}
	return d
}

// runMeasure executes a prepared measurement: on the event path in
// synchronous mode, on a pool worker otherwise.
func (e *Engine) runMeasure(sp measureSpec) *fileState {
	if tl := e.tel; tl != nil {
		t0 := time.Now()
		defer func() { tl.measureLat.ObserveDuration(time.Since(t0)) }()
	}
	// Measurements sample independently of the operation that queued them:
	// with a pool they run on worker goroutines, long after Handle returned.
	if e.spans.Sample() {
		t0 := time.Now()
		defer func() {
			e.spans.Record(telemetry.Span{
				Name: "measure", Cat: "measure", Lane: e.lane, Detail: sp.spanDetail(),
			}, t0, time.Since(t0))
		}()
	}
	if sp.sampled {
		st := measureSampled(sp.content, sp.fullSize)
		if sp.useMemo {
			e.memo.Put(sp.memoKey, st, stateCost(st))
		}
		return st
	}
	st := &fileState{typ: magic.Identify(sp.content), size: int64(len(sp.content))}
	var hist *entropy.Histogram
	switch {
	case sp.haveEntropy:
		st.entropy = sp.knownEntropy
	case sp.install:
		// Build the histogram once and read entropy from it — the same
		// frequency counts Shannon would build, so the value is
		// bit-identical — then keep it as the file's tracker.
		hist = entropy.HistogramOf(sp.content)
		st.entropy = hist.Entropy()
	default:
		st.entropy = entropy.Shannon(sp.content)
	}
	if d, err := sdhash.Compute(sp.content); err == nil {
		st.digest = d
	}
	if e.cfg.Tier == TierSampled {
		// Full measurements in a sampled-tier session also record the
		// header-area entropy, so deltas against sampled previous versions
		// compare prefix against prefix.
		n := e.sampleN
		if n > len(sp.content) {
			n = len(sp.content)
		}
		st.sampleEntropy = entropy.Shannon(sp.content[:n])
	}
	if sp.useMemo {
		e.memo.Put(sp.memoKey, st, stateCost(st))
	}
	if hist != nil {
		e.incrInstall(sp.installID, sp.installGen, hist, int64(len(sp.content)))
	}
	return st
}

// startMeasure reads the file's content at the requested tier and starts
// its measurement: memo cache first, then the kernels — on the pool when
// configured, inline otherwise. ok is false when the content cannot be read
// (counted in telemetry — a read failure is not "empty content") or when
// skipEmpty is set and the file is empty.
func (e *Engine) startMeasure(id uint64, sampled, skipEmpty bool) (*measureTask, bool) {
	var sp measureSpec
	if sampled {
		data, size, err := readRange(e.src, id, 0, int64(e.sampleN))
		if err != nil {
			e.tel.readFailed()
			return nil, false
		}
		sp = measureSpec{content: data, fullSize: size, sampled: true}
	} else {
		content, err := e.src.Content(id)
		if err != nil {
			e.tel.readFailed()
			return nil, false
		}
		sp = measureSpec{content: content, fullSize: int64(len(content))}
	}
	if skipEmpty && len(sp.content) == 0 {
		return nil, false
	}
	if e.memo != nil {
		// A sampled key must also discriminate the full size: two files may
		// share a header sample yet differ in length, and size participates
		// in digest-reliability verdicts.
		if sampled {
			sp.memoKey = measurecache.KeyOfSeeded(sp.content, uint64(sp.fullSize), e.memoMode(true))
		} else {
			sp.memoKey = measurecache.KeyOf(sp.content, e.memoMode(false))
		}
		if v, ok := e.memo.Get(sp.memoKey); ok {
			if e.spans.Sample() {
				detail := "memo=hit tier=full"
				if sampled {
					detail = "memo=hit tier=sampled"
				}
				e.spans.Record(telemetry.Span{
					Name: "measure", Cat: "measure", Lane: e.lane, Detail: detail,
				}, time.Now(), 0)
			}
			return resolvedTask(v.(*fileState)), true
		}
		sp.useMemo = true
	}
	if !sampled && e.cfg.IncrementalEntropy {
		if ent, ok, gen := e.incrPrepare(id, len(sp.content)); ok {
			sp.knownEntropy, sp.haveEntropy = ent, true
		} else {
			sp.install, sp.installID, sp.installGen = true, id, gen
		}
	}
	if e.pool != nil {
		return e.pool.submit(func() *fileState { return e.runMeasure(sp) }), true
	}
	return resolvedTask(e.runMeasure(sp)), true
}

// wantContent reports whether any registered unit consumes measured file
// content.
func (e *Engine) wantContent() bool { return e.feats.Has(indicator.FeatContent) }

// snapshot caches the current content state of the file with the given ID
// if not already cached. The content read and measurement run without any
// engine lock held; with a measurement pool the digestion itself is
// deferred to a worker and later lookups wait on the resolving task.
func (e *Engine) snapshot(id uint64, sampled bool) {
	if e.files.has(id) {
		return
	}
	if task, ok := e.startMeasure(id, sampled, true); ok {
		e.files.storeIfMissing(id, task)
	}
}

func (e *Engine) snapshotIfMissing(id uint64, sampled bool) { e.snapshot(id, sampled) }

// needsContent reports whether the operation evaluates a file
// transformation and therefore needs the file's current content measured;
// the caller holds the proc-shard lock. Always false when no registered
// unit consumes content.
func (e *Engine) needsContent(ev *Event) bool {
	if !e.wantContent() {
		return false
	}
	switch ev.Kind {
	case EvClose:
		return ev.Wrote
	case EvRename:
		return e.inRoot(ev.NewPath) && (ev.ReplacedID != 0 || e.files.has(ev.FileID))
	}
	return false
}

// prepareMeasure reads the file's content (no engine lock held) and starts
// its measurement: on the pool when configured, inline otherwise. It
// returns nil when the content cannot be read (e.g. the file was deleted in
// the window since the operation completed); the failure is counted in
// telemetry so it is distinguishable from genuinely empty content.
func (e *Engine) prepareMeasure(id uint64, sampled bool) *measureTask {
	task, ok := e.startMeasure(id, sampled, false)
	if !ok {
		return nil
	}
	return task
}

// escalated reports whether pid's scoring group has been promoted to full
// measurement, without creating a scoreboard entry.
func (e *Engine) escalated(pid int) bool {
	if e.cfg.FamilyOf != nil {
		pid = e.cfg.FamilyOf(pid)
	}
	sh := e.procs.shard(pid)
	sh.mu.Lock()
	ps := sh.m[pid]
	esc := ps != nil && ps.escalated
	sh.mu.Unlock()
	return esc
}

// tierSampled reports whether pid's next measurement should use the cheap
// sampled tier: the session runs the ladder and the process has not yet
// earned escalation.
func (e *Engine) tierSampled(pid int) bool {
	return e.cfg.Tier == TierSampled && !e.escalated(pid)
}

// minReliableFeatures is the feature count above which a digest is always
// trusted for a dissimilarity verdict.
const minReliableFeatures = 8

// reliableDigest reports whether the previous version's digest can support
// a dissimilarity verdict: either it has plenty of features, or its feature
// density is high enough that the features are characteristic content
// rather than chance windows in random-like data (≥ 1 feature per 256
// bytes). Chance features in ciphertext-like streams occur orders of
// magnitude more sparsely.
func reliableDigest(st *fileState) bool {
	if st.digest == nil {
		return false
	}
	fc := st.digest.FeatureCount()
	return fc >= minReliableFeatures || int64(fc)*256 >= st.size
}

// dissimilar reports whether new content is completely dissimilar from the
// previous digest: either its comparison score is at or below the match
// ceiling, or the new content is undigestable (as ciphertext is) while the
// old version was digestable.
func (e *Engine) dissimilar(prev *sdhash.Digest, next *sdhash.Digest) bool {
	if next == nil {
		return true
	}
	return prev.Compare(next) <= e.cfg.SimilarityMatchMax
}

// The incremental entropy tracker. Each tracked file's incrState lives on
// its fileShard; the engine folds writes through PreEvent/Handle pairs and
// consults the histogram at full-measurement time. Every ambiguous mutation
// invalidates conservatively — the only cost of invalidation is one full
// rescan at the file's next measurement.

// incrPrepare consults the file's tracker for a full measurement of content
// about to run: a valid, quiescent histogram whose bookkeeping matches the
// content length yields the entropy in O(256). Otherwise it returns the
// current generation as an install ticket for the histogram the measurement
// will build.
func (e *Engine) incrPrepare(id uint64, contentLen int) (ent float64, ok bool, gen uint64) {
	sh := e.files.shard(id)
	sh.mu.Lock()
	is := sh.incr[id]
	if is == nil {
		is = &incrState{}
		sh.incr[id] = is
	}
	if is.hist != nil && !is.pendSet && is.hist.Total() == contentLen && is.hist.Valid() {
		ent, ok = is.hist.Entropy(), true
	}
	gen = is.gen
	sh.mu.Unlock()
	return ent, ok, gen
}

// incrInstall adopts a freshly built histogram as file id's tracker, unless
// the file mutated (generation advanced) since the content was captured.
func (e *Engine) incrInstall(id uint64, gen uint64, hist *entropy.Histogram, size int64) {
	sh := e.files.shard(id)
	sh.mu.Lock()
	if is := sh.incr[id]; is != nil && is.gen == gen && !is.pendSet {
		is.hist, is.size = hist, size
	}
	sh.mu.Unlock()
}

// incrInvalidate discards the file's histogram after a mutation the tracker
// cannot fold exactly (truncation), keeping the entry so stale installs
// stay rejected.
func (e *Engine) incrInvalidate(id uint64) {
	sh := e.files.shard(id)
	sh.mu.Lock()
	if is := sh.incr[id]; is != nil {
		is.gen++
		is.hist = nil
		is.pendSet = false
	}
	sh.mu.Unlock()
}

// incrDrop forgets the file's tracker entirely (deletion, replacement).
func (e *Engine) incrDrop(id uint64) {
	sh := e.files.shard(id)
	sh.mu.Lock()
	delete(sh.incr, id)
	sh.mu.Unlock()
}

// incrBeginWrite folds the write's replaced byte range out of the file's
// histogram. Called from PreEvent, where the ContentSource still observes
// the pre-write bytes. Anything unattributable — a second in-flight write,
// a sparse write past the tracked size, a short or failed range read —
// invalidates the histogram instead of guessing.
func (e *Engine) incrBeginWrite(ev *Event) {
	sh := e.files.shard(ev.FileID)
	sh.mu.Lock()
	is := sh.incr[ev.FileID]
	if is == nil || is.hist == nil {
		sh.mu.Unlock()
		return
	}
	if is.pendSet || ev.Offset < 0 || ev.Offset > is.size {
		is.gen++
		is.hist = nil
		is.pendSet = false
		sh.mu.Unlock()
		return
	}
	oldN := int64(len(ev.Data))
	if ev.Offset+oldN > is.size {
		oldN = is.size - ev.Offset
	}
	gen := is.gen
	sh.mu.Unlock()

	var old []byte
	if oldN > 0 {
		var err error
		old, _, err = readRange(e.src, ev.FileID, ev.Offset, oldN)
		if err != nil {
			e.tel.readFailed()
			old = nil
		}
	}

	sh.mu.Lock()
	cur := sh.incr[ev.FileID]
	if cur != is || cur.hist == nil || cur.gen != gen || cur.pendSet {
		// The file moved on while the range was being read; whoever moved it
		// already invalidated or superseded the histogram.
		sh.mu.Unlock()
		return
	}
	if int64(len(old)) != oldN {
		cur.gen++
		cur.hist = nil
		sh.mu.Unlock()
		return
	}
	cur.hist.Sub(old)
	cur.pendSet, cur.pendPID, cur.pendOff, cur.pendLen = true, ev.PID, ev.Offset, len(ev.Data)
	sh.mu.Unlock()
}

// incrApplyWrite folds the completed write's bytes into the histogram;
// called from handleWrite with the proc-shard lock held (proc → file lock
// order). A write with no matching PreEvent capture invalidates — the
// replaced bytes were never folded out.
func (e *Engine) incrApplyWrite(ev *Event) {
	sh := e.files.shard(ev.FileID)
	sh.mu.Lock()
	is := sh.incr[ev.FileID]
	if is == nil {
		is = &incrState{}
		sh.incr[ev.FileID] = is
	}
	is.gen++
	if is.hist != nil && is.pendSet &&
		is.pendPID == ev.PID && is.pendOff == ev.Offset && is.pendLen == len(ev.Data) {
		is.pendSet = false
		is.hist.Add(ev.Data)
		if end := ev.Offset + int64(len(ev.Data)); end > is.size {
			is.size = end
		}
	} else if is.hist != nil {
		is.hist = nil
		is.pendSet = false
	}
	sh.mu.Unlock()
}
