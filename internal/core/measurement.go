package core

import (
	"cryptodrop/internal/entropy"
	"cryptodrop/internal/indicator"
	"cryptodrop/internal/magic"
	"cryptodrop/internal/sdhash"
)

// This file is the content side of the measurement layer: reading a file's
// bytes through the ContentSource and turning them into a fileState (magic
// type, similarity digest, size, Shannon entropy). All of it is gated on
// the registry's declared feature needs — when no registered unit consumes
// FeatContent, the engine never calls the ContentSource at all.

// measureFile computes the cached state for content.
func measureFile(content []byte) *fileState {
	st := &fileState{
		typ:     magic.Identify(content),
		size:    int64(len(content)),
		entropy: entropy.Shannon(content),
	}
	if d, err := sdhash.Compute(content); err == nil {
		st.digest = d
	}
	return st
}

// wantContent reports whether any registered unit consumes measured file
// content.
func (e *Engine) wantContent() bool { return e.feats.Has(indicator.FeatContent) }

// snapshot caches the current content state of the file with the given ID
// if not already cached. The content read and measurement run without any
// engine lock held; with a measurement pool the digestion itself is
// deferred to a worker and later lookups wait on the resolving task.
func (e *Engine) snapshot(id uint64) {
	if e.files.has(id) {
		return
	}
	content, err := e.src.Content(id)
	if err != nil || len(content) == 0 {
		return
	}
	if e.pool != nil {
		e.files.storeIfMissing(id, e.pool.submit(content))
		return
	}
	e.files.storeIfMissing(id, resolvedTask(e.tel.measure(content)))
}

func (e *Engine) snapshotIfMissing(id uint64) { e.snapshot(id) }

// needsContent reports whether the operation evaluates a file
// transformation and therefore needs the file's current content measured;
// the caller holds the proc-shard lock. Always false when no registered
// unit consumes content.
func (e *Engine) needsContent(ev *Event) bool {
	if !e.wantContent() {
		return false
	}
	switch ev.Kind {
	case EvClose:
		return ev.Wrote
	case EvRename:
		return e.inRoot(ev.NewPath) && (ev.ReplacedID != 0 || e.files.has(ev.FileID))
	}
	return false
}

// prepareMeasure reads the file's content (no engine lock held) and starts
// its measurement: on the pool when configured, inline otherwise. It
// returns nil when the content cannot be read (e.g. the file was deleted in
// the window since the operation completed).
func (e *Engine) prepareMeasure(id uint64) *measureTask {
	content, err := e.src.Content(id)
	if err != nil {
		return nil
	}
	if e.pool != nil {
		return e.pool.submit(content)
	}
	return resolvedTask(e.tel.measure(content))
}

// minReliableFeatures is the feature count above which a digest is always
// trusted for a dissimilarity verdict.
const minReliableFeatures = 8

// reliableDigest reports whether the previous version's digest can support
// a dissimilarity verdict: either it has plenty of features, or its feature
// density is high enough that the features are characteristic content
// rather than chance windows in random-like data (≥ 1 feature per 256
// bytes). Chance features in ciphertext-like streams occur orders of
// magnitude more sparsely.
func reliableDigest(st *fileState) bool {
	if st.digest == nil {
		return false
	}
	fc := st.digest.FeatureCount()
	return fc >= minReliableFeatures || int64(fc)*256 >= st.size
}

// dissimilar reports whether new content is completely dissimilar from the
// previous digest: either its comparison score is at or below the match
// ceiling, or the new content is undigestable (as ciphertext is) while the
// old version was digestable.
func (e *Engine) dissimilar(prev *sdhash.Digest, next *sdhash.Digest) bool {
	if next == nil {
		return true
	}
	return prev.Compare(next) <= e.cfg.SimilarityMatchMax
}
