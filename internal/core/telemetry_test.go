package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"cryptodrop/internal/telemetry"
)

// fireCounter reads the per-indicator fire counter for ind.
func fireCounter(reg *telemetry.Registry, ind Indicator) int64 {
	return reg.Counter(fmt.Sprintf("engine_indicator_fires_total{indicator=%q}", ind.String())).Value()
}

// TestTelemetryCountersMatchScriptedRun encrypts a known number of files
// with detection effectively disabled, so every indicator firing count is
// predictable: each fully transformed file fires type-change and similarity
// exactly once, and the union bonus fires exactly once overall.
func TestTelemetryCountersMatchScriptedRun(t *testing.T) {
	reg := telemetry.NewRegistry()
	fr := telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
	cfg := DefaultConfig(testRoot)
	cfg.NonUnionThreshold = 1e9
	cfg.UnionThreshold = 1e9
	cfg.Telemetry = reg
	cfg.FlightRecorder = fr
	fs, eng := setup(t, cfg)

	const pid = 42
	const encrypted = 6
	infos, err := fs.List(testRoot)
	if err != nil {
		t.Fatal(err)
	}
	// Encrypt text-like files only: their similarity digests are dense, so
	// every transformation reliably fires the similarity indicator (sparse
	// digests — compressed formats — are deliberately not trusted).
	texty := map[string]bool{".txt": true, ".csv": true, ".md": true, ".html": true, ".xml": true}
	n := 0
	for _, info := range infos {
		if n == encrypted {
			break
		}
		if i := strings.LastIndexByte(info.Path, '.'); i < 0 || !texty[info.Path[i:]] {
			continue
		}
		encryptInPlace(t, fs, pid, info.Path)
		n++
	}
	if n != encrypted {
		t.Fatalf("corpus has only %d text-like files, need %d", n, encrypted)
	}

	if got := fireCounter(reg, IndicatorTypeChange); got != encrypted {
		t.Errorf("type-change fires = %d, want %d", got, encrypted)
	}
	if got := fireCounter(reg, IndicatorSimilarity); got != encrypted {
		t.Errorf("similarity fires = %d, want %d", got, encrypted)
	}
	if got := reg.Counter("engine_union_fires_total").Value(); got != 1 {
		t.Errorf("union fires = %d, want 1", got)
	}
	if got := reg.Counter("engine_detections_total").Value(); got != 0 {
		t.Errorf("detections = %d, want 0 (thresholds disabled)", got)
	}

	// Counters must be internally consistent with the scoreboard: fires
	// times per-fire points reproduces the indicator's point totals for the
	// single-valued indicators.
	rep, ok := eng.Report(pid)
	if !ok {
		t.Fatal("no report for pid")
	}
	if want := float64(encrypted) * cfg.Points.TypeChange; rep.IndicatorPoints[IndicatorTypeChange] != want {
		t.Errorf("type-change points = %g, want %g", rep.IndicatorPoints[IndicatorTypeChange], want)
	}

	// The flight recorder saw the same history the counters did: per
	// indicator, trace events and counter values agree, and summing points
	// over the trace reproduces the reported score exactly.
	trace := fr.Trace(pid)
	byInd := make(map[string]int64)
	for _, ev := range trace.Events {
		byInd[ev.Indicator]++
	}
	for _, ind := range []Indicator{IndicatorTypeChange, IndicatorSimilarity, IndicatorEntropyDelta, IndicatorDeletion, IndicatorFunneling} {
		if got, want := byInd[ind.String()], fireCounter(reg, ind); got != want {
			t.Errorf("trace has %d %v events, counter says %d", got, ind, want)
		}
	}
	if byInd["union-bonus"] != 1 {
		t.Errorf("trace has %d union-bonus events, want 1", byInd["union-bonus"])
	}
	if math.Abs(trace.TotalPoints-rep.Score) > 1e-9 {
		t.Errorf("trace points sum to %g, scoreboard says %g", trace.TotalPoints, rep.Score)
	}
	if last := trace.Events[len(trace.Events)-1]; math.Abs(last.ScoreAfter-rep.Score) > 1e-9 {
		t.Errorf("last trace event ScoreAfter = %g, scoreboard says %g", last.ScoreAfter, rep.Score)
	}

	// Measurement latency was recorded on the synchronous path too.
	if got := reg.Histogram("engine_measure_seconds", nil).Count(); got == 0 {
		t.Error("no measure latency observations")
	}
}

// TestTelemetryDetectionTrace runs a default-config attack to detection and
// checks the detection is fully explainable from the flight recorder.
func TestTelemetryDetectionTrace(t *testing.T) {
	reg := telemetry.NewRegistry()
	fr := telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
	var detections []Detection
	cfg := DefaultConfig(testRoot)
	cfg.OnDetection = func(d Detection) { detections = append(detections, d) }
	cfg.Telemetry = reg
	cfg.FlightRecorder = fr
	cfg.Workers = 4 // exercise the measurement pool instrumentation
	fs, eng := setup(t, cfg)

	const pid = 77
	infos, err := fs.List(testRoot)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if len(detections) > 0 {
			break
		}
		encryptInPlace(t, fs, pid, info.Path)
	}
	eng.Flush()
	if len(detections) == 0 {
		t.Fatal("no detection")
	}
	d := detections[0]

	if got := reg.Counter("engine_detections_total").Value(); got != 1 {
		t.Errorf("detections counter = %d, want 1", got)
	}
	if got := reg.Histogram("engine_detection_score", nil).Count(); got != 1 {
		t.Errorf("detection score histogram count = %d, want 1", got)
	}
	snap := reg.Snapshot()
	if cap, ok := snap.Gauges["engine_measure_pool_capacity"]; !ok || cap != 4 {
		t.Errorf("pool capacity gauge = %v (present=%v), want 4", cap, ok)
	}
	if _, ok := snap.Gauges["engine_measure_pool_inflight"]; !ok {
		t.Error("pool inflight gauge not registered")
	}

	// The trace must reconstruct the detection: accumulating event points in
	// order reaches the detection score exactly, at an event whose recorded
	// ScoreAfter agrees (in-flight evaluations may keep scoring briefly
	// after the detection fires, so the detection is a prefix of the trace).
	trace := fr.Trace(pid)
	if len(trace.Events) == 0 {
		t.Fatal("empty detection trace")
	}
	if trace.Truncated {
		t.Fatal("trace truncated; raise capacity for this test")
	}
	cum := 0.0
	explained := false
	prev := 0.0
	for _, ev := range trace.Events {
		cum += ev.Points
		if math.Abs(cum-d.Score) < 1e-9 && math.Abs(ev.ScoreAfter-d.Score) < 1e-9 {
			explained = true
		}
		// Events arrive in per-group order: ScoreAfter is non-decreasing.
		if ev.ScoreAfter < prev-1e-9 {
			t.Fatalf("ScoreAfter regressed: %g after %g (seq %d)", ev.ScoreAfter, prev, ev.Seq)
		}
		prev = ev.ScoreAfter
	}
	if !explained {
		t.Errorf("no trace prefix sums to the detection score %g (trace total %g)", d.Score, trace.TotalPoints)
	}
	// The full trace explains the final scoreboard state.
	rep, ok := eng.Report(pid)
	if !ok {
		t.Fatal("no report for pid")
	}
	if math.Abs(trace.TotalPoints-rep.Score) > 1e-9 {
		t.Errorf("trace points sum to %g, final scoreboard says %g", trace.TotalPoints, rep.Score)
	}
}

// TestTelemetryDisabledIsIdentical verifies a nil registry changes nothing:
// the same attack produces a bit-identical scoreboard with telemetry on and
// off.
func TestTelemetryDisabledIsIdentical(t *testing.T) {
	run := func(reg *telemetry.Registry, fr *telemetry.FlightRecorder) ProcessReport {
		cfg := DefaultConfig(testRoot)
		cfg.Telemetry = reg
		cfg.FlightRecorder = fr
		fs, eng := setup(t, cfg)
		const pid = 9
		infos, err := fs.List(testRoot)
		if err != nil {
			t.Fatal(err)
		}
		for _, info := range infos {
			encryptInPlace(t, fs, pid, info.Path)
		}
		rep, ok := eng.Report(pid)
		if !ok {
			t.Fatal("no report")
		}
		return rep
	}
	off := run(nil, nil)
	on := run(telemetry.NewRegistry(), telemetry.NewFlightRecorder(1024))
	if off.Score != on.Score || off.Detected != on.Detected || off.FilesTransformed != on.FilesTransformed {
		t.Fatalf("telemetry changed verdicts: off=%+v on=%+v", off, on)
	}
	for ind, pts := range off.IndicatorPoints {
		if on.IndicatorPoints[ind] != pts {
			t.Fatalf("indicator %v: off=%g on=%g", ind, pts, on.IndicatorPoints[ind])
		}
	}
}
