package core

import (
	"sort"

	"cryptodrop/internal/entropy"
	"cryptodrop/internal/magic"
	"cryptodrop/internal/sdhash"
)

// fileState is the cached measurement of a file's previous version, keyed by
// stable file ID so the state survives renames and moves (§III: "the state
// of the file must be carefully tracked each time a file is moved").
type fileState struct {
	typ     magic.Type
	digest  *sdhash.Digest // nil when the content could not be digested
	size    int64
	entropy float64
	// sampled marks a cheap-tier state measured from only the file's leading
	// sample area: typ, digest and entropy then describe that prefix, while
	// size is still the full file size.
	sampled bool
	// sampleEntropy is the entropy of the leading sample area, recorded on
	// full measurements in sampled-tier sessions so entropy deltas against
	// sampled states compare like with like. Unset (zero) in full-tier
	// sessions, where it is never consulted.
	sampleEntropy float64
}

// prefixEntropy returns the entropy of the state's header sample area: the
// whole measurement for a sampled state, the recorded prefix entropy for a
// full state measured in a sampled-tier session.
func (st *fileState) prefixEntropy() float64 {
	if st.sampled {
		return st.entropy
	}
	return st.sampleEntropy
}

// procState is the per-process scoreboard entry.
type procState struct {
	pid   int
	score float64
	// delta tracks the weighted read/write entropy means.
	delta entropy.DeltaTracker
	// indicatorSeen marks indicators observed at least once.
	indicatorSeen map[Indicator]bool
	// indicatorPoints accumulates score contributions per indicator.
	indicatorPoints map[Indicator]float64
	// typesRead / typesWritten hold distinct type IDs for funneling.
	typesRead    map[string]bool
	typesWritten map[string]bool
	// unionFired records the policy's one-time acceleration latch (the
	// union bonus under the default policy).
	unionFired bool
	// detected records that OnDetection already ran for this process.
	detected bool
	// escalated records that, under the sampled measurement tier, this
	// process has been promoted to full measurement (first indicator
	// firing). Always false under TierFull.
	escalated bool
	// deletes counts protected files removed.
	deletes int
	// filesTransformed counts protected files whose rewrite completed.
	filesTransformed int
	// extsTouched records the protected file extensions this process
	// read or wrote, in first-touch order (Fig. 5 data).
	extsTouched []string
	extSeen     map[string]bool
	// dirsTouched records protected directories accessed (Fig. 4 data).
	dirsTouched map[string]bool
	// history records the score trajectory (capped, see maxHistory).
	history []ScorePoint
	// pending holds transformation evaluations whose measurement may
	// still be resolving on the pool, in submission order.
	pending []pendingApply
	// spanOn marks the operation currently scoring this process as sampled
	// for causal tracing: award and policy sub-spans record only while it
	// is set. Written and read under the owning shard lock.
	spanOn bool
	// sniff caches identified types of offset-0 read prefixes.
	sniff sniffCache
	// ctx is the scratch evaluation context handed to indicator units and
	// the policy; living here keeps hook dispatch allocation-free. Only
	// valid under the owning shard lock, reconfigured per scoring step.
	ctx evalCtx
}

// ScorePoint is one step of a process's score trajectory.
type ScorePoint struct {
	// OpIndex is the engine's protected-operation counter at this step.
	OpIndex int64
	// Score is the reputation score after the step.
	Score float64
}

// maxHistory bounds the per-process trajectory length.
const maxHistory = 20000

func newProcState(pid int) *procState {
	return &procState{
		pid:             pid,
		indicatorSeen:   make(map[Indicator]bool),
		indicatorPoints: make(map[Indicator]float64),
		typesRead:       make(map[string]bool),
		typesWritten:    make(map[string]bool),
		extSeen:         make(map[string]bool),
		dirsTouched:     make(map[string]bool),
	}
}

// touchExt records a file extension access in first-touch order.
func (ps *procState) touchExt(ext string) {
	if ext == "" || ps.extSeen[ext] {
		return
	}
	ps.extSeen[ext] = true
	ps.extsTouched = append(ps.extsTouched, ext)
}

// ProcessReport is a snapshot of one process's scoreboard entry.
type ProcessReport struct {
	// PID is the process.
	PID int
	// Score is the current reputation score.
	Score float64
	// Union reports whether union indication fired.
	Union bool
	// Detected reports whether the process crossed its threshold.
	Detected bool
	// Escalated reports whether the sampled measurement tier promoted the
	// process to full measurement. Always false under TierFull.
	Escalated bool
	// IndicatorsSeen lists indicators observed at least once, sorted.
	IndicatorsSeen []Indicator
	// IndicatorPoints are per-indicator score totals.
	IndicatorPoints map[Indicator]float64
	// ReadEntropyMean and WriteEntropyMean are the weighted means.
	ReadEntropyMean  float64
	WriteEntropyMean float64
	// Deletes counts protected files removed by the process.
	Deletes int
	// FilesTransformed counts protected files whose rewrite completed.
	FilesTransformed int
	// History is the score trajectory in operation order (capped).
	History []ScorePoint
	// ExtensionsTouched lists protected extensions in first-touch order.
	ExtensionsTouched []string
	// DirsTouched lists protected directories accessed, sorted.
	DirsTouched []string
}

func (ps *procState) report() ProcessReport {
	r := ProcessReport{
		PID:              ps.pid,
		Score:            ps.score,
		Union:            ps.unionFired,
		Detected:         ps.detected,
		Escalated:        ps.escalated,
		IndicatorPoints:  make(map[Indicator]float64, len(ps.indicatorPoints)),
		ReadEntropyMean:  ps.delta.ReadMean(),
		WriteEntropyMean: ps.delta.WriteMean(),
		Deletes:          ps.deletes,
		FilesTransformed: ps.filesTransformed,
	}
	for ind := range ps.indicatorSeen {
		r.IndicatorsSeen = append(r.IndicatorsSeen, ind)
	}
	sort.Slice(r.IndicatorsSeen, func(i, j int) bool { return r.IndicatorsSeen[i] < r.IndicatorsSeen[j] })
	for ind, pts := range ps.indicatorPoints {
		r.IndicatorPoints[ind] = pts
	}
	r.History = append(r.History, ps.history...)
	r.ExtensionsTouched = append(r.ExtensionsTouched, ps.extsTouched...)
	for d := range ps.dirsTouched {
		r.DirsTouched = append(r.DirsTouched, d)
	}
	sort.Strings(r.DirsTouched)
	return r
}
