package core

import (
	"time"

	"cryptodrop/internal/telemetry"
)

// engineTelemetry groups every metric handle the engine touches on its hot
// path. A nil *engineTelemetry disables all instrumentation at the cost of
// one branch per call site; individual handles are themselves nil-safe, so
// a flight recorder can be attached without a registry and vice versa.
type engineTelemetry struct {
	// fires counts indicator firings, indexed by Indicator.
	fires [IndicatorFunneling + 1]*telemetry.Counter
	// unions counts union-indication firings.
	unions *telemetry.Counter
	// detections counts threshold crossings.
	detections *telemetry.Counter
	// detScore and detTransformed are the score / files-transformed
	// distributions at detection time.
	detScore       *telemetry.Histogram
	detTransformed *telemetry.Histogram
	// measureLat is the file-measurement kernel latency.
	measureLat *telemetry.Histogram
	// lockWait is the sampled proc-shard lock acquisition wait.
	lockWait *telemetry.Histogram
	// poolSaturated counts submissions that found every pool slot busy.
	poolSaturated *telemetry.Counter
	// recorder captures per-group indicator firings for post-hoc
	// explanation of detections.
	recorder *telemetry.FlightRecorder
}

// lockWaitSampleMask samples one in 64 proc-shard lock acquisitions when
// telemetry is enabled, keeping two clock reads off most operations.
const lockWaitSampleMask = 63

// newEngineTelemetry wires the engine's metrics into reg and attaches the
// flight recorder. It returns nil — telemetry fully off — when both are
// nil. With a nil reg every metric handle is nil (no-op) and only the
// recorder is live.
func newEngineTelemetry(reg *telemetry.Registry, fr *telemetry.FlightRecorder) *engineTelemetry {
	if reg == nil && fr == nil {
		return nil
	}
	t := &engineTelemetry{recorder: fr}
	for _, ind := range []Indicator{IndicatorTypeChange, IndicatorSimilarity,
		IndicatorEntropyDelta, IndicatorDeletion, IndicatorFunneling} {
		t.fires[ind] = reg.Counter(`engine_indicator_fires_total{indicator="` + ind.String() + `"}`)
	}
	t.unions = reg.Counter("engine_union_fires_total")
	t.detections = reg.Counter("engine_detections_total")
	t.detScore = reg.Histogram("engine_detection_score", telemetry.ScoreBuckets())
	t.detTransformed = reg.Histogram("engine_detection_files_transformed", telemetry.CountBuckets())
	t.measureLat = reg.Histogram("engine_measure_seconds", telemetry.DefaultLatencyBuckets())
	t.lockWait = reg.Histogram("engine_proc_shard_lock_wait_seconds", telemetry.DefaultLatencyBuckets())
	t.poolSaturated = reg.Counter("engine_measure_pool_saturated_total")
	return t
}

// registerPool exposes the measurement pool's live occupancy; called once
// at engine construction when both a pool and a registry exist.
func registerPoolGauges(reg *telemetry.Registry, pool *measurePool) {
	if reg == nil || pool == nil {
		return
	}
	reg.GaugeFunc("engine_measure_pool_inflight", func() float64 {
		return float64(len(pool.sem))
	})
	reg.Gauge("engine_measure_pool_capacity").Set(int64(cap(pool.sem)))
}

// fired records one indicator award; proc-shard lock held (so events for a
// scoring group are captured in award order).
func (t *engineTelemetry) fired(ps *procState, ind Indicator, pts float64, opIdx int64, path string) {
	if t == nil {
		return
	}
	t.fires[ind].Inc()
	t.recorder.Record(telemetry.FireEvent{
		Group:      ps.pid,
		OpIndex:    opIdx,
		Path:       path,
		Indicator:  ind.String(),
		Points:     pts,
		ScoreAfter: ps.score,
		Union:      ps.unionFired,
	})
}

// unionFired records the one-time union bonus; proc-shard lock held.
func (t *engineTelemetry) unionFired(ps *procState, pts float64, opIdx int64) {
	if t == nil {
		return
	}
	t.unions.Inc()
	t.recorder.Record(telemetry.FireEvent{
		Group:      ps.pid,
		OpIndex:    opIdx,
		Indicator:  "union-bonus",
		Points:     pts,
		ScoreAfter: ps.score,
		Union:      true,
	})
}

// detected records a threshold crossing; proc-shard lock held.
func (t *engineTelemetry) detected(ps *procState) {
	if t == nil {
		return
	}
	t.detections.Inc()
	t.detScore.Observe(ps.score)
	t.detTransformed.Observe(float64(ps.filesTransformed))
}

// measure runs the measurement kernel, timing it when telemetry is on. It
// is the single entry point for both the synchronous path and the pool
// workers.
func (t *engineTelemetry) measure(content []byte) *fileState {
	if t == nil || t.measureLat == nil {
		return measureFile(content)
	}
	t0 := time.Now()
	st := measureFile(content)
	t.measureLat.ObserveDuration(time.Since(t0))
	return st
}
