package core

import (
	"cryptodrop/internal/indicator"
	"cryptodrop/internal/telemetry"
)

// engineTelemetry groups every metric handle the engine touches on its hot
// path. A nil *engineTelemetry disables all instrumentation at the cost of
// one branch per call site; individual handles are themselves nil-safe, so
// a flight recorder can be attached without a registry and vice versa.
type engineTelemetry struct {
	// fires counts indicator firings, keyed by registry indicator ID. The
	// series set is derived from the engine's indicator registry, so a
	// composed-in unit (a honeyfile, a custom indicator) gets its own
	// series without any telemetry change.
	fires map[indicator.ID]*telemetry.Counter
	// names caches each registered indicator's declared name for
	// flight-recorder attribution.
	names map[indicator.ID]string
	// unions counts policy acceleration firings (union bonus by default).
	unions *telemetry.Counter
	// detections counts threshold crossings.
	detections *telemetry.Counter
	// detScore and detTransformed are the score / files-transformed
	// distributions at detection time.
	detScore       *telemetry.Histogram
	detTransformed *telemetry.Histogram
	// measureLat is the file-measurement kernel latency.
	measureLat *telemetry.Histogram
	// lockWait is the sampled proc-shard lock acquisition wait.
	lockWait *telemetry.Histogram
	// poolSaturated counts submissions that found every pool slot busy.
	poolSaturated *telemetry.Counter
	// readFails counts ContentSource read failures on the measurement path.
	// A failed read is not "empty content": it aborts the measurement, and
	// this counter is what distinguishes the two after the fact.
	readFails *telemetry.Counter
	// escalations counts sampled-tier processes promoted to full measurement.
	escalations *telemetry.Counter
	// auditBundles counts detection audit bundles emitted to the sink.
	auditBundles *telemetry.Counter
	// recorder captures per-group indicator firings for post-hoc
	// explanation of detections.
	recorder *telemetry.FlightRecorder
}

// lockWaitSampleMask samples one in 64 proc-shard lock acquisitions when
// telemetry is enabled, keeping two clock reads off most operations.
const lockWaitSampleMask = 63

// newEngineTelemetry wires the engine's metrics into reg and attaches the
// flight recorder, deriving one fire-counter series per indicator in the
// engine's registry ir. It returns nil — telemetry fully off — when both
// reg and fr are nil. With a nil reg every metric handle is nil (no-op) and
// only the recorder is live.
func newEngineTelemetry(reg *telemetry.Registry, fr *telemetry.FlightRecorder, ir *indicator.Registry) *engineTelemetry {
	if reg == nil && fr == nil {
		return nil
	}
	t := &engineTelemetry{
		recorder: fr,
		fires:    make(map[indicator.ID]*telemetry.Counter, ir.Len()),
		names:    make(map[indicator.ID]string, ir.Len()),
	}
	for _, u := range ir.Units() {
		d := u.Decl()
		t.names[d.ID] = d.Name
		t.fires[d.ID] = reg.Counter(`engine_indicator_fires_total{indicator="` + d.Name + `"}`)
	}
	t.unions = reg.Counter("engine_union_fires_total")
	t.detections = reg.Counter("engine_detections_total")
	t.detScore = reg.Histogram("engine_detection_score", telemetry.ScoreBuckets())
	t.detTransformed = reg.Histogram("engine_detection_files_transformed", telemetry.CountBuckets())
	t.measureLat = reg.Histogram("engine_measure_seconds", telemetry.DefaultLatencyBuckets())
	t.lockWait = reg.Histogram("engine_proc_shard_lock_wait_seconds", telemetry.DefaultLatencyBuckets())
	t.poolSaturated = reg.Counter("engine_measure_pool_saturated_total")
	t.readFails = reg.Counter("engine_content_read_failures_total")
	t.escalations = reg.Counter("engine_tier_escalations_total")
	t.auditBundles = reg.Counter("engine_audit_bundles_total")
	return t
}

// registerObsSeries exposes the span tracer's recorded/dropped accounting
// as metric series, so a wrapped ring is visible in exposition instead of
// silently clipping traces; called once at engine construction when both a
// registry and a tracer exist.
func registerObsSeries(reg *telemetry.Registry, tr *telemetry.SpanTracer) {
	if reg == nil || tr == nil {
		return
	}
	reg.GaugeFunc("engine_spans_recorded_total", func() float64 { return float64(tr.Recorded()) })
	reg.GaugeFunc("engine_spans_dropped_total", func() float64 { return float64(tr.Dropped()) })
}

// registerPool exposes the measurement pool's live occupancy; called once
// at engine construction when both a pool and a registry exist.
func registerPoolGauges(reg *telemetry.Registry, pool *measurePool) {
	if reg == nil || pool == nil {
		return
	}
	reg.GaugeFunc("engine_measure_pool_inflight", func() float64 {
		return float64(len(pool.sem))
	})
	reg.Gauge("engine_measure_pool_capacity").Set(int64(cap(pool.sem)))
}

// indicatorName resolves an indicator ID to its registered declared name,
// falling back to ID.String() for units the registry does not hold.
func (t *engineTelemetry) indicatorName(id indicator.ID) string {
	if name, ok := t.names[id]; ok {
		return name
	}
	return id.String()
}

// fired records one indicator award; proc-shard lock held (so events for a
// scoring group are captured in award order).
func (t *engineTelemetry) fired(ps *procState, id indicator.ID, pts float64, opIdx int64, path string) {
	if t == nil {
		return
	}
	t.fires[id].Inc()
	t.recorder.Record(telemetry.FireEvent{
		Group:       ps.pid,
		OpIndex:     opIdx,
		Path:        path,
		Indicator:   t.indicatorName(id),
		IndicatorID: int(id),
		Points:      pts,
		ScoreAfter:  ps.score,
		Union:       ps.unionFired,
	})
}

// accelerated records the policy's one-time acceleration bonus under its
// own label ("union-bonus" for the default union policy); proc-shard lock
// held.
func (t *engineTelemetry) accelerated(ps *procState, label string, pts float64, opIdx int64) {
	if t == nil {
		return
	}
	t.unions.Inc()
	t.recorder.Record(telemetry.FireEvent{
		Group:      ps.pid,
		OpIndex:    opIdx,
		Indicator:  label,
		Points:     pts,
		ScoreAfter: ps.score,
		Union:      true,
	})
}

// detected records a threshold crossing; proc-shard lock held.
func (t *engineTelemetry) detected(ps *procState) {
	if t == nil {
		return
	}
	t.detections.Inc()
	t.detScore.Observe(ps.score)
	t.detTransformed.Observe(float64(ps.filesTransformed))
}

// readFailed counts one ContentSource read failure on the measurement path.
func (t *engineTelemetry) readFailed() {
	if t == nil {
		return
	}
	t.readFails.Inc()
}

// auditEmitted counts one audit bundle handed to the sink.
func (t *engineTelemetry) auditEmitted() {
	if t == nil {
		return
	}
	t.auditBundles.Inc()
}

// escalatedTier counts one sampled-tier process promoted to full
// measurement; proc-shard lock held.
func (t *engineTelemetry) escalatedTier() {
	if t == nil {
		return
	}
	t.escalations.Inc()
}
