package core

import (
	"fmt"
	"sort"

	"cryptodrop/internal/audit"
	"cryptodrop/internal/telemetry"
)

// This file assembles detection audit bundles (internal/audit): the
// self-contained "why was this process flagged" record emitted through
// Config.AuditSink. Assembly runs in dispatch, outside all engine locks;
// everything that must be read consistently with the detection (score
// composition, files lost, escalation) was captured under the shard lock
// inside firedDetection, and the firing history comes from the flight
// recorder's causal prefix.

// tierName names a measurement ladder tier for audit records.
func tierName(t MeasureTier) string {
	if t == TierSampled {
		return "sampled"
	}
	return "full"
}

// buildAuditBundle assembles the audit record for one fired detection.
func (e *Engine) buildAuditBundle(fd firedDetection) *audit.Bundle {
	det := fd.det
	b := &audit.Bundle{
		Version:   1,
		SessionID: e.cfg.SessionID,
		PID:       det.PID,
		Score:     det.Score,
		Threshold: det.Threshold,
		Union:     det.Union,
		OpIndex:   det.OpIndex,
		FilesLost: fd.filesLost,
		Deletes:   fd.deletes,
		Engine: audit.EngineConfig{
			ProtectedRoot:         e.cfg.ProtectedRoot,
			NonUnionThreshold:     e.cfg.NonUnionThreshold,
			UnionThreshold:        e.cfg.UnionThreshold,
			EntropyDeltaThreshold: e.cfg.EntropyDeltaThreshold,
			SimilarityMatchMax:    e.cfg.SimilarityMatchMax,
			FunnelingThreshold:    e.cfg.FunnelingThreshold,
			Tier:                  tierName(e.cfg.Tier),
			Workers:               e.cfg.Workers,
			IncrementalEntropy:    e.cfg.IncrementalEntropy,
			NewCipherWithoutDelta: e.cfg.NewCipherWithoutDelta,
			PayloadBlind:          e.payloadBlind.Load(),
		},
		Registry: audit.RegistryInfo{
			Fingerprint: e.reg.Fingerprint(),
			Policy:      fmt.Sprintf("%T", e.pol),
		},
		Measurement: audit.Measurement{
			Tier:      tierName(e.cfg.Tier),
			Escalated: fd.escalated,
		},
	}
	if e.cfg.Tier == TierSampled {
		b.Engine.SampleBytes = e.sampleN
	}
	for _, u := range e.reg.Units() {
		d := u.Decl()
		b.Registry.Units = append(b.Registry.Units, fmt.Sprintf("%d:%s", d.ID, d.Name))
	}
	if e.memo != nil {
		s := e.memo.Stats()
		b.Measurement.Cache = &audit.CacheStats{
			Hits:      int64(s.Hits),
			Misses:    int64(s.Misses),
			Evictions: int64(s.Evictions),
			Entries:   int64(s.Entries),
			Bytes:     s.Bytes,
		}
	}
	if e.tel != nil {
		b.Measurement.ContentReadFailures = e.tel.readFails.Value()
	}

	// Per-indicator contributions, from the detection's own point totals
	// (captured under the shard lock — exact even when the flight ring
	// wrapped), sorted by registry ID.
	ids := make([]Indicator, 0, len(det.Indicators))
	for id := range det.Indicators {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	contribs := make([]audit.Contribution, 0, len(ids)+1)
	byID := make(map[int]int, len(ids)+1)
	var sum float64
	for _, id := range ids {
		name := e.indNames[id]
		if name == "" {
			name = id.String()
		}
		byID[int(id)] = len(contribs)
		contribs = append(contribs, audit.Contribution{
			Indicator: name, ID: int(id), Points: det.Indicators[id],
		})
		sum += det.Indicators[id]
	}
	// The policy-level share (the union bonus under the default policy) is
	// the residual beyond the indicator totals, so contributions always sum
	// to the detection score exactly. Its label is recovered from the trace
	// when a recorder saw the acceleration event.
	accelLabel := ""

	// The causal firing history: the group's trace clipped to events at or
	// before the detection's operation index (awards recorded after the
	// threshold crossing, or drained later under higher op indices, are
	// post-detection and excluded).
	var recorder *telemetry.FlightRecorder
	if e.tel != nil {
		recorder = e.tel.recorder
	}
	if recorder != nil {
		full := recorder.Trace(det.PID)
		prefix := telemetry.Trace{Group: det.PID, Truncated: full.Truncated, Dropped: full.Dropped}
		seenPath := make(map[string]bool)
		for _, ev := range full.Events {
			if ev.OpIndex > det.OpIndex {
				continue
			}
			prefix.Events = append(prefix.Events, ev)
			prefix.TotalPoints += ev.Points
			if ev.Path != "" && !seenPath[ev.Path] {
				seenPath[ev.Path] = true
				b.FilesTouched = append(b.FilesTouched, ev.Path)
			}
			if ev.IndicatorID == 0 {
				accelLabel = ev.Indicator
			}
			i, ok := byID[ev.IndicatorID]
			if !ok {
				continue
			}
			c := &contribs[i]
			c.Fires++
			if c.Fires == 1 {
				c.FirstOpIndex, c.FirstAt = ev.OpIndex, ev.At
			}
			c.LastOpIndex, c.LastAt = ev.OpIndex, ev.At
		}
		b.Trace = prefix
		if n := len(prefix.Events); n > 0 {
			b.OpsToDetection = det.OpIndex - prefix.Events[0].OpIndex
			if prefix.Events[0].At != 0 {
				b.TimeToDetectionNs = prefix.Events[n-1].At - prefix.Events[0].At
			}
		}
	} else {
		b.Trace = telemetry.Trace{Group: det.PID}
	}

	if resid := det.Score - sum; resid > 1e-9 || resid < -1e-9 {
		label := accelLabel
		if label == "" {
			label = "acceleration"
		}
		c := audit.Contribution{Indicator: label, Points: resid}
		if recorder != nil {
			for _, ev := range b.Trace.Events {
				if ev.IndicatorID == 0 && ev.Indicator == label {
					c.Fires++
					if c.Fires == 1 {
						c.FirstOpIndex, c.FirstAt = ev.OpIndex, ev.At
					}
					c.LastOpIndex, c.LastAt = ev.OpIndex, ev.At
				}
			}
		}
		contribs = append(contribs, c)
	}
	b.Contributions = contribs
	return b
}
