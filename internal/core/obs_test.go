package core

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"cryptodrop/internal/audit"
	"cryptodrop/internal/telemetry"
)

// obsAttack encrypts the whole corpus as pid under cfg and returns the final
// report and the engine.
func obsAttack(t *testing.T, cfg Config, pid int) (ProcessReport, *Engine) {
	t.Helper()
	fs, eng := setup(t, cfg)
	infos, err := fs.List(testRoot)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		encryptInPlace(t, fs, pid, info.Path)
	}
	eng.Flush()
	rep, ok := eng.Report(pid)
	if !ok {
		t.Fatal("no report")
	}
	return rep, eng
}

// TestObservabilityDisabledIsIdentical pins the one-branch-when-disabled
// contract for the new layer: the same attack with a span tracer and audit
// sink attached produces a scoreboard deeply equal to the bare run. Tracing
// and auditing observe; they never perturb.
func TestObservabilityDisabledIsIdentical(t *testing.T) {
	const pid = 11
	bare := DefaultConfig(testRoot)
	off, _ := obsAttack(t, bare, pid)

	cfg := DefaultConfig(testRoot)
	cfg.Telemetry = telemetry.NewRegistry()
	cfg.FlightRecorder = telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
	cfg.SpanTracer = telemetry.NewSpanTracer(0, 1)
	cfg.AuditSink = &audit.MemorySink{}
	cfg.SessionID = "obs-test"
	on, _ := obsAttack(t, cfg, pid)

	if !reflect.DeepEqual(off, on) {
		t.Fatalf("observability changed the scoreboard:\noff: %+v\non:  %+v", off, on)
	}
}

// TestSpanTracerCapturesPipeline samples every operation and checks the span
// buffer tells the whole pipeline story — dispatch, measurement, awards,
// policy decisions — and exports as valid Chrome trace JSON.
func TestSpanTracerCapturesPipeline(t *testing.T) {
	tr := telemetry.NewSpanTracer(0, 1)
	cfg := DefaultConfig(testRoot)
	cfg.SpanTracer = tr
	rep, _ := obsAttack(t, cfg, 21)
	if !rep.Detected {
		t.Fatal("attack not detected")
	}

	cats := make(map[string]int)
	names := make(map[string]int)
	for _, sp := range tr.Spans() {
		cats[sp.Cat]++
		names[sp.Name]++
	}
	for _, cat := range []string{"dispatch", "measure", "award", "policy"} {
		if cats[cat] == 0 {
			t.Errorf("no %q spans recorded (cats: %v)", cat, cats)
		}
	}
	if names["op write"] == 0 {
		t.Errorf("no \"op write\" dispatch spans (names: %v)", names)
	}
	if names["award file-type-change"] == 0 {
		t.Errorf("no file-type-change award spans (names: %v)", names)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name  string          `json:"name"`
			Phase string          `json:"ph"`
			PID   int             `json:"pid"`
			TID   int             `json:"tid"`
			Ts    float64         `json:"ts"`
			Args  json.RawMessage `json:"args,omitempty"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("export is not valid Chrome trace JSON: %v", err)
	}
	meta, complete := 0, 0
	for _, ev := range chrome.TraceEvents {
		switch ev.Phase {
		case "M":
			meta++
		case "X":
			complete++
		}
	}
	if meta == 0 {
		t.Error("no process_name metadata events (lanes unlabelled)")
	}
	if complete != int(tr.Recorded())-int(tr.Dropped()) {
		t.Errorf("exported %d complete events, tracer holds %d", complete, tr.Recorded()-tr.Dropped())
	}
}

// TestSpanSamplingBounds checks a sparse sampling rate records roughly one
// in N dispatch spans — the tracer must not record every op at -trace-sample
// rates meant for production.
func TestSpanSamplingBounds(t *testing.T) {
	tr := telemetry.NewSpanTracer(0, 8)
	cfg := DefaultConfig(testRoot)
	cfg.NonUnionThreshold = 1e9
	cfg.UnionThreshold = 1e9
	cfg.SpanTracer = tr
	_, eng := obsAttack(t, cfg, 22)
	ops := eng.OpIndex()
	dispatch := 0
	for _, sp := range tr.Spans() {
		if sp.Cat == "dispatch" {
			dispatch++
		}
	}
	want := int(ops) / 8
	if dispatch < want/2 || dispatch > want*2+1 {
		t.Fatalf("sampled %d dispatch spans over %d ops at rate 1/8, want about %d", dispatch, ops, want)
	}
}

// TestAuditBundleOnDetection runs a default attack with a memory sink and
// verifies the emitted bundle is a complete, self-consistent explanation of
// the detection.
func TestAuditBundleOnDetection(t *testing.T) {
	sink := &audit.MemorySink{}
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig(testRoot)
	cfg.Telemetry = reg
	cfg.FlightRecorder = telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
	cfg.AuditSink = sink
	cfg.SessionID = "audit-test"
	rep, eng := obsAttack(t, cfg, 31)
	if !rep.Detected {
		t.Fatal("attack not detected")
	}

	bundles := sink.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("emitted %d bundles, want 1", len(bundles))
	}
	b := bundles[0]
	det := eng.Detections()[0]

	if b.SessionID != "audit-test" || b.PID != det.PID || b.Score != det.Score ||
		b.Threshold != det.Threshold || b.Union != det.Union || b.OpIndex != det.OpIndex {
		t.Fatalf("bundle header disagrees with detection: %+v vs %+v", b, det)
	}

	// The invariant the goldens also pin: per-indicator contributions sum to
	// the detection score exactly.
	sum := 0.0
	for _, c := range b.Contributions {
		sum += c.Points
		if c.Indicator == "" {
			t.Errorf("contribution with empty indicator name: %+v", c)
		}
	}
	if math.Abs(sum-b.Score) > 1e-9 {
		t.Fatalf("contributions sum to %g, score is %g", sum, b.Score)
	}

	// The causal trace is the pre-detection prefix: every event at or before
	// the detection's op index, none after.
	if len(b.Trace.Events) == 0 {
		t.Fatal("bundle has no causal firing history")
	}
	for _, ev := range b.Trace.Events {
		if ev.OpIndex > b.OpIndex {
			t.Fatalf("trace event at op %d is after the detection (op %d)", ev.OpIndex, b.OpIndex)
		}
	}
	if b.FilesLost == 0 {
		t.Error("bundle reports no files lost for a full-corpus encryption")
	}
	if len(b.FilesTouched) == 0 {
		t.Error("bundle lists no touched files")
	}
	if !strings.HasPrefix(b.Registry.Fingerprint, "reg1-") {
		t.Errorf("registry fingerprint %q lacks the reg1- scheme prefix", b.Registry.Fingerprint)
	}
	if len(b.Registry.Units) == 0 || b.Registry.Policy == "" {
		t.Errorf("registry identity incomplete: %+v", b.Registry)
	}
	if b.Engine.ProtectedRoot != testRoot || b.Engine.NonUnionThreshold == 0 {
		t.Errorf("engine config incomplete: %+v", b.Engine)
	}
	if b.Measurement.Tier != "full" {
		t.Errorf("measurement tier %q, want full", b.Measurement.Tier)
	}
	if got := reg.Counter("engine_audit_bundles_total").Value(); got != 1 {
		t.Errorf("engine_audit_bundles_total = %d, want 1", got)
	}

	// And the bundle survives a JSONL round trip.
	var buf bytes.Buffer
	jl := audit.NewJSONLSink(&buf)
	jl.Emit(b)
	if jl.Err() != nil {
		t.Fatal(jl.Err())
	}
	back, err := audit.ReadBundles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || !reflect.DeepEqual(back[0], *b) {
		t.Fatalf("bundle did not survive JSONL round trip:\nout: %+v\nback: %+v", *b, back[0])
	}
}

// TestAuditBundleWithoutRecorder checks a sink without a flight recorder
// still gets a correct bundle: contributions from the detection's own
// totals, no causal history.
func TestAuditBundleWithoutRecorder(t *testing.T) {
	sink := &audit.MemorySink{}
	cfg := DefaultConfig(testRoot)
	cfg.AuditSink = sink
	rep, _ := obsAttack(t, cfg, 41)
	if !rep.Detected {
		t.Fatal("attack not detected")
	}
	bundles := sink.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("emitted %d bundles, want 1", len(bundles))
	}
	b := bundles[0]
	sum := 0.0
	for _, c := range b.Contributions {
		sum += c.Points
	}
	if math.Abs(sum-b.Score) > 1e-9 {
		t.Fatalf("contributions sum to %g, score is %g", sum, b.Score)
	}
	if len(b.Trace.Events) != 0 {
		t.Fatalf("bundle has %d trace events without a recorder", len(b.Trace.Events))
	}
}

// TestRegistryFingerprintIdentity checks the fingerprint identifies the unit
// set: equal for equal registries, different once composition changes.
func TestRegistryFingerprintIdentity(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	_, e1 := setup(t, cfg)
	_, e2 := setup(t, cfg)
	b1 := e1.buildAuditBundle(firedDetection{})
	b2 := e2.buildAuditBundle(firedDetection{})
	if b1.Registry.Fingerprint != b2.Registry.Fingerprint {
		t.Fatalf("same registry, different fingerprints: %q vs %q",
			b1.Registry.Fingerprint, b2.Registry.Fingerprint)
	}
	cfg2 := DefaultConfig(testRoot)
	cfg2.DisabledIndicators = []Indicator{IndicatorFunneling}
	_, e3 := setup(t, cfg2)
	if b3 := e3.buildAuditBundle(firedDetection{}); b3.Registry.Fingerprint == b1.Registry.Fingerprint {
		t.Fatal("different unit sets share a fingerprint")
	}
}
