// Package core implements the paper's contribution: the CryptoDrop analysis
// engine (§IV). It consumes the filesystem operation stream delivered by the
// filter chain and maintains a per-process reputation scoreboard over five
// behavioural indicators:
//
// Primary (§III-A/B/C):
//  1. File type change — a file's magic-number type changes when written.
//  2. Similarity measurement — the similarity digest of the new content
//     scores near zero against the previous version.
//  3. Entropy delta — the weighted mean entropy of the process's writes
//     exceeds that of its reads by ≥ 0.1.
//
// Secondary (§III-D):
//
//  4. Deletion — bulk removal of protected files.
//  5. File type funneling — many distinct types read, few written.
//
// When one process exhibits all three primary indicators, union indication
// (§III-E) fires: the score is boosted and the detection threshold drops,
// so suspension follows almost immediately.
package core

import (
	"runtime"

	"cryptodrop/internal/telemetry"
)

// Default thresholds from the paper (§IV-C1, §V-A).
const (
	// DefaultNonUnionThreshold is the reputation score at which a process
	// is flagged without union indication (the paper's experiments used
	// 200).
	DefaultNonUnionThreshold = 200.0
	// DefaultUnionThreshold is the effective threshold once union
	// indication has been observed for a process.
	DefaultUnionThreshold = 140.0
	// DefaultUnionBonus is added to a process's score the first time all
	// three primary indicators have been observed together.
	DefaultUnionBonus = 30.0
	// DefaultEntropyDeltaThreshold is the write-minus-read weighted mean
	// entropy delta considered suspicious (Δe ≥ 0.1).
	DefaultEntropyDeltaThreshold = 0.1
	// DefaultSimilarityMatchMax is the highest sdhash score still treated
	// as "no match": the paper expects near-zero scores for
	// ransomware-encrypted content.
	DefaultSimilarityMatchMax = 4
	// DefaultFunnelingThreshold is the minimum excess of distinct types
	// read over types written before funneling is flagged.
	DefaultFunnelingThreshold = 6
)

// Points assigns reputation score values to indicator events. The paper
// parameterises these (§IV-A); the defaults are calibrated so that the
// experimental shape of §V reproduces: ransomware detected around a median
// of ten files lost at the 200-point non-union threshold, while the §V-F
// benign workloads score 0–150.
type Points struct {
	// TypeChange is awarded per protected file whose identified type
	// changed when rewritten.
	TypeChange float64
	// Similarity is awarded per protected file whose new content is
	// completely dissimilar from its previous version.
	Similarity float64
	// EntropyDeltaFile is awarded per transformed file completed while the
	// process's entropy delta is suspicious.
	EntropyDeltaFile float64
	// EntropyDeltaOp is awarded per write operation performed while the
	// entropy delta is suspicious. It is small: it exists to catch
	// high-volume writers (Class C evaders, archivers) without penalising
	// ordinary applications.
	EntropyDeltaOp float64
	// Deletion is awarded per protected file deleted that the process did
	// not itself create — removing the user's pre-existing data.
	Deletion float64
	// DeletionOwn is awarded per protected file deleted that the process
	// itself created (temp/autosave churn — ordinary application
	// behaviour).
	DeletionOwn float64
	// NewCipherFile is awarded per new protected file whose written
	// content is untyped high-entropy data, completed while the process's
	// entropy delta is suspicious — the Class C encrypted-copy shape
	// ("high entropy delta between the files it was reading and writing",
	// §V-C).
	NewCipherFile float64
	// Funneling is awarded once when the type-funneling condition first
	// holds for a process.
	Funneling float64
	// UnionBonus is added once when all three primary indicators have
	// been observed for a process.
	UnionBonus float64
}

// DefaultPoints returns the calibrated default point values.
func DefaultPoints() Points {
	return Points{
		TypeChange:       8,
		Similarity:       8,
		EntropyDeltaFile: 4,
		EntropyDeltaOp:   0.25,
		Deletion:         12,
		DeletionOwn:      0.5,
		NewCipherFile:    3,
		Funneling:        25,
		UnionBonus:       DefaultUnionBonus,
	}
}

// Config configures the analysis engine.
type Config struct {
	// ProtectedRoot is the user documents directory the engine watches.
	// Operations outside it are ignored (§V-H: "CryptoDrop does not
	// inspect files outside of the user's documents directory").
	ProtectedRoot string
	// NonUnionThreshold is the score at which a process is flagged.
	NonUnionThreshold float64
	// UnionThreshold replaces NonUnionThreshold once union indication has
	// fired for the process.
	UnionThreshold float64
	// EntropyDeltaThreshold is the suspicious Δe bound.
	EntropyDeltaThreshold float64
	// SimilarityMatchMax is the highest similarity score treated as
	// complete dissimilarity.
	SimilarityMatchMax int
	// FunnelingThreshold is the types-read minus types-written excess
	// considered funneling.
	FunnelingThreshold int
	// Points are the per-indicator score values.
	Points Points
	// DisableUnion turns union indication off (ablation studies).
	DisableUnion bool
	// UnweightedEntropy replaces the paper's w = 0.125×⌊e⌉×b operation
	// weighting with plain byte weighting (ablation studies: shows how
	// small low-entropy ransom-note writes skew an unweighted mean).
	UnweightedEntropy bool
	// DisabledIndicators suppresses scoring (and union participation) of
	// the listed indicators (ablation studies).
	DisabledIndicators []Indicator
	// NewCipherWithoutDelta awards NewCipherFile for a new untyped
	// high-entropy file even when the process's read/write entropy delta is
	// not (yet) suspicious. Payload-blind backends — watchers that only see
	// completed files, never the read/write stream — set this: for them the
	// delta gate can never open, so without it the Class C encrypted-copy
	// shape would be invisible. Minifilter-style backends leave it false
	// (the default), preserving the paper's delta-gated behaviour.
	NewCipherWithoutDelta bool
	// Workers sizes the measurement worker pool. Zero (the default) keeps
	// every measurement synchronous on the event path — bit-identical to
	// the original sequential engine, which the deterministic experiments
	// rely on. A positive value bounds how many file measurements (sdhash
	// digest + entropy + magic sniff) may run concurrently off the event
	// path; DefaultWorkers sizes it to the machine.
	Workers int
	// FamilyOf, if set, maps an acting PID to its scoring group (typically
	// the root ancestor of the process family). All processes in a group
	// share one scoreboard entry, so malware cannot dilute its score by
	// spreading the attack across spawned workers — the "family of
	// processes" the paper suspends (§IV). Nil scores each PID separately.
	FamilyOf func(pid int) int
	// OnDetection, if set, is invoked exactly once per flagged process at
	// the moment its score crosses the effective threshold.
	OnDetection func(Detection)
	// Telemetry, if set, receives the engine's metrics: per-indicator fire
	// counters, detection counters and score distributions, measurement
	// latency histograms, pool gauges and sampled shard lock-wait times.
	// Nil (the default) disables all metric collection; the event path then
	// pays a single nil-check branch.
	Telemetry *telemetry.Registry
	// FlightRecorder, if set, captures the ordered per-group sequence of
	// indicator firings so every Detection can be explained after the fact.
	FlightRecorder *telemetry.FlightRecorder
}

// DefaultWorkers returns the measurement pool size matched to the machine:
// one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// DefaultConfig returns a Config with the paper's parameters, protecting
// root.
func DefaultConfig(root string) Config {
	return Config{
		ProtectedRoot:         root,
		NonUnionThreshold:     DefaultNonUnionThreshold,
		UnionThreshold:        DefaultUnionThreshold,
		EntropyDeltaThreshold: DefaultEntropyDeltaThreshold,
		SimilarityMatchMax:    DefaultSimilarityMatchMax,
		FunnelingThreshold:    DefaultFunnelingThreshold,
		Points:                DefaultPoints(),
	}
}

// Indicator identifies one of CryptoDrop's behavioural indicators.
type Indicator int

// The indicators. TypeChange, Similarity and EntropyDelta are primary;
// Deletion and Funneling are secondary.
const (
	IndicatorTypeChange Indicator = iota + 1
	IndicatorSimilarity
	IndicatorEntropyDelta
	IndicatorDeletion
	IndicatorFunneling
)

// PrimaryIndicators lists the three primary indicators whose union triggers
// accelerated detection.
func PrimaryIndicators() []Indicator {
	return []Indicator{IndicatorTypeChange, IndicatorSimilarity, IndicatorEntropyDelta}
}

// String returns the indicator name.
func (i Indicator) String() string {
	switch i {
	case IndicatorTypeChange:
		return "file-type-change"
	case IndicatorSimilarity:
		return "similarity"
	case IndicatorEntropyDelta:
		return "entropy-delta"
	case IndicatorDeletion:
		return "deletion"
	case IndicatorFunneling:
		return "funneling"
	default:
		return "unknown"
	}
}

// Detection reports a process crossing its detection threshold.
type Detection struct {
	// PID is the flagged process.
	PID int
	// Score is the reputation score at detection time.
	Score float64
	// Threshold is the effective threshold that was crossed.
	Threshold float64
	// Union reports whether union indication had fired for the process.
	Union bool
	// OpIndex is the number of protected-scope operations the engine had
	// processed when detection occurred.
	OpIndex int64
	// Indicators are the per-indicator point totals at detection time.
	Indicators map[Indicator]float64
}
