// Package core implements the paper's contribution: the CryptoDrop analysis
// engine (§IV), structured as the measurement layer of a three-layer
// detection pipeline.
//
//   - The measurement layer (this package) consumes the backend-neutral
//     filesystem operation stream, extracts per-event features — magic-type
//     sniffs, similarity digests, entropy deltas, delete/funnel bookkeeping —
//     and maintains the per-process reputation scoreboard.
//   - The indicator layer (internal/indicator) is a registry of pluggable
//     units mapping measured features to score awards. The default registry
//     is the paper's five indicators: three primary (file type change,
//     similarity, entropy delta — §III-A/B/C) and two secondary (deletion,
//     funneling — §III-D).
//   - The policy layer (internal/policy) fuses awards into detections. The
//     default is the paper's union indication + threshold (§III-E): once all
//     three primaries have been seen, the score is boosted and the detection
//     threshold drops.
//
// The engine only performs measurement work some registered unit declared a
// need for: a registry of content-free indicators never reads file content
// at all. Config.Indicators and Config.Policy swap the upper layers without
// touching this package.
package core

import (
	"runtime"

	"cryptodrop/internal/audit"
	"cryptodrop/internal/indicator"
	"cryptodrop/internal/magic"
	"cryptodrop/internal/measurecache"
	"cryptodrop/internal/policy"
	"cryptodrop/internal/telemetry"
)

// Default thresholds from the paper (§IV-C1, §V-A).
const (
	// DefaultNonUnionThreshold is the reputation score at which a process
	// is flagged without union indication (the paper's experiments used
	// 200).
	DefaultNonUnionThreshold = 200.0
	// DefaultUnionThreshold is the effective threshold once union
	// indication has been observed for a process.
	DefaultUnionThreshold = 140.0
	// DefaultUnionBonus is added to a process's score the first time all
	// three primary indicators have been observed together.
	DefaultUnionBonus = 30.0
	// DefaultEntropyDeltaThreshold is the write-minus-read weighted mean
	// entropy delta considered suspicious (Δe ≥ 0.1).
	DefaultEntropyDeltaThreshold = 0.1
	// DefaultSimilarityMatchMax is the highest sdhash score still treated
	// as "no match": the paper expects near-zero scores for
	// ransomware-encrypted content.
	DefaultSimilarityMatchMax = 4
	// DefaultFunnelingThreshold is the minimum excess of distinct types
	// read over types written before funneling is flagged.
	DefaultFunnelingThreshold = 6
)

// MeasureTier selects the measurement ladder tier a session scores on.
type MeasureTier int

const (
	// TierFull — the default — measures whole files: every transform runs
	// the full-content kernels (magic sniff, full Shannon, full similarity
	// digest), the paper's original behaviour.
	TierFull MeasureTier = iota
	// TierSampled is the cheap tier of the two-tier scoring ladder: file
	// measurements read only the leading Config.SampleBytes of content (the
	// header area, per the Differential Area Analysis observation that most
	// of the entropy signal lives there) and score on sampled entropy, magic
	// and a prefix digest. The first indicator that fires for a process
	// escalates that process to full measurement, so verdicts converge on
	// anything suspicious while benign bulk traffic pays a fraction of the
	// read and kernel cost.
	TierSampled
)

// DefaultSampleBytes is the cheap tier's header-area sample size. It is
// comfortably above magic.SniffLen, so sampled type identification is exact.
const DefaultSampleBytes = 8 << 10

// Points assigns reputation score values to indicator events. Each field's
// calibrated default is declared by the owning indicator unit
// (internal/indicator); DefaultPoints assembles them from those
// declarations, so the table cannot drift from the units that consume it.
type Points = indicator.Points

// DefaultPoints returns the calibrated default point values: the per-unit
// fields from the indicator declarations, plus the policy-layer union
// bonus.
func DefaultPoints() Points {
	p := indicator.DefaultPoints()
	p.UnionBonus = DefaultUnionBonus
	return p
}

// Config configures the analysis engine.
type Config struct {
	// ProtectedRoot is the user documents directory the engine watches.
	// Operations outside it are ignored (§V-H: "CryptoDrop does not
	// inspect files outside of the user's documents directory").
	ProtectedRoot string
	// NonUnionThreshold is the score at which a process is flagged.
	NonUnionThreshold float64
	// UnionThreshold replaces NonUnionThreshold once union indication has
	// fired for the process.
	UnionThreshold float64
	// EntropyDeltaThreshold is the suspicious Δe bound.
	EntropyDeltaThreshold float64
	// SimilarityMatchMax is the highest similarity score treated as
	// complete dissimilarity.
	SimilarityMatchMax int
	// FunnelingThreshold is the types-read minus types-written excess
	// considered funneling.
	FunnelingThreshold int
	// Points are the per-indicator score values.
	Points Points
	// Indicators is the indicator registry the engine scores with. Nil
	// means indicator.Default() — the paper's five units. The engine only
	// performs the measurement work the registered units declare a need
	// for (indicator.Feature), so a registry without content-dependent
	// units never reads file content.
	Indicators *indicator.Registry
	// Policy decides how awards fuse into detections. Nil means the
	// paper's union+threshold policy, parameterised by Points.UnionBonus
	// and DisableUnion; when a Policy is set, those two fields are ignored
	// (the policy owns acceleration entirely).
	Policy policy.Policy
	// DisableUnion turns union indication off (ablation studies). Only
	// consulted when Policy is nil.
	DisableUnion bool
	// UnweightedEntropy replaces the paper's w = 0.125×⌊e⌉×b operation
	// weighting with plain byte weighting (ablation studies: shows how
	// small low-entropy ransom-note writes skew an unweighted mean).
	UnweightedEntropy bool
	// DisabledIndicators suppresses scoring (and union participation) of
	// the listed indicators.
	//
	// Deprecated: compose the registry instead — Config.Indicators =
	// indicator.Default().Without(ids...). This field remains as a
	// compatibility shim and is applied as exactly that Without() call on
	// the effective registry.
	DisabledIndicators []Indicator
	// NewCipherWithoutDelta awards NewCipherFile for a new untyped
	// high-entropy file even when the process's read/write entropy delta is
	// not (yet) suspicious. Payload-blind backends — watchers that only see
	// completed files, never the read/write stream — set this: for them the
	// delta gate can never open, so without it the Class C encrypted-copy
	// shape would be invisible. Minifilter-style backends leave it false
	// (the default), preserving the paper's delta-gated behaviour. The
	// indicator layer sees this (together with the runtime SetPayloadBlind
	// switch) as "the FeatPayload feature is unavailable", via
	// indicator.Context.PayloadStreamAvailable.
	NewCipherWithoutDelta bool
	// Workers sizes the measurement worker pool. Zero (the default) keeps
	// every measurement synchronous on the event path — bit-identical to
	// the original sequential engine, which the deterministic experiments
	// rely on. A positive value bounds how many file measurements (sdhash
	// digest + entropy + magic sniff) may run concurrently off the event
	// path; DefaultWorkers sizes it to the machine.
	Workers int
	// MeasureCache, if set, memoizes file measurements by content hash:
	// before running the measurement kernels the engine looks the content up
	// in the cache, and identical bytes — across files, processes, and every
	// engine sharing the cache (a host fleet over deduplicated corpora) —
	// are measured exactly once. Measured states in the cache are immutable
	// and safe to share. Detections, scores and traces are bit-identical
	// with and without the cache; only the work performed changes.
	MeasureCache *measurecache.Cache
	// Tier selects the measurement ladder tier: TierFull (default) or the
	// cheap sampled tier with per-process escalation. See MeasureTier.
	Tier MeasureTier
	// SampleBytes is the cheap tier's header sample size. Zero means
	// DefaultSampleBytes; values below magic.SniffLen are raised to it so
	// sampled type identification stays exact. Ignored under TierFull.
	SampleBytes int
	// IncrementalEntropy maintains a per-file byte histogram updated by each
	// write's replaced range, so a full measurement of a file mutated since
	// its last measurement reuses the maintained counts (O(256)) instead of
	// rescanning the whole content. Entropy values are bit-identical to the
	// full rescan; any mutation the engine cannot attribute exactly
	// (overlapping in-flight writes, truncations, sparse writes) falls back
	// to the full scan.
	IncrementalEntropy bool
	// FamilyOf, if set, maps an acting PID to its scoring group (typically
	// the root ancestor of the process family). All processes in a group
	// share one scoreboard entry, so malware cannot dilute its score by
	// spreading the attack across spawned workers — the "family of
	// processes" the paper suspends (§IV). Nil scores each PID separately.
	FamilyOf func(pid int) int
	// OnDetection, if set, is invoked exactly once per flagged process at
	// the moment its score crosses the effective threshold.
	OnDetection func(Detection)
	// OnExonerate, if set, is invoked by ExonerateUndetected for each
	// scoring group the engine clears without a detection — the
	// "closed clean" verdict the recovery layer uses to release that
	// group's retained pre-images. Like FamilyOf and OnDetection it is
	// code, not configuration: it does not participate in the config
	// fingerprint and never affects scoring.
	OnExonerate func(group int)
	// Telemetry, if set, receives the engine's metrics: per-indicator fire
	// counters (series derived from the registry's declared names),
	// detection counters and score distributions, measurement latency
	// histograms, pool gauges and sampled shard lock-wait times. Nil (the
	// default) disables all metric collection; the event path then pays a
	// single nil-check branch.
	Telemetry *telemetry.Registry
	// FlightRecorder, if set, captures the ordered per-group sequence of
	// indicator firings so every Detection can be explained after the fact.
	FlightRecorder *telemetry.FlightRecorder
	// SpanTracer, if set, samples causal spans across the pipeline: one
	// Sample() decision per operation covers the operation's hook dispatch,
	// indicator awards and policy decision, and measurements sample
	// independently (they may run on pool workers long after the operation
	// that queued them). Nil (the default) disables tracing; the event path
	// then pays a single nil-check branch and scoring output is
	// bit-identical.
	SpanTracer *telemetry.SpanTracer
	// AuditSink, if set, receives one self-contained audit bundle per
	// detection — per-indicator score provenance, touched/lost files,
	// config and registry fingerprint, measurement stats — emitted outside
	// all engine locks, right after OnDetection. Nil disables audit
	// assembly entirely.
	AuditSink audit.Sink
	// SessionID labels spans and audit bundles with the owning pipeline
	// instance (the host stamps its session ID here). Empty means "engine".
	// It never affects scoring.
	SessionID string
}

// DefaultWorkers returns the measurement pool size matched to the machine:
// one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// sampleBytes resolves the effective cheap-tier sample size: the configured
// value, defaulted and clamped so a sample always covers magic.SniffLen —
// the prefix Identify inspects — keeping sampled type identification exactly
// equal to full-content identification.
func (c *Config) sampleBytes() int {
	n := c.SampleBytes
	if n <= 0 {
		n = DefaultSampleBytes
	}
	if n < magic.SniffLen {
		n = magic.SniffLen
	}
	return n
}

// DefaultConfig returns a Config with the paper's parameters, protecting
// root.
func DefaultConfig(root string) Config {
	return Config{
		ProtectedRoot:         root,
		NonUnionThreshold:     DefaultNonUnionThreshold,
		UnionThreshold:        DefaultUnionThreshold,
		EntropyDeltaThreshold: DefaultEntropyDeltaThreshold,
		SimilarityMatchMax:    DefaultSimilarityMatchMax,
		FunnelingThreshold:    DefaultFunnelingThreshold,
		Points:                DefaultPoints(),
	}
}

// Indicator identifies one of CryptoDrop's behavioural indicators. It is
// the indicator layer's unit ID; the name, class, feature needs and default
// points of each ID live in its unit declaration (internal/indicator).
type Indicator = indicator.ID

// The indicators. TypeChange, Similarity and EntropyDelta are primary;
// Deletion and Funneling are secondary. Honeyfile is the opt-in decoy-touch
// unit (not in the default registry).
const (
	IndicatorTypeChange   = indicator.TypeChange
	IndicatorSimilarity   = indicator.Similarity
	IndicatorEntropyDelta = indicator.EntropyDelta
	IndicatorDeletion     = indicator.Deletion
	IndicatorFunneling    = indicator.Funneling
	IndicatorHoneyfile    = indicator.Honeyfile
)

// PrimaryIndicators lists the three primary indicators whose union triggers
// accelerated detection under the default policy.
func PrimaryIndicators() []Indicator { return indicator.Primaries() }

// Detection reports a process crossing its detection threshold.
type Detection struct {
	// PID is the flagged process.
	PID int
	// Score is the reputation score at detection time.
	Score float64
	// Threshold is the effective threshold that was crossed.
	Threshold float64
	// Union reports whether the policy had accelerated detection for the
	// process (union indication under the default policy).
	Union bool
	// OpIndex is the number of protected-scope operations the engine had
	// processed when detection occurred.
	OpIndex int64
	// Indicators are the per-indicator point totals at detection time.
	Indicators map[Indicator]float64
}
