package core

import (
	"errors"
	"reflect"
	"testing"

	"cryptodrop/internal/indicator"
	"cryptodrop/internal/snapshot"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/vfs"
)

// snapshotTestConfig is the configuration used by the round-trip tests:
// defaults plus a flight recorder, so trace continuity is covered too.
func snapshotTestConfig() (Config, *telemetry.FlightRecorder) {
	cfg := DefaultConfig(testRoot)
	fr := telemetry.NewFlightRecorder(0)
	cfg.FlightRecorder = fr
	return cfg, fr
}

// encryptAll performs Class A encryption of every protected file as pid.
func encryptAll(t *testing.T, fs *vfs.FS, pid int, from, to int) {
	t.Helper()
	infos, err := fs.List(testRoot)
	if err != nil {
		t.Fatal(err)
	}
	if to > len(infos) {
		to = len(infos)
	}
	for _, info := range infos[from:to] {
		encryptInPlace(t, fs, pid, info.Path)
	}
}

// TestEngineSnapshotRoundTripMidStream is the engine-level crash-recovery
// conformance pin: run half a Class A attack, snapshot, restore into a
// fresh identically-configured engine, run the second half there, and
// require bit-identical reports, detections, and flight traces versus an
// uninterrupted engine over the same deterministic workload.
func TestEngineSnapshotRoundTripMidStream(t *testing.T) {
	const pid = 500

	// Uninterrupted reference run.
	refCfg, refFR := snapshotTestConfig()
	refFS, refEng := setup(t, refCfg)
	encryptAll(t, refFS, pid, 0, 30)
	wantReports := refEng.Reports()
	wantDets := refEng.Detections()
	wantTraces := refFR.Traces()

	// Interrupted run: first half, snapshot, restore, second half.
	cfgA, _ := snapshotTestConfig()
	fs, engA := setup(t, cfgA)
	encryptAll(t, fs, pid, 0, 15)
	blob, err := engA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Determinism: snapshotting the same quiesced engine twice yields the
	// same bytes.
	blob2, err := engA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("two snapshots of the same quiesced engine differ")
	}

	cfgB, frB := snapshotTestConfig()
	engB := New(cfgB, testSource{fs})
	if err := engB.Restore(blob); err != nil {
		t.Fatal(err)
	}
	fs.SetInterceptor(interceptorFunc{engB})
	encryptAll(t, fs, pid, 15, 30)

	if got := engB.Reports(); !reflect.DeepEqual(got, wantReports) {
		t.Fatalf("restored reports diverge:\ngot  %+v\nwant %+v", got, wantReports)
	}
	if got := engB.Detections(); !reflect.DeepEqual(got, wantDets) {
		t.Fatalf("restored detections diverge:\ngot  %+v\nwant %+v", got, wantDets)
	}
	if got := frB.Traces(); !reflect.DeepEqual(got, wantTraces) {
		t.Fatalf("restored flight traces diverge:\ngot  %+v\nwant %+v", got, wantTraces)
	}
	if engB.OpIndex() != refEng.OpIndex() {
		t.Fatalf("op index diverged: got %d want %d", engB.OpIndex(), refEng.OpIndex())
	}
}

// TestEngineSnapshotRoundTripOptimisedModes repeats the mid-stream
// round trip under the opt-in measurement modes (incremental entropy and
// the sampled tier with escalation latches), which carry extra snapshot
// state: the per-file histograms and the per-process escalation flags.
func TestEngineSnapshotRoundTripOptimisedModes(t *testing.T) {
	const pid = 501
	for _, mode := range []struct {
		name string
		mut  func(*Config)
	}{
		{"incremental-entropy", func(c *Config) { c.IncrementalEntropy = true }},
		{"sampled-tier", func(c *Config) { c.Tier = TierSampled }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			refCfg := DefaultConfig(testRoot)
			mode.mut(&refCfg)
			refFS, refEng := setup(t, refCfg)
			encryptAll(t, refFS, pid, 0, 30)
			wantReports := refEng.Reports()
			wantDets := refEng.Detections()

			cfgA := DefaultConfig(testRoot)
			mode.mut(&cfgA)
			fs, engA := setup(t, cfgA)
			encryptAll(t, fs, pid, 0, 15)
			blob, err := engA.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			cfgB := DefaultConfig(testRoot)
			mode.mut(&cfgB)
			engB := New(cfgB, testSource{fs})
			if err := engB.Restore(blob); err != nil {
				t.Fatal(err)
			}
			fs.SetInterceptor(interceptorFunc{engB})
			encryptAll(t, fs, pid, 15, 30)

			if got := engB.Reports(); !reflect.DeepEqual(got, wantReports) {
				t.Fatalf("restored reports diverge:\ngot  %+v\nwant %+v", got, wantReports)
			}
			if got := engB.Detections(); !reflect.DeepEqual(got, wantDets) {
				t.Fatalf("restored detections diverge:\ngot  %+v\nwant %+v", got, wantDets)
			}
		})
	}
}

// TestEngineRestoreMismatch is the silent-drift regression test: a snapshot
// restored into a differently-configured engine must fail with the typed
// mismatch error naming the diverging identity field, before any state is
// installed.
func TestEngineRestoreMismatch(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	encryptAll(t, fs, 500, 0, 5)
	blob, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Different scoring config → config-hash mismatch.
	cfgOther := DefaultConfig(testRoot)
	cfgOther.NonUnionThreshold = 150
	other := New(cfgOther, testSource{fs})
	err = other.Restore(blob)
	if !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("threshold drift: got %v, want ErrSnapshotMismatch", err)
	}
	var me *snapshot.MismatchError
	if !errors.As(err, &me) || me.Field != "config" {
		t.Fatalf("threshold drift: got %v, want config-field mismatch", err)
	}
	// The refused restore must not have touched the engine.
	if got := other.Reports(); len(got) != 0 {
		t.Fatalf("refused restore installed %d scoreboard entries", len(got))
	}

	// Different indicator registry → registry-fingerprint mismatch.
	cfgReg := DefaultConfig(testRoot)
	cfgReg.Indicators = indicator.Default().Without(indicator.Funneling)
	regEng := New(cfgReg, testSource{fs})
	err = regEng.Restore(blob)
	if !errors.As(err, &me) || me.Field != "registry" {
		t.Fatalf("registry drift: got %v, want registry-field mismatch", err)
	}

	// Version skew → ErrVersion.
	regFP, cfgHash := eng.SnapshotIdentity()
	skewed := snapshot.Seal(snapshot.Header{Version: 99, Registry: regFP, Config: cfgHash}, nil)
	same := New(cfg, testSource{fs})
	if err := same.Restore(skewed); !errors.Is(err, snapshot.ErrVersion) {
		t.Fatalf("version skew: got %v, want ErrVersion", err)
	}

	// Corruption → ErrSnapshotCorrupt.
	mut := append([]byte{}, blob...)
	mut[len(mut)/2] ^= 0x01
	if err := same.Restore(mut); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("corruption: got %v, want ErrSnapshotCorrupt", err)
	}
	if err := same.Restore(blob[:len(blob)-2]); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("truncation: got %v, want ErrSnapshotCorrupt", err)
	}
}

// FuzzEngineRestore feeds arbitrary bytes to Engine.Restore: it must return
// a typed error or succeed, never panic, and a failed restore must leave
// the engine fully usable.
func FuzzEngineRestore(f *testing.F) {
	cfg := DefaultConfig(testRoot)
	fs := vfs.New()
	if err := fs.MkdirAll(testRoot); err != nil {
		f.Fatal(err)
	}
	eng := New(cfg, testSource{fs})
	blob, err := eng.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte("CDSN"))
	trunc := append([]byte{}, blob...)
	f.Add(trunc[:len(trunc)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		e := New(cfg, testSource{fs})
		if rerr := e.Restore(data); rerr != nil {
			if !errors.Is(rerr, ErrSnapshotCorrupt) && !errors.Is(rerr, ErrSnapshotMismatch) && !errors.Is(rerr, snapshot.ErrVersion) {
				t.Fatalf("Restore returned non-typed error %v", rerr)
			}
		}
		// Whatever happened, the engine must still accept work.
		e.Handle(Event{Kind: EvOpen, PID: 1, Path: testRoot + "/x.txt", FileID: 1})
		e.Reports()
	})
}
