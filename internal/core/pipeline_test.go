package core

import (
	"reflect"
	"sync/atomic"
	"testing"

	"cryptodrop/internal/indicator"
	"cryptodrop/internal/policy"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/vfs"
)

// attackRun drives a deterministic mixed attack (in-place encryption of
// every corpus file, then a couple of deletions) against a fresh setup and
// returns the engine plus the acting PID.
func attackRun(t *testing.T, cfg Config) (*Engine, int) {
	t.Helper()
	fs, eng := setup(t, cfg)
	pid := 700
	infos, err := fs.List(testRoot)
	if err != nil {
		t.Fatal(err)
	}
	for i, info := range infos {
		if i >= len(infos)-2 {
			if err := fs.Delete(pid, info.Path); err != nil {
				t.Fatal(err)
			}
			continue
		}
		encryptInPlace(t, fs, pid, info.Path)
	}
	return eng, pid
}

// TestRegistryOrderInvariance pins that scoring is a function of the
// registry's contents, never its registration order: a permuted registry
// yields bit-identical scoreboards, detections and flight-recorder traces.
func TestRegistryOrderInvariance(t *testing.T) {
	base := DefaultConfig(testRoot)
	base.FlightRecorder = telemetry.NewFlightRecorder(0)
	engA, pid := attackRun(t, base)

	perm := DefaultConfig(testRoot)
	def := indicator.Default().Units()
	perm.Indicators = indicator.NewRegistry(def[4], def[1], def[3], def[0], def[2])
	perm.FlightRecorder = telemetry.NewFlightRecorder(0)
	engB, _ := attackRun(t, perm)

	if !reflect.DeepEqual(engA.Reports(), engB.Reports()) {
		t.Fatal("permuted registry produced different scoreboard reports")
	}
	if !reflect.DeepEqual(engA.Detections(), engB.Detections()) {
		t.Fatal("permuted registry produced different detections")
	}
	trA := base.FlightRecorder.Trace(pid)
	trB := perm.FlightRecorder.Trace(pid)
	if !reflect.DeepEqual(trA, trB) {
		t.Fatal("permuted registry produced a different flight trace")
	}
	if len(trA.Events) == 0 {
		t.Fatal("attack produced no flight-recorder events")
	}
}

// countingSource wraps a ContentSource and counts Content calls.
type countingSource struct {
	inner ContentSource
	calls atomic.Int64
}

func (s *countingSource) Content(id uint64) ([]byte, error) {
	s.calls.Add(1)
	return s.inner.Content(id)
}

// TestDisabledIndicatorNeverMeasures pins the feature-gating contract: with
// every content-consuming unit removed from the registry, the engine never
// calls the ContentSource — disabling indicators really does stop the
// measurement work, not just the awards.
func TestDisabledIndicatorNeverMeasures(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	cfg.Indicators = indicator.Default().Without(
		indicator.TypeChange, indicator.Similarity, indicator.EntropyDelta, indicator.Funneling)

	fs := vfs.New()
	if err := fs.MkdirAll(testRoot); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(0, testRoot+"/a.txt", []byte("original document content, long enough to matter")); err != nil {
		t.Fatal(err)
	}
	src := &countingSource{inner: testSource{fs}}
	eng := New(cfg, src)
	fs.SetInterceptor(interceptorFunc{eng})

	if got := eng.Features(); got != indicator.FeatCreator {
		t.Fatalf("deletion-only registry Features = %b, want FeatCreator", got)
	}

	pid := 41
	encryptInPlace(t, fs, pid, testRoot+"/a.txt")
	if err := fs.Delete(pid, testRoot+"/a.txt"); err != nil {
		t.Fatal(err)
	}
	eng.Flush()

	if n := src.calls.Load(); n != 0 {
		t.Fatalf("ContentSource called %d times with no content-consuming unit registered", n)
	}
	rep, ok := eng.Report(pid)
	if !ok {
		t.Fatal("no report for acting pid")
	}
	if rep.IndicatorPoints[IndicatorDeletion] <= 0 {
		t.Fatal("deletion indicator did not fire")
	}
	for _, ind := range []Indicator{IndicatorTypeChange, IndicatorSimilarity, IndicatorEntropyDelta, IndicatorFunneling} {
		if rep.IndicatorPoints[ind] != 0 {
			t.Fatalf("removed indicator %v earned points", ind)
		}
	}
}

// TestTelemetrySeriesFollowRegistry pins that per-indicator telemetry
// series are derived from the engine's registry declarations: a composed-in
// unit gets its own series, and every series name is the declared name.
func TestTelemetrySeriesFollowRegistry(t *testing.T) {
	decoy := testRoot + "/!decoy.txt"
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig(testRoot)
	cfg.Telemetry = reg
	cfg.Indicators = indicator.Default().With(indicator.NewHoneyfile(decoy))

	fs, eng := setup(t, cfg)
	if err := fs.WriteFile(0, decoy, []byte("decoy ledger")); err != nil {
		t.Fatal(err)
	}
	pid := 90
	encryptInPlace(t, fs, pid, decoy)
	eng.Flush()

	if v := reg.Counter(`engine_indicator_fires_total{indicator="honeyfile"}`).Value(); v == 0 {
		t.Fatal("honeyfile series did not count the decoy touch")
	}
	for _, u := range eng.Indicators().Units() {
		d := u.Decl()
		series := `engine_indicator_fires_total{indicator="` + d.Name + `"}`
		// Registered at engine construction; a drifting name would create a
		// fresh zero counter here instead of reusing the engine's handle.
		_ = reg.Counter(series)
	}
}

// TestHoneyfileDetection pins the decoy unit end to end at the engine
// level: a single write to a guarded path detects instantly at the default
// threshold, with the award attributed to the honeyfile indicator.
func TestHoneyfileDetection(t *testing.T) {
	decoy := testRoot + "/!passwords.txt"
	cfg := DefaultConfig(testRoot)
	cfg.Indicators = indicator.Default().With(indicator.NewHoneyfile(decoy))
	var dets []Detection
	cfg.OnDetection = func(d Detection) { dets = append(dets, d) }

	fs, eng := setup(t, cfg)
	if err := fs.WriteFile(0, decoy, []byte("decoy content")); err != nil {
		t.Fatal(err)
	}
	pid := 91
	encryptInPlace(t, fs, pid, decoy)
	eng.Flush()

	if len(dets) == 0 {
		t.Fatal("decoy write produced no detection")
	}
	if dets[0].Indicators[IndicatorHoneyfile] <= 0 {
		t.Fatalf("detection not attributed to honeyfile: %+v", dets[0].Indicators)
	}
	rep, _ := eng.Report(pid)
	if !rep.Detected {
		t.Fatal("report does not show detection")
	}
}

// TestHoneyfileRenameAndDelete pins the touch hooks a move-out (Class B)
// or dispose (Class C) attack would hit: renaming or deleting a decoy
// fires without any write.
func TestHoneyfileRenameAndDelete(t *testing.T) {
	decoyA := testRoot + "/!decoy_a.txt"
	decoyB := testRoot + "/!decoy_b.txt"
	cfg := DefaultConfig(testRoot)
	cfg.Indicators = indicator.NewRegistry(indicator.NewHoneyfile(decoyA, decoyB))

	fs, eng := setup(t, cfg)
	for _, p := range []string{decoyA, decoyB} {
		if err := fs.WriteFile(0, p, []byte("decoy")); err != nil {
			t.Fatal(err)
		}
	}
	pid := 92
	if err := fs.Rename(pid, decoyA, "/Windows/Temp/stash.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(pid, decoyB); err != nil {
		t.Fatal(err)
	}
	eng.Flush()

	rep, ok := eng.Report(pid)
	if !ok {
		t.Fatal("no report for acting pid")
	}
	// One rename touch + one delete touch = two awards.
	if got := rep.IndicatorPoints[IndicatorHoneyfile]; got != 2*DefaultPoints().Honeyfile {
		t.Fatalf("honeyfile points = %v, want %v", got, 2*DefaultPoints().Honeyfile)
	}
}

// TestMajorityPolicyAccelerates pins the pluggable-policy seam: under the
// majority-voting policy a Class A attack reaches the quorum of distinct
// indicators and detects at the accelerated threshold.
func TestMajorityPolicyAccelerates(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	cfg.Policy = &policy.Majority{}
	var dets []Detection
	cfg.OnDetection = func(d Detection) { dets = append(dets, d) }
	eng, pid := attackRun(t, cfg)

	if len(dets) == 0 {
		t.Fatal("majority policy never detected the attack")
	}
	rep, _ := eng.Report(pid)
	if !rep.Union {
		t.Fatal("majority quorum did not latch acceleration")
	}
	if th := dets[0].Threshold; th != cfg.UnionThreshold {
		t.Fatalf("accelerated detection threshold = %v, want %v", th, cfg.UnionThreshold)
	}
}

// TestDeprecatedDisabledIndicatorsShim pins that the deprecated
// Config.DisabledIndicators list behaves exactly like registry subtraction.
func TestDeprecatedDisabledIndicatorsShim(t *testing.T) {
	viaShim := DefaultConfig(testRoot)
	viaShim.DisabledIndicators = []Indicator{IndicatorTypeChange, IndicatorDeletion}
	engShim, _ := attackRun(t, viaShim)

	viaRegistry := DefaultConfig(testRoot)
	viaRegistry.Indicators = indicator.Default().Without(indicator.TypeChange, indicator.Deletion)
	engReg, _ := attackRun(t, viaRegistry)

	if !reflect.DeepEqual(engShim.Reports(), engReg.Reports()) {
		t.Fatal("DisabledIndicators shim diverged from registry subtraction")
	}
	if got, want := engShim.Indicators().IDs(), engReg.Indicators().IDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("effective registries differ: %v vs %v", got, want)
	}
}
