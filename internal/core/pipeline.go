package core

import (
	"fmt"
	"math"
	"time"

	"cryptodrop/internal/indicator"
	"cryptodrop/internal/policy"
	"cryptodrop/internal/telemetry"
)

// This file is the seam between the measurement layer (the engine) and the
// pluggable layers above it: hook dispatch into the indicator registry, the
// award bookkeeping shared by every unit, and the policy callbacks.

// hookedUnit is one registry unit's subscription to a hook, flattened at
// engine construction so dispatch is a slice walk with no map lookups.
type hookedUnit struct {
	unit indicator.Unit
	id   indicator.ID
	once bool
}

// buildHooks flattens the registry into per-hook dispatch lists. Units are
// already in canonical ID order (the registry sorts), so units sharing a
// hook always evaluate in ID order — scoring is independent of registration
// order, and the default registry reproduces the historical award order
// (type change, then similarity, then entropy delta on a transform).
func (e *Engine) buildHooks() {
	for _, u := range e.reg.Units() {
		d := u.Decl()
		for _, h := range d.Hooks {
			if h < 1 || h > indicator.HookMax {
				continue
			}
			e.hooks[h] = append(e.hooks[h], hookedUnit{unit: u, id: d.ID, once: d.Once})
		}
	}
}

// measured carries the per-operation measurement products a hook exposes to
// the units: the new content's state, the previous version's state (both
// nil outside transform scope) and the delete-ownership verdict.
type measured struct {
	newState  *fileState
	prev      *fileState
	ownDelete bool
}

// runHook evaluates every unit subscribed to h against the current
// operation and awards whatever fires; proc-shard lock held. The scratch
// context lives in the procState so dispatch allocates nothing.
func (e *Engine) runHook(h indicator.Hook, ps *procState, opIdx int64, path string, m measured) {
	units := e.hooks[h]
	if len(units) == 0 {
		return
	}
	c := &ps.ctx
	c.e, c.ps, c.opIdx, c.path, c.m = e, ps, opIdx, path, m
	for i := range units {
		hu := &units[i]
		if hu.once && ps.indicatorSeen[hu.id] {
			continue
		}
		if pts, fired := hu.unit.Eval(h, c); fired {
			e.award(ps, hu.id, pts, opIdx, path)
		}
	}
}

// award adds points for an indicator occurrence and gives the policy its
// post-award look (where acceleration conditions can change); proc-shard
// lock held. path attributes the award in telemetry.
func (e *Engine) award(ps *procState, id indicator.ID, pts float64, opIdx int64, path string) {
	ps.indicatorSeen[id] = true
	ps.indicatorPoints[id] += pts
	ps.score += pts
	if len(ps.history) < maxHistory {
		ps.history = append(ps.history, ScorePoint{OpIndex: opIdx, Score: ps.score})
	}
	e.tel.fired(ps, id, pts, opIdx, path)
	if ps.spanOn {
		e.spans.Record(telemetry.Span{
			Name: "award " + e.indNames[id], Cat: "award", Lane: e.lane,
			Group: ps.pid, OpIndex: opIdx, Path: path,
			Detail: fmt.Sprintf("points=%g score=%g", pts, ps.score),
		}, time.Now(), 0)
	}
	if e.cfg.Tier == TierSampled && !ps.escalated {
		// The two-tier ladder's promotion rule: the first indicator that
		// fires for a process escalates it to full measurement, so every
		// subsequent transform by a process under suspicion is scored at
		// full fidelity.
		ps.escalated = true
		e.tel.escalatedTier()
	}
	e.pol.AfterAward(&ps.ctx)
}

// checkDetection asks the policy to judge the process against its effective
// threshold; proc-shard lock held. The fired detection — the Detection plus
// the scoreboard facts the audit bundle needs, captured under this lock —
// is returned for dispatch outside the lock.
func (e *Engine) checkDetection(ps *procState, opIdx int64) (firedDetection, bool) {
	if ps.detected {
		return firedDetection{}, false
	}
	c := &ps.ctx
	c.e, c.ps, c.opIdx = e, ps, opIdx
	threshold, detect := e.pol.Decide(c)
	if ps.spanOn {
		e.spans.Record(telemetry.Span{
			Name: "policy", Cat: "policy", Lane: e.lane,
			Group: ps.pid, OpIndex: opIdx,
			Detail: fmt.Sprintf("score=%g threshold=%g detect=%t", ps.score, threshold, detect),
		}, time.Now(), 0)
	}
	if !detect {
		return firedDetection{}, false
	}
	ps.detected = true
	e.tel.detected(ps)
	det := Detection{
		PID:        ps.pid,
		Score:      ps.score,
		Threshold:  threshold,
		Union:      ps.unionFired,
		OpIndex:    opIdx,
		Indicators: make(map[Indicator]float64, len(ps.indicatorPoints)),
	}
	for ind, pts := range ps.indicatorPoints {
		det.Indicators[ind] = pts
	}
	e.detMu.Lock()
	e.detections = append(e.detections, det)
	e.detMu.Unlock()
	return firedDetection{
		det:       det,
		filesLost: ps.filesTransformed,
		deletes:   ps.deletes,
		escalated: ps.escalated,
	}, true
}

// evalCtx adapts one scoring step to the indicator- and policy-layer
// Context interfaces. One instance lives inside each procState (configured
// by runHook/checkDetection under the owning shard lock), so handing &ctx
// to an interface parameter never heap-allocates on the event path.
type evalCtx struct {
	e     *Engine
	ps    *procState
	opIdx int64
	path  string
	m     measured
}

var (
	_ indicator.Context = (*evalCtx)(nil)
	_ policy.Context    = (*evalCtx)(nil)
)

// Points implements indicator.Context.
func (c *evalCtx) Points() Points { return c.e.cfg.Points }

// Path implements indicator.Context.
func (c *evalCtx) Path() string { return c.path }

// StreamDeltaSuspicious implements indicator.Context.
func (c *evalCtx) StreamDeltaSuspicious() bool { return c.e.deltaSuspicious(c.ps) }

// PayloadStreamAvailable implements indicator.Context: the payload stream
// is gone when the backend never delivers it (NewCipherWithoutDelta) or
// when the host degraded the session at runtime (SetPayloadBlind).
func (c *evalCtx) PayloadStreamAvailable() bool {
	return !c.e.cfg.NewCipherWithoutDelta && !c.e.payloadBlind.Load()
}

// TypeChanged implements indicator.Context.
func (c *evalCtx) TypeChanged() bool {
	return c.m.prev != nil && c.m.newState != nil && c.m.newState.typ.ID != c.m.prev.typ.ID
}

// Dissimilar implements indicator.Context.
func (c *evalCtx) Dissimilar() bool {
	return c.m.prev != nil && c.m.newState != nil &&
		reliableDigest(c.m.prev) && c.e.dissimilar(c.m.prev.digest, c.m.newState.digest)
}

// FileEntropyDelta implements indicator.Context. Outside transform scope
// there is no delta; -Inf keeps any >= threshold comparison false. When
// either side of a transform was measured at the sampled tier, the delta
// compares prefix entropy against prefix entropy — like with like — rather
// than mixing a header sample with a whole-file value.
func (c *evalCtx) FileEntropyDelta() float64 {
	if c.m.prev == nil || c.m.newState == nil {
		return math.Inf(-1)
	}
	if c.m.prev.sampled || c.m.newState.sampled {
		return c.m.newState.prefixEntropy() - c.m.prev.prefixEntropy()
	}
	return c.m.newState.entropy - c.m.prev.entropy
}

// EntropyDeltaThreshold implements indicator.Context.
func (c *evalCtx) EntropyDeltaThreshold() float64 { return c.e.cfg.EntropyDeltaThreshold }

// NewFileCipherLike implements indicator.Context: untyped data at
// near-maximal Shannon entropy — the shape of an encrypted copy (§V-C).
func (c *evalCtx) NewFileCipherLike() bool {
	return c.m.newState != nil && c.m.newState.typ.IsData() && c.m.newState.entropy > 7.0
}

// DeletedOwnFile implements indicator.Context.
func (c *evalCtx) DeletedOwnFile() bool { return c.m.ownDelete }

// TypesRead implements indicator.Context.
func (c *evalCtx) TypesRead() int { return len(c.ps.typesRead) }

// TypesWritten implements indicator.Context.
func (c *evalCtx) TypesWritten() int { return len(c.ps.typesWritten) }

// FunnelingThreshold implements indicator.Context.
func (c *evalCtx) FunnelingThreshold() int { return c.e.cfg.FunnelingThreshold }

// Score implements policy.Context.
func (c *evalCtx) Score() float64 { return c.ps.score }

// Seen implements policy.Context.
func (c *evalCtx) Seen(id indicator.ID) bool { return c.ps.indicatorSeen[id] }

// SeenCount implements policy.Context.
func (c *evalCtx) SeenCount() int { return len(c.ps.indicatorSeen) }

// RegistrySize implements policy.Context.
func (c *evalCtx) RegistrySize() int { return c.e.reg.Len() }

// Accelerated implements policy.Context.
func (c *evalCtx) Accelerated() bool { return c.ps.unionFired }

// Accelerate implements policy.Context: the one-time acceleration latch —
// bonus onto the score, a history step, and the labelled flight-recorder
// entry ("union-bonus" under the default policy).
func (c *evalCtx) Accelerate(label string, bonus float64) {
	ps := c.ps
	if ps.unionFired {
		return
	}
	ps.unionFired = true
	ps.score += bonus
	if len(ps.history) < maxHistory {
		ps.history = append(ps.history, ScorePoint{OpIndex: c.opIdx, Score: ps.score})
	}
	c.e.tel.accelerated(ps, label, bonus, c.opIdx)
	if ps.spanOn {
		c.e.spans.Record(telemetry.Span{
			Name: "award " + label, Cat: "award", Lane: c.e.lane,
			Group: ps.pid, OpIndex: c.opIdx,
			Detail: fmt.Sprintf("points=%g score=%g", bonus, ps.score),
		}, time.Now(), 0)
	}
}

// NonUnionThreshold implements policy.Context.
func (c *evalCtx) NonUnionThreshold() float64 { return c.e.cfg.NonUnionThreshold }

// UnionThreshold implements policy.Context.
func (c *evalCtx) UnionThreshold() float64 { return c.e.cfg.UnionThreshold }
