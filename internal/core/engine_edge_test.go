package core

import (
	"fmt"
	"testing"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/vfs"
)

func TestSnapshotFallbackForPreAttachedHandle(t *testing.T) {
	// A handle opened BEFORE the engine attaches must still be tracked:
	// the first write's PreOp snapshots the original lazily.
	fs := vfs.New()
	if err := fs.MkdirAll(testRoot); err != nil {
		t.Fatal(err)
	}
	p := testRoot + "/doc.txt"
	if err := fs.WriteFile(0, p, corpus.Generate("txt", 1, 8192)); err != nil {
		t.Fatal(err)
	}
	h, err := fs.Open(700, p, vfs.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	// Engine attaches after the open.
	eng := New(DefaultConfig(testRoot), testSource{fs})
	fs.SetInterceptor(interceptorFunc{eng})

	content, err := h.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	enc := keystream(9, len(content))
	h.SeekTo(0)
	if _, err := h.Write(enc); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	rep, ok := eng.Report(700)
	if !ok {
		t.Fatal("no report")
	}
	if rep.IndicatorPoints[IndicatorTypeChange] == 0 {
		t.Fatal("lazy snapshot missed the type change")
	}
}

func TestOwnFileDeletionScoresLow(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	pid := 710
	// The process creates and deletes its own temp files (Office-style
	// autosave churn).
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("%s/~tmp%d.bin", testRoot, i)
		if err := fs.WriteFile(pid, p, corpus.Generate("txt", int64(i), 2048)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Delete(pid, p); err != nil {
			t.Fatal(err)
		}
	}
	rep, _ := eng.Report(pid)
	wantOwn := 20 * cfg.Points.DeletionOwn
	if got := rep.IndicatorPoints[IndicatorDeletion]; got != wantOwn {
		t.Fatalf("own-deletion points = %.1f, want %.1f", got, wantOwn)
	}

	// Deleting the user's pre-existing files scores the full rate.
	pid2 := 711
	infos, _ := fs.List(testRoot)
	deleted := 0
	for _, info := range infos {
		if info.IsDir || info.ReadOnly {
			continue
		}
		if err := fs.Delete(pid2, info.Path); err != nil {
			t.Fatal(err)
		}
		deleted++
		if deleted == 5 {
			break
		}
	}
	rep2, _ := eng.Report(pid2)
	want := 5 * cfg.Points.Deletion
	if got := rep2.IndicatorPoints[IndicatorDeletion]; got != want {
		t.Fatalf("foreign-deletion points = %.1f, want %.1f", got, want)
	}
}

func TestNewCipherFileAward(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	pid := 720
	// Establish a suspicious entropy delta: read plaintext...
	if _, err := fs.ReadFile(pid, testRoot+"/file00.txt"); err != nil {
		t.Fatal(err)
	}
	// ...then create brand-new ciphertext files (Class C copies).
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf("%s/file%02d.txt.enc", testRoot, i)
		if err := fs.WriteFile(pid, p, keystream(int64(i), 8192)); err != nil {
			t.Fatal(err)
		}
	}
	rep, _ := eng.Report(pid)
	// Each close of a new data-typed file while Δe is suspicious awards
	// NewCipherFile under the entropy-delta indicator, on top of the
	// per-op points.
	minWant := 4 * cfg.Points.NewCipherFile
	if got := rep.IndicatorPoints[IndicatorEntropyDelta]; got < minWant {
		t.Fatalf("entropy-delta points = %.2f, want ≥ %.2f", got, minWant)
	}
}

func TestNewTypedFileNotPenalised(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	pid := 730
	if _, err := fs.ReadFile(pid, testRoot+"/file00.txt"); err != nil {
		t.Fatal(err)
	}
	// New files with recognisable types (a docx save-as) score no
	// NewCipherFile even with an active delta.
	if err := fs.WriteFile(pid, testRoot+"/export.docx", corpus.Generate("docx", 3, 16384)); err != nil {
		t.Fatal(err)
	}
	rep, _ := eng.Report(pid)
	// Only per-op delta points allowed; no 3-point file award.
	if got := rep.IndicatorPoints[IndicatorEntropyDelta]; got >= cfg.Points.NewCipherFile {
		t.Fatalf("typed new file over-penalised: %.2f points", got)
	}
}

func TestUnweightedEntropyAblation(t *testing.T) {
	// With the paper's weighting, a flood of small low-entropy ransom
	// notes cannot pull the write mean down; unweighted, it can.
	run := func(unweighted bool) float64 {
		cfg := DefaultConfig(testRoot)
		cfg.UnweightedEntropy = unweighted
		fs, eng := setup(t, cfg)
		pid := 740
		// One plaintext read, one big ciphertext write.
		if _, err := fs.ReadFile(pid, testRoot+"/file00.txt"); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(pid, testRoot+"/x.enc", keystream(1, 32*1024)); err != nil {
			t.Fatal(err)
		}
		// A flood of small ransom notes (every write is one op).
		note := []byte("PAY US! PAY US! PAY US! ")
		for i := 0; i < 200; i++ {
			if err := fs.WriteFile(pid, fmt.Sprintf("%s/NOTE%03d.txt", testRoot, i), note); err != nil {
				t.Fatal(err)
			}
		}
		rep, _ := eng.Report(pid)
		return rep.WriteEntropyMean
	}
	weighted := run(false)
	unweighted := run(true)
	if weighted < 7.5 {
		t.Fatalf("weighted mean %.2f dragged down by notes", weighted)
	}
	if unweighted >= weighted {
		t.Fatalf("unweighted mean %.2f not below weighted %.2f", unweighted, weighted)
	}
}

func TestDetectionRecordsOpIndex(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	pid := 750
	infos, _ := fs.List(testRoot)
	for _, info := range infos {
		encryptInPlace(t, fs, pid, info.Path)
	}
	dets := eng.Detections()
	if len(dets) != 1 {
		t.Fatalf("detections = %d", len(dets))
	}
	if dets[0].OpIndex <= 0 || dets[0].OpIndex > eng.OpIndex() {
		t.Fatalf("op index %d out of range (now %d)", dets[0].OpIndex, eng.OpIndex())
	}
	if eng.Config().ProtectedRoot != testRoot {
		t.Fatal("Config() lost the root")
	}
}

func TestRenameWithinRootOnlyExtension(t *testing.T) {
	// Renaming a file without touching content must not earn indicator
	// points (content identical → type same, similarity 100).
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	pid := 760
	if err := fs.Rename(pid, testRoot+"/file00.txt", testRoot+"/file00.txt.bak"); err != nil {
		t.Fatal(err)
	}
	rep, ok := eng.Report(pid)
	if ok && rep.Score != 0 {
		t.Fatalf("pure rename scored %.2f: %v", rep.Score, rep.IndicatorPoints)
	}
}

func TestCloseAfterDeleteIsSafe(t *testing.T) {
	// Deleting a file while a write handle is open, then closing the
	// handle, must not panic or corrupt the engine.
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	pid := 770
	p := testRoot + "/doomed.txt"
	if err := fs.WriteFile(pid, p, []byte("short-lived content here")); err != nil {
		t.Fatal(err)
	}
	h, err := fs.Open(pid, p, vfs.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("mutating")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(pid, p); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.Report(pid); !ok {
		t.Fatal("no report")
	}
}

func TestEmptyFileWriteSafe(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	pid := 780
	h, err := fs.Open(pid, testRoot+"/empty.txt", vfs.WriteOnly|vfs.Create)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write(nil); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if rep, ok := eng.Report(pid); ok && rep.Score != 0 {
		t.Fatalf("empty write scored %.2f", rep.Score)
	}
}
