package core

import (
	"fmt"
	"math/rand"
	"testing"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/vfs"
)

const testRoot = "/Users/victim/Documents"

// setup builds a filesystem with a handful of documents and an attached
// engine.
func setup(t testing.TB, cfg Config) (*vfs.FS, *Engine) {
	t.Helper()
	fs := vfs.New()
	if err := fs.MkdirAll(testRoot); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/Windows/Temp"); err != nil {
		t.Fatal(err)
	}
	exts := []string{"txt", "pdf", "docx", "csv", "md", "html", "xml", "jpg", "xlsx", "rtf"}
	for i := 0; i < 30; i++ {
		ext := exts[i%len(exts)]
		p := fmt.Sprintf("%s/file%02d.%s", testRoot, i, ext)
		if err := fs.WriteFile(0, p, corpus.Generate(ext, int64(i), 8192)); err != nil {
			t.Fatal(err)
		}
	}
	eng := New(cfg, testSource{fs})
	fs.SetInterceptor(interceptorFunc{eng})
	return fs, eng
}

// testSource exposes a vfs as the engine's ContentSource. It mirrors
// internal/vfsadapter, which cannot be imported here (it imports core); the
// cross-backend conformance suite in internal/experiments pins that the real
// adapter behaves identically.
type testSource struct{ fs *vfs.FS }

func (s testSource) Content(id uint64) ([]byte, error) { return s.fs.ReadFileRawByID(id) }

// interceptorFunc adapts the engine to vfs.Interceptor directly for tests,
// translating ops the same way internal/vfsadapter does.
type interceptorFunc struct{ e *Engine }

func (i interceptorFunc) PreOp(op *vfs.Op) error { i.e.PreEvent(testEventFromOp(op)); return nil }
func (i interceptorFunc) PostOp(op *vfs.Op)      { i.e.Handle(testEventFromOp(op)) }

func testEventFromOp(op *vfs.Op) Event {
	kinds := map[vfs.OpKind]EventKind{
		vfs.OpCreate: EvCreate, vfs.OpOpen: EvOpen, vfs.OpRead: EvRead,
		vfs.OpWrite: EvWrite, vfs.OpClose: EvClose, vfs.OpDelete: EvDelete,
		vfs.OpRename: EvRename,
	}
	var flags EventFlag
	if op.Flags&vfs.ReadOnly != 0 {
		flags |= EvReadIntent
	}
	if op.Flags&vfs.WriteOnly != 0 {
		flags |= EvWriteIntent
	}
	if op.Flags&vfs.Create != 0 {
		flags |= EvCreateIntent
	}
	if op.Flags&vfs.Truncate != 0 {
		flags |= EvTruncate
	}
	if op.Flags&vfs.Append != 0 {
		flags |= EvAppend
	}
	return Event{
		Kind: kinds[op.Kind], PID: op.PID, Path: op.Path, NewPath: op.NewPath,
		FileID: op.FileID, ReplacedID: op.ReplacedID, Data: op.Data,
		Offset: op.Offset, Size: op.Size, Flags: flags, Wrote: op.Wrote,
	}
}

// keystream produces deterministic ciphertext-like bytes.
func keystream(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	rng.Read(out)
	return out
}

// encryptInPlace performs a Class A transformation of path as pid.
func encryptInPlace(t testing.TB, fs *vfs.FS, pid int, p string) {
	t.Helper()
	h, err := fs.Open(pid, p, vfs.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	content, err := h.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	key := keystream(int64(len(content)), len(content))
	enc := make([]byte, len(content))
	for i := range content {
		enc[i] = content[i] ^ key[i]
	}
	h.SeekTo(0)
	if _, err := h.Write(enc); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClassAEncryptionDetected(t *testing.T) {
	var detections []Detection
	cfg := DefaultConfig(testRoot)
	cfg.OnDetection = func(d Detection) { detections = append(detections, d) }
	fs, eng := setup(t, cfg)

	pid := 500
	infos, err := fs.List(testRoot)
	if err != nil {
		t.Fatal(err)
	}
	encrypted := 0
	for _, info := range infos {
		if len(detections) > 0 {
			break
		}
		encryptInPlace(t, fs, pid, info.Path)
		encrypted++
	}
	if len(detections) == 0 {
		t.Fatalf("no detection after encrypting all %d files", encrypted)
	}
	d := detections[0]
	if d.PID != pid {
		t.Fatalf("detected pid %d, want %d", d.PID, pid)
	}
	if encrypted > 15 {
		t.Fatalf("detection took %d files, want early detection", encrypted)
	}
	rep, ok := eng.Report(pid)
	if !ok || !rep.Detected {
		t.Fatal("report does not show detection")
	}
	if !rep.Union {
		t.Fatal("Class A in-place encryption should trigger union indication")
	}
	for _, ind := range PrimaryIndicators() {
		if rep.IndicatorPoints[ind] <= 0 {
			t.Errorf("primary indicator %v earned no points", ind)
		}
	}
}

func TestBenignEditScoresNearZero(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)

	pid := 600
	// A word processor edit: read a document, write a slightly changed
	// version of the same type.
	p := testRoot + "/file02.docx"
	content, err := fs.ReadFile(pid, p)
	if err != nil {
		t.Fatal(err)
	}
	edited := corpus.Generate("docx", 2, len(content)) // same type, same entropy class
	h, err := fs.Open(pid, p, vfs.WriteOnly|vfs.Truncate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write(edited); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	rep, ok := eng.Report(pid)
	if !ok {
		t.Fatal("no report for benign process")
	}
	if rep.Detected {
		t.Fatalf("benign edit detected (score %.1f)", rep.Score)
	}
	if rep.IndicatorPoints[IndicatorTypeChange] != 0 {
		t.Errorf("type-change points for same-type rewrite: %v", rep.IndicatorPoints)
	}
	if rep.Score >= cfg.UnionThreshold {
		t.Fatalf("benign edit score %.1f too high", rep.Score)
	}
}

func TestReadingAloneScoresNothing(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	pid := 700
	infos, _ := fs.List(testRoot)
	for _, info := range infos {
		if _, err := fs.ReadFile(pid, info.Path); err != nil {
			t.Fatal(err)
		}
	}
	rep, ok := eng.Report(pid)
	if !ok {
		t.Fatal("no report")
	}
	if rep.Score != 0 {
		t.Fatalf("pure reader scored %.1f", rep.Score)
	}
}

func TestOperationsOutsideRootIgnored(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	pid := 800
	// Heavy suspicious activity outside the protected tree.
	for i := 0; i < 50; i++ {
		p := fmt.Sprintf("/Windows/Temp/f%d.bin", i)
		if err := fs.WriteFile(pid, p, keystream(int64(i), 4096)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Delete(pid, p); err != nil {
			t.Fatal(err)
		}
	}
	if rep, ok := eng.Report(pid); ok && rep.Score != 0 {
		t.Fatalf("unprotected activity scored %.1f", rep.Score)
	}
}

func TestClassCRenameOverOriginalLinksState(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	pid := 900
	infos, _ := fs.List(testRoot)
	for _, info := range infos[:6] {
		content, err := fs.ReadFile(pid, info.Path)
		if err != nil {
			t.Fatal(err)
		}
		key := keystream(7, len(content))
		enc := make([]byte, len(content))
		for i := range content {
			enc[i] = content[i] ^ key[i]
		}
		tmp := info.Path + ".locked"
		if err := fs.WriteFile(pid, tmp, enc); err != nil {
			t.Fatal(err)
		}
		// Move the new file over the original: the engine must link the
		// new content to the original's cached state.
		if err := fs.Rename(pid, tmp, info.Path); err != nil {
			t.Fatal(err)
		}
	}
	rep, ok := eng.Report(pid)
	if !ok {
		t.Fatal("no report")
	}
	if rep.IndicatorPoints[IndicatorTypeChange] == 0 {
		t.Fatal("rename-over-original did not trigger type change")
	}
	if rep.IndicatorPoints[IndicatorSimilarity] == 0 {
		t.Fatal("rename-over-original did not trigger similarity")
	}
	if !rep.Union {
		t.Fatal("Class C with rename-over should achieve union")
	}
}

func TestClassBMoveOutAndBackTracked(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	pid := 1000
	infos, _ := fs.List(testRoot)
	for n, info := range infos[:8] {
		tmp := fmt.Sprintf("/Windows/Temp/w%d", n)
		if err := fs.Rename(pid, info.Path, tmp); err != nil {
			t.Fatal(err)
		}
		// Encrypt outside the protected tree (unmonitored).
		content, err := fs.ReadFile(pid, tmp)
		if err != nil {
			t.Fatal(err)
		}
		key := keystream(11, len(content))
		enc := make([]byte, len(content))
		for i := range content {
			enc[i] = content[i] ^ key[i]
		}
		h, err := fs.Open(pid, tmp, vfs.WriteOnly|vfs.Truncate)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write(enc); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
		// Move back under a different name.
		if err := fs.Rename(pid, tmp, info.Path+".enc"); err != nil {
			t.Fatal(err)
		}
	}
	rep, ok := eng.Report(pid)
	if !ok {
		t.Fatal("no report")
	}
	if rep.IndicatorPoints[IndicatorTypeChange] == 0 {
		t.Fatal("move-out/encrypt/move-back evaded type change tracking")
	}
	if rep.IndicatorPoints[IndicatorSimilarity] == 0 {
		t.Fatal("move-out/encrypt/move-back evaded similarity tracking")
	}
}

func TestDeletionIndicator(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	pid := 1100
	infos, _ := fs.List(testRoot)
	for _, info := range infos[:10] {
		if err := fs.Delete(pid, info.Path); err != nil {
			t.Fatal(err)
		}
	}
	rep, _ := eng.Report(pid)
	if rep.Deletes != 10 {
		t.Fatalf("deletes = %d, want 10", rep.Deletes)
	}
	want := 10 * cfg.Points.Deletion
	if rep.IndicatorPoints[IndicatorDeletion] != want {
		t.Fatalf("deletion points = %.1f, want %.1f", rep.IndicatorPoints[IndicatorDeletion], want)
	}
}

func TestFunnelingIndicator(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	pid := 1200
	// Read every document type, write a single output type (7-zip shape).
	infos, _ := fs.List(testRoot)
	for _, info := range infos {
		if _, err := fs.ReadFile(pid, info.Path); err != nil {
			t.Fatal(err)
		}
	}
	out := testRoot + "/archive.7z"
	h, err := fs.Open(pid, out, vfs.WriteOnly|vfs.Create)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write(append([]byte{'7', 'z', 0xBC, 0xAF, 0x27, 0x1C}, keystream(3, 8192)...)); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	rep, _ := eng.Report(pid)
	if rep.IndicatorPoints[IndicatorFunneling] != cfg.Points.Funneling {
		t.Fatalf("funneling points = %.1f, want %.1f (typesRead should far exceed typesWritten)",
			rep.IndicatorPoints[IndicatorFunneling], cfg.Points.Funneling)
	}
}

func TestFunnelingAwardedOnce(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	cfg.FunnelingThreshold = 2
	fs, eng := setup(t, cfg)
	pid := 1300
	infos, _ := fs.List(testRoot)
	for _, info := range infos {
		if _, err := fs.ReadFile(pid, info.Path); err != nil {
			t.Fatal(err)
		}
		// Keep writing the same single output.
		h, err := fs.Open(pid, testRoot+"/out.bin", vfs.WriteOnly|vfs.Create|vfs.Append)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write(keystream(1, 512)); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
	}
	rep, _ := eng.Report(pid)
	if got := rep.IndicatorPoints[IndicatorFunneling]; got != cfg.Points.Funneling {
		t.Fatalf("funneling points = %.1f, want single award %.1f", got, cfg.Points.Funneling)
	}
}

func TestUnionLowersThreshold(t *testing.T) {
	// With union disabled the same workload must take longer (more files)
	// to detect than with union enabled.
	countFilesToDetect := func(disableUnion bool) int {
		cfg := DefaultConfig(testRoot)
		cfg.DisableUnion = disableUnion
		detected := false
		cfg.OnDetection = func(d Detection) { detected = true }
		fs, _ := setup(t, cfg)
		pid := 1400
		infos, _ := fs.List(testRoot)
		n := 0
		for _, info := range infos {
			if detected {
				break
			}
			encryptInPlace(t, fs, pid, info.Path)
			n++
		}
		if !detected {
			t.Fatalf("no detection (disableUnion=%v) after %d files", disableUnion, n)
		}
		return n
	}
	withUnion := countFilesToDetect(false)
	withoutUnion := countFilesToDetect(true)
	if withUnion > withoutUnion {
		t.Fatalf("union detection (%d files) slower than non-union (%d files)", withUnion, withoutUnion)
	}
	if withoutUnion <= withUnion {
		// Equality can happen only if the non-union path was already fast.
		t.Logf("union=%d files, non-union=%d files", withUnion, withoutUnion)
	}
}

func TestDisabledIndicatorNeverFires(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	cfg.DisabledIndicators = []Indicator{IndicatorTypeChange}
	fs, eng := setup(t, cfg)
	pid := 1500
	infos, _ := fs.List(testRoot)
	for _, info := range infos {
		encryptInPlace(t, fs, pid, info.Path)
	}
	rep, _ := eng.Report(pid)
	if rep.IndicatorPoints[IndicatorTypeChange] != 0 {
		t.Fatal("disabled indicator earned points")
	}
	if rep.Union {
		t.Fatal("union fired with a disabled primary indicator")
	}
}

func TestDetectionFiresOnce(t *testing.T) {
	fired := 0
	cfg := DefaultConfig(testRoot)
	cfg.OnDetection = func(d Detection) { fired++ }
	fs, eng := setup(t, cfg)
	pid := 1600
	infos, _ := fs.List(testRoot)
	for _, info := range infos {
		encryptInPlace(t, fs, pid, info.Path)
	}
	if fired != 1 {
		t.Fatalf("OnDetection fired %d times, want 1", fired)
	}
	if got := len(eng.Detections()); got != 1 {
		t.Fatalf("Detections() len = %d, want 1", got)
	}
	d := eng.Detections()[0]
	if d.Score < d.Threshold {
		t.Fatalf("detection score %.1f below threshold %.1f", d.Score, d.Threshold)
	}
}

func TestPerProcessIsolation(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	// Malicious pid and benign pid interleaved.
	mal, ben := 1700, 1701
	infos, _ := fs.List(testRoot)
	for i, info := range infos[:8] {
		encryptInPlace(t, fs, mal, info.Path)
		if _, err := fs.ReadFile(ben, infos[8+i].Path); err != nil {
			t.Fatal(err)
		}
	}
	malRep, _ := eng.Report(mal)
	benRep, _ := eng.Report(ben)
	if malRep.Score <= benRep.Score {
		t.Fatalf("malicious score %.1f not above benign %.1f", malRep.Score, benRep.Score)
	}
	if benRep.Score != 0 {
		t.Fatalf("benign reader scored %.1f", benRep.Score)
	}
}

func TestExtensionAndDirTracking(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	pid := 1800
	if _, err := fs.ReadFile(pid, testRoot+"/file00.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(pid, testRoot+"/file01.pdf"); err != nil {
		t.Fatal(err)
	}
	rep, _ := eng.Report(pid)
	if len(rep.ExtensionsTouched) != 2 || rep.ExtensionsTouched[0] != "txt" || rep.ExtensionsTouched[1] != "pdf" {
		t.Fatalf("extensions = %v, want [txt pdf] in touch order", rep.ExtensionsTouched)
	}
	if len(rep.DirsTouched) != 1 || rep.DirsTouched[0] != testRoot {
		t.Fatalf("dirs = %v", rep.DirsTouched)
	}
}

func TestSmallFilesYieldNoSimilarity(t *testing.T) {
	// Files under 512 bytes cannot be digested, so pure small-file
	// attacks must not earn similarity points (§V-C).
	cfg := DefaultConfig(testRoot)
	fs := vfs.New()
	if err := fs.MkdirAll(testRoot); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		p := fmt.Sprintf("%s/tiny%d.txt", testRoot, i)
		if err := fs.WriteFile(0, p, corpus.Generate("txt", int64(i), 300)); err != nil {
			t.Fatal(err)
		}
	}
	eng := New(cfg, testSource{fs})
	fs.SetInterceptor(interceptorFunc{eng})
	pid := 1900
	infos, _ := fs.List(testRoot)
	for _, info := range infos {
		encryptInPlace(t, fs, pid, info.Path)
	}
	rep, _ := eng.Report(pid)
	if rep.IndicatorPoints[IndicatorSimilarity] != 0 {
		t.Fatalf("similarity points %.1f on sub-512B files", rep.IndicatorPoints[IndicatorSimilarity])
	}
	if rep.Union {
		t.Fatal("union fired without a valid similarity measurement")
	}
	if rep.IndicatorPoints[IndicatorTypeChange] == 0 {
		t.Fatal("type change should still fire on small files")
	}
}

func TestRansomNoteWritesDoNotDrownEntropy(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	fs, eng := setup(t, cfg)
	pid := 2000
	note := []byte("ALL YOUR FILES ARE ENCRYPTED! PAY 1 BTC TO RECOVER THEM.\n")
	// Drop a ransom note in the root, then encrypt files; the weighted
	// entropy mean must still cross the threshold.
	if err := fs.WriteFile(pid, testRoot+"/HOW_TO_DECRYPT.txt", note); err != nil {
		t.Fatal(err)
	}
	infos, _ := fs.List(testRoot)
	for _, info := range infos {
		if info.Path == testRoot+"/HOW_TO_DECRYPT.txt" {
			continue
		}
		encryptInPlace(t, fs, pid, info.Path)
	}
	rep, _ := eng.Report(pid)
	if rep.IndicatorPoints[IndicatorEntropyDelta] == 0 {
		t.Fatal("entropy delta suppressed by low-entropy ransom notes")
	}
}

func BenchmarkEngineEncryptionStream(b *testing.B) {
	cfg := DefaultConfig(testRoot)
	fs, _ := setup(b, cfg)
	content, err := fs.ReadFileRaw(testRoot + "/file01.pdf")
	if err != nil {
		b.Fatal(err)
	}
	key := keystream(1, len(content))
	enc := make([]byte, len(content))
	for i := range content {
		enc[i] = content[i] ^ key[i]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := fs.Open(3000, testRoot+"/file01.pdf", vfs.ReadWrite)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Write(enc); err != nil {
			b.Fatal(err)
		}
		if err := h.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
