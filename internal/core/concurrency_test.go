package core

// Concurrency regression tests for the sharded scoreboard and the
// measurement pool. Run with -race: these tests exist to catch lock-window
// regressions (a delete racing the content read of a completed rewrite) and
// cross-shard ordering bugs, not to assert timing.

import (
	"fmt"
	"sync"
	"testing"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/vfs"
)

// TestConcurrentDeleteCloseSameFile is the regression test for the old
// readRaw unlock/relock window: PostOp used to release the engine-wide lock
// to read the rewritten file's content and then re-acquire it, so a
// concurrent delete of the same file ID could mutate the file cache inside
// a window the close handler believed was covered by its lock. The engine
// now reads content before taking any scoreboard lock; a delete racing the
// read must leave the engine consistent — the close either sees the content
// (and scores the transformation) or sees a read error (and scores
// nothing), never a torn state.
func TestConcurrentDeleteCloseSameFile(t *testing.T) {
	fs, eng := setup(t, DefaultConfig(testRoot))
	p := testRoot + "/contended.docx"
	content := corpus.Generate("docx", 99, 8192)

	const rounds = 300
	var wg sync.WaitGroup
	wg.Add(2)
	start := make(chan struct{})

	// Writer: rewrite and close the file as pid 1.
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < rounds; i++ {
			h, err := fs.Open(1, p, vfs.WriteOnly|vfs.Create)
			if err != nil {
				continue // deleted out from under us; recreated next round
			}
			h.Write(keystream(int64(i), 4096))
			h.Close()
		}
	}()
	// Deleter: remove and recreate the same path as pid 2, churning the
	// file ID the writer is closing against.
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < rounds; i++ {
			fs.Delete(2, p)
			fs.WriteFile(2, p, content)
		}
	}()
	close(start)
	wg.Wait()

	// The engine must still be consistent and serviceable.
	eng.Flush()
	for _, pid := range []int{1, 2} {
		if _, ok := eng.Report(pid); !ok {
			t.Fatalf("no report for pid %d after contended run", pid)
		}
	}
}

// TestConcurrentPostOpDistinctProcesses drives the full detection hot path
// from many goroutines, each acting as its own process on its own file: the
// sharded scoreboard must keep every process's bookkeeping isolated, and
// every transformation must land exactly once.
func TestConcurrentPostOpDistinctProcesses(t *testing.T) {
	cfg := DefaultConfig(testRoot)
	cfg.Workers = 4
	fs, eng := setup(t, cfg)

	const procs = 16
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		pid := 100 + g
		p := fmt.Sprintf("%s/worker%02d.docx", testRoot, g)
		if err := fs.WriteFile(0, p, corpus.Generate("docx", int64(g), 8192)); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				encryptInPlace(t, fs, pid, p)
			}
		}()
	}
	wg.Wait()
	eng.Flush()

	for g := 0; g < procs; g++ {
		rep, ok := eng.Report(100 + g)
		if !ok {
			t.Fatalf("no report for pid %d", 100+g)
		}
		if rep.FilesTransformed != 5 {
			t.Errorf("pid %d: FilesTransformed = %d, want 5", 100+g, rep.FilesTransformed)
		}
		if rep.Score <= 0 {
			t.Errorf("pid %d: score = %v, want > 0 after repeated encryption", 100+g, rep.Score)
		}
	}
}

// TestWorkerPoolMatchesSequential replays one deterministic single-threaded
// workload through a synchronous engine (Workers = 0) and a pooled engine
// (Workers = 4) and requires identical verdicts: same scores, same
// per-indicator points, same union state, same detection operation indexes.
// This is the invariant the deferred-apply design exists to preserve — the
// pool moves measurement off the event path without changing what the
// engine concludes.
func TestWorkerPoolMatchesSequential(t *testing.T) {
	run := func(workers int) (*Engine, []Detection) {
		cfg := DefaultConfig(testRoot)
		cfg.Workers = workers
		fs, eng := setup(t, cfg)
		// A Class A pass over the corpus as pid 7, with benign reads from
		// pid 8 interleaved.
		files, err := fs.List(testRoot)
		if err != nil {
			t.Fatal(err)
		}
		for i, fi := range files {
			p := fi.Path
			if i%3 == 0 {
				if _, err := fs.ReadFile(8, p); err != nil {
					t.Fatal(err)
				}
			}
			encryptInPlace(t, fs, 7, p)
		}
		return eng, eng.Detections()
	}

	seqEng, seqDets := run(0)
	poolEng, poolDets := run(4)

	if len(seqDets) != len(poolDets) {
		t.Fatalf("detections: sequential %d, pooled %d", len(seqDets), len(poolDets))
	}
	for i := range seqDets {
		s, p := seqDets[i], poolDets[i]
		if s.PID != p.PID || s.Score != p.Score || s.Threshold != p.Threshold ||
			s.Union != p.Union || s.OpIndex != p.OpIndex {
			t.Errorf("detection %d differs: sequential %+v, pooled %+v", i, s, p)
		}
	}
	seqReps, poolReps := seqEng.Reports(), poolEng.Reports()
	if len(seqReps) != len(poolReps) {
		t.Fatalf("reports: sequential %d, pooled %d", len(seqReps), len(poolReps))
	}
	for i := range seqReps {
		s, p := seqReps[i], poolReps[i]
		if s.PID != p.PID || s.Score != p.Score || s.Union != p.Union ||
			s.Detected != p.Detected || s.FilesTransformed != p.FilesTransformed {
			t.Errorf("report %d differs: sequential %+v, pooled %+v", i, s, p)
		}
		for ind, pts := range s.IndicatorPoints {
			if p.IndicatorPoints[ind] != pts {
				t.Errorf("pid %d indicator %v: sequential %v, pooled %v",
					s.PID, ind, pts, p.IndicatorPoints[ind])
			}
		}
		if len(s.History) != len(p.History) {
			t.Errorf("pid %d history length: sequential %d, pooled %d",
				s.PID, len(s.History), len(p.History))
			continue
		}
		for j := range s.History {
			if s.History[j] != p.History[j] {
				t.Errorf("pid %d history[%d]: sequential %+v, pooled %+v",
					s.PID, j, s.History[j], p.History[j])
				break
			}
		}
	}
}
