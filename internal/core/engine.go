package core

import (
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cryptodrop/internal/indicator"
	"cryptodrop/internal/magic"
	"cryptodrop/internal/measurecache"
	"cryptodrop/internal/policy"
	"cryptodrop/internal/telemetry"
)

// Engine is the CryptoDrop analysis engine: the measurement layer of the
// detection pipeline. It consumes the backend-neutral file operation stream
// (the minifilter vantage point of Fig. 2, abstracted as Events), extracts
// the features its indicator registry declares a need for, dispatches the
// registered indicator units at fixed hook points, and lets the detection
// policy fuse the resulting awards into detections on the per-process
// reputation scoreboard. The engine observes but never vetoes: enforcement
// (suspending the flagged process family) belongs to the monitor that owns
// it.
//
// Create an Engine with New and feed it Events through PreEvent/Handle —
// directly, or via one of the backend adapters (internal/vfsadapter for the
// filter chain, livewatch.Analyzer for a real directory, trace.EventReplayer
// for recorded streams). All methods are safe for concurrent use. The
// scoreboard is sharded by scoring-group PID and the file-state cache by
// file ID, so operations from distinct processes on distinct files never
// contend on a shared lock; see DESIGN.md ("Concurrency model") for the
// shard layout and ordering guarantees, and DESIGN.md ("Indicator
// pipeline") for the layer seams.
type Engine struct {
	cfg Config
	src ContentSource

	// reg is the effective indicator registry (Config.Indicators minus the
	// deprecated DisabledIndicators shim); pol is the detection policy.
	reg *indicator.Registry
	pol policy.Policy
	// hooks are the registry's units flattened per evaluation hook, in
	// canonical ID order.
	hooks [indicator.HookMax + 1][]hookedUnit
	// feats is the union of the registered units' declared feature needs —
	// the measurement work this engine actually performs.
	feats indicator.Feature

	// procs is the sharded per-process scoreboard.
	procs procTable
	// files caches the measured previous-version state of protected
	// files, keyed by stable file ID so it survives renames and moves,
	// sharded by ID. It also tracks which process created each file,
	// distinguishing a process deleting its own temp files from one
	// destroying the user's pre-existing data.
	files fileTable

	// pool runs measurement kernels off the event path when cfg.Workers
	// is positive; nil means fully synchronous (bit-identical to the
	// original single-threaded engine).
	pool *measurePool

	// memo is the content-hash measurement memo cache (Config.MeasureCache,
	// possibly shared fleet-wide); nil disables memoization.
	memo *measurecache.Cache
	// sampleN is the resolved cheap-tier sample size (Config.sampleBytes).
	sampleN int

	opIndex atomic.Int64

	// payloadBlind marks the FeatPayload feature as unavailable at runtime,
	// the equivalent of Config.NewCipherWithoutDelta: a host degrading an
	// overloaded session to payload-blind scoring flips it mid-stream (the
	// session sheds payload bytes, so payload-derived evidence could never
	// accumulate again). Indicator units observe it through
	// Context.PayloadStreamAvailable and waive payload-derived gates.
	payloadBlind atomic.Bool

	// tel is the telemetry facade; nil when telemetry is fully disabled,
	// in which case every instrumented path costs one branch.
	tel *engineTelemetry

	// spans is the causal span tracer (Config.SpanTracer); nil disables
	// tracing at the cost of one branch per operation. lane labels this
	// engine's spans and audit bundles (Config.SessionID, or "engine").
	spans *telemetry.SpanTracer
	lane  string
	// indNames resolves indicator IDs to their declared names for span and
	// audit attribution, independent of whether metrics are enabled.
	indNames map[indicator.ID]string

	detMu      sync.Mutex
	detections []Detection
}

// New returns an engine analysing the event stream under cfg.ProtectedRoot,
// reading file content through src. A nil src disables content-dependent
// indicators (type change, similarity, file-level entropy) while the
// payload-level ones keep working.
func New(cfg Config, src ContentSource) *Engine {
	if src == nil {
		src = noContent{}
	}
	reg := cfg.Indicators
	if reg == nil {
		reg = indicator.Default()
	}
	if len(cfg.DisabledIndicators) > 0 {
		// Deprecated shim: ablation by list is registry subtraction.
		reg = reg.Without(cfg.DisabledIndicators...)
	}
	pol := cfg.Policy
	if pol == nil {
		pol = policy.NewUnion(cfg.Points.UnionBonus, cfg.DisableUnion)
	}
	e := &Engine{
		cfg:   cfg,
		src:   src,
		reg:   reg,
		pol:   pol,
		feats: reg.Features(),
	}
	e.buildHooks()
	e.procs.init()
	e.files.init()
	e.memo = cfg.MeasureCache
	e.sampleN = cfg.sampleBytes()
	e.tel = newEngineTelemetry(cfg.Telemetry, cfg.FlightRecorder, reg)
	e.spans = cfg.SpanTracer
	e.lane = cfg.SessionID
	if e.lane == "" {
		e.lane = "engine"
	}
	e.indNames = make(map[indicator.ID]string, reg.Len())
	for _, u := range reg.Units() {
		e.indNames[u.Decl().ID] = u.Decl().Name
	}
	registerObsSeries(cfg.Telemetry, cfg.SpanTracer)
	if cfg.Workers > 0 {
		e.pool = newMeasurePool(cfg.Workers, e.tel)
		registerPoolGauges(cfg.Telemetry, e.pool)
	}
	return e
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Indicators returns the effective indicator registry the engine scores
// with (Config.Indicators after the deprecated DisabledIndicators shim).
func (e *Engine) Indicators() *indicator.Registry { return e.reg }

// Features returns the union of the registered units' declared feature
// needs — the measurement work this engine performs.
func (e *Engine) Features() indicator.Feature { return e.feats }

// SetPayloadBlind switches the engine into (or out of) payload-blind
// scoring at runtime: the FeatPayload feature is declared unavailable,
// exactly as if the engine had been built with
// Config.NewCipherWithoutDelta. Units gating awards on payload-derived
// evidence (the Class C new-cipher-file award's entropy-delta gate) waive
// those gates, since the corroborating feature can no longer exist.
// Backends that stop delivering payload bytes mid-stream (an overloaded
// host session shedding payloads) set it so encrypted-copy attacks stay
// visible. Safe for concurrent use.
func (e *Engine) SetPayloadBlind(on bool) { e.payloadBlind.Store(on) }

// PayloadBlind reports whether runtime payload-blind scoring is on.
func (e *Engine) PayloadBlind() bool { return e.payloadBlind.Load() }

// inRoot reports whether p lies under the protected root. Root "/" protects
// the whole tree — the detection-service default, where producers pre-filter
// paths on their side of the wire.
func (e *Engine) inRoot(p string) bool {
	root := e.cfg.ProtectedRoot
	if root == "/" {
		return strings.HasPrefix(p, "/")
	}
	return p == root || strings.HasPrefix(p, root+"/")
}

// lockProc resolves pid to its scoring group, locks the owning scoreboard
// shard and returns the (created if needed) entry. The caller must unlock
// sh.mu when done with the entry.
func (e *Engine) lockProc(pid int) (ps *procState, sh *procShard) {
	if e.cfg.FamilyOf != nil {
		pid = e.cfg.FamilyOf(pid)
	}
	sh = e.procs.shard(pid)
	if t := e.tel; t != nil && sh.lockSamples.Add(1)&lockWaitSampleMask == 0 {
		t0 := time.Now()
		sh.mu.Lock()
		t.lockWait.ObserveDuration(time.Since(t0))
	} else {
		sh.mu.Lock()
	}
	ps, ok := sh.m[pid]
	if !ok {
		ps = newProcState(pid)
		ps.delta.SetUnweighted(e.cfg.UnweightedEntropy)
		sh.m[pid] = ps
	}
	return ps, sh
}

// PreEvent snapshots file state that would otherwise be destroyed by the
// operation: the previous version of a file opened for writing, and the
// target a rename is about to replace. Backends must deliver it before the
// operation mutates the underlying content (and before the matching Handle).
// When no registered unit consumes file content, PreEvent does nothing —
// the ContentSource is never consulted.
func (e *Engine) PreEvent(ev Event) {
	if !e.wantContent() {
		return
	}
	switch ev.Kind {
	case EvOpen:
		if ev.Flags&EvWriteIntent != 0 && ev.Size > 0 && e.inRoot(ev.Path) {
			e.snapshot(ev.FileID, e.tierSampled(ev.PID))
		}
	case EvWrite:
		if e.inRoot(ev.Path) {
			// Fallback for handles opened before the engine attached.
			if ev.Size > 0 {
				e.snapshotIfMissing(ev.FileID, e.tierSampled(ev.PID))
			}
			if e.cfg.IncrementalEntropy && len(ev.Data) > 0 {
				// The ContentSource still observes the pre-write bytes here:
				// fold the about-to-be-replaced range out of the file's
				// incremental histogram.
				e.incrBeginWrite(&ev)
			}
		}
	case EvRename:
		if ev.ReplacedID != 0 && e.inRoot(ev.NewPath) {
			e.snapshot(ev.ReplacedID, e.tierSampled(ev.PID))
		}
		if e.inRoot(ev.Path) && !e.inRoot(ev.NewPath) {
			// The file is leaving the protected tree (Class B move-out):
			// capture its state so the return trip can be compared.
			e.snapshot(ev.FileID, e.tierSampled(ev.PID))
		}
	}
}

// Handle measures the completed operation and updates the scoreboard. It is
// the engine's single entry point for scoring: every backend funnels its
// native notifications here as Events.
func (e *Engine) Handle(ev Event) {
	relevant := e.inRoot(ev.Path) || (ev.Kind == EvRename && e.inRoot(ev.NewPath))
	if !relevant {
		return
	}
	// One sampling decision covers the whole operation: the op span plus
	// the award/policy sub-spans recorded under ps.spanOn. Disabled tracing
	// costs exactly this one nil-check branch.
	var opStart time.Time
	traced := e.spans.Sample()
	if traced {
		opStart = time.Now()
	}
	ps, sh := e.lockProc(ev.PID)
	ps.spanOn = traced
	// Fold in any measurement results completed since the process's last
	// operation, in submission order, before scoring the new operation.
	dets := e.drainPending(ps)

	// Transformation-evaluating ops (a completed rewrite, a rename into
	// the protected tree) need the file's current content. The read — and
	// in synchronous mode the measurement — happens with the shard lock
	// released, so a concurrent delete or rename can no longer mutate the
	// file cache under a lock the reader believes it still holds.
	var job *measureTask
	if e.needsContent(&ev) {
		// The tier decision reads the escalation latch under the lock we
		// already hold, so a process promoted by its previous operation
		// measures this one at full fidelity.
		sampled := e.cfg.Tier == TierSampled && !ps.escalated
		sh.mu.Unlock()
		job = e.prepareMeasure(ev.FileID, sampled)
		sh.mu.Lock()
	}

	opIdx := e.opIndex.Add(1)
	switch ev.Kind {
	case EvRead:
		e.handleRead(ps, &ev, opIdx)
	case EvWrite:
		e.handleWrite(ps, &ev, opIdx)
	case EvClose:
		e.handleClose(ps, &ev, job, opIdx)
	case EvDelete:
		e.handleDelete(ps, &ev, opIdx)
	case EvRename:
		e.handleRename(ps, &ev, job, opIdx)
	case EvCreate:
		if e.feats.Has(indicator.FeatCreator) {
			e.files.setCreator(ev.FileID, ev.PID)
		}
		ps.dirsTouched[path.Dir(ev.Path)] = true
	case EvOpen:
		if e.cfg.IncrementalEntropy && ev.Flags&EvTruncate != 0 {
			// Truncation discards bytes the tracker cannot attribute.
			e.incrInvalidate(ev.FileID)
		}
		ps.dirsTouched[path.Dir(ev.Path)] = true
	}
	if det, fire := e.checkDetection(ps, opIdx); fire {
		dets = append(dets, det)
	}
	ps.spanOn = false
	sh.mu.Unlock()
	if traced {
		e.spans.Record(telemetry.Span{
			Name: "op " + ev.Kind.String(), Cat: "dispatch", Lane: e.lane,
			Group: ps.pid, OpIndex: opIdx, Path: ev.Path,
		}, opStart, time.Since(opStart))
	}
	e.dispatch(dets)
}

// firedDetection couples a Detection with the flagged group's bookkeeping
// captured under the shard lock at the moment of detection — the inputs
// the audit bundle needs that the public Detection does not carry.
type firedDetection struct {
	det       Detection
	filesLost int
	deletes   int
	escalated bool
}

// dispatch invokes the detection callback and emits the audit bundle for
// each fired detection, in order, outside all engine locks.
func (e *Engine) dispatch(dets []firedDetection) {
	if len(dets) == 0 {
		return
	}
	for _, fd := range dets {
		if e.cfg.OnDetection != nil {
			e.cfg.OnDetection(fd.det)
		}
		if e.cfg.AuditSink != nil {
			e.cfg.AuditSink.Emit(e.buildAuditBundle(fd))
			e.tel.auditEmitted()
		}
	}
}

// GroupOf resolves pid to its scoring group under the configured FamilyOf
// mapping (identity when unset) — the group OnDetection verdicts,
// exonerations and pre-image retention all key on.
func (e *Engine) GroupOf(pid int) int {
	if e.cfg.FamilyOf != nil {
		return e.cfg.FamilyOf(pid)
	}
	return pid
}

// ExonerateUndetected invokes Config.OnExonerate, outside all engine locks
// and in ascending group order, for every scoring group on the scoreboard
// whose score never crossed the threshold. The session host calls it when a
// session drains (close or idle eviction): groups that finished their run
// without a verdict are cleared, so the recovery layer can release the
// pre-images retained while they were suspect. Detected groups are never
// exonerated. With OnExonerate unset this is a no-op.
func (e *Engine) ExonerateUndetected() {
	if e.cfg.OnExonerate == nil {
		return
	}
	var groups []int
	for i := range e.procs.shards {
		sh := &e.procs.shards[i]
		sh.mu.Lock()
		for pid, ps := range sh.m {
			if !ps.detected {
				groups = append(groups, pid)
			}
		}
		sh.mu.Unlock()
	}
	sort.Ints(groups)
	for _, g := range groups {
		e.cfg.OnExonerate(g)
	}
}

// handleRead folds a read payload into the entropy tracker and, when some
// unit consumes type sniffs, the funneling sets; proc-shard lock held.
func (e *Engine) handleRead(ps *procState, ev *Event, opIdx int64) {
	ps.delta.AddRead(ev.Data)
	ps.dirsTouched[path.Dir(ev.Path)] = true
	ps.touchExt(extOf(ev.Path))
	if ev.Offset == 0 && len(ev.Data) > 0 && e.feats.Has(indicator.FeatTypeSniff) {
		// Identify the type being read, consulting the per-process sniff
		// cache first: re-reading the same unchanged prefix must not pay
		// for a full magic scan every time.
		key := ps.sniff.key(ev.FileID, ev.Data)
		t, ok := ps.sniff.get(key)
		if !ok {
			t = magic.Identify(ev.Data)
			ps.sniff.put(key, t)
		}
		ps.typesRead[t.ID] = true
		e.runHook(indicator.HookFunnel, ps, opIdx, ev.Path, measured{})
	}
}

// handleWrite folds a write payload into the entropy tracker and dispatches
// the per-write hook; proc-shard lock held.
func (e *Engine) handleWrite(ps *procState, ev *Event, opIdx int64) {
	if e.cfg.IncrementalEntropy && e.wantContent() && len(ev.Data) > 0 {
		e.incrApplyWrite(ev)
	}
	ps.delta.AddWrite(ev.Data)
	ps.dirsTouched[path.Dir(ev.Path)] = true
	ps.touchExt(extOf(ev.Path))
	e.runHook(indicator.HookWrite, ps, opIdx, ev.Path, measured{})
}

// deltaSuspicious reports whether the process's current entropy delta
// exceeds the threshold; proc-shard lock held.
func (e *Engine) deltaSuspicious(ps *procState) bool {
	d, ok := ps.delta.Delta()
	return ok && d >= e.cfg.EntropyDeltaThreshold
}

// handleClose dispatches the touch-level close hook for every written
// handle, then evaluates the completed rewrite against the cached
// previous-version state when its content could be measured; proc-shard
// lock held.
func (e *Engine) handleClose(ps *procState, ev *Event, job *measureTask, opIdx int64) {
	if !ev.Wrote {
		return
	}
	e.runHook(indicator.HookClose, ps, opIdx, ev.Path, measured{})
	if job == nil {
		return
	}
	e.evaluate(ps, job, ev.FileID, e.files.entry(ev.FileID), opIdx, ev.Path)
}

// handleDelete scores a protected file removal; proc-shard lock held.
// Removing a file the process itself created (temp/autosave churn) is
// ordinary behaviour; the deletion unit scores it far lower than destroying
// the user's pre-existing data — the bulk deletion the secondary indicator
// targets (§III-D).
func (e *Engine) handleDelete(ps *procState, ev *Event, opIdx int64) {
	ps.deletes++
	ps.dirsTouched[path.Dir(ev.Path)] = true
	ps.touchExt(extOf(ev.Path))
	var own bool
	if e.feats.Has(indicator.FeatCreator) {
		own = e.files.creator(ev.FileID) == ev.PID
	}
	e.runHook(indicator.HookDelete, ps, opIdx, ev.Path, measured{ownDelete: own})
	e.files.drop(ev.FileID)
	e.files.dropCreator(ev.FileID)
	if e.cfg.IncrementalEntropy {
		e.incrDrop(ev.FileID)
	}
}

// handleRename links file state across moves. A rename that replaces an
// existing protected file is a Class B/C transformation of the replaced
// file; a move back into the protected root is checked against the moved
// file's own cached state. Each protected-tree side of the rename also gets
// a touch-level hook dispatch; proc-shard lock held.
func (e *Engine) handleRename(ps *procState, ev *Event, job *measureTask, opIdx int64) {
	if e.inRoot(ev.Path) {
		ps.dirsTouched[path.Dir(ev.Path)] = true
		e.runHook(indicator.HookRename, ps, opIdx, ev.Path, measured{})
	}
	if !e.inRoot(ev.NewPath) {
		// Moved out of the protected tree: keep the cached state; the
		// file ID preserves identity until it comes back.
		return
	}
	if ev.NewPath != ev.Path {
		e.runHook(indicator.HookRename, ps, opIdx, ev.NewPath, measured{})
	}
	ps.dirsTouched[path.Dir(ev.NewPath)] = true
	ps.touchExt(extOf(ev.NewPath))
	if ev.ReplacedID != 0 {
		// The incoming file replaced a protected file: compare the new
		// content against the replaced file's snapshot.
		if job != nil {
			e.evaluate(ps, job, ev.FileID, e.files.entry(ev.ReplacedID), opIdx, ev.NewPath)
		}
		e.files.drop(ev.ReplacedID)
		if e.cfg.IncrementalEntropy {
			e.incrDrop(ev.ReplacedID)
		}
		return
	}
	if prev := e.files.entry(ev.FileID); prev != nil && job != nil {
		// The file itself returned to the protected tree (Class B):
		// compare against its own pre-move state.
		e.evaluate(ps, job, ev.FileID, prev, opIdx, ev.NewPath)
	}
}

// pendingApply is a transformation evaluation whose measurement may still
// be resolving on the pool: the new content's measurement task, the
// previous-version state captured when the operation was scored, and the
// operation index the award should be recorded under.
type pendingApply struct {
	job       *measureTask
	prev      *measureTask
	contentID uint64
	opIdx     int64
	// path is the file path at enqueue time, carried for telemetry
	// attribution of the eventual awards.
	path string
}

// evaluate scores the transformation of file contentID (measured by job)
// against the previous state prev. Without a pool the evaluation applies
// immediately — bit-identical to the original sequential engine. With a
// pool it is queued on the process and folded back in submission order at
// the process's next operation (or at a Flush/report), so per-process
// scoring order is exactly the order the sequential engine would use;
// proc-shard lock held.
func (e *Engine) evaluate(ps *procState, job *measureTask, contentID uint64, prev *measureTask, opIdx int64, path string) {
	p := pendingApply{job: job, prev: prev, contentID: contentID, opIdx: opIdx, path: path}
	if e.pool == nil {
		e.applyPending(ps, p)
		return
	}
	ps.pending = append(ps.pending, p)
}

// applyPending applies one queued evaluation, dispatching the funneling
// hook (the written-type set may have changed) and then the new-file or
// transform hook; proc-shard lock held.
func (e *Engine) applyPending(ps *procState, p pendingApply) {
	newState := p.job.state()
	if e.feats.Has(indicator.FeatTypeSniff) {
		ps.typesWritten[newState.typ.ID] = true
	}
	e.runHook(indicator.HookFunnel, ps, p.opIdx, p.path, measured{})
	prev := p.prev.state()
	if prev == nil {
		e.runHook(indicator.HookNewFile, ps, p.opIdx, p.path, measured{newState: newState})
	}
	if prev != nil {
		ps.filesTransformed++
		e.runHook(indicator.HookTransform, ps, p.opIdx, p.path, measured{newState: newState, prev: prev})
	}
	e.files.store(p.contentID, newState)
}

// drainPending applies every queued evaluation for the process in
// submission order, re-checking detection against each evaluation's own
// operation index; proc-shard lock held. Fired detections are returned for
// dispatch outside the lock.
func (e *Engine) drainPending(ps *procState) []firedDetection {
	if len(ps.pending) == 0 {
		return nil
	}
	var dets []firedDetection
	for _, p := range ps.pending {
		e.applyPending(ps, p)
		if det, fire := e.checkDetection(ps, p.opIdx); fire {
			dets = append(dets, det)
		}
	}
	ps.pending = ps.pending[:0]
	return dets
}

// Flush applies every queued measurement result across all processes,
// dispatching any detections that fire. It returns once the scoreboard
// reflects all operations observed so far.
func (e *Engine) Flush() {
	var dets []firedDetection
	for i := range e.procs.shards {
		sh := &e.procs.shards[i]
		sh.mu.Lock()
		for _, ps := range sh.m {
			dets = append(dets, e.drainPending(ps)...)
		}
		sh.mu.Unlock()
	}
	e.dispatch(dets)
}

// Report returns the scoreboard snapshot for pid (resolved to its scoring
// group under family scoring).
func (e *Engine) Report(pid int) (ProcessReport, bool) {
	if e.cfg.FamilyOf != nil {
		pid = e.cfg.FamilyOf(pid)
	}
	sh := e.procs.shard(pid)
	sh.mu.Lock()
	ps, ok := sh.m[pid]
	if !ok {
		sh.mu.Unlock()
		return ProcessReport{}, false
	}
	dets := e.drainPending(ps)
	rep := ps.report()
	sh.mu.Unlock()
	e.dispatch(dets)
	return rep, true
}

// Reports returns snapshots for every scored process, ordered by PID.
func (e *Engine) Reports() []ProcessReport {
	var out []ProcessReport
	var dets []firedDetection
	for i := range e.procs.shards {
		sh := &e.procs.shards[i]
		sh.mu.Lock()
		for _, ps := range sh.m {
			dets = append(dets, e.drainPending(ps)...)
			out = append(out, ps.report())
		}
		sh.mu.Unlock()
	}
	e.dispatch(dets)
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// Detections returns all detections in occurrence order.
func (e *Engine) Detections() []Detection {
	e.Flush()
	e.detMu.Lock()
	defer e.detMu.Unlock()
	out := make([]Detection, len(e.detections))
	copy(out, e.detections)
	return out
}

// OpIndex returns the number of protected-scope operations processed.
func (e *Engine) OpIndex() int64 {
	return e.opIndex.Load()
}

// extOf returns the lower-case extension of p without the dot.
func extOf(p string) string {
	ext := path.Ext(p)
	if ext == "" {
		return ""
	}
	return strings.ToLower(ext[1:])
}
