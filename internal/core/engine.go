package core

import (
	"path"
	"sort"
	"strings"
	"sync"

	"cryptodrop/internal/magic"
	"cryptodrop/internal/sdhash"
	"cryptodrop/internal/vfs"
)

// Engine is the CryptoDrop analysis engine. It consumes the filesystem
// operation stream (as a minifilter in the chain of Fig. 2), measures the
// indicators, maintains the per-process reputation scoreboard and reports
// detections. The engine observes but never vetoes: enforcement (suspending
// the flagged process family) belongs to the monitor that owns it.
//
// Create an Engine with New and attach it to the filesystem's filter chain.
// All methods are safe for concurrent use.
type Engine struct {
	mu  sync.Mutex
	cfg Config
	fs  *vfs.FS

	procs map[int]*procState
	// files caches the measured previous-version state of protected
	// files, keyed by stable file ID so it survives renames and moves.
	files map[uint64]*fileState
	// creators records which process created each file, distinguishing a
	// process deleting its own temp files from one destroying the user's
	// pre-existing data.
	creators map[uint64]int

	disabled   map[Indicator]bool
	opIndex    int64
	detections []Detection
}

// New returns an engine analysing operations on fsys under cfg.ProtectedRoot.
func New(cfg Config, fsys *vfs.FS) *Engine {
	disabled := make(map[Indicator]bool, len(cfg.DisabledIndicators))
	for _, ind := range cfg.DisabledIndicators {
		disabled[ind] = true
	}
	return &Engine{
		cfg:      cfg,
		fs:       fsys,
		procs:    make(map[int]*procState),
		files:    make(map[uint64]*fileState),
		creators: make(map[uint64]int),
		disabled: disabled,
	}
}

// Name identifies the engine in a filter chain.
func (e *Engine) Name() string { return "cryptodrop" }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// inRoot reports whether p lies under the protected root.
func (e *Engine) inRoot(p string) bool {
	root := e.cfg.ProtectedRoot
	return p == root || strings.HasPrefix(p, root+"/")
}

// proc returns (creating if needed) the scoreboard entry for pid — or for
// pid's scoring group when family scoring is configured; e.mu held.
func (e *Engine) proc(pid int) *procState {
	if e.cfg.FamilyOf != nil {
		pid = e.cfg.FamilyOf(pid)
	}
	ps, ok := e.procs[pid]
	if !ok {
		ps = newProcState(pid)
		ps.delta.SetUnweighted(e.cfg.UnweightedEntropy)
		e.procs[pid] = ps
	}
	return ps
}

// PreOp snapshots file state that would otherwise be destroyed by the
// operation: the previous version of a file opened for writing, and the
// target a rename is about to replace. It never vetoes.
func (e *Engine) PreOp(op *vfs.Op) error {
	switch op.Kind {
	case vfs.OpOpen:
		if op.Flags&vfs.WriteOnly != 0 && op.Size > 0 && e.inRoot(op.Path) {
			e.snapshot(op.FileID)
		}
	case vfs.OpWrite:
		// Fallback for handles opened before the engine attached.
		if op.Size > 0 && e.inRoot(op.Path) {
			e.snapshotIfMissing(op.FileID)
		}
	case vfs.OpRename:
		if op.ReplacedID != 0 && e.inRoot(op.NewPath) {
			e.snapshot(op.ReplacedID)
		}
		if e.inRoot(op.Path) && !e.inRoot(op.NewPath) {
			// The file is leaving the protected tree (Class B move-out):
			// capture its state so the return trip can be compared.
			e.snapshot(op.FileID)
		}
	}
	return nil
}

// snapshot caches the current content state of the file with the given ID if
// not already cached.
func (e *Engine) snapshot(id uint64) {
	e.mu.Lock()
	_, ok := e.files[id]
	e.mu.Unlock()
	if ok {
		return
	}
	content, err := e.fs.ReadFileRawByID(id)
	if err != nil || len(content) == 0 {
		return
	}
	st := measureFile(content)
	e.mu.Lock()
	if _, ok := e.files[id]; !ok {
		e.files[id] = st
	}
	e.mu.Unlock()
}

func (e *Engine) snapshotIfMissing(id uint64) { e.snapshot(id) }

// PostOp measures the completed operation and updates the scoreboard.
func (e *Engine) PostOp(op *vfs.Op) {
	relevant := e.inRoot(op.Path) || (op.Kind == vfs.OpRename && e.inRoot(op.NewPath))
	if !relevant {
		return
	}
	e.mu.Lock()
	e.opIndex++
	ps := e.proc(op.PID)
	switch op.Kind {
	case vfs.OpRead:
		e.handleRead(ps, op)
	case vfs.OpWrite:
		e.handleWrite(ps, op)
	case vfs.OpClose:
		e.handleClose(ps, op)
	case vfs.OpDelete:
		e.handleDelete(ps, op)
	case vfs.OpRename:
		e.handleRename(ps, op)
	case vfs.OpCreate:
		e.creators[op.FileID] = op.PID
		ps.dirsTouched[path.Dir(op.Path)] = true
	case vfs.OpOpen:
		ps.dirsTouched[path.Dir(op.Path)] = true
	}
	det, fire := e.checkDetection(ps)
	e.mu.Unlock()
	if fire && e.cfg.OnDetection != nil {
		e.cfg.OnDetection(det)
	}
}

// handleRead folds a read payload into the entropy tracker and funneling
// sets; e.mu held.
func (e *Engine) handleRead(ps *procState, op *vfs.Op) {
	ps.delta.AddRead(op.Data)
	ps.dirsTouched[path.Dir(op.Path)] = true
	ps.touchExt(extOf(op.Path))
	if op.Offset == 0 && len(op.Data) > 0 {
		t := magic.Identify(op.Data)
		ps.typesRead[t.ID] = true
		e.checkFunneling(ps)
	}
}

// handleWrite folds a write payload into the entropy tracker and applies
// per-operation entropy-delta scoring; e.mu held.
func (e *Engine) handleWrite(ps *procState, op *vfs.Op) {
	ps.delta.AddWrite(op.Data)
	ps.dirsTouched[path.Dir(op.Path)] = true
	ps.touchExt(extOf(op.Path))
	if e.deltaSuspicious(ps) {
		e.award(ps, IndicatorEntropyDelta, e.cfg.Points.EntropyDeltaOp)
	}
}

// deltaSuspicious reports whether the process's current entropy delta
// exceeds the threshold; e.mu held.
func (e *Engine) deltaSuspicious(ps *procState) bool {
	d, ok := ps.delta.Delta()
	return ok && d >= e.cfg.EntropyDeltaThreshold
}

// handleClose evaluates a completed file rewrite against the cached
// previous-version state; e.mu held.
func (e *Engine) handleClose(ps *procState, op *vfs.Op) {
	if !op.Wrote {
		return
	}
	e.evaluateTransformation(ps, op.FileID, op.FileID)
}

// handleDelete scores a protected file removal; e.mu held. Removing a file
// the process itself created (temp/autosave churn) is ordinary behaviour and
// scores far lower than destroying the user's pre-existing data — the bulk
// deletion the secondary indicator targets (§III-D).
func (e *Engine) handleDelete(ps *procState, op *vfs.Op) {
	ps.deletes++
	ps.dirsTouched[path.Dir(op.Path)] = true
	ps.touchExt(extOf(op.Path))
	pts := e.cfg.Points.Deletion
	if e.creators[op.FileID] == op.PID {
		pts = e.cfg.Points.DeletionOwn
	}
	e.award(ps, IndicatorDeletion, pts)
	delete(e.files, op.FileID)
	delete(e.creators, op.FileID)
}

// handleRename links file state across moves. A rename that replaces an
// existing protected file is a Class B/C transformation of the replaced
// file; a move back into the protected root is checked against the moved
// file's own cached state; e.mu held.
func (e *Engine) handleRename(ps *procState, op *vfs.Op) {
	if e.inRoot(op.Path) {
		ps.dirsTouched[path.Dir(op.Path)] = true
	}
	if !e.inRoot(op.NewPath) {
		// Moved out of the protected tree: keep the cached state; the
		// file ID preserves identity until it comes back.
		return
	}
	ps.dirsTouched[path.Dir(op.NewPath)] = true
	ps.touchExt(extOf(op.NewPath))
	if op.ReplacedID != 0 {
		// The incoming file replaced a protected file: compare the new
		// content against the replaced file's snapshot.
		e.evaluateTransformation(ps, op.FileID, op.ReplacedID)
		delete(e.files, op.ReplacedID)
		return
	}
	if _, ok := e.files[op.FileID]; ok {
		// The file itself returned to the protected tree (Class B):
		// compare against its own pre-move state.
		e.evaluateTransformation(ps, op.FileID, op.FileID)
	}
}

// evaluateTransformation compares the current content of file contentID
// against the cached previous state of file prevID, awarding type-change and
// similarity points, then refreshes the cache; e.mu held.
func (e *Engine) evaluateTransformation(ps *procState, contentID, prevID uint64) {
	prev := e.files[prevID]
	content, err := e.readRaw(contentID)
	if err != nil {
		return
	}
	newState := measureFile(content)
	ps.typesWritten[newState.typ.ID] = true
	e.checkFunneling(ps)
	if prev == nil {
		// A brand-new file of untyped high-entropy content, written while
		// the process reads lower-entropy data: the shape of a Class C
		// encrypted copy (§V-C).
		if newState.typ.IsData() && newState.entropy > 7.0 && e.deltaSuspicious(ps) {
			e.award(ps, IndicatorEntropyDelta, e.cfg.Points.NewCipherFile)
		}
	}
	if prev != nil {
		ps.filesTransformed++
		if newState.typ.ID != prev.typ.ID {
			e.award(ps, IndicatorTypeChange, e.cfg.Points.TypeChange)
		}
		// A dissimilarity verdict requires a reliable previous digest:
		// digests with very few features (chance features in random-like
		// data, e.g. JPEG scan streams) carry no confidence — the same
		// reliability caveat sdhash applies to sparse digests.
		if reliableDigest(prev) && e.dissimilar(prev.digest, newState.digest) {
			e.award(ps, IndicatorSimilarity, e.cfg.Points.Similarity)
		}
		// File-level entropy increase: the rewrite pushed this file's own
		// entropy up by at least the Δe threshold — the resolution that
		// catches even compressed formats gaining entropy (§IV-C1).
		if newState.entropy-prev.entropy >= e.cfg.EntropyDeltaThreshold {
			e.award(ps, IndicatorEntropyDelta, e.cfg.Points.EntropyDeltaFile)
		}
	}
	e.files[contentID] = newState
}

// readRaw reads file content by ID with the engine lock released, since the
// filesystem takes its own lock.
func (e *Engine) readRaw(id uint64) ([]byte, error) {
	e.mu.Unlock()
	defer e.mu.Lock()
	return e.fs.ReadFileRawByID(id)
}

// minReliableFeatures is the feature count above which a digest is always
// trusted for a dissimilarity verdict.
const minReliableFeatures = 8

// reliableDigest reports whether the previous version's digest can support
// a dissimilarity verdict: either it has plenty of features, or its feature
// density is high enough that the features are characteristic content
// rather than chance windows in random-like data (≥ 1 feature per 256
// bytes). Chance features in ciphertext-like streams occur orders of
// magnitude more sparsely.
func reliableDigest(st *fileState) bool {
	if st.digest == nil {
		return false
	}
	fc := st.digest.FeatureCount()
	return fc >= minReliableFeatures || int64(fc)*256 >= st.size
}

// dissimilar reports whether new content is completely dissimilar from the
// previous digest: either its comparison score is at or below the match
// ceiling, or the new content is undigestable (as ciphertext is) while the
// old version was digestable.
func (e *Engine) dissimilar(prev *sdhash.Digest, next *sdhash.Digest) bool {
	if next == nil {
		return true
	}
	return prev.Compare(next) <= e.cfg.SimilarityMatchMax
}

// checkFunneling awards the one-time funneling score when the process has
// read many more distinct types than it has written; e.mu held.
func (e *Engine) checkFunneling(ps *procState) {
	if ps.funnelFired || len(ps.typesWritten) == 0 {
		return
	}
	if len(ps.typesRead)-len(ps.typesWritten) >= e.cfg.FunnelingThreshold {
		ps.funnelFired = true
		e.award(ps, IndicatorFunneling, e.cfg.Points.Funneling)
	}
}

// award adds points for an indicator occurrence and re-evaluates union
// indication; e.mu held. Disabled indicators are ignored entirely.
func (e *Engine) award(ps *procState, ind Indicator, pts float64) {
	if e.disabled[ind] {
		return
	}
	ps.indicatorSeen[ind] = true
	ps.indicatorPoints[ind] += pts
	ps.score += pts
	if len(ps.history) < maxHistory {
		ps.history = append(ps.history, ScorePoint{OpIndex: e.opIndex, Score: ps.score})
	}
	e.checkUnion(ps)
}

// checkUnion fires union indication once all three primary indicators have
// been observed for the process; e.mu held.
func (e *Engine) checkUnion(ps *procState) {
	if ps.unionFired || e.cfg.DisableUnion {
		return
	}
	for _, ind := range PrimaryIndicators() {
		if !ps.indicatorSeen[ind] {
			return
		}
	}
	ps.unionFired = true
	ps.score += e.cfg.Points.UnionBonus
	if len(ps.history) < maxHistory {
		ps.history = append(ps.history, ScorePoint{OpIndex: e.opIndex, Score: ps.score})
	}
}

// checkDetection evaluates the process against its effective threshold;
// e.mu held. The Detection is returned for dispatch outside the lock.
func (e *Engine) checkDetection(ps *procState) (Detection, bool) {
	if ps.detected {
		return Detection{}, false
	}
	threshold := e.cfg.NonUnionThreshold
	if ps.unionFired && e.cfg.UnionThreshold < threshold {
		threshold = e.cfg.UnionThreshold
	}
	if ps.score < threshold {
		return Detection{}, false
	}
	ps.detected = true
	det := Detection{
		PID:        ps.pid,
		Score:      ps.score,
		Threshold:  threshold,
		Union:      ps.unionFired,
		OpIndex:    e.opIndex,
		Indicators: make(map[Indicator]float64, len(ps.indicatorPoints)),
	}
	for ind, pts := range ps.indicatorPoints {
		det.Indicators[ind] = pts
	}
	e.detections = append(e.detections, det)
	return det, true
}

// Report returns the scoreboard snapshot for pid (resolved to its scoring
// group under family scoring).
func (e *Engine) Report(pid int) (ProcessReport, bool) {
	if e.cfg.FamilyOf != nil {
		pid = e.cfg.FamilyOf(pid)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ps, ok := e.procs[pid]
	if !ok {
		return ProcessReport{}, false
	}
	return ps.report(), true
}

// Reports returns snapshots for every scored process, ordered by PID.
func (e *Engine) Reports() []ProcessReport {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ProcessReport, 0, len(e.procs))
	for _, ps := range e.procs {
		out = append(out, ps.report())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// Detections returns all detections in occurrence order.
func (e *Engine) Detections() []Detection {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Detection, len(e.detections))
	copy(out, e.detections)
	return out
}

// OpIndex returns the number of protected-scope operations processed.
func (e *Engine) OpIndex() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.opIndex
}

// extOf returns the lower-case extension of p without the dot.
func extOf(p string) string {
	ext := path.Ext(p)
	if ext == "" {
		return ""
	}
	return strings.ToLower(ext[1:])
}
