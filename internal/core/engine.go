package core

import (
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cryptodrop/internal/magic"
	"cryptodrop/internal/sdhash"
)

// Engine is the CryptoDrop analysis engine. It consumes the backend-neutral
// file operation stream (the minifilter vantage point of Fig. 2, abstracted
// as Events), measures the indicators, maintains the per-process reputation
// scoreboard and reports detections. The engine observes but never vetoes:
// enforcement (suspending the flagged process family) belongs to the monitor
// that owns it.
//
// Create an Engine with New and feed it Events through PreEvent/Handle —
// directly, or via one of the backend adapters (internal/vfsadapter for the
// filter chain, livewatch.Analyzer for a real directory, trace.EventReplayer
// for recorded streams). All methods are safe for concurrent use. The
// scoreboard is sharded by scoring-group PID and the file-state cache by
// file ID, so operations from distinct processes on distinct files never
// contend on a shared lock; see DESIGN.md ("Concurrency model") for the
// shard layout and ordering guarantees.
type Engine struct {
	cfg Config
	src ContentSource

	// procs is the sharded per-process scoreboard.
	procs procTable
	// files caches the measured previous-version state of protected
	// files, keyed by stable file ID so it survives renames and moves,
	// sharded by ID. It also tracks which process created each file,
	// distinguishing a process deleting its own temp files from one
	// destroying the user's pre-existing data.
	files fileTable

	// pool runs measurement kernels off the event path when cfg.Workers
	// is positive; nil means fully synchronous (bit-identical to the
	// original single-threaded engine).
	pool *measurePool

	disabled map[Indicator]bool
	opIndex  atomic.Int64

	// payloadBlind is the runtime equivalent of Config.NewCipherWithoutDelta:
	// when set, new untyped high-entropy files score without the read/write
	// entropy-delta gate. A host degrading an overloaded session to
	// payload-blind scoring flips it mid-stream (the session sheds payload
	// bytes, so the delta gate could never open again).
	payloadBlind atomic.Bool

	// tel is the telemetry facade; nil when telemetry is fully disabled,
	// in which case every instrumented path costs one branch.
	tel *engineTelemetry

	detMu      sync.Mutex
	detections []Detection
}

// New returns an engine analysing the event stream under cfg.ProtectedRoot,
// reading file content through src. A nil src disables content-dependent
// indicators (type change, similarity, file-level entropy) while the
// payload-level ones keep working.
func New(cfg Config, src ContentSource) *Engine {
	if src == nil {
		src = noContent{}
	}
	disabled := make(map[Indicator]bool, len(cfg.DisabledIndicators))
	for _, ind := range cfg.DisabledIndicators {
		disabled[ind] = true
	}
	e := &Engine{
		cfg:      cfg,
		src:      src,
		disabled: disabled,
	}
	e.procs.init()
	e.files.init()
	e.tel = newEngineTelemetry(cfg.Telemetry, cfg.FlightRecorder)
	if cfg.Workers > 0 {
		e.pool = newMeasurePool(cfg.Workers, e.tel)
		registerPoolGauges(cfg.Telemetry, e.pool)
	}
	return e
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetPayloadBlind switches the engine into (or out of) payload-blind
// scoring at runtime: the Class C new-cipher-file award no longer requires a
// suspicious read/write entropy delta, exactly as if the engine had been
// built with Config.NewCipherWithoutDelta. Backends that stop delivering
// payload bytes mid-stream (an overloaded host session shedding payloads)
// set it so encrypted-copy attacks stay visible. Safe for concurrent use.
func (e *Engine) SetPayloadBlind(on bool) { e.payloadBlind.Store(on) }

// PayloadBlind reports whether runtime payload-blind scoring is on.
func (e *Engine) PayloadBlind() bool { return e.payloadBlind.Load() }

// inRoot reports whether p lies under the protected root.
func (e *Engine) inRoot(p string) bool {
	root := e.cfg.ProtectedRoot
	return p == root || strings.HasPrefix(p, root+"/")
}

// lockProc resolves pid to its scoring group, locks the owning scoreboard
// shard and returns the (created if needed) entry. The caller must unlock
// sh.mu when done with the entry.
func (e *Engine) lockProc(pid int) (ps *procState, sh *procShard) {
	if e.cfg.FamilyOf != nil {
		pid = e.cfg.FamilyOf(pid)
	}
	sh = e.procs.shard(pid)
	if t := e.tel; t != nil && sh.lockSamples.Add(1)&lockWaitSampleMask == 0 {
		t0 := time.Now()
		sh.mu.Lock()
		t.lockWait.ObserveDuration(time.Since(t0))
	} else {
		sh.mu.Lock()
	}
	ps, ok := sh.m[pid]
	if !ok {
		ps = newProcState(pid)
		ps.delta.SetUnweighted(e.cfg.UnweightedEntropy)
		sh.m[pid] = ps
	}
	return ps, sh
}

// PreEvent snapshots file state that would otherwise be destroyed by the
// operation: the previous version of a file opened for writing, and the
// target a rename is about to replace. Backends must deliver it before the
// operation mutates the underlying content (and before the matching Handle).
func (e *Engine) PreEvent(ev Event) {
	switch ev.Kind {
	case EvOpen:
		if ev.Flags&EvWriteIntent != 0 && ev.Size > 0 && e.inRoot(ev.Path) {
			e.snapshot(ev.FileID)
		}
	case EvWrite:
		// Fallback for handles opened before the engine attached.
		if ev.Size > 0 && e.inRoot(ev.Path) {
			e.snapshotIfMissing(ev.FileID)
		}
	case EvRename:
		if ev.ReplacedID != 0 && e.inRoot(ev.NewPath) {
			e.snapshot(ev.ReplacedID)
		}
		if e.inRoot(ev.Path) && !e.inRoot(ev.NewPath) {
			// The file is leaving the protected tree (Class B move-out):
			// capture its state so the return trip can be compared.
			e.snapshot(ev.FileID)
		}
	}
}

// snapshot caches the current content state of the file with the given ID
// if not already cached. The content read and measurement run without any
// engine lock held; with a measurement pool the digestion itself is
// deferred to a worker and later lookups wait on the resolving task.
func (e *Engine) snapshot(id uint64) {
	if e.files.has(id) {
		return
	}
	content, err := e.src.Content(id)
	if err != nil || len(content) == 0 {
		return
	}
	if e.pool != nil {
		e.files.storeIfMissing(id, e.pool.submit(content))
		return
	}
	e.files.storeIfMissing(id, resolvedTask(e.tel.measure(content)))
}

func (e *Engine) snapshotIfMissing(id uint64) { e.snapshot(id) }

// Handle measures the completed operation and updates the scoreboard. It is
// the engine's single entry point for scoring: every backend funnels its
// native notifications here as Events.
func (e *Engine) Handle(ev Event) {
	relevant := e.inRoot(ev.Path) || (ev.Kind == EvRename && e.inRoot(ev.NewPath))
	if !relevant {
		return
	}
	ps, sh := e.lockProc(ev.PID)
	// Fold in any measurement results completed since the process's last
	// operation, in submission order, before scoring the new operation.
	dets := e.drainPending(ps)

	// Transformation-evaluating ops (a completed rewrite, a rename into
	// the protected tree) need the file's current content. The read — and
	// in synchronous mode the measurement — happens with the shard lock
	// released, so a concurrent delete or rename can no longer mutate the
	// file cache under a lock the reader believes it still holds.
	var job *measureTask
	if e.needsContent(&ev) {
		sh.mu.Unlock()
		job = e.prepareMeasure(ev.FileID)
		sh.mu.Lock()
	}

	opIdx := e.opIndex.Add(1)
	switch ev.Kind {
	case EvRead:
		e.handleRead(ps, &ev, opIdx)
	case EvWrite:
		e.handleWrite(ps, &ev, opIdx)
	case EvClose:
		e.handleClose(ps, &ev, job, opIdx)
	case EvDelete:
		e.handleDelete(ps, &ev, opIdx)
	case EvRename:
		e.handleRename(ps, &ev, job, opIdx)
	case EvCreate:
		e.files.setCreator(ev.FileID, ev.PID)
		ps.dirsTouched[path.Dir(ev.Path)] = true
	case EvOpen:
		ps.dirsTouched[path.Dir(ev.Path)] = true
	}
	if det, fire := e.checkDetection(ps, opIdx); fire {
		dets = append(dets, det)
	}
	sh.mu.Unlock()
	e.dispatch(dets)
}

// needsContent reports whether the operation evaluates a file
// transformation and therefore needs the file's current content measured;
// the caller holds the proc-shard lock.
func (e *Engine) needsContent(ev *Event) bool {
	switch ev.Kind {
	case EvClose:
		return ev.Wrote
	case EvRename:
		return e.inRoot(ev.NewPath) && (ev.ReplacedID != 0 || e.files.has(ev.FileID))
	}
	return false
}

// prepareMeasure reads the file's content (no engine lock held) and starts
// its measurement: on the pool when configured, inline otherwise. It
// returns nil when the content cannot be read (e.g. the file was deleted in
// the window since the operation completed).
func (e *Engine) prepareMeasure(id uint64) *measureTask {
	content, err := e.src.Content(id)
	if err != nil {
		return nil
	}
	if e.pool != nil {
		return e.pool.submit(content)
	}
	return resolvedTask(e.tel.measure(content))
}

// dispatch invokes the detection callback for each fired detection, in
// order, outside all engine locks.
func (e *Engine) dispatch(dets []Detection) {
	if e.cfg.OnDetection == nil {
		return
	}
	for _, d := range dets {
		e.cfg.OnDetection(d)
	}
}

// handleRead folds a read payload into the entropy tracker and funneling
// sets; proc-shard lock held.
func (e *Engine) handleRead(ps *procState, ev *Event, opIdx int64) {
	ps.delta.AddRead(ev.Data)
	ps.dirsTouched[path.Dir(ev.Path)] = true
	ps.touchExt(extOf(ev.Path))
	if ev.Offset == 0 && len(ev.Data) > 0 {
		// Identify the type being read, consulting the per-process sniff
		// cache first: re-reading the same unchanged prefix must not pay
		// for a full magic scan every time.
		key := ps.sniff.key(ev.FileID, ev.Data)
		t, ok := ps.sniff.get(key)
		if !ok {
			t = magic.Identify(ev.Data)
			ps.sniff.put(key, t)
		}
		ps.typesRead[t.ID] = true
		e.checkFunneling(ps, opIdx, ev.Path)
	}
}

// handleWrite folds a write payload into the entropy tracker and applies
// per-operation entropy-delta scoring; proc-shard lock held.
func (e *Engine) handleWrite(ps *procState, ev *Event, opIdx int64) {
	ps.delta.AddWrite(ev.Data)
	ps.dirsTouched[path.Dir(ev.Path)] = true
	ps.touchExt(extOf(ev.Path))
	if e.deltaSuspicious(ps) {
		e.award(ps, IndicatorEntropyDelta, e.cfg.Points.EntropyDeltaOp, opIdx, ev.Path)
	}
}

// deltaSuspicious reports whether the process's current entropy delta
// exceeds the threshold; proc-shard lock held.
func (e *Engine) deltaSuspicious(ps *procState) bool {
	d, ok := ps.delta.Delta()
	return ok && d >= e.cfg.EntropyDeltaThreshold
}

// handleClose evaluates a completed file rewrite against the cached
// previous-version state; proc-shard lock held.
func (e *Engine) handleClose(ps *procState, ev *Event, job *measureTask, opIdx int64) {
	if !ev.Wrote || job == nil {
		return
	}
	e.evaluate(ps, job, ev.FileID, e.files.entry(ev.FileID), opIdx, ev.Path)
}

// handleDelete scores a protected file removal; proc-shard lock held.
// Removing a file the process itself created (temp/autosave churn) is
// ordinary behaviour and scores far lower than destroying the user's
// pre-existing data — the bulk deletion the secondary indicator targets
// (§III-D).
func (e *Engine) handleDelete(ps *procState, ev *Event, opIdx int64) {
	ps.deletes++
	ps.dirsTouched[path.Dir(ev.Path)] = true
	ps.touchExt(extOf(ev.Path))
	pts := e.cfg.Points.Deletion
	if e.files.creator(ev.FileID) == ev.PID {
		pts = e.cfg.Points.DeletionOwn
	}
	e.award(ps, IndicatorDeletion, pts, opIdx, ev.Path)
	e.files.drop(ev.FileID)
	e.files.dropCreator(ev.FileID)
}

// handleRename links file state across moves. A rename that replaces an
// existing protected file is a Class B/C transformation of the replaced
// file; a move back into the protected root is checked against the moved
// file's own cached state; proc-shard lock held.
func (e *Engine) handleRename(ps *procState, ev *Event, job *measureTask, opIdx int64) {
	if e.inRoot(ev.Path) {
		ps.dirsTouched[path.Dir(ev.Path)] = true
	}
	if !e.inRoot(ev.NewPath) {
		// Moved out of the protected tree: keep the cached state; the
		// file ID preserves identity until it comes back.
		return
	}
	ps.dirsTouched[path.Dir(ev.NewPath)] = true
	ps.touchExt(extOf(ev.NewPath))
	if ev.ReplacedID != 0 {
		// The incoming file replaced a protected file: compare the new
		// content against the replaced file's snapshot.
		if job != nil {
			e.evaluate(ps, job, ev.FileID, e.files.entry(ev.ReplacedID), opIdx, ev.NewPath)
		}
		e.files.drop(ev.ReplacedID)
		return
	}
	if prev := e.files.entry(ev.FileID); prev != nil && job != nil {
		// The file itself returned to the protected tree (Class B):
		// compare against its own pre-move state.
		e.evaluate(ps, job, ev.FileID, prev, opIdx, ev.NewPath)
	}
}

// pendingApply is a transformation evaluation whose measurement may still
// be resolving on the pool: the new content's measurement task, the
// previous-version state captured when the operation was scored, and the
// operation index the award should be recorded under.
type pendingApply struct {
	job       *measureTask
	prev      *measureTask
	contentID uint64
	opIdx     int64
	// path is the file path at enqueue time, carried for telemetry
	// attribution of the eventual awards.
	path string
}

// evaluate scores the transformation of file contentID (measured by job)
// against the previous state prev. Without a pool the evaluation applies
// immediately — bit-identical to the original sequential engine. With a
// pool it is queued on the process and folded back in submission order at
// the process's next operation (or at a Flush/report), so per-process
// scoring order is exactly the order the sequential engine would use;
// proc-shard lock held.
func (e *Engine) evaluate(ps *procState, job *measureTask, contentID uint64, prev *measureTask, opIdx int64, path string) {
	p := pendingApply{job: job, prev: prev, contentID: contentID, opIdx: opIdx, path: path}
	if e.pool == nil {
		e.applyPending(ps, p)
		return
	}
	ps.pending = append(ps.pending, p)
}

// applyPending applies one queued evaluation; proc-shard lock held.
func (e *Engine) applyPending(ps *procState, p pendingApply) {
	newState := p.job.state()
	ps.typesWritten[newState.typ.ID] = true
	e.checkFunneling(ps, p.opIdx, p.path)
	prev := p.prev.state()
	if prev == nil {
		// A brand-new file of untyped high-entropy content, written while
		// the process reads lower-entropy data: the shape of a Class C
		// encrypted copy (§V-C).
		if newState.typ.IsData() && newState.entropy > 7.0 &&
			(e.deltaSuspicious(ps) || e.cfg.NewCipherWithoutDelta || e.payloadBlind.Load()) {
			e.award(ps, IndicatorEntropyDelta, e.cfg.Points.NewCipherFile, p.opIdx, p.path)
		}
	}
	if prev != nil {
		ps.filesTransformed++
		if newState.typ.ID != prev.typ.ID {
			e.award(ps, IndicatorTypeChange, e.cfg.Points.TypeChange, p.opIdx, p.path)
		}
		// A dissimilarity verdict requires a reliable previous digest:
		// digests with very few features (chance features in random-like
		// data, e.g. JPEG scan streams) carry no confidence — the same
		// reliability caveat sdhash applies to sparse digests.
		if reliableDigest(prev) && e.dissimilar(prev.digest, newState.digest) {
			e.award(ps, IndicatorSimilarity, e.cfg.Points.Similarity, p.opIdx, p.path)
		}
		// File-level entropy increase: the rewrite pushed this file's own
		// entropy up by at least the Δe threshold — the resolution that
		// catches even compressed formats gaining entropy (§IV-C1).
		if newState.entropy-prev.entropy >= e.cfg.EntropyDeltaThreshold {
			e.award(ps, IndicatorEntropyDelta, e.cfg.Points.EntropyDeltaFile, p.opIdx, p.path)
		}
	}
	e.files.store(p.contentID, newState)
}

// drainPending applies every queued evaluation for the process in
// submission order, re-checking detection against each evaluation's own
// operation index; proc-shard lock held. Fired detections are returned for
// dispatch outside the lock.
func (e *Engine) drainPending(ps *procState) []Detection {
	if len(ps.pending) == 0 {
		return nil
	}
	var dets []Detection
	for _, p := range ps.pending {
		e.applyPending(ps, p)
		if det, fire := e.checkDetection(ps, p.opIdx); fire {
			dets = append(dets, det)
		}
	}
	ps.pending = ps.pending[:0]
	return dets
}

// minReliableFeatures is the feature count above which a digest is always
// trusted for a dissimilarity verdict.
const minReliableFeatures = 8

// reliableDigest reports whether the previous version's digest can support
// a dissimilarity verdict: either it has plenty of features, or its feature
// density is high enough that the features are characteristic content
// rather than chance windows in random-like data (≥ 1 feature per 256
// bytes). Chance features in ciphertext-like streams occur orders of
// magnitude more sparsely.
func reliableDigest(st *fileState) bool {
	if st.digest == nil {
		return false
	}
	fc := st.digest.FeatureCount()
	return fc >= minReliableFeatures || int64(fc)*256 >= st.size
}

// dissimilar reports whether new content is completely dissimilar from the
// previous digest: either its comparison score is at or below the match
// ceiling, or the new content is undigestable (as ciphertext is) while the
// old version was digestable.
func (e *Engine) dissimilar(prev *sdhash.Digest, next *sdhash.Digest) bool {
	if next == nil {
		return true
	}
	return prev.Compare(next) <= e.cfg.SimilarityMatchMax
}

// checkFunneling awards the one-time funneling score when the process has
// read many more distinct types than it has written; proc-shard lock held.
func (e *Engine) checkFunneling(ps *procState, opIdx int64, path string) {
	if ps.funnelFired || len(ps.typesWritten) == 0 {
		return
	}
	if len(ps.typesRead)-len(ps.typesWritten) >= e.cfg.FunnelingThreshold {
		ps.funnelFired = true
		e.award(ps, IndicatorFunneling, e.cfg.Points.Funneling, opIdx, path)
	}
}

// award adds points for an indicator occurrence and re-evaluates union
// indication; proc-shard lock held. Disabled indicators are ignored
// entirely. path attributes the award in telemetry.
func (e *Engine) award(ps *procState, ind Indicator, pts float64, opIdx int64, path string) {
	if e.disabled[ind] {
		return
	}
	ps.indicatorSeen[ind] = true
	ps.indicatorPoints[ind] += pts
	ps.score += pts
	if len(ps.history) < maxHistory {
		ps.history = append(ps.history, ScorePoint{OpIndex: opIdx, Score: ps.score})
	}
	e.tel.fired(ps, ind, pts, opIdx, path)
	e.checkUnion(ps, opIdx)
}

// checkUnion fires union indication once all three primary indicators have
// been observed for the process; proc-shard lock held.
func (e *Engine) checkUnion(ps *procState, opIdx int64) {
	if ps.unionFired || e.cfg.DisableUnion {
		return
	}
	for _, ind := range PrimaryIndicators() {
		if !ps.indicatorSeen[ind] {
			return
		}
	}
	ps.unionFired = true
	ps.score += e.cfg.Points.UnionBonus
	if len(ps.history) < maxHistory {
		ps.history = append(ps.history, ScorePoint{OpIndex: opIdx, Score: ps.score})
	}
	e.tel.unionFired(ps, e.cfg.Points.UnionBonus, opIdx)
}

// checkDetection evaluates the process against its effective threshold;
// proc-shard lock held. The Detection is returned for dispatch outside the
// lock.
func (e *Engine) checkDetection(ps *procState, opIdx int64) (Detection, bool) {
	if ps.detected {
		return Detection{}, false
	}
	threshold := e.cfg.NonUnionThreshold
	if ps.unionFired && e.cfg.UnionThreshold < threshold {
		threshold = e.cfg.UnionThreshold
	}
	if ps.score < threshold {
		return Detection{}, false
	}
	ps.detected = true
	e.tel.detected(ps)
	det := Detection{
		PID:        ps.pid,
		Score:      ps.score,
		Threshold:  threshold,
		Union:      ps.unionFired,
		OpIndex:    opIdx,
		Indicators: make(map[Indicator]float64, len(ps.indicatorPoints)),
	}
	for ind, pts := range ps.indicatorPoints {
		det.Indicators[ind] = pts
	}
	e.detMu.Lock()
	e.detections = append(e.detections, det)
	e.detMu.Unlock()
	return det, true
}

// Flush applies every queued measurement result across all processes,
// dispatching any detections that fire. It returns once the scoreboard
// reflects all operations observed so far.
func (e *Engine) Flush() {
	var dets []Detection
	for i := range e.procs.shards {
		sh := &e.procs.shards[i]
		sh.mu.Lock()
		for _, ps := range sh.m {
			dets = append(dets, e.drainPending(ps)...)
		}
		sh.mu.Unlock()
	}
	e.dispatch(dets)
}

// Report returns the scoreboard snapshot for pid (resolved to its scoring
// group under family scoring).
func (e *Engine) Report(pid int) (ProcessReport, bool) {
	if e.cfg.FamilyOf != nil {
		pid = e.cfg.FamilyOf(pid)
	}
	sh := e.procs.shard(pid)
	sh.mu.Lock()
	ps, ok := sh.m[pid]
	if !ok {
		sh.mu.Unlock()
		return ProcessReport{}, false
	}
	dets := e.drainPending(ps)
	rep := ps.report()
	sh.mu.Unlock()
	e.dispatch(dets)
	return rep, true
}

// Reports returns snapshots for every scored process, ordered by PID.
func (e *Engine) Reports() []ProcessReport {
	var out []ProcessReport
	var dets []Detection
	for i := range e.procs.shards {
		sh := &e.procs.shards[i]
		sh.mu.Lock()
		for _, ps := range sh.m {
			dets = append(dets, e.drainPending(ps)...)
			out = append(out, ps.report())
		}
		sh.mu.Unlock()
	}
	e.dispatch(dets)
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// Detections returns all detections in occurrence order.
func (e *Engine) Detections() []Detection {
	e.Flush()
	e.detMu.Lock()
	defer e.detMu.Unlock()
	out := make([]Detection, len(e.detections))
	copy(out, e.detections)
	return out
}

// OpIndex returns the number of protected-scope operations processed.
func (e *Engine) OpIndex() int64 {
	return e.opIndex.Load()
}

// extOf returns the lower-case extension of p without the dot.
func extOf(p string) string {
	ext := path.Ext(p)
	if ext == "" {
		return ""
	}
	return strings.ToLower(ext[1:])
}
