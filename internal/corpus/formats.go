package corpus

import (
	"archive/zip"
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Generate synthesises file content of the given extension (without dot),
// approximately size bytes long, deterministically from seed. Generated
// content carries the correct magic numbers for internal/magic and realistic
// byte-entropy for its format (compressed containers high, plain text low).
// Unknown extensions yield plain text.
func Generate(ext string, seed int64, size int) []byte {
	rng := rand.New(rand.NewSource(seed))
	if size < 16 {
		size = 16
	}
	switch ext {
	case "txt":
		return genText(rng, size)
	case "md":
		return genMarkdown(rng, size)
	case "log":
		return genLog(rng, size)
	case "csv":
		return genCSV(rng, size)
	case "html":
		return genHTML(rng, size)
	case "xml":
		return genXML(rng, size)
	case "json":
		return genJSON(rng, size)
	case "rtf":
		return genRTF(rng, size)
	case "pdf":
		return genPDF(rng, size)
	case "docx":
		return genOOXML(rng, size, "word")
	case "xlsx":
		return genOOXML(rng, size, "xl")
	case "pptx":
		return genOOXML(rng, size, "ppt")
	case "odt":
		return genODT(rng, size)
	case "doc", "xls", "ppt":
		return genOLE(rng, size)
	case "jpg", "jpeg":
		return genJPEG(rng, size)
	case "png":
		return genPNG(rng, size)
	case "gif":
		return genGIF(rng, size)
	case "mp3":
		return genMP3(rng, size)
	case "wav":
		return genWAV(rng, size)
	case "zip":
		return genZip(rng, size)
	default:
		return genText(rng, size)
	}
}

var vocabulary = strings.Fields(`
the a of and to in for on with by from at this that project report budget
quarterly annual meeting minutes agenda invoice payment client customer
vendor contract proposal estimate schedule deadline milestone review draft
final revision summary analysis forecast revenue expense account balance
department team manager director employee staff training travel itinerary
insurance policy claim medical receipt tax return statement mortgage loan
photo vacation family recipe garden kitchen renovation warranty manual
assignment homework essay thesis research reference chapter appendix notes`)

func randWord(rng *rand.Rand) string {
	return vocabulary[rng.Intn(len(vocabulary))]
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// genText produces English-like sentences.
func genText(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Grow(size + 64)
	for b.Len() < size {
		n := 4 + rng.Intn(12)
		for i := 0; i < n; i++ {
			word := randWord(rng)
			if i == 0 {
				word = strings.ToUpper(word[:1]) + word[1:]
			}
			b.WriteString(word)
			if i < n-1 {
				b.WriteByte(' ')
			}
		}
		b.WriteString(".")
		if rng.Intn(5) == 0 {
			b.WriteString("\n\n")
		} else {
			b.WriteByte(' ')
		}
	}
	return b.Bytes()[:size]
}

func genMarkdown(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Grow(size + 128)
	fmt.Fprintf(&b, "# %s %s\n\n", capitalize(randWord(rng)), randWord(rng))
	for b.Len() < size {
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(&b, "## %s\n\n", capitalize(randWord(rng)))
		case 1:
			fmt.Fprintf(&b, "- %s %s %s\n", randWord(rng), randWord(rng), randWord(rng))
		default:
			b.Write(genText(rng, 120))
			b.WriteString("\n\n")
		}
	}
	return b.Bytes()[:size]
}

func genLog(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Grow(size + 128)
	levels := []string{"INFO", "WARN", "ERROR", "DEBUG"}
	for b.Len() < size {
		fmt.Fprintf(&b, "2015-%02d-%02d %02d:%02d:%02d %s %s_%s: %s %s\n",
			1+rng.Intn(12), 1+rng.Intn(28), rng.Intn(24), rng.Intn(60), rng.Intn(60),
			levels[rng.Intn(len(levels))], randWord(rng), randWord(rng), randWord(rng), randWord(rng))
	}
	return b.Bytes()[:size]
}

func genCSV(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Grow(size + 128)
	b.WriteString("id,name,category,amount,date\n")
	for b.Len() < size {
		fmt.Fprintf(&b, "%d,%s %s,%s,%d.%02d,2015-%02d-%02d\n",
			rng.Intn(100000), randWord(rng), randWord(rng), randWord(rng),
			rng.Intn(10000), rng.Intn(100), 1+rng.Intn(12), 1+rng.Intn(28))
	}
	return b.Bytes()[:size]
}

func genHTML(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Grow(size + 256)
	b.WriteString("<!DOCTYPE html>\n<html>\n<head><title>")
	b.WriteString(randWord(rng))
	b.WriteString("</title></head>\n<body>\n")
	for b.Len() < size-16 {
		fmt.Fprintf(&b, "<p>%s</p>\n", genText(rng, 100))
	}
	b.WriteString("</body></html>\n")
	return b.Bytes()
}

func genXML(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Grow(size + 256)
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n<records>\n")
	for b.Len() < size-16 {
		fmt.Fprintf(&b, "  <record id=\"%d\"><name>%s</name><note>%s</note></record>\n",
			rng.Intn(100000), randWord(rng), genText(rng, 60))
	}
	b.WriteString("</records>\n")
	return b.Bytes()
}

func genJSON(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Grow(size + 256)
	b.WriteString("{\n  \"items\": [\n")
	first := true
	for b.Len() < size-16 {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(&b, "    {\"id\": %d, \"name\": %q, \"value\": %d}",
			rng.Intn(100000), randWord(rng), rng.Intn(1000))
	}
	b.WriteString("\n  ]\n}\n")
	return b.Bytes()
}

func genRTF(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Grow(size + 256)
	b.WriteString(`{\rtf1\ansi\deff0{\fonttbl{\f0 Times New Roman;}}`)
	for b.Len() < size-8 {
		fmt.Fprintf(&b, `\par %s`, genText(rng, 100))
	}
	b.WriteString("}")
	return b.Bytes()
}

// deflate compresses data with zlib (FlateDecode in PDF terms).
func deflate(data []byte) []byte {
	var out bytes.Buffer
	w := zlib.NewWriter(&out)
	_, _ = w.Write(data)
	_ = w.Close()
	return out.Bytes()
}

// genPDF produces a structurally plausible PDF: header, catalog objects and
// FlateDecode content streams. Most bytes are compressed streams, giving the
// high overall entropy of real-world PDFs.
func genPDF(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Grow(size + 1024)
	b.WriteString("%PDF-1.5\n%\xe2\xe3\xcf\xd3\n")
	b.WriteString("1 0 obj\n<< /Type /Catalog /Pages 2 0 R >>\nendobj\n")
	b.WriteString("2 0 obj\n<< /Type /Pages /Kids [3 0 R] /Count 1 >>\nendobj\n")
	b.WriteString("3 0 obj\n<< /Type /Page /Parent 2 0 R /Contents 4 0 R >>\nendobj\n")
	obj := 4
	for b.Len() < size-64 {
		// Compress ~3x the remaining budget of text so the stream fills it.
		want := size - b.Len() - 64
		if want > 16384 {
			want = 16384
		}
		stream := deflate(genText(rng, want*3))
		fmt.Fprintf(&b, "%d 0 obj\n<< /Filter /FlateDecode /Length %d >>\nstream\n", obj, len(stream))
		b.Write(stream)
		b.WriteString("\nendstream\nendobj\n")
		obj++
	}
	fmt.Fprintf(&b, "trailer\n<< /Size %d /Root 1 0 R >>\nstartxref\n%d\n%%%%EOF\n", obj, b.Len())
	return b.Bytes()
}

// genOOXML produces a real ZIP container with the entry layout of an Office
// Open XML document (prefix "word", "xl" or "ppt").
func genOOXML(rng *rand.Rand, size int, prefix string) []byte {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	mainPart := map[string]string{"word": "word/document.xml", "xl": "xl/workbook.xml", "ppt": "ppt/presentation.xml"}[prefix]
	write := func(name string, content []byte) {
		w, err := zw.Create(name)
		if err != nil {
			return
		}
		_, _ = w.Write(content)
	}
	write(mainPart, genXML(rng, size*2/3))
	write("[Content_Types].xml", genXML(rng, 512))
	write("_rels/.rels", genXML(rng, 256))
	write(prefix+"/styles.xml", genXML(rng, size/4))
	write("docProps/core.xml", genXML(rng, 256))
	_ = zw.Close()
	return buf.Bytes()
}

// genODT produces an OpenDocument container: the uncompressed mimetype entry
// first, then compressed XML parts.
func genODT(rng *rand.Rand, size int) []byte {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	w, err := zw.CreateHeader(&zip.FileHeader{Name: "mimetype", Method: zip.Store})
	if err == nil {
		_, _ = w.Write([]byte("application/vnd.oasis.opendocument.text"))
	}
	if w, err := zw.Create("content.xml"); err == nil {
		_, _ = w.Write(genXML(rng, size))
	}
	if w, err := zw.Create("styles.xml"); err == nil {
		_, _ = w.Write(genXML(rng, size/8))
	}
	_ = zw.Close()
	return buf.Bytes()
}

// genOLE produces a legacy Office compound document: the OLE2 magic and
// sector tables interleaved with UTF-16-ish text, giving the mid-range
// entropy of real .doc files.
func genOLE(rng *rand.Rand, size int) []byte {
	out := make([]byte, size)
	copy(out, []byte{0xD0, 0xCF, 0x11, 0xE0, 0xA1, 0xB1, 0x1A, 0xE1})
	// Header block: FAT metadata.
	for i := 8; i < 512 && i < size; i++ {
		out[i] = byte(rng.Intn(8) * 16)
	}
	// Body: alternate text sectors and binary table sectors.
	text := genText(rng, size)
	for off := 512; off < size; off += 512 {
		end := off + 512
		if end > size {
			end = size
		}
		if (off/512)%3 == 0 {
			for i := off; i < end; i++ {
				out[i] = byte(rng.Intn(256))
			}
		} else {
			// UTF-16LE text: ASCII byte then NUL.
			for i := off; i < end; i++ {
				if (i-off)%2 == 0 {
					out[i] = text[i%len(text)]
				}
			}
		}
	}
	return out
}

func genJPEG(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Grow(size + 64)
	// SOI + APP0/JFIF.
	b.Write([]byte{0xFF, 0xD8, 0xFF, 0xE0, 0x00, 0x10, 'J', 'F', 'I', 'F', 0x00, 0x01, 0x02, 0x00, 0x00, 0x48, 0x00, 0x48, 0x00, 0x00})
	// DQT quantisation table (structured, low entropy).
	b.Write([]byte{0xFF, 0xDB, 0x00, 0x43, 0x00})
	for i := 0; i < 64; i++ {
		b.WriteByte(byte(2 + i/4))
	}
	// SOS + entropy-coded scan data (high entropy, 0xFF bytes escaped).
	b.Write([]byte{0xFF, 0xDA, 0x00, 0x08, 0x01, 0x01, 0x00, 0x00, 0x3F, 0x00})
	for b.Len() < size-2 {
		v := byte(rng.Intn(256))
		b.WriteByte(v)
		if v == 0xFF {
			b.WriteByte(0x00)
		}
	}
	b.Write([]byte{0xFF, 0xD9})
	return b.Bytes()
}

func genPNG(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Grow(size + 128)
	b.Write([]byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1A, '\n'})
	writeChunk := func(typ string, data []byte) {
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(data)))
		copy(hdr[4:], typ)
		b.Write(hdr[:])
		b.Write(data)
		b.Write([]byte{0, 0, 0, 0}) // CRC placeholder (not validated here)
	}
	ihdr := make([]byte, 13)
	binary.BigEndian.PutUint32(ihdr[0:], 640)
	binary.BigEndian.PutUint32(ihdr[4:], 480)
	ihdr[8], ihdr[9] = 8, 2 // bit depth, RGB
	writeChunk("IHDR", ihdr)
	// IDAT: zlib-compressed synthetic scanlines (gradient + noise).
	for b.Len() < size-32 {
		want := size - b.Len() - 32
		if want > 32768 {
			want = 32768
		}
		raw := make([]byte, want*2)
		for i := range raw {
			raw[i] = byte(i/3) + byte(rng.Intn(32))
		}
		writeChunk("IDAT", deflate(raw))
	}
	writeChunk("IEND", nil)
	return b.Bytes()
}

func genGIF(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Grow(size + 64)
	b.WriteString("GIF89a")
	b.Write([]byte{0x80, 0x02, 0xE0, 0x01, 0xF7, 0x00, 0x00}) // screen descriptor
	// Global colour table: 256 RGB entries (structured).
	for i := 0; i < 256; i++ {
		b.Write([]byte{byte(i), byte(255 - i), byte(i / 2)})
	}
	// LZW image data: high entropy.
	b.Write([]byte{0x2C, 0, 0, 0, 0, 0x80, 0x02, 0xE0, 0x01, 0x00, 0x08})
	for b.Len() < size-1 {
		n := 255
		if rem := size - 1 - b.Len(); rem < n+1 {
			n = rem - 1
		}
		if n <= 0 {
			break
		}
		b.WriteByte(byte(n))
		for i := 0; i < n; i++ {
			b.WriteByte(byte(rng.Intn(256)))
		}
	}
	b.WriteByte(0x3B)
	return b.Bytes()
}

func genMP3(rng *rand.Rand, size int) []byte {
	var b bytes.Buffer
	b.Grow(size + 128)
	// ID3v2 tag with a title frame.
	b.WriteString("ID3\x03\x00\x00\x00\x00\x00\x40")
	title := fmt.Sprintf("TIT2\x00\x00\x00\x10\x00\x00\x00%s", randWord(rng))
	b.WriteString(title)
	for b.Len() < 74 {
		b.WriteByte(0)
	}
	// MPEG frames: sync word + compressed audio (high entropy).
	for b.Len() < size {
		b.Write([]byte{0xFF, 0xFB, 0x90, 0x00})
		n := 413 // frame payload for 128kbps/44.1kHz
		if rem := size - b.Len(); rem < n {
			n = rem
		}
		for i := 0; i < n; i++ {
			b.WriteByte(byte(rng.Intn(256)))
		}
	}
	return b.Bytes()
}

// genWAV produces PCM audio: a noisy sine mix, yielding the mid-range
// entropy characteristic of uncompressed audio.
func genWAV(rng *rand.Rand, size int) []byte {
	if size < 64 {
		size = 64
	}
	dataLen := size - 44
	out := make([]byte, size)
	copy(out, "RIFF")
	binary.LittleEndian.PutUint32(out[4:], uint32(size-8))
	copy(out[8:], "WAVEfmt ")
	binary.LittleEndian.PutUint32(out[16:], 16)
	binary.LittleEndian.PutUint16(out[20:], 1) // PCM
	binary.LittleEndian.PutUint16(out[22:], 1) // mono
	binary.LittleEndian.PutUint32(out[24:], 44100)
	binary.LittleEndian.PutUint32(out[28:], 88200)
	binary.LittleEndian.PutUint16(out[32:], 2)
	binary.LittleEndian.PutUint16(out[34:], 16)
	copy(out[36:], "data")
	binary.LittleEndian.PutUint32(out[40:], uint32(dataLen))
	freq := 100 + rng.Float64()*800
	for i := 0; i < dataLen/2; i++ {
		s := 12000*math.Sin(2*math.Pi*freq*float64(i)/44100) + float64(rng.Intn(256)-128)
		// Quantise: real tonal audio clusters sample values, keeping byte
		// entropy in the mid range rather than near-uniform.
		q := (int16(s) / 64) * 64
		binary.LittleEndian.PutUint16(out[44+2*i:], uint16(q))
	}
	return out
}

func genZip(rng *rand.Rand, size int) []byte {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		w, err := zw.Create(fmt.Sprintf("%s_%d.txt", randWord(rng), i))
		if err != nil {
			continue
		}
		_, _ = w.Write(genText(rng, size/n*3))
	}
	_ = zw.Close()
	return buf.Bytes()
}
