// Package corpus deterministically synthesises the user-document test corpus
// the paper assembles from the Govdocs1, OPF Format and Coldwell audio
// corpora (§V-A): 5,099 files across 511 nested directories, with file-type
// proportions and size distributions modelled on studies of user document
// directories (Hicks et al.).
//
// Every file has the correct magic numbers for its extension and realistic
// byte entropy for its format, so the three primary CryptoDrop indicators
// behave against it as they would against real user data. Generation is
// fully deterministic from a seed.
package corpus

import (
	"crypto/sha256"
	"fmt"
	"math"
	"math/rand"
	"path"
	"sort"
	"strings"

	"cryptodrop/internal/vfs"
)

// Default corpus dimensions from the paper (§V-A).
const (
	// DefaultFiles is the paper's corpus size.
	DefaultFiles = 5099
	// DefaultDirs is the paper's directory count.
	DefaultDirs = 511
	// DefaultRoot is the protected documents directory.
	DefaultRoot = "/Users/victim/Documents"
)

// Spec configures corpus generation. The zero value is completed with the
// paper's defaults by Build.
type Spec struct {
	// Seed drives all randomness; equal specs build identical corpora.
	Seed int64
	// Files is the number of files to generate (default DefaultFiles).
	Files int
	// Dirs is the number of directories including the root (default
	// DefaultDirs).
	Dirs int
	// Root is the documents directory to populate (default DefaultRoot).
	Root string
	// MinSize, when positive, drops files smaller than this many bytes —
	// used by the §V-C small-file rerun, which removes files < 512 B.
	MinSize int
	// ReadOnlyFraction marks approximately this fraction of files
	// read-only (default 0.02, matching the read-only test files of §V-C).
	// Set negative to disable.
	ReadOnlyFraction float64
	// SizeScale scales all file sizes (default 1.0). Tests use < 1 to
	// keep corpora small.
	SizeScale float64
}

// fileClass describes one extension's share of the corpus and size range,
// modelling the user-directory type distribution of Hicks et al. [22] and
// the filesystem studies [16], [2] the paper aggregates.
type fileClass struct {
	ext      string
	weight   int
	minBytes int
	maxBytes int
}

var fileClasses = []fileClass{
	{"pdf", 11, 8 << 10, 200 << 10},
	{"docx", 9, 8 << 10, 120 << 10},
	{"xlsx", 7, 6 << 10, 90 << 10},
	{"pptx", 5, 20 << 10, 160 << 10},
	{"doc", 4, 12 << 10, 100 << 10},
	{"odt", 2, 8 << 10, 80 << 10},
	{"txt", 11, 120, 24 << 10},
	{"md", 3, 180, 12 << 10},
	{"csv", 4, 400, 60 << 10},
	{"html", 5, 2 << 10, 48 << 10},
	{"xml", 4, 1 << 10, 40 << 10},
	{"log", 2, 1 << 10, 80 << 10},
	{"rtf", 3, 2 << 10, 50 << 10},
	{"json", 2, 600, 30 << 10},
	{"jpg", 12, 20 << 10, 220 << 10},
	{"png", 6, 8 << 10, 120 << 10},
	{"gif", 2, 4 << 10, 50 << 10},
	{"mp3", 4, 60 << 10, 300 << 10},
	{"wav", 2, 20 << 10, 120 << 10},
	{"zip", 1, 8 << 10, 80 << 10},
}

var dirNames = []string{
	"Projects", "Reports", "Finance", "Taxes", "Invoices", "Receipts",
	"Photos", "Vacation", "Family", "Music", "Recordings", "School",
	"Research", "Papers", "Drafts", "Archive", "Backups", "Personal",
	"Work", "Clients", "Contracts", "Proposals", "Meetings", "Notes",
	"Recipes", "Medical", "Insurance", "Legal", "Letters", "Templates",
	"2013", "2014", "2015", "Q1", "Q2", "Q3", "Q4", "Old", "Shared", "Misc",
}

// Entry records one generated corpus file.
type Entry struct {
	// Path is the file's location in the VFS.
	Path string
	// Ext is the extension without dot.
	Ext string
	// Size is the content length in bytes.
	Size int
	// SHA256 is the content hash, used to verify files survived a run
	// unmodified (the paper verifies document hashes after each sample).
	SHA256 [32]byte
	// ReadOnly reports whether the file carries the read-only attribute.
	ReadOnly bool
}

// Manifest describes a generated corpus.
type Manifest struct {
	// Root is the populated documents directory.
	Root string
	// Entries lists every generated file, sorted by path.
	Entries []Entry
	// DirCount is the number of directories created, including Root.
	DirCount int
}

// ByExt returns the entries with the given extension.
func (m *Manifest) ByExt(ext string) []Entry {
	var out []Entry
	for _, e := range m.Entries {
		if e.Ext == ext {
			out = append(out, e)
		}
	}
	return out
}

// SmallerThan returns the entries strictly smaller than n bytes.
func (m *Manifest) SmallerThan(n int) []Entry {
	var out []Entry
	for _, e := range m.Entries {
		if e.Size < n {
			out = append(out, e)
		}
	}
	return out
}

// CountByExt returns the number of files per extension.
func (m *Manifest) CountByExt() map[string]int {
	out := make(map[string]int)
	for _, e := range m.Entries {
		out[e.Ext]++
	}
	return out
}

// Build populates fs with a corpus per spec and returns its manifest. The
// filesystem should have no interceptor attached: the corpus is the
// pre-existing user data the monitor later protects.
func Build(fs *vfs.FS, spec Spec) (*Manifest, error) {
	if spec.Files == 0 {
		spec.Files = DefaultFiles
	}
	if spec.Dirs == 0 {
		spec.Dirs = DefaultDirs
	}
	if spec.Root == "" {
		spec.Root = DefaultRoot
	}
	if spec.SizeScale == 0 {
		spec.SizeScale = 1.0
	}
	if spec.ReadOnlyFraction == 0 {
		spec.ReadOnlyFraction = 0.02
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	dirs, err := buildTree(fs, rng, spec.Root, spec.Dirs)
	if err != nil {
		return nil, err
	}

	total := 0
	for _, c := range fileClasses {
		total += c.weight
	}

	m := &Manifest{Root: spec.Root, DirCount: len(dirs)}
	used := make(map[string]bool, spec.Files)
	for i := 0; i < spec.Files; i++ {
		c := pickClass(rng, total)
		size := logUniform(rng, c.minBytes, c.maxBytes)
		size = int(float64(size) * spec.SizeScale)
		if size < c.minBytes/4 {
			size = c.minBytes / 4
		}
		if spec.MinSize > 0 && size < spec.MinSize {
			// Small-file rerun: regenerate at or above the floor.
			size = spec.MinSize + rng.Intn(spec.MinSize)
		}
		dir := dirs[rng.Intn(len(dirs))]
		name := fileName(rng, c.ext, used, dir)
		content := Generate(c.ext, spec.Seed^int64(i)<<1, size)
		if spec.MinSize > 0 && len(content) < spec.MinSize {
			continue
		}
		p := path.Join(dir, name)
		if err := fs.WriteFile(0, p, content); err != nil {
			return nil, fmt.Errorf("corpus: write %s: %w", p, err)
		}
		e := Entry{Path: p, Ext: c.ext, Size: len(content), SHA256: sha256.Sum256(content)}
		if spec.ReadOnlyFraction > 0 && rng.Float64() < spec.ReadOnlyFraction {
			if err := fs.SetReadOnly(p, true); err != nil {
				return nil, fmt.Errorf("corpus: set read-only %s: %w", p, err)
			}
			e.ReadOnly = true
		}
		m.Entries = append(m.Entries, e)
	}
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].Path < m.Entries[j].Path })
	return m, nil
}

// buildTree creates a nested directory tree of the requested size and
// returns all directory paths including root.
func buildTree(fs *vfs.FS, rng *rand.Rand, root string, count int) ([]string, error) {
	if err := fs.MkdirAll(root); err != nil {
		return nil, fmt.Errorf("corpus: mkdir root: %w", err)
	}
	dirs := []string{root}
	seen := map[string]bool{root: true}
	for len(dirs) < count {
		parent := dirs[rng.Intn(len(dirs))]
		// Keep the tree from growing unrealistically deep.
		if strings.Count(parent[len(root):], "/") >= 6 {
			continue
		}
		name := dirNames[rng.Intn(len(dirNames))]
		p := path.Join(parent, name)
		if seen[p] {
			p = path.Join(parent, fmt.Sprintf("%s %d", name, rng.Intn(90)+10))
			if seen[p] {
				continue
			}
		}
		if err := fs.MkdirAll(p); err != nil {
			return nil, fmt.Errorf("corpus: mkdir %s: %w", p, err)
		}
		seen[p] = true
		dirs = append(dirs, p)
	}
	return dirs, nil
}

func pickClass(rng *rand.Rand, total int) fileClass {
	n := rng.Intn(total)
	for _, c := range fileClasses {
		if n < c.weight {
			return c
		}
		n -= c.weight
	}
	return fileClasses[len(fileClasses)-1]
}

// logUniform draws a size log-uniformly from [min, max], matching the
// heavy-tailed size distributions of the filesystem studies.
func logUniform(rng *rand.Rand, min, max int) int {
	if min >= max {
		return min
	}
	lo, hi := math.Log(float64(min)), math.Log(float64(max))
	return int(math.Exp(lo + rng.Float64()*(hi-lo)))
}

// fileName generates a unique, realistic file name within dir.
func fileName(rng *rand.Rand, ext string, used map[string]bool, dir string) string {
	for {
		var base string
		switch rng.Intn(3) {
		case 0:
			base = fmt.Sprintf("%s_%s", randWord(rng), randWord(rng))
		case 1:
			base = fmt.Sprintf("%s %d", randWord(rng), 1990+rng.Intn(26))
		default:
			base = fmt.Sprintf("%s-%s-%02d", randWord(rng), randWord(rng), rng.Intn(100))
		}
		name := base + "." + ext
		key := dir + "/" + name
		if !used[key] {
			used[key] = true
			return name
		}
	}
}
