package corpus

import (
	"strings"
	"testing"

	"cryptodrop/internal/entropy"
	"cryptodrop/internal/magic"
	"cryptodrop/internal/vfs"
)

// buildSmall builds a reduced corpus for tests.
func buildSmall(t testing.TB, seed int64) (*vfs.FS, *Manifest) {
	t.Helper()
	fs := vfs.New()
	m, err := Build(fs, Spec{Seed: seed, Files: 400, Dirs: 50, SizeScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	return fs, m
}

func TestBuildCounts(t *testing.T) {
	fs, m := buildSmall(t, 1)
	if len(m.Entries) != 400 {
		t.Fatalf("entries = %d, want 400", len(m.Entries))
	}
	if m.DirCount != 50 {
		t.Fatalf("dirs = %d, want 50", m.DirCount)
	}
	stats, err := fs.TreeStats(m.Root)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Files != 400 {
		t.Fatalf("files on disk = %d, want 400", stats.Files)
	}
	if stats.Dirs != 49 { // root itself is not counted by TreeStats
		t.Fatalf("dirs on disk = %d, want 49", stats.Dirs)
	}
}

func TestBuildDeterministic(t *testing.T) {
	_, m1 := buildSmall(t, 7)
	_, m2 := buildSmall(t, 7)
	if len(m1.Entries) != len(m2.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(m1.Entries), len(m2.Entries))
	}
	for i := range m1.Entries {
		if m1.Entries[i].Path != m2.Entries[i].Path || m1.Entries[i].SHA256 != m2.Entries[i].SHA256 {
			t.Fatalf("entry %d differs between identically-seeded builds", i)
		}
	}
}

func TestBuildSeedsDiffer(t *testing.T) {
	_, m1 := buildSmall(t, 1)
	_, m2 := buildSmall(t, 2)
	same := 0
	for i := range m1.Entries {
		if i < len(m2.Entries) && m1.Entries[i].SHA256 == m2.Entries[i].SHA256 {
			same++
		}
	}
	if same > len(m1.Entries)/10 {
		t.Fatalf("%d/%d identical files across different seeds", same, len(m1.Entries))
	}
}

func TestMagicMatchesExtension(t *testing.T) {
	fs, m := buildSmall(t, 3)
	wantID := map[string]string{
		"pdf": "pdf", "docx": "docx", "xlsx": "xlsx", "pptx": "pptx",
		"doc": "ole", "odt": "odt", "txt": "txt", "md": "txt",
		"csv": "txt", "html": "html", "xml": "xml", "log": "txt",
		"rtf": "rtf", "json": "json", "jpg": "jpg", "png": "png",
		"gif": "gif", "mp3": "mp3", "wav": "wav", "zip": "zip",
	}
	for _, e := range m.Entries {
		content, err := fs.ReadFileRaw(e.Path)
		if err != nil {
			t.Fatal(err)
		}
		got := magic.Identify(content)
		if want := wantID[e.Ext]; got.ID != want {
			t.Errorf("%s identified as %q, want %q", e.Path, got.ID, want)
		}
	}
}

func TestEntropyProfiles(t *testing.T) {
	fs, m := buildSmall(t, 4)
	// Aggregate entropy per extension must land in realistic bands.
	bands := map[string][2]float64{
		"txt":  {3.5, 5.0},
		"pdf":  {7.0, 8.0},
		"docx": {6.5, 8.0},
		"jpg":  {7.5, 8.0},
		"wav":  {3.5, 7.0},
		"doc":  {3.0, 6.8},
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, e := range m.Entries {
		if _, ok := bands[e.Ext]; !ok {
			continue
		}
		content, err := fs.ReadFileRaw(e.Path)
		if err != nil {
			t.Fatal(err)
		}
		sums[e.Ext] += entropy.Shannon(content)
		counts[e.Ext]++
	}
	for ext, band := range bands {
		if counts[ext] == 0 {
			t.Errorf("no %s files generated", ext)
			continue
		}
		mean := sums[ext] / float64(counts[ext])
		if mean < band[0] || mean > band[1] {
			t.Errorf("%s mean entropy = %.2f, want within [%.1f, %.1f]", ext, mean, band[0], band[1])
		}
	}
}

func TestSmallFilesExist(t *testing.T) {
	// The §V-C CTB-Locker analysis depends on sub-512-byte txt/md files.
	fs := vfs.New()
	m, err := Build(fs, Spec{Seed: 5, Files: 1500, Dirs: 100})
	if err != nil {
		t.Fatal(err)
	}
	small := m.SmallerThan(512)
	if len(small) < 10 {
		t.Fatalf("only %d files < 512B in a 1500-file corpus", len(small))
	}
	for _, e := range small {
		if e.Ext != "txt" && e.Ext != "md" && e.Ext != "csv" && e.Ext != "json" {
			t.Errorf("unexpectedly small %s file: %s (%d bytes)", e.Ext, e.Path, e.Size)
		}
	}
}

func TestMinSizeFloor(t *testing.T) {
	fs := vfs.New()
	m, err := Build(fs, Spec{Seed: 6, Files: 500, Dirs: 40, MinSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.SmallerThan(512); len(got) != 0 {
		t.Fatalf("%d files below the MinSize floor", len(got))
	}
}

func TestReadOnlyFraction(t *testing.T) {
	fs, m := buildSmall(t, 8)
	ro := 0
	for _, e := range m.Entries {
		if e.ReadOnly {
			ro++
			info, err := fs.Stat(e.Path)
			if err != nil {
				t.Fatal(err)
			}
			if !info.ReadOnly {
				t.Fatalf("%s marked read-only in manifest but not on disk", e.Path)
			}
		}
	}
	if ro == 0 || ro > len(m.Entries)/10 {
		t.Fatalf("read-only files = %d of %d, want a small nonzero fraction", ro, len(m.Entries))
	}
}

func TestManifestHelpers(t *testing.T) {
	_, m := buildSmall(t, 9)
	counts := m.CountByExt()
	sum := 0
	for _, n := range counts {
		sum += n
	}
	if sum != len(m.Entries) {
		t.Fatalf("CountByExt sums to %d, want %d", sum, len(m.Entries))
	}
	for _, e := range m.ByExt("pdf") {
		if e.Ext != "pdf" {
			t.Fatalf("ByExt(pdf) returned %s", e.Path)
		}
	}
	if len(m.ByExt("pdf")) != counts["pdf"] {
		t.Fatal("ByExt and CountByExt disagree")
	}
}

func TestTypeMixRoughlyMatchesWeights(t *testing.T) {
	fs := vfs.New()
	m, err := Build(fs, Spec{Seed: 10, Files: 2000, Dirs: 100, SizeScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	counts := m.CountByExt()
	// Productivity formats must dominate (they are what ransomware
	// attacks first, Fig. 5).
	productivity := counts["pdf"] + counts["docx"] + counts["xlsx"] + counts["pptx"] + counts["doc"] + counts["odt"]
	if productivity < len(m.Entries)/4 {
		t.Fatalf("productivity files = %d of %d, want ≥ 25%%", productivity, len(m.Entries))
	}
	if counts["txt"] == 0 || counts["jpg"] == 0 {
		t.Fatal("txt or jpg missing from a 2000-file corpus")
	}
}

func TestPathsUnique(t *testing.T) {
	_, m := buildSmall(t, 11)
	seen := make(map[string]bool, len(m.Entries))
	for _, e := range m.Entries {
		if seen[e.Path] {
			t.Fatalf("duplicate path %s", e.Path)
		}
		seen[e.Path] = true
		if !strings.HasPrefix(e.Path, m.Root+"/") {
			t.Fatalf("path %s outside root %s", e.Path, m.Root)
		}
	}
}

func TestGenerateKnownExtensions(t *testing.T) {
	for _, c := range fileClasses {
		data := Generate(c.ext, 42, 4096)
		if len(data) < 512 {
			t.Errorf("Generate(%s) produced only %d bytes", c.ext, len(data))
		}
	}
	// Unknown extension falls back to text.
	if got := magic.Identify(Generate("xyz", 1, 2048)); got.Category != magic.CategoryText {
		t.Fatalf("unknown ext generated %q, want text", got.ID)
	}
}

func BenchmarkBuildCorpus400(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs := vfs.New()
		if _, err := Build(fs, Spec{Seed: 1, Files: 400, Dirs: 50, SizeScale: 0.25}); err != nil {
			b.Fatal(err)
		}
	}
}
