package entropy

import (
	"math/rand"
	"testing"
)

// TestHistogramMatchesShannonBitIdentical pins the incremental kernel's core
// guarantee: a histogram whose counts match a byte slice yields the exact
// float64 Shannon returns for that slice — not approximately, bit for bit —
// because both paths run the identical frequency-form sum.
func TestHistogramMatchesShannonBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, size := range []int{0, 1, 7, 512, 4096, 100_000} {
		data := make([]byte, size)
		rng.Read(data)
		h := HistogramOf(data)
		if got, want := h.Entropy(), Shannon(data); got != want {
			t.Fatalf("size %d: histogram entropy %v != Shannon %v", size, got, want)
		}
		if h.Total() != size {
			t.Fatalf("size %d: total %d", size, h.Total())
		}
	}
}

// TestHistogramIncrementalUpdate replays a sequence of range overwrites two
// ways — maintaining the histogram incrementally vs rescanning the mutated
// buffer — and requires bit-identical entropy after every step.
func TestHistogramIncrementalUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	file := make([]byte, 32<<10)
	rng.Read(file)
	h := HistogramOf(file)
	for step := 0; step < 200; step++ {
		off := rng.Intn(len(file))
		n := rng.Intn(len(file)-off) + 1
		patch := make([]byte, n)
		rng.Read(patch)

		h.Sub(file[off : off+n])
		copy(file[off:], patch)
		h.Add(patch)

		if got, want := h.Entropy(), Shannon(file); got != want {
			t.Fatalf("step %d: incremental %v != rescan %v", step, got, want)
		}
		if !h.Valid() {
			t.Fatalf("step %d: histogram invalid", step)
		}
	}
}

// TestHistogramGrowth covers the append case: adding bytes past the tracked
// size without a matching Sub.
func TestHistogramGrowth(t *testing.T) {
	file := []byte("hello")
	h := HistogramOf(file)
	file = append(file, " world"...)
	h.Add([]byte(" world"))
	if got, want := h.Entropy(), Shannon(file); got != want {
		t.Fatalf("grown entropy %v != %v", got, want)
	}
}

// TestHistogramValidDetectsCorruption pins that subtracting bytes that were
// never added is observable, so trackers can fall back to a full rescan.
func TestHistogramValidDetectsCorruption(t *testing.T) {
	h := HistogramOf([]byte("aaaa"))
	h.Sub([]byte("bb"))
	if h.Valid() {
		t.Fatal("corrupted histogram reported valid")
	}
	h.Reset()
	if !h.Valid() || h.Total() != 0 || h.Entropy() != 0 {
		t.Fatal("reset did not restore the empty histogram")
	}
}

// TestHistogramClone pins that clones are independent.
func TestHistogramClone(t *testing.T) {
	h := HistogramOf([]byte("abcabc"))
	c := h.Clone()
	c.Add([]byte("zzzz"))
	if h.Total() != 6 || c.Total() != 10 {
		t.Fatalf("clone not independent: %d, %d", h.Total(), c.Total())
	}
	if got, want := h.Entropy(), Shannon([]byte("abcabc")); got != want {
		t.Fatalf("original mutated by clone: %v != %v", got, want)
	}
}
