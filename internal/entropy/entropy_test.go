package entropy

import (
	"bytes"
	"crypto/rand"
	"math"
	"testing"
	"testing/quick"
)

func TestShannonEmpty(t *testing.T) {
	if got := Shannon(nil); got != 0 {
		t.Fatalf("Shannon(nil) = %v, want 0", got)
	}
	if got := Shannon([]byte{}); got != 0 {
		t.Fatalf("Shannon(empty) = %v, want 0", got)
	}
}

func TestShannonUniformSingleByte(t *testing.T) {
	data := bytes.Repeat([]byte{0x41}, 4096)
	if got := Shannon(data); got != 0 {
		t.Fatalf("Shannon(constant) = %v, want 0", got)
	}
}

func TestShannonPerfectDistribution(t *testing.T) {
	// Every byte value exactly 16 times: entropy must be exactly 8.
	data := make([]byte, 256*16)
	for i := range data {
		data[i] = byte(i % 256)
	}
	if got := Shannon(data); math.Abs(got-8.0) > 1e-9 {
		t.Fatalf("Shannon(uniform) = %v, want 8", got)
	}
}

func TestShannonTwoValues(t *testing.T) {
	// 50/50 split of two byte values: exactly 1 bit.
	data := append(bytes.Repeat([]byte{0}, 512), bytes.Repeat([]byte{255}, 512)...)
	if got := Shannon(data); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Shannon(two values) = %v, want 1", got)
	}
}

func TestShannonRandomIsHigh(t *testing.T) {
	data := make([]byte, 64*1024)
	if _, err := rand.Read(data); err != nil {
		t.Fatal(err)
	}
	if got := Shannon(data); got < 7.9 {
		t.Fatalf("Shannon(crypto-random 64KiB) = %v, want > 7.9", got)
	}
}

func TestShannonEnglishTextRange(t *testing.T) {
	text := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 100)
	e := Shannon(text)
	if e < 3.0 || e > 5.0 {
		t.Fatalf("Shannon(english) = %v, want within [3,5]", e)
	}
}

func TestShannonBounds(t *testing.T) {
	f := func(data []byte) bool {
		e := Shannon(data)
		return e >= 0 && e <= MaxEntropy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShannonPermutationInvariant(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		rev := make([]byte, len(data))
		for i, b := range data {
			rev[len(data)-1-i] = b
		}
		return math.Abs(Shannon(data)-Shannon(rev)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeight(t *testing.T) {
	tests := []struct {
		name string
		e    float64
		b    int
		want float64
	}{
		{"zero entropy", 0.0, 1000, 0},
		{"rounds down below half", 0.4, 100, 0},
		{"rounds up at half", 7.6, 100, 0.125 * 8 * 100},
		{"max entropy normalises to b", 8.0, 100, 100},
		{"zero bytes", 8.0, 0, 0},
		{"negative bytes", 8.0, -5, 0},
		{"mid entropy", 4.0, 64, 0.125 * 4 * 64},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Weight(tt.e, tt.b); math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("Weight(%v,%v) = %v, want %v", tt.e, tt.b, got, tt.want)
			}
		})
	}
}

func TestWeightedMeanZeroValue(t *testing.T) {
	var m WeightedMean
	if m.Mean() != 0 {
		t.Fatalf("zero-value Mean() = %v, want 0", m.Mean())
	}
	if m.Ops() != 0 || m.Bytes() != 0 {
		t.Fatalf("zero value not empty: ops=%d bytes=%d", m.Ops(), m.Bytes())
	}
}

func TestWeightedMeanLowEntropyDoesNotDominate(t *testing.T) {
	// The paper's motivation: ransomware writes many small low-entropy
	// ransom notes. The weighted mean must stay close to the entropy of the
	// bulk high-entropy writes.
	var m WeightedMean

	high := make([]byte, 32*1024)
	for i := range high {
		high[i] = byte((i*131 + i/7) % 256) // near-uniform
	}
	m.Add(high)
	bulk := m.Mean()

	// A hundred tiny constant-byte notes: entropy 0 → weight 0 → no effect.
	note := bytes.Repeat([]byte{'A'}, 64)
	for i := 0; i < 100; i++ {
		m.Add(note)
	}
	if math.Abs(m.Mean()-bulk) > 1e-9 {
		t.Fatalf("zero-entropy notes moved the mean: %v -> %v", bulk, m.Mean())
	}

	// Low-but-nonzero entropy notes move it only slightly because their
	// weight is small (0.125 × ⌊e⌉ × 64).
	text := bytes.Repeat([]byte("PAY US! "), 8)
	for i := 0; i < 100; i++ {
		m.Add(text)
	}
	if m.Mean() < bulk*0.5 {
		t.Fatalf("low-entropy notes dominated the weighted mean: %v -> %v", bulk, m.Mean())
	}
}

func TestWeightedMeanSingleOp(t *testing.T) {
	var m WeightedMean
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	e := m.Add(data)
	if math.Abs(e-8.0) > 1e-9 {
		t.Fatalf("Add returned entropy %v, want 8", e)
	}
	if math.Abs(m.Mean()-8.0) > 1e-9 {
		t.Fatalf("Mean() = %v, want 8", m.Mean())
	}
	if m.Ops() != 1 || m.Bytes() != 256 {
		t.Fatalf("ops=%d bytes=%d, want 1/256", m.Ops(), m.Bytes())
	}
}

func TestWeightedMeanReset(t *testing.T) {
	var m WeightedMean
	m.Add([]byte{1, 2, 3, 4})
	m.Reset()
	if m.Mean() != 0 || m.Ops() != 0 || m.Bytes() != 0 {
		t.Fatal("Reset did not clear the mean")
	}
}

func TestWeightedMeanBoundedByInputs(t *testing.T) {
	// Property: the weighted mean always lies within [min, max] of the
	// observed entropies (for operations with nonzero weight).
	f := func(chunks [][]byte) bool {
		var m WeightedMean
		lo, hi := math.Inf(1), math.Inf(-1)
		any := false
		for _, c := range chunks {
			e := m.Add(c)
			if Weight(e, len(c)) > 0 {
				any = true
				if e < lo {
					lo = e
				}
				if e > hi {
					hi = e
				}
			}
		}
		if !any {
			return m.Mean() == 0
		}
		mean := m.Mean()
		return mean >= lo-1e-9 && mean <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaTrackerRequiresBothSides(t *testing.T) {
	var d DeltaTracker
	if _, ok := d.Delta(); ok {
		t.Fatal("Delta valid with no ops")
	}
	d.AddRead([]byte("hello hello hello"))
	if _, ok := d.Delta(); ok {
		t.Fatal("Delta valid with only reads")
	}
	d.AddWrite([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	if _, ok := d.Delta(); !ok {
		t.Fatal("Delta invalid after read+write")
	}
}

func TestDeltaTrackerClampedAtZero(t *testing.T) {
	var d DeltaTracker
	// High-entropy read, low-entropy write: raw delta negative → clamp 0.
	high := make([]byte, 1024)
	for i := range high {
		high[i] = byte(i % 256)
	}
	d.AddRead(high)
	d.AddWrite(bytes.Repeat([]byte("ab"), 512))
	delta, ok := d.Delta()
	if !ok {
		t.Fatal("delta should be valid")
	}
	if delta != 0 {
		t.Fatalf("delta = %v, want clamped 0", delta)
	}
}

func TestDeltaTrackerRansomwareShape(t *testing.T) {
	// Read low-entropy plaintext, write high-entropy ciphertext: the delta
	// must comfortably exceed the paper's 0.1 threshold.
	var d DeltaTracker
	plain := bytes.Repeat([]byte("business plan for Q3, confidential. "), 200)
	cipher := make([]byte, len(plain))
	s := uint32(123456789)
	for i := range cipher {
		s = s*1664525 + 1013904223
		cipher[i] = byte(s >> 24)
	}
	d.AddRead(plain)
	d.AddWrite(cipher)
	delta, ok := d.Delta()
	if !ok || delta < 0.1 {
		t.Fatalf("delta = %v (ok=%v), want ≥ 0.1", delta, ok)
	}
}

func TestDeltaTrackerCompressedFilesSmallButDetectable(t *testing.T) {
	// The paper notes compressed files (docx/pdf) show a small entropy
	// increase when encrypted, which the 0.1 threshold still resolves
	// eventually. Simulate a ~7.6-entropy read vs 8.0-entropy write.
	var d DeltaTracker
	read := make([]byte, 64*1024)
	s := uint32(42)
	for i := range read {
		s = s*1664525 + 1013904223
		read[i] = byte(s>>24) & 0x7F // 128 symbols → entropy ≈ 7
	}
	write := make([]byte, 64*1024)
	for i := range write {
		s = s*1664525 + 1013904223
		write[i] = byte(s >> 24)
	}
	d.AddRead(read)
	d.AddWrite(write)
	delta, ok := d.Delta()
	if !ok {
		t.Fatal("delta invalid")
	}
	if delta < 0.1 {
		t.Fatalf("delta for compressed→encrypted = %v, want ≥ 0.1", delta)
	}
	if delta > 2.0 {
		t.Fatalf("delta unexpectedly large: %v", delta)
	}
}

func BenchmarkShannon64K(b *testing.B) {
	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(i * 31)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shannon(data)
	}
}

func BenchmarkWeightedMeanAdd(b *testing.B) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 7)
	}
	var m WeightedMean
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Add(data)
	}
}
