package entropy

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkShannon(b *testing.B) {
	for _, size := range []int{512, 4 << 10, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			data := make([]byte, size)
			rand.New(rand.NewSource(7)).Read(data)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Shannon(data)
			}
		})
	}
}

func BenchmarkShannonMixed(b *testing.B) {
	// Document-like content: half text, half binary — exercises the
	// frequency-table path on non-uniform data.
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(8)).Read(data[32<<10:])
	for i := 0; i < 32<<10; i++ {
		data[i] = byte('a' + i%26)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shannon(data)
	}
}
