package entropy

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkShannon(b *testing.B) {
	for _, size := range []int{512, 4 << 10, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			data := make([]byte, size)
			rand.New(rand.NewSource(7)).Read(data)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Shannon(data)
			}
		})
	}
}

// BenchmarkEntropyIncremental compares the cost of re-measuring a whole
// file's entropy after one write (the full Shannon rescan) against updating
// a maintained histogram with just the replaced byte range. The incremental
// path's cost is proportional to the write size, not the file size.
func BenchmarkEntropyIncremental(b *testing.B) {
	const fileSize = 1 << 20
	const writeSize = 16 << 10
	file := make([]byte, fileSize)
	rand.New(rand.NewSource(9)).Read(file)
	patch := make([]byte, writeSize)
	rand.New(rand.NewSource(10)).Read(patch)

	b.Run("full-rescan", func(b *testing.B) {
		b.SetBytes(fileSize)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			off := (i * writeSize) % (fileSize - writeSize)
			copy(file[off:], patch)
			Shannon(file)
		}
	})
	b.Run("histogram-update", func(b *testing.B) {
		h := HistogramOf(file)
		b.SetBytes(fileSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := (i * writeSize) % (fileSize - writeSize)
			h.Sub(file[off : off+writeSize])
			copy(file[off:], patch)
			h.Add(patch)
			h.Entropy()
		}
	})
}

func BenchmarkShannonMixed(b *testing.B) {
	// Document-like content: half text, half binary — exercises the
	// frequency-table path on non-uniform data.
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(8)).Read(data[32<<10:])
	for i := 0; i < 32<<10; i++ {
		data[i] = byte('a' + i%26)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shannon(data)
	}
}
