// Package entropy implements the Shannon-entropy primitives CryptoDrop uses
// to score filesystem read and write operations.
//
// The paper ("CryptoLock (and Drop It)", ICDCS 2016, §III-C and §IV-C1)
// computes the Shannon entropy of every atomic read/write and folds it into a
// weighted arithmetic mean per process, with weight
//
//	w = 0.125 × ⌊e⌉ × b
//
// where b is the number of bytes in the operation and ⌊e⌉ is the entropy
// rounded to the nearest integer. The 0.125 constant normalises the 0–8
// entropy range to 0–1, so small and low-entropy operations (such as
// ransom-note drops) do not over-influence the mean.
package entropy

import (
	"math"
	"sync"
)

// MaxEntropy is the maximum Shannon entropy of a byte stream, reached when
// all 256 byte values are equally likely.
const MaxEntropy = 8.0

// freqPool recycles byte-frequency histograms across Shannon calls. The
// engine measures entropy on every read and write of every scored process,
// so the histogram is the single hottest allocation site of the detection
// path; reusing tables keeps the hot loop allocation-free no matter how
// the compiler's escape analysis treats a local array.
var freqPool = sync.Pool{New: func() any { return new([256]int) }}

// flogTabSize bounds the precomputed f·log2(f) table. Frequencies at or
// above the bound (only possible for payloads ≥ flogTabSize bytes, and then
// for at most a handful of byte values) fall back to math.Log2.
const flogTabSize = 4096

// flogTab[f] = f·log2(f), the per-frequency term of the entropy sum.
var flogTab = func() *[flogTabSize]float64 {
	var t [flogTabSize]float64
	for f := 2; f < flogTabSize; f++ {
		t[f] = float64(f) * math.Log2(float64(f))
	}
	return &t
}()

// Shannon returns the Shannon entropy of data in bits per byte, a value in
// [0, 8]. An empty slice has zero entropy.
func Shannon(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	freq := freqPool.Get().(*[256]int)
	clear(freq[:])
	for _, b := range data {
		freq[b]++
	}
	e := shannonFromFreq(freq, len(data))
	freqPool.Put(freq)
	return e
}

// shannonFromFreq computes H = log2(n) − (Σ f·log2 f)/n, the frequency
// form of the Shannon sum: it needs one logarithm per distinct byte value
// (table-served for small frequencies) instead of one division and one
// logarithm per probability.
func shannonFromFreq(freq *[256]int, total int) float64 {
	var s float64
	for _, f := range freq {
		if f > 1 {
			if f < flogTabSize {
				s += flogTab[f]
			} else {
				s += float64(f) * math.Log2(float64(f))
			}
		}
	}
	return math.Log2(float64(total)) - s/float64(total)
}

// Histogram is an updatable byte-frequency histogram supporting streaming
// Shannon-entropy maintenance: instead of rescanning a whole file after
// every write, callers fold only the replaced byte range in and out
// (Sub the overwritten bytes, Add the new ones) and read Entropy in O(256).
//
// Entropy is computed from the counts by exactly the same frequency-form
// sum Shannon uses, so a histogram whose counts match a byte slice yields
// the bit-identical float64 Shannon would return for that slice. The zero
// value is an empty histogram, ready to use.
type Histogram struct {
	freq  [256]int
	total int
}

// HistogramOf returns the byte-frequency histogram of data.
func HistogramOf(data []byte) *Histogram {
	h := new(Histogram)
	h.Add(data)
	return h
}

// Add folds data's byte counts into the histogram.
func (h *Histogram) Add(data []byte) {
	for _, b := range data {
		h.freq[b]++
	}
	h.total += len(data)
}

// Sub removes data's byte counts from the histogram. Subtracting bytes that
// were never added leaves negative counts; Valid reports that corruption.
func (h *Histogram) Sub(data []byte) {
	for _, b := range data {
		h.freq[b]--
	}
	h.total -= len(data)
}

// Total returns the number of bytes currently folded in — for a histogram
// tracking a file's content, the file size it believes.
func (h *Histogram) Total() int { return h.total }

// Valid reports whether every bucket is non-negative. A false result means
// Sub removed bytes that were never added: the tracked content diverged
// from the update stream and the histogram must be rebuilt.
func (h *Histogram) Valid() bool {
	if h.total < 0 {
		return false
	}
	for _, f := range h.freq {
		if f < 0 {
			return false
		}
	}
	return true
}

// Entropy returns the Shannon entropy of the tracked counts in bits per
// byte — bit-identical to Shannon over a byte slice with the same counts.
func (h *Histogram) Entropy() float64 {
	if h.total <= 0 {
		return 0
	}
	return shannonFromFreq(&h.freq, h.total)
}

// Clone returns an independent copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := *h
	return &c
}

// Reset clears the histogram back to empty.
func (h *Histogram) Reset() { *h = Histogram{} }

// Weight returns the paper's operation weight w = 0.125 × ⌊e⌉ × b for an
// operation of b bytes whose payload entropy is e. The ⌊e⌉ notation in the
// paper is entropy rounded to the nearest integer.
func Weight(e float64, b int) float64 {
	if b <= 0 {
		return 0
	}
	return 0.125 * math.Round(e) * float64(b)
}

// WeightedMean maintains the weighted arithmetic mean of a stream of entropy
// measurements using the paper's weighting. The zero value is ready to use.
type WeightedMean struct {
	sumWeighted float64 // Σ w_i × e_i
	sumWeights  float64 // Σ w_i
	ops         int
	bytes       int64
	unweighted  bool
}

// SetUnweighted switches the mean to plain byte-weighted averaging (w = b),
// dropping the paper's entropy-rounding factor. This exists for the ablation
// study showing why the weighting matters against ransom-note writes.
func (m *WeightedMean) SetUnweighted(u bool) { m.unweighted = u }

// Add folds one operation's payload into the mean and returns the entropy of
// the payload.
func (m *WeightedMean) Add(data []byte) float64 {
	e := Shannon(data)
	m.AddMeasurement(e, len(data))
	return e
}

// AddMeasurement folds a pre-computed entropy measurement for an operation of
// b bytes into the mean.
func (m *WeightedMean) AddMeasurement(e float64, b int) {
	w := Weight(e, b)
	if m.unweighted && b > 0 {
		w = float64(b)
	}
	m.sumWeighted += w * e
	m.sumWeights += w
	m.ops++
	m.bytes += int64(b)
}

// Mean returns the current weighted mean, or 0 if no weighted operations have
// been observed (all operations so far carried zero weight).
func (m *WeightedMean) Mean() float64 {
	if m.sumWeights == 0 {
		return 0
	}
	return m.sumWeighted / m.sumWeights
}

// Ops returns the number of operations folded into the mean, including
// zero-weight operations.
func (m *WeightedMean) Ops() int { return m.ops }

// Bytes returns the total payload bytes observed.
func (m *WeightedMean) Bytes() int64 { return m.bytes }

// Reset clears the mean back to its zero state.
func (m *WeightedMean) Reset() { *m = WeightedMean{} }

// DeltaTracker tracks the paper's per-process read/write entropy delta
//
//	Δe = P̄write − P̄read, Δe ≥ 0
//
// The delta is meaningful only once the process has performed at least one
// read and one write (§IV-C1). The zero value is ready to use.
type DeltaTracker struct {
	read  WeightedMean
	write WeightedMean
}

// SetUnweighted switches both means to plain byte weighting (ablation).
func (t *DeltaTracker) SetUnweighted(u bool) {
	t.read.SetUnweighted(u)
	t.write.SetUnweighted(u)
}

// AddRead folds a read payload into the read mean and returns its entropy.
func (t *DeltaTracker) AddRead(data []byte) float64 { return t.read.Add(data) }

// AddWrite folds a write payload into the write mean and returns its entropy.
func (t *DeltaTracker) AddWrite(data []byte) float64 { return t.write.Add(data) }

// Delta returns Δe = P̄write − P̄read clamped at zero, and whether the delta
// is valid (at least one read and one write observed).
func (t *DeltaTracker) Delta() (delta float64, ok bool) {
	if t.read.Ops() == 0 || t.write.Ops() == 0 {
		return 0, false
	}
	d := t.write.Mean() - t.read.Mean()
	if d < 0 {
		d = 0
	}
	return d, true
}

// ReadMean returns the current weighted mean of read entropies.
func (t *DeltaTracker) ReadMean() float64 { return t.read.Mean() }

// WriteMean returns the current weighted mean of write entropies.
func (t *DeltaTracker) WriteMean() float64 { return t.write.Mean() }

// Reads returns the number of read operations observed.
func (t *DeltaTracker) Reads() int { return t.read.Ops() }

// Writes returns the number of write operations observed.
func (t *DeltaTracker) Writes() int { return t.write.Ops() }

// MeanState is the complete internal state of a WeightedMean, exposed for
// the snapshot/restore contract. The float fields must travel as exact bit
// patterns: the mean is a quotient of running sums, and restoring rounded
// values would make post-restore scores diverge from an uninterrupted run.
type MeanState struct {
	SumWeighted float64
	SumWeights  float64
	Ops         int
	Bytes       int64
	Unweighted  bool
}

// State captures the mean's internal state for serialization.
func (m *WeightedMean) State() MeanState {
	return MeanState{
		SumWeighted: m.sumWeighted,
		SumWeights:  m.sumWeights,
		Ops:         m.ops,
		Bytes:       m.bytes,
		Unweighted:  m.unweighted,
	}
}

// SetState overwrites the mean's internal state from a captured snapshot.
func (m *WeightedMean) SetState(s MeanState) {
	m.sumWeighted = s.SumWeighted
	m.sumWeights = s.SumWeights
	m.ops = s.Ops
	m.bytes = s.Bytes
	m.unweighted = s.Unweighted
}

// State captures both means for serialization: read first, then write.
func (t *DeltaTracker) State() (read, write MeanState) {
	return t.read.State(), t.write.State()
}

// SetState overwrites both means from a captured snapshot.
func (t *DeltaTracker) SetState(read, write MeanState) {
	t.read.SetState(read)
	t.write.SetState(write)
}

// Counts returns the histogram's bucket counts and total for serialization.
// The returned array is a copy.
func (h *Histogram) Counts() (freq [256]int, total int) {
	return h.freq, h.total
}

// SetCounts overwrites the histogram's buckets and total from a captured
// snapshot.
func (h *Histogram) SetCounts(freq [256]int, total int) {
	h.freq = freq
	h.total = total
}
