package entropy_test

import (
	"bytes"
	"fmt"

	"cryptodrop/internal/entropy"
)

// ExampleDeltaTracker demonstrates the paper's Δe measurement: a process
// reading plaintext and writing ciphertext quickly exceeds the 0.1
// suspicion threshold, and tiny low-entropy ransom notes cannot mask it.
func ExampleDeltaTracker() {
	var d entropy.DeltaTracker

	plaintext := bytes.Repeat([]byte("the user's important document text. "), 500)
	ciphertext := make([]byte, len(plaintext))
	state := uint64(99)
	for i := range ciphertext {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		ciphertext[i] = byte(state)
	}

	d.AddRead(plaintext)
	d.AddWrite(ciphertext)
	// A flood of small low-entropy ransom notes: weight ≈ 0.
	note := bytes.Repeat([]byte{'!'}, 64)
	for i := 0; i < 100; i++ {
		d.AddWrite(note)
	}

	delta, ok := d.Delta()
	fmt.Println("delta valid:", ok)
	fmt.Println("suspicious (Δe ≥ 0.1):", delta >= 0.1)
	// Output:
	// delta valid: true
	// suspicious (Δe ≥ 0.1): true
}
