package filter

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/vfs"
)

// TestConcurrentDispatchAndMutation hammers PreOp/PostOp dispatch while
// other goroutines attach and detach filters: dispatch must never block on a
// chain-wide lock, never observe a half-built entry list, and always run a
// consistent snapshot of the chain (the regression this guards against is
// holding Chain.mu across filter callbacks).
func TestConcurrentDispatchAndMutation(t *testing.T) {
	var c Chain
	var calls atomic.Int64
	mk := func(name string) *Func {
		return &Func{
			FilterName: name,
			Pre:        func(op *vfs.Op) error { calls.Add(1); return nil },
			Post:       func(op *vfs.Op) { calls.Add(1) },
		}
	}
	if err := c.Attach(100, mk("base")); err != nil {
		t.Fatal(err)
	}

	const dispatchers = 4
	const mutators = 3
	const rounds = 2000
	var dispatchWG, mutateWG sync.WaitGroup
	stop := make(chan struct{})
	for d := 0; d < dispatchers; d++ {
		dispatchWG.Add(1)
		go func() {
			defer dispatchWG.Done()
			op := &vfs.Op{Kind: vfs.OpWrite, Path: "/x"}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := c.PreOp(op); err != nil {
					t.Errorf("unexpected veto: %v", err)
					return
				}
				c.PostOp(op)
			}
		}()
	}
	for m := 0; m < mutators; m++ {
		mutateWG.Add(1)
		go func(m int) {
			defer mutateWG.Done()
			alt := 200 + m
			name := fmt.Sprintf("mut-%d", m)
			for i := 0; i < rounds; i++ {
				if err := c.Attach(alt, mk(name)); err != nil {
					t.Errorf("attach: %v", err)
					return
				}
				if !c.Detach(name) {
					t.Errorf("detach %s failed", name)
					return
				}
			}
		}(m)
	}
	mutateWG.Wait() // mutators done; dispatchers still running
	close(stop)
	dispatchWG.Wait()
	if got := c.Filters(); len(got) != 1 || got[0] != "base" {
		t.Fatalf("final chain = %v, want [base]", got)
	}
	if calls.Load() == 0 {
		t.Fatal("no dispatches ran")
	}
}

// TestReentrantMutationFromCallback verifies a filter callback may attach
// and detach filters on its own chain — impossible if dispatch held the
// chain lock across the call.
func TestReentrantMutationFromCallback(t *testing.T) {
	var c Chain
	inner := &Func{FilterName: "inner"}
	outer := &Func{
		FilterName: "outer",
		Pre: func(op *vfs.Op) error {
			if err := c.Attach(50, inner); err != nil {
				return fmt.Errorf("reentrant attach: %w", err)
			}
			return nil
		},
		Post: func(op *vfs.Op) { c.Detach("inner") },
	}
	if err := c.Attach(100, outer); err != nil {
		t.Fatal(err)
	}
	op := &vfs.Op{Kind: vfs.OpWrite, Path: "/x"}
	if err := c.PreOp(op); err != nil {
		t.Fatal(err)
	}
	if got := c.Filters(); len(got) != 2 {
		t.Fatalf("after reentrant attach: %v", got)
	}
	c.PostOp(op)
	if got := c.Filters(); len(got) != 1 || got[0] != "outer" {
		t.Fatalf("after reentrant detach: %v", got)
	}
}

// TestDispatchSnapshotSemantics: an operation dispatching concurrently with
// a detach either sees the filter or doesn't — but a PreOp that saw it gets
// the matching PostOp set (its own snapshot), never a torn view.
func TestDispatchSnapshotSemantics(t *testing.T) {
	var c Chain
	if err := c.Attach(10, &Func{FilterName: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(20, &Func{FilterName: "b"}); err != nil {
		t.Fatal(err)
	}
	// Capture the snapshot; mutate; the captured slice is unchanged.
	before := c.load()
	c.Detach("a")
	if len(before) != 2 {
		t.Fatalf("snapshot mutated: %d entries", len(before))
	}
	if got := c.Filters(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("chain after detach = %v", got)
	}
}

// TestVetoTelemetry checks per-filter veto counters and latency histograms
// accumulate under dispatch.
func TestVetoTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	var c Chain
	c.SetTelemetry(reg)
	boom := errors.New("denied")
	if err := c.Attach(100, &Func{FilterName: "av", Pre: func(op *vfs.Op) error { return boom }}); err != nil {
		t.Fatal(err)
	}
	op := &vfs.Op{Kind: vfs.OpWrite, Path: "/x"}
	err := c.PreOp(op)
	if !errors.Is(err, boom) {
		t.Fatalf("veto not propagated: %v", err)
	}
	if !strings.Contains(err.Error(), `"av"`) {
		t.Fatalf("veto error does not name the filter: %v", err)
	}
	if got := reg.Counter(`filter_vetoes_total{filter="av"}`).Value(); got != 1 {
		t.Fatalf("veto counter = %d, want 1", got)
	}
	if got := reg.Histogram(`filter_pre_seconds{filter="av"}`, nil).Count(); got != 1 {
		t.Fatalf("pre latency count = %d, want 1", got)
	}
}
