package filter

import (
	"errors"
	"testing"

	"cryptodrop/internal/vfs"
)

func TestAttachOrdering(t *testing.T) {
	var c Chain
	var order []string
	mk := func(name string) *Func {
		return &Func{
			FilterName: name,
			Pre:        func(op *vfs.Op) error { order = append(order, "pre:"+name); return nil },
			Post:       func(op *vfs.Op) { order = append(order, "post:"+name) },
		}
	}
	if err := c.Attach(100, mk("low")); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(300, mk("high")); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(200, mk("mid")); err != nil {
		t.Fatal(err)
	}

	op := &vfs.Op{Kind: vfs.OpWrite}
	if err := c.PreOp(op); err != nil {
		t.Fatal(err)
	}
	c.PostOp(op)

	want := []string{"pre:high", "pre:mid", "pre:low", "post:low", "post:mid", "post:high"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAttachDuplicateAltitude(t *testing.T) {
	var c Chain
	if err := c.Attach(100, &Func{FilterName: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(100, &Func{FilterName: "b"}); err == nil {
		t.Fatal("duplicate altitude accepted")
	}
}

func TestVetoStopsChain(t *testing.T) {
	var c Chain
	denied := errors.New("denied")
	reachedLower := false
	if err := c.Attach(200, &Func{FilterName: "blocker", Pre: func(op *vfs.Op) error { return denied }}); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(100, &Func{FilterName: "lower", Pre: func(op *vfs.Op) error { reachedLower = true; return nil }}); err != nil {
		t.Fatal(err)
	}
	err := c.PreOp(&vfs.Op{Kind: vfs.OpDelete})
	if !errors.Is(err, denied) {
		t.Fatalf("err = %v, want wrapped veto", err)
	}
	if reachedLower {
		t.Fatal("lower filter ran after veto")
	}
}

func TestDetach(t *testing.T) {
	var c Chain
	if err := c.Attach(100, &Func{FilterName: "a"}); err != nil {
		t.Fatal(err)
	}
	if !c.Detach("a") {
		t.Fatal("Detach returned false")
	}
	if c.Detach("a") {
		t.Fatal("second Detach returned true")
	}
	if got := c.Filters(); len(got) != 0 {
		t.Fatalf("Filters = %v, want empty", got)
	}
}

func TestChainAsInterceptor(t *testing.T) {
	// The chain attaches to a live VFS and observes the op stream.
	fs := vfs.New()
	var c Chain
	var seen []vfs.OpKind
	if err := c.Attach(250, &Func{FilterName: "observer", Post: func(op *vfs.Op) {
		seen = append(seen, op.Kind)
	}}); err != nil {
		t.Fatal(err)
	}
	fs.SetInterceptor(&c)
	if err := fs.WriteFile(1, "/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 { // create, write, close
		t.Fatalf("observed ops = %v, want 3", seen)
	}
}

func TestOrderIndependenceForObservers(t *testing.T) {
	// The paper notes CryptoDrop's placement among other filter drivers
	// does not affect it. Two pure observers must record identical
	// streams regardless of relative altitude.
	run := func(observerAltitude int) []vfs.OpKind {
		fs := vfs.New()
		var c Chain
		var seen []vfs.OpKind
		if err := c.Attach(observerAltitude, &Func{FilterName: "cryptodrop", Post: func(op *vfs.Op) {
			seen = append(seen, op.Kind)
		}}); err != nil {
			t.Fatal(err)
		}
		if err := c.Attach(200, &Func{FilterName: "antivirus"}); err != nil {
			t.Fatal(err)
		}
		fs.SetInterceptor(&c)
		if err := fs.WriteFile(1, "/doc", []byte("hello")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Delete(1, "/doc"); err != nil {
			t.Fatal(err)
		}
		return seen
	}
	above := run(300)
	below := run(100)
	if len(above) != len(below) {
		t.Fatalf("streams differ: %v vs %v", above, below)
	}
	for i := range above {
		if above[i] != below[i] {
			t.Fatalf("streams differ: %v vs %v", above, below)
		}
	}
}

func TestFiltersListsDescendingAltitude(t *testing.T) {
	var c Chain
	if err := c.Attach(10, &Func{FilterName: "bottom"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(999, &Func{FilterName: "top"}); err != nil {
		t.Fatal(err)
	}
	got := c.Filters()
	if len(got) != 2 || got[0] != "top" || got[1] != "bottom" {
		t.Fatalf("Filters = %v", got)
	}
}
