// Package filter implements a filesystem minifilter chain, substituting for
// the Windows filter-manager stack the paper's kernel driver attaches to
// (Fig. 2). Filters are ordered by altitude like Windows minifilters, but —
// as the paper notes — CryptoDrop's behaviour does not depend on its position
// relative to other filters (e.g. anti-virus), which the tests verify.
package filter

import (
	"fmt"
	"sort"
	"sync"

	"cryptodrop/internal/vfs"
)

// Filter is one minifilter in the chain.
type Filter interface {
	// Name identifies the filter (e.g. "cryptodrop", "antivirus").
	Name() string
	// PreOp is called before the operation executes, in descending
	// altitude order. Returning a non-nil error vetoes the operation.
	PreOp(op *vfs.Op) error
	// PostOp is called after the operation completes, in ascending
	// altitude order.
	PostOp(op *vfs.Op)
}

// Chain is an ordered stack of filters that implements vfs.Interceptor.
// The zero value is an empty, usable chain.
type Chain struct {
	mu      sync.Mutex
	entries []entry
}

type entry struct {
	altitude int
	filter   Filter
}

var _ vfs.Interceptor = (*Chain)(nil)

// Attach inserts a filter at the given altitude. Higher altitudes see
// operations first on the way down (PreOp) and last on the way up (PostOp).
// Attaching two filters at the same altitude is an error.
func (c *Chain) Attach(altitude int, f Filter) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if e.altitude == altitude {
			return fmt.Errorf("filter: altitude %d already occupied by %q", altitude, e.filter.Name())
		}
	}
	c.entries = append(c.entries, entry{altitude: altitude, filter: f})
	sort.Slice(c.entries, func(i, j int) bool { return c.entries[i].altitude > c.entries[j].altitude })
	return nil
}

// Detach removes the filter with the given name. It reports whether a
// filter was removed.
func (c *Chain) Detach(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.entries {
		if e.filter.Name() == name {
			c.entries = append(c.entries[:i], c.entries[i+1:]...)
			return true
		}
	}
	return false
}

// Filters returns the attached filter names in descending altitude order.
func (c *Chain) Filters() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, len(c.entries))
	for i, e := range c.entries {
		names[i] = e.filter.Name()
	}
	return names
}

// snapshot returns the current entries; callbacks run without the lock so
// filters may attach/detach reentrantly.
func (c *Chain) snapshot() []entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]entry, len(c.entries))
	copy(out, c.entries)
	return out
}

// PreOp runs every filter's PreOp in descending altitude order, stopping at
// the first veto.
func (c *Chain) PreOp(op *vfs.Op) error {
	for _, e := range c.snapshot() {
		if err := e.filter.PreOp(op); err != nil {
			return fmt.Errorf("filter %q: %w", e.filter.Name(), err)
		}
	}
	return nil
}

// PostOp runs every filter's PostOp in ascending altitude order.
func (c *Chain) PostOp(op *vfs.Op) {
	entries := c.snapshot()
	for i := len(entries) - 1; i >= 0; i-- {
		entries[i].filter.PostOp(op)
	}
}

// Func adapts plain functions into a Filter, for tests and simple hooks.
type Func struct {
	// FilterName is returned by Name.
	FilterName string
	// Pre, if non-nil, handles PreOp.
	Pre func(op *vfs.Op) error
	// Post, if non-nil, handles PostOp.
	Post func(op *vfs.Op)
}

var _ Filter = (*Func)(nil)

// Name returns the filter name.
func (f *Func) Name() string { return f.FilterName }

// PreOp invokes Pre when set.
func (f *Func) PreOp(op *vfs.Op) error {
	if f.Pre == nil {
		return nil
	}
	return f.Pre(op)
}

// PostOp invokes Post when set.
func (f *Func) PostOp(op *vfs.Op) {
	if f.Post == nil {
		return
	}
	f.Post(op)
}
