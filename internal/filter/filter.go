// Package filter implements a filesystem minifilter chain, substituting for
// the Windows filter-manager stack the paper's kernel driver attaches to
// (Fig. 2). Filters are ordered by altitude like Windows minifilters, but —
// as the paper notes — CryptoDrop's behaviour does not depend on its position
// relative to other filters (e.g. anti-virus), which the tests verify.
//
// The detection engine is not itself a Filter: internal/vfsadapter wraps it,
// translating each vfs.Op callback into the engine's backend-neutral
// core.Event model. The chain only ever sees that thin adapter.
package filter

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/vfs"
)

// Filter is one minifilter in the chain.
type Filter interface {
	// Name identifies the filter (e.g. "cryptodrop", "antivirus").
	Name() string
	// PreOp is called before the operation executes, in descending
	// altitude order. Returning a non-nil error vetoes the operation.
	PreOp(op *vfs.Op) error
	// PostOp is called after the operation completes, in ascending
	// altitude order.
	PostOp(op *vfs.Op)
}

// Chain is an ordered stack of filters that implements vfs.Interceptor.
// The zero value is an empty, usable chain.
//
// The entry list is copy-on-write: Attach and Detach build a fresh slice
// under a mutex and publish it with one atomic store, while PreOp/PostOp
// dispatch reads the current slice with one atomic load. Concurrent
// operations therefore never serialise on a chain-wide lock, and a filter
// callback may attach or detach filters reentrantly.
type Chain struct {
	// mu serialises mutations (Attach/Detach/SetTelemetry) only; dispatch
	// never takes it.
	mu      sync.Mutex
	entries atomic.Pointer[[]entry]
	tel     *telemetry.Registry
}

type entry struct {
	altitude int
	filter   Filter
	// preLat/postLat/vetoes are per-filter telemetry handles; nil when
	// telemetry is off, in which case dispatch skips all timing.
	preLat  *telemetry.Histogram
	postLat *telemetry.Histogram
	vetoes  *telemetry.Counter
}

var _ vfs.Interceptor = (*Chain)(nil)

// load returns the published entry slice (nil for an empty chain).
func (c *Chain) load() []entry {
	if p := c.entries.Load(); p != nil {
		return *p
	}
	return nil
}

// instrument fills an entry's telemetry handles; c.mu held.
func (c *Chain) instrument(e *entry) {
	if c.tel == nil {
		return
	}
	label := `{filter="` + e.filter.Name() + `"}`
	e.preLat = c.tel.Histogram("filter_pre_seconds"+label, telemetry.DefaultLatencyBuckets())
	e.postLat = c.tel.Histogram("filter_post_seconds"+label, telemetry.DefaultLatencyBuckets())
	e.vetoes = c.tel.Counter("filter_vetoes_total" + label)
}

// SetTelemetry attaches a registry recording per-filter PreOp/PostOp
// latency histograms and veto counts for every current and future filter.
// Passing nil detaches it. Dispatch with telemetry off costs one nil-check
// per filter.
func (c *Chain) SetTelemetry(reg *telemetry.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tel = reg
	old := c.load()
	next := make([]entry, len(old))
	copy(next, old)
	for i := range next {
		next[i].preLat, next[i].postLat, next[i].vetoes = nil, nil, nil
		c.instrument(&next[i])
	}
	c.entries.Store(&next)
}

// Attach inserts a filter at the given altitude. Higher altitudes see
// operations first on the way down (PreOp) and last on the way up (PostOp).
// Attaching two filters at the same altitude is an error.
func (c *Chain) Attach(altitude int, f Filter) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.load()
	for _, e := range old {
		if e.altitude == altitude {
			return fmt.Errorf("filter: altitude %d already occupied by %q", altitude, e.filter.Name())
		}
	}
	next := make([]entry, len(old), len(old)+1)
	copy(next, old)
	en := entry{altitude: altitude, filter: f}
	c.instrument(&en)
	next = append(next, en)
	sort.Slice(next, func(i, j int) bool { return next[i].altitude > next[j].altitude })
	c.entries.Store(&next)
	return nil
}

// Detach removes the filter with the given name. It reports whether a
// filter was removed.
func (c *Chain) Detach(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.load()
	for i, e := range old {
		if e.filter.Name() == name {
			next := make([]entry, 0, len(old)-1)
			next = append(next, old[:i]...)
			next = append(next, old[i+1:]...)
			c.entries.Store(&next)
			return true
		}
	}
	return false
}

// Filters returns the attached filter names in descending altitude order.
func (c *Chain) Filters() []string {
	entries := c.load()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.filter.Name()
	}
	return names
}

// PreOp runs every filter's PreOp in descending altitude order, stopping at
// the first veto. Dispatch is lock-free: it reads the entry list published
// by the most recent Attach/Detach, so a concurrent mutation affects only
// operations that start after it.
func (c *Chain) PreOp(op *vfs.Op) error {
	entries := c.load()
	for i := range entries {
		e := &entries[i]
		var err error
		if e.preLat != nil {
			t0 := time.Now()
			err = e.filter.PreOp(op)
			e.preLat.ObserveDuration(time.Since(t0))
		} else {
			err = e.filter.PreOp(op)
		}
		if err != nil {
			e.vetoes.Inc()
			return fmt.Errorf("filter %q: %w", e.filter.Name(), err)
		}
	}
	return nil
}

// PostOp runs every filter's PostOp in ascending altitude order.
func (c *Chain) PostOp(op *vfs.Op) {
	entries := c.load()
	for i := len(entries) - 1; i >= 0; i-- {
		e := &entries[i]
		if e.postLat != nil {
			t0 := time.Now()
			e.filter.PostOp(op)
			e.postLat.ObserveDuration(time.Since(t0))
		} else {
			e.filter.PostOp(op)
		}
	}
}

// Func adapts plain functions into a Filter, for tests and simple hooks.
type Func struct {
	// FilterName is returned by Name.
	FilterName string
	// Pre, if non-nil, handles PreOp.
	Pre func(op *vfs.Op) error
	// Post, if non-nil, handles PostOp.
	Post func(op *vfs.Op)
}

var _ Filter = (*Func)(nil)

// Name returns the filter name.
func (f *Func) Name() string { return f.FilterName }

// PreOp invokes Pre when set.
func (f *Func) PreOp(op *vfs.Op) error {
	if f.Pre == nil {
		return nil
	}
	return f.Pre(op)
}

// PostOp invokes Post when set.
func (f *Func) PostOp(op *vfs.Op) {
	if f.Post == nil {
		return
	}
	f.Post(op)
}
