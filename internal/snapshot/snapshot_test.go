package snapshot

import (
	"errors"
	"math"
	"testing"
)

// TestEncodeDecodeRoundTrip drives every primitive through an
// encode/decode cycle, including the float bit patterns the scoring state
// depends on (negative zero, infinities, NaN payloads, subnormals).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	floats := []float64{
		0, math.Copysign(0, -1), 1.5, -200.25, math.Inf(1), math.Inf(-1),
		math.SmallestNonzeroFloat64, math.MaxFloat64, 0.1, 7.999999999,
	}
	e := NewEncoder()
	e.Uvarint(0)
	e.Uvarint(1<<63 + 17)
	e.Varint(-1)
	e.Varint(1 << 40)
	for _, f := range floats {
		e.F64(f)
	}
	e.F64(math.NaN())
	e.Bool(true)
	e.Bool(false)
	e.String("")
	e.String("reg1-deadbeef")
	e.Bytes(nil)
	e.Bytes([]byte{0, 1, 2, 255})

	d := NewDecoder(e.Data())
	if got := d.Uvarint(); got != 0 {
		t.Fatalf("uvarint: got %d", got)
	}
	if got := d.Uvarint(); got != 1<<63+17 {
		t.Fatalf("uvarint: got %d", got)
	}
	if got := d.Varint(); got != -1 {
		t.Fatalf("varint: got %d", got)
	}
	if got := d.Varint(); got != 1<<40 {
		t.Fatalf("varint: got %d", got)
	}
	for i, want := range floats {
		got := d.F64()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("float %d: got %x want %x", i, math.Float64bits(got), math.Float64bits(want))
		}
	}
	if got := d.F64(); !math.IsNaN(got) {
		t.Fatalf("NaN did not round-trip: %v", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bools did not round-trip")
	}
	if got := d.String(); got != "" {
		t.Fatalf("empty string: got %q", got)
	}
	if got := d.String(); got != "reg1-deadbeef" {
		t.Fatalf("string: got %q", got)
	}
	if got := d.Bytes(); len(got) != 0 {
		t.Fatalf("nil bytes: got %v", got)
	}
	if got := d.Bytes(); string(got) != string([]byte{0, 1, 2, 255}) {
		t.Fatalf("bytes: got %v", got)
	}
	if d.Err() != nil {
		t.Fatalf("decode error: %v", d.Err())
	}
	if d.Len() != 0 {
		t.Fatalf("%d bytes left over", d.Len())
	}
}

// TestEncodingDeterministic pins that encoding the same values twice
// yields the same bytes — the property the bit-identical recovery proof
// rests on.
func TestEncodingDeterministic(t *testing.T) {
	build := func() []byte {
		e := NewEncoder()
		e.Varint(42)
		e.F64(199.5)
		e.String("session")
		e.Bytes([]byte("payload"))
		return Seal(Header{Version: 1, Registry: "reg1-1", Config: "cfg1-2"}, e.Data())
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Fatal("two identical encodings differ")
	}
}

// TestSealOpenRoundTrip checks the envelope carries header and payload
// through intact.
func TestSealOpenRoundTrip(t *testing.T) {
	h := Header{Version: 3, Registry: "reg1-0011223344556677", Config: "cfg1-8899aabbccddeeff"}
	payload := []byte("engine state goes here")
	blob := Seal(h, payload)
	got, body, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header: got %+v want %+v", got, h)
	}
	if string(body) != string(payload) {
		t.Fatalf("payload: got %q", body)
	}
}

// TestOpenRejectsCorruption flips, truncates and mangles sealed snapshots
// and requires a typed ErrCorrupt — never a panic, never a silent success.
func TestOpenRejectsCorruption(t *testing.T) {
	blob := Seal(Header{Version: 1, Registry: "reg1-a", Config: "cfg1-b"}, []byte("state"))
	cases := map[string][]byte{
		"empty":      {},
		"short":      blob[:3],
		"bad magic":  append([]byte("XXXX"), blob[4:]...),
		"no payload": blob[:len(magic)+2],
		"truncated":  blob[:len(blob)-3],
		"trailing":   append(append([]byte{}, blob...), 0xFF),
	}
	for i := range blob {
		// Flip one bit at every position; each must fail the checksum (or
		// the magic check for the leading bytes).
		mut := append([]byte{}, blob...)
		mut[i] ^= 0x40
		cases["bitflip"] = mut
		for name, data := range cases {
			if _, _, err := Open(data); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s (i=%d): got %v, want ErrCorrupt", name, i, err)
			}
		}
		delete(cases, "bitflip")
	}
}

// TestHeaderCheck covers the three verification outcomes: version skew,
// registry drift, config drift — each with its own typed error.
func TestHeaderCheck(t *testing.T) {
	want := Header{Version: 1, Registry: "reg1-a", Config: "cfg1-b"}
	if err := (Header{Version: 2, Registry: "reg1-a", Config: "cfg1-b"}).Check(want); !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew: got %v", err)
	}
	err := Header{Version: 1, Registry: "reg1-OTHER", Config: "cfg1-b"}.Check(want)
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("registry drift: got %v", err)
	}
	var me *MismatchError
	if !errors.As(err, &me) || me.Field != "registry" {
		t.Fatalf("registry drift: got %#v", err)
	}
	err = Header{Version: 1, Registry: "reg1-a", Config: "cfg1-OTHER"}.Check(want)
	if !errors.As(err, &me) || me.Field != "config" {
		t.Fatalf("config drift: got %v", err)
	}
	if err := want.Check(want); err != nil {
		t.Fatalf("matching header rejected: %v", err)
	}
}

// TestDecoderStickyAndBounded pins the two hardening properties: errors
// are sticky (reads after a failure return zero values) and hostile length
// fields cannot demand more bytes than the payload holds.
func TestDecoderStickyAndBounded(t *testing.T) {
	// A length prefix claiming 2^60 bytes over a 3-byte payload.
	e := NewEncoder()
	e.Uvarint(1 << 60)
	d := NewDecoder(append(e.Data(), "abc"...))
	if got := d.Bytes(); got != nil {
		t.Fatalf("oversized bytes: got %v", got)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("oversized bytes: err %v", d.Err())
	}
	// Sticky: everything after the failure is a zero value, no panic.
	if d.Uvarint() != 0 || d.Varint() != 0 || d.F64() != 0 || d.Bool() || d.String() != "" {
		t.Fatal("reads after failure returned non-zero values")
	}

	// Count guard: element counts beyond the remaining bytes are rejected.
	e2 := NewEncoder()
	e2.Uvarint(1000)
	d2 := NewDecoder(e2.Data())
	if d2.Count() != 0 || !errors.Is(d2.Err(), ErrCorrupt) {
		t.Fatalf("oversized count accepted: %v", d2.Err())
	}

	// Invalid bool byte.
	d3 := NewDecoder([]byte{7})
	if d3.Bool() || !errors.Is(d3.Err(), ErrCorrupt) {
		t.Fatalf("bool byte 7 accepted: %v", d3.Err())
	}
}
