// Package snapshot is the serialization seam of the durable-session
// contract: a canonical, deterministic binary encoding plus a sealed
// envelope that carries the identity of the pipeline that produced a
// snapshot (format version, indicator-registry fingerprint, engine-config
// hash) and an integrity checksum over the whole blob.
//
// Determinism is a hard requirement, not a nicety: the recovery conformance
// suites prove that checkpoint + write-ahead-log replay reproduces
// scoreboards, detections and flight traces bit for bit, and that proof
// only holds if encoding the same state twice yields the same bytes.
// Callers therefore iterate maps in sorted key order and floats travel as
// their exact IEEE-754 bit patterns (math.Float64bits), never through a
// decimal formatter.
//
// The envelope protects restore against the two silent-drift failure
// modes:
//
//   - corruption (truncated file, torn write, flipped bit) is caught by the
//     FNV-64a checksum and surfaces as ErrCorrupt;
//   - a snapshot from a differently-shaped pipeline (other indicator
//     registry, other scoring config, other format version) is caught by
//     the header fingerprints and surfaces as ErrMismatch/ErrVersion
//     before a single byte of state is installed.
//
// Decoding never panics on hostile input: every length is validated
// against the remaining payload before allocation, and all Decoder methods
// are sticky — after the first error every subsequent read returns zero
// values, so a decode loop can run to completion and check Err once.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// The package sentinels. Callers dispatch with errors.Is.
var (
	// ErrCorrupt reports a snapshot that is structurally damaged: bad magic,
	// failed checksum, truncated payload, or an impossible length field.
	ErrCorrupt = errors.New("snapshot: corrupt")
	// ErrVersion reports a snapshot in an unsupported format version.
	ErrVersion = errors.New("snapshot: unsupported version")
	// ErrMismatch reports a structurally valid snapshot produced by a
	// differently-configured pipeline (indicator registry or engine config);
	// restoring it would silently change verdicts, so it is refused.
	ErrMismatch = errors.New("snapshot: pipeline mismatch")
)

// MismatchError names exactly which identity field diverged between a
// snapshot and the pipeline asked to restore it. It unwraps to ErrMismatch.
type MismatchError struct {
	// Field is the diverging header field: "registry" or "config".
	Field string
	// Have is the fingerprint embedded in the snapshot.
	Have string
	// Want is the fingerprint of the restoring pipeline.
	Want string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("snapshot: %s fingerprint mismatch: snapshot has %q, engine wants %q",
		e.Field, e.Have, e.Want)
}

// Unwrap makes errors.Is(err, ErrMismatch) true.
func (e *MismatchError) Unwrap() error { return ErrMismatch }

// Header identifies the pipeline a snapshot was captured from. Seal embeds
// it; Open returns it; Check verifies it against the restoring pipeline.
type Header struct {
	// Version is the snapshot format version of the owning layer.
	Version uint64
	// Registry is the indicator-registry fingerprint ("reg1-…"), the same
	// canonical identity the audit bundles carry.
	Registry string
	// Config is the engine-config hash ("cfg1-…") over the scoring-relevant
	// configuration fields.
	Config string
}

// Check verifies that a decoded header matches the restoring pipeline's
// expectation: version first (ErrVersion), then the registry and config
// fingerprints (typed MismatchError wrapping ErrMismatch).
func (h Header) Check(want Header) error {
	if h.Version != want.Version {
		return fmt.Errorf("%w: snapshot version %d, engine supports %d", ErrVersion, h.Version, want.Version)
	}
	if h.Registry != want.Registry {
		return &MismatchError{Field: "registry", Have: h.Registry, Want: want.Registry}
	}
	if h.Config != want.Config {
		return &MismatchError{Field: "config", Have: h.Config, Want: want.Config}
	}
	return nil
}

// magic opens every sealed snapshot.
const magic = "CDSN"

// fnv64a is the FNV-1a checksum the envelope carries. Implemented inline so
// the encoding layer has no dependencies beyond the standard library's
// binary package.
func fnv64a(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}

// Seal wraps a payload in the versioned envelope:
//
//	"CDSN" | uvarint version | string registry | string config |
//	bytes payload | u64 checksum(everything before)
func Seal(h Header, payload []byte) []byte {
	e := NewEncoder()
	e.buf = append(e.buf, magic...)
	e.Uvarint(h.Version)
	e.String(h.Registry)
	e.String(h.Config)
	e.Bytes(payload)
	sum := fnv64a(e.buf)
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], sum)
	return append(e.buf, tail[:]...)
}

// Open validates a sealed snapshot's structure and checksum and returns its
// header and payload. It performs no identity verification — callers pass
// the header to Check against their own expectation. All structural
// failures wrap ErrCorrupt.
func Open(data []byte) (Header, []byte, error) {
	if len(data) < len(magic)+8 || string(data[:len(magic)]) != magic {
		return Header{}, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	if fnv64a(body) != binary.LittleEndian.Uint64(tail) {
		return Header{}, nil, fmt.Errorf("%w: checksum failed", ErrCorrupt)
	}
	d := NewDecoder(body[len(magic):])
	var h Header
	h.Version = d.Uvarint()
	h.Registry = d.String()
	h.Config = d.Config()
	payload := d.Bytes()
	if d.Err() != nil {
		return Header{}, nil, d.Err()
	}
	if d.Len() != 0 {
		return Header{}, nil, fmt.Errorf("%w: %d trailing bytes after payload", ErrCorrupt, d.Len())
	}
	return h, payload, nil
}

// Encoder builds a canonical binary payload. The zero value is not ready;
// create one with NewEncoder. Methods never fail.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Data returns the encoded bytes.
func (e *Encoder) Data() []byte { return e.buf }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed (zig-zag) varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// F64 appends a float64 as its exact IEEE-754 bit pattern, 8 bytes
// little-endian — the bit-identity guarantee for restored scores, entropy
// means and thresholds.
func (e *Encoder) F64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	e.buf = append(e.buf, b[:]...)
}

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Decoder reads a canonical binary payload. All methods are sticky: after
// the first failure every read returns the zero value and Err reports the
// first error (always wrapping ErrCorrupt).
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder returns a decoder over data.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Len returns the number of unread bytes.
func (d *Decoder) Len() int { return len(d.data) - d.off }

// fail records the first error.
func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// Fail lets a caller record a domain-specific decode failure (for example a
// malformed embedded digest) as this decoder's sticky error, typed as
// ErrCorrupt like every other decode failure.
func (d *Decoder) Fail(format string, args ...any) { d.fail(format, args...) }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.Len() < 8 {
		d.fail("truncated float64 at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

// Bool reads a boolean byte; any value other than 0 or 1 is corruption.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.Len() < 1 {
		d.fail("truncated bool at offset %d", d.off)
		return false
	}
	b := d.data[d.off]
	d.off++
	if b > 1 {
		d.fail("invalid bool byte %d at offset %d", b, d.off-1)
		return false
	}
	return b == 1
}

// String reads a length-prefixed string, validating the length against the
// remaining payload before allocating.
func (d *Decoder) String() string { return string(d.lengthPrefixed("string")) }

// Config reads a length-prefixed string (alias used by Open for clarity).
func (d *Decoder) Config() string { return d.String() }

// Bytes reads a length-prefixed byte slice. The returned slice is a copy,
// safe to retain.
func (d *Decoder) Bytes() []byte {
	b := d.lengthPrefixed("bytes")
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// lengthPrefixed reads a uvarint length and returns that many raw bytes,
// rejecting lengths beyond the remaining payload — the guard that keeps a
// hostile length field from allocating unbounded memory.
func (d *Decoder) lengthPrefixed(what string) []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Len()) {
		d.fail("%s length %d exceeds %d remaining bytes", what, n, d.Len())
		return nil
	}
	b := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// Count reads a uvarint element count for a collection whose elements each
// occupy at least one encoded byte, rejecting counts beyond the remaining
// payload — the same allocation-bomb guard as lengthPrefixed, for
// count-prefixed loops.
func (d *Decoder) Count() int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Len()) {
		d.fail("element count %d exceeds %d remaining bytes", n, d.Len())
		return 0
	}
	return int(n)
}
