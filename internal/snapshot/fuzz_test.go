package snapshot

import (
	"errors"
	"testing"
)

// FuzzOpen feeds arbitrary bytes to the envelope opener. The contract under
// fuzzing: Open either succeeds on a structurally valid snapshot or returns
// an error wrapping ErrCorrupt — it never panics, and on success the
// re-sealed header+payload must reproduce the input bytes exactly (the
// canonical-encoding property).
func FuzzOpen(f *testing.F) {
	// Valid snapshots of several shapes.
	f.Add(Seal(Header{Version: 1, Registry: "reg1-a", Config: "cfg1-b"}, []byte("payload")))
	f.Add(Seal(Header{Version: 0, Registry: "", Config: ""}, nil))
	f.Add(Seal(Header{Version: 1 << 40, Registry: "reg1-0123456789abcdef", Config: "cfg1-fedcba9876543210"}, make([]byte, 512)))
	// Structural damage.
	f.Add([]byte{})
	f.Add([]byte("CDSN"))
	f.Add([]byte("CDSNxxxxxxxx"))
	f.Add([]byte("XXXXxxxxxxxxxxxx"))
	truncated := Seal(Header{Version: 1, Registry: "reg1-a", Config: "cfg1-b"}, []byte("state"))
	f.Add(truncated[:len(truncated)-4])
	f.Add(append(append([]byte{}, truncated...), 0x00))
	// Version-skewed but structurally valid (Open accepts; Check rejects).
	f.Add(Seal(Header{Version: 99, Registry: "reg1-a", Config: "cfg1-b"}, []byte("future")))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := Open(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open returned non-typed error %v", err)
			}
			return
		}
		// Round-trip: a valid snapshot re-seals to the identical bytes.
		if got := Seal(h, payload); string(got) != string(data) {
			t.Fatalf("re-seal mismatch: %x vs %x", got, data)
		}
		// Header verification on an accepted snapshot must yield typed
		// errors only, whatever the fuzzer put in the fields.
		want := Header{Version: 1, Registry: "reg1-a", Config: "cfg1-b"}
		if cerr := h.Check(want); cerr != nil {
			if !errors.Is(cerr, ErrVersion) && !errors.Is(cerr, ErrMismatch) {
				t.Fatalf("Check returned non-typed error %v", cerr)
			}
		}
	})
}

// FuzzDecoder feeds arbitrary bytes through every Decoder read method in a
// fixed rotation. The contract: no panic, no allocation proportional to a
// hostile length field, and once Err is non-nil it stays non-nil.
func FuzzDecoder(f *testing.F) {
	e := NewEncoder()
	e.Uvarint(7)
	e.Varint(-42)
	e.F64(3.14)
	e.Bool(true)
	e.String("str")
	e.Bytes([]byte{1, 2, 3})
	f.Add(e.Data())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		for i := 0; i < 64 && d.Err() == nil && d.Len() > 0; i++ {
			switch i % 7 {
			case 0:
				d.Uvarint()
			case 1:
				d.Varint()
			case 2:
				d.F64()
			case 3:
				d.Bool()
			case 4:
				_ = d.String()
			case 5:
				d.Bytes()
			case 6:
				d.Count()
			}
		}
		if err := d.Err(); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("decoder error is not typed: %v", err)
		}
		// Sticky check: a failed decoder keeps failing.
		if d.Err() != nil {
			d.Uvarint()
			_ = d.String()
			if d.Err() == nil {
				t.Fatal("error was cleared")
			}
		}
	})
}
