package audit

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"cryptodrop/internal/telemetry"
)

func sample(pid int) *Bundle {
	return &Bundle{
		Version: 1, SessionID: "s1", PID: pid, Score: 146, Threshold: 140,
		Union: true, OpIndex: 28, FilesLost: 7,
		Contributions: []Contribution{
			{Indicator: "file-type-change", ID: 1, Points: 56, Fires: 7},
			{Indicator: "similarity", ID: 2, Points: 48, Fires: 6},
			{Indicator: "entropy-delta", ID: 3, Points: 12, Fires: 13},
			{Indicator: "union-bonus", Points: 30, Fires: 1},
		},
		Engine:   EngineConfig{ProtectedRoot: "/docs", NonUnionThreshold: 200, UnionThreshold: 140, Tier: "full"},
		Registry: RegistryInfo{Fingerprint: "reg1-0000000000000001", Units: []string{"1:file-type-change"}, Policy: "*policy.Union"},
		Trace:    telemetry.Trace{Group: pid},
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.Emit(sample(31))
	sink.Emit(sample(32))
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
	if got := sink.Emitted(); got != 2 {
		t.Fatalf("Emitted() = %d, want 2", got)
	}
	// One JSON object per line.
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("output has %d lines, want 2", got)
	}
	back, err := ReadBundles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].PID != 31 || back[1].PID != 32 {
		t.Fatalf("round trip = %+v", back)
	}
	if back[0].Score != 146 || !back[0].Union || back[0].Registry.Fingerprint != "reg1-0000000000000001" {
		t.Fatalf("fields lost in round trip: %+v", back[0])
	}
}

// errWriter fails after n bytes, to exercise the sink's sticky error.
type errWriter struct{ left int }

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.left {
		n := w.left
		w.left = 0
		return n, errors.New("disk full")
	}
	w.left -= len(p)
	return len(p), nil
}

func TestJSONLSinkStickyError(t *testing.T) {
	sink := NewJSONLSink(&errWriter{left: 10})
	sink.Emit(sample(1))
	if sink.Err() == nil {
		t.Fatal("write error swallowed")
	}
	emitted := sink.Emitted()
	sink.Emit(sample(2)) // must not panic, must not count
	if sink.Emitted() != emitted {
		t.Fatalf("sink kept counting after error: %d then %d", emitted, sink.Emitted())
	}
}

func TestReadBundlesRejectsGarbage(t *testing.T) {
	if _, err := ReadBundles(strings.NewReader("{\"v\":1}\nnot json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
	// Blank lines are tolerated (trailing newline, hand-edited files).
	bundles, err := ReadBundles(strings.NewReader("{\"v\":1,\"pid\":5}\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 || bundles[0].PID != 5 {
		t.Fatalf("bundles = %+v", bundles)
	}
}

func TestMemorySinkConcurrent(t *testing.T) {
	sink := &MemorySink{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sink.Emit(sample(w*100 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := len(sink.Bundles()); got != 400 {
		t.Fatalf("MemorySink holds %d bundles, want 400", got)
	}
}
