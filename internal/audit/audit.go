// Package audit defines detection audit bundles: self-contained,
// machine-readable records answering "why was this process flagged?" — the
// per-indicator score provenance, the files it touched and lost, the
// engine configuration and indicator-registry fingerprint that produced
// the verdict, and the measurement-tier and cache statistics behind it.
//
// The engine assembles a Bundle for every detection and hands it to a
// pluggable Sink outside all engine locks. The shipped JSONLSink appends
// one JSON object per line, the append-only format operators tail and
// retain; MemorySink collects bundles in memory for tests and
// introspection. The package depends only on the standard library and
// internal/telemetry (the embedded firing trace), so any layer may import
// it.
package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"cryptodrop/internal/telemetry"
)

// Contribution is one indicator's share of a detection score, with the
// firing extent recovered from the flight recorder when one was attached.
type Contribution struct {
	// Indicator is the indicator's declared name ("type-change", ...), or
	// the policy's acceleration label ("union-bonus") for the policy-level
	// entry.
	Indicator string `json:"indicator"`
	// ID is the registry indicator ID; 0 for policy-level entries.
	ID int `json:"id,omitempty"`
	// Points is the indicator's total score contribution at detection time.
	Points float64 `json:"points"`
	// Fires counts the indicator's firings before the detection (0 when no
	// flight recorder was attached or its ring wrapped past them).
	Fires int `json:"fires,omitempty"`
	// FirstOpIndex / LastOpIndex bound the firings' operation indices.
	FirstOpIndex int64 `json:"firstOpIndex,omitempty"`
	LastOpIndex  int64 `json:"lastOpIndex,omitempty"`
	// FirstAt / LastAt are the firings' capture times in Unix nanoseconds,
	// present only when the flight recorder had timestamps enabled.
	FirstAt int64 `json:"firstAtNs,omitempty"`
	LastAt  int64 `json:"lastAtNs,omitempty"`
}

// EngineConfig summarises the engine configuration that produced a
// verdict — the knobs an auditor needs to reproduce or tune it.
type EngineConfig struct {
	ProtectedRoot         string  `json:"protectedRoot"`
	NonUnionThreshold     float64 `json:"nonUnionThreshold"`
	UnionThreshold        float64 `json:"unionThreshold"`
	EntropyDeltaThreshold float64 `json:"entropyDeltaThreshold"`
	SimilarityMatchMax    int     `json:"similarityMatchMax"`
	FunnelingThreshold    int     `json:"funnelingThreshold"`
	Tier                  string  `json:"tier"`
	SampleBytes           int     `json:"sampleBytes,omitempty"`
	Workers               int     `json:"workers"`
	IncrementalEntropy    bool    `json:"incrementalEntropy,omitempty"`
	NewCipherWithoutDelta bool    `json:"newCipherWithoutDelta,omitempty"`
	PayloadBlind          bool    `json:"payloadBlind,omitempty"`
}

// RegistryInfo identifies the indicator registry and policy behind a
// verdict.
type RegistryInfo struct {
	// Fingerprint is the registry's canonical declaration fingerprint
	// (indicator.Registry.Fingerprint): equal fingerprints mean equal
	// scoring units.
	Fingerprint string `json:"fingerprint"`
	// Units lists the registered units as "id:name" in canonical order.
	Units []string `json:"units"`
	// Policy is the detection policy's Go type.
	Policy string `json:"policy"`
}

// CacheStats is the measurement memo cache's state at detection time.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions,omitempty"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// Measurement is the measurement-side context of a verdict.
type Measurement struct {
	// Tier is the session's measurement ladder tier ("full" or "sampled").
	Tier string `json:"tier"`
	// Escalated reports whether the flagged process had been promoted to
	// full measurement under the sampled tier.
	Escalated bool `json:"escalated,omitempty"`
	// Cache is the shared memo cache's statistics; nil when no cache was
	// configured.
	Cache *CacheStats `json:"cache,omitempty"`
	// ContentReadFailures is the engine's read-failure counter value (only
	// populated when the engine has a metrics registry).
	ContentReadFailures int64 `json:"contentReadFailures,omitempty"`
}

// Bundle is one detection's complete audit record. Every field is
// self-contained: a bundle read back from a JSONL stream explains the
// verdict without access to the engine that produced it.
type Bundle struct {
	// Version is the bundle schema version.
	Version int `json:"v"`
	// SessionID is the owning session's ID ("" for a bare engine).
	SessionID string `json:"session,omitempty"`
	// PID is the flagged scoring group (the process-family root under
	// family scoring).
	PID int `json:"pid"`
	// Score, Threshold, Union and OpIndex mirror the Detection.
	Score     float64 `json:"score"`
	Threshold float64 `json:"threshold"`
	Union     bool    `json:"union"`
	OpIndex   int64   `json:"opIndex"`
	// OpsToDetection is the operation distance from the first recorded
	// indicator firing to the detection (0 when no flight recorder).
	OpsToDetection int64 `json:"opsToDetection,omitempty"`
	// TimeToDetectionNs is the wall-clock distance from the first recorded
	// firing to the last pre-detection firing; present only when the
	// flight recorder had timestamps enabled.
	TimeToDetectionNs int64 `json:"timeToDetectionNs,omitempty"`
	// Contributions are the per-indicator score shares, sorted by ID with
	// policy-level entries last. Their Points sum to Score exactly.
	Contributions []Contribution `json:"contributions"`
	// FilesTouched lists the distinct protected paths attributed to the
	// pre-detection firings, in first-touch order.
	FilesTouched []string `json:"filesTouched,omitempty"`
	// FilesLost is the flagged group's completed protected-file rewrites
	// at detection time — the files-lost figure of the paper's Table I.
	FilesLost int `json:"filesLost"`
	// Deletes is the group's protected-file removals at detection time.
	Deletes int `json:"deletes,omitempty"`
	// Engine, Registry and Measurement capture the configuration behind
	// the verdict.
	Engine      EngineConfig `json:"engine"`
	Registry    RegistryInfo `json:"registry"`
	Measurement Measurement  `json:"measurement"`
	// Trace is the group's pre-detection firing history from the flight
	// recorder (empty Events when none was attached). Trace.Dropped warns
	// when the ring wrapped and the history is incomplete.
	Trace telemetry.Trace `json:"trace"`
	// Recovery is the rollback outcome for this detection when the session
	// ran with detect-then-recover armed; nil otherwise (the host stamps it
	// after the engine assembles the bundle).
	Recovery *RecoveryRecord `json:"recovery,omitempty"`
}

// RecoveryRecord is the audit image of one detection-triggered rollback:
// what the recovery coordinator restored from the convicted group's
// retained pre-images.
type RecoveryRecord struct {
	// Group is the convicted scoring group.
	Group int `json:"group"`
	// FilesRestored counts pre-images written back over a surviving file ID.
	FilesRestored int `json:"filesRestored"`
	// FilesRecreated counts pre-images recreated at their captured path
	// because the original file ID was gone.
	FilesRecreated int `json:"filesRecreated"`
	// Failures counts pre-images that could not be written back.
	Failures int `json:"failures,omitempty"`
	// BytesRestored is the total content written back.
	BytesRestored int64 `json:"bytesRestored"`
}

// Sink receives completed audit bundles. Emit is called outside all engine
// locks, once per detection, from the goroutine whose operation crossed
// the threshold; implementations must be safe for concurrent use.
type Sink interface {
	Emit(*Bundle)
}

// JSONLSink writes one JSON object per bundle, newline-terminated — the
// append-only JSONL format. Safe for concurrent use.
type JSONLSink struct {
	mu      sync.Mutex
	w       io.Writer
	err     error
	emitted int64
}

// NewJSONLSink returns a sink appending to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(b *Bundle) {
	data, err := json.Marshal(b)
	if err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
		return
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if _, err := s.w.Write(data); err != nil {
		s.err = err
		return
	}
	s.emitted++
}

// Emitted returns how many bundles were written.
func (s *JSONLSink) Emitted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.emitted
}

// Err returns the first write or marshal error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ReadBundles parses a JSONL stream written by JSONLSink.
func ReadBundles(r io.Reader) ([]Bundle, error) {
	var out []Bundle
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var b Bundle
		if err := json.Unmarshal(line, &b); err != nil {
			return out, fmt.Errorf("audit: bundle %d: %w", len(out)+1, err)
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("audit: read: %w", err)
	}
	return out, nil
}

// MemorySink collects bundles in memory — for tests and for serving "last
// detection" introspection. Safe for concurrent use.
type MemorySink struct {
	mu      sync.Mutex
	bundles []*Bundle
}

// Emit implements Sink.
func (s *MemorySink) Emit(b *Bundle) {
	s.mu.Lock()
	s.bundles = append(s.bundles, b)
	s.mu.Unlock()
}

// Bundles returns the collected bundles in emission order.
func (s *MemorySink) Bundles() []*Bundle {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Bundle, len(s.bundles))
	copy(out, s.bundles)
	return out
}
