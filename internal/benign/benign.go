// Package benign simulates the thirty Windows application workloads of the
// paper's false-positive analysis (§V-F). Each workload reproduces the
// filesystem behaviour of its application against the protected documents
// tree — which is all CryptoDrop can observe.
//
// The five applications analysed in depth (Fig. 6) follow the paper's test
// scripts: Adobe Lightroom imports and tones a large photo set and writes
// catalog/preview data; ImageMagick batch-rotates JPEGs in place; iTunes
// converts an audio library to AAC; Microsoft Word edits and saves a
// document; Microsoft Excel builds spreadsheets across several sessions.
// 7-zip archives the documents folder — the one expected detection.
package benign

import (
	"fmt"
	"math/rand"
	"path"
	"strings"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/vfs"
)

// Workload is one benign application's filesystem behaviour.
type Workload struct {
	// Name is the application name as listed in §V-F.
	Name string
	// Description summarises the simulated activity.
	Description string
	// Detailed marks the five applications of Fig. 6 plus 7-zip.
	Detailed bool
	// ExpectDetection marks workloads the paper expects CryptoDrop to
	// flag (7-zip archiving the documents tree).
	ExpectDetection bool
	// Run performs the workload as pid against the documents tree rooted
	// at root. Operation errors from a suspension are returned.
	Run func(fsys *vfs.FS, pid int, root string) error
}

// listByExt returns protected files with one of the given extensions.
func listByExt(fsys *vfs.FS, root string, exts ...string) ([]vfs.FileInfo, error) {
	want := make(map[string]bool, len(exts))
	for _, e := range exts {
		want[e] = true
	}
	var out []vfs.FileInfo
	err := fsys.Walk(root, func(info vfs.FileInfo) error {
		if info.IsDir || info.ReadOnly {
			// Benign editors skip files they cannot write.
			return nil
		}
		ext := strings.ToLower(strings.TrimPrefix(path.Ext(info.Path), "."))
		if want[ext] {
			out = append(out, info)
		}
		return nil
	})
	return out, err
}

// readWhole reads a file through the filter in chunks.
func readWhole(fsys *vfs.FS, pid int, p string, chunk int) ([]byte, error) {
	h, err := fsys.Open(pid, p, vfs.ReadOnly)
	if err != nil {
		return nil, err
	}
	defer func() { _ = h.Close() }()
	var content []byte
	buf := make([]byte, chunk)
	for {
		n, err := h.Read(buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return content, nil
		}
		content = append(content, buf[:n]...)
	}
}

// writeWhole writes content in chunks to a (possibly new) file.
func writeWhole(fsys *vfs.FS, pid int, p string, content []byte, chunk int) error {
	h, err := fsys.Open(pid, p, vfs.WriteOnly|vfs.Create|vfs.Truncate)
	if err != nil {
		return err
	}
	for off := 0; off < len(content); off += chunk {
		end := off + chunk
		if end > len(content) {
			end = len(content)
		}
		if _, err := h.Write(content[off:end]); err != nil {
			_ = h.Close()
			return err
		}
	}
	return h.Close()
}

// All returns the thirty §V-F workloads.
func All() []Workload {
	detailed := []Workload{
		sevenZip(), lightroom(), imageMagick(), iTunes(), word(), excel(),
	}
	var out []Workload
	out = append(out, detailed...)
	out = append(out,
		readerApp("Avast Anti-Virus", "scans (reads) every protected file"),
		readerApp("Microsoft Office Viewers", "opens and reads office documents"),
		readerApp("SumatraPDF", "opens and reads PDF documents"),
		readerApp("Picasa", "indexes (reads) every image"),
		readerApp("Launchy", "indexes file names, reads a few documents"),
		mediaPlayer("VLC Media Player"),
		mediaPlayer("MusicBee"),
		editorApp("LibreOffice Writer", "docx"),
		editorApp("LibreOffice Calc", "xlsx"),
		editorApp("GIMP", "png"),
		editorApp("Paint.NET", "png"),
		noteTaker("ResophNotes"),
		noteTaker("Sticky Notes"),
		downloader("Chrome", 2),
		downloader("Dropbox", 4),
		downloader("uTorrent", 1),
		outsideApp("F.lux", "touches only its own settings outside Documents"),
		outsideApp("Piriform CCleaner", "cleans temp files outside Documents"),
		outsideApp("Private Internet Access VPN", "writes logs outside Documents"),
		outsideApp("Pidgin", "chat logs outside Documents"),
		outsideApp("Skype", "chat database outside Documents"),
		outsideApp("Spotify", "cache outside Documents"),
		outsideApp("Chocolate Doom", "save games outside Documents"),
		outsideApp("PhraseExpress", "phrase database outside Documents"),
	)
	return out
}

// Detailed returns the Fig. 6 applications plus 7-zip.
func Detailed() []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Detailed {
			out = append(out, w)
		}
	}
	return out
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// sevenZip archives the entire documents directory: it reads every file
// (disparate types) and writes one high-entropy archive — the behaviour the
// paper expects CryptoDrop to flag (§V-F/G).
func sevenZip() Workload {
	return Workload{
		Name:            "7-zip",
		Description:     "creates an archive of the user documents directory",
		Detailed:        true,
		ExpectDetection: true,
		Run: func(fsys *vfs.FS, pid int, root string) error {
			archive := path.Join(root, "Documents.7z")
			h, err := fsys.Open(pid, archive, vfs.WriteOnly|vfs.Create|vfs.Truncate)
			if err != nil {
				return err
			}
			defer func() { _ = h.Close() }()
			if _, err := h.Write([]byte{'7', 'z', 0xBC, 0xAF, 0x27, 0x1C, 0, 4}); err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(77))
			var files []vfs.FileInfo
			werr := fsys.Walk(root, func(info vfs.FileInfo) error {
				if !info.IsDir && info.Path != archive {
					files = append(files, info)
				}
				return nil
			})
			if werr != nil {
				return werr
			}
			for _, info := range files {
				content, err := readWhole(fsys, pid, info.Path, 64*1024)
				if err != nil {
					return err
				}
				// Compressed block ≈ a third of the input, keystream-like,
				// streamed out in 8 KiB chunks.
				block := make([]byte, len(content)/3+64)
				rng.Read(block)
				for off := 0; off < len(block); off += 8192 {
					end := off + 8192
					if end > len(block) {
						end = len(block)
					}
					if _, err := h.Write(block[off:end]); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}
}

// lightroom imports a large photo set: reads every JPEG and its low-entropy
// sidecar metadata, writes compressed preview/catalog data under Documents
// (Lightroom's default catalog location), with periodic journal churn.
func lightroom() Workload {
	return Workload{
		Name:        "Adobe Lightroom",
		Description: "imports 1,073 JPEGs, applies automatic tone, exports 5",
		Detailed:    true,
		Run: func(fsys *vfs.FS, pid int, root string) error {
			jpgs, err := listByExt(fsys, root, "jpg", "jpeg")
			if err != nil {
				return err
			}
			if len(jpgs) == 0 {
				return fmt.Errorf("lightroom: no photos under %s", root)
			}
			catDir := path.Join(root, "Lightroom")
			if err := fsys.MkdirAll(catDir); err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(1073))
			catalog := path.Join(catDir, "Catalog.lrcat")
			// The catalog is SQLite with embedded preview blobs. Lightroom
			// seeds the schema/index pages (structured, mid entropy), then
			// per import batch re-reads the schema region and appends
			// compressed preview pages — a read-low/write-high database
			// pattern.
			schema := corpus.Generate("doc", 55, 1<<20)
			if err := writeWhole(fsys, pid, catalog, schema, 64*1024); err != nil {
				return err
			}
			cat, err := fsys.Open(pid, catalog, vfs.ReadWrite|vfs.Append)
			if err != nil {
				return err
			}
			defer func() { _ = cat.Close() }()
			const imports = 1073
			schemaBuf := make([]byte, 256*1024)
			preview := make([]byte, 64*1024)
			for i := 0; i < imports; i++ {
				photo := jpgs[i%len(jpgs)]
				if _, err := readWhole(fsys, pid, photo.Path, 128*1024); err != nil {
					return err
				}
				// Per ~10-photo batch: one catalog transaction.
				if i%10 == 0 {
					cat.SeekTo(int64((i / 10 % 3) * 256 * 1024))
					if _, err := cat.Read(schemaBuf); err != nil {
						return err
					}
					for c := 0; c < 3; c++ {
						rng.Read(preview)
						if _, err := cat.Write(preview); err != nil {
							return err
						}
					}
				}
				// Journal churn: the write-ahead log appears and is
				// removed as transactions commit.
				if i%64 == 0 {
					wal := catalog + ".wal"
					if err := writeWhole(fsys, pid, wal, corpus.Generate("doc", int64(i), 16<<10), 16384); err != nil {
						return err
					}
					if err := fsys.Delete(pid, wal); err != nil {
						return err
					}
				}
			}
			// Export five black-and-white conversions to Documents.
			for i := 0; i < 5; i++ {
				out := path.Join(root, fmt.Sprintf("export_bw_%d.jpg", i))
				if err := writeWhole(fsys, pid, out, corpus.Generate("jpg", int64(900+i), 48<<10), 32*1024); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// imageMagick batch-rotates every JPEG in place: the output keeps the JPEG
// header and metadata (so type and similarity hold) with rewritten scan
// data.
func imageMagick() Workload {
	return Workload{
		Name:        "ImageMagick",
		Description: "mogrify: rotates 1,073 JPEGs 90° in place",
		Detailed:    true,
		Run: func(fsys *vfs.FS, pid int, root string) error {
			jpgs, err := listByExt(fsys, root, "jpg", "jpeg")
			if err != nil {
				return err
			}
			if len(jpgs) == 0 {
				return fmt.Errorf("imagemagick: no photos under %s", root)
			}
			rng := rand.New(rand.NewSource(90))
			const rotations = 1073
			for i := 0; i < rotations; i++ {
				p := jpgs[i%len(jpgs)].Path
				content, err := readWhole(fsys, pid, p, 128*1024)
				if err != nil {
					return err
				}
				rotated := make([]byte, len(content))
				copy(rotated, content)
				// Keep headers, quantisation tables and embedded EXIF
				// thumbnails; rewrite the scan data.
				hdr := 4096
				if hdr > len(rotated) {
					hdr = len(rotated)
				}
				for j := hdr; j < len(rotated); j++ {
					rotated[j] = byte(rng.Intn(256))
				}
				h, err := fsys.Open(pid, p, vfs.WriteOnly|vfs.Truncate)
				if err != nil {
					return err
				}
				if _, err := h.Write(rotated); err != nil {
					_ = h.Close()
					return err
				}
				if err := h.Close(); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// iTunes imports the audio comparison files and converts them to AAC: medium
// entropy reads, 70 buffered high-entropy writes of new files.
func iTunes() Workload {
	return Workload{
		Name:        "iTunes",
		Description: "imports 70 audio files, plays 3, converts all to AAC",
		Detailed:    true,
		Run: func(fsys *vfs.FS, pid int, root string) error {
			wavs, err := listByExt(fsys, root, "wav", "mp3")
			if err != nil {
				return err
			}
			if len(wavs) == 0 {
				return fmt.Errorf("itunes: no audio under %s", root)
			}
			const tracks = 70
			// Import scan: read every track.
			for i := 0; i < tracks; i++ {
				if _, err := readWhole(fsys, pid, wavs[i%len(wavs)].Path, 256*1024); err != nil {
					return err
				}
			}
			// Play three songs.
			for i := 0; i < 3; i++ {
				if _, err := readWhole(fsys, pid, wavs[i%len(wavs)].Path, 256*1024); err != nil {
					return err
				}
			}
			// Convert each to AAC: one buffered write per output file.
			for i := 0; i < tracks; i++ {
				src := wavs[i%len(wavs)]
				out := strings.TrimSuffix(src.Path, path.Ext(src.Path)) + fmt.Sprintf("_%d.m4a", i)
				content := corpus.Generate("mp3", int64(3000+i), int(src.Size/4)+2048)
				h, err := fsys.Open(pid, out, vfs.WriteOnly|vfs.Create|vfs.Truncate)
				if err != nil {
					return err
				}
				if _, err := h.Write(content); err != nil {
					_ = h.Close()
					return err
				}
				if err := h.Close(); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// word edits a document across four saves: content grows incrementally, the
// type never changes and each version remains similar to the last.
func word() Workload {
	return Workload{
		Name:        "Microsoft Word",
		Description: "creates a document, edits and saves it four times",
		Detailed:    true,
		Run: func(fsys *vfs.FS, pid int, root string) error {
			doc := path.Join(root, "report_draft.docx")
			base := corpus.Generate("docx", 4001, 24<<10)
			if err := writeWhole(fsys, pid, doc, base, 8192); err != nil {
				return err
			}
			for save := 0; save < 3; save++ {
				prev, err := readWhole(fsys, pid, doc, 8192)
				if err != nil {
					return err
				}
				// Append a little more "content" to the same container: the
				// bulk of the bytes is unchanged.
				next := append(prev[:len(prev):len(prev)], corpus.Generate("xml", int64(save), 2048)...)
				if err := writeWhole(fsys, pid, doc, next, 8192); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// excel builds spreadsheets across two sessions with chunked saves through
// temp files, autosave churn and low-entropy data imports — the workload
// that legitimately accumulates points (the paper measured 150).
func excel() Workload {
	return Workload{
		Name:        "Microsoft Excel",
		Description: "builds spreadsheets with charts over four sessions",
		Detailed:    true,
		Run: func(fsys *vfs.FS, pid int, root string) error {
			book := path.Join(root, "analysis.xlsx")
			// Import low-entropy data: read CSVs from the corpus.
			csvs, err := listByExt(fsys, root, "csv", "txt")
			if err != nil {
				return err
			}
			for i := 0; i < 12 && i < len(csvs); i++ {
				if _, err := readWhole(fsys, pid, csvs[i].Path, 8192); err != nil {
					return err
				}
			}
			rng := rand.New(rand.NewSource(150))
			// The workbook grows incrementally: each save is the previous
			// container plus appended parts, so consecutive versions stay
			// similar and keep their type.
			content := corpus.Generate("xlsx", 41, 30<<10)
			save := func(session, n int) error {
				// Save via temp file + rename, Office-style, with an
				// autosave artefact that is deleted afterwards.
				tmp := path.Join(root, fmt.Sprintf("~$analysis_%d_%d.tmp", session, n))
				content = append(content, corpus.Generate("xlsx", int64(session*100+n), (2+rng.Intn(3))<<10)...)
				if err := writeWhole(fsys, pid, tmp, content, 2048); err != nil {
					return err
				}
				if err := fsys.Rename(pid, tmp, book); err != nil {
					return err
				}
				auto := path.Join(root, fmt.Sprintf("analysis.xlsx~RF%d.TMP", n))
				if err := writeWhole(fsys, pid, auto, content[:len(content)/2], 2048); err != nil {
					return err
				}
				return fsys.Delete(pid, auto)
			}
			for session := 0; session < 4; session++ {
				if session == 1 {
					// Re-open: read the workbook back.
					if _, err := readWhole(fsys, pid, book, 8192); err != nil {
						return err
					}
				}
				for n := 0; n < 5; n++ {
					if err := save(session, n); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}
}

// readerApp only reads protected files.
func readerApp(name, desc string) Workload {
	return Workload{
		Name:        name,
		Description: desc,
		Run: func(fsys *vfs.FS, pid int, root string) error {
			n := 0
			return fsys.Walk(root, func(info vfs.FileInfo) error {
				if info.IsDir || n > 400 {
					return nil
				}
				n++
				_, err := readWhole(fsys, pid, info.Path, 64*1024)
				return err
			})
		},
	}
}

// mediaPlayer reads audio files only.
func mediaPlayer(name string) Workload {
	return Workload{
		Name:        name,
		Description: "plays (reads) the audio library",
		Run: func(fsys *vfs.FS, pid int, root string) error {
			tracks, err := listByExt(fsys, root, "mp3", "wav")
			if err != nil {
				return err
			}
			for i, tr := range tracks {
				if i > 50 {
					break
				}
				if _, err := readWhole(fsys, pid, tr.Path, 256*1024); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// editorApp opens a few files of one type and saves same-type revisions.
func editorApp(name, ext string) Workload {
	return Workload{
		Name:        name,
		Description: "edits and saves " + ext + " files in place",
		Run: func(fsys *vfs.FS, pid int, root string) error {
			files, err := listByExt(fsys, root, ext)
			if err != nil {
				return err
			}
			for i, f := range files {
				if i >= 5 {
					break
				}
				content, err := readWhole(fsys, pid, f.Path, 16384)
				if err != nil {
					return err
				}
				revised := append(content[:len(content):len(content)], corpus.Generate(ext, int64(i), 1024)[:512]...)
				if err := writeWhole(fsys, pid, f.Path, revised, 16384); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// noteTaker appends small plain-text notes.
func noteTaker(name string) Workload {
	return Workload{
		Name:        name,
		Description: "creates and updates small text notes",
		Run: func(fsys *vfs.FS, pid int, root string) error {
			for i := 0; i < 20; i++ {
				p := path.Join(root, fmt.Sprintf("note_%s_%d.txt", strings.ReplaceAll(name, " ", ""), i%5))
				if err := writeWhole(fsys, pid, p, corpus.Generate("txt", int64(i), 400), 4096); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// downloader writes a few new files into Documents without reading.
func downloader(name string, files int) Workload {
	return Workload{
		Name:        name,
		Description: "downloads files into Documents",
		Run: func(fsys *vfs.FS, pid int, root string) error {
			for i := 0; i < files; i++ {
				p := path.Join(root, fmt.Sprintf("download_%s_%d.zip", strings.ReplaceAll(name, " ", ""), i))
				if err := writeWhole(fsys, pid, p, corpus.Generate("zip", int64(i*7), 96<<10), 32*1024); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// outsideApp performs all its activity outside the protected tree.
func outsideApp(name, desc string) Workload {
	return Workload{
		Name:        name,
		Description: desc,
		Run: func(fsys *vfs.FS, pid int, root string) error {
			dir := "/ProgramData/" + strings.ReplaceAll(name, " ", "")
			if err := fsys.MkdirAll(dir); err != nil {
				return err
			}
			for i := 0; i < 10; i++ {
				p := path.Join(dir, fmt.Sprintf("state_%d.bin", i))
				if err := writeWhole(fsys, pid, p, corpus.Generate("log", int64(i), 4096), 4096); err != nil {
					return err
				}
			}
			return fsys.Delete(pid, path.Join(dir, "state_0.bin"))
		},
	}
}
