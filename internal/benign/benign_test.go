package benign_test

import (
	"errors"
	"testing"

	"cryptodrop"
	"cryptodrop/internal/benign"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/vfs"
)

// runWorkload executes one workload under a monitor and returns its final
// score and detection state.
func runWorkload(t *testing.T, w benign.Workload) (score float64, detected bool) {
	t.Helper()
	fs := vfs.New()
	m, err := corpus.Build(fs, corpus.Spec{Seed: 20, Files: 600, Dirs: 60, SizeScale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	procs := proc.NewTable()
	mon, err := cryptodrop.NewMonitor(fs, procs, cryptodrop.WithRoot(m.Root))
	if err != nil {
		t.Fatal(err)
	}
	pid := procs.Spawn(w.Name)
	if err := w.Run(fs, pid, m.Root); err != nil && !errors.Is(err, cryptodrop.ErrSuspended) {
		t.Fatalf("%s: %v", w.Name, err)
	}
	rep, ok := mon.Report(pid)
	if !ok {
		return 0, false
	}
	return rep.Score, rep.Detected
}

func TestThirtyWorkloadsExist(t *testing.T) {
	all := benign.All()
	if len(all) != 30 {
		t.Fatalf("workloads = %d, want 30 (the paper's application set)", len(all))
	}
	seen := make(map[string]bool)
	for _, w := range all {
		if w.Name == "" || w.Run == nil {
			t.Fatalf("malformed workload %+v", w)
		}
		if seen[w.Name] {
			t.Fatalf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
	}
	if len(benign.Detailed()) != 6 {
		t.Fatalf("detailed workloads = %d, want 6", len(benign.Detailed()))
	}
}

func TestByName(t *testing.T) {
	if _, ok := benign.ByName("Microsoft Word"); !ok {
		t.Fatal("Microsoft Word not found")
	}
	if _, ok := benign.ByName("Ransomware Deluxe"); ok {
		t.Fatal("unexpected workload found")
	}
}

func TestOnlySevenZipDetected(t *testing.T) {
	// §V-F: thirty applications, exactly one false positive (7-zip), and
	// no application exhibits all three primary indicators.
	if testing.Short() {
		t.Skip("long corpus workloads")
	}
	for _, w := range benign.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			score, detected := runWorkload(t, w)
			if w.ExpectDetection {
				if !detected {
					t.Fatalf("%s expected to be flagged, score %.1f", w.Name, score)
				}
				return
			}
			if detected {
				t.Fatalf("false positive: %s flagged with score %.1f", w.Name, score)
			}
		})
	}
}

func TestNoBenignAppTriggersUnion(t *testing.T) {
	if testing.Short() {
		t.Skip("long corpus workloads")
	}
	fs := vfs.New()
	m, err := corpus.Build(fs, corpus.Spec{Seed: 21, Files: 600, Dirs: 60, SizeScale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	procs := proc.NewTable()
	mon, err := cryptodrop.NewMonitor(fs, procs, cryptodrop.WithRoot(m.Root))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range benign.Detailed() {
		pid := procs.Spawn(w.Name)
		if err := w.Run(fs, pid, m.Root); err != nil && !errors.Is(err, cryptodrop.ErrSuspended) {
			t.Fatalf("%s: %v", w.Name, err)
		}
		rep, ok := mon.Report(pid)
		if !ok {
			continue
		}
		if rep.Union {
			t.Errorf("%s triggered union indication (points %v)", w.Name, rep.IndicatorPoints)
		}
	}
}

func TestFigure6ScoreShape(t *testing.T) {
	// The Fig. 6 ordering: Word ≈ ImageMagick ≈ 0 < iTunes < Lightroom <
	// Excel < the 200 threshold.
	if testing.Short() {
		t.Skip("long corpus workloads")
	}
	scores := map[string]float64{}
	for _, name := range []string{"Microsoft Word", "ImageMagick", "iTunes", "Adobe Lightroom", "Microsoft Excel"} {
		w, ok := benign.ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		score, detected := runWorkload(t, w)
		if detected {
			t.Fatalf("%s detected (score %.1f)", name, score)
		}
		scores[name] = score
	}
	t.Logf("scores: %+v", scores)
	if scores["Microsoft Word"] > 5 {
		t.Errorf("Word score %.1f, want ≈ 0", scores["Microsoft Word"])
	}
	if scores["ImageMagick"] > 5 {
		t.Errorf("ImageMagick score %.1f, want ≈ 0", scores["ImageMagick"])
	}
	if scores["iTunes"] <= 0 || scores["iTunes"] > 60 {
		t.Errorf("iTunes score %.1f, want small nonzero", scores["iTunes"])
	}
	if scores["Adobe Lightroom"] <= scores["iTunes"] {
		t.Errorf("Lightroom %.1f not above iTunes %.1f", scores["Adobe Lightroom"], scores["iTunes"])
	}
	if scores["Microsoft Excel"] <= scores["Adobe Lightroom"]/2 {
		t.Errorf("Excel %.1f unexpectedly low vs Lightroom %.1f", scores["Microsoft Excel"], scores["Adobe Lightroom"])
	}
	for name, s := range scores {
		if s >= 200 {
			t.Errorf("%s score %.1f crosses the 200 threshold", name, s)
		}
	}
}
