// Package server is the detection-as-a-service ingest plane: an HTTP server
// that terminates the wire protocol (package wire) and feeds per-tenant
// sessions on an embedded host.Host. One process serves many tenants; each
// tenant authenticates with a bearer token from the hot-reloadable config
// (package config), is throttled by its own token bucket (package
// ratelimit), and owns a namespace of sessions keyed "tenant/session".
//
// The service contract, end to end:
//
//   - Ops are never dropped. Admission control refuses work — 429 with
//     Retry-After on a rate limit or an overloaded ingest queue, 409 on a
//     sequence gap — and the client retransmits from the acknowledged
//     position. A session under sustained pressure degrades to
//     payload-blind scoring (the PR 4 machinery) rather than shedding
//     events.
//   - Ingest is idempotent. Every frame carries the producer's op position;
//     the server skips prefixes it already admitted and refuses gaps, so
//     retransmits and reconnects after either side crashes converge on
//     exactly-once application.
//   - Drain is lossless. Drain stops admission (503 + draining), flushes
//     every queue, checkpoints durable sessions (PR 8), and reports; a
//     restarted server resumes each session from its checkpointed
//     position.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cryptodrop/internal/core"
	"cryptodrop/internal/host"
	"cryptodrop/internal/server/config"
	"cryptodrop/internal/server/ratelimit"
	"cryptodrop/internal/server/wire"
	"cryptodrop/internal/telemetry"
)

// Options configures a Server beyond its host and tenant table.
type Options struct {
	// ProtectedRoot is the engine's protected directory for new sessions.
	// Producers stream paths from their own filesystems, so the default ""
	// becomes "/" — inspect everything, let producers pre-filter.
	ProtectedRoot string
	// Telemetry receives the server's counters and latency histograms; nil
	// disables. Flight and Tracer, when set, are mounted on /debug.
	Telemetry *telemetry.Registry
	// Flight and Tracer back /debug/flight and /debug/trace; may be nil.
	Flight *telemetry.FlightRecorder
	// Tracer may be nil.
	Tracer *telemetry.SpanTracer
	// OverloadRetryAfter is the wait hinted on a 429 from a saturated ingest
	// queue (a rate-limit 429 computes its own). Default 500ms.
	OverloadRetryAfter time.Duration
}

// Server terminates the wire protocol onto a host.Host.
type Server struct {
	host  *host.Host
	cfg   *config.Loader
	limit *ratelimit.Registry
	mux   *http.ServeMux
	opts  Options

	draining atomic.Bool

	mu       sync.Mutex
	sessions map[string]*sessionState

	frames        *telemetry.Counter
	opsAccepted   *telemetry.Counter
	opsDuplicate  *telemetry.Counter
	authFailures  *telemetry.Counter
	rateRefusals  *telemetry.Counter
	overloads     *telemetry.Counter
	gaps          *telemetry.Counter
	badFrames     *telemetry.Counter
	frameLatency  *telemetry.Histogram
	streamLatency *telemetry.Histogram
}

// sessionState is the server's per-session admission ledger. accepted is
// the op position admitted to the host queue — ahead of Session.Ingested()
// by whatever is queued — and is the position the server acknowledges, so a
// producer never retransmits ops that are merely still in flight.
type sessionState struct {
	mu       sync.Mutex
	sess     *host.Session
	accepted int64
}

// New builds a Server around h drawing tenants from loader.
func New(h *host.Host, loader *config.Loader, opts Options) *Server {
	if opts.ProtectedRoot == "" {
		opts.ProtectedRoot = "/"
	}
	if opts.OverloadRetryAfter <= 0 {
		opts.OverloadRetryAfter = 500 * time.Millisecond
	}
	s := &Server{
		host:     h,
		cfg:      loader,
		opts:     opts,
		sessions: make(map[string]*sessionState),
	}
	s.limit = ratelimit.NewRegistry(func(name string) (float64, float64) {
		if t := loader.Current().TenantByName(name); t != nil {
			return t.RateOps, t.BurstOps
		}
		return 0, 1
	})
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s.frames = reg.Counter("server_frames_total")
	s.opsAccepted = reg.Counter("server_ops_accepted_total")
	s.opsDuplicate = reg.Counter("server_ops_duplicate_total")
	s.authFailures = reg.Counter("server_auth_failures_total")
	s.rateRefusals = reg.Counter("server_rate_refusals_total")
	s.overloads = reg.Counter("server_overload_refusals_total")
	s.gaps = reg.Counter("server_sequence_gaps_total")
	s.badFrames = reg.Counter("server_bad_frames_total")
	s.frameLatency = reg.Histogram("server_frame_seconds", telemetry.DefaultLatencyBuckets())
	s.streamLatency = reg.Histogram("server_stream_seconds", telemetry.DefaultLatencyBuckets())

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/v1/session", s.handleSession)
	s.mux.HandleFunc("/v1/flush", s.handleFlush)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.Handle("/debug/sessions", h.IntrospectionHandler())
	s.mux.Handle("/", telemetry.Handler(reg, opts.Flight, opts.Tracer))
	return s
}

// Handler returns the server's mux: the /v1 ingest API, /healthz, and the
// observability endpoints (/metrics, /debug/sessions, /debug/trace, pprof).
func (s *Server) Handler() http.Handler { return s.mux }

// Reload re-reads the tenant table and re-parameterizes live rate buckets.
// A config that fails to parse leaves the previous table in force.
func (s *Server) Reload() error {
	if err := s.cfg.Reload(); err != nil {
		return err
	}
	s.limit.Reload()
	return nil
}

// ReloadLimits re-parameterizes live rate buckets from the current config —
// the hook for reloads the config.Loader already performed (mtime watch).
func (s *Server) ReloadLimits() { s.limit.Reload() }

// Drain stops admission (new streams answer 503 + draining), then shuts the
// host down: every queue flushes, durable sessions checkpoint, and the
// final per-session reports return. ctx bounds the wait.
func (s *Server) Drain(ctx context.Context) ([]host.SessionReport, error) {
	s.draining.Store(true)
	return s.host.Shutdown(ctx)
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// authenticate resolves the request's bearer token to a tenant.
func (s *Server) authenticate(r *http.Request) *config.Tenant {
	auth := r.Header.Get("Authorization")
	token, ok := strings.CutPrefix(auth, "Bearer ")
	if !ok {
		return nil
	}
	return s.cfg.Current().TenantByToken(strings.TrimSpace(token))
}

// session returns the admission ledger for tenant's session name, opening
// the host session on first use (or re-attaching after a restart, where the
// restored Ingested() position seeds the ledger).
func (s *Server) session(t *config.Tenant, name string) (*sessionState, error) {
	key := t.Name + "/" + name
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.sessions[key]; ok {
		return st, nil
	}
	sess, err := s.host.Open(key, host.SessionConfig{
		Engine:       core.DefaultConfig(s.opts.ProtectedRoot),
		QueueDepth:   t.QueueDepth,
		DegradeAfter: t.DegradeAfter,
	})
	if errors.Is(err, host.ErrSessionExists) {
		sess, _ = s.host.Get(key)
		err = nil
	}
	if err != nil {
		return nil, err
	}
	st := &sessionState{sess: sess, accepted: sess.Ingested()}
	s.sessions[key] = st
	return st, nil
}

// writeAck writes status plus the JSON ack body.
func writeAck(w http.ResponseWriter, status int, ack wire.Ack) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if ack.RetryAfterMs > 0 {
		secs := (ack.RetryAfterMs + 999) / 1000
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ack)
}

// ackFor fills the session-position fields of an ack.
func (st *sessionState) ackFor(session string) wire.Ack {
	st.mu.Lock()
	accepted := st.accepted
	st.mu.Unlock()
	return wire.Ack{
		Session:    session,
		Accepted:   accepted,
		Ingested:   st.sess.Ingested(),
		Degraded:   st.sess.Degraded(),
		Detections: int64(len(st.sess.Detections())),
	}
}

// handleIngest terminates one wire stream: header, then frames until EOF,
// each frame admission-checked (sequence, rate limit, queue) before its ops
// enter the session. The first refusal ends the stream with a status the
// client maps back to a typed sentinel; a clean EOF acks the position.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	defer func() { s.streamLatency.ObserveDuration(time.Since(start)) }()

	if s.draining.Load() {
		writeAck(w, http.StatusServiceUnavailable, wire.Ack{Code: wire.CodeDraining, Error: "server draining", RetryAfterMs: 1000})
		return
	}
	tenant := s.authenticate(r)
	if tenant == nil {
		s.authFailures.Inc()
		writeAck(w, http.StatusUnauthorized, wire.Ack{Code: wire.CodeUnauthorized, Error: wire.ErrUnauthorized.Error()})
		return
	}
	br := bufio.NewReaderSize(r.Body, 64<<10)
	hdr, err := wire.ReadHeader(br)
	if err != nil {
		s.badFrames.Inc()
		writeAck(w, http.StatusBadRequest, wire.Ack{Code: wire.CodeBadFrame, Error: err.Error()})
		return
	}
	st, err := s.session(tenant, hdr.Session)
	if err != nil {
		// Host refused the open: it is closing (drain raced us) or closed.
		writeAck(w, http.StatusServiceUnavailable, wire.Ack{Session: hdr.Session, Code: wire.CodeDraining, Error: err.Error(), RetryAfterMs: 1000})
		return
	}
	for {
		frameStart := time.Now()
		f, err := wire.ReadFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			s.badFrames.Inc()
			writeAck(w, http.StatusBadRequest, wire.Ack{Session: hdr.Session, Code: wire.CodeBadFrame, Error: err.Error()})
			return
		}
		s.frames.Inc()
		if status, ack := s.admit(tenant, st, f); status != 0 {
			ack.Session = hdr.Session
			writeAck(w, status, ack)
			return
		}
		s.frameLatency.ObserveDuration(time.Since(frameStart))
	}
	writeAck(w, http.StatusOK, st.ackFor(hdr.Session))
}

// admit runs one frame through the admission ladder: sequence check (dup
// skip / gap refusal), tenant rate limit, then a non-blocking submit to the
// session queue. A zero status means the frame (or its novel suffix) was
// admitted; otherwise the returned status+ack refuse the stream.
func (s *Server) admit(tenant *config.Tenant, st *sessionState, f wire.Frame) (int, wire.Ack) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if f.Seq > st.accepted {
		s.gaps.Inc()
		return http.StatusConflict, wire.Ack{
			Accepted: st.accepted,
			Code:     wire.CodeGap,
			Error:    fmt.Sprintf("sequence gap: frame at %d, accepted %d", f.Seq, st.accepted),
		}
	}
	ops := f.Ops
	if covered := st.accepted - f.Seq; covered > 0 {
		// Retransmit overlap: skip ops this ledger already admitted.
		if covered >= int64(len(ops)) {
			s.opsDuplicate.Add(int64(len(ops)))
			return 0, wire.Ack{}
		}
		s.opsDuplicate.Add(covered)
		ops = ops[covered:]
	}
	if len(ops) == 0 {
		return 0, wire.Ack{}
	}
	if ok, wait := s.limit.Get(tenant.Name).TakeN(len(ops)); !ok {
		s.rateRefusals.Inc()
		return http.StatusTooManyRequests, wire.Ack{
			Accepted:     st.accepted,
			Code:         wire.CodeRateLimited,
			Error:        wire.ErrRateLimited.Error(),
			RetryAfterMs: wait.Milliseconds(),
		}
	}
	if err := st.sess.TrySubmit(ops...); err != nil {
		switch {
		case errors.Is(err, host.ErrOverloaded):
			s.overloads.Inc()
			return http.StatusTooManyRequests, wire.Ack{
				Accepted:     st.accepted,
				Code:         wire.CodeOverloaded,
				Error:        err.Error(),
				RetryAfterMs: s.opts.OverloadRetryAfter.Milliseconds(),
			}
		case errors.Is(err, host.ErrSessionClosed):
			return http.StatusGone, wire.Ack{Accepted: st.accepted, Code: wire.CodeClosed, Error: err.Error()}
		default:
			return http.StatusInternalServerError, wire.Ack{Accepted: st.accepted, Error: err.Error()}
		}
	}
	st.accepted += int64(len(ops))
	s.opsAccepted.Add(int64(len(ops)))
	return 0, wire.Ack{}
}

// lookup authenticates r and resolves its ?session= to a live ledger.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*sessionState, string, bool) {
	tenant := s.authenticate(r)
	if tenant == nil {
		s.authFailures.Inc()
		writeAck(w, http.StatusUnauthorized, wire.Ack{Code: wire.CodeUnauthorized, Error: wire.ErrUnauthorized.Error()})
		return nil, "", false
	}
	name := r.URL.Query().Get("session")
	if name == "" {
		writeAck(w, http.StatusBadRequest, wire.Ack{Code: wire.CodeBadFrame, Error: "missing session parameter"})
		return nil, "", false
	}
	s.mu.Lock()
	st, ok := s.sessions[tenant.Name+"/"+name]
	s.mu.Unlock()
	if !ok {
		// Not in the ledger — but a restarted server may hold a restored
		// host session the producer is asking about before re-streaming.
		if s.draining.Load() {
			writeAck(w, http.StatusServiceUnavailable, wire.Ack{Session: name, Code: wire.CodeDraining, Error: "server draining", RetryAfterMs: 1000})
			return nil, "", false
		}
		st2, err := s.session(tenant, name)
		if err != nil {
			writeAck(w, http.StatusNotFound, wire.Ack{Session: name, Code: wire.CodeClosed, Error: "unknown session"})
			return nil, "", false
		}
		st = st2
	}
	return st, name, true
}

// handleSession answers the producer's position query: GET
// /v1/session?session=name → the ack the client resumes from.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	st, name, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeAck(w, http.StatusOK, st.ackFor(name))
}

// handleFlush blocks until the session's queue has drained: POST
// /v1/flush?session=name. The ack's Ingested then equals Accepted.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	st, name, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if err := st.sess.Flush(r.Context()); err != nil {
		writeAck(w, http.StatusServiceUnavailable, wire.Ack{Session: name, Error: err.Error()})
		return
	}
	writeAck(w, http.StatusOK, st.ackFor(name))
}

// handleHealth is the liveness probe; draining flips it to 503 so load
// balancers stop routing before the listener closes.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}
