// Package config loads and hot-reloads the cdserver tenant table: which
// bearer tokens are valid, which tenant each maps to, and each tenant's
// rate-limit and session-shape parameters. The file is JSON so operators can
// rotate tokens or retune limits with an edit plus SIGHUP (or rely on the
// mtime poller) — no process restart, no dropped streams.
//
// Only the tenant table hot-reloads. Listen address, checkpoint directory
// and other process-level settings are flags on cdserver: changing where
// durable state lives underneath live sessions is a restart, not a reload.
package config

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Tenant is one producer principal.
type Tenant struct {
	// Name scopes the tenant's sessions, metrics and rate bucket.
	Name string `json:"name"`
	// Token is the bearer token the tenant authenticates with.
	Token string `json:"token"`
	// RateOps is the sustained ingest budget in ops/sec; 0 = unlimited.
	RateOps float64 `json:"rate_ops,omitempty"`
	// BurstOps is the token-bucket depth; defaults to max(RateOps, 1).
	BurstOps float64 `json:"burst_ops,omitempty"`
	// QueueDepth and DegradeAfter shape the tenant's host sessions; zero
	// values take the host defaults.
	QueueDepth   int `json:"queue_depth,omitempty"`
	DegradeAfter int `json:"degrade_after,omitempty"`
}

// Config is one parsed config file.
type Config struct {
	Tenants []Tenant `json:"tenants"`

	byToken map[string]*Tenant
	byName  map[string]*Tenant
}

// Parse validates raw JSON into a Config.
func Parse(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if len(c.Tenants) == 0 {
		return nil, fmt.Errorf("config: no tenants defined")
	}
	c.byToken = make(map[string]*Tenant, len(c.Tenants))
	c.byName = make(map[string]*Tenant, len(c.Tenants))
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if t.Name == "" || t.Token == "" {
			return nil, fmt.Errorf("config: tenant %d: name and token are required", i)
		}
		if _, dup := c.byName[t.Name]; dup {
			return nil, fmt.Errorf("config: duplicate tenant %q", t.Name)
		}
		if _, dup := c.byToken[t.Token]; dup {
			return nil, fmt.Errorf("config: tenants share a token")
		}
		if t.BurstOps == 0 {
			t.BurstOps = t.RateOps
		}
		c.byName[t.Name] = t
		c.byToken[t.Token] = t
	}
	return &c, nil
}

// TenantByToken resolves a bearer token; nil means unauthorized.
func (c *Config) TenantByToken(token string) *Tenant {
	if token == "" {
		return nil
	}
	return c.byToken[token]
}

// TenantByName resolves a tenant name; nil means unknown.
func (c *Config) TenantByName(name string) *Tenant { return c.byName[name] }

// Loader holds the live Config and swaps it atomically on reload, so request
// handlers read a consistent snapshot without locking.
type Loader struct {
	path    string
	current atomic.Pointer[Config]

	mu    sync.Mutex
	mtime time.Time
}

// Load reads and parses path, returning a Loader primed with it.
func Load(path string) (*Loader, error) {
	l := &Loader{path: path}
	if err := l.Reload(); err != nil {
		return nil, err
	}
	return l, nil
}

// Current returns the live config snapshot.
func (l *Loader) Current() *Config { return l.current.Load() }

// Reload re-reads the file. A config that fails to parse leaves the previous
// one in force and returns the error — a bad edit never takes the server's
// auth table down.
func (l *Loader) Reload() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	data, err := os.ReadFile(l.path)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	c, err := Parse(data)
	if err != nil {
		return err
	}
	if st, err := os.Stat(l.path); err == nil {
		l.mtime = st.ModTime()
	}
	l.current.Store(c)
	return nil
}

// Watch polls the file's mtime every interval and reloads on change, calling
// onReload(err) after each attempt (nil on success). It returns when stop is
// closed. SIGHUP-triggered reloads can run concurrently; Reload serializes.
func (l *Loader) Watch(interval time.Duration, stop <-chan struct{}, onReload func(error)) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			st, err := os.Stat(l.path)
			if err != nil {
				continue
			}
			l.mu.Lock()
			changed := !st.ModTime().Equal(l.mtime)
			l.mu.Unlock()
			if !changed {
				continue
			}
			err = l.Reload()
			if onReload != nil {
				onReload(err)
			}
		}
	}
}
