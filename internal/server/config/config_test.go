package config

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

const sample = `{"tenants": [
	{"name": "alpha", "token": "tok-alpha", "rate_ops": 100, "burst_ops": 50},
	{"name": "beta", "token": "tok-beta"}
]}`

func TestParseAndLookup(t *testing.T) {
	c, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if tn := c.TenantByToken("tok-alpha"); tn == nil || tn.Name != "alpha" || tn.RateOps != 100 || tn.BurstOps != 50 {
		t.Fatalf("alpha lookup = %+v", tn)
	}
	if tn := c.TenantByToken("tok-beta"); tn == nil || tn.RateOps != 0 {
		t.Fatalf("beta lookup = %+v", tn)
	}
	if c.TenantByToken("nope") != nil || c.TenantByToken("") != nil {
		t.Fatal("unknown/empty token resolved")
	}
	if c.TenantByName("beta") == nil {
		t.Fatal("name lookup failed")
	}
}

func TestParseRejects(t *testing.T) {
	for name, raw := range map[string]string{
		"empty":      `{"tenants": []}`,
		"no-name":    `{"tenants": [{"token": "x"}]}`,
		"no-token":   `{"tenants": [{"name": "x"}]}`,
		"dup-name":   `{"tenants": [{"name":"a","token":"1"},{"name":"a","token":"2"}]}`,
		"dup-token":  `{"tenants": [{"name":"a","token":"1"},{"name":"b","token":"1"}]}`,
		"bad-syntax": `{"tenants": [`,
	} {
		if _, err := Parse([]byte(raw)); err == nil {
			t.Errorf("%s: parse accepted invalid config", name)
		}
	}
}

// A failed reload keeps the previous config in force.
func TestReloadKeepsLastGood(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cdserver.json")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Reload(); err == nil {
		t.Fatal("reload of broken config succeeded")
	}
	if l.Current().TenantByToken("tok-alpha") == nil {
		t.Fatal("previous config lost after failed reload")
	}
}

// The watcher picks up an edited file.
func TestWatchReloads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cdserver.json")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	reloaded := make(chan error, 1)
	go l.Watch(5*time.Millisecond, stop, func(err error) { reloaded <- err })

	next := `{"tenants": [{"name": "gamma", "token": "tok-gamma"}]}`
	if err := os.WriteFile(path, []byte(next), 0o644); err != nil {
		t.Fatal(err)
	}
	// Ensure the mtime moves even on coarse filesystems.
	future := time.Now().Add(2 * time.Second)
	_ = os.Chtimes(path, future, future)

	select {
	case err := <-reloaded:
		if err != nil {
			t.Fatalf("watch reload: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never reloaded")
	}
	if l.Current().TenantByToken("tok-gamma") == nil {
		t.Fatal("watched reload not visible")
	}
}
