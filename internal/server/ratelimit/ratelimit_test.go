package ratelimit

import (
	"testing"
	"time"
)

// clock is a manually-advanced time source.
type clock struct{ t time.Time }

func (c *clock) now() time.Time { return c.t }

func newTestBucket(rate, burst float64) (*Bucket, *clock) {
	c := &clock{t: time.Unix(1000, 0)}
	b := NewBucket(rate, burst)
	b.now = c.now
	return b, c
}

// Burst passes immediately; the next op waits for a refill.
func TestBurstThenThrottle(t *testing.T) {
	b, c := newTestBucket(10, 5)
	if ok, _ := b.TakeN(5); !ok {
		t.Fatal("burst refused")
	}
	ok, wait := b.TakeN(1)
	if ok {
		t.Fatal("over-burst take passed")
	}
	if wait <= 0 || wait > 200*time.Millisecond {
		t.Fatalf("retry-after = %v, want ~100ms", wait)
	}
	c.t = c.t.Add(wait)
	if ok, _ := b.TakeN(1); !ok {
		t.Fatal("take refused after advertised wait")
	}
}

// Rate 0 never throttles.
func TestUnlimited(t *testing.T) {
	b, _ := newTestBucket(0, 1)
	for i := 0; i < 10_000; i++ {
		if ok, _ := b.TakeN(100); !ok {
			t.Fatal("unlimited bucket refused")
		}
	}
}

// A batch bigger than the whole bucket is admitted once (driving the balance
// negative) rather than wedging the stream forever.
func TestOversizedBatchAdmittedOnce(t *testing.T) {
	b, c := newTestBucket(10, 4)
	if ok, _ := b.TakeN(40); !ok {
		t.Fatal("oversized batch refused at full bucket")
	}
	ok, wait := b.TakeN(1)
	if ok {
		t.Fatal("bucket not in deficit after oversized batch")
	}
	// Deficit is 36 + 1 needed… but need is clamped to burst=4, so the wait
	// covers refilling back to 4 tokens: (4-(-36))/10 = 4s.
	if wait < 3*time.Second {
		t.Fatalf("deficit wait = %v, want multiple seconds", wait)
	}
	c.t = c.t.Add(wait)
	if ok, _ := b.TakeN(1); !ok {
		t.Fatal("take refused after deficit wait")
	}
}

// Hot reload re-parameterizes live buckets.
func TestRegistryReload(t *testing.T) {
	rate := 0.0
	reg := NewRegistry(func(string) (float64, float64) { return rate, 2 })
	b := reg.Get("tenant-a")
	if ok, _ := b.TakeN(1000); !ok {
		t.Fatal("unlimited refused")
	}
	rate = 1
	reg.Reload()
	if reg.Get("tenant-a") != b {
		t.Fatal("reload replaced the bucket instance")
	}
	// First take after re-enable is admitted (oversized-batch rule, driving
	// the bucket into deficit); from then on the limit bites.
	if ok, _ := b.TakeN(1000); !ok {
		t.Fatal("first take after re-enable refused")
	}
	if ok, wait := b.TakeN(1); ok || wait <= 0 {
		t.Fatalf("reloaded bucket still unlimited (ok=%v wait=%v)", ok, wait)
	}
}
