// Package ratelimit is the server's per-tenant admission throttle: a classic
// token-bucket limiter keyed by tenant name. Each bucket refills at a steady
// ops/sec rate up to a burst ceiling; an ingest frame spends one token per
// op. A refused take names the wait after which it would succeed, which the
// server surfaces as Retry-After — the client retransmits, so throttling
// delays ops but never drops them.
package ratelimit

import (
	"math"
	"sync"
	"time"
)

// Bucket is one token bucket. Rate 0 means unlimited.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; 0 = unlimited
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewBucket returns a full bucket refilling at rate tokens/sec with the
// given burst capacity. rate <= 0 disables limiting; burst < 1 is raised to
// 1 so a single op can always eventually pass.
func NewBucket(rate, burst float64) *Bucket {
	if burst < 1 {
		burst = 1
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
}

// SetParams updates rate and burst in place (config hot reload). The current
// fill is clamped to the new burst; a disabled bucket refills instantly on
// re-enable.
func (b *Bucket) SetParams(rate, burst float64) {
	if burst < 1 {
		burst = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	b.rate, b.burst = rate, burst
	if b.tokens > burst {
		b.tokens = burst
	}
}

// TakeN spends n tokens if the bucket holds them. On refusal it reports how
// long until n tokens will be available, rounded up to a whole millisecond
// so a zero wait is never reported for a real deficit.
func (b *Bucket) TakeN(n int) (ok bool, retryAfter time.Duration) {
	if n <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return true, 0
	}
	b.refillLocked()
	need := float64(n)
	if need > b.burst {
		// A batch larger than the bucket can never pass whole; admit it at
		// the cost of driving the bucket negative, which throttles the
		// stream afterward instead of wedging it forever.
		need = b.burst
	}
	if b.tokens >= need {
		b.tokens -= float64(n)
		return true, 0
	}
	wait := (need - b.tokens) / b.rate
	d := time.Duration(math.Ceil(wait*1e3)) * time.Millisecond
	if d <= 0 {
		d = time.Millisecond
	}
	return false, d
}

// refillLocked credits tokens for elapsed time. Callers hold b.mu.
func (b *Bucket) refillLocked() {
	now := b.now()
	if !b.last.IsZero() && b.rate > 0 {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// Registry maps tenant keys to buckets, creating each on first use with the
// parameters the provider returns for that key. Reload re-reads parameters
// for every live bucket — the hot-reload hook.
type Registry struct {
	mu      sync.Mutex
	buckets map[string]*Bucket
	params  func(key string) (rate, burst float64)
}

// NewRegistry returns a registry drawing per-key parameters from params.
func NewRegistry(params func(key string) (rate, burst float64)) *Registry {
	return &Registry{buckets: make(map[string]*Bucket), params: params}
}

// Get returns the bucket for key, creating it on first use.
func (r *Registry) Get(key string) *Bucket {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.buckets[key]
	if !ok {
		rate, burst := r.params(key)
		b = NewBucket(rate, burst)
		r.buckets[key] = b
	}
	return b
}

// Reload pushes current provider parameters into every live bucket.
func (r *Registry) Reload() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for key, b := range r.buckets {
		b.SetParams(r.params(key))
	}
}

// Forget drops the bucket for key (tenant removed from config).
func (r *Registry) Forget(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.buckets, key)
}
