package server_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"cryptodrop/internal/server/client"
)

// BenchmarkWireIngest measures the full wire ingest path — framing, HTTP,
// auth, admission, queue — per 8-op batch against a loopback service. The
// batch rewrites the same files each iteration, the shape of a working set
// under steady edits.
func BenchmarkWireIngest(b *testing.B) {
	dir := b.TempDir()
	cfgPath := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(cfgPath, []byte(`{"tenants": [{"name": "alpha", "token": "tok-alpha"}]}`), 0o644); err != nil {
		b.Fatal(err)
	}
	svc := startService(b, cfgPath, "", false)
	defer svc.http.Close()
	defer func() { _, _ = svc.srv.Drain(context.Background()) }()

	ctx := context.Background()
	const batch = 8
	ops := benignOps(700, batch, 4096)
	st, err := client.New(svc.http.URL, "tok-alpha").Open(ctx, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(batch * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Submit(ctx, ops...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, err := st.Flush(ctx); err != nil {
		b.Fatal(err)
	}
}
