package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cryptodrop"
	"cryptodrop/internal/host"
	"cryptodrop/internal/server"
	"cryptodrop/internal/server/client"
	"cryptodrop/internal/server/config"
	"cryptodrop/internal/server/wire"
	"cryptodrop/internal/telemetry"
)

// e2e tenant table: alpha and beta are ordinary tenants; hot is shaped to
// overload trivially (queue of 1 batch, degrade on the first saturation);
// trickle is rate-starved so the second op in any burst is refused.
const e2eTenants = `{"tenants": [
	{"name": "alpha",   "token": "tok-alpha"},
	{"name": "beta",    "token": "tok-beta"},
	{"name": "hot",     "token": "tok-hot", "queue_depth": 1, "degrade_after": 1},
	{"name": "trickle", "token": "tok-trickle", "rate_ops": 0.1, "burst_ops": 1}
]}`

// testService is one running ingest service over a durable host.
type testService struct {
	host *host.Host
	srv  *server.Server
	http *httptest.Server
	reg  *telemetry.Registry
}

func startService(t testing.TB, cfgPath, ckptDir string, restore bool) *testService {
	t.Helper()
	loader, err := config.Load(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	h := host.New(host.Config{
		Telemetry:       reg,
		CheckpointDir:   ckptDir,
		CheckpointEvery: 8,
		Restore:         restore,
	})
	srv := server.New(h, loader, server.Options{
		ProtectedRoot:      "/docs",
		Telemetry:          reg,
		OverloadRetryAfter: 5 * time.Millisecond,
	})
	return &testService{host: h, srv: srv, http: httptest.NewServer(srv.Handler()), reg: reg}
}

// benignOps builds n distinct low-entropy rewrite ops for a tenant stream.
func benignOps(pid, n int, size int) []cryptodrop.Op {
	ops := make([]cryptodrop.Op, 0, n)
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		line := fmt.Sprintf("file %d line of ordinary prose for the ingest stream.\n", i)
		before := bytes.Repeat([]byte(line), size/len(line)+1)[:size]
		after := append(append([]byte(nil), before...), []byte("appended edit\n")...)
		ops = append(ops, cryptodrop.OpWrite(pid, fmt.Sprintf("/docs/f%04d.txt", i), id, before, after))
	}
	return ops
}

// TestServiceEndToEnd drives the full service contract: three tenants
// stream concurrently, the shaped tenant is forced into overload (429 +
// degrade, with every op still landing), drain checkpoints every session,
// and a restarted service resumes each session at its exact position.
func TestServiceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(cfgPath, []byte(e2eTenants), 0o644); err != nil {
		t.Fatal(err)
	}
	svc := startService(t, cfgPath, ckptDir, false)
	defer svc.http.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Phase 1 — three tenants stream concurrently; alpha and beta batch
	// comfortably, hot single-frames heavy content at a one-slot queue.
	const perTenant = 40
	type result struct {
		name string
		sent int64
		err  error
	}
	results := make(chan result, 3)
	for _, tn := range []struct{ name, token string }{{"alpha", "tok-alpha"}, {"beta", "tok-beta"}} {
		go func(name, token string) {
			st, err := client.New(svc.http.URL, token).Open(ctx, "docs")
			if err != nil {
				results <- result{name, 0, err}
				return
			}
			ops := benignOps(100, perTenant, 512)
			for i := 0; i < len(ops); i += 8 {
				if err := st.Submit(ctx, ops[i:min(i+8, len(ops))]...); err != nil {
					results <- result{name, st.Position(), err}
					return
				}
			}
			results <- result{name, st.Position(), nil}
		}(tn.name, tn.token)
	}
	// The hot tenant: one pipelined request body carrying all ops as
	// single-op frames. The handler admits them back to back with no
	// network round trip in between, so the one-slot queue must saturate —
	// the first refusal 429s the stream at the acknowledged position, and
	// the producer retransmits the rest from there. Deterministic overload,
	// zero dropped ops.
	go func() {
		ops := benignOps(200, perTenant, 32<<10)
		acked := int64(0)
		for acked < int64(len(ops)) {
			status, ack, err := postFrames(svc.http.URL, "tok-hot", "stress", acked, ops[acked:])
			if err != nil {
				results <- result{"hot", acked, err}
				return
			}
			if ack.Accepted > acked {
				acked = ack.Accepted
			}
			switch {
			case status == http.StatusOK:
			case status == http.StatusTooManyRequests:
				time.Sleep(2 * time.Millisecond) // let the queue drain a little
			default:
				results <- result{"hot", acked, fmt.Errorf("HTTP %d: %s", status, ack.Error)}
				return
			}
		}
		results <- result{"hot", acked, nil}
	}()
	sent := map[string]int64{}
	for i := 0; i < 3; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("tenant %s: %v", r.name, r.err)
		}
		sent[r.name] = r.sent
	}
	for name, n := range sent {
		if n != perTenant {
			t.Fatalf("tenant %s acknowledged %d ops, want %d", name, n, perTenant)
		}
	}

	// The hot session must have seen real overload refusals and degraded to
	// payload-blind scoring — and still have lost nothing.
	if sess, ok := svc.host.Get("hot/stress"); !ok || !sess.Degraded() {
		t.Fatalf("hot session degraded = %v (exists %v), want degraded", ok && sess.Degraded(), ok)
	}
	if v := svc.reg.Counter("server_overload_refusals_total").Value(); v == 0 {
		t.Fatal("no overload 429s were served to the hot tenant")
	}
	hotAck, err := mustStream(t, ctx, svc.http.URL, "tok-hot", "stress").Flush(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hotAck.Ingested != perTenant || !hotAck.Degraded {
		t.Fatalf("hot after flush: ingested=%d degraded=%v, want %d/true", hotAck.Ingested, hotAck.Degraded, perTenant)
	}

	// Typed sentinels round-trip the wire.
	if _, err := client.New(svc.http.URL, "tok-wrong").Open(ctx, "x"); !errors.Is(err, wire.ErrUnauthorized) {
		t.Fatalf("bad token: err = %v, want ErrUnauthorized", err)
	}
	tc := client.New(svc.http.URL, "tok-trickle")
	tc.MaxAttempts = 1
	tst, err := tc.Open(ctx, "drip")
	if err != nil {
		t.Fatal(err)
	}
	drip := benignOps(300, 2, 64)
	if err := tst.Submit(ctx, drip[0]); err != nil {
		t.Fatalf("first trickle op (within burst): %v", err)
	}
	if err := tst.Submit(ctx, drip[1]); !errors.Is(err, wire.ErrRateLimited) {
		t.Fatalf("second trickle op: err = %v, want ErrRateLimited", err)
	}
	// A frame leaving a sequence gap is refused with 409/gap.
	if status, ack := rawFrame(t, svc.http.URL, "tok-alpha", "docs", 9999); status != http.StatusConflict || ack.Code != wire.CodeGap {
		t.Fatalf("gap frame: HTTP %d code %q, want 409 %q", status, ack.Code, wire.CodeGap)
	}

	// Phase 2 — drain: admission stops, queues flush, sessions checkpoint.
	reports, err := svc.srv.Drain(ctx)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(reports) != 4 {
		t.Fatalf("drain reported %d sessions, want 4", len(reports))
	}
	if !svc.srv.Draining() {
		t.Fatal("server not marked draining")
	}
	if _, err := client.New(svc.http.URL, "tok-alpha").Open(ctx, "post-drain"); !errors.Is(err, host.ErrHostClosed) {
		t.Fatalf("open during drain: err = %v, want ErrHostClosed", err)
	}
	ckpts, err := filepath.Glob(filepath.Join(ckptDir, "*.ckpt"))
	if err != nil || len(ckpts) != 4 {
		t.Fatalf("checkpoint files after drain = %d (%v), want 4", len(ckpts), err)
	}
	svc.http.Close()

	// Phase 3 — restart with -restore: every session resumes at the exact
	// acknowledged position, so producers resynchronize and continue.
	svc2 := startService(t, cfgPath, ckptDir, true)
	defer svc2.http.Close()
	defer func() {
		if _, err := svc2.srv.Drain(context.Background()); err != nil {
			t.Errorf("final drain: %v", err)
		}
	}()
	for _, tn := range []struct{ token, session string }{
		{"tok-alpha", "docs"}, {"tok-beta", "docs"}, {"tok-hot", "stress"},
	} {
		st, err := client.New(svc2.http.URL, tn.token).Open(ctx, tn.session)
		if err != nil {
			t.Fatalf("reopen %s/%s: %v", tn.token, tn.session, err)
		}
		if st.Position() != perTenant {
			t.Fatalf("restored %s/%s position = %d, want %d", tn.token, tn.session, st.Position(), perTenant)
		}
	}
	// And the stream continues from there: alpha appends more ops.
	st, err := client.New(svc2.http.URL, "tok-alpha").Open(ctx, "docs")
	if err != nil {
		t.Fatal(err)
	}
	more := benignOps(101, 5, 512)
	if err := st.Submit(ctx, more...); err != nil {
		t.Fatalf("post-restore submit: %v", err)
	}
	ack, err := st.Flush(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Ingested != perTenant+5 {
		t.Fatalf("post-restore ingested = %d, want %d", ack.Ingested, perTenant+5)
	}
}

// mustStream opens a wire stream or fails the test.
func mustStream(t *testing.T, ctx context.Context, base, token, session string) *client.Stream {
	t.Helper()
	st, err := client.New(base, token).Open(ctx, session)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// postFrames posts one request body pipelining every op as its own frame,
// sequenced from seq, and returns the server's ack.
func postFrames(base, token, session string, seq int64, ops []cryptodrop.Op) (int, wire.Ack, error) {
	buf := wire.AppendHeader(nil, session)
	for i, op := range ops {
		buf = wire.AppendFrame(buf, seq+int64(i), []cryptodrop.Op{op})
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/ingest", bytes.NewReader(buf))
	if err != nil {
		return 0, wire.Ack{}, err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, wire.Ack{}, err
	}
	defer resp.Body.Close()
	var ack wire.Ack
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return resp.StatusCode, wire.Ack{}, err
	}
	return resp.StatusCode, ack, nil
}

// rawFrame posts one hand-built frame at an arbitrary sequence position.
func rawFrame(t *testing.T, base, token, session string, seq int64) (int, wire.Ack) {
	t.Helper()
	buf := wire.AppendHeader(nil, session)
	buf = wire.AppendFrame(buf, seq, benignOps(1, 1, 64))
	req, err := http.NewRequest(http.MethodPost, base+"/v1/ingest", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack wire.Ack
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, ack
}
