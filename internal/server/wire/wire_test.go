package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"cryptodrop/internal/core"
	"cryptodrop/internal/host"
)

func sampleOps() []host.Op {
	pre := core.Event{Kind: core.EvOpen, PID: 41, Path: "docs/a.txt", FileID: 7, Flags: core.EvWriteIntent, Size: 11}
	return []host.Op{
		{
			PreEvent: &pre,
			Pre:      map[uint64][]byte{7: []byte("hello world")},
			Event:    core.Event{Kind: core.EvClose, PID: 41, Path: "docs/a.txt", FileID: 7, Wrote: true},
			Post:     map[uint64][]byte{7: []byte{0x8f, 0x01, 0x22, 0xd9}},
		},
		{
			Event: core.Event{Kind: core.EvRename, PID: 41, Path: "docs/a.txt", NewPath: "docs/a.txt.locked", FileID: 7},
			Evict: []uint64{7},
			Post:  nil,
			Pre:   nil,
		},
		{Event: core.Event{Kind: core.EvDelete, PID: 41, Path: "docs/b.txt", FileID: 9}},
	}
}

// A header and a run of frames round-trip bit-exactly through the codec, and
// a clean end of stream surfaces as io.EOF.
func TestStreamRoundTrip(t *testing.T) {
	ops := sampleOps()
	buf := AppendHeader(nil, "tenant-a/session-1")
	buf = AppendFrame(buf, 0, ops[:2])
	buf = AppendFrame(buf, 2, ops[2:])
	buf = AppendFrame(buf, 3, nil) // empty heartbeat frame is legal

	r := bufio.NewReader(bytes.NewReader(buf))
	h, err := ReadHeader(r)
	if err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	if h.Version != Version || h.Session != "tenant-a/session-1" {
		t.Fatalf("header = %+v", h)
	}
	var got []host.Op
	var seqs []int64
	for {
		f, err := ReadFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		seqs = append(seqs, f.Seq)
		got = append(got, f.Ops...)
	}
	if want := []int64{0, 2, 3}; !reflect.DeepEqual(seqs, want) {
		t.Fatalf("seqs = %v, want %v", seqs, want)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("ops did not round-trip:\n got %+v\nwant %+v", got, ops)
	}
}

// Every truncation point of a valid stream fails with ErrBadFrame (or clean
// EOF exactly at a frame boundary) — never a panic, never garbage ops.
func TestTornStream(t *testing.T) {
	full := AppendHeader(nil, "s")
	headerLen := len(full)
	full = AppendFrame(full, 0, sampleOps())
	for cut := 0; cut < len(full); cut++ {
		r := bufio.NewReader(bytes.NewReader(full[:cut]))
		h, err := ReadHeader(r)
		if cut < headerLen {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("cut %d: header err = %v, want ErrBadFrame", cut, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: header err = %v", cut, err)
		}
		if h.Session != "s" {
			t.Fatalf("cut %d: session %q", cut, h.Session)
		}
		if _, err := ReadFrame(r); !errors.Is(err, ErrBadFrame) && err != io.EOF {
			t.Fatalf("cut %d: frame err = %v, want ErrBadFrame or EOF", cut, err)
		}
	}
}

// A flipped payload bit fails the checksum.
func TestCorruptFrame(t *testing.T) {
	buf := AppendFrame(nil, 5, sampleOps())
	buf[len(buf)/2] ^= 0x40
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(buf))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

// A hostile frame length beyond MaxFrameBytes is refused before allocation.
func TestOversizedFrameRefused(t *testing.T) {
	buf := binary.AppendUvarint(nil, MaxFrameBytes+1)
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(buf))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

// Wrong magic and unknown version are refused at the header.
func TestHeaderValidation(t *testing.T) {
	if _, err := ReadHeader(bufio.NewReader(bytes.NewReader([]byte("NOPE\x01\x01s")))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad magic: err = %v", err)
	}
	future := append([]byte(Magic), 0x7f) // version 127
	future = append(future, 0x01, 's')
	if _, err := ReadHeader(bufio.NewReader(bytes.NewReader(future))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("future version: err = %v", err)
	}
	empty := AppendHeader(nil, "")
	if _, err := ReadHeader(bufio.NewReader(bytes.NewReader(empty))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty session: err = %v", err)
	}
}

// Trailing garbage inside a checksummed payload is structural corruption.
func TestTrailingBytesRefused(t *testing.T) {
	// Build a frame whose payload has two extra bytes after the ops.
	inner := AppendFrame(nil, 0, nil)
	// Decode the valid frame's payload, extend it, reframe with a fresh sum.
	n, sz := binary.Uvarint(inner)
	payload := append([]byte(nil), inner[sz:sz+int(n)]...)
	payload = append(payload, 0xde, 0xad)
	buf := binary.AppendUvarint(nil, uint64(len(payload)))
	buf = append(buf, payload...)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], fnv64a(payload))
	buf = append(buf, sum[:]...)
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(buf))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

// FuzzReadFrame hammers the frame decoder with arbitrary bytes: it must
// return a frame or an error, never panic, and every valid encode of what it
// decoded must re-decode identically.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendFrame(nil, 0, sampleOps()))
	f.Add(AppendFrame(nil, 1<<40, nil))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		again, err := ReadFrame(bufio.NewReader(bytes.NewReader(AppendFrame(nil, fr.Seq, fr.Ops))))
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if again.Seq != fr.Seq || len(again.Ops) != len(fr.Ops) {
			t.Fatalf("re-encode drifted: %+v vs %+v", again, fr)
		}
	})
}
