// Package wire is the versioned network encoding of the detection-as-a-
// service ingest protocol: the frames a remote producer streams into
// cdserver's /v1/ingest endpoint and the typed sentinels both ends of the
// connection dispatch on.
//
// A stream is one request body:
//
//	"CDWF" | uvarint version | string sessionID        stream header, once
//	frame…                                             until EOF
//
// and each frame is length-framed and checksummed exactly like a write-ahead
// log record, carrying the canonical op codec the durable sessions already
// use (internal/snapshot primitives via host.EncodeOps):
//
//	uvarint len(payload) | payload | u64 FNV-64a(payload), little-endian
//	payload = varint seq | count-prefixed ops
//
// seq is the producer's op position of the frame's first op — the session's
// total ops sent before this frame. It makes ingest idempotent: a server
// that already accepted part of the frame (a retransmit after a 429 or a
// reconnect after a crash) skips the covered prefix, and a frame that would
// leave a gap is refused instead of silently corrupting the stream. The
// client recovers the authoritative position from the server
// (Session.Ingested() on the far side) and resumes from there.
//
// Decoding never panics on hostile input: frame lengths are capped by
// MaxFrameBytes before allocation and every inner length is validated by the
// snapshot decoder's guards. A torn or corrupt frame fails with ErrBadFrame;
// a clean end of stream is io.EOF from ReadFrame.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cryptodrop/internal/host"
	"cryptodrop/internal/snapshot"
)

// Magic opens every ingest stream.
const Magic = "CDWF"

// Version is the wire-format version this build speaks. The stream header
// carries it; a server refuses versions it does not know.
const Version = 1

// MaxFrameBytes caps one frame's payload — the allocation-bomb guard for
// hostile length fields, and the practical upper bound on one batch's staged
// content.
const MaxFrameBytes = 16 << 20

// Typed sentinels of the service protocol, shared by server and client so
// errors.Is dispatches identically on both ends of the connection. (The
// hosting layer's ErrOverloaded, ErrSessionClosed and ErrHostClosed round-
// trip the wire too; see package client.)
var (
	// ErrUnauthorized reports a request whose bearer token matched no
	// configured tenant.
	ErrUnauthorized = errors.New("server: unauthorized")
	// ErrRateLimited reports a request refused by the tenant's token bucket;
	// retry after the interval the response names.
	ErrRateLimited = errors.New("server: rate limited")
	// ErrBadFrame reports a structurally invalid stream: wrong magic, unknown
	// version, oversized/torn/corrupt frame, or a sequence gap.
	ErrBadFrame = errors.New("wire: bad frame")
)

// Error codes carried in ack bodies, so HTTP status codes (which overlap:
// two distinct conditions answer 429) map losslessly back to sentinels.
const (
	CodeUnauthorized = "unauthorized"
	CodeRateLimited  = "rate-limited"
	CodeOverloaded   = "overloaded"
	CodeClosed       = "session-closed"
	CodeDraining     = "draining"
	CodeBadFrame     = "bad-frame"
	CodeGap          = "gap"
)

// Ack is the server's JSON answer to an ingest stream or a position query.
type Ack struct {
	// Session is the tenant-scoped session the ack describes.
	Session string `json:"session"`
	// Accepted is the server's op position: ops admitted to the session's
	// ingest queue so far. The client resumes from here.
	Accepted int64 `json:"accepted"`
	// Ingested is the durable op position: ops the engine has applied.
	Ingested int64 `json:"ingested"`
	// Degraded reports payload-blind scoring; Detections counts the
	// session's detections so far.
	Degraded   bool  `json:"degraded"`
	Detections int64 `json:"detections"`
	// Code and Error carry the protocol error that ended the stream, empty
	// on success. Code is one of the Code* constants.
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`
	// RetryAfterMs is the throttle wait in milliseconds on a 429, finer
	// grained than the whole-second Retry-After header.
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
}

// Header is the decoded stream header.
type Header struct {
	// Version is the announced wire version.
	Version uint64
	// Session is the producer's session name (scoped per tenant server-side).
	Session string
}

// AppendHeader appends the stream header for session to buf.
func AppendHeader(buf []byte, session string) []byte {
	enc := snapshot.NewEncoder()
	enc.Uvarint(Version)
	enc.String(session)
	return append(append(buf, Magic...), enc.Data()...)
}

// ReadHeader reads and validates the stream header.
func ReadHeader(r *bufio.Reader) (Header, error) {
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return Header{}, fmt.Errorf("%w: short header: %v", ErrBadFrame, err)
	}
	if string(magic[:]) != Magic {
		return Header{}, fmt.Errorf("%w: bad magic %q", ErrBadFrame, magic[:])
	}
	var h Header
	var err error
	if h.Version, err = binary.ReadUvarint(r); err != nil {
		return Header{}, fmt.Errorf("%w: truncated version", ErrBadFrame)
	}
	if h.Version != Version {
		return Header{}, fmt.Errorf("%w: unsupported wire version %d (have %d)", ErrBadFrame, h.Version, Version)
	}
	n, err := binary.ReadUvarint(r)
	if err != nil || n > MaxFrameBytes {
		return Header{}, fmt.Errorf("%w: bad session-ID length", ErrBadFrame)
	}
	id := make([]byte, n)
	if _, err := io.ReadFull(r, id); err != nil {
		return Header{}, fmt.Errorf("%w: truncated session ID", ErrBadFrame)
	}
	h.Session = string(id)
	if h.Session == "" {
		return Header{}, fmt.Errorf("%w: empty session ID", ErrBadFrame)
	}
	return h, nil
}

// Frame is one decoded op batch.
type Frame struct {
	// Seq is the op position of the first op — the producer's count of ops
	// sent on this session before the frame.
	Seq int64
	// Ops is the batch, in submission order.
	Ops []host.Op
}

// AppendFrame appends one framed, checksummed op batch to buf.
func AppendFrame(buf []byte, seq int64, ops []host.Op) []byte {
	enc := snapshot.NewEncoder()
	enc.Varint(seq)
	host.EncodeOps(enc, ops)
	payload := enc.Data()
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], fnv64a(payload))
	return append(buf, sum[:]...)
}

// ReadFrame reads the next frame. A clean end of stream — EOF exactly at a
// frame boundary — returns io.EOF; anything torn, oversized or corrupt
// wraps ErrBadFrame.
func ReadFrame(r *bufio.Reader) (Frame, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: torn frame length", ErrBadFrame)
	}
	if n > MaxFrameBytes {
		return Frame{}, fmt.Errorf("%w: frame of %d bytes exceeds cap %d", ErrBadFrame, n, MaxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("%w: torn frame payload", ErrBadFrame)
	}
	var sum [8]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return Frame{}, fmt.Errorf("%w: torn frame checksum", ErrBadFrame)
	}
	if fnv64a(payload) != binary.LittleEndian.Uint64(sum[:]) {
		return Frame{}, fmt.Errorf("%w: frame checksum failed", ErrBadFrame)
	}
	d := snapshot.NewDecoder(payload)
	f := Frame{Seq: d.Varint()}
	f.Ops = host.DecodeOps(d)
	if d.Err() != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrBadFrame, d.Err())
	}
	if d.Len() != 0 {
		return Frame{}, fmt.Errorf("%w: %d trailing bytes in frame", ErrBadFrame, d.Len())
	}
	if f.Seq < 0 {
		return Frame{}, fmt.Errorf("%w: negative sequence %d", ErrBadFrame, f.Seq)
	}
	return f, nil
}

// fnv64a is FNV-1a over data — the same per-record checksum the WAL uses.
func fnv64a(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}
