// Package client is the producer side of the detection service: it speaks
// the wire protocol to a cdserver, with the retry discipline the service
// contract requires. Each Stream tracks the server-acknowledged op position;
// Submit frames a batch at that position and retransmits on 429 (honoring
// Retry-After with jittered exponential backoff) or transport failure until
// the server acks — so throttling and reconnects delay ops but never drop
// them. Open resynchronizes the position from the server, making resume
// after either side restarts automatic: already-ingested prefixes are
// skipped server-side via the frame sequence number.
//
// Server refusals come back as the shared typed sentinels — wire and host
// errors round-trip the connection, so errors.Is works identically in a
// remote producer and an in-process one:
//
//	errors.Is(err, wire.ErrUnauthorized)  bad/rotated token (not retried)
//	errors.Is(err, wire.ErrRateLimited)   tenant over budget (retried)
//	errors.Is(err, host.ErrOverloaded)    ingest queue full (retried)
//	errors.Is(err, host.ErrSessionClosed) session gone (not retried)
//	errors.Is(err, wire.ErrBadFrame)      protocol violation (not retried)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"cryptodrop/internal/host"
	"cryptodrop/internal/server/wire"
)

// Client is a handle on one cdserver as one tenant.
type Client struct {
	base  string // e.g. http://127.0.0.1:8080
	token string
	http  *http.Client

	// MaxAttempts bounds retries per Submit for retryable refusals
	// (rate limit, overload, transport). Default 10.
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff when the server names no
	// Retry-After. Default 50ms.
	BaseBackoff time.Duration
}

// New returns a client for the server at base (scheme://host:port)
// authenticating with token. Connections are pooled aggressively: a load
// generator drives hundreds of concurrent streams through one Client.
func New(base, token string) *Client {
	tr := &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Client{
		base:        base,
		token:       token,
		http:        &http.Client{Transport: tr},
		MaxAttempts: 10,
		BaseBackoff: 50 * time.Millisecond,
	}
}

// Stream is one session's producer: a position cursor plus the framing
// machinery. Safe for use from one goroutine; open one Stream per session.
type Stream struct {
	c       *Client
	session string

	mu  sync.Mutex
	pos int64 // server-acknowledged op position
}

// sentinelFor maps an ack's error code back to the shared typed sentinel.
func sentinelFor(code string) error {
	switch code {
	case wire.CodeUnauthorized:
		return wire.ErrUnauthorized
	case wire.CodeRateLimited:
		return wire.ErrRateLimited
	case wire.CodeOverloaded:
		return host.ErrOverloaded
	case wire.CodeClosed:
		return host.ErrSessionClosed
	case wire.CodeDraining:
		return host.ErrHostClosed
	case wire.CodeBadFrame, wire.CodeGap:
		return wire.ErrBadFrame
	default:
		return nil
	}
}

// retryable reports refusals Submit should wait out and retransmit.
func retryable(code string) bool {
	switch code {
	case wire.CodeRateLimited, wire.CodeOverloaded, wire.CodeDraining:
		return true
	}
	return false
}

// ackError converts a refusal ack to an error wrapping its sentinel.
func ackError(status int, ack wire.Ack) error {
	if sent := sentinelFor(ack.Code); sent != nil {
		return fmt.Errorf("client: server refused (HTTP %d): %w: %s", status, sent, ack.Error)
	}
	return fmt.Errorf("client: server refused (HTTP %d): %s", status, ack.Error)
}

// do runs one request and decodes the ack.
func (c *Client) do(req *http.Request) (int, wire.Ack, error) {
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, wire.Ack{}, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	var ack wire.Ack
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ack); err != nil {
		return resp.StatusCode, wire.Ack{}, fmt.Errorf("client: HTTP %d with undecodable ack: %w", resp.StatusCode, err)
	}
	return resp.StatusCode, ack, nil
}

// Open returns a Stream for session, resynchronized to the server's
// acknowledged position (0 for a new session; the restored position after a
// server restart). The server materializes the session on first contact.
func (c *Client) Open(ctx context.Context, session string) (*Stream, error) {
	s := &Stream{c: c, session: session}
	ack, err := s.query(ctx)
	if err != nil {
		return nil, err
	}
	s.pos = ack.Accepted
	return s, nil
}

// query fetches the server-side ack for the stream's session.
func (s *Stream) query(ctx context.Context) (wire.Ack, error) {
	u := s.c.base + "/v1/session?session=" + url.QueryEscape(s.session)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return wire.Ack{}, err
	}
	status, ack, err := s.c.do(req)
	if err != nil {
		return wire.Ack{}, err
	}
	if status != http.StatusOK {
		return ack, ackError(status, ack)
	}
	return ack, nil
}

// Position returns the server-acknowledged op position.
func (s *Stream) Position() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pos
}

// Submit streams ops to the session, retrying refusals until the server
// acknowledges them all or ctx expires. On a 429 the wait is the server's
// Retry-After hint (capped at 5s), otherwise jittered exponential backoff;
// each retransmit is framed at the acknowledged position, so the server
// skips any prefix admitted before a mid-stream refusal. Non-retryable
// refusals (auth, closed session, protocol violation) return immediately
// with their typed sentinel.
func (s *Stream) Submit(ctx context.Context, ops ...host.Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(ops) == 0 {
		return nil
	}
	backoff := s.c.BaseBackoff
	var lastErr error
	for attempt := 0; attempt < s.c.MaxAttempts; attempt++ {
		status, ack, err := s.post(ctx, ops)
		if err != nil {
			// Transport failure: the server's admission ledger is the truth
			// now; resync before retransmitting so we re-frame correctly.
			lastErr = err
			if ctx.Err() != nil {
				return fmt.Errorf("client: submit %q: %w", s.session, ctx.Err())
			}
			if ack, qerr := s.query(ctx); qerr == nil {
				s.advance(ack.Accepted, &ops)
			}
		} else if status == http.StatusOK {
			s.advance(ack.Accepted, &ops)
			if len(ops) == 0 {
				return nil
			}
			lastErr = fmt.Errorf("client: server acked %d short of batch end", ack.Accepted)
		} else {
			s.advance(ack.Accepted, &ops)
			if !retryable(ack.Code) {
				return ackError(status, ack)
			}
			lastErr = ackError(status, ack)
			if ms := ack.RetryAfterMs; ms > 0 {
				backoff = time.Duration(ms) * time.Millisecond
			}
		}
		if len(ops) == 0 {
			return nil
		}
		wait := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		if wait > 5*time.Second {
			wait = 5 * time.Second
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("client: submit %q: %w", s.session, ctx.Err())
		case <-time.After(wait):
		}
		backoff *= 2
	}
	return fmt.Errorf("client: submit %q: gave up after %d attempts: %w", s.session, s.c.MaxAttempts, lastErr)
}

// advance moves the cursor to acked and trims the acknowledged prefix of
// the pending batch. Callers hold s.mu.
func (s *Stream) advance(acked int64, ops *[]host.Op) {
	if acked <= s.pos {
		return
	}
	n := acked - s.pos
	s.pos = acked
	if n >= int64(len(*ops)) {
		*ops = nil
		return
	}
	*ops = (*ops)[n:]
}

// post sends one framed batch at the current position.
func (s *Stream) post(ctx context.Context, ops []host.Op) (int, wire.Ack, error) {
	buf := wire.AppendHeader(nil, s.session)
	buf = wire.AppendFrame(buf, s.pos, ops)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.c.base+"/v1/ingest", bytes.NewReader(buf))
	if err != nil {
		return 0, wire.Ack{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	return s.c.do(req)
}

// Flush blocks until every submitted op has been applied by the engine —
// the remote analogue of Session.Flush.
func (s *Stream) Flush(ctx context.Context) (wire.Ack, error) {
	u := s.c.base + "/v1/flush?session=" + url.QueryEscape(s.session)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return wire.Ack{}, err
	}
	status, ack, err := s.c.do(req)
	if err != nil {
		return wire.Ack{}, err
	}
	if status != http.StatusOK {
		return ack, ackError(status, ack)
	}
	return ack, nil
}
