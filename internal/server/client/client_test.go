package client

import (
	"errors"
	"testing"

	"cryptodrop/internal/host"
	"cryptodrop/internal/server/wire"
)

// Every ack code maps to its shared sentinel, so errors.Is dispatches the
// same way in a remote producer as in-process.
func TestSentinelRoundTrip(t *testing.T) {
	cases := []struct {
		code string
		want error
	}{
		{wire.CodeUnauthorized, wire.ErrUnauthorized},
		{wire.CodeRateLimited, wire.ErrRateLimited},
		{wire.CodeOverloaded, host.ErrOverloaded},
		{wire.CodeClosed, host.ErrSessionClosed},
		{wire.CodeDraining, host.ErrHostClosed},
		{wire.CodeBadFrame, wire.ErrBadFrame},
		{wire.CodeGap, wire.ErrBadFrame},
	}
	for _, c := range cases {
		err := ackError(429, wire.Ack{Code: c.code, Error: "x"})
		if !errors.Is(err, c.want) {
			t.Errorf("code %q: errors.Is(%v, %v) = false", c.code, err, c.want)
		}
	}
	if err := ackError(500, wire.Ack{Error: "boom"}); err == nil {
		t.Error("codeless refusal lost its error")
	}
}

// Only throttle-shaped refusals are retried.
func TestRetryable(t *testing.T) {
	for code, want := range map[string]bool{
		wire.CodeRateLimited:  true,
		wire.CodeOverloaded:   true,
		wire.CodeDraining:     true,
		wire.CodeUnauthorized: false,
		wire.CodeClosed:       false,
		wire.CodeGap:          false,
		wire.CodeBadFrame:     false,
	} {
		if got := retryable(code); got != want {
			t.Errorf("retryable(%q) = %v, want %v", code, got, want)
		}
	}
}
