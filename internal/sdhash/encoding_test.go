package sdhash

import (
	"errors"
	"strings"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	data := genText(100, 48*1024)
	orig, err := Compute(data)
	if err != nil {
		t.Fatal(err)
	}
	text, err := orig.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Digest
	if err := decoded.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if decoded.FeatureCount() != orig.FeatureCount() ||
		decoded.FilterCount() != orig.FilterCount() ||
		decoded.InputSize() != orig.InputSize() {
		t.Fatalf("metadata changed: %v vs %v", &decoded, orig)
	}
	if score := decoded.Compare(orig); score < 95 {
		t.Fatalf("round-tripped digest compares at %d", score)
	}
	// And it still distinguishes unrelated content.
	other, err := Compute(genRandomTextForEncoding(200, 48*1024))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Compare(other) > 90 {
		t.Fatal("round-tripped digest lost discrimination")
	}
}

// genRandomTextForEncoding mirrors the helper in sdhash_test with a
// different vocabulary.
func genRandomTextForEncoding(seed int64, n int) []byte {
	out := make([]byte, n)
	s := uint64(seed)
	for i := range out {
		s = s*6364136223846793005 + 1442695040888963407
		out[i] = byte('a' + (s>>33)%26)
		if i%7 == 6 {
			out[i] = ' '
		}
	}
	return out
}

func TestUnmarshalErrors(t *testing.T) {
	good, err := Compute(genText(101, 8192))
	if err != nil {
		t.Fatal(err)
	}
	text, err := good.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"empty":            "",
		"bad magic":        "nope:1:100:4:0",
		"bad size":         "cdsd:1:x:4:0",
		"bad filter count": "cdsd:1:100:4:x",
		"missing fields":   "cdsd:1:100:4:2:5",
		"bad base64":       "cdsd:1:100:4:1:5:!!!",
		"short filter":     "cdsd:1:100:4:1:5:QUJD",
		"truncated":        string(text[:len(text)/2]),
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			var d Digest
			if err := d.UnmarshalText([]byte(in)); !errors.Is(err, ErrBadEncoding) {
				t.Fatalf("err = %v, want ErrBadEncoding", err)
			}
		})
	}
}

func TestDigestString(t *testing.T) {
	var nilDigest *Digest
	if got := nilDigest.String(); got != "sdhash(nil)" {
		t.Fatalf("String(nil) = %q", got)
	}
	d, err := Compute(genText(102, 8192))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.String(), "features") {
		t.Fatalf("String() = %q", d.String())
	}
}

func TestMarshalNil(t *testing.T) {
	var nilDigest *Digest
	if _, err := nilDigest.MarshalText(); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("err = %v, want ErrBadEncoding", err)
	}
}
