package sdhash_test

import (
	"bytes"
	"fmt"

	"cryptodrop/internal/sdhash"
)

// ExampleSimilarity shows the property CryptoDrop's similarity indicator is
// built on: an edited copy of a document scores high against the original,
// while an encrypted version scores like random data.
func ExampleSimilarity() {
	var doc bytes.Buffer
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&doc, "line %d of the quarterly report: revenue item %d, note %x.\n", i, i*37, i*i)
	}
	original := doc.Bytes()

	edited := append([]byte("REVISED: "), original...)
	score, err := sdhash.Similarity(original, edited)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("edited copy scores high:", score > 50)

	encrypted := make([]byte, len(original))
	state := uint64(0x2545F4914F6CDD1D)
	for i, b := range original {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		encrypted[i] = b ^ byte(state)
	}
	do, err := sdhash.Compute(original)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	de, err := sdhash.Compute(encrypted)
	if err != nil {
		// Ciphertext usually has no characteristic features at all.
		fmt.Println("ciphertext digestable:", false)
		return
	}
	fmt.Println("ciphertext scores near zero:", do.Compare(de) <= 4)
	// Output:
	// edited copy scores high: true
	// ciphertext digestable: false
}
