// Package sdhash implements a similarity-preserving digest in the style of
// Roussev's sdhash ("Data Fingerprinting with Similarity Digests", 2010),
// which the paper uses for its similarity indicator (§III-B).
//
// The digest selects statistically improbable 64-byte features from the
// input — windows whose Shannon entropy falls in a characteristic band and
// that are locally maximal in precedence — and inserts their hashes into a
// sequence of Bloom filters. Comparing two digests estimates how many
// features they share, yielding a confidence score from 0 to 100:
//
//   - 100 means the inputs are almost certainly homologous;
//   - 0 is "statistically comparable to two blobs of random data" — which is
//     exactly what a file and its ciphertext look like.
//
// Like sdhash, inputs smaller than MinInputSize produce no digest, a
// property the paper's CTB-Locker small-file analysis (§V-C) depends on.
package sdhash

import (
	"crypto/sha1"
	"errors"
	"math"
	"math/bits"
	"sync"
)

const (
	// WindowSize is the feature size in bytes.
	WindowSize = 64
	// MinInputSize is the smallest input that can produce a digest; sdhash
	// cannot generate similarity scores for files below 512 bytes.
	MinInputSize = 512
	// bloomBytes is the size of one Bloom filter (2048 bits).
	bloomBytes = 256
	bloomBits  = bloomBytes * 8
	// featuresPerFilter is the number of features inserted into a filter
	// before a new one is started.
	featuresPerFilter = 128
	// hashesPerFeature is the number of 11-bit Bloom indexes derived from
	// each feature hash.
	hashesPerFeature = 5
	// minFeatures is the minimum number of selected features required to
	// form a digest.
	minFeatures = 4
	// selectionSpan is the one-sided neighbourhood (in windows) within
	// which a feature must have maximal precedence to be selected.
	selectionSpan = 32
	// minFeatureGap is the minimum distance in bytes between the start
	// offsets of two selected features.
	minFeatureGap = 16
)

// Digest errors.
var (
	// ErrTooSmall is returned for inputs below MinInputSize.
	ErrTooSmall = errors.New("sdhash: input below minimum size")
	// ErrNoFeatures is returned when the input yields too few
	// characteristic features (e.g. uniformly random or constant data).
	ErrNoFeatures = errors.New("sdhash: input has too few characteristic features")
)

// Digest is a similarity-preserving digest of a byte stream.
type Digest struct {
	filters  [][]byte // each bloomBytes long
	counts   []int    // features per filter
	features int
	size     int // input length in bytes
}

// FeatureCount returns the number of features folded into the digest.
func (d *Digest) FeatureCount() int { return d.features }

// FilterCount returns the number of Bloom filters in the digest.
func (d *Digest) FilterCount() int { return len(d.filters) }

// InputSize returns the length in bytes of the digested input.
func (d *Digest) InputSize() int { return d.size }

// MemSize estimates the digest's resident size in bytes — the filters plus
// per-filter bookkeeping — for cache byte accounting. A nil digest costs
// nothing.
func (d *Digest) MemSize() int {
	if d == nil {
		return 0
	}
	n := 48
	for _, f := range d.filters {
		n += len(f) + 8
	}
	return n
}

// precedence maps a window's entropy to a selection rank. Both very low
// entropy (constant runs, padding) and near-maximal entropy (compressed or
// encrypted regions) rank at zero, so random-looking data generates few
// features — the property that drives ciphertext scores to zero.
func precedence(e float64) int {
	// A 64-byte window has at most 64 distinct values → max entropy 6 bits.
	// Scale to a 0..1000 bucket like sdhash's entropy scoring.
	bucket := int(e * 1000 / 6)
	switch {
	case bucket < 100:
		return 0
	case bucket >= 890:
		// Near-random: uniformly sampled 64-byte windows land around
		// bucket 930+ (entropy ≈ 5.6+ of 6), with a tail reaching down
		// toward 890. Zero the whole band so ciphertext and compressed
		// streams generate no features.
		return 0
	case bucket >= 850:
		return 1 + (890-bucket)/10
	default:
		// Unimodal ramp peaking in the mid-entropy band where
		// characteristic, low-probability features live.
		return 5 + bucket/10
	}
}

// flogTab[f] = f·log2(f) for the window frequencies f ∈ [0, WindowSize],
// precomputed once so the rolling-entropy inner loop performs no logarithm
// calls at all. Entries use the same expression the direct computation
// used, so results are bit-identical.
var flogTab = func() *[WindowSize + 1]float64 {
	var t [WindowSize + 1]float64
	for f := 2; f <= WindowSize; f++ {
		t[f] = float64(f) * math.Log2(float64(f))
	}
	return &t
}()

func flog(f int) float64 { return flogTab[f] }

// windowEntropies returns the Shannon entropy of every WindowSize-byte
// window of data, computed incrementally in O(n).
func windowEntropies(data []byte) []float64 {
	n := len(data) - WindowSize + 1
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	var freq [256]int
	// S = Σ f·log2(f); H = log2(W) − S/W for fixed window size W.
	var s float64
	for _, b := range data[:WindowSize] {
		freq[b]++
	}
	for _, f := range freq {
		s += flog(f)
	}
	logW := math.Log2(WindowSize)
	out[0] = logW - s/WindowSize
	for i := 1; i < n; i++ {
		outb := data[i-1]
		inb := data[i+WindowSize-1]
		if outb != inb {
			s -= flog(freq[outb])
			freq[outb]--
			s += flog(freq[outb])
			s -= flog(freq[inb])
			freq[inb]++
			s += flog(freq[inb])
		}
		out[i] = logW - s/WindowSize
	}
	return out
}

// rankPool recycles per-window rank buffers across Compute calls: a 1 MiB
// input needs a ~2 MiB rank buffer, which dominated the digest's
// allocation profile when it was rebuilt per call.
var rankPool = sync.Pool{New: func() any { return new([]int16) }}

// selectFeatures returns the start offsets of selected features: windows
// whose precedence rank is positive and maximal within ±selectionSpan
// windows, at least minFeatureGap bytes apart. The per-window entropies are
// folded directly into precedence ranks as the window rolls — one fused
// O(n) pass with no intermediate entropy slice.
func selectFeatures(data []byte) []int {
	n := len(data) - WindowSize + 1
	if n <= 0 {
		return nil
	}
	bufp := rankPool.Get().(*[]int16)
	ranks := *bufp
	if cap(ranks) < n {
		ranks = make([]int16, n)
	} else {
		ranks = ranks[:n]
	}
	var freq [256]int
	// S = Σ f·log2(f); H = log2(W) − S/W for fixed window size W.
	var s float64
	for _, b := range data[:WindowSize] {
		freq[b]++
	}
	for _, f := range freq {
		s += flog(f)
	}
	logW := math.Log2(WindowSize)
	ranks[0] = int16(precedence(logW - s/WindowSize))
	for i := 1; i < n; i++ {
		outb := data[i-1]
		inb := data[i+WindowSize-1]
		if outb != inb {
			s -= flog(freq[outb])
			freq[outb]--
			s += flog(freq[outb])
			s -= flog(freq[inb])
			freq[inb]++
			s += flog(freq[inb])
		}
		ranks[i] = int16(precedence(logW - s/WindowSize))
	}
	var selected []int
	last := -minFeatureGap
	for i, r := range ranks {
		if r == 0 || i-last < minFeatureGap {
			continue
		}
		lo := i - selectionSpan
		if lo < 0 {
			lo = 0
		}
		hi := i + selectionSpan
		if hi >= len(ranks) {
			hi = len(ranks) - 1
		}
		isMax := true
		for j := lo; j <= hi; j++ {
			if ranks[j] > r || (ranks[j] == r && j < i) {
				isMax = false
				break
			}
		}
		if isMax {
			selected = append(selected, i)
			last = i
		}
	}
	*bufp = ranks
	rankPool.Put(bufp)
	return selected
}

// Compute builds the similarity digest of data.
func Compute(data []byte) (*Digest, error) {
	if len(data) < MinInputSize {
		return nil, ErrTooSmall
	}
	offsets := selectFeatures(data)
	if len(offsets) < minFeatures {
		return nil, ErrNoFeatures
	}
	d := &Digest{size: len(data)}
	cur := make([]byte, bloomBytes)
	n := 0
	for _, off := range offsets {
		h := sha1.Sum(data[off : off+WindowSize])
		insertFeature(cur, h)
		n++
		d.features++
		if n == featuresPerFilter {
			d.filters = append(d.filters, cur)
			d.counts = append(d.counts, n)
			cur = make([]byte, bloomBytes)
			n = 0
		}
	}
	if n > 0 {
		d.filters = append(d.filters, cur)
		d.counts = append(d.counts, n)
	}
	return d, nil
}

// insertFeature sets hashesPerFeature 11-bit indexes from the SHA-1 feature
// hash in the Bloom filter.
func insertFeature(filter []byte, h [20]byte) {
	for k := 0; k < hashesPerFeature; k++ {
		// 11 bits per index, consecutive, starting at bit k*11.
		bitoff := k * 11
		idx := (uint32(h[bitoff/8]) | uint32(h[bitoff/8+1])<<8 | uint32(h[bitoff/8+2])<<16) >> (uint(bitoff) % 8)
		idx &= bloomBits - 1
		filter[idx/8] |= 1 << (idx % 8)
	}
}

// Compare scores the similarity of two digests from 0 to 100. A score of
// 100 indicates near-certain homology; 0 is indistinguishable from comparing
// random data. Comparison is symmetric.
func (d *Digest) Compare(other *Digest) int {
	if d == nil || other == nil || len(d.filters) == 0 || len(other.filters) == 0 {
		return 0
	}
	a, b := d, other
	if len(a.filters) > len(b.filters) {
		a, b = b, a
	}
	total := 0
	for i, fa := range a.filters {
		best := 0
		for j, fb := range b.filters {
			s := filterScore(fa, a.counts[i], fb, b.counts[j])
			if s > best {
				best = s
			}
		}
		total += best
	}
	return total / len(a.filters)
}

// filterScore compares two Bloom filters, normalising away the overlap
// expected from chance alone.
func filterScore(fa []byte, ca int, fb []byte, cb int) int {
	var common, na, nb int
	for i := range fa {
		common += bits.OnesCount8(fa[i] & fb[i])
		na += bits.OnesCount8(fa[i])
		nb += bits.OnesCount8(fb[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	expected := float64(na) * float64(nb) / bloomBits
	maxCommon := float64(na)
	if nb < na {
		maxCommon = float64(nb)
	}
	if maxCommon <= expected {
		return 0
	}
	score := 100 * (float64(common) - expected) / (maxCommon - expected)
	// Like sdhash, treat low-feature filters with weak overlap as noise.
	if ca < 8 || cb < 8 {
		score -= 10
	}
	if score < 0 {
		return 0
	}
	if score > 100 {
		return 100
	}
	return int(score)
}

// Similarity is a convenience wrapper digesting both inputs and comparing
// them. It returns an error if either input cannot be digested.
func Similarity(a, b []byte) (int, error) {
	da, err := Compute(a)
	if err != nil {
		return 0, err
	}
	db, err := Compute(b)
	if err != nil {
		return 0, err
	}
	return da.Compare(db), nil
}
