package sdhash

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genText produces deterministic English-like text of n bytes.
func genText(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{
		"invoice", "meeting", "project", "quarterly", "report", "the",
		"analysis", "budget", "customer", "delivery", "estimate", "for",
		"schedule", "review", "contract", "proposal", "and", "with",
	}
	var buf bytes.Buffer
	for buf.Len() < n {
		buf.WriteString(words[rng.Intn(len(words))])
		if rng.Intn(12) == 0 {
			buf.WriteString(".\n")
		} else {
			buf.WriteByte(' ')
		}
	}
	return buf.Bytes()[:n]
}

// genRandom produces deterministic pseudo-random (ciphertext-like) bytes.
func genRandom(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	rng.Read(data)
	return data
}

// xorEncrypt simulates ransomware keystream encryption.
func xorEncrypt(data []byte, seed int64) []byte {
	key := genRandom(seed, len(data))
	out := make([]byte, len(data))
	for i := range data {
		out[i] = data[i] ^ key[i]
	}
	return out
}

func TestComputeTooSmall(t *testing.T) {
	if _, err := Compute(genText(1, MinInputSize-1)); err != ErrTooSmall {
		t.Fatalf("err = %v, want ErrTooSmall", err)
	}
	if _, err := Compute(nil); err != ErrTooSmall {
		t.Fatalf("err(nil) = %v, want ErrTooSmall", err)
	}
}

func TestComputeMinSizeBoundary(t *testing.T) {
	if _, err := Compute(genText(2, MinInputSize)); err != nil {
		t.Fatalf("512-byte text should digest, got %v", err)
	}
}

func TestRandomDataYieldsNoFeatures(t *testing.T) {
	// Uniformly random content has near-maximal window entropy, which the
	// precedence table zeroes out — exactly sdhash's behaviour on
	// ciphertext.
	if _, err := Compute(genRandom(7, 32*1024)); err != ErrNoFeatures {
		t.Fatalf("random data digest err = %v, want ErrNoFeatures", err)
	}
}

func TestConstantDataYieldsNoFeatures(t *testing.T) {
	if _, err := Compute(bytes.Repeat([]byte{0x20}, 8192)); err != ErrNoFeatures {
		t.Fatalf("constant data digest err = %v, want ErrNoFeatures", err)
	}
}

func TestIdenticalInputsScore100(t *testing.T) {
	data := genText(3, 20*1024)
	score, err := Similarity(data, data)
	if err != nil {
		t.Fatal(err)
	}
	if score < 95 {
		t.Fatalf("self-similarity = %d, want ≥ 95", score)
	}
}

func TestCompareSymmetric(t *testing.T) {
	a := genText(4, 16*1024)
	b := append(genText(4, 12*1024), genText(5, 4*1024)...)
	da, err := Compute(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Compute(b)
	if err != nil {
		t.Fatal(err)
	}
	if da.Compare(db) != db.Compare(da) {
		t.Fatalf("Compare not symmetric: %d vs %d", da.Compare(db), db.Compare(da))
	}
}

func TestEditedCopyScoresHigh(t *testing.T) {
	orig := genText(6, 24*1024)
	edited := make([]byte, 0, len(orig)+512)
	edited = append(edited, orig[:8000]...)
	edited = append(edited, []byte("INSERTED PARAGRAPH ABOUT THE NEW BUDGET LINE.\n")...)
	edited = append(edited, orig[8000:]...)
	score, err := Similarity(orig, edited)
	if err != nil {
		t.Fatal(err)
	}
	if score < 50 {
		t.Fatalf("edited-copy similarity = %d, want ≥ 50", score)
	}
}

func TestEncryptedVersionScoresNearZero(t *testing.T) {
	// The paper's key insight: comparing a file with its encrypted version
	// should yield a near-zero score.
	orig := genText(8, 32*1024)
	enc := xorEncrypt(orig, 99)
	do, err := Compute(orig)
	if err != nil {
		t.Fatal(err)
	}
	de, err := Compute(enc)
	if err == nil {
		// If the ciphertext somehow digests, the comparison must be ≈ 0.
		if s := do.Compare(de); s > 5 {
			t.Fatalf("orig-vs-ciphertext = %d, want ≤ 5", s)
		}
		return
	}
	if err != ErrNoFeatures {
		t.Fatalf("ciphertext digest err = %v, want ErrNoFeatures", err)
	}
}

func TestUnrelatedFilesScoreLow(t *testing.T) {
	a := genText(10, 20*1024)
	b := genRandomText(t, 11, 20*1024)
	score, err := Similarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Different content drawn from the same vocabulary shares n-grams, so
	// allow a moderate score — but far from homologous.
	if score > 90 {
		t.Fatalf("unrelated similarity = %d, want < 90", score)
	}
}

// genRandomText produces text with a different vocabulary.
func genRandomText(t *testing.T, seed int64, n int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	for buf.Len() < n {
		word := make([]byte, 3+rng.Intn(8))
		for i := range word {
			word[i] = byte('a' + rng.Intn(26))
		}
		buf.Write(word)
		buf.WriteByte(' ')
	}
	return buf.Bytes()[:n]
}

func TestCompareNilSafe(t *testing.T) {
	data := genText(12, 4096)
	d, err := Compute(data)
	if err != nil {
		t.Fatal(err)
	}
	var nilDigest *Digest
	if got := d.Compare(nil); got != 0 {
		t.Fatalf("Compare(nil) = %d, want 0", got)
	}
	if got := nilDigest.Compare(d); got != 0 {
		t.Fatalf("nil.Compare(d) = %d, want 0", got)
	}
}

func TestDigestAccessors(t *testing.T) {
	data := genText(13, 64*1024)
	d, err := Compute(data)
	if err != nil {
		t.Fatal(err)
	}
	if d.InputSize() != len(data) {
		t.Fatalf("InputSize = %d, want %d", d.InputSize(), len(data))
	}
	if d.FeatureCount() < minFeatures {
		t.Fatalf("FeatureCount = %d, want ≥ %d", d.FeatureCount(), minFeatures)
	}
	if d.FilterCount() < 1 {
		t.Fatal("FilterCount = 0")
	}
	wantFilters := (d.FeatureCount() + featuresPerFilter - 1) / featuresPerFilter
	if d.FilterCount() != wantFilters {
		t.Fatalf("FilterCount = %d, want %d for %d features", d.FilterCount(), wantFilters, d.FeatureCount())
	}
}

func TestWindowEntropiesMatchDirect(t *testing.T) {
	// The incremental sliding-window entropy must agree with a direct
	// computation.
	data := genText(14, 2048)
	ents := windowEntropies(data)
	for _, i := range []int{0, 1, 100, 777, len(ents) - 1} {
		w := data[i : i+WindowSize]
		var freq [256]int
		for _, b := range w {
			freq[b]++
		}
		var direct float64
		for _, f := range freq {
			if f > 0 {
				p := float64(f) / WindowSize
				direct -= p * math.Log2(p)
			}
		}
		if math.Abs(ents[i]-direct) > 1e-9 {
			t.Fatalf("window %d: incremental %v != direct %v", i, ents[i], direct)
		}
	}
}

func TestScoreBoundsProperty(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := genText(seedA, 4096)
		b := genText(seedB, 4096)
		s, err := Similarity(a, b)
		if err != nil {
			return true
		}
		return s >= 0 && s <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	data := genText(15, 8192)
	d1, err := Compute(data)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Compute(data)
	if err != nil {
		t.Fatal(err)
	}
	if d1.FeatureCount() != d2.FeatureCount() || d1.Compare(d2) < 95 {
		t.Fatalf("digest not deterministic: %d vs %d features, score %d",
			d1.FeatureCount(), d2.FeatureCount(), d1.Compare(d2))
	}
}

func TestPrecedenceShape(t *testing.T) {
	// Low entropy → 0; mid entropy → positive; near-max entropy → 0.
	if precedence(0.1) != 0 {
		t.Error("precedence(0.1) should be 0")
	}
	if precedence(3.0) <= 0 {
		t.Error("precedence(3.0) should be positive")
	}
	if precedence(5.9) != 0 {
		t.Error("precedence(5.9) should be 0 (near-random)")
	}
}

func BenchmarkCompute32K(b *testing.B) {
	data := genText(20, 32*1024)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	d1, err := Compute(genText(21, 32*1024))
	if err != nil {
		b.Fatal(err)
	}
	d2, err := Compute(genText(22, 32*1024))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d1.Compare(d2)
	}
}

// TestDigestConcurrentCompare pins that a computed digest is immutable:
// Compare must be safe to call from many goroutines against the same
// digests, because the measurement memo cache shares one *Digest across
// every engine that hits the same content. Run under -race in CI.
func TestDigestConcurrentCompare(t *testing.T) {
	doc := genText(1, 64<<10)
	d1, err := Compute(doc)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Compute(genText(2, 64<<10))
	if err != nil {
		t.Fatal(err)
	}
	want := d1.Compare(d2)
	self := d1.Compare(d1)

	done := make(chan int, 16)
	for g := 0; g < 16; g++ {
		go func() {
			bad := 0
			for i := 0; i < 200; i++ {
				if d1.Compare(d2) != want || d2.Compare(d1) != want || d1.Compare(d1) != self {
					bad++
				}
			}
			done <- bad
		}()
	}
	for g := 0; g < 16; g++ {
		if bad := <-done; bad != 0 {
			t.Fatalf("concurrent Compare produced %d divergent scores", bad)
		}
	}
}

// TestDigestMemSize pins the cache cost accounting: a digest's estimated
// resident size grows with its filters and is safe on nil.
func TestDigestMemSize(t *testing.T) {
	if got := (*Digest)(nil).MemSize(); got != 0 {
		t.Fatalf("nil digest MemSize = %d, want 0", got)
	}
	small, err := Compute(genText(3, 8<<10))
	if err != nil {
		t.Fatal(err)
	}
	large, err := Compute(genText(3, 512<<10))
	if err != nil {
		t.Fatal(err)
	}
	if small.MemSize() <= 0 {
		t.Fatalf("small digest MemSize = %d, want > 0", small.MemSize())
	}
	if large.MemSize() <= small.MemSize() {
		t.Fatalf("512KB digest MemSize %d not larger than 8KB digest %d",
			large.MemSize(), small.MemSize())
	}
}
