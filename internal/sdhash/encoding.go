package sdhash

import (
	"bytes"
	"encoding/base64"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// digestMagic prefixes the text encoding, versioned like sdhash's digest
// file header ("sdbf").
const digestMagic = "cdsd:1"

// ErrBadEncoding is returned when a text digest cannot be decoded.
var ErrBadEncoding = errors.New("sdhash: malformed digest encoding")

// MarshalText encodes the digest as a single line, in the spirit of
// sdhash's digest files: header, input size, feature count, then one
// base64-encoded Bloom filter (with its feature count) per segment.
//
//	cdsd:1:<size>:<features>:<n>:<count>:<b64>:<count>:<b64>...
func (d *Digest) MarshalText() ([]byte, error) {
	if d == nil {
		return nil, fmt.Errorf("%w: nil digest", ErrBadEncoding)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s:%d:%d:%d", digestMagic, d.size, d.features, len(d.filters))
	for i, f := range d.filters {
		fmt.Fprintf(&b, ":%d:%s", d.counts[i], base64.StdEncoding.EncodeToString(f))
	}
	return b.Bytes(), nil
}

// UnmarshalText decodes a digest produced by MarshalText.
func (d *Digest) UnmarshalText(text []byte) error {
	parts := strings.Split(string(text), ":")
	if len(parts) < 5 || parts[0]+":"+parts[1] != digestMagic {
		return fmt.Errorf("%w: bad header", ErrBadEncoding)
	}
	size, err := strconv.Atoi(parts[2])
	if err != nil || size < 0 {
		return fmt.Errorf("%w: size", ErrBadEncoding)
	}
	features, err := strconv.Atoi(parts[3])
	if err != nil || features < 0 {
		return fmt.Errorf("%w: feature count", ErrBadEncoding)
	}
	n, err := strconv.Atoi(parts[4])
	if err != nil || n < 0 {
		return fmt.Errorf("%w: filter count", ErrBadEncoding)
	}
	rest := parts[5:]
	if len(rest) != 2*n {
		return fmt.Errorf("%w: want %d filter fields, have %d", ErrBadEncoding, 2*n, len(rest))
	}
	out := Digest{size: size, features: features}
	for i := 0; i < n; i++ {
		count, err := strconv.Atoi(rest[2*i])
		if err != nil || count < 0 {
			return fmt.Errorf("%w: filter %d count", ErrBadEncoding, i)
		}
		raw, err := base64.StdEncoding.DecodeString(rest[2*i+1])
		if err != nil {
			return fmt.Errorf("%w: filter %d payload: %v", ErrBadEncoding, i, err)
		}
		if len(raw) != bloomBytes {
			return fmt.Errorf("%w: filter %d is %d bytes, want %d", ErrBadEncoding, i, len(raw), bloomBytes)
		}
		out.filters = append(out.filters, raw)
		out.counts = append(out.counts, count)
	}
	*d = out
	return nil
}

// String returns a short human-readable summary.
func (d *Digest) String() string {
	if d == nil {
		return "sdhash(nil)"
	}
	return fmt.Sprintf("sdhash(%dB, %d features, %d filters)", d.size, d.features, len(d.filters))
}
