package sdhash

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchInput builds document-like content in the mid-entropy band where
// feature selection does real work: words of structured text with
// occasional binary runs, like the corpus generator's documents.
func benchInput(size int) []byte {
	rng := rand.New(rand.NewSource(99))
	words := []string{"the", "similarity", "digest", "selects", "features",
		"from", "entropy", "windows", "bloom", "filter", "ransomware"}
	out := make([]byte, 0, size)
	for len(out) < size {
		out = append(out, words[rng.Intn(len(words))]...)
		out = append(out, ' ')
		if rng.Intn(20) == 0 {
			run := make([]byte, 32)
			rng.Read(run)
			out = append(out, run...)
		}
	}
	return out[:size]
}

func BenchmarkSdhashCompute(b *testing.B) {
	for _, size := range []int{4 << 10, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("size=%dKiB", size>>10), func(b *testing.B) {
			data := benchInput(size)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Compute(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSdhashCompare(b *testing.B) {
	da, err := Compute(benchInput(256 << 10))
	if err != nil {
		b.Fatal(err)
	}
	db, err := Compute(benchInput(256 << 10))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		da.Compare(db)
	}
}
