package sdhash

import "testing"

func FuzzComputeCompare(f *testing.F) {
	f.Add([]byte("hello world"), []byte("hello mars"))
	f.Add(make([]byte, 600), make([]byte, 600))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		da, errA := Compute(a)
		db, errB := Compute(b)
		if errA != nil || errB != nil {
			return
		}
		s1 := da.Compare(db)
		s2 := db.Compare(da)
		if s1 != s2 {
			t.Fatalf("asymmetric: %d vs %d", s1, s2)
		}
		if s1 < 0 || s1 > 100 {
			t.Fatalf("score out of range: %d", s1)
		}
	})
}

func FuzzUnmarshalText(f *testing.F) {
	d, err := Compute(genText(1, 4096))
	if err == nil {
		if text, err := d.MarshalText(); err == nil {
			f.Add(string(text))
		}
	}
	f.Add("cdsd:1:0:0:0")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		var d Digest
		_ = d.UnmarshalText([]byte(s)) // must never panic
	})
}
