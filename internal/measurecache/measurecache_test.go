package measurecache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestXXH64Vectors pins the local XXH64 implementation against published
// reference digests (seed 0), covering the short path, the 4/8-byte tail
// folds, and the ≥32-byte lane loop.
func TestXXH64Vectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xEF46DB3751D8E999},
		{"a", 0xD24EC4F1A98C6E5B},
		{"abc", 0x44BC2CF5AD770999},
		{"Nobody inspects the spammish repetition", 0xFBCEA83C8A378BF1},
	}
	for _, c := range cases {
		if got := xxh64([]byte(c.in), 0); got != c.want {
			t.Errorf("xxh64(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

// TestKeyOfDiscriminates pins that content, length and mode all participate
// in the key: distinct inputs yield distinct keys.
func TestKeyOfDiscriminates(t *testing.T) {
	a := KeyOf([]byte("hello world"), 0)
	if b := KeyOf([]byte("hello worlc"), 0); a == b {
		t.Error("distinct content produced equal keys")
	}
	if b := KeyOf([]byte("hello world"), 1); a == b {
		t.Error("distinct mode produced equal keys")
	}
	if b := KeyOf([]byte("hello world"), 0); a != b {
		t.Error("identical input produced different keys")
	}
}

func TestGetPut(t *testing.T) {
	c := New(1 << 20)
	k := KeyOf([]byte("content"), 0)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, "v1", 100)
	v, ok := c.Get(k)
	if !ok || v.(string) != "v1" {
		t.Fatalf("got %v %v", v, ok)
	}
	c.Put(k, "v2", 200) // re-put refreshes value and cost
	if v, _ := c.Get(k); v.(string) != "v2" {
		t.Fatalf("re-put not visible: %v", v)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 || s.Bytes != 200 {
		t.Fatalf("stats %+v", s)
	}
}

// TestEvictionByteBound fills one shard past its budget and checks the
// least-recently-used entries go first while the bound holds.
func TestEvictionByteBound(t *testing.T) {
	c := New(16 * 1000) // 1000 bytes per shard
	sh := &c.shards[0]

	// Build keys that all land in shard 0 so the per-shard bound is what we
	// exercise.
	var keys []Key
	for i := 0; len(keys) < 8; i++ {
		k := KeyOf([]byte(fmt.Sprintf("content-%d", i)), 0)
		if c.shard(k) == sh {
			keys = append(keys, k)
		}
	}
	for i, k := range keys {
		c.Put(k, i, 300) // 4th insert exceeds 1000 → evictions
	}
	if sh.bytes > sh.max {
		t.Fatalf("shard over budget: %d > %d", sh.bytes, sh.max)
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	// Oldest keys evicted first; the most recent insert must survive.
	if _, ok := c.Get(keys[len(keys)-1]); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest entry survived over-budget inserts")
	}
}

// TestRecencyProtectsHotEntries pins LRU (not FIFO) order: an old entry
// refreshed by Get outlives a younger untouched one.
func TestRecencyProtectsHotEntries(t *testing.T) {
	c := New(16 * 1000)
	sh := &c.shards[0]
	var keys []Key
	for i := 0; len(keys) < 4; i++ {
		k := KeyOf([]byte(fmt.Sprintf("hot-%d", i)), 0)
		if c.shard(k) == sh {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], 0, 400)
	c.Put(keys[1], 1, 400)
	c.Get(keys[0])         // refresh the older entry
	c.Put(keys[2], 2, 400) // over budget: should evict keys[1], not keys[0]
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("least recently used entry survived")
	}
}

func TestOversizedAndZeroCapacity(t *testing.T) {
	c := New(16 * 100)
	k := KeyOf([]byte("big"), 0)
	c.Put(k, "v", 101) // exceeds the 100-byte shard budget
	if _, ok := c.Get(k); ok {
		t.Fatal("oversized entry cached")
	}
	z := New(0)
	z.Put(k, "v", 1)
	if _, ok := z.Get(k); ok {
		t.Fatal("zero-capacity cache accepted an entry")
	}
}

// TestConcurrentAccess hammers the cache from many goroutines under -race.
func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := KeyOf([]byte(fmt.Sprintf("cc-%d", rng.Intn(200))), 0)
				if rng.Intn(2) == 0 {
					c.Put(k, i, int64(rng.Intn(512)))
				} else {
					c.Get(k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	s := c.Stats()
	if s.Bytes > s.Capacity {
		t.Fatalf("cache over capacity: %d > %d", s.Bytes, s.Capacity)
	}
}

func BenchmarkKeyOf(b *testing.B) {
	for _, size := range []int{4 << 10, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			data := make([]byte, size)
			rand.New(rand.NewSource(3)).Read(data)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				KeyOf(data, 0)
			}
		})
	}
}
