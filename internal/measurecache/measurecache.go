// Package measurecache provides a bounded, sharded LRU cache mapping file
// content to its measured state, shared across the sessions of a detector
// host. Identical bytes observed by many sessions — shared corpora,
// deduplicated stores, fleet-wide ransom-note drops — are measured once:
// the expensive kernels (magic sniff, full-file Shannon, sdhash digest) run
// on the first sighting and every later sighting is a hash lookup.
//
// Entries are keyed by content, not by file identity: two 64-bit hashes
// (FNV-1a and an XXH64-style mix) over the full content, the content
// length, and a caller-chosen mode tag. The cache does not retain content
// for full equality verification — see Key for the collision tradeoff.
package measurecache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Key identifies cached content. Two different byte strings collide only if
// they agree on both independent 64-bit hashes AND their length — a
// probability on the order of 2^-128 per pair, far below any operational
// concern (the host would need ~2^64 distinct file versions in flight for a
// birthday collision to become likely). The cache deliberately does not
// store content for byte-exact verification: doubling resident bytes to
// guard against a 2^-128 event is the wrong trade for a detection-side
// cache whose worst collision outcome is one file scored with another
// file's measurement.
//
// Mode partitions the key space by measurement flavour (full vs sampled
// tiers, prefix lengths), so a sampled-tier measurement can never be served
// to a full-tier session.
type Key struct {
	h1   uint64 // FNV-1a over content
	h2   uint64 // XXH64-style over content
	len  int
	mode uint32
}

// KeyOf computes the cache key for content under the given mode tag.
func KeyOf(content []byte, mode uint32) Key {
	return Key{h1: fnv1a(content), h2: xxh64(content, 0), len: len(content), mode: mode}
}

// KeyOfSeeded computes the cache key for content with an extra seed folded
// into the second hash. Callers use it when the hashed bytes alone do not
// determine the cached value — e.g. a header-sample measurement also depends
// on the file's full size, which the seed carries into the key.
func KeyOfSeeded(content []byte, seed uint64, mode uint32) Key {
	return Key{h1: fnv1a(content), h2: xxh64(content, seed), len: len(content), mode: mode}
}

// fnv1a is the 64-bit FNV-1a hash.
func fnv1a(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}

// XXH64 primes.
const (
	prime1 = 11400714785074694791
	prime2 = 14029467366897019727
	prime3 = 1609587929392839161
	prime4 = 9650029242287828579
	prime5 = 2870177450012600261
)

func rotl(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

func round(acc, input uint64) uint64 {
	acc += input * prime2
	return rotl(acc, 31) * prime1
}

func mergeRound(acc, val uint64) uint64 {
	acc ^= round(0, val)
	return acc*prime1 + prime4
}

func u64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func u32(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
}

// xxh64 is the XXH64 hash of data with the given seed — the second,
// independently-mixed 64-bit view of the content. Implemented locally: the
// container ships no third-party hash package, and the stdlib's 64-bit
// options (FNV, CRC) are not independent enough of fnv1a's mixing to serve
// as the second half of a 128-bit composite.
func xxh64(data []byte, seed uint64) uint64 {
	n := len(data)
	var h uint64
	if n >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for len(data) >= 32 {
			v1 = round(v1, u64(data[0:8]))
			v2 = round(v2, u64(data[8:16]))
			v3 = round(v3, u64(data[16:24]))
			v4 = round(v4, u64(data[24:32]))
			data = data[32:]
		}
		h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}
	h += uint64(n)
	for len(data) >= 8 {
		h ^= round(0, u64(data[:8]))
		h = rotl(h, 27)*prime1 + prime4
		data = data[8:]
	}
	if len(data) >= 4 {
		h ^= u32(data[:4]) * prime1
		h = rotl(h, 23)*prime2 + prime3
		data = data[4:]
	}
	for _, b := range data {
		h ^= uint64(b) * prime5
		h = rotl(h, 11) * prime1
	}
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// shardCount is the number of independently locked cache shards (power of
// two): concurrent sessions hitting different content never contend.
const shardCount = 16

type entry struct {
	key  Key
	val  any
	cost int64
}

type shard struct {
	mu    sync.Mutex
	m     map[Key]*list.Element
	order *list.List // front = least recently used
	bytes int64
	max   int64
}

// Cache is a sharded, byte-bounded LRU. Values are immutable once inserted:
// callers must never mutate a value after Put or after receiving it from
// Get, since the same value is shared by every session that hits.
type Cache struct {
	shards [shardCount]shard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	capacity  int64
}

// New returns a cache bounded to roughly maxBytes of accounted entry cost.
// The bound is split evenly across shards, so per-shard skew can evict a
// little early; the cache never exceeds maxBytes. A maxBytes ≤ 0 cache
// accepts no entries (every Get misses).
func New(maxBytes int64) *Cache {
	c := &Cache{capacity: maxBytes}
	per := maxBytes / shardCount
	for i := range c.shards {
		c.shards[i].m = make(map[Key]*list.Element)
		c.shards[i].order = list.New()
		c.shards[i].max = per
	}
	return c
}

func (c *Cache) shard(k Key) *shard {
	return &c.shards[k.h2&(shardCount-1)]
}

// Get returns the cached value for k, refreshing its recency.
func (c *Cache) Get(k Key) (any, bool) {
	sh := c.shard(k)
	var val any
	sh.mu.Lock()
	el, ok := sh.m[k]
	if ok {
		sh.order.MoveToBack(el)
		val = el.Value.(*entry).val
	}
	sh.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return val, true
}

// Put inserts val for k, accounting cost bytes against the bound and
// evicting least-recently-used entries to make room. Entries costing more
// than a whole shard's budget are not cached. Re-putting an existing key
// refreshes its value, cost and recency.
func (c *Cache) Put(k Key, val any, cost int64) {
	sh := c.shard(k)
	if cost < 0 || cost > sh.max {
		return
	}
	var evicted uint64
	sh.mu.Lock()
	if el, ok := sh.m[k]; ok {
		en := el.Value.(*entry)
		sh.bytes += cost - en.cost
		en.val, en.cost = val, cost
		sh.order.MoveToBack(el)
	} else {
		sh.m[k] = sh.order.PushBack(&entry{key: k, val: val, cost: cost})
		sh.bytes += cost
	}
	for sh.bytes > sh.max {
		el := sh.order.Front()
		en := el.Value.(*entry)
		sh.order.Remove(el)
		delete(sh.m, en.key)
		sh.bytes -= en.cost
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Stats is a point-in-time view of the cache's counters and occupancy.
type Stats struct {
	// Hits and Misses count Get outcomes; Evictions counts entries pushed
	// out by the byte bound.
	Hits, Misses, Evictions uint64
	// Entries and Bytes are current occupancy; Capacity is the configured
	// byte bound.
	Entries  int
	Bytes    int64
	Capacity int64
}

// Stats returns the cache's current statistics.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Capacity:  c.capacity,
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.m)
		s.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return s
}
