package livewatch

import (
	"crypto/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cryptodrop/internal/core"
	"cryptodrop/internal/corpus"
)

// writeTree materialises a small corpus into a real temp directory.
func writeTree(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	exts := []string{"txt", "pdf", "docx", "csv", "md", "html"}
	for i := 0; i < n; i++ {
		sub := dir
		if i%3 == 0 {
			sub = filepath.Join(dir, "sub")
			if err := os.MkdirAll(sub, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		ext := exts[i%len(exts)]
		p := filepath.Join(sub, "file"+string(rune('a'+i%26))+string(rune('0'+i/26))+"."+ext)
		if err := os.WriteFile(p, corpus.Generate(ext, int64(i), 8192), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// encryptFile overwrites a real file with keystream bytes.
func encryptFile(t *testing.T, p string) {
	t.Helper()
	info, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	enc := make([]byte, info.Size())
	if _, err := rand.Read(enc); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, enc, 0o644); err != nil {
		t.Fatal(err)
	}
}

func listFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			out = append(out, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestScannerDetectsChanges(t *testing.T) {
	dir := writeTree(t, 10)
	s := NewScanner(dir)
	events, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("baseline scan produced %d events", len(events))
	}

	files := listFiles(t, dir)
	// Modify one (mtime granularity can be coarse; change size too).
	if err := os.WriteFile(files[0], []byte("changed content longer than before to alter size"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Create one.
	created := filepath.Join(dir, "new.bin")
	if err := os.WriteFile(created, []byte("fresh"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Delete one.
	if err := os.Remove(files[1]); err != nil {
		t.Fatal(err)
	}

	events, err = s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[EventKind]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	if kinds[EventCreated] != 1 || kinds[EventModified] != 1 || kinds[EventDeleted] != 1 {
		t.Fatalf("events = %v", events)
	}
	// No further changes → no events.
	events, err = s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("idle scan produced %v", events)
	}
}

func TestAnalyzerAlertsOnBulkEncryption(t *testing.T) {
	dir := writeTree(t, 40)
	files := listFiles(t, dir)

	alerted := false
	a := NewAnalyzer(AnalyzerConfig{OnAlert: func(al Alert) { alerted = true }})
	for _, p := range files {
		a.Prime(p)
	}
	s := NewScanner(dir)
	if _, err := s.Scan(); err != nil {
		t.Fatal(err)
	}
	// Encrypt everything, then scan.
	for _, p := range files {
		encryptFile(t, p)
	}
	events, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events after encryption")
	}
	a.Apply(events)
	if !a.Alerted() || !alerted {
		t.Fatalf("no alert after bulk encryption (score %.1f)", a.Score())
	}
	if !a.Union() {
		t.Fatalf("union indication missing (score %.1f)", a.Score())
	}
}

func TestAnalyzerQuietOnBenignEdits(t *testing.T) {
	dir := writeTree(t, 30)
	files := listFiles(t, dir)
	a := NewAnalyzer(AnalyzerConfig{})
	for _, p := range files {
		a.Prime(p)
	}
	// Benign edits: append same-type content to a few files.
	for i, p := range files {
		if i >= 5 {
			break
		}
		content, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		content = append(content, []byte(" appended note about the meeting")...)
		a.ApplyChange(p, content, EventModified)
	}
	if a.Alerted() {
		t.Fatalf("alert on benign edits (score %.1f)", a.Score())
	}
	if a.Score() > 50 {
		t.Fatalf("benign edit score %.1f too high", a.Score())
	}
}

func TestAnalyzerDeletionsScore(t *testing.T) {
	a := NewAnalyzer(AnalyzerConfig{})
	for i := 0; i < 10; i++ {
		a.applyDelete("/x/" + string(rune('a'+i)))
	}
	// Deleting pre-existing user data scores the engine's Deletion points
	// per file — the livewatch drift (a hard-coded 6) is gone.
	want := 10 * core.DefaultPoints().Deletion
	if a.Score() != want {
		t.Fatalf("deletion score = %.1f, want %.1f", a.Score(), want)
	}
}

// TestAnalyzerOwnFileDeletionScoresLow pins a behaviour unified with the
// engine: deleting a file the watched actor itself created (temp churn) is
// ordinary behaviour and scores far lower than destroying pre-existing data.
func TestAnalyzerOwnFileDeletionScoresLow(t *testing.T) {
	a := NewAnalyzer(AnalyzerConfig{})
	a.ApplyChange("/x/tmp.swp", []byte("scratch scratch scratch"), EventCreated)
	base := a.Score()
	a.applyDelete("/x/tmp.swp")
	got := a.Score() - base
	if want := core.DefaultPoints().DeletionOwn; got != want {
		t.Fatalf("own-file deletion scored %.1f, want %.1f", got, want)
	}
}

// TestAnalyzerDefaultsMatchEngine asserts the livewatch defaults are the
// engine's defaults — derived from core.DefaultConfig, not a second table
// that can drift (the pre-unification analyzer had hard-coded 8/8/4/6/3).
func TestAnalyzerDefaultsMatchEngine(t *testing.T) {
	cfg := NewAnalyzer(AnalyzerConfig{}).Engine().Config()
	want := core.DefaultConfig("")
	if cfg.Points != want.Points {
		t.Fatalf("analyzer points %+v diverge from core.DefaultPoints() %+v", cfg.Points, want.Points)
	}
	if cfg.NonUnionThreshold != want.NonUnionThreshold || cfg.UnionThreshold != want.UnionThreshold {
		t.Fatalf("analyzer thresholds %g/%g diverge from engine defaults %g/%g",
			cfg.NonUnionThreshold, cfg.UnionThreshold, want.NonUnionThreshold, want.UnionThreshold)
	}
	if cfg.SimilarityMatchMax != want.SimilarityMatchMax ||
		cfg.EntropyDeltaThreshold != want.EntropyDeltaThreshold {
		t.Fatal("analyzer similarity/entropy thresholds diverge from engine defaults")
	}
	if !cfg.NewCipherWithoutDelta {
		t.Fatal("payload-blind backend must set NewCipherWithoutDelta")
	}
	if cfg.Workers != 0 {
		t.Fatal("analyzer must pin Workers to 0: content is staged synchronously")
	}
	// The deprecated flat indicator/threshold fields are gone: every tuning
	// knob flows through Engine so a second points table cannot reappear.
	want2 := map[string]bool{"Engine": true, "OnAlert": true, "Telemetry": true}
	rt := reflect.TypeOf(AnalyzerConfig{})
	for i := 0; i < rt.NumField(); i++ {
		if !want2[rt.Field(i).Name] {
			t.Fatalf("AnalyzerConfig grew field %q: engine tuning belongs in Engine *core.Config", rt.Field(i).Name)
		}
	}
	if rt.NumField() != len(want2) {
		t.Fatalf("AnalyzerConfig has %d fields, want %d", rt.NumField(), len(want2))
	}
}

// TestAnalyzerEngineConfigZeroMeansZero pins the zero-value fix: routing
// config through core.Config lets a caller genuinely disable an indicator,
// which the legacy flat fields (where 0 silently meant "default") never
// could.
func TestAnalyzerEngineConfigZeroMeansZero(t *testing.T) {
	ecfg := core.DefaultConfig("")
	ecfg.Points.Deletion = 0
	ecfg.Points.DeletionOwn = 0
	a := NewAnalyzer(AnalyzerConfig{Engine: &ecfg})
	for i := 0; i < 10; i++ {
		a.applyDelete("/x/" + string(rune('a'+i)))
	}
	if a.Score() != 0 {
		t.Fatalf("deletions scored %.1f with Deletion points explicitly 0", a.Score())
	}
	if got := a.Engine().Config().Points.Deletion; got != 0 {
		t.Fatalf("explicit zero replaced by default %g", got)
	}
}

func TestAnalyzerNewCipherFiles(t *testing.T) {
	a := NewAnalyzer(AnalyzerConfig{})
	enc := make([]byte, 8192)
	if _, err := rand.Read(enc); err != nil {
		t.Fatal(err)
	}
	a.ApplyChange("/docs/a.txt.locked", enc, EventCreated)
	if a.Score() != 3 {
		t.Fatalf("new-cipher score = %.1f, want 3", a.Score())
	}
	// A typed new file (plain text) scores nothing.
	a2 := NewAnalyzer(AnalyzerConfig{})
	a2.ApplyChange("/docs/notes.txt", []byte("hello hello hello hello"), EventCreated)
	if a2.Score() != 0 {
		t.Fatalf("typed new file scored %.1f", a2.Score())
	}
}

func TestWatcherEndToEnd(t *testing.T) {
	dir := writeTree(t, 40)
	alerts := make(chan Alert, 1)
	w := NewWatcher(dir, 20*time.Millisecond, AnalyzerConfig{OnAlert: func(a Alert) {
		select {
		case alerts <- a:
		default:
		}
	}})
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	// Simulate the attack while the watcher polls.
	for _, p := range listFiles(t, dir) {
		encryptFile(t, p)
	}
	deadline := time.After(5 * time.Second)
	select {
	case a := <-alerts:
		if a.Score < 140 {
			t.Fatalf("alert score %.1f too low", a.Score)
		}
	case <-deadline:
		w.Stop()
		t.Fatalf("no alert within deadline (score %.1f, scans %d, err %v)",
			w.Analyzer().Score(), w.Scans(), w.LastErr())
	}
	w.Stop()
	if w.Scans() == 0 {
		t.Fatal("watcher never scanned")
	}
}

func TestWatcherStopIsClean(t *testing.T) {
	dir := writeTree(t, 5)
	w := NewWatcher(dir, 10*time.Millisecond, AnalyzerConfig{})
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	w.Stop() // must not hang or panic; final poll included
	if w.LastErr() != nil {
		t.Fatalf("scan error: %v", w.LastErr())
	}
}
