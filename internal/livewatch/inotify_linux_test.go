//go:build linux

package livewatch

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// waitEvents polls the scanner until at least n events arrive or the
// deadline passes.
func waitEvents(t *testing.T, s *InotifyScanner, n int, deadline time.Duration) []Event {
	t.Helper()
	var all []Event
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		events, err := s.Scan()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, events...)
		if len(all) >= n {
			return all
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("only %d of %d events before deadline: %v", len(all), n, all)
	return nil
}

func TestInotifyScannerBasicEvents(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	s, err := NewInotifyScanner(dir)
	if err != nil {
		t.Skipf("inotify unavailable: %v", err)
	}
	defer s.Close()

	p := filepath.Join(dir, "sub", "f.txt")
	if err := os.WriteFile(p, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	events := waitEvents(t, s, 2, 3*time.Second) // create + close-write
	kinds := map[EventKind]bool{}
	for _, ev := range events {
		if ev.Path != p {
			t.Fatalf("event path %s, want %s", ev.Path, p)
		}
		kinds[ev.Kind] = true
	}
	if !kinds[EventCreated] || !kinds[EventModified] {
		t.Fatalf("kinds = %v", events)
	}

	if err := os.Remove(p); err != nil {
		t.Fatal(err)
	}
	events = waitEvents(t, s, 1, 3*time.Second)
	if events[len(events)-1].Kind != EventDeleted {
		t.Fatalf("events after remove: %v", events)
	}
}

func TestInotifyScannerFollowsNewDirectories(t *testing.T) {
	dir := t.TempDir()
	s, err := NewInotifyScanner(dir)
	if err != nil {
		t.Skipf("inotify unavailable: %v", err)
	}
	defer s.Close()

	sub := filepath.Join(dir, "newdir")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	// Give the read loop a beat to add the watch for the new directory.
	time.Sleep(50 * time.Millisecond)
	p := filepath.Join(sub, "inside.txt")
	if err := os.WriteFile(p, []byte("content"), 0o644); err != nil {
		t.Fatal(err)
	}
	events := waitEvents(t, s, 1, 3*time.Second)
	found := false
	for _, ev := range events {
		if ev.Path == p {
			found = true
		}
	}
	if !found {
		t.Fatalf("no event for file in new directory: %v", events)
	}
}

func TestInotifyWithAnalyzerDetectsAttack(t *testing.T) {
	dir := writeTree(t, 40)
	s, err := NewInotifyScanner(dir)
	if err != nil {
		t.Skipf("inotify unavailable: %v", err)
	}
	defer s.Close()

	a := NewAnalyzer(AnalyzerConfig{})
	for _, p := range listFiles(t, dir) {
		a.Prime(p)
	}
	for _, p := range listFiles(t, dir) {
		encryptFile(t, p)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !a.Alerted() {
		events, err := s.Scan()
		if err != nil {
			t.Fatal(err)
		}
		a.Apply(events)
		time.Sleep(10 * time.Millisecond)
	}
	if !a.Alerted() {
		t.Fatalf("no alert via inotify (score %.1f)", a.Score())
	}
}

func TestInotifyCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, err := NewInotifyScanner(dir)
	if err != nil {
		t.Skipf("inotify unavailable: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
