//go:build linux

package livewatch

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"unsafe"
)

// InotifyScanner is the Linux fast path: instead of polling the whole tree,
// it subscribes to kernel inotify events for every directory under the
// root (recursively, following newly created directories) and drains the
// accumulated events on each Scan call. It exposes the same Scan() API as
// the portable Scanner, so the Watcher logic is unchanged.
type InotifyScanner struct {
	root string
	fd   int
	// file wraps the inotify fd so reads go through the runtime poller
	// and Close interrupts a blocked read loop.
	file *os.File

	mu       sync.Mutex
	watches  map[int]string // watch descriptor → directory
	pending  []Event
	pendErr  error
	stopOnce sync.Once
	done     chan struct{}
}

// NewInotifyScanner initialises the inotify instance and watches every
// directory under root. Call Close when done.
func NewInotifyScanner(root string) (*InotifyScanner, error) {
	fd, err := syscall.InotifyInit1(syscall.IN_CLOEXEC | syscall.IN_NONBLOCK)
	if err != nil {
		return nil, fmt.Errorf("livewatch: inotify init: %w", err)
	}
	s := &InotifyScanner{
		root:    root,
		fd:      fd,
		file:    os.NewFile(uintptr(fd), "inotify"),
		watches: make(map[int]string),
		done:    make(chan struct{}),
	}
	if err := s.watchTree(root); err != nil {
		_ = s.file.Close()
		return nil, err
	}
	go s.readLoop()
	return s, nil
}

// Root returns the watched directory.
func (s *InotifyScanner) Root() string { return s.root }

const inotifyMask = syscall.IN_CREATE | syscall.IN_CLOSE_WRITE | syscall.IN_DELETE |
	syscall.IN_MOVED_FROM | syscall.IN_MOVED_TO

// watchTree adds watches for dir and every subdirectory.
func (s *InotifyScanner) watchTree(dir string) error {
	return filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if !d.IsDir() {
			return nil
		}
		return s.addWatch(p)
	})
}

func (s *InotifyScanner) addWatch(dir string) error {
	wd, err := syscall.InotifyAddWatch(s.fd, dir, inotifyMask)
	if err != nil {
		return fmt.Errorf("livewatch: watch %s: %w", dir, err)
	}
	s.mu.Lock()
	s.watches[wd] = dir
	s.mu.Unlock()
	return nil
}

// readLoop drains the inotify fd into the pending queue. Reads go through
// the runtime poller, so Close unblocks them with os.ErrClosed.
func (s *InotifyScanner) readLoop() {
	defer close(s.done)
	buf := make([]byte, 64*1024)
	for {
		n, err := s.file.Read(buf)
		if err != nil {
			if errors.Is(err, os.ErrClosed) {
				return
			}
			if errors.Is(err, syscall.EINTR) {
				continue
			}
			s.mu.Lock()
			s.pendErr = fmt.Errorf("livewatch: inotify read: %w", err)
			s.mu.Unlock()
			return
		}
		s.decode(buf[:n])
	}
}

// decode parses raw inotify_event records.
func (s *InotifyScanner) decode(data []byte) {
	const eventSize = syscall.SizeofInotifyEvent
	for off := 0; off+eventSize <= len(data); {
		raw := (*syscall.InotifyEvent)(unsafe.Pointer(&data[off]))
		nameLen := int(raw.Len)
		name := ""
		if nameLen > 0 {
			b := data[off+eventSize : off+eventSize+nameLen]
			for i, c := range b {
				if c == 0 {
					b = b[:i]
					break
				}
			}
			name = string(b)
		}
		off += eventSize + nameLen

		s.mu.Lock()
		dir, ok := s.watches[int(raw.Wd)]
		s.mu.Unlock()
		if !ok || name == "" {
			continue
		}
		p := filepath.Join(dir, name)
		mask := raw.Mask
		switch {
		case mask&syscall.IN_ISDIR != 0:
			// New directory: extend the watch set; directory events are
			// not themselves data events.
			if mask&(syscall.IN_CREATE|syscall.IN_MOVED_TO) != 0 {
				_ = s.watchTree(p)
			}
			continue
		case mask&(syscall.IN_CREATE|syscall.IN_MOVED_TO) != 0:
			s.push(Event{Path: p, Kind: EventCreated, Size: fileSize(p)})
		case mask&syscall.IN_CLOSE_WRITE != 0:
			s.push(Event{Path: p, Kind: EventModified, Size: fileSize(p)})
		case mask&(syscall.IN_DELETE|syscall.IN_MOVED_FROM) != 0:
			s.push(Event{Path: p, Kind: EventDeleted})
		}
	}
}

func fileSize(p string) int64 {
	info, err := os.Stat(p)
	if err != nil {
		return 0
	}
	return info.Size()
}

func (s *InotifyScanner) push(ev Event) {
	s.mu.Lock()
	s.pending = append(s.pending, ev)
	s.mu.Unlock()
}

// Scan drains the queued events since the previous call.
func (s *InotifyScanner) Scan() ([]Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pendErr != nil {
		return nil, s.pendErr
	}
	out := s.pending
	s.pending = nil
	return out, nil
}

// Close stops the reader and releases the inotify instance.
func (s *InotifyScanner) Close() error {
	var err error
	s.stopOnce.Do(func() {
		err = s.file.Close()
		<-s.done
	})
	return err
}
