package livewatch

import (
	"os"
	"path/filepath"
)

// honeyfileNames are the standard decoy file names PlantHoneyfiles writes.
// The names are chosen to bracket an alphabetical directory walk — most
// ransomware enumerates lexicographically, so a decoy sorting first is
// touched within the first few operations of an attack — while looking like
// ordinary user documents rather than tripwires.
var honeyfileNames = []string{
	"!account_backup.txt",
	"passwords_old.txt",
	"zz_tax_archive.csv",
}

// honeyfileContent is plausible document filler: typed, low-entropy text so
// a decoy is indistinguishable from user data to a walking attacker.
const honeyfileContent = "Account ledger (archived copy)\n" +
	"last reviewed: see folder timestamp\n\n" +
	"item,reference,balance\n" +
	"savings,AB-2231,1180.22\n" +
	"checking,AB-2232,412.07\n"

// PlantHoneyfiles writes the standard decoy set into dir and returns the
// absolute decoy paths, ready to guard with indicator.NewHoneyfile. The
// decoys are ordinary files on the real filesystem; plant them before
// priming a watcher so the engine tracks them like any other document. Any
// decoy that already exists is left untouched (its path is still returned),
// so replanting over a watched tree is idempotent.
func PlantHoneyfiles(dir string) ([]string, error) {
	paths := make([]string, 0, len(honeyfileNames))
	for _, name := range honeyfileNames {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			paths = append(paths, p)
			continue
		}
		if err := os.WriteFile(p, []byte(honeyfileContent), 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}
