package livewatch

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"
	"time"

	"cryptodrop/internal/telemetry"
)

// Source produces change events for a directory tree. The portable polling
// Scanner and the Linux InotifyScanner both implement it.
type Source interface {
	// Scan returns the changes since the previous call.
	Scan() ([]Event, error)
	// Root is the watched directory.
	Root() string
}

// Watcher couples an event Source and an Analyzer into a background polling
// loop over a real directory.
type Watcher struct {
	scanner  Source
	analyzer *Analyzer
	interval time.Duration

	mu      sync.Mutex
	lastErr error
	scans   int

	// scanLat times each scan/analyze cycle; nil (no-op) without telemetry.
	scanLat *telemetry.Histogram

	stop chan struct{}
	done chan struct{}
}

// NewWatcher prepares a watcher over root using the portable polling
// scanner. Call Start to baseline the tree and begin polling; Stop to shut
// it down.
func NewWatcher(root string, interval time.Duration, cfg AnalyzerConfig) *Watcher {
	return NewWatcherWithSource(NewScanner(root), interval, cfg)
}

// NewWatcherWithSource prepares a watcher over a custom event source (e.g.
// the Linux InotifyScanner). The interval still paces how often the source
// is drained and analysed.
func NewWatcherWithSource(src Source, interval time.Duration, cfg AnalyzerConfig) *Watcher {
	if interval <= 0 {
		interval = time.Second
	}
	return &Watcher{
		scanner:  src,
		analyzer: NewAnalyzer(cfg),
		interval: interval,
		scanLat:  cfg.Telemetry.Histogram("livewatch_scan_seconds", telemetry.DefaultLatencyBuckets()),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Analyzer exposes the scoreboard.
func (w *Watcher) Analyzer() *Analyzer { return w.analyzer }

// Start baselines the tree (priming per-file state without scoring) and
// launches the polling goroutine.
func (w *Watcher) Start() error {
	if _, err := w.scanner.Scan(); err != nil {
		return fmt.Errorf("livewatch: baseline: %w", err)
	}
	err := filepath.WalkDir(w.scanner.Root(), func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil //nolint:nilerr // priming is best-effort
		}
		w.analyzer.Prime(p)
		return nil
	})
	if err != nil {
		return fmt.Errorf("livewatch: prime: %w", err)
	}
	go w.loop()
	return nil
}

// loop polls until Stop.
func (w *Watcher) loop() {
	defer close(w.done)
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			w.Poll()
		case <-w.stop:
			return
		}
	}
}

// Poll performs one scan/analyze cycle immediately (also used by tests and
// by Stop for a final sweep).
func (w *Watcher) Poll() {
	var t0 time.Time
	if w.scanLat != nil {
		t0 = time.Now()
	}
	events, err := w.scanner.Scan()
	w.mu.Lock()
	w.scans++
	w.lastErr = err
	w.mu.Unlock()
	if err != nil {
		return
	}
	w.analyzer.Apply(events)
	if w.scanLat != nil {
		w.scanLat.ObserveDuration(time.Since(t0))
	}
}

// Scans returns the number of completed polls.
func (w *Watcher) Scans() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.scans
}

// LastErr returns the most recent scan error, if any.
func (w *Watcher) LastErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastErr
}

// Stop performs a final poll, terminates the loop and waits for it to exit.
func (w *Watcher) Stop() {
	close(w.stop)
	<-w.done
	w.Poll()
}
