package livewatch

import (
	"os"
	"reflect"
	"testing"

	"cryptodrop/internal/core"
	"cryptodrop/internal/indicator"
)

func TestPlantHoneyfilesIdempotent(t *testing.T) {
	dir := t.TempDir()
	first, err := PlantHoneyfiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(honeyfileNames) {
		t.Fatalf("planted %d decoys, want %d", len(first), len(honeyfileNames))
	}
	for _, p := range first {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("decoy %s not on disk: %v", p, err)
		}
	}
	second, err := PlantHoneyfiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replant returned different paths: %v vs %v", first, second)
	}
}

// TestHoneyfileAlertsWatcher wires planted decoys into a live analyzer: one
// modification of a decoy alerts instantly, attributed to the honeyfile
// indicator — the content-free signal a payload-blind watcher keeps even
// when every content measurement is unavailable.
func TestHoneyfileAlertsWatcher(t *testing.T) {
	dir := writeTree(t, 6)
	decoys, err := PlantHoneyfiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig("")
	cfg.Indicators = indicator.Default().With(indicator.NewHoneyfile(decoys...))
	var alerts []Alert
	a := NewAnalyzer(AnalyzerConfig{Engine: &cfg, OnAlert: func(al Alert) { alerts = append(alerts, al) }})

	encryptFile(t, decoys[0])
	content, err := os.ReadFile(decoys[0])
	if err != nil {
		t.Fatal(err)
	}
	a.ApplyChange(decoys[0], content, EventModified)

	if !a.Alerted() || len(alerts) != 1 {
		t.Fatalf("decoy touch did not alert (alerted=%v, alerts=%d)", a.Alerted(), len(alerts))
	}
	rep := a.Report()
	if rep.IndicatorPoints[core.IndicatorHoneyfile] <= 0 {
		t.Fatalf("alert not attributed to honeyfile: %v", rep.IndicatorPoints)
	}
}
