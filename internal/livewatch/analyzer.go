package livewatch

import (
	"os"
	"sync"

	"cryptodrop/internal/entropy"
	"cryptodrop/internal/magic"
	"cryptodrop/internal/sdhash"
	"cryptodrop/internal/telemetry"
)

// AnalyzerConfig tunes the live analyzer. Zero fields take defaults.
type AnalyzerConfig struct {
	// AlertThreshold is the score at which an alert fires (default 200,
	// the paper's non-union threshold).
	AlertThreshold float64
	// UnionThreshold applies once all three primary indicators have been
	// observed (default 140).
	UnionThreshold float64
	// SimilarityMatchMax is the highest similarity score treated as
	// complete dissimilarity (default 4).
	SimilarityMatchMax int
	// EntropyDeltaThreshold is the per-file entropy increase considered
	// suspicious (default 0.1).
	EntropyDeltaThreshold float64
	// Points per indicator occurrence (defaults mirror the engine's).
	TypeChangePoints float64
	SimilarityPoints float64
	EntropyPoints    float64
	DeletionPoints   float64
	NewCipherPoints  float64
	UnionBonus       float64
	// OnAlert, if set, fires once when the score crosses the threshold.
	OnAlert func(Alert)
	// Telemetry, if set, receives live-watch metrics: scan latency,
	// per-kind event counts and alert counts. Nil disables collection.
	Telemetry *telemetry.Registry
}

func (c *AnalyzerConfig) fillDefaults() {
	if c.AlertThreshold == 0 {
		c.AlertThreshold = 200
	}
	if c.UnionThreshold == 0 {
		c.UnionThreshold = 140
	}
	if c.SimilarityMatchMax == 0 {
		c.SimilarityMatchMax = 4
	}
	if c.EntropyDeltaThreshold == 0 {
		c.EntropyDeltaThreshold = 0.1
	}
	if c.TypeChangePoints == 0 {
		c.TypeChangePoints = 8
	}
	if c.SimilarityPoints == 0 {
		c.SimilarityPoints = 8
	}
	if c.EntropyPoints == 0 {
		c.EntropyPoints = 4
	}
	if c.DeletionPoints == 0 {
		c.DeletionPoints = 6
	}
	if c.NewCipherPoints == 0 {
		c.NewCipherPoints = 3
	}
	if c.UnionBonus == 0 {
		c.UnionBonus = 30
	}
}

// Alert reports suspicious bulk transformation of the watched tree.
type Alert struct {
	// Score is the reputation score at alert time.
	Score float64
	// Union reports whether all three primary indicators were observed.
	Union bool
	// FilesTransformed counts rewritten files measured so far.
	FilesTransformed int
	// Deletions counts files removed.
	Deletions int
}

// fileState caches a file's previous measurement.
type fileState struct {
	typ     magic.Type
	digest  *sdhash.Digest
	entropy float64
	size    int64
}

// reliableDigest mirrors the engine's sparse-digest guard: trust a
// dissimilarity verdict only when the previous digest has enough features
// absolutely or per byte of input.
func (st *fileState) reliableDigest() bool {
	if st.digest == nil {
		return false
	}
	fc := st.digest.FeatureCount()
	return fc >= 8 || int64(fc)*256 >= st.size
}

// Analyzer scores filesystem change events against the CryptoDrop
// indicators. Because a userspace watcher has no process attribution, all
// changes are scored against one scoreboard entry: the tree's single
// unknown actor. All methods are safe for concurrent use.
type Analyzer struct {
	mu  sync.Mutex
	cfg AnalyzerConfig

	states map[string]*fileState
	score  float64

	sawType    bool
	sawSim     bool
	sawEntropy bool
	union      bool
	alerted    bool

	transformed int
	deletions   int

	// telEvents counts events folded in; telAlerts counts alerts fired.
	// Both are nil (no-op) without a telemetry registry.
	telEvents *telemetry.Counter
	telAlerts *telemetry.Counter
}

// NewAnalyzer returns an analyzer with the given configuration.
func NewAnalyzer(cfg AnalyzerConfig) *Analyzer {
	cfg.fillDefaults()
	a := &Analyzer{cfg: cfg, states: make(map[string]*fileState)}
	a.telEvents = cfg.Telemetry.Counter("livewatch_events_total")
	a.telAlerts = cfg.Telemetry.Counter("livewatch_alerts_total")
	return a
}

// Prime measures a file without scoring it (used to baseline the tree
// before watching starts). Unreadable files are skipped.
func (a *Analyzer) Prime(path string) {
	content, err := os.ReadFile(path)
	if err != nil {
		return
	}
	st := measure(content)
	a.mu.Lock()
	a.states[path] = st
	a.mu.Unlock()
}

func measure(content []byte) *fileState {
	st := &fileState{
		typ:     magic.Identify(content),
		entropy: entropy.Shannon(content),
		size:    int64(len(content)),
	}
	if d, err := sdhash.Compute(content); err == nil {
		st.digest = d
	}
	return st
}

// Apply folds a batch of events into the scoreboard. Files are read from
// the real filesystem; unreadable files are skipped.
func (a *Analyzer) Apply(events []Event) {
	a.telEvents.Add(int64(len(events)))
	for _, ev := range events {
		switch ev.Kind {
		case EventDeleted:
			a.applyDelete(ev.Path)
		case EventCreated, EventModified:
			content, err := os.ReadFile(ev.Path)
			if err != nil {
				continue
			}
			a.ApplyChange(ev.Path, content, ev.Kind)
		}
	}
}

// ApplyChange scores one created/modified file given its new content
// (exposed separately so tests and alternative event sources can feed
// content directly).
func (a *Analyzer) ApplyChange(path string, content []byte, kind EventKind) {
	newState := measure(content)
	a.mu.Lock()
	defer a.mu.Unlock()
	prev := a.states[path]
	a.states[path] = newState
	if prev == nil {
		// A brand-new file: untyped high-entropy content is the shape of
		// a Class C encrypted copy.
		if kind == EventCreated && newState.typ.IsData() && newState.entropy > 7.0 {
			a.addPoints(a.cfg.NewCipherPoints)
		}
		return
	}
	a.transformed++
	if newState.typ.ID != prev.typ.ID {
		a.sawType = true
		a.addPoints(a.cfg.TypeChangePoints)
	}
	// Sparse digests (chance features in random-like data) carry no
	// confidence, so a dissimilarity verdict requires a reliable previous
	// digest.
	if prev.reliableDigest() {
		score := 0
		if newState.digest != nil {
			score = prev.digest.Compare(newState.digest)
		}
		if score <= a.cfg.SimilarityMatchMax {
			a.sawSim = true
			a.addPoints(a.cfg.SimilarityPoints)
		}
	}
	if newState.entropy-prev.entropy >= a.cfg.EntropyDeltaThreshold {
		a.sawEntropy = true
		a.addPoints(a.cfg.EntropyPoints)
	}
	a.checkUnion()
	a.checkAlert()
}

func (a *Analyzer) applyDelete(path string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, known := a.states[path]; known {
		delete(a.states, path)
	}
	a.deletions++
	a.addPoints(a.cfg.DeletionPoints)
	a.checkAlert()
}

// addPoints adds to the score; a.mu held.
func (a *Analyzer) addPoints(p float64) { a.score += p }

// checkUnion fires the union bonus once; a.mu held.
func (a *Analyzer) checkUnion() {
	if a.union || !(a.sawType && a.sawSim && a.sawEntropy) {
		return
	}
	a.union = true
	a.score += a.cfg.UnionBonus
}

// checkAlert fires OnAlert once past the effective threshold; a.mu held.
func (a *Analyzer) checkAlert() {
	if a.alerted {
		return
	}
	threshold := a.cfg.AlertThreshold
	if a.union && a.cfg.UnionThreshold < threshold {
		threshold = a.cfg.UnionThreshold
	}
	if a.score < threshold {
		return
	}
	a.alerted = true
	a.telAlerts.Inc()
	if a.cfg.OnAlert != nil {
		alert := Alert{Score: a.score, Union: a.union, FilesTransformed: a.transformed, Deletions: a.deletions}
		a.mu.Unlock()
		a.cfg.OnAlert(alert)
		a.mu.Lock()
	}
}

// Score returns the current score.
func (a *Analyzer) Score() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.score
}

// Alerted reports whether the alert fired.
func (a *Analyzer) Alerted() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.alerted
}

// Union reports whether all three primary indicators were observed.
func (a *Analyzer) Union() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.union
}
