package livewatch

import (
	"os"
	"sync"

	"cryptodrop/internal/core"
	"cryptodrop/internal/telemetry"
)

// actorPID is the single scoring group every change is attributed to: a
// userspace watcher has no process attribution, so the whole tree is scored
// as one unknown actor.
const actorPID = 1

// AnalyzerConfig tunes the live analyzer. Engine configuration goes through
// Engine — a full core.Config, the single source of truth, where zero
// values mean zero (an indicator set to 0 points really is disabled).
type AnalyzerConfig struct {
	// Engine, if non-nil, is the engine configuration used as-is (points,
	// thresholds, disabled indicators). The analyzer still forces the
	// backend-dictated fields: Workers is pinned to 0 (content is staged
	// synchronously around each event), NewCipherWithoutDelta is set (a
	// watcher never sees the read/write payload stream, so the paper's Δe
	// gate could never open), and OnDetection is owned by the analyzer
	// (use OnAlert). Nil means core.DefaultConfig.
	Engine *core.Config

	// OnAlert, if set, fires once when the score crosses the threshold.
	OnAlert func(Alert)
	// Telemetry, if set, receives live-watch metrics (scan latency,
	// per-kind event counts, alert counts) and — unless Engine carries its
	// own registry — the underlying engine's indicator metrics. Nil
	// disables collection.
	Telemetry *telemetry.Registry
}

// engineConfig resolves the analyzer configuration to the core engine
// configuration. Every default comes from the engine package — there is no
// second points table to drift.
func (c AnalyzerConfig) engineConfig() core.Config {
	var cfg core.Config
	if c.Engine != nil {
		cfg = *c.Engine
	} else {
		cfg = core.DefaultConfig("")
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = c.Telemetry
	}
	// Backend-dictated settings (see the Engine field doc).
	cfg.Workers = 0
	cfg.NewCipherWithoutDelta = true
	return cfg
}

// Alert reports suspicious bulk transformation of the watched tree.
type Alert struct {
	// Score is the reputation score at alert time.
	Score float64
	// Union reports whether all three primary indicators were observed.
	Union bool
	// FilesTransformed counts rewritten files measured so far.
	FilesTransformed int
	// Deletions counts files removed.
	Deletions int
}

// Analyzer adapts directory change events to the CryptoDrop engine: it is
// the live-watch backend of the backend-neutral event model. It owns no
// scoring of its own — every indicator, the union rule and the thresholds
// live in core.Engine; the analyzer only assigns stable file IDs to paths,
// stages file content for the engine's ContentSource, and translates each
// scanner Event into core Events attributed to the tree's single unknown
// actor. All methods are safe for concurrent use.
type Analyzer struct {
	mu  sync.Mutex
	eng *core.Engine

	// paths/idPaths map watched paths to the synthetic stable file IDs the
	// engine keys its state by, and back.
	paths   map[string]uint64
	idPaths map[uint64]string
	nextID  uint64
	// staged holds the content for the event currently being handled, so
	// the engine's synchronous Content lookups never touch the changing
	// real filesystem mid-evaluation.
	staged map[uint64][]byte

	alertMu sync.Mutex
	alerted bool
	queued  []Alert
	onAlert func(Alert)

	// telEvents counts events folded in; telAlerts counts alerts fired.
	// Both are nil (no-op) without a telemetry registry.
	telEvents *telemetry.Counter
	telAlerts *telemetry.Counter
}

// NewAnalyzer returns an analyzer with the given configuration.
func NewAnalyzer(cfg AnalyzerConfig) *Analyzer {
	a := &Analyzer{
		paths:   make(map[string]uint64),
		idPaths: make(map[uint64]string),
		staged:  make(map[uint64][]byte),
		onAlert: cfg.OnAlert,
	}
	ecfg := cfg.engineConfig()
	ecfg.OnDetection = a.onDetection
	a.eng = core.New(ecfg, a)
	a.telEvents = cfg.Telemetry.Counter("livewatch_events_total")
	a.telAlerts = cfg.Telemetry.Counter("livewatch_alerts_total")
	return a
}

// Content implements core.ContentSource: the engine reads the staged bytes
// of the event in flight, falling back to the real file for IDs staged
// earlier (e.g. a pool-free snapshot re-read).
func (a *Analyzer) Content(id uint64) ([]byte, error) {
	if b, ok := a.staged[id]; ok {
		return b, nil
	}
	if p, ok := a.idPaths[id]; ok {
		return os.ReadFile(p)
	}
	return nil, os.ErrNotExist
}

// onDetection adapts the engine's detection to a livewatch Alert. It runs
// inside an engine call while a.mu is held, so the alert is queued and
// delivered after the lock is released — a re-entrant OnAlert callback must
// not deadlock.
func (a *Analyzer) onDetection(d core.Detection) {
	rep, _ := a.eng.Report(d.PID)
	a.alertMu.Lock()
	a.alerted = true
	a.queued = append(a.queued, Alert{
		Score:            d.Score,
		Union:            d.Union,
		FilesTransformed: rep.FilesTransformed,
		Deletions:        rep.Deletes,
	})
	a.alertMu.Unlock()
	a.telAlerts.Inc()
}

// deliver fires queued alerts outside all locks.
func (a *Analyzer) deliver() {
	a.alertMu.Lock()
	q := a.queued
	a.queued = nil
	a.alertMu.Unlock()
	if a.onAlert == nil {
		return
	}
	for _, al := range q {
		a.onAlert(al)
	}
}

// id returns (assigning if needed) the stable file ID for path; a.mu held.
func (a *Analyzer) id(path string) uint64 {
	if id, ok := a.paths[path]; ok {
		return id
	}
	a.nextID++
	id := a.nextID
	a.paths[path] = id
	a.idPaths[id] = path
	return id
}

// Prime measures a file without scoring it (used to baseline the tree
// before watching starts): the content is snapshotted as the file's
// previous version, exactly as the engine snapshots a file about to be
// opened for writing. Unreadable files are skipped.
func (a *Analyzer) Prime(path string) {
	content, err := os.ReadFile(path)
	if err != nil {
		return
	}
	a.mu.Lock()
	id := a.id(path)
	a.staged[id] = content
	a.eng.PreEvent(core.Event{
		Kind: core.EvOpen, PID: actorPID, Path: path, FileID: id,
		Flags: core.EvWriteIntent, Size: int64(len(content)),
	})
	delete(a.staged, id)
	a.mu.Unlock()
}

// Apply folds a batch of events into the scoreboard. Files are read from
// the real filesystem; unreadable files are skipped.
func (a *Analyzer) Apply(events []Event) {
	a.telEvents.Add(int64(len(events)))
	for _, ev := range events {
		switch ev.Kind {
		case EventDeleted:
			a.applyDelete(ev.Path)
		case EventCreated, EventModified:
			content, err := os.ReadFile(ev.Path)
			if err != nil {
				continue
			}
			a.ApplyChange(ev.Path, content, ev.Kind)
		}
	}
}

// ApplyChange scores one created/modified file given its new content
// (exposed separately so tests and alternative event sources can feed
// content directly). The change reaches the engine as the completed write
// it is: an optional create, then a written-handle close evaluated against
// the file's cached previous version.
func (a *Analyzer) ApplyChange(path string, content []byte, kind EventKind) {
	a.mu.Lock()
	_, known := a.paths[path]
	id := a.id(path)
	if !known && kind == EventCreated {
		// A file born under the watch: the actor is its creator (its later
		// deletion is temp-file churn, not destruction of user data).
		a.eng.Handle(core.Event{Kind: core.EvCreate, PID: actorPID, Path: path, FileID: id,
			Flags: core.EvWriteIntent | core.EvCreateIntent})
	}
	if !known && kind == EventModified {
		// First sight of a pre-existing file mid-change: baseline it from
		// the post-change content so state is tracked from here on. The
		// evaluation below then compares identical content and scores
		// nothing — mirroring the engine seeing only the tail of a write.
		a.staged[id] = content
		a.eng.PreEvent(core.Event{
			Kind: core.EvOpen, PID: actorPID, Path: path, FileID: id,
			Flags: core.EvWriteIntent, Size: int64(len(content)),
		})
		delete(a.staged, id)
	}
	a.staged[id] = content
	a.eng.Handle(core.Event{
		Kind: core.EvClose, PID: actorPID, Path: path, FileID: id,
		Size: int64(len(content)), Wrote: true,
	})
	delete(a.staged, id)
	a.mu.Unlock()
	a.deliver()
}

func (a *Analyzer) applyDelete(path string) {
	a.mu.Lock()
	id := a.id(path)
	a.eng.Handle(core.Event{Kind: core.EvDelete, PID: actorPID, Path: path, FileID: id})
	delete(a.paths, path)
	delete(a.idPaths, id)
	a.mu.Unlock()
	a.deliver()
}

// Score returns the current score.
func (a *Analyzer) Score() float64 {
	rep, _ := a.eng.Report(actorPID)
	return rep.Score
}

// Alerted reports whether the alert fired.
func (a *Analyzer) Alerted() bool {
	a.alertMu.Lock()
	defer a.alertMu.Unlock()
	return a.alerted
}

// Union reports whether all three primary indicators were observed.
func (a *Analyzer) Union() bool {
	rep, _ := a.eng.Report(actorPID)
	return rep.Union
}

// Report returns the engine's scoreboard snapshot for the watched tree's
// single actor: per-indicator point totals, score history, directories and
// extensions touched.
func (a *Analyzer) Report() core.ProcessReport {
	rep, _ := a.eng.Report(actorPID)
	return rep
}

// Engine exposes the underlying detection engine (shared with every other
// backend adapter).
func (a *Analyzer) Engine() *core.Engine { return a.eng }
