package livewatch

import (
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"cryptodrop/internal/core"
	"cryptodrop/internal/host"
)

// Submitter accepts batches of host ops — satisfied by *host.Session. The
// Feeder depends on the interface so tests can capture the op stream.
type Submitter interface {
	Submit(ctx context.Context, ops ...host.Op) error
}

// Feeder is the queued counterpart of Analyzer: it performs the same
// directory-event → engine-event translation, but instead of driving an
// engine synchronously it emits host.Op batches with the file content
// staged inside (Pre for previous versions, Post for completed rewrites),
// so a host session can apply them later without touching the changing
// filesystem. One Feeder feeds one session; each root a host multiplexes
// gets its own.
//
// Everything is attributed to the tree's single unknown actor, exactly as
// Analyzer does, and scoring is payload-blind — build the session with
// SessionConfig (or an Engine config with NewCipherWithoutDelta set).
type Feeder struct {
	mu     sync.Mutex
	target Submitter

	paths  map[string]uint64
	nextID uint64
}

// FeederSessionConfig returns the host session configuration matching the
// Feeder's backend semantics: the analyzer's engine rules (payload-blind
// scoring, synchronous measurement, content resolved purely from staged
// ops). A nil ecfg means core.DefaultConfig.
func FeederSessionConfig(ecfg *core.Config) host.SessionConfig {
	cfg := AnalyzerConfig{Engine: ecfg}.engineConfig()
	return host.SessionConfig{Engine: cfg}
}

// NewFeeder returns a feeder submitting to target. Batches for one feeder
// must not be submitted concurrently from multiple goroutines (the engine's
// per-group ordering contract); the feeder's own methods serialise.
func NewFeeder(target Submitter) *Feeder {
	return &Feeder{target: target, paths: make(map[string]uint64)}
}

// id returns (assigning if needed) the stable file ID for path; f.mu held.
func (f *Feeder) id(path string) uint64 {
	if id, ok := f.paths[path]; ok {
		return id
	}
	f.nextID++
	f.paths[path] = f.nextID
	return f.nextID
}

// Prime submits a baseline-only op snapshotting content as path's previous
// version without scoring anything — the queued form of Analyzer.Prime.
func (f *Feeder) Prime(ctx context.Context, path string, content []byte) error {
	f.mu.Lock()
	op := f.primeOp(path, content)
	f.mu.Unlock()
	return f.target.Submit(ctx, op)
}

// primeOp builds the baseline-only op for path; f.mu held.
func (f *Feeder) primeOp(path string, content []byte) host.Op {
	id := f.id(path)
	return host.Op{
		PreEvent: &core.Event{
			Kind: core.EvOpen, PID: actorPID, Path: path, FileID: id,
			Flags: core.EvWriteIntent, Size: int64(len(content)),
		},
		Pre:   map[uint64][]byte{id: content},
		Evict: []uint64{id},
	}
}

// PrimeTree baselines every readable file under root, batching the ops.
func (f *Feeder) PrimeTree(ctx context.Context, root string) error {
	return walkFiles(root, func(p string) error {
		content, err := os.ReadFile(p)
		if err != nil {
			return nil //nolint:nilerr // priming is best-effort
		}
		return f.Prime(ctx, p, content)
	})
}

// Apply translates one scan's events and submits them as a single batch —
// the queued form of Analyzer.Apply. Files are read from the real
// filesystem at translation time; unreadable files are skipped.
func (f *Feeder) Apply(ctx context.Context, events []Event) error {
	f.mu.Lock()
	var ops []host.Op
	for _, ev := range events {
		switch ev.Kind {
		case EventDeleted:
			ops = append(ops, f.deleteOps(ev.Path)...)
		case EventCreated, EventModified:
			content, err := os.ReadFile(ev.Path)
			if err != nil {
				continue
			}
			ops = append(ops, f.changeOps(ev.Path, content, ev.Kind)...)
		}
	}
	f.mu.Unlock()
	return f.target.Submit(ctx, ops...)
}

// Change submits the ops scoring one created/modified file given its new
// content — the queued form of Analyzer.ApplyChange.
func (f *Feeder) Change(ctx context.Context, path string, content []byte, kind EventKind) error {
	f.mu.Lock()
	ops := f.changeOps(path, content, kind)
	f.mu.Unlock()
	return f.target.Submit(ctx, ops...)
}

// changeOps mirrors Analyzer.ApplyChange op-for-op; f.mu held.
func (f *Feeder) changeOps(path string, content []byte, kind EventKind) []host.Op {
	_, known := f.paths[path]
	id := f.id(path)
	var ops []host.Op
	if !known && kind == EventCreated {
		// A file born under the watch: the actor is its creator.
		ops = append(ops, host.Op{Event: core.Event{
			Kind: core.EvCreate, PID: actorPID, Path: path, FileID: id,
			Flags: core.EvWriteIntent | core.EvCreateIntent,
		}})
	}
	if !known && kind == EventModified {
		// First sight of a pre-existing file mid-change: baseline it from
		// the post-change content (see Analyzer.ApplyChange).
		ops = append(ops, f.primeOpKnown(path, id, content))
	}
	ops = append(ops, host.Op{
		Event: core.Event{
			Kind: core.EvClose, PID: actorPID, Path: path, FileID: id,
			Size: int64(len(content)), Wrote: true,
		},
		Post:  map[uint64][]byte{id: content},
		Evict: []uint64{id},
	})
	return ops
}

// primeOpKnown is primeOp for an already-assigned ID; f.mu held.
func (f *Feeder) primeOpKnown(path string, id uint64, content []byte) host.Op {
	return host.Op{
		PreEvent: &core.Event{
			Kind: core.EvOpen, PID: actorPID, Path: path, FileID: id,
			Flags: core.EvWriteIntent, Size: int64(len(content)),
		},
		Pre:   map[uint64][]byte{id: content},
		Evict: []uint64{id},
	}
}

// Delete submits the op scoring a removal.
func (f *Feeder) Delete(ctx context.Context, path string) error {
	f.mu.Lock()
	ops := f.deleteOps(path)
	f.mu.Unlock()
	return f.target.Submit(ctx, ops...)
}

// deleteOps mirrors Analyzer.applyDelete; f.mu held.
func (f *Feeder) deleteOps(path string) []host.Op {
	id := f.id(path)
	delete(f.paths, path)
	return []host.Op{{Event: core.Event{
		Kind: core.EvDelete, PID: actorPID, Path: path, FileID: id,
	}}}
}

// walkFiles visits every regular file under root, skipping unreadable
// entries.
func walkFiles(root string, fn func(path string) error) error {
	return filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil //nolint:nilerr // best-effort traversal
		}
		return fn(p)
	})
}
