// Package livewatch adapts CryptoDrop's data-centric indicators to a real
// on-disk directory.
//
// The paper instruments the Windows kernel, which provides two things a
// portable userspace watcher cannot: per-operation process attribution and
// the payload bytes of every read and write. A file-notification watcher
// (the fsnotify approach) sees only that files changed. This package
// therefore implements the *degraded but deployable* variant: a polling
// scanner detects created/modified/deleted files between snapshots, and an
// analyzer scores the changes with the same primary indicators — file type
// change, similarity loss and file-entropy increase — plus bulk deletion,
// attributing them to a single unknown actor. It cannot suspend the
// offender (no process context), so it alerts instead: still an early
// warning, just without the surgical response the kernel driver enables.
//
// The difference between the two deployments is exactly the trade-off the
// paper's architecture section motivates.
package livewatch

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// EventKind classifies a detected change.
type EventKind int

// Change kinds.
const (
	// EventCreated is a file that did not exist at the previous scan.
	EventCreated EventKind = iota + 1
	// EventModified is a file whose size or mtime changed.
	EventModified
	// EventDeleted is a file that disappeared.
	EventDeleted
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case EventCreated:
		return "created"
	case EventModified:
		return "modified"
	case EventDeleted:
		return "deleted"
	default:
		return "unknown"
	}
}

// Event is one observed filesystem change.
type Event struct {
	// Path is the absolute file path.
	Path string
	// Kind is the change type.
	Kind EventKind
	// Size is the file size after the change (0 for deletions).
	Size int64
}

// fileMeta is the snapshot record for one file.
type fileMeta struct {
	size  int64
	mtime int64 // UnixNano
}

// Scanner detects changes to a directory tree between explicit Scan calls
// (a portable polling substitute for inotify/FSEvents/USN journals).
type Scanner struct {
	root string
	prev map[string]fileMeta
}

// NewScanner watches the tree rooted at root. The first Scan returns the
// baseline as no events.
func NewScanner(root string) *Scanner {
	return &Scanner{root: root}
}

// Root returns the watched directory.
func (s *Scanner) Root() string { return s.root }

// Scan snapshots the tree and returns the changes since the previous scan,
// sorted by path (deletions last so the analyzer can measure replacements
// first).
func (s *Scanner) Scan() ([]Event, error) {
	cur := make(map[string]fileMeta, len(s.prev))
	err := filepath.WalkDir(s.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			// A file vanishing mid-walk is an expected race, not a failure.
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		cur[p] = fileMeta{size: info.Size(), mtime: info.ModTime().UnixNano()}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("livewatch: scan %s: %w", s.root, err)
	}
	var events []Event
	if s.prev != nil {
		for p, m := range cur {
			old, ok := s.prev[p]
			switch {
			case !ok:
				events = append(events, Event{Path: p, Kind: EventCreated, Size: m.size})
			case old != m:
				events = append(events, Event{Path: p, Kind: EventModified, Size: m.size})
			}
		}
		for p := range s.prev {
			if _, ok := cur[p]; !ok {
				events = append(events, Event{Path: p, Kind: EventDeleted})
			}
		}
	}
	s.prev = cur
	sort.Slice(events, func(i, j int) bool {
		if events[i].Kind != events[j].Kind {
			return events[i].Kind < events[j].Kind
		}
		return events[i].Path < events[j].Path
	})
	return events, nil
}
